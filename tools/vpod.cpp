//===- tools/vpod.cpp - The optimizer-as-a-service daemon -------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line front end for service/Daemon.h: bind a Unix socket, fork
/// the worker pool, serve until SIGINT or an op=shutdown request.
/// SIGTERM drains instead of stopping: the daemon closes the listen
/// socket, finishes queued work under --drain-deadline-ms, flushes the
/// cache journal, and exits 0.
///
///   vpod --socket=/tmp/vpod.sock --workers=4
///   vpod --socket=vpod.sock --deadline-ms=2000 --mem-limit-mb=512
///   vpod --socket=vpod.sock --cache-file=vpod.vpj   # warm-boot journal
///   vpod --socket=vpod.sock --allow-fault-injection   # test rigs only
///
/// Every option maps 1:1 onto DaemonOptions / WorkerLimits; see
/// --help for the full list. The daemon prints one line when it is
/// ready ("vpod: serving on <path> ...") so scripts can wait for it.
///
//===----------------------------------------------------------------------===//

#include "service/Daemon.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace vpo;
using namespace vpo::service;

namespace {

volatile std::sig_atomic_t StopFlag = 0;
volatile std::sig_atomic_t DrainFlag = 0;

void onStop(int) { StopFlag = 1; }
void onDrain(int) { DrainFlag = 1; }

void usage() {
  std::fprintf(
      stderr,
      "usage: vpod [options]\n"
      "  --socket=PATH           Unix socket to serve on (default "
      "vpod.sock)\n"
      "  --workers=N             worker processes (default 4)\n"
      "  --queue-depth=N         per-worker queue bound (default 64)\n"
      "  --deadline-ms=N         default per-request deadline (default "
      "5000)\n"
      "  --max-deadline-ms=N     cap on client deadline overrides "
      "(default 30000)\n"
      "  --cache-entries=N       content-cache bound (default 1024)\n"
      "  --cache-file=PATH       persistent cache journal; replayed on "
      "boot,\n"
      "                          crash-safe (fsync per insert). Default: "
      "off\n"
      "  --no-journal-sync       skip the per-insert fsync (benchmarks "
      "only)\n"
      "  --drain-deadline-ms=N   SIGTERM drain budget before exiting "
      "(default 5000)\n"
      "  --max-insts=N           run-mode instruction budget (default "
      "50000000)\n"
      "  --max-function-insts=N  pipeline IR growth budget (default "
      "2000000)\n"
      "  --mem-limit-mb=N        worker address-space ceiling, 0 = off "
      "(default 0)\n"
      "  --allow-fault-injection honor request fault plants (test rigs "
      "only)\n"
      "  --no-jit                keep run-mode simulations on the "
      "portable interpreter tier\n");
}

bool parseU64(const char *S, uint64_t &Out) {
  char *End = nullptr;
  unsigned long long V = std::strtoull(S, &End, 10);
  if (End == S || *End != '\0')
    return false;
  Out = V;
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  DaemonOptions Opts;
  Opts.StopFlag = &StopFlag;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Val = [&Arg](const char *Name) -> const char * {
      size_t N = std::strlen(Name);
      if (Arg.compare(0, N, Name) == 0 && Arg.size() > N && Arg[N] == '=')
        return Arg.c_str() + N + 1;
      return nullptr;
    };
    uint64_t U = 0;
    if (const char *V = Val("--socket")) {
      Opts.SocketPath = V;
    } else if (const char *V = Val("--workers")) {
      if (!parseU64(V, U) || U == 0 || U > 256) {
        usage();
        return 2;
      }
      Opts.Workers = unsigned(U);
    } else if (const char *V = Val("--queue-depth")) {
      if (!parseU64(V, U) || U == 0) {
        usage();
        return 2;
      }
      Opts.QueueDepth = size_t(U);
    } else if (const char *V = Val("--deadline-ms")) {
      if (!parseU64(V, U) || U == 0) {
        usage();
        return 2;
      }
      Opts.DefaultDeadlineMs = U;
    } else if (const char *V = Val("--max-deadline-ms")) {
      if (!parseU64(V, U) || U == 0) {
        usage();
        return 2;
      }
      Opts.MaxDeadlineMs = U;
    } else if (const char *V = Val("--cache-entries")) {
      if (!parseU64(V, U)) {
        usage();
        return 2;
      }
      Opts.CacheEntries = size_t(U);
    } else if (const char *V = Val("--cache-file")) {
      Opts.CacheJournalPath = V;
    } else if (Arg == "--no-journal-sync") {
      Opts.JournalSyncEveryInsert = false;
    } else if (const char *V = Val("--drain-deadline-ms")) {
      if (!parseU64(V, U) || U == 0) {
        usage();
        return 2;
      }
      Opts.DrainDeadlineMs = U;
    } else if (const char *V = Val("--max-insts")) {
      if (!parseU64(V, U) || U == 0) {
        usage();
        return 2;
      }
      Opts.Limits.MaxInsts = U;
    } else if (const char *V = Val("--max-function-insts")) {
      if (!parseU64(V, U)) {
        usage();
        return 2;
      }
      Opts.Limits.MaxFunctionInsts = size_t(U);
    } else if (const char *V = Val("--mem-limit-mb")) {
      if (!parseU64(V, U)) {
        usage();
        return 2;
      }
      Opts.Limits.MemLimitMB = size_t(U);
    } else if (Arg == "--allow-fault-injection") {
      Opts.Limits.AllowFaultInjection = true;
    } else if (Arg == "--no-jit") {
      Opts.Limits.JITNative = false;
    } else if (Arg == "--help" || Arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "vpod: unknown argument '%s'\n", Arg.c_str());
      usage();
      return 2;
    }
  }

  Opts.DrainFlag = &DrainFlag;
  std::signal(SIGINT, onStop);
  std::signal(SIGTERM, onDrain);

  Daemon D(Opts);
  if (Status S = D.start(); !S) {
    std::fprintf(stderr, "vpod: %s\n", S.message().c_str());
    return 1;
  }
  const CacheRecoveryStats &RS = D.recovery();
  if (!Opts.CacheJournalPath.empty())
    std::fprintf(stderr,
                 "vpod: cache journal %s: recovered=%llu aliases=%llu "
                 "discarded=%llu torn_tail=%d\n",
                 Opts.CacheJournalPath.c_str(),
                 (unsigned long long)RS.RecoveredEntries,
                 (unsigned long long)RS.RecoveredAliases,
                 (unsigned long long)RS.DiscardedRecords,
                 RS.TornTail ? 1 : 0);
  std::fprintf(stderr, "vpod: serving on %s (%u workers, deadline %llu ms%s)\n",
               D.socketPath().c_str(), Opts.Workers,
               (unsigned long long)Opts.DefaultDeadlineMs,
               Opts.Limits.AllowFaultInjection ? ", fault injection ON"
                                               : "");
  D.run();
  const DaemonCounters &C = D.counters();
  std::fprintf(stderr,
               "vpod: stopped. requests=%llu cache_hits=%llu shed=%llu "
               "crashes=%llu deadlines=%llu respawns=%llu degraded=%llu "
               "exhausted=%llu\n",
               (unsigned long long)C.Requests,
               (unsigned long long)C.CacheHits, (unsigned long long)C.Shed,
               (unsigned long long)C.WorkerCrashes,
               (unsigned long long)C.WorkerDeadlines,
               (unsigned long long)C.Respawns,
               (unsigned long long)C.Degraded,
               (unsigned long long)C.Exhausted);
  return 0;
}
