//===- tools/remark_query.cpp - NDJSON remark filter ------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Filters and summarizes the NDJSON remark streams the bench harnesses
/// write (--remarks-dir) and the tests pin. Reads files named on the
/// command line (or stdin), keeps lines matching every given filter, and
/// prints them back — or counts per reason with --summary.
///
///   remark-query --reason=run-rejected-hazard remarks/cell-*.ndjson
///   remark-query --pass=coalesce --function=dotproduct --count a.ndjson
///   remark-query --summary remarks/cell-003.ndjson
///
/// The parser understands exactly the subset of JSON the remark writer
/// emits: one flat object per line with string values (plus the nested
/// "args" object), escapes included. Descriptor lines (no "reason" key)
/// and malformed lines are skipped, never fatal.
///
//===----------------------------------------------------------------------===//

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

namespace {

/// Extracts the string value of top-level key \p Key from the single-line
/// JSON object \p Line, or "" when absent. Good enough for the remark
/// writer's output: keys are unescaped literals, values are JSON strings.
std::string fieldOf(const std::string &Line, const std::string &Key) {
  std::string Needle = "\"" + Key + "\":\"";
  size_t At = Line.find(Needle);
  if (At == std::string::npos)
    return "";
  std::string Out;
  for (size_t I = At + Needle.size(); I < Line.size(); ++I) {
    char C = Line[I];
    if (C == '\\' && I + 1 < Line.size()) {
      char N = Line[++I];
      switch (N) {
      case 'n': Out += '\n'; break;
      case 't': Out += '\t'; break;
      case 'r': Out += '\r'; break;
      case 'u':
        // The writer only emits \u00XX for control bytes; decode those.
        if (I + 4 < Line.size()) {
          Out += static_cast<char>(
              std::strtol(Line.substr(I + 1, 4).c_str(), nullptr, 16));
          I += 4;
        }
        break;
      default: Out += N; break;
      }
      continue;
    }
    if (C == '"')
      break;
    Out += C;
  }
  return Out;
}

struct Filters {
  std::string Pass, Reason, Function, Block;
  bool CountOnly = false;
  bool Summary = false;
};

bool matches(const std::string &Line, const Filters &F) {
  if (fieldOf(Line, "reason").empty())
    return false; // descriptor or malformed line
  if (!F.Pass.empty() && fieldOf(Line, "pass") != F.Pass)
    return false;
  if (!F.Reason.empty() && fieldOf(Line, "reason") != F.Reason)
    return false;
  if (!F.Function.empty() && fieldOf(Line, "function") != F.Function)
    return false;
  if (!F.Block.empty() && fieldOf(Line, "block") != F.Block)
    return false;
  return true;
}

int run(std::FILE *In, const Filters &F, uint64_t &Matched,
        std::map<std::string, uint64_t> &PerReason) {
  std::string Line;
  int Ch;
  auto Flush = [&] {
    if (!Line.empty() && matches(Line, F)) {
      ++Matched;
      if (F.Summary)
        ++PerReason[fieldOf(Line, "reason")];
      else if (!F.CountOnly)
        std::printf("%s\n", Line.c_str());
    }
    Line.clear();
  };
  while ((Ch = std::fgetc(In)) != EOF) {
    if (Ch == '\n')
      Flush();
    else
      Line += static_cast<char>(Ch);
  }
  Flush();
  return 0;
}

int usage(const char *Prog) {
  std::fprintf(stderr,
               "usage: %s [--pass=P] [--reason=R] [--function=F] "
               "[--block=B] [--count] [--summary] [FILE...]\n"
               "Filters NDJSON remark streams; reads stdin when no FILE "
               "is given.\n",
               Prog);
  return 2;
}

} // namespace

int main(int Argc, char **Argv) {
  Filters F;
  std::vector<std::string> Files;
  for (int I = 1; I < Argc; ++I) {
    const std::string A = Argv[I];
    if (A.rfind("--pass=", 0) == 0)
      F.Pass = A.substr(7);
    else if (A.rfind("--reason=", 0) == 0)
      F.Reason = A.substr(9);
    else if (A.rfind("--function=", 0) == 0)
      F.Function = A.substr(11);
    else if (A.rfind("--block=", 0) == 0)
      F.Block = A.substr(8);
    else if (A == "--count")
      F.CountOnly = true;
    else if (A == "--summary")
      F.Summary = true;
    else if (A.rfind("--", 0) == 0)
      return usage(Argv[0]);
    else
      Files.push_back(A);
  }

  uint64_t Matched = 0;
  std::map<std::string, uint64_t> PerReason;
  if (Files.empty()) {
    run(stdin, F, Matched, PerReason);
  } else {
    for (const std::string &Path : Files) {
      std::FILE *In = std::fopen(Path.c_str(), "r");
      if (!In) {
        std::fprintf(stderr, "%s: cannot open %s\n", Argv[0], Path.c_str());
        return 1;
      }
      run(In, F, Matched, PerReason);
      std::fclose(In);
    }
  }

  if (F.Summary)
    for (const auto &[Reason, N] : PerReason)
      std::printf("%8llu  %s\n", static_cast<unsigned long long>(N),
                  Reason.c_str());
  if (F.CountOnly)
    std::printf("%llu\n", static_cast<unsigned long long>(Matched));
  return 0;
}
