//===- tools/vpoc.cpp - Batch client for the compile service ----*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The vpod batch client: submit kernels to a running daemon and print
/// one NDJSON response line per request (remark-query-compatible).
///
///   vpoc --socket=vpod.sock kernel.rtl             # one compile
///   vpoc --socket=vpod.sock --config=coalesce-all *.rtl
///   vpoc --socket=vpod.sock --run=4096,8192,16 kernel.rtl
///   vpoc --socket=vpod.sock --op=status            # daemon counters
///   vpoc --socket=vpod.sock --op=shutdown
///
/// Requests are pipelined: the whole batch is written before responses
/// are drained (the daemon responds in order per connection), so a
/// multi-file batch keeps every pool worker busy. With --ir the
/// optimized IR is printed to stdout instead of the JSON line (single
/// file only).
///
/// Transport failures (daemon restarting, connection refused, killed
/// mid-exchange) and Overloaded shedding are retried with exponential
/// backoff + jitter; unanswered requests are resent after a reconnect.
/// Exit codes separate the failure domains — see --help.
///
//===----------------------------------------------------------------------===//

#include "service/Client.h"

#include <cstdio>
#include <cstring>
#include <ctime>
#include <string>
#include <vector>

using namespace vpo;
using namespace vpo::service;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: vpoc [options] [kernel.rtl ...]\n"
      "  --socket=PATH      daemon socket (default vpod.sock)\n"
      "  --op=OP            compile | ping | status | shutdown (default "
      "compile)\n"
      "  --config=NAME      pipeline config (default coalesce-all)\n"
      "  --target=NAME      target machine (default alpha)\n"
      "  --run=ARGS         also run: comma-separated int64 args\n"
      "  --arena-kb=N       run-mode arena size (default 64)\n"
      "  --deadline-ms=N    per-request deadline override\n"
      "  --fault=SPEC       fault plant (daemon must allow injection)\n"
      "  --remarks          include remark NDJSON in responses\n"
      "  --ir               print optimized IR instead of the JSON line\n"
      "  --no-ir            ask the daemon not to ship IR back\n"
      "  --retries=N        extra attempts on transport failure or\n"
      "                     overloaded responses (default 4)\n"
      "  --no-retry         fail fast: equivalent to --retries=0\n"
      "With no kernel files, op=compile reads one kernel from stdin.\n"
      "\n"
      "Exit codes:\n"
      "  0  every response arrived with status \"ok\"\n"
      "  1  the daemon answered, but some response carries a structured\n"
      "     error status (parse-error, overloaded after retries, ...)\n"
      "  2  usage error or unreadable local input file\n"
      "  3  transport failure that outlived the retry budget: could not\n"
      "     connect, or the connection died and could not be re-"
      "established\n");
}

bool readAll(std::FILE *F, std::string &Out) {
  char Buf[65536];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out.append(Buf, N);
  return !std::ferror(F);
}

bool readFile(const std::string &Path, std::string &Out) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return false;
  bool Ok = readAll(F, Out);
  std::fclose(F);
  return Ok;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string Socket = "vpod.sock";
  ServiceRequest Proto;
  bool PrintIR = false;
  unsigned Retries = 4;
  std::vector<std::string> Files;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Val = [&Arg](const char *Name) -> const char * {
      size_t N = std::strlen(Name);
      if (Arg.compare(0, N, Name) == 0 && Arg.size() > N && Arg[N] == '=')
        return Arg.c_str() + N + 1;
      return nullptr;
    };
    if (const char *V = Val("--socket")) {
      Socket = V;
    } else if (const char *V = Val("--op")) {
      Proto.Op = V;
    } else if (const char *V = Val("--config")) {
      Proto.Config = V;
    } else if (const char *V = Val("--target")) {
      Proto.Target = V;
    } else if (const char *V = Val("--run")) {
      Proto.RunArgs = V;
    } else if (const char *V = Val("--arena-kb")) {
      Proto.ArenaKB = std::strtoull(V, nullptr, 10);
    } else if (const char *V = Val("--deadline-ms")) {
      Proto.DeadlineMs = std::strtoull(V, nullptr, 10);
    } else if (const char *V = Val("--fault")) {
      Proto.Fault = V;
    } else if (const char *V = Val("--retries")) {
      Retries = unsigned(std::strtoul(V, nullptr, 10));
    } else if (Arg == "--no-retry") {
      Retries = 0;
    } else if (Arg == "--remarks") {
      Proto.WantRemarks = true;
    } else if (Arg == "--ir") {
      PrintIR = true;
    } else if (Arg == "--no-ir") {
      Proto.WantIR = false;
    } else if (Arg == "--help" || Arg == "-h") {
      usage();
      return 0;
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "vpoc: unknown argument '%s'\n", Arg.c_str());
      usage();
      return 2;
    } else {
      Files.push_back(Arg);
    }
  }
  if (PrintIR && Files.size() > 1) {
    std::fprintf(stderr, "vpoc: --ir works with a single kernel\n");
    return 2;
  }

  RetryPolicy Policy;
  Policy.MaxAttempts = Retries + 1;

  // Control ops carry no kernel; one retried call does it.
  if (Proto.Op != "compile") {
    Proto.Id = "0";
    RetryingClient Client(Socket, Policy);
    StatusOr<ServiceResponse> R = Client.call(Proto);
    if (!R) {
      std::fprintf(stderr, "vpoc: %s\n", R.status().message().c_str());
      return 3;
    }
    std::printf("%s\n", R->toJson().c_str());
    return R->Status == ErrorCode::Ok ? 0 : 1;
  }

  std::vector<ServiceRequest> Batch;
  if (Files.empty()) {
    ServiceRequest Req = Proto;
    Req.Id = "stdin";
    if (!readAll(stdin, Req.IR)) {
      std::fprintf(stderr, "vpoc: error reading stdin\n");
      return 2;
    }
    Batch.push_back(std::move(Req));
  } else {
    for (const std::string &Path : Files) {
      ServiceRequest Req = Proto;
      Req.Id = Path;
      if (!readFile(Path, Req.IR)) {
        std::fprintf(stderr, "vpoc: cannot read %s\n", Path.c_str());
        return 2;
      }
      Batch.push_back(std::move(Req));
    }
  }

  // Pipeline with bounded retry: write the whole window, drain in
  // order; a transport failure reconnects and resends only the
  // still-unanswered requests, an Overloaded response re-queues that
  // request for the next pass. Each recovery costs one attempt plus an
  // exponential backoff with deterministic jitter.
  std::vector<ServiceResponse> Results(Batch.size());
  std::vector<bool> Done(Batch.size(), false);
  std::vector<size_t> Todo;
  for (size_t I = 0; I < Batch.size(); ++I)
    Todo.push_back(I);

  ServiceClient Client;
  uint64_t Rng = 1;
  auto backoff = [&Rng](unsigned Attempt) {
    uint64_t Delay = 50;
    for (unsigned I = 0; I < Attempt && Delay < 2000; ++I)
      Delay *= 2;
    if (Delay > 2000)
      Delay = 2000;
    Rng ^= Rng << 13;
    Rng ^= Rng >> 7;
    Rng ^= Rng << 17;
    Delay += Rng % (Delay / 2 + 1);
    timespec TS{time_t(Delay / 1000), long(Delay % 1000) * 1000000};
    nanosleep(&TS, nullptr);
  };

  unsigned Attempt = 0;
  std::string LastTransportError;
  while (!Todo.empty()) {
    if (Attempt > Retries) {
      std::fprintf(stderr,
                   "vpoc: giving up after %u attempts, %zu request(s) "
                   "unanswered: %s\n",
                   Attempt, Todo.size(), LastTransportError.c_str());
      return 3;
    }
    if (Attempt > 0)
      backoff(Attempt - 1);
    if (!Client.connected()) {
      if (Status S = Client.connectTo(Socket); !S) {
        LastTransportError = S.message();
        ++Attempt;
        continue;
      }
    }
    bool SendFailed = false;
    for (size_t I : Todo)
      if (Status S = Client.send(Batch[I]); !S) {
        LastTransportError = S.message();
        SendFailed = true;
        break;
      }
    if (SendFailed) {
      Client.close();
      ++Attempt;
      continue;
    }
    std::vector<size_t> Unanswered;
    size_t Got = 0;
    for (size_t K = 0; K < Todo.size(); ++K) {
      StatusOr<ServiceResponse> R = Client.receive();
      if (!R) {
        // The daemon died mid-drain: everything not yet answered in
        // this pass is resent after the reconnect.
        LastTransportError = R.status().message();
        Client.close();
        break;
      }
      ++Got;
      size_t I = Todo[K];
      if (R->Status == ErrorCode::Overloaded && Attempt < Retries) {
        Unanswered.push_back(I); // explicit shed: next pass retries it
        continue;
      }
      Results[I] = std::move(*R);
      Done[I] = true;
    }
    for (size_t K = Got; K < Todo.size(); ++K)
      Unanswered.push_back(Todo[K]);
    bool Recovering = Got < Todo.size() || !Unanswered.empty();
    Todo = std::move(Unanswered);
    if (Recovering)
      ++Attempt;
  }

  int Exit = 0;
  for (size_t I = 0; I < Batch.size(); ++I) {
    if (!Done[I])
      continue; // unreachable: Todo drained
    const ServiceResponse &R = Results[I];
    if (R.Status != ErrorCode::Ok)
      Exit = 1;
    if (PrintIR) {
      if (R.Status != ErrorCode::Ok)
        std::fprintf(stderr, "vpoc: %s: %s\n", errorCodeName(R.Status),
                     R.Error.c_str());
      else
        std::fputs(R.IR.c_str(), stdout);
    } else {
      std::printf("%s\n", R.toJson().c_str());
    }
  }
  return Exit;
}
