//===- tools/vpoc.cpp - Batch client for the compile service ----*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The vpod batch client: submit kernels to a running daemon and print
/// one NDJSON response line per request (remark-query-compatible).
///
///   vpoc --socket=vpod.sock kernel.rtl             # one compile
///   vpoc --socket=vpod.sock --config=coalesce-all *.rtl
///   vpoc --socket=vpod.sock --run=4096,8192,16 kernel.rtl
///   vpoc --socket=vpod.sock --op=status            # daemon counters
///   vpoc --socket=vpod.sock --op=shutdown
///
/// Requests are pipelined: the whole batch is written before responses
/// are drained (the daemon responds in order per connection), so a
/// multi-file batch keeps every pool worker busy. With --ir the
/// optimized IR is printed to stdout instead of the JSON line (single
/// file only). Exit code: 0 when every response has status "ok", 1
/// otherwise, 2 on usage/connection errors.
///
//===----------------------------------------------------------------------===//

#include "service/Client.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace vpo;
using namespace vpo::service;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: vpoc [options] [kernel.rtl ...]\n"
      "  --socket=PATH      daemon socket (default vpod.sock)\n"
      "  --op=OP            compile | ping | status | shutdown (default "
      "compile)\n"
      "  --config=NAME      pipeline config (default coalesce-all)\n"
      "  --target=NAME      target machine (default alpha)\n"
      "  --run=ARGS         also run: comma-separated int64 args\n"
      "  --arena-kb=N       run-mode arena size (default 64)\n"
      "  --deadline-ms=N    per-request deadline override\n"
      "  --fault=SPEC       fault plant (daemon must allow injection)\n"
      "  --remarks          include remark NDJSON in responses\n"
      "  --ir               print optimized IR instead of the JSON line\n"
      "  --no-ir            ask the daemon not to ship IR back\n"
      "With no kernel files, op=compile reads one kernel from stdin.\n");
}

bool readAll(std::FILE *F, std::string &Out) {
  char Buf[65536];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out.append(Buf, N);
  return !std::ferror(F);
}

bool readFile(const std::string &Path, std::string &Out) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return false;
  bool Ok = readAll(F, Out);
  std::fclose(F);
  return Ok;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string Socket = "vpod.sock";
  ServiceRequest Proto;
  bool PrintIR = false;
  std::vector<std::string> Files;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Val = [&Arg](const char *Name) -> const char * {
      size_t N = std::strlen(Name);
      if (Arg.compare(0, N, Name) == 0 && Arg.size() > N && Arg[N] == '=')
        return Arg.c_str() + N + 1;
      return nullptr;
    };
    if (const char *V = Val("--socket")) {
      Socket = V;
    } else if (const char *V = Val("--op")) {
      Proto.Op = V;
    } else if (const char *V = Val("--config")) {
      Proto.Config = V;
    } else if (const char *V = Val("--target")) {
      Proto.Target = V;
    } else if (const char *V = Val("--run")) {
      Proto.RunArgs = V;
    } else if (const char *V = Val("--arena-kb")) {
      Proto.ArenaKB = std::strtoull(V, nullptr, 10);
    } else if (const char *V = Val("--deadline-ms")) {
      Proto.DeadlineMs = std::strtoull(V, nullptr, 10);
    } else if (const char *V = Val("--fault")) {
      Proto.Fault = V;
    } else if (Arg == "--remarks") {
      Proto.WantRemarks = true;
    } else if (Arg == "--ir") {
      PrintIR = true;
    } else if (Arg == "--no-ir") {
      Proto.WantIR = false;
    } else if (Arg == "--help" || Arg == "-h") {
      usage();
      return 0;
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "vpoc: unknown argument '%s'\n", Arg.c_str());
      usage();
      return 2;
    } else {
      Files.push_back(Arg);
    }
  }
  if (PrintIR && Files.size() > 1) {
    std::fprintf(stderr, "vpoc: --ir works with a single kernel\n");
    return 2;
  }

  ServiceClient Client;
  if (Status S = Client.connectTo(Socket); !S) {
    std::fprintf(stderr, "vpoc: %s\n", S.message().c_str());
    return 2;
  }

  // Control ops carry no kernel.
  if (Proto.Op != "compile") {
    Proto.Id = "0";
    StatusOr<ServiceResponse> R = Client.call(Proto);
    if (!R) {
      std::fprintf(stderr, "vpoc: %s\n", R.status().message().c_str());
      return 2;
    }
    std::printf("%s\n", R->toJson().c_str());
    return R->Status == ErrorCode::Ok ? 0 : 1;
  }

  std::vector<ServiceRequest> Batch;
  if (Files.empty()) {
    ServiceRequest Req = Proto;
    Req.Id = "stdin";
    if (!readAll(stdin, Req.IR)) {
      std::fprintf(stderr, "vpoc: error reading stdin\n");
      return 2;
    }
    Batch.push_back(std::move(Req));
  } else {
    for (const std::string &Path : Files) {
      ServiceRequest Req = Proto;
      Req.Id = Path;
      if (!readFile(Path, Req.IR)) {
        std::fprintf(stderr, "vpoc: cannot read %s\n", Path.c_str());
        return 2;
      }
      Batch.push_back(std::move(Req));
    }
  }

  // Pipeline: write everything, then drain in order.
  for (const ServiceRequest &Req : Batch)
    if (Status S = Client.send(Req); !S) {
      std::fprintf(stderr, "vpoc: %s\n", S.message().c_str());
      return 2;
    }
  int Exit = 0;
  for (size_t I = 0; I < Batch.size(); ++I) {
    StatusOr<ServiceResponse> R = Client.receive();
    if (!R) {
      std::fprintf(stderr, "vpoc: %s\n", R.status().message().c_str());
      return 2;
    }
    if (R->Status != ErrorCode::Ok)
      Exit = 1;
    if (PrintIR) {
      if (R->Status != ErrorCode::Ok)
        std::fprintf(stderr, "vpoc: %s: %s\n",
                     errorCodeName(R->Status), R->Error.c_str());
      else
        std::fputs(R->IR.c_str(), stdout);
    } else {
      std::printf("%s\n", R->toJson().c_str());
    }
  }
  return Exit;
}
