//===- tools/fuzz_coalesce.cpp - Differential fuzzing driver ----*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line front end for the fuzzing subsystem (src/fuzz/):
///
///   fuzz_coalesce --seed=1 --cases=1000            # hunt
///   fuzz_coalesce --inject=coalesce:wrong-width:7 --cases=3
///                                                  # prove the oracle bites
///   fuzz_coalesce --replay=tests/fuzz/corpus       # regression replay
///
/// In the default hunt mode every failing case is delta-reduced and
/// written to --corpus-dir as a self-describing `.ir` repro (the file CI
/// uploads as an artifact); the exit code is the number of genuine
/// failures, clamped to 125. With --inject the expectation flips: every
/// case must be *caught* (FailKind::CompileIncident), the first catch is
/// reduced, and an expect=detect repro is written.
///
/// Containment: single-threaded runs fork per case (fuzz/Watchdog.h), so
/// a crash or hang in the pipeline costs one case. --threads=N>1 or
/// --no-fork switches to in-process execution, where the interpreter's
/// instruction budget (--max-insts) is the only watchdog.
///
//===----------------------------------------------------------------------===//

#include "fuzz/Campaign.h"
#include "fuzz/Corpus.h"
#include "fuzz/Reducer.h"
#include "fuzz/Watchdog.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

using namespace vpo;
using namespace vpo::fuzz;

namespace {

struct DriverArgs {
  uint64_t Seed = 1;
  unsigned Cases = 100;
  unsigned Threads = 1;
  unsigned TimeoutMs = 20000;
  uint64_t MaxInsts = 50'000'000;
  bool Fork = true;
  bool Reduce = true;
  bool JIT = true;
  bool NearMiss = false;
  std::vector<std::string> Targets = {"alpha", "m88100", "m68030"};
  std::string CorpusDir = "fuzz-repros";
  std::string ReplayPath;
  std::string Inject;
  bool Ok = true;
};

void usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--seed=N] [--cases=N] [--threads=N] [--targets=a,b]\n"
      "          [--timeout-ms=N] [--max-insts=N] [--no-fork]\n"
      "          [--no-reduce] [--no-jit] [--near-miss]\n"
      "          [--corpus-dir=PATH] [--inject=pass:kind:seed]\n"
      "          [--replay=FILE_OR_DIR]\n",
      Argv0);
}

std::vector<std::string> splitCommas(const std::string &S) {
  std::vector<std::string> Out;
  size_t Pos = 0;
  while (Pos <= S.size()) {
    size_t C = S.find(',', Pos);
    if (C == std::string::npos)
      C = S.size();
    if (C > Pos)
      Out.push_back(S.substr(Pos, C - Pos));
    Pos = C + 1;
  }
  return Out;
}

DriverArgs parseArgs(int Argc, char **Argv) {
  DriverArgs A;
  for (int I = 1; I < Argc; ++I) {
    const std::string S = Argv[I];
    auto Val = [&](const char *Prefix) {
      return S.substr(std::strlen(Prefix));
    };
    if (S.rfind("--seed=", 0) == 0) {
      A.Seed = std::strtoull(Val("--seed=").c_str(), nullptr, 10);
    } else if (S.rfind("--cases=", 0) == 0) {
      A.Cases = static_cast<unsigned>(
          std::strtoul(Val("--cases=").c_str(), nullptr, 10));
    } else if (S.rfind("--threads=", 0) == 0) {
      A.Threads = static_cast<unsigned>(
          std::strtoul(Val("--threads=").c_str(), nullptr, 10));
    } else if (S.rfind("--timeout-ms=", 0) == 0) {
      A.TimeoutMs = static_cast<unsigned>(
          std::strtoul(Val("--timeout-ms=").c_str(), nullptr, 10));
    } else if (S.rfind("--max-insts=", 0) == 0) {
      A.MaxInsts = std::strtoull(Val("--max-insts=").c_str(), nullptr, 10);
    } else if (S.rfind("--targets=", 0) == 0) {
      A.Targets = splitCommas(Val("--targets="));
    } else if (S == "--no-fork") {
      A.Fork = false;
    } else if (S == "--no-reduce") {
      A.Reduce = false;
    } else if (S == "--no-jit") {
      A.JIT = false;
    } else if (S == "--near-miss") {
      A.NearMiss = true;
    } else if (S.rfind("--corpus-dir=", 0) == 0) {
      A.CorpusDir = Val("--corpus-dir=");
    } else if (S.rfind("--inject=", 0) == 0) {
      A.Inject = Val("--inject=");
    } else if (S.rfind("--replay=", 0) == 0) {
      A.ReplayPath = Val("--replay=");
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", S.c_str());
      usage(Argv[0]);
      A.Ok = false;
      return A;
    }
  }
  return A;
}

OracleOptions oracleOptions(const DriverArgs &A) {
  OracleOptions O;
  O.Targets = A.Targets;
  O.MaxInsts = A.MaxInsts;
  O.CheckJIT = A.JIT;
  if (!A.Inject.empty()) {
    auto I = InjectSpec::parse(A.Inject);
    if (I)
      O.Inject = *I;
  }
  return O;
}

/// Reduces a failing case to the smallest kernel with the same verdict
/// and writes it to the corpus directory. Probes run against only the
/// failing target to keep the loop fast, and each probe inherits the
/// interpreter budget, so a mutation that loops forever self-limits.
void reduceAndWrite(const DriverArgs &A, const CaseOutcome &C,
                    const OracleOptions &Base) {
  GeneratedKernel K = generateKernel(
      A.NearMiss ? nearMissSpec(C.Seed) : KernelSpec::random(C.Seed));
  OracleOptions Probe = Base;
  Probe.CheckCSource = false; // reduce the IR rendering only
  if (!C.Result.Target.empty())
    Probe.Targets = {C.Result.Target};
  FailKind Want = C.Result.Kind;
  ReduceResult R = reduceIRText(
      K.IRText,
      [&](const std::string &Cand) {
        return checkIRText(Cand, K.Spec, Probe).Kind == Want;
      });

  std::error_code EC;
  std::filesystem::create_directories(A.CorpusDir, EC);
  CorpusEntry E;
  E.SpecSeed = C.Seed;
  E.Kind = Want;
  E.ExpectDetect = Base.Inject.has_value();
  E.NearMiss = A.NearMiss;
  E.Inject = Base.Inject;
  E.Note = "reduced " + std::to_string(R.OriginalInsts) + " -> " +
           std::to_string(R.FinalInsts) + " instructions (" +
           std::to_string(R.Probes) + " probes); " + C.Result.render();
  E.IRText = R.IRText;
  std::string Path = A.CorpusDir + "/seed" + std::to_string(C.Seed) + "-" +
                     failKindName(Want) + ".ir";
  if (writeCorpusFile(Path, E))
    std::printf("  reduced %zu -> %zu instructions, wrote %s\n",
                R.OriginalInsts, R.FinalInsts, Path.c_str());
  else
    std::printf("  failed to write %s\n", Path.c_str());
}

int runReplay(const DriverArgs &A) {
  std::vector<std::string> Files;
  if (std::filesystem::is_directory(A.ReplayPath))
    Files = listCorpusFiles(A.ReplayPath);
  else
    Files.push_back(A.ReplayPath);
  if (Files.empty()) {
    std::fprintf(stderr, "no .ir corpus files under %s\n",
                 A.ReplayPath.c_str());
    return 2;
  }
  OracleOptions Base = oracleOptions(A);
  int Failures = 0;
  for (const std::string &F : Files) {
    CorpusEntry E;
    std::string Err, Why;
    if (!loadCorpusFile(F, E, Err)) {
      std::printf("ERROR %s\n", Err.c_str());
      ++Failures;
      continue;
    }
    if (replayCorpusEntry(E, Base, Why)) {
      std::printf("PASS  %s\n", F.c_str());
    } else {
      std::printf("FAIL  %s: %s\n", F.c_str(), Why.c_str());
      ++Failures;
    }
  }
  std::printf("%d/%zu replays failed\n", Failures, Files.size());
  return Failures == 0 ? 0 : 1;
}

} // namespace

int main(int Argc, char **Argv) {
  DriverArgs A = parseArgs(Argc, Argv);
  if (!A.Ok)
    return 2;
  if (!A.Inject.empty() && !InjectSpec::parse(A.Inject)) {
    std::fprintf(stderr,
                 "malformed --inject '%s' (want pass:kind:seed, e.g. "
                 "coalesce:wrong-width:7)\n",
                 A.Inject.c_str());
    return 2;
  }
  if (!A.ReplayPath.empty())
    return runReplay(A);

  CampaignOptions CO;
  CO.Seed = A.Seed;
  CO.Cases = A.Cases;
  CO.Threads = A.Threads;
  CO.NearMiss = A.NearMiss;
  CO.Oracle = oracleOptions(A);
  const bool Contained =
      A.Fork && A.Threads == 1 && A.TimeoutMs > 0 && watchdogCanFork();
  if (Contained)
    CO.Executor = makeContainedExecutor(A.TimeoutMs);

  std::printf("fuzz_coalesce: seed=%llu cases=%u targets=%zu %s%s%s\n",
              static_cast<unsigned long long>(A.Seed), A.Cases,
              CO.Oracle.Targets.size(),
              Contained ? "fork-contained" : "in-process",
              A.NearMiss ? " near-miss" : "",
              CO.Oracle.Inject
                  ? (" inject=" + CO.Oracle.Inject->render()).c_str()
                  : "");
  CampaignReport Report = runCampaign(CO);
  std::fputs(Report.summary().c_str(), stdout);

  if (CO.Oracle.Inject) {
    // Self-test mode. Verifier-detectable faults must be caught as a
    // compile incident in every case. The unsound-prove fault is
    // verifier-clean by design: it only has a site when run-time checks
    // were emitted and only misbehaves when those checks would have
    // failed, so the bar is that the behavioral oracle catches it at
    // least once across the campaign (a planted soundness bug must not
    // survive a whole campaign unnoticed). The sched-length plant is
    // different again: it is not a miscompile at all (both profitability
    // verdicts produce correct code), so the guard rails and the
    // behavioral oracle stay quiet by design and the exact-scheduler
    // audit is the only layer that can see it. The oracle already folds
    // that into the verdict — a case passes only when the audit reported
    // the planted flip, and fails as audit-silent when the plant went
    // unreported — so here "caught" means the case *passed*, and the bar
    // is at-least-once across the campaign (kernels with no profitably
    // coalescible loop have nothing to flip and are legitimately silent).
    const bool Behavioral =
        CO.Oracle.Inject->Kind == FaultKind::UnsoundProve;
    const bool AuditPlant =
        CO.Oracle.Inject->Kind == FaultKind::SchedLength;
    unsigned Caught = 0;
    const CaseOutcome *First = nullptr;
    for (const CaseOutcome &C : Report.Outcomes) {
      bool Hit;
      if (Behavioral)
        Hit = C.Result.Kind == FailKind::StatusDiverged ||
              C.Result.Kind == FailKind::ReturnDiverged ||
              C.Result.Kind == FailKind::MemoryDiverged ||
              C.Result.Kind == FailKind::EngineDiverged;
      else if (AuditPlant)
        Hit = C.Result.passed();
      else
        Hit = C.Result.Kind == FailKind::CompileIncident;
      if (Hit) {
        ++Caught;
        if (!First)
          First = &C;
      }
    }
    std::printf("planted fault caught in %u/%zu cases\n", Caught,
                Report.Outcomes.size());
    if (First && A.Reduce && !AuditPlant)
      reduceAndWrite(A, *First, CO.Oracle);
    if (Behavioral || AuditPlant)
      return Caught >= 1 ? 0 : 1;
    return Caught == Report.Outcomes.size() ? 0 : 1;
  }

  unsigned Failures = Report.failures();
  if (Failures && A.Reduce)
    for (const CaseOutcome &C : Report.Outcomes)
      if (!C.Result.passed() && !C.Contained &&
          C.Result.Kind != FailKind::GeneratorInvalid)
        reduceAndWrite(A, C, CO.Oracle);
  return Failures > 125 ? 125 : static_cast<int>(Failures);
}
