//===- service/Protocol.cpp - vpod wire protocol ----------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "service/Protocol.h"

#include "support/Posix.h"
#include "support/Remark.h" // appendJsonString

#include <cctype>
#include <cstdlib>

using namespace vpo;
using namespace vpo::service;

//===----------------------------------------------------------------------===//
// Framing
//===----------------------------------------------------------------------===//

void vpo::service::appendFrame(std::string &Out, const std::string &Payload) {
  Out += std::to_string(Payload.size());
  Out += '\n';
  Out += Payload;
  Out += '\n';
}

bool vpo::service::writeFrame(int Fd, const std::string &Payload) {
  std::string Frame;
  appendFrame(Frame, Payload);
  return posix::writeFull(Fd, Frame);
}

FrameStatus vpo::service::readFrame(int Fd, std::string &Payload,
                                    size_t MaxBytes) {
  // Header: decimal digits up to '\n'. Read byte-wise — headers are tiny
  // and this keeps the blocking reader free of lookahead state.
  std::string Header;
  while (true) {
    char C;
    long Got = posix::readRetry(Fd, &C, 1);
    if (Got < 0)
      return FrameStatus::IoError;
    if (Got == 0)
      return Header.empty() ? FrameStatus::Eof : FrameStatus::Malformed;
    if (C == '\n')
      break;
    if (!std::isdigit(static_cast<unsigned char>(C)) ||
        Header.size() > 12)
      return FrameStatus::Malformed;
    Header += C;
  }
  if (Header.empty())
    return FrameStatus::Malformed;
  size_t Len = std::strtoull(Header.c_str(), nullptr, 10);
  if (Len > MaxBytes)
    return FrameStatus::Malformed;
  Payload.clear();
  Payload.reserve(Len);
  char Buf[4096];
  while (Payload.size() < Len) {
    size_t Want = std::min(sizeof(Buf), Len - Payload.size());
    long Got = posix::readRetry(Fd, Buf, Want);
    if (Got < 0)
      return FrameStatus::IoError;
    if (Got == 0)
      return FrameStatus::Malformed; // EOF mid-payload
    Payload.append(Buf, static_cast<size_t>(Got));
  }
  char Term;
  long Got = posix::readRetry(Fd, &Term, 1);
  if (Got < 0)
    return FrameStatus::IoError;
  if (Got == 0 || Term != '\n')
    return FrameStatus::Malformed;
  return FrameStatus::Ok;
}

FrameStatus FrameDecoder::next(std::string &Payload) {
  if (Bad)
    return FrameStatus::Malformed;
  size_t NL = Buf.find('\n');
  if (NL == std::string::npos) {
    if (Buf.size() > 13) { // longest sane header: 12 digits + '\n'
      Bad = true;
      return FrameStatus::Malformed;
    }
    return FrameStatus::NeedMore;
  }
  if (NL == 0 || NL > 12) {
    Bad = true;
    return FrameStatus::Malformed;
  }
  for (size_t I = 0; I < NL; ++I)
    if (!std::isdigit(static_cast<unsigned char>(Buf[I]))) {
      Bad = true;
      return FrameStatus::Malformed;
    }
  size_t Len = std::strtoull(Buf.substr(0, NL).c_str(), nullptr, 10);
  if (Len > MaxBytes) {
    Bad = true;
    return FrameStatus::Malformed;
  }
  if (Buf.size() < NL + 1 + Len + 1)
    return FrameStatus::NeedMore;
  if (Buf[NL + 1 + Len] != '\n') {
    Bad = true;
    return FrameStatus::Malformed;
  }
  Payload.assign(Buf, NL + 1, Len);
  Buf.erase(0, NL + 1 + Len + 1);
  return FrameStatus::Ok;
}

//===----------------------------------------------------------------------===//
// Flat JSON
//===----------------------------------------------------------------------===//

void JsonWriter::str(const char *Key, const std::string &V) {
  if (!First)
    Out += ',';
  First = false;
  appendJsonString(Out, Key);
  Out += ':';
  appendJsonString(Out, V);
}

void JsonWriter::num(const char *Key, int64_t V) {
  if (!First)
    Out += ',';
  First = false;
  appendJsonString(Out, Key);
  Out += ':';
  Out += std::to_string(V);
}

void JsonWriter::num(const char *Key, uint64_t V) {
  if (!First)
    Out += ',';
  First = false;
  appendJsonString(Out, Key);
  Out += ':';
  Out += std::to_string(V);
}

void JsonWriter::boolean(const char *Key, bool V) {
  if (!First)
    Out += ',';
  First = false;
  appendJsonString(Out, Key);
  Out += ':';
  Out += V ? "true" : "false";
}

std::string JsonWriter::finish() {
  Out += '}';
  return std::move(Out);
}

namespace {

void skipWs(const std::string &S, size_t &I) {
  while (I < S.size() &&
         std::isspace(static_cast<unsigned char>(S[I])))
    ++I;
}

/// Parses a JSON string literal at S[I] (expects the opening quote).
bool parseJsonStringAt(const std::string &S, size_t &I, std::string &Out) {
  if (I >= S.size() || S[I] != '"')
    return false;
  ++I;
  Out.clear();
  while (I < S.size()) {
    char C = S[I++];
    if (C == '"')
      return true;
    if (C == '\\') {
      if (I >= S.size())
        return false;
      char N = S[I++];
      switch (N) {
      case '"': Out += '"'; break;
      case '\\': Out += '\\'; break;
      case '/': Out += '/'; break;
      case 'n': Out += '\n'; break;
      case 't': Out += '\t'; break;
      case 'r': Out += '\r'; break;
      case 'b': Out += '\b'; break;
      case 'f': Out += '\f'; break;
      case 'u': {
        if (I + 4 > S.size())
          return false;
        // The writer only emits \u00XX (control bytes); decode that
        // range and pass anything else through as '?' rather than
        // implementing full UTF-16 surrogates.
        unsigned V = static_cast<unsigned>(
            std::strtoul(S.substr(I, 4).c_str(), nullptr, 16));
        Out += V < 256 ? static_cast<char>(V) : '?';
        I += 4;
        break;
      }
      default:
        return false;
      }
      continue;
    }
    Out += C;
  }
  return false; // unterminated
}

} // namespace

bool vpo::service::parseFlatJson(
    const std::string &Text, std::map<std::string, std::string> &Out) {
  size_t I = 0;
  skipWs(Text, I);
  if (I >= Text.size() || Text[I] != '{')
    return false;
  ++I;
  skipWs(Text, I);
  if (I < Text.size() && Text[I] == '}')
    return true; // empty object
  while (true) {
    skipWs(Text, I);
    std::string Key;
    if (!parseJsonStringAt(Text, I, Key))
      return false;
    skipWs(Text, I);
    if (I >= Text.size() || Text[I] != ':')
      return false;
    ++I;
    skipWs(Text, I);
    if (I >= Text.size())
      return false;
    std::string Val;
    if (Text[I] == '"') {
      if (!parseJsonStringAt(Text, I, Val))
        return false;
    } else if (Text[I] == '{' || Text[I] == '[') {
      return false; // flat objects only
    } else {
      // Number / true / false / null: raw token up to , } or ws.
      size_t Start = I;
      while (I < Text.size() && Text[I] != ',' && Text[I] != '}' &&
             !std::isspace(static_cast<unsigned char>(Text[I])))
        ++I;
      if (I == Start)
        return false;
      Val = Text.substr(Start, I - Start);
    }
    Out[Key] = std::move(Val);
    skipWs(Text, I);
    if (I >= Text.size())
      return false;
    if (Text[I] == ',') {
      ++I;
      continue;
    }
    if (Text[I] == '}')
      return true;
    return false;
  }
}

//===----------------------------------------------------------------------===//
// Messages
//===----------------------------------------------------------------------===//

namespace {

uint64_t fieldU64(const std::map<std::string, std::string> &M,
                  const char *Key) {
  auto It = M.find(Key);
  if (It == M.end())
    return 0;
  return std::strtoull(It->second.c_str(), nullptr, 10);
}

int64_t fieldI64(const std::map<std::string, std::string> &M,
                 const char *Key) {
  auto It = M.find(Key);
  if (It == M.end())
    return 0;
  return std::strtoll(It->second.c_str(), nullptr, 10);
}

std::string fieldStr(const std::map<std::string, std::string> &M,
                     const char *Key) {
  auto It = M.find(Key);
  return It == M.end() ? std::string() : It->second;
}

bool fieldBool(const std::map<std::string, std::string> &M,
               const char *Key) {
  return fieldStr(M, Key) == "true";
}

} // namespace

std::string ServiceRequest::toJson() const {
  JsonWriter W;
  W.str("op", Op);
  if (!Id.empty())
    W.str("id", Id);
  if (!Config.empty())
    W.str("config", Config);
  if (!Target.empty())
    W.str("target", Target);
  if (WantRemarks)
    W.boolean("remarks", true);
  if (!WantIR)
    W.boolean("want_ir", false);
  if (DeadlineMs)
    W.num("deadline_ms", DeadlineMs);
  if (!RunArgs.empty())
    W.str("run_args", RunArgs);
  if (ArenaKB)
    W.num("arena_kb", ArenaKB);
  if (!Fault.empty())
    W.str("fault", Fault);
  if (Rung)
    W.num("rung", uint64_t(Rung));
  if (!IR.empty())
    W.str("ir", IR); // last: the big field, keeps headers greppable
  return W.finish();
}

std::optional<ServiceRequest>
ServiceRequest::fromJson(const std::string &Text) {
  std::map<std::string, std::string> M;
  if (!parseFlatJson(Text, M))
    return std::nullopt;
  ServiceRequest R;
  if (M.count("op"))
    R.Op = M["op"];
  R.Id = fieldStr(M, "id");
  R.IR = fieldStr(M, "ir");
  if (M.count("config"))
    R.Config = M["config"];
  if (M.count("target"))
    R.Target = M["target"];
  R.WantRemarks = fieldBool(M, "remarks");
  R.WantIR = !M.count("want_ir") || fieldBool(M, "want_ir");
  R.DeadlineMs = fieldU64(M, "deadline_ms");
  R.RunArgs = fieldStr(M, "run_args");
  R.ArenaKB = fieldU64(M, "arena_kb");
  R.Fault = fieldStr(M, "fault");
  R.Rung = static_cast<unsigned>(fieldU64(M, "rung"));
  return R;
}

std::string ServiceResponse::toJson() const {
  JsonWriter W;
  W.str("status", errorCodeName(Status));
  if (!Id.empty())
    W.str("id", Id);
  if (!Error.empty())
    W.str("error", Error);
  if (Rung)
    W.num("rung", uint64_t(Rung));
  if (!Degraded.empty())
    W.str("degraded", Degraded);
  if (!Incidents.empty())
    W.str("incidents", Incidents);
  if (Cached)
    W.boolean("cached", true);
  if (!Key.empty())
    W.str("key", Key);
  if (!Stats.empty())
    W.str("stats", Stats);
  if (Ran) {
    W.boolean("ran", true);
    W.str("run_status", RunStatus);
    W.num("return_value", ReturnValue);
    W.num("cycles", Cycles);
    W.num("instructions", Instructions);
  }
  for (const auto &KV : Extra)
    W.str(KV.first.c_str(), KV.second);
  if (!Remarks.empty())
    W.str("remarks", Remarks);
  if (!IR.empty())
    W.str("ir", IR);
  return W.finish();
}

std::optional<ServiceResponse>
ServiceResponse::fromJson(const std::string &Text) {
  std::map<std::string, std::string> M;
  if (!parseFlatJson(Text, M))
    return std::nullopt;
  ServiceResponse R;
  std::optional<ErrorCode> Code = errorCodeFromName(fieldStr(M, "status"));
  if (!Code)
    return std::nullopt;
  R.Status = *Code;
  R.Id = fieldStr(M, "id");
  R.Error = fieldStr(M, "error");
  R.Rung = static_cast<unsigned>(fieldU64(M, "rung"));
  R.Degraded = fieldStr(M, "degraded");
  R.Incidents = fieldStr(M, "incidents");
  R.Cached = fieldBool(M, "cached");
  R.Key = fieldStr(M, "key");
  R.Stats = fieldStr(M, "stats");
  R.Ran = fieldBool(M, "ran");
  R.RunStatus = fieldStr(M, "run_status");
  R.ReturnValue = fieldI64(M, "return_value");
  R.Cycles = fieldU64(M, "cycles");
  R.Instructions = fieldU64(M, "instructions");
  R.Remarks = fieldStr(M, "remarks");
  R.IR = fieldStr(M, "ir");
  // Anything else lands in Extra, preserving the status-op counters.
  static const char *Known[] = {
      "status", "id",         "error",        "rung",   "degraded",
      "incidents", "cached",  "key",          "stats",  "ran",
      "run_status", "return_value", "cycles", "instructions",
      "remarks", "ir"};
  for (const auto &KV : M) {
    bool IsKnown = false;
    for (const char *K : Known)
      if (KV.first == K) {
        IsKnown = true;
        break;
      }
    if (!IsKnown)
      R.Extra.emplace_back(KV.first, KV.second);
  }
  return R;
}

std::string ServiceResponse::resultSignature() const {
  JsonWriter W;
  W.str("status", errorCodeName(Status));
  W.num("rung", uint64_t(Rung));
  W.str("incidents", Incidents);
  W.str("ir", IR);
  W.str("stats", Stats);
  W.str("remarks", Remarks);
  W.str("key", Key);
  if (Ran) {
    W.str("run_status", RunStatus);
    W.num("return_value", ReturnValue);
    W.num("cycles", Cycles);
    W.num("instructions", Instructions);
  }
  return W.finish();
}
