//===- service/Daemon.h - The vpod compile service daemon -------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The daemon side of the compile service: a single-threaded poll() loop
/// that accepts framed requests on a Unix-domain socket and farms the
/// dangerous work (parsing, optimizing, simulating untrusted kernels)
/// out to a pool of forked worker processes. The event loop itself never
/// touches request IR — its availability does not depend on any property
/// of the input.
///
/// Robustness model, in the order a request meets it:
///
///   1. **Load shedding.** Requests shard onto per-worker bounded queues
///      (by content hash, so repeats of one kernel serialize onto one
///      worker and populate the cache for the rest). A full queue sheds
///      the request immediately with ErrorCode::Overloaded — the client
///      knows nothing was attempted.
///   2. **Content cache.** Results are keyed by canonicalized content
///      (service/ContentCache.h); a hit bypasses the pool entirely and
///      replays a byte-identical result.
///   3. **Containment.** Each attempt runs in a forked worker under a
///      wall-clock deadline. A crash (any signal) or deadline expiry
///      kills only the worker; the daemon reaps it and respawns the
///      slot with exponential backoff (reset on the first success).
///   4. **Degradation ladder.** A request whose worker died is retried
///      at the next rung — 1: no coalescing, 2: reference O0 pipeline —
///      so optimizer bugs cost optimization, never availability. The
///      response reports Rung and Degraded; a request that dies even at
///      rung 2 gets a structured DeadlineExceeded / Internal error, and
///      the daemon keeps serving.
///
/// Single-threadedness is load-bearing: fork() from a multi-threaded
/// process inherits held locks in the child, so the pool would deadlock
/// the moment a worker forked while another thread held the heap lock.
/// The loop only shuttles bytes; the pool provides the parallelism.
///
//===----------------------------------------------------------------------===//

#ifndef VPO_SERVICE_DAEMON_H
#define VPO_SERVICE_DAEMON_H

#include "service/CacheStore.h"
#include "service/ContentCache.h"
#include "service/Protocol.h"
#include "service/Worker.h"
#include "support/Diagnostics.h"

#include <csignal>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

namespace vpo {
namespace service {

struct DaemonOptions {
  std::string SocketPath = "vpod.sock";
  unsigned Workers = 4;
  /// Bounded queue depth per worker shard; beyond it requests shed with
  /// ErrorCode::Overloaded.
  size_t QueueDepth = 64;
  uint64_t DefaultDeadlineMs = 5000;
  /// Cap on a request's own deadline_ms override.
  uint64_t MaxDeadlineMs = 30000;
  size_t CacheEntries = 1024;
  size_t MaxFrameBytes = defaultMaxFrameBytes;
  /// Worker resource fences (and --allow-fault-injection).
  WorkerLimits Limits;
  /// Checked each loop tick; set from a signal handler to stop cleanly.
  volatile std::sig_atomic_t *StopFlag = nullptr;
  /// Checked each loop tick; set from SIGTERM to drain: stop accepting,
  /// finish queued work under DrainDeadlineMs, flush the journal, exit.
  volatile std::sig_atomic_t *DrainFlag = nullptr;
  uint64_t DrainDeadlineMs = 5000;
  /// Path of the persistent cache journal (service/CacheStore.h).
  /// Empty disables persistence.
  std::string CacheJournalPath;
  /// fsync the journal after every insert (the crash-safety default).
  bool JournalSyncEveryInsert = true;
};

/// Monotonically increasing service counters, reported by op=status and
/// asserted on by the availability tests.
struct DaemonCounters {
  uint64_t Requests = 0;      ///< compile requests accepted
  uint64_t CacheHits = 0;     ///< served without touching the pool
  uint64_t Shed = 0;          ///< rejected with Overloaded
  uint64_t WorkerCrashes = 0; ///< attempts that killed their worker
  uint64_t WorkerDeadlines = 0; ///< attempts killed by the deadline
  uint64_t Respawns = 0;      ///< worker processes forked after the initial pool
  uint64_t Degraded = 0;      ///< responses served from rung > 0
  uint64_t Exhausted = 0;     ///< requests that failed every rung
  uint64_t Probes = 0;        ///< rung-0 probation probes dispatched
  uint64_t ProbeFailures = 0; ///< probes whose worker died again
  uint64_t Reloads = 0;       ///< op=reload requests honored
};

class Daemon {
public:
  explicit Daemon(DaemonOptions Opts);
  ~Daemon();

  Daemon(const Daemon &) = delete;
  Daemon &operator=(const Daemon &) = delete;

  /// Binds the socket and forks the initial pool. On error nothing is
  /// left running.
  Status start();

  /// Runs the event loop until StopFlag is raised or an op=shutdown
  /// request arrives. Returns only after workers are reaped and the
  /// socket unlinked.
  void run();

  /// One loop iteration (poll + dispatch), for tests that drive the
  /// daemon in-process without committing to run()'s lifetime.
  /// \returns false once a stop was requested.
  bool step(int TimeoutMs);

  const DaemonCounters &counters() const { return Counters; }
  const ContentCache &cache() const { return Cache; }
  const std::string &socketPath() const { return Opts.SocketPath; }
  const CacheRecoveryStats &recovery() const { return Recovery; }
  bool draining() const { return Draining; }

private:
  struct ClientConn {
    int Fd = -1;
    FrameDecoder Dec;
    std::string Out;    ///< bytes not yet written
    bool CloseAfterFlush = false;
    /// Per-connection response ordering. Pipelined requests shard onto
    /// different workers and complete in any order; each incoming frame
    /// takes a ticket, and a response whose ticket is ahead of NextSend
    /// is held until the gap closes. Clients therefore always see
    /// responses in request order, which is what lets them pipeline
    /// without correlating by id.
    uint64_t NextTicket = 0;
    uint64_t NextSend = 0;
    std::map<uint64_t, std::string> Held; ///< framed, early responses
  };

  /// One queued or in-flight compile attempt.
  struct Pending {
    ServiceRequest Req;
    uint64_t ClientSeq = 0;
    ContentKey RawKey;
    unsigned Rung = 0;
    std::string Degraded;   ///< why the rung moved ("worker-crash", ...)
    uint64_t DeadlineMs = 0; ///< resolved per-attempt budget
    /// Rung actually dispatched: max(Rung, worker's sticky rung) unless
    /// this attempt is a probation probe.
    unsigned AttemptRung = 0;
    bool Probe = false; ///< rung-0 probe of a sticky-degraded worker
    uint64_t Serial = 0; ///< per-request token for distinct-death counting
    uint64_t Ticket = 0; ///< position in the connection's response order
  };

  struct WorkerSlot {
    long Pid = -1;
    int Fd = -1;
    FrameDecoder Dec;
    std::string Out;
    bool Busy = false;
    Pending Cur;
    uint64_t DeadlineAt = 0; ///< monotonic ms; 0 when idle
    std::deque<Pending> Queue;
    unsigned Fails = 0;     ///< consecutive deaths, drives backoff
    uint64_t RespawnAt = 0; ///< monotonic ms gate for the next fork
    /// Probation floor: a worker that keeps dying serves at this rung
    /// until an op=reload arms a probe and the probe succeeds.
    unsigned StickyRung = 0;
    bool ProbeArmed = false; ///< next rung-0 request runs as the probe
    /// Deaths on *distinct* requests since the last success. A single
    /// request escalating its own ladder counts once: its retries are
    /// already contained by the per-request ladder, and one poisoned
    /// input must not demote the slot for everyone else.
    unsigned DistinctFails = 0;
    uint64_t LastDeathSerial = 0;
  };

  // Lifecycle.
  Status spawnWorker(WorkerSlot &W);
  void killWorker(WorkerSlot &W);
  void respawnDueWorkers(uint64_t Now);

  // Event handling.
  void acceptClients();
  void readClient(uint64_t Seq);
  void flushClient(uint64_t Seq);
  void dropClient(uint64_t Seq);
  void handleFrame(uint64_t Seq, const std::string &Payload);
  void handleCompile(uint64_t Seq, uint64_t Ticket, ServiceRequest Req);
  void readWorker(size_t Idx);
  void handleWorkerResponse(WorkerSlot &W, const std::string &Payload);
  void workerDied(size_t Idx, const char *Why);
  void checkDeadlines(uint64_t Now);
  void pumpWorkers(uint64_t Now);
  void beginDrain(uint64_t Now);
  bool drainComplete() const;
  void handleReload(uint64_t Seq, uint64_t Ticket, const ServiceRequest &Req);

  // Responses.
  void sendResponse(uint64_t Seq, uint64_t Ticket, const ServiceRequest &Req,
                    ServiceResponse Resp);
  void sendCached(uint64_t Seq, uint64_t Ticket, const ServiceRequest &Req,
                  const CachedResult &CR);
  /// Re-queue (next rung) or fail (ladder exhausted) W.Cur.
  void escalate(WorkerSlot &W, const char *Why, ErrorCode ExhaustedCode);

  bool stopRequested() const {
    return Stopping || (Opts.StopFlag && *Opts.StopFlag);
  }

  DaemonOptions Opts;
  int ListenFd = -1;
  ContentCache Cache;
  CacheStore Store;
  CacheRecoveryStats Recovery;
  DaemonCounters Counters;
  bool Draining = false;
  uint64_t DrainDeadlineAt = 0;
  uint64_t NextRequestSerial = 1;
  uint64_t NextClientSeq = 1;
  std::map<uint64_t, ClientConn> Clients;
  std::unordered_map<int, uint64_t> FdToClient;
  std::vector<WorkerSlot> Workers;
  bool Stopping = false;
};

} // namespace service
} // namespace vpo

#endif // VPO_SERVICE_DAEMON_H
