//===- service/Worker.cpp - Crash-contained compile worker ------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "service/Worker.h"

#include "ir/Function.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "pipeline/FaultInjection.h"
#include "sim/Interpreter.h"
#include "sim/Memory.h"
#include "support/Posix.h"
#include "support/Remark.h"
#include "target/TargetMachine.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

using namespace vpo;
using namespace vpo::service;

//===----------------------------------------------------------------------===//
// Configurations and the degradation ladder
//===----------------------------------------------------------------------===//

const std::vector<PipelineConfig> &vpo::service::serviceConfigs() {
  // Mirrors the fuzzer's oracle matrix (fuzz/Oracle.cpp) by name so a
  // kernel that survived fuzzing is requestable under the same labels —
  // without making the service link the fuzzing subsystem.
  static const std::vector<PipelineConfig> Configs = [] {
    std::vector<PipelineConfig> Cfgs;
    {
      PipelineConfig C;
      C.Name = "O0";
      C.Options.Mode = CoalesceMode::None;
      C.Options.Unroll = false;
      C.Options.Schedule = false;
      C.Options.Cleanup = false;
      Cfgs.push_back(C);
    }
    {
      PipelineConfig C;
      C.Name = "vpo-O";
      C.Options.Mode = CoalesceMode::None;
      Cfgs.push_back(C);
    }
    {
      PipelineConfig C;
      C.Name = "coalesce-loads";
      C.Options.Mode = CoalesceMode::Loads;
      Cfgs.push_back(C);
    }
    {
      PipelineConfig C;
      C.Name = "coalesce-all";
      C.Options.Mode = CoalesceMode::LoadsAndStores;
      Cfgs.push_back(C);
    }
    {
      PipelineConfig C;
      C.Name = "coalesce-all+companions";
      C.Options.Mode = CoalesceMode::LoadsAndStores;
      C.Options.OptimizeRecurrences = true;
      C.Options.ScalarReplace = true;
      Cfgs.push_back(C);
    }
    {
      PipelineConfig C;
      C.Name = "coalesce-all-u4";
      C.Options.Mode = CoalesceMode::LoadsAndStores;
      C.Options.UnrollFactor = 4;
      Cfgs.push_back(C);
    }
    return Cfgs;
  }();
  return Configs;
}

const PipelineConfig *vpo::service::serviceConfigByName(
    const std::string &Name) {
  for (const PipelineConfig &C : serviceConfigs())
    if (C.Name == Name)
      return &C;
  return nullptr;
}

CompileOptions vpo::service::ladderOptions(const CompileOptions &Requested,
                                           unsigned Rung) {
  if (Rung == 0)
    return Requested;
  if (Rung == 1) {
    // Conservative: the requested pipeline minus coalescing and its
    // companion passes — the machinery most likely to have hurt the
    // previous attempt. Equivalent to the "vpo -O" column.
    CompileOptions CO = Requested;
    CO.Mode = CoalesceMode::None;
    CO.OptimizeRecurrences = false;
    CO.ScalarReplace = false;
    return CO;
  }
  // Rung 2+: the O0 reference pipeline, identical to the "O0" named
  // config the differential fuzzer baselines against.
  CompileOptions CO = serviceConfigByName("O0")->Options;
  CO.TraceHook = Requested.TraceHook;
  return CO;
}

//===----------------------------------------------------------------------===//
// Fault plants
//===----------------------------------------------------------------------===//

namespace {

/// Parses "NAME" or "NAME:K" (K = highest rung the plant fires on).
bool parsePlant(const std::string &Fault, const char *Name,
                unsigned &MaxRung) {
  size_t N = std::strlen(Name);
  if (Fault.compare(0, N, Name) != 0)
    return false;
  if (Fault.size() == N) {
    MaxRung = 0;
    return true;
  }
  if (Fault[N] != ':')
    return false;
  char *End = nullptr;
  unsigned long K = std::strtoul(Fault.c_str() + N + 1, &End, 10);
  if (End == Fault.c_str() + N + 1 || *End != '\0')
    return false;
  MaxRung = static_cast<unsigned>(K);
  return true;
}

std::optional<FaultKind> faultKindByName(const std::string &Name) {
  static const FaultKind All[] = {FaultKind::WrongWidth,
                                  FaultKind::ClobberedBase,
                                  FaultKind::DroppedCheck,
                                  FaultKind::MissingOperand,
                                  FaultKind::EmptyBlock};
  for (FaultKind K : All)
    if (Name == faultKindName(K))
      return K;
  return std::nullopt;
}

/// "pass:kind:seed" -> a bound FaultInjector hook, or nullopt.
std::optional<FaultInjector> parseInjectPlant(const std::string &Fault) {
  size_t C1 = Fault.find(':');
  if (C1 == std::string::npos)
    return std::nullopt;
  size_t C2 = Fault.find(':', C1 + 1);
  if (C2 == std::string::npos)
    return std::nullopt;
  std::optional<FaultKind> K =
      faultKindByName(Fault.substr(C1 + 1, C2 - C1 - 1));
  if (!K)
    return std::nullopt;
  char *End = nullptr;
  uint64_t Seed = std::strtoull(Fault.c_str() + C2 + 1, &End, 10);
  if (End == Fault.c_str() + C2 + 1 || *End != '\0')
    return std::nullopt;
  return FaultInjector(Fault.substr(0, C1), *K, Seed);
}

/// Honors a crash/hang plant: dies (or never returns) when the plant's
/// rung bound covers \p Rung. The bound is what makes the ladder
/// testable — "crash:1" kills the rung-0 and rung-1 attempts, so the
/// client's answer must have come from the rung-2 reference compile.
void maybeDie(const std::string &Fault, unsigned Rung) {
  unsigned MaxRung = 0;
  if (parsePlant(Fault, "crash", MaxRung) && Rung <= MaxRung)
    __builtin_trap();
  if (parsePlant(Fault, "hang", MaxRung) && Rung <= MaxRung) {
    for (;;) {
#if defined(__unix__) || defined(__APPLE__)
      ::usleep(50'000);
#endif
    }
  }
}

std::string renderIncidents(const CompileReport &Rep) {
  std::string Out;
  for (const CompileReport::PassIncident &I : Rep.Incidents) {
    if (!Out.empty())
      Out += ";";
    Out += "pass=" + I.Pass;
    if (I.RolledBack)
      Out += " rolled-back";
    if (I.Retried)
      Out += " retried";
    if (I.Disabled)
      Out += " disabled";
    if (I.PipelineStopped)
      Out += " stopped";
  }
  return Out;
}

/// Comma-separated int64 list. \returns false on any malformed element.
bool parseRunArgs(const std::string &Text, std::vector<int64_t> &Out) {
  size_t Pos = 0;
  while (Pos <= Text.size()) {
    size_t Comma = Text.find(',', Pos);
    std::string Tok = Text.substr(
        Pos, Comma == std::string::npos ? std::string::npos : Comma - Pos);
    if (Tok.empty())
      return false;
    errno = 0;
    char *End = nullptr;
    long long V = std::strtoll(Tok.c_str(), &End, 0);
    if (End != Tok.c_str() + Tok.size() || errno == ERANGE)
      return false;
    Out.push_back(static_cast<int64_t>(V));
    if (Comma == std::string::npos)
      break;
    Pos = Comma + 1;
  }
  return true;
}

ServiceResponse errorResponse(const ServiceRequest &Req, ErrorCode Code,
                              std::string Error) {
  ServiceResponse R;
  R.Id = Req.Id;
  R.Rung = Req.Rung;
  R.Status = Code;
  R.Error = std::move(Error);
  return R;
}

} // namespace

//===----------------------------------------------------------------------===//
// The compile core
//===----------------------------------------------------------------------===//

ServiceResponse vpo::service::compileServiceRequest(const ServiceRequest &Req,
                                                    const WorkerLimits &Limits,
                                                    ContentKey *Canon) {
  if (Canon)
    *Canon = ContentKey();

  if (Req.Op != "compile")
    return errorResponse(Req, ErrorCode::Unsupported,
                         "worker handles op=compile only, got \"" + Req.Op +
                             "\"");
  if (!Req.Fault.empty() && !Limits.AllowFaultInjection)
    return errorResponse(
        Req, ErrorCode::Unsupported,
        "fault plants require a daemon started with --allow-fault-injection");

  const PipelineConfig *Cfg = serviceConfigByName(Req.Config);
  if (!Cfg) {
    std::string Known;
    for (const PipelineConfig &C : serviceConfigs())
      Known += (Known.empty() ? "" : ", ") + C.Name;
    return errorResponse(Req, ErrorCode::Unsupported,
                         "unknown config \"" + Req.Config + "\" (known: " +
                             Known + ")");
  }
  std::optional<TargetMachine> TM = tryMakeTargetByName(Req.Target);
  if (!TM) {
    std::string Known;
    for (const std::string &N : knownTargetNames())
      Known += (Known.empty() ? "" : ", ") + N;
    return errorResponse(Req, ErrorCode::Unsupported,
                         "unknown target \"" + Req.Target + "\" (known: " +
                             Known + ")");
  }

  std::vector<int64_t> RunArgs;
  if (!Req.RunArgs.empty() && !parseRunArgs(Req.RunArgs, RunArgs))
    return errorResponse(Req, ErrorCode::ParseError,
                         "malformed run args \"" + Req.RunArgs +
                             "\" (want comma-separated integers)");

  std::vector<Diagnostic> ParseDiags;
  std::unique_ptr<Module> M = parseModule(Req.IR, ParseDiags);
  if (!M)
    return errorResponse(Req, ErrorCode::ParseError,
                         ParseDiags.empty() ? "unparseable IR"
                                            : ParseDiags.front().render());
  if (M->functions().empty())
    return errorResponse(Req, ErrorCode::ParseError,
                         "module contains no function");
  Function &F = *M->functions().front();

  // Canonical content key: parse -> print normalizes whitespace and
  // comments, so textual variants of one kernel share a store entry.
  // Run-mode requests get a distinct key (they carry extra results).
  ContentKey Key = hashContent(printFunction(F), Cfg->Name, Req.Target,
                               runSignature(Req));
  if (Canon)
    *Canon = Key;

  // Crash/hang plants fire after parsing, before the pipeline — a real
  // worker death on a well-formed request, which is exactly the shape of
  // failure the daemon's containment and ladder exist for.
  if (Limits.AllowFaultInjection && !Req.Fault.empty())
    maybeDie(Req.Fault, Req.Rung);

  ServiceResponse R;
  R.Id = Req.Id;
  R.Rung = Req.Rung;
  R.Key = Key.hex();

  CollectingRemarkSink Sink;
  CompileOptions CO = ladderOptions(Cfg->Options, Req.Rung);
  CO.GuardRails = true;
  CO.MaxFunctionInsts = Limits.MaxFunctionInsts;
  // Always collect remarks: the response filter (WantRemarks) is applied
  // at serving time so the flag never changes what gets cached, and the
  // telemetry contract guarantees the sink cannot perturb the compile.
  CO.Remarks = &Sink;
  if (Limits.AllowFaultInjection && !Req.Fault.empty())
    if (std::optional<FaultInjector> Inj = parseInjectPlant(Req.Fault))
      CO.FaultHook = *Inj;

  CompileReport Rep = compileFunction(F, *TM, CO);
  R.Incidents = renderIncidents(Rep);
  R.Stats = Rep.Coalesce.toJson();
  R.Remarks = Sink.toJsonLines();
  R.IR = printFunction(F);
  if (!Rep.Succeeded) {
    // Input never verified or a required pass failed after retry. The
    // diagnostics say which; surface the most specific code we have.
    std::vector<Diagnostic> Diags = Rep.allDiagnostics();
    R.Status = Diags.empty() ? ErrorCode::PassFailed : Diags.front().Code;
    if (R.Status == ErrorCode::Ok)
      R.Status = ErrorCode::PassFailed;
    R.Error = Diags.empty() ? "pipeline failed" : Diags.front().render();
    return R;
  }

  if (!Req.RunArgs.empty()) {
    size_t ArenaBytes =
        (Req.ArenaKB ? Req.ArenaKB : 64) * size_t(1024) + 4096;
    Memory Mem(ArenaBytes);
    InterpreterOptions IO;
    IO.MaxSteps = Limits.MaxInsts;
    // Run mode answers "what does this kernel compute" — return value,
    // memory effects, trap point — not "how fast", so it executes on the
    // functional tiered engine: exact architectural results (including
    // byte-identical trap diagnostics) with Cycles reported as 0. Native
    // promotion is withheld at the last ladder rung: an input that has
    // already killed workers stays on the portable interpreter tier.
    IO.EnableJIT = true;
    IO.JITNative = Limits.JITNative && Req.Rung < maxServiceRung;
    // "jit-wild-store[:N]" plants a wild store into the Nth native block
    // (jit/JIT.h fault injector): the quarantine machinery must catch
    // the fault, permanently deopt the block, and replay per-op on the
    // interpreter — the response must still be architecturally exact.
    unsigned PlantBlock = 0;
    if (Limits.AllowFaultInjection && IO.JITNative &&
        parsePlant(Req.Fault, "jit-wild-store", PlantBlock)) {
      IO.JITPlantWildStore = PlantBlock ? PlantBlock : 1;
      // Service kernels iterate only a handful of times; promote almost
      // immediately so the planted block actually compiles and faults.
      IO.JITHotThreshold = 2;
      IO.Remarks = &Sink; // surface jit-native-fault / jit-summary
    }
    Interpreter Interp(*TM, Mem, IO);
    RunResult RR = Interp.run(F, RunArgs);
    if (IO.Remarks)
      R.Remarks = Sink.toJsonLines(); // re-render: include run remarks
    R.Ran = true;
    R.RunStatus = runStatusName(RR.Exit);
    R.ReturnValue = RR.ReturnValue;
    R.Cycles = RR.Cycles;
    R.Instructions = RR.Instructions;
    if (RR.Exit == RunResult::Status::StepLimit) {
      // The budget fence, not a program property: don't cache, the
      // daemon may retry with a different budget.
      R.Status = ErrorCode::ResourceExhausted;
      R.Error = "run exceeded the instruction budget (" +
                std::to_string(Limits.MaxInsts) + ")";
    } else if (RR.Exit == RunResult::Status::MalformedIR) {
      R.Status = ErrorCode::Internal;
      R.Error = "compiled function failed to verify for execution: " +
                RR.Error;
    }
    // Traps (out-of-bounds, unaligned, divide-by-zero) are deterministic
    // properties of (kernel, args, arena): Status stays Ok and RunStatus
    // carries the outcome, so they cache like any other result.
  }
  return R;
}

//===----------------------------------------------------------------------===//
// Forked-child serve loop
//===----------------------------------------------------------------------===//

void vpo::service::workerMain(int Fd, const WorkerLimits &Limits) {
  posix::ignoreSigpipe();
  if (Limits.MemLimitMB)
    posix::limitAddressSpace(Limits.MemLimitMB << 20);
  for (;;) {
    std::string Payload;
    FrameStatus FS = readFrame(Fd, Payload, Limits.MaxFrameBytes);
    if (FS == FrameStatus::Eof)
      ::_exit(0);
    if (FS != FrameStatus::Ok)
      ::_exit(1);
    std::optional<ServiceRequest> Req = ServiceRequest::fromJson(Payload);
    ServiceResponse Resp;
    if (!Req) {
      Resp.Status = ErrorCode::ParseError;
      Resp.Error = "malformed request frame";
    } else {
      Resp = compileServiceRequest(*Req, Limits);
    }
    if (!writeFrame(Fd, Resp.toJson()))
      ::_exit(1);
  }
}
