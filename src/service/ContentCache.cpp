//===- service/ContentCache.cpp - Content-addressed result cache *- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "service/ContentCache.h"

using namespace vpo;
using namespace vpo::service;

namespace {

constexpr uint64_t FnvPrime = 1099511628211ull;

uint64_t fnv1a(uint64_t H, const std::string &S, uint8_t Salt) {
  for (unsigned char C : S) {
    H ^= static_cast<uint64_t>(C ^ Salt);
    H *= FnvPrime;
  }
  // Field separator: a byte no input can contain unescaped ensures
  // ("ab","c") and ("a","bc") hash apart.
  H ^= 0x1full ^ Salt;
  H *= FnvPrime;
  return H;
}

} // namespace

std::string ContentKey::hex() const {
  static const char *Digits = "0123456789abcdef";
  std::string Out(32, '0');
  for (int I = 0; I < 16; ++I)
    Out[15 - I] = Digits[(Hi >> (I * 4)) & 0xf];
  for (int I = 0; I < 16; ++I)
    Out[31 - I] = Digits[(Lo >> (I * 4)) & 0xf];
  return Out;
}

ContentKey vpo::service::hashContent(const std::string &IRText,
                                     const std::string &Config,
                                     const std::string &Target,
                                     const std::string &RunSig) {
  ContentKey K;
  K.Lo = 14695981039346656037ull; // FNV offset basis
  K.Lo = fnv1a(K.Lo, IRText, 0);
  K.Lo = fnv1a(K.Lo, Config, 0);
  K.Lo = fnv1a(K.Lo, Target, 0);
  K.Lo = fnv1a(K.Lo, RunSig, 0);
  K.Hi = 0x6c62272e07bb0142ull; // independent basis, salted bytes
  K.Hi = fnv1a(K.Hi, IRText, 0xa5);
  K.Hi = fnv1a(K.Hi, Config, 0xa5);
  K.Hi = fnv1a(K.Hi, Target, 0xa5);
  K.Hi = fnv1a(K.Hi, RunSig, 0xa5);
  return K;
}

std::optional<ContentKey>
vpo::service::contentKeyFromHex(const std::string &Hex) {
  if (Hex.size() != 32)
    return std::nullopt;
  ContentKey K;
  for (int I = 0; I < 32; ++I) {
    char C = Hex[I];
    uint64_t Nib;
    if (C >= '0' && C <= '9')
      Nib = uint64_t(C - '0');
    else if (C >= 'a' && C <= 'f')
      Nib = uint64_t(C - 'a') + 10;
    else
      return std::nullopt;
    uint64_t &Word = I < 16 ? K.Hi : K.Lo;
    Word = (Word << 4) | Nib;
  }
  return K;
}

std::string vpo::service::runSignature(const ServiceRequest &Req) {
  if (Req.RunArgs.empty())
    return "";
  return Req.RunArgs + "@" + std::to_string(Req.ArenaKB);
}

const CachedResult *ContentCache::lookup(const ContentKey &Canon) {
  auto It = Entries.find(Canon);
  if (It == Entries.end()) {
    ++Misses;
    return nullptr;
  }
  LRU.splice(LRU.begin(), LRU, It->second); // bump to MRU
  ++Hits;
  return &It->second->second;
}

const CachedResult *ContentCache::lookupRaw(const ContentKey &Raw) {
  // An already-canonical request's raw key IS its store key (the common
  // case: byte-identical repeat of printed IR) — no alias hop needed.
  if (auto Direct = Entries.find(Raw); Direct != Entries.end()) {
    LRU.splice(LRU.begin(), LRU, Direct->second);
    ++Hits;
    return &Direct->second->second;
  }
  auto A = Aliases.find(Raw);
  if (A == Aliases.end()) {
    ++Misses;
    return nullptr;
  }
  auto It = Entries.find(A->second);
  if (It == Entries.end()) {
    Aliases.erase(A); // dangling: target was evicted
    ++Misses;
    return nullptr;
  }
  LRU.splice(LRU.begin(), LRU, It->second);
  ++Hits;
  return &It->second->second;
}

void ContentCache::insert(const ContentKey &Canon, CachedResult R) {
  if (MaxEntries == 0)
    return;
  auto It = Entries.find(Canon);
  if (It != Entries.end()) {
    It->second->second = std::move(R);
    LRU.splice(LRU.begin(), LRU, It->second);
    return;
  }
  LRU.emplace_front(Canon, std::move(R));
  Entries[Canon] = LRU.begin();
  while (Entries.size() > MaxEntries) {
    if (OnEvict)
      OnEvict(LRU.back().first);
    Entries.erase(LRU.back().first);
    LRU.pop_back();
  }
}

void ContentCache::alias(const ContentKey &Raw, const ContentKey &Canon) {
  if (MaxEntries == 0 || Raw == Canon)
    return;
  auto It = Aliases.find(Raw);
  if (It != Aliases.end()) {
    It->second = Canon;
    return;
  }
  Aliases[Raw] = Canon;
  AliasOrder.push_back(Raw);
  while (AliasOrder.size() > MaxEntries * 4) {
    Aliases.erase(AliasOrder.front());
    AliasOrder.pop_front();
  }
}
