//===- service/Client.cpp - Blocking vpod client ----------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "service/Client.h"

#include "support/Posix.h"

#include <cerrno>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#define VPO_CLIENT_POSIX 1
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <time.h>
#include <unistd.h>
#endif

using namespace vpo;
using namespace vpo::service;

ServiceClient &ServiceClient::operator=(ServiceClient &&O) noexcept {
  if (this != &O) {
    close();
    Fd = O.Fd;
    O.Fd = -1;
  }
  return *this;
}

#ifdef VPO_CLIENT_POSIX

Status ServiceClient::connectTo(const std::string &SocketPath) {
  posix::ignoreSigpipe();
  close();
  if (SocketPath.size() >= sizeof(sockaddr_un{}.sun_path))
    return Status::error(ErrorCode::Unsupported, "vpoc", "",
                         "socket path too long: " + SocketPath);
  int S = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (S < 0)
    return Status::error(ErrorCode::Internal, "vpoc", "",
                         std::string("socket: ") + std::strerror(errno));
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  std::strncpy(Addr.sun_path, SocketPath.c_str(), sizeof(Addr.sun_path) - 1);
  int R = ::connect(S, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr));
  if (R < 0 && errno == EINTR) {
    // The attempt keeps progressing in the kernel after EINTR; calling
    // connect() again on the same fd yields EALREADY/EISCONN, not a
    // clean retry. Wait for completion and read the real outcome.
    pollfd P{S, POLLOUT, 0};
    int PR;
    do {
      PR = ::poll(&P, 1, -1);
    } while (PR < 0 && errno == EINTR);
    int SoErr = 0;
    socklen_t L = sizeof(SoErr);
    if (PR > 0 &&
        ::getsockopt(S, SOL_SOCKET, SO_ERROR, &SoErr, &L) == 0 &&
        SoErr == 0) {
      R = 0;
    } else {
      if (SoErr)
        errno = SoErr;
      R = -1;
    }
  }
  if (R < 0) {
    Status St = Status::error(ErrorCode::Internal, "vpoc", "",
                              "connect " + SocketPath + ": " +
                                  std::strerror(errno));
    ::close(S);
    return St;
  }
  Fd = S;
  return Status::ok();
}

void ServiceClient::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

Status ServiceClient::send(const ServiceRequest &Req) {
  if (Fd < 0)
    return Status::error(ErrorCode::Internal, "vpoc", "", "not connected");
  if (!writeFrame(Fd, Req.toJson()))
    return Status::error(ErrorCode::Internal, "vpoc", "",
                         "write failed (daemon gone?)");
  return Status::ok();
}

StatusOr<ServiceResponse> ServiceClient::receive() {
  if (Fd < 0)
    return Status::error(ErrorCode::Internal, "vpoc", "", "not connected");
  std::string Payload;
  FrameStatus FS = readFrame(Fd, Payload);
  if (FS == FrameStatus::Eof)
    return Status::error(ErrorCode::Internal, "vpoc", "",
                         "daemon closed the connection");
  if (FS != FrameStatus::Ok)
    return Status::error(ErrorCode::ParseError, "vpoc", "",
                         "bad response frame from daemon");
  std::optional<ServiceResponse> Resp = ServiceResponse::fromJson(Payload);
  if (!Resp)
    return Status::error(ErrorCode::ParseError, "vpoc", "",
                         "unparseable response payload");
  return *Resp;
}

StatusOr<ServiceResponse> ServiceClient::call(const ServiceRequest &Req) {
  if (Status S = send(Req); !S)
    return S;
  return receive();
}

//===----------------------------------------------------------------------===//
// RetryingClient
//===----------------------------------------------------------------------===//

uint64_t RetryingClient::nextDelayMs(unsigned Attempt) {
  uint64_t Delay = Policy.BaseDelayMs;
  for (unsigned I = 0; I < Attempt && Delay < Policy.MaxDelayMs; ++I)
    Delay *= 2;
  if (Delay > Policy.MaxDelayMs)
    Delay = Policy.MaxDelayMs;
  // xorshift64 jitter in [0, Delay/2]: de-synchronizes a fleet of
  // clients hammering a rebooting daemon, deterministically per seed.
  Rng ^= Rng << 13;
  Rng ^= Rng >> 7;
  Rng ^= Rng << 17;
  return Delay + (Delay ? Rng % (Delay / 2 + 1) : 0);
}

StatusOr<ServiceResponse> RetryingClient::call(const ServiceRequest &Req) {
  Status Last = Status::ok();
  for (unsigned Attempt = 0; Attempt < Policy.MaxAttempts; ++Attempt) {
    if (Attempt > 0) {
      ++Retries;
      uint64_t Ms = nextDelayMs(Attempt - 1);
      timespec TS{time_t(Ms / 1000), long(Ms % 1000) * 1000000};
      nanosleep(&TS, nullptr);
    }
    if (!C.connected()) {
      if (Status S = C.connectTo(Path); !S) {
        Last = S; // daemon restarting: socket refused or unlinked
        continue;
      }
      if (EverConnected)
        ++Reconnects;
      EverConnected = true;
    }
    StatusOr<ServiceResponse> R = C.call(Req);
    if (!R) {
      // Transport failure mid-exchange (daemon killed with our request
      // in flight): the connection is unusable, reconnect and resend.
      Last = R.status();
      C.close();
      continue;
    }
    if (Policy.RetryOverloaded && R->Status == ErrorCode::Overloaded &&
        Attempt + 1 < Policy.MaxAttempts)
      continue; // explicit shed: connection stays good, just back off
    return R;
  }
  if (Last.ok())
    return Status::error(ErrorCode::Overloaded, "vpoc", "",
                         "still overloaded after " +
                             std::to_string(Policy.MaxAttempts) +
                             " attempts");
  return Last;
}

#else // !VPO_CLIENT_POSIX

Status ServiceClient::connectTo(const std::string &) {
  return Status::error(ErrorCode::Unsupported, "vpoc", "",
                       "the compile service requires a POSIX platform");
}
void ServiceClient::close() {}
Status ServiceClient::send(const ServiceRequest &) {
  return Status::error(ErrorCode::Unsupported, "vpoc", "", "no POSIX");
}
StatusOr<ServiceResponse> ServiceClient::receive() {
  return Status::error(ErrorCode::Unsupported, "vpoc", "", "no POSIX");
}
StatusOr<ServiceResponse> ServiceClient::call(const ServiceRequest &) {
  return Status::error(ErrorCode::Unsupported, "vpoc", "", "no POSIX");
}
uint64_t RetryingClient::nextDelayMs(unsigned) { return 0; }
StatusOr<ServiceResponse> RetryingClient::call(const ServiceRequest &) {
  return Status::error(ErrorCode::Unsupported, "vpoc", "", "no POSIX");
}

#endif // VPO_CLIENT_POSIX
