//===- service/Client.cpp - Blocking vpod client ----------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "service/Client.h"

#include "support/Posix.h"

#include <cerrno>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#define VPO_CLIENT_POSIX 1
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

using namespace vpo;
using namespace vpo::service;

ServiceClient &ServiceClient::operator=(ServiceClient &&O) noexcept {
  if (this != &O) {
    close();
    Fd = O.Fd;
    O.Fd = -1;
  }
  return *this;
}

#ifdef VPO_CLIENT_POSIX

Status ServiceClient::connectTo(const std::string &SocketPath) {
  posix::ignoreSigpipe();
  close();
  if (SocketPath.size() >= sizeof(sockaddr_un{}.sun_path))
    return Status::error(ErrorCode::Unsupported, "vpoc", "",
                         "socket path too long: " + SocketPath);
  int S = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (S < 0)
    return Status::error(ErrorCode::Internal, "vpoc", "",
                         std::string("socket: ") + std::strerror(errno));
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  std::strncpy(Addr.sun_path, SocketPath.c_str(), sizeof(Addr.sun_path) - 1);
  int R;
  do {
    R = ::connect(S, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr));
  } while (R < 0 && errno == EINTR);
  if (R < 0) {
    Status St = Status::error(ErrorCode::Internal, "vpoc", "",
                              "connect " + SocketPath + ": " +
                                  std::strerror(errno));
    ::close(S);
    return St;
  }
  Fd = S;
  return Status::ok();
}

void ServiceClient::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

Status ServiceClient::send(const ServiceRequest &Req) {
  if (Fd < 0)
    return Status::error(ErrorCode::Internal, "vpoc", "", "not connected");
  if (!writeFrame(Fd, Req.toJson()))
    return Status::error(ErrorCode::Internal, "vpoc", "",
                         "write failed (daemon gone?)");
  return Status::ok();
}

StatusOr<ServiceResponse> ServiceClient::receive() {
  if (Fd < 0)
    return Status::error(ErrorCode::Internal, "vpoc", "", "not connected");
  std::string Payload;
  FrameStatus FS = readFrame(Fd, Payload);
  if (FS == FrameStatus::Eof)
    return Status::error(ErrorCode::Internal, "vpoc", "",
                         "daemon closed the connection");
  if (FS != FrameStatus::Ok)
    return Status::error(ErrorCode::ParseError, "vpoc", "",
                         "bad response frame from daemon");
  std::optional<ServiceResponse> Resp = ServiceResponse::fromJson(Payload);
  if (!Resp)
    return Status::error(ErrorCode::ParseError, "vpoc", "",
                         "unparseable response payload");
  return *Resp;
}

StatusOr<ServiceResponse> ServiceClient::call(const ServiceRequest &Req) {
  if (Status S = send(Req); !S)
    return S;
  return receive();
}

#else // !VPO_CLIENT_POSIX

Status ServiceClient::connectTo(const std::string &) {
  return Status::error(ErrorCode::Unsupported, "vpoc", "",
                       "the compile service requires a POSIX platform");
}
void ServiceClient::close() {}
Status ServiceClient::send(const ServiceRequest &) {
  return Status::error(ErrorCode::Unsupported, "vpoc", "", "no POSIX");
}
StatusOr<ServiceResponse> ServiceClient::receive() {
  return Status::error(ErrorCode::Unsupported, "vpoc", "", "no POSIX");
}
StatusOr<ServiceResponse> ServiceClient::call(const ServiceRequest &) {
  return Status::error(ErrorCode::Unsupported, "vpoc", "", "no POSIX");
}

#endif // VPO_CLIENT_POSIX
