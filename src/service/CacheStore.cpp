//===- service/CacheStore.cpp - Crash-safe cache journal ------------------===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "service/CacheStore.h"

#include <cstdlib>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#define VPO_CACHESTORE_POSIX 1
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

using namespace vpo;
using namespace vpo::service;

namespace {

constexpr char Magic[4] = {'V', 'P', 'J', '1'};
/// magic + u32 len + u64 checksum.
constexpr size_t HeaderBytes = 16;
/// Mirrors the wire-frame bound: nothing bigger was ever a response.
constexpr uint64_t MaxPayloadBytes = uint64_t(8) << 20;

uint64_t fnv1aBytes(const std::string &S) {
  uint64_t H = 14695981039346656037ull;
  for (unsigned char C : S) {
    H ^= C;
    H *= 1099511628211ull;
  }
  return H;
}

void putU32le(std::string &Out, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    Out.push_back(char((V >> (I * 8)) & 0xff));
}

void putU64le(std::string &Out, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    Out.push_back(char((V >> (I * 8)) & 0xff));
}

uint32_t getU32le(const char *P) {
  uint32_t V = 0;
  for (int I = 3; I >= 0; --I)
    V = (V << 8) | uint8_t(P[I]);
  return V;
}

uint64_t getU64le(const char *P) {
  uint64_t V = 0;
  for (int I = 7; I >= 0; --I)
    V = (V << 8) | uint8_t(P[I]);
  return V;
}

#ifdef VPO_CACHESTORE_POSIX

bool writeFull(int Fd, const char *Data, size_t N) {
  while (N > 0) {
    ssize_t W = ::write(Fd, Data, N);
    if (W < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Data += W;
    N -= size_t(W);
  }
  return true;
}

/// fsync the directory holding \p Path so a rename into it is durable.
void syncDirOf(const std::string &Path) {
  size_t Slash = Path.find_last_of('/');
  std::string Dir = Slash == std::string::npos ? std::string(".")
                    : Slash == 0               ? std::string("/")
                                               : Path.substr(0, Slash);
  int D = ::open(Dir.c_str(), O_RDONLY | O_CLOEXEC);
  if (D >= 0) {
    ::fsync(D);
    ::close(D);
  }
}

#endif // VPO_CACHESTORE_POSIX

std::string getOr(const std::map<std::string, std::string> &M,
                  const char *Key) {
  auto It = M.find(Key);
  return It == M.end() ? std::string() : It->second;
}

} // namespace

std::string CacheStore::encodeInsertPayload(const ContentKey &Canon,
                                            const CachedResult &R) {
  JsonWriter W;
  W.str("t", "i");
  W.str("canon", Canon.hex());
  W.str("status", errorCodeName(R.Status));
  W.str("key", R.Key);
  W.str("ir", R.IR);
  W.str("stats", R.Stats);
  W.str("remarks", R.Remarks);
  W.str("incidents", R.Incidents);
  W.boolean("ran", R.Ran);
  W.str("run_status", R.RunStatus);
  W.num("ret", R.ReturnValue);
  W.num("cycles", R.Cycles);
  W.num("insns", R.Instructions);
  return W.finish();
}

std::string CacheStore::encodeAliasPayload(const ContentKey &Raw,
                                           const ContentKey &Canon) {
  JsonWriter W;
  W.str("t", "a");
  W.str("raw", Raw.hex());
  W.str("canon", Canon.hex());
  return W.finish();
}

std::string CacheStore::encodeRecord(const std::string &Payload) {
  std::string Out;
  Out.reserve(HeaderBytes + Payload.size());
  Out.append(Magic, 4);
  putU32le(Out, uint32_t(Payload.size()));
  putU64le(Out, fnv1aBytes(Payload));
  Out += Payload;
  return Out;
}

#ifdef VPO_CACHESTORE_POSIX

CacheStore::~CacheStore() { close(); }

bool CacheStore::open(const std::string &P, ContentCache &Cache,
                      CacheRecoveryStats &Stats, std::string &Err) {
  close();
  Path = P;
  JournalBytes = 0;
  GarbageBytes = 0;
  LiveBytes.clear();
  Fd = ::open(P.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (Fd < 0) {
    Err = "cannot open cache journal " + P + ": " + std::strerror(errno);
    return false;
  }

  // Evictions (including any triggered by the replay below, if the
  // journal holds more live entries than the cache bound) feed garbage
  // accounting from here on.
  Cache.setEvictHook([this](const ContentKey &K) { noteEvicted(K); });

  // Slurp the whole journal; it is bounded by the cache size times the
  // garbage ratio, both of which compaction keeps small.
  std::string Buf;
  {
    char Chunk[1 << 16];
    for (;;) {
      ssize_t R = ::read(Fd, Chunk, sizeof(Chunk));
      if (R < 0) {
        if (errno == EINTR)
          continue;
        Err = "cannot read cache journal " + P + ": " + std::strerror(errno);
        ::close(Fd);
        Fd = -1;
        return false;
      }
      if (R == 0)
        break;
      Buf.append(Chunk, size_t(R));
    }
  }

  size_t Off = 0;
  size_t CommittedEnd = 0; // byte offset just past the last good record
  bool Damaged = false;
  while (Off < Buf.size()) {
    // Resync: a record that fails magic or checksum forfeits the bytes
    // up to the next magic. (A payload could contain the magic string —
    // a false resync just fails the next checksum and scans again, so
    // the worst case is extra discards, never a corrupt accept.)
    auto resync = [&](size_t From) {
      ++Stats.DiscardedRecords;
      Damaged = true;
      size_t Next = Buf.find("VPJ1", From);
      Off = Next == std::string::npos ? Buf.size() : Next;
    };

    if (Buf.size() - Off < HeaderBytes) {
      Stats.TornTail = true;
      break; // truncated below
    }
    if (std::memcmp(Buf.data() + Off, Magic, 4) != 0) {
      resync(Off + 1);
      continue;
    }
    uint64_t Len = getU32le(Buf.data() + Off + 4);
    if (Len > MaxPayloadBytes) {
      resync(Off + 4);
      continue;
    }
    if (Buf.size() - Off - HeaderBytes < Len) {
      Stats.TornTail = true;
      break;
    }
    std::string Payload = Buf.substr(Off + HeaderBytes, Len);
    if (fnv1aBytes(Payload) != getU64le(Buf.data() + Off + 8)) {
      resync(Off + 4);
      continue;
    }

    size_t RecordBytes = HeaderBytes + Len;
    std::map<std::string, std::string> M;
    std::string Type;
    if (parseFlatJson(Payload, M))
      Type = getOr(M, "t");
    if (Type == "i") {
      auto Canon = contentKeyFromHex(getOr(M, "canon"));
      auto Status = errorCodeFromName(getOr(M, "status"));
      if (Canon && Status) {
        CachedResult R;
        R.Status = *Status;
        R.Key = getOr(M, "key");
        R.IR = getOr(M, "ir");
        R.Stats = getOr(M, "stats");
        R.Remarks = getOr(M, "remarks");
        R.Incidents = getOr(M, "incidents");
        R.Ran = getOr(M, "ran") == "true";
        R.RunStatus = getOr(M, "run_status");
        R.ReturnValue = std::strtoll(getOr(M, "ret").c_str(), nullptr, 10);
        R.Cycles = std::strtoull(getOr(M, "cycles").c_str(), nullptr, 10);
        R.Instructions =
            std::strtoull(getOr(M, "insns").c_str(), nullptr, 10);
        std::string Hex = Canon->hex();
        if (auto It = LiveBytes.find(Hex); It != LiveBytes.end())
          GarbageBytes += It->second; // superseded by this refresh
        LiveBytes[Hex] = RecordBytes;
        Cache.insert(*Canon, std::move(R));
        ++Stats.RecoveredEntries;
      } else {
        ++Stats.DiscardedRecords;
      }
    } else if (Type == "a") {
      auto Raw = contentKeyFromHex(getOr(M, "raw"));
      auto Canon = contentKeyFromHex(getOr(M, "canon"));
      if (Raw && Canon) {
        Cache.alias(*Raw, *Canon);
        ++Stats.RecoveredAliases;
      } else {
        ++Stats.DiscardedRecords;
      }
    } else {
      ++Stats.DiscardedRecords;
    }
    Off += RecordBytes;
    CommittedEnd = Off;
  }

  (void)Damaged; // mid-file damage stays on disk; resync skips it again
  if (Stats.TornTail && CommittedEnd < Buf.size()) {
    // Truncate the torn tail so the next append starts a clean record.
    // (If truncation fails, recovery still skipped the bad bytes and the
    // next boot's resync scan will find the appended records after them.)
    if (::ftruncate(Fd, off_t(CommittedEnd)) == 0)
      Buf.resize(CommittedEnd);
  }
  // Appends go to the end of what survived.
  off_t End = ::lseek(Fd, 0, SEEK_END);
  JournalBytes = End < 0 ? Buf.size() : uint64_t(End);
  Stats.JournalBytes = JournalBytes;
  return true;
}

void CacheStore::appendRecord(const std::string &Payload) {
  if (Fd < 0)
    return;
  std::string Rec = encodeRecord(Payload);
  if (!writeFull(Fd, Rec.data(), Rec.size()))
    return;
  if (Opts.SyncEveryWrite)
    ::fsync(Fd);
  JournalBytes += Rec.size();
}

void CacheStore::noteInsert(const ContentKey &Canon, const CachedResult &R) {
  if (Fd < 0)
    return;
  std::string Payload = encodeInsertPayload(Canon, R);
  std::string Hex = Canon.hex();
  if (auto It = LiveBytes.find(Hex); It != LiveBytes.end())
    GarbageBytes += It->second; // old record superseded
  LiveBytes[Hex] = HeaderBytes + Payload.size();
  appendRecord(Payload);
}

void CacheStore::noteAlias(const ContentKey &Raw, const ContentKey &Canon) {
  if (Fd < 0)
    return;
  appendRecord(encodeAliasPayload(Raw, Canon));
}

void CacheStore::noteEvicted(const ContentKey &Canon) {
  auto It = LiveBytes.find(Canon.hex());
  if (It == LiveBytes.end())
    return;
  GarbageBytes += It->second;
  LiveBytes.erase(It);
}

bool CacheStore::maybeCompact(const ContentCache &Cache) {
  if (Fd < 0 || JournalBytes < Opts.CompactMinBytes)
    return false;
  if (GarbageBytes * 2 <= JournalBytes)
    return false;
  return compact(Cache);
}

bool CacheStore::compact(const ContentCache &Cache) {
  if (Fd < 0)
    return false;
  std::string Tmp = Path + ".tmp";
  int TFd = ::open(Tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                   0644);
  if (TFd < 0)
    return false;

  // Oldest-first so replay rebuilds the same LRU order; aliases after,
  // when every target they name is already present.
  std::string Out;
  std::unordered_map<std::string, uint64_t> NewLive;
  Cache.forEachOldestFirst(
      [&](const ContentKey &Canon, const CachedResult &R) {
        std::string Payload = encodeInsertPayload(Canon, R);
        NewLive[Canon.hex()] = HeaderBytes + Payload.size();
        Out += encodeRecord(Payload);
      });
  Cache.forEachAlias([&](const ContentKey &Raw, const ContentKey &Canon) {
    Out += encodeRecord(encodeAliasPayload(Raw, Canon));
  });

  bool Ok = writeFull(TFd, Out.data(), Out.size()) && ::fsync(TFd) == 0;
  ::close(TFd);
  if (!Ok || ::rename(Tmp.c_str(), Path.c_str()) != 0) {
    ::unlink(Tmp.c_str());
    return false;
  }
  syncDirOf(Path);

  // The old fd now points at the unlinked pre-compaction inode; switch
  // appends over to the new journal.
  int NFd = ::open(Path.c_str(), O_RDWR | O_CLOEXEC);
  if (NFd < 0)
    return false; // journal on disk is valid; appends are lost until reopen
  ::lseek(NFd, 0, SEEK_END);
  ::close(Fd);
  Fd = NFd;
  JournalBytes = Out.size();
  GarbageBytes = 0;
  LiveBytes = std::move(NewLive);
  ++Compactions;
  return true;
}

void CacheStore::sync() {
  if (Fd >= 0)
    ::fsync(Fd);
}

void CacheStore::close() {
  if (Fd < 0)
    return;
  ::fsync(Fd);
  ::close(Fd);
  Fd = -1;
}

void CacheStore::abandon() {
  if (Fd < 0)
    return;
  ::close(Fd);
  Fd = -1;
}

#else // !VPO_CACHESTORE_POSIX

CacheStore::~CacheStore() = default;

bool CacheStore::open(const std::string &, ContentCache &,
                      CacheRecoveryStats &, std::string &Err) {
  Err = "persistent cache journal requires POSIX";
  return false;
}
void CacheStore::appendRecord(const std::string &) {}
void CacheStore::noteInsert(const ContentKey &, const CachedResult &) {}
void CacheStore::noteAlias(const ContentKey &, const ContentKey &) {}
void CacheStore::noteEvicted(const ContentKey &) {}
bool CacheStore::maybeCompact(const ContentCache &) { return false; }
bool CacheStore::compact(const ContentCache &) { return false; }
void CacheStore::sync() {}
void CacheStore::close() {}
void CacheStore::abandon() {}

#endif // VPO_CACHESTORE_POSIX
