//===- service/Client.h - Blocking vpod client ------------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small synchronous client for the compile service: connect to the
/// daemon's Unix socket, exchange framed requests and responses. One
/// connection carries any number of requests; responses arrive in
/// request order (the daemon serializes per connection at the framing
/// layer). send()/receive() are exposed separately so a batch client can
/// pipeline — write a window of requests before draining responses —
/// which is how tools/vpoc keeps a multi-worker daemon busy from a
/// single process.
///
//===----------------------------------------------------------------------===//

#ifndef VPO_SERVICE_CLIENT_H
#define VPO_SERVICE_CLIENT_H

#include "service/Protocol.h"
#include "support/Diagnostics.h"

namespace vpo {
namespace service {

class ServiceClient {
public:
  ServiceClient() = default;
  ~ServiceClient() { close(); }

  ServiceClient(ServiceClient &&O) noexcept : Fd(O.Fd) { O.Fd = -1; }
  ServiceClient &operator=(ServiceClient &&O) noexcept;
  ServiceClient(const ServiceClient &) = delete;
  ServiceClient &operator=(const ServiceClient &) = delete;

  /// Connects to the daemon at \p SocketPath (blocking).
  Status connectTo(const std::string &SocketPath);

  bool connected() const { return Fd >= 0; }
  void close();

  /// Writes one request frame. \returns a diagnostic on I/O failure.
  Status send(const ServiceRequest &Req);

  /// Blocks for the next response frame.
  StatusOr<ServiceResponse> receive();

  /// send() + receive(): the simple one-at-a-time calling convention.
  StatusOr<ServiceResponse> call(const ServiceRequest &Req);

private:
  int Fd = -1;
};

} // namespace service
} // namespace vpo

#endif // VPO_SERVICE_CLIENT_H
