//===- service/Client.h - Blocking vpod client ------------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small synchronous client for the compile service: connect to the
/// daemon's Unix socket, exchange framed requests and responses. One
/// connection carries any number of requests; responses arrive in
/// request order (the daemon serializes per connection at the framing
/// layer). send()/receive() are exposed separately so a batch client can
/// pipeline — write a window of requests before draining responses —
/// which is how tools/vpoc keeps a multi-worker daemon busy from a
/// single process.
///
//===----------------------------------------------------------------------===//

#ifndef VPO_SERVICE_CLIENT_H
#define VPO_SERVICE_CLIENT_H

#include "service/Protocol.h"
#include "support/Diagnostics.h"

namespace vpo {
namespace service {

class ServiceClient {
public:
  ServiceClient() = default;
  ~ServiceClient() { close(); }

  ServiceClient(ServiceClient &&O) noexcept : Fd(O.Fd) { O.Fd = -1; }
  ServiceClient &operator=(ServiceClient &&O) noexcept;
  ServiceClient(const ServiceClient &) = delete;
  ServiceClient &operator=(const ServiceClient &) = delete;

  /// Connects to the daemon at \p SocketPath (blocking).
  Status connectTo(const std::string &SocketPath);

  bool connected() const { return Fd >= 0; }
  void close();

  /// Writes one request frame. \returns a diagnostic on I/O failure.
  Status send(const ServiceRequest &Req);

  /// Blocks for the next response frame.
  StatusOr<ServiceResponse> receive();

  /// send() + receive(): the simple one-at-a-time calling convention.
  StatusOr<ServiceResponse> call(const ServiceRequest &Req);

private:
  int Fd = -1;
};

/// How a RetryingClient paces itself. The backoff is exponential with
/// deterministic xorshift jitter (seeded, so test campaigns replay).
struct RetryPolicy {
  unsigned MaxAttempts = 5; ///< total tries per call (1 = no retry)
  uint64_t BaseDelayMs = 50;
  uint64_t MaxDelayMs = 2000;
  uint64_t JitterSeed = 1;
  /// Also retry structured ErrorCode::Overloaded responses (shed load,
  /// drain mode) — they are explicit "try again later" signals.
  bool RetryOverloaded = true;
};

/// A ServiceClient wrapper that survives daemon restarts: connect
/// failures (refused/absent socket while the daemon reboots), transport
/// errors mid-exchange, and Overloaded shedding are all retried with
/// exponential backoff + jitter, up to the policy bound. Requests are
/// resent after a reconnect, so callers see exactly one response per
/// call() — or the final error once the budget is exhausted.
class RetryingClient {
public:
  explicit RetryingClient(std::string SocketPath, RetryPolicy Policy = {})
      : Path(std::move(SocketPath)), Policy(Policy),
        Rng(Policy.JitterSeed ? Policy.JitterSeed : 1) {}

  StatusOr<ServiceResponse> call(const ServiceRequest &Req);

  /// Drops the connection so the next call() reconnects (used by tests
  /// that kill the daemon between calls).
  void disconnect() { C.close(); }

  uint64_t retries() const { return Retries; }
  uint64_t reconnects() const { return Reconnects; }

private:
  uint64_t nextDelayMs(unsigned Attempt);

  std::string Path;
  RetryPolicy Policy;
  ServiceClient C;
  uint64_t Retries = 0;    ///< sleeps taken (any reason)
  uint64_t Reconnects = 0; ///< successful re-connections after a drop
  bool EverConnected = false;
  uint64_t Rng;
};

} // namespace service
} // namespace vpo

#endif // VPO_SERVICE_CLIENT_H
