//===- service/Daemon.cpp - The vpod compile service daemon -----*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "service/Daemon.h"

#include "support/Posix.h"

#include <cerrno>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#define VPO_SERVICE_POSIX 1
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <time.h>
#include <unistd.h>
#endif

using namespace vpo;
using namespace vpo::service;

namespace {

#ifdef VPO_SERVICE_POSIX

uint64_t nowMs() {
  timespec TS;
  clock_gettime(CLOCK_MONOTONIC, &TS);
  return uint64_t(TS.tv_sec) * 1000 + uint64_t(TS.tv_nsec) / 1000000;
}

bool setNonBlocking(int Fd) {
  int Flags = fcntl(Fd, F_GETFL, 0);
  return Flags >= 0 && fcntl(Fd, F_SETFL, Flags | O_NONBLOCK) == 0;
}

/// Nonblocking write of as much of [Data+Pos, Data+Size) as the fd takes.
/// \returns false on a hard error (not EAGAIN/EINTR).
bool writeSome(int Fd, const std::string &Data, size_t &Pos) {
  while (Pos < Data.size()) {
    ssize_t N = ::write(Fd, Data.data() + Pos, Data.size() - Pos);
    if (N > 0) {
      Pos += size_t(N);
      continue;
    }
    if (N < 0 && errno == EINTR)
      continue;
    if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
      return true;
    return false;
  }
  return true;
}

/// Flushes \p Out in place (erasing written bytes). \returns false on a
/// hard error.
bool flushBuffer(int Fd, std::string &Out) {
  size_t Pos = 0;
  bool Ok = writeSome(Fd, Out, Pos);
  Out.erase(0, Pos);
  return Ok;
}

#endif // VPO_SERVICE_POSIX

} // namespace

Daemon::Daemon(DaemonOptions O)
    : Opts(std::move(O)), Cache(Opts.CacheEntries) {
  if (Opts.Workers == 0)
    Opts.Workers = 1;
}

Daemon::~Daemon() {
#ifdef VPO_SERVICE_POSIX
  for (WorkerSlot &W : Workers)
    killWorker(W);
  for (auto &KV : Clients)
    if (KV.second.Fd >= 0)
      ::close(KV.second.Fd);
  if (ListenFd >= 0) {
    ::close(ListenFd);
    ::unlink(Opts.SocketPath.c_str());
  }
#endif
}

#ifdef VPO_SERVICE_POSIX

Status Daemon::start() {
  posix::ignoreSigpipe();
  if (!posix::hasFork())
    return Status::error(ErrorCode::Unsupported, "vpod", "",
                         "fork() is unavailable on this platform");
  if (Opts.SocketPath.size() >= sizeof(sockaddr_un{}.sun_path))
    return Status::error(ErrorCode::Unsupported, "vpod", "",
                         "socket path too long: " + Opts.SocketPath);

  // Recover the persistent cache before anything can query it, and
  // before forking workers (children abandon the inherited fd).
  if (!Opts.CacheJournalPath.empty()) {
    Store.Opts.SyncEveryWrite = Opts.JournalSyncEveryInsert;
    Recovery = CacheRecoveryStats();
    std::string Err;
    if (!Store.open(Opts.CacheJournalPath, Cache, Recovery, Err))
      return Status::error(ErrorCode::Internal, "vpod", "", Err);
  }

  ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (ListenFd < 0)
    return Status::error(ErrorCode::Internal, "vpod", "",
                         std::string("socket: ") + std::strerror(errno));
  ::unlink(Opts.SocketPath.c_str()); // stale socket from a dead daemon
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  std::strncpy(Addr.sun_path, Opts.SocketPath.c_str(),
               sizeof(Addr.sun_path) - 1);
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
          0 ||
      ::listen(ListenFd, 64) < 0 || !setNonBlocking(ListenFd)) {
    Status S = Status::error(ErrorCode::Internal, "vpod", "",
                             "bind/listen " + Opts.SocketPath + ": " +
                                 std::strerror(errno));
    ::close(ListenFd);
    ListenFd = -1;
    return S;
  }

  Workers.resize(Opts.Workers);
  for (WorkerSlot &W : Workers)
    if (Status S = spawnWorker(W); !S) {
      for (WorkerSlot &K : Workers)
        killWorker(K);
      ::close(ListenFd);
      ListenFd = -1;
      ::unlink(Opts.SocketPath.c_str());
      return S;
    }
  return Status::ok();
}

Status Daemon::spawnWorker(WorkerSlot &W) {
  int Pair[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, Pair) < 0)
    return Status::error(ErrorCode::Internal, "vpod", "",
                         std::string("socketpair: ") + std::strerror(errno));
  long Pid = ::fork();
  if (Pid < 0) {
    ::close(Pair[0]);
    ::close(Pair[1]);
    return Status::error(ErrorCode::Internal, "vpod", "",
                         std::string("fork: ") + std::strerror(errno));
  }
  if (Pid == 0) {
    // Child: drop every daemon fd so a worker cannot reach the socket,
    // other workers, or clients, then serve until EOF.
    ::close(Pair[0]);
    if (ListenFd >= 0)
      ::close(ListenFd);
    for (auto &KV : Clients)
      if (KV.second.Fd >= 0)
        ::close(KV.second.Fd);
    for (WorkerSlot &O : Workers)
      if (O.Fd >= 0)
        ::close(O.Fd);
    Store.abandon(); // never let a worker touch the parent's journal
    workerMain(Pair[1], Opts.Limits); // noreturn
  }
  ::close(Pair[1]);
  if (!setNonBlocking(Pair[0])) {
    ::close(Pair[0]);
    posix::reapChild(Pid, 0);
    return Status::error(ErrorCode::Internal, "vpod", "",
                         "could not set worker fd nonblocking");
  }
  W.Pid = Pid;
  W.Fd = Pair[0];
  W.Dec = FrameDecoder(Opts.MaxFrameBytes);
  W.Out.clear();
  W.Busy = false;
  W.DeadlineAt = 0;
  return Status::ok();
}

void Daemon::killWorker(WorkerSlot &W) {
  if (W.Fd >= 0) {
    ::close(W.Fd);
    W.Fd = -1;
  }
  if (W.Pid > 0) {
    posix::reapChild(W.Pid, /*GraceMs=*/0); // SIGKILL + reap
    W.Pid = -1;
  }
  W.Dec = FrameDecoder(Opts.MaxFrameBytes);
  W.Out.clear();
  W.DeadlineAt = 0;
}

void Daemon::respawnDueWorkers(uint64_t Now) {
  for (WorkerSlot &W : Workers) {
    if (W.Pid > 0 || Now < W.RespawnAt)
      continue;
    if (spawnWorker(W)) {
      ++Counters.Respawns;
    } else {
      // fork/socketpair failure (fd or process pressure): try again
      // after a full backoff period rather than spinning.
      W.RespawnAt = Now + 1000;
    }
  }
}

void Daemon::escalate(WorkerSlot &W, const char *Why,
                      ErrorCode ExhaustedCode) {
  Pending P = std::move(W.Cur);
  W.Busy = false;
  W.DeadlineAt = 0;
  // The failed attempt may already have been lifted above P.Rung by the
  // worker's sticky floor; the ladder continues from where it died.
  P.Rung = P.AttemptRung + 1;
  P.Degraded = Why;
  if (P.Rung > maxServiceRung) {
    ++Counters.Exhausted;
    ServiceResponse Resp;
    Resp.Id = P.Req.Id;
    Resp.Status = ExhaustedCode;
    Resp.Rung = maxServiceRung;
    Resp.Degraded = Why;
    Resp.Error = std::string("degradation ladder exhausted: the request "
                             "failed every rung (last: ") +
                 Why + " at rung " + std::to_string(maxServiceRung) +
                 ", the reference pipeline)";
    sendResponse(P.ClientSeq, P.Ticket, P.Req, std::move(Resp));
    return;
  }
  // Back to the front of its own shard: the retry keeps its position
  // (and its cache-population duty) rather than re-queueing at the tail.
  W.Queue.push_front(std::move(P));
}

void Daemon::workerDied(size_t Idx, const char *Why) {
  WorkerSlot &W = Workers[Idx];
  bool Deadline = std::strcmp(Why, "worker-deadline") == 0;
  if (Deadline)
    ++Counters.WorkerDeadlines;
  else
    ++Counters.WorkerCrashes;
  if (W.Busy && W.Cur.Probe)
    ++Counters.ProbeFailures; // probation continues at the sticky rung
  if (!W.Busy || W.Cur.Serial != W.LastDeathSerial) {
    ++W.DistinctFails; // idle deaths (boot trouble) always count
    if (W.Busy)
      W.LastDeathSerial = W.Cur.Serial;
  }
  if (W.Busy)
    escalate(W, Why,
             Deadline ? ErrorCode::DeadlineExceeded : ErrorCode::Internal);
  killWorker(W);
  W.Fails = W.Fails < 16 ? W.Fails + 1 : W.Fails;
  // Deaths on three distinct requests with no success in between make
  // the degradation sticky: the slot serves at the degraded rung until
  // an op=reload probe succeeds, instead of burning a crash per request
  // on a poisoned environment.
  if (W.DistinctFails >= 3 && W.StickyRung < maxServiceRung)
    ++W.StickyRung;
  // Exponential backoff, 50ms..5s: a worker dying on its *input* is
  // respawned almost immediately; a worker dying at boot (environment
  // trouble) stops eating fork bandwidth.
  uint64_t Backoff = 50u << (W.Fails - 1 < 7 ? W.Fails - 1 : 7);
  if (Backoff > 5000)
    Backoff = 5000;
  W.RespawnAt = nowMs() + Backoff;
}

void Daemon::checkDeadlines(uint64_t Now) {
  for (size_t I = 0; I < Workers.size(); ++I) {
    WorkerSlot &W = Workers[I];
    if (W.Pid > 0 && W.Busy && Now >= W.DeadlineAt)
      workerDied(I, "worker-deadline");
  }
}

void Daemon::pumpWorkers(uint64_t Now) {
  for (WorkerSlot &W : Workers) {
    while (W.Pid > 0 && !W.Busy && !W.Queue.empty()) {
      Pending P = std::move(W.Queue.front());
      W.Queue.pop_front();
      // The cache may have been populated since this request queued
      // (typical under a burst of one hot kernel): serve it now rather
      // than recompiling.
      if (P.Req.Fault.empty() && P.Rung == 0) {
        if (const CachedResult *CR = Cache.lookupRaw(P.RawKey)) {
          ++Counters.CacheHits;
          sendCached(P.ClientSeq, P.Ticket, P.Req, *CR);
          continue;
        }
      }
      // A sticky-degraded slot lifts every attempt to its floor — except
      // the single armed probe, which runs at rung 0 to test recovery.
      P.AttemptRung = P.Rung;
      P.Probe = false;
      if (W.StickyRung > P.Rung) {
        if (W.ProbeArmed && P.Rung == 0 && P.Req.Fault.empty()) {
          W.ProbeArmed = false;
          P.Probe = true;
          ++Counters.Probes;
        } else {
          P.AttemptRung = W.StickyRung;
        }
      }
      ServiceRequest WReq = P.Req;
      WReq.Rung = P.AttemptRung;
      appendFrame(W.Out, WReq.toJson());
      W.Busy = true;
      W.Cur = std::move(P);
      W.DeadlineAt = Now + W.Cur.DeadlineMs;
      if (!flushBuffer(W.Fd, W.Out)) {
        // The worker is already dead (EPIPE); the normal death path
        // will requeue this attempt at the next rung.
        size_t Idx = size_t(&W - Workers.data());
        workerDied(Idx, "worker-crash");
        break;
      }
    }
  }
}

void Daemon::acceptClients() {
  for (;;) {
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0) {
      if (errno == EINTR)
        continue;
      return; // EAGAIN or transient accept error: next tick
    }
    if (!setNonBlocking(Fd)) {
      ::close(Fd);
      continue;
    }
    uint64_t Seq = NextClientSeq++;
    ClientConn &C = Clients[Seq];
    C.Fd = Fd;
    C.Dec = FrameDecoder(Opts.MaxFrameBytes);
    FdToClient[Fd] = Seq;
  }
}

void Daemon::dropClient(uint64_t Seq) {
  auto It = Clients.find(Seq);
  if (It == Clients.end())
    return;
  FdToClient.erase(It->second.Fd);
  ::close(It->second.Fd);
  Clients.erase(It);
}

void Daemon::readClient(uint64_t Seq) {
  auto It = Clients.find(Seq);
  if (It == Clients.end())
    return;
  ClientConn &C = It->second;
  char Buf[65536];
  for (;;) {
    ssize_t N = ::read(C.Fd, Buf, sizeof(Buf));
    if (N > 0) {
      C.Dec.feed(Buf, size_t(N));
      if (size_t(N) < sizeof(Buf))
        break;
      continue;
    }
    if (N < 0 && errno == EINTR)
      continue;
    if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
      break;
    // EOF or hard error: the client is gone. In-flight work for it
    // still completes (and populates the cache); delivery is skipped.
    dropClient(Seq);
    return;
  }
  for (;;) {
    std::string Payload;
    FrameStatus FS = C.Dec.next(Payload);
    if (FS == FrameStatus::NeedMore)
      break;
    if (FS != FrameStatus::Ok) {
      // Malformed framing cannot be resynchronized; drop the peer.
      dropClient(Seq);
      return;
    }
    handleFrame(Seq, Payload);
    if (Clients.find(Seq) == Clients.end())
      return; // shutdown/parse error closed it
  }
}

void Daemon::handleFrame(uint64_t Seq, const std::string &Payload) {
  auto ConnIt = Clients.find(Seq);
  if (ConnIt == Clients.end())
    return;
  // Every frame takes the connection's next response ticket, so answers
  // computed out of order (pipelined requests land on different
  // workers) still go back in request order.
  uint64_t Ticket = ConnIt->second.NextTicket++;
  std::optional<ServiceRequest> Req = ServiceRequest::fromJson(Payload);
  if (!Req) {
    ServiceResponse Resp;
    Resp.Status = ErrorCode::ParseError;
    Resp.Error = "malformed request payload";
    sendResponse(Seq, Ticket, ServiceRequest(), std::move(Resp));
    return;
  }
  if (Req->Op == "ping") {
    ServiceResponse Resp;
    Resp.Id = Req->Id;
    sendResponse(Seq, Ticket, *Req, std::move(Resp));
    return;
  }
  if (Req->Op == "status") {
    ServiceResponse Resp;
    Resp.Id = Req->Id;
    auto Put = [&Resp](const char *K, uint64_t V) {
      Resp.Extra.emplace_back(K, std::to_string(V));
    };
    Put("requests", Counters.Requests);
    Put("cache_hits", Counters.CacheHits);
    Put("cache_entries", Cache.size());
    Put("shed", Counters.Shed);
    Put("worker_crashes", Counters.WorkerCrashes);
    Put("worker_deadlines", Counters.WorkerDeadlines);
    Put("respawns", Counters.Respawns);
    // "degraded" would collide with the response's own field of that
    // name and be swallowed by fromJson instead of landing in Extra.
    Put("served_degraded", Counters.Degraded);
    Put("exhausted", Counters.Exhausted);
    Put("workers", Workers.size());
    size_t Queued = 0;
    for (const WorkerSlot &W : Workers)
      Queued += W.Queue.size() + (W.Busy ? 1 : 0);
    Put("queued", Queued);
    Put("cache_recovered", Recovery.RecoveredEntries);
    Put("cache_discarded", Recovery.DiscardedRecords);
    Put("cache_torn_tail", Recovery.TornTail ? 1 : 0);
    Put("journal_bytes", Store.journalBytes());
    Put("journal_garbage", Store.garbageBytes());
    Put("compactions", Store.compactions());
    Put("reloads", Counters.Reloads);
    Put("probes", Counters.Probes);
    Put("probe_failures", Counters.ProbeFailures);
    size_t Sticky = 0;
    for (const WorkerSlot &W : Workers)
      Sticky += W.StickyRung > 0 ? 1 : 0;
    Put("sticky_degraded", Sticky);
    Put("draining", Draining ? 1 : 0);
    sendResponse(Seq, Ticket, *Req, std::move(Resp));
    return;
  }
  if (Req->Op == "reload") {
    handleReload(Seq, Ticket, *Req);
    return;
  }
  if (Req->Op == "shutdown") {
    ServiceResponse Resp;
    Resp.Id = Req->Id;
    sendResponse(Seq, Ticket, *Req, std::move(Resp));
    Stopping = true;
    return;
  }
  if (Req->Op == "compile") {
    handleCompile(Seq, Ticket, std::move(*Req));
    return;
  }
  ServiceResponse Resp;
  Resp.Id = Req->Id;
  Resp.Status = ErrorCode::Unsupported;
  Resp.Error = "unknown op \"" + Req->Op + "\"";
  sendResponse(Seq, Ticket, *Req, std::move(Resp));
}

void Daemon::handleReload(uint64_t Seq, uint64_t Ticket,
                          const ServiceRequest &Req) {
  ++Counters.Reloads;
  ServiceResponse Resp;
  Resp.Id = Req.Id;
  // Re-open the journal (picks up an operator-swapped file, compacts
  // accumulated garbage into a fresh replay baseline).
  if (!Opts.CacheJournalPath.empty()) {
    Store.close();
    CacheRecoveryStats RS;
    std::string Err;
    if (Store.open(Opts.CacheJournalPath, Cache, RS, Err)) {
      Recovery = RS;
    } else {
      Resp.Status = ErrorCode::Internal;
      Resp.Error = Err;
    }
  }
  // Reset the probation ladder: every sticky-degraded slot gets exactly
  // one rung-0 probe; it re-promotes only if the probe survives.
  size_t Armed = 0;
  for (WorkerSlot &W : Workers)
    if (W.StickyRung > 0) {
      W.ProbeArmed = true;
      ++Armed;
    }
  Resp.Extra.emplace_back("probes_armed", std::to_string(Armed));
  Resp.Extra.emplace_back("cache_recovered",
                          std::to_string(Recovery.RecoveredEntries));
  sendResponse(Seq, Ticket, Req, std::move(Resp));
}

void Daemon::handleCompile(uint64_t Seq, uint64_t Ticket,
                           ServiceRequest Req) {
  ++Counters.Requests;
  if (Draining) {
    ++Counters.Shed;
    ServiceResponse Resp;
    Resp.Id = Req.Id;
    Resp.Status = ErrorCode::Overloaded;
    Resp.Error = "draining: daemon is shutting down; retry the next one";
    sendResponse(Seq, Ticket, Req, std::move(Resp));
    return;
  }
  if (!Req.Fault.empty() && !Opts.Limits.AllowFaultInjection) {
    ServiceResponse Resp;
    Resp.Id = Req.Id;
    Resp.Status = ErrorCode::Unsupported;
    Resp.Error = "fault plants require --allow-fault-injection";
    sendResponse(Seq, Ticket, Req, std::move(Resp));
    return;
  }

  Pending P;
  P.ClientSeq = Seq;
  P.Ticket = Ticket;
  P.Serial = NextRequestSerial++;
  P.Rung = 0;
  P.DeadlineMs = Req.DeadlineMs == 0
                     ? Opts.DefaultDeadlineMs
                     : (Req.DeadlineMs < Opts.MaxDeadlineMs
                            ? Req.DeadlineMs
                            : Opts.MaxDeadlineMs);
  // The raw key hashes the request bytes exactly as they arrived — the
  // daemon never parses IR. Byte-identical repeats hit here; textual
  // variants are aliased after one worker round canonicalizes them.
  P.RawKey = hashContent(Req.IR, Req.Config, Req.Target, runSignature(Req));
  if (Req.Fault.empty()) {
    if (const CachedResult *CR = Cache.lookupRaw(P.RawKey)) {
      ++Counters.CacheHits;
      sendCached(Seq, Ticket, Req, *CR);
      return;
    }
  }

  // Shard by content so a burst of one kernel serializes onto one worker
  // (the first compile populates the cache for the rest) while distinct
  // kernels spread across the pool.
  WorkerSlot &W =
      Workers[size_t(P.RawKey.Lo % uint64_t(Workers.size()))];
  if (W.Queue.size() >= Opts.QueueDepth) {
    ++Counters.Shed;
    ServiceResponse Resp;
    Resp.Id = Req.Id;
    Resp.Status = ErrorCode::Overloaded;
    Resp.Error = "queue full (" + std::to_string(Opts.QueueDepth) +
                 " deep); retry later";
    sendResponse(Seq, Ticket, Req, std::move(Resp));
    return;
  }
  P.Req = std::move(Req);
  W.Queue.push_back(std::move(P));
}

void Daemon::readWorker(size_t Idx) {
  WorkerSlot &W = Workers[Idx];
  if (W.Fd < 0)
    return;
  char Buf[65536];
  for (;;) {
    ssize_t N = ::read(W.Fd, Buf, sizeof(Buf));
    if (N > 0) {
      W.Dec.feed(Buf, size_t(N));
      if (size_t(N) < sizeof(Buf))
        break;
      continue;
    }
    if (N < 0 && errno == EINTR)
      continue;
    if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
      break;
    // EOF: the worker died (crash plant, real bug, or rlimit kill).
    workerDied(Idx, "worker-crash");
    return;
  }
  for (;;) {
    std::string Payload;
    FrameStatus FS = W.Dec.next(Payload);
    if (FS == FrameStatus::NeedMore)
      break;
    if (FS != FrameStatus::Ok) {
      workerDied(Idx, "worker-crash");
      return;
    }
    handleWorkerResponse(W, Payload);
  }
}

void Daemon::handleWorkerResponse(WorkerSlot &W, const std::string &Payload) {
  std::optional<ServiceResponse> Parsed = ServiceResponse::fromJson(Payload);
  if (!Parsed || !W.Busy) {
    // A frame we cannot attribute to the in-flight attempt: the stream
    // is unreliable, recycle the worker.
    workerDied(size_t(&W - Workers.data()), "worker-crash");
    return;
  }
  Pending P = std::move(W.Cur);
  W.Busy = false;
  W.DeadlineAt = 0;
  W.Fails = 0; // success resets the backoff and distinct-death ladders
  W.DistinctFails = 0;
  if (P.Probe)
    W.StickyRung = 0; // probation passed: the slot re-promotes

  ServiceResponse Resp = std::move(*Parsed);
  Resp.Id = P.Req.Id;
  Resp.Rung = P.AttemptRung; // authoritative: the daemon chose the rung
  Resp.Degraded = P.AttemptRung > P.Rung && P.Degraded.empty()
                      ? "sticky-degraded"
                      : P.Degraded;
  if (P.AttemptRung > 0)
    ++Counters.Degraded;

  // Only clean, full-pipeline, unplanted results are cacheable: a
  // degraded rung describes transient pool state, and a planted fault
  // describes the request, not the content.
  if (P.AttemptRung == 0 && Resp.Status == ErrorCode::Ok &&
      P.Req.Fault.empty()) {
    if (std::optional<ContentKey> Canon = contentKeyFromHex(Resp.Key)) {
      CachedResult CR;
      CR.Status = Resp.Status;
      CR.Key = Resp.Key;
      CR.IR = Resp.IR;
      CR.Stats = Resp.Stats;
      CR.Remarks = Resp.Remarks;
      CR.Incidents = Resp.Incidents;
      CR.Ran = Resp.Ran;
      CR.RunStatus = Resp.RunStatus;
      CR.ReturnValue = Resp.ReturnValue;
      CR.Cycles = Resp.Cycles;
      CR.Instructions = Resp.Instructions;
      // Write-ahead: journal first, so a crash between the two costs a
      // recompile rather than leaving a served-but-unjournaled entry.
      Store.noteInsert(*Canon, CR);
      Cache.insert(*Canon, std::move(CR));
      if (!(P.RawKey == *Canon))
        Store.noteAlias(P.RawKey, *Canon);
      Cache.alias(P.RawKey, *Canon);
      Store.maybeCompact(Cache);
    }
  }
  sendResponse(P.ClientSeq, P.Ticket, P.Req, std::move(Resp));
}

void Daemon::sendCached(uint64_t Seq, uint64_t Ticket,
                        const ServiceRequest &Req, const CachedResult &CR) {
  ServiceResponse Resp;
  Resp.Id = Req.Id;
  Resp.Status = CR.Status;
  Resp.Key = CR.Key;
  Resp.IR = CR.IR;
  Resp.Stats = CR.Stats;
  Resp.Remarks = CR.Remarks;
  Resp.Incidents = CR.Incidents;
  Resp.Ran = CR.Ran;
  Resp.RunStatus = CR.RunStatus;
  Resp.ReturnValue = CR.ReturnValue;
  Resp.Cycles = CR.Cycles;
  Resp.Instructions = CR.Instructions;
  Resp.Cached = true;
  sendResponse(Seq, Ticket, Req, std::move(Resp));
}

void Daemon::sendResponse(uint64_t Seq, uint64_t Ticket,
                          const ServiceRequest &Req, ServiceResponse Resp) {
  auto It = Clients.find(Seq);
  if (It == Clients.end())
    return; // client left; result (if cacheable) is already cached
  // Response filtering happens here, uniformly for fresh and cached
  // results, so WantIR/WantRemarks never participate in cache identity.
  if (!Req.WantIR)
    Resp.IR.clear();
  if (!Req.WantRemarks)
    Resp.Remarks.clear();
  ClientConn &C = It->second;
  // A response ahead of its turn waits; releasing one may release a run
  // of held successors. Request order is the wire order, always.
  if (Ticket != C.NextSend) {
    std::string Framed;
    appendFrame(Framed, Resp.toJson());
    C.Held.emplace(Ticket, std::move(Framed));
    return;
  }
  appendFrame(C.Out, Resp.toJson());
  ++C.NextSend;
  for (auto H = C.Held.find(C.NextSend); H != C.Held.end();
       H = C.Held.find(C.NextSend)) {
    C.Out += H->second;
    C.Held.erase(H);
    ++C.NextSend;
  }
  if (!flushBuffer(C.Fd, C.Out))
    dropClient(Seq);
}

void Daemon::flushClient(uint64_t Seq) {
  auto It = Clients.find(Seq);
  if (It == Clients.end())
    return;
  ClientConn &C = It->second;
  if (!flushBuffer(C.Fd, C.Out)) {
    dropClient(Seq);
    return;
  }
  if (C.Out.empty() && C.CloseAfterFlush)
    dropClient(Seq);
}

void Daemon::beginDrain(uint64_t Now) {
  if (Draining)
    return;
  Draining = true;
  DrainDeadlineAt = Now + Opts.DrainDeadlineMs;
  // Stop accepting: close and unlink the socket immediately so new
  // connects fail fast (and a replacement daemon can bind the path).
  if (ListenFd >= 0) {
    ::close(ListenFd);
    ListenFd = -1;
    ::unlink(Opts.SocketPath.c_str());
  }
}

bool Daemon::drainComplete() const {
  for (const WorkerSlot &W : Workers)
    if (W.Busy || !W.Queue.empty())
      return false;
  for (const auto &KV : Clients)
    if (!KV.second.Out.empty() || !KV.second.Held.empty())
      return false;
  return true;
}

bool Daemon::step(int TimeoutMs) {
  if (stopRequested())
    return false;
  uint64_t Now = nowMs();
  if (Opts.DrainFlag && *Opts.DrainFlag)
    beginDrain(Now);
  if (Draining && (drainComplete() || Now >= DrainDeadlineAt)) {
    Stopping = true;
    return false;
  }
  respawnDueWorkers(Now);
  pumpWorkers(Now);

  std::vector<pollfd> Fds;
  // Index bookkeeping: [0] listen, then clients, then workers. A
  // negative fd (listen socket closed by drain) is legally ignored by
  // poll(), keeping the indexing stable.
  Fds.push_back({ListenFd, POLLIN, 0});
  std::vector<uint64_t> ClientSeqs;
  for (auto &KV : Clients) {
    short Ev = POLLIN;
    if (!KV.second.Out.empty())
      Ev |= POLLOUT;
    Fds.push_back({KV.second.Fd, Ev, 0});
    ClientSeqs.push_back(KV.first);
  }
  size_t WorkerBase = Fds.size();
  for (WorkerSlot &W : Workers) {
    if (W.Fd < 0)
      continue;
    short Ev = POLLIN;
    if (!W.Out.empty())
      Ev |= POLLOUT;
    Fds.push_back({W.Fd, Ev, 0});
  }

  int R = ::poll(Fds.data(), nfds_t(Fds.size()), TimeoutMs);
  if (R < 0 && errno != EINTR && errno != EAGAIN)
    return false; // poll itself failed; treat as fatal
  Now = nowMs();

  if (R > 0) {
    if (ListenFd >= 0 && (Fds[0].revents & POLLIN))
      acceptClients();
    for (size_t I = 1; I < WorkerBase; ++I) {
      uint64_t Seq = ClientSeqs[I - 1];
      if (Fds[I].revents & (POLLERR | POLLHUP | POLLNVAL)) {
        // Half-closed peers still expect queued responses; only a
        // read()==0 with nothing buffered actually drops them.
        if (Fds[I].revents & (POLLERR | POLLNVAL)) {
          dropClient(Seq);
          continue;
        }
      }
      if (Fds[I].revents & POLLOUT)
        flushClient(Seq);
      if (Clients.count(Seq) && (Fds[I].revents & (POLLIN | POLLHUP)))
        readClient(Seq);
    }
    // Workers may have been killed/respawned since the poll set was
    // built; match by fd to be safe.
    for (size_t I = WorkerBase; I < Fds.size(); ++I) {
      int Fd = Fds[I].fd;
      size_t Idx = Workers.size();
      for (size_t J = 0; J < Workers.size(); ++J)
        if (Workers[J].Fd == Fd)
          Idx = J;
      if (Idx == Workers.size())
        continue;
      if (Fds[I].revents & POLLOUT)
        if (!flushBuffer(Fd, Workers[Idx].Out)) {
          workerDied(Idx, "worker-crash");
          continue;
        }
      if (Workers[Idx].Fd == Fd &&
          (Fds[I].revents & (POLLIN | POLLHUP | POLLERR)))
        readWorker(Idx);
    }
  }

  checkDeadlines(Now);
  pumpWorkers(Now);
  return !stopRequested();
}

void Daemon::run() {
  while (step(100))
    ;
  // Best-effort final flush so a shutdown ack reaches its client.
  uint64_t Until = nowMs() + 500;
  for (;;) {
    bool Dirty = false;
    for (auto It = Clients.begin(); It != Clients.end();) {
      uint64_t Seq = It->first;
      ++It;
      flushClient(Seq);
    }
    for (auto &KV : Clients)
      if (!KV.second.Out.empty())
        Dirty = true;
    if (!Dirty || nowMs() >= Until)
      break;
    struct timespec TS = {0, 5'000'000}; // 5ms
    nanosleep(&TS, nullptr);
  }
  for (WorkerSlot &W : Workers)
    killWorker(W);
  // Everything served is journaled; make it durable before exit 0.
  Store.sync();
  Store.close();
}

#else // !VPO_SERVICE_POSIX

Status Daemon::start() {
  return Status::error(ErrorCode::Unsupported, "vpod", "",
                       "the compile service requires a POSIX platform");
}
void Daemon::run() {}
bool Daemon::step(int) { return false; }
Status Daemon::spawnWorker(WorkerSlot &) {
  return Status::error(ErrorCode::Unsupported, "vpod", "", "no POSIX");
}
void Daemon::killWorker(WorkerSlot &) {}
void Daemon::respawnDueWorkers(uint64_t) {}
void Daemon::acceptClients() {}
void Daemon::readClient(uint64_t) {}
void Daemon::flushClient(uint64_t) {}
void Daemon::dropClient(uint64_t) {}
void Daemon::handleFrame(uint64_t, const std::string &) {}
void Daemon::handleCompile(uint64_t, uint64_t, ServiceRequest) {}
void Daemon::readWorker(size_t) {}
void Daemon::handleWorkerResponse(WorkerSlot &, const std::string &) {}
void Daemon::workerDied(size_t, const char *) {}
void Daemon::checkDeadlines(uint64_t) {}
void Daemon::pumpWorkers(uint64_t) {}
void Daemon::sendResponse(uint64_t, uint64_t, const ServiceRequest &,
                          ServiceResponse) {}
void Daemon::sendCached(uint64_t, uint64_t, const ServiceRequest &,
                        const CachedResult &) {}
void Daemon::escalate(WorkerSlot &, const char *, ErrorCode) {}
void Daemon::beginDrain(uint64_t) {}
bool Daemon::drainComplete() const { return true; }
void Daemon::handleReload(uint64_t, uint64_t, const ServiceRequest &) {}

#endif // VPO_SERVICE_POSIX
