//===- service/Protocol.h - vpod wire protocol ------------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compile service's wire protocol: length-prefixed NDJSON over a
/// Unix-domain socket. Every message is one frame:
///
///   <decimal payload length> '\n' <payload> '\n'
///
/// where the payload is a single flat JSON object on one line (the same
/// dialect the remark writer emits: string keys, string/number/boolean
/// values, no nesting). Length-prefixing lets the daemon reject an
/// oversized request before buffering it; the NDJSON payload keeps every
/// message greppable and `tools/remark_query`-compatible where remark
/// streams are embedded.
///
/// The same framing runs on both hops — client <-> daemon and daemon <->
/// forked worker — so one decoder serves both, and a worker can stream a
/// response through the daemon without re-encoding.
///
/// Requests (op = "compile" | "ping" | "status" | "shutdown"):
///   {"op":"compile","id":"7","config":"coalesce-all","target":"alpha",
///    "ir":"function f(...) ...","remarks":true,"deadline_ms":2000}
///
/// Responses always carry "status" (support/Diagnostics.h error-code
/// name: "ok", "parse-error", "overloaded", "deadline-exceeded", ...),
/// plus the compile payload on success. See ServiceResponse.
///
//===----------------------------------------------------------------------===//

#ifndef VPO_SERVICE_PROTOCOL_H
#define VPO_SERVICE_PROTOCOL_H

#include "support/Diagnostics.h"

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace vpo {
namespace service {

/// Upper bound a frame reader enforces before allocating. Both sides
/// reject bigger frames as malformed rather than buffering them.
constexpr size_t defaultMaxFrameBytes = size_t(8) << 20;

//===----------------------------------------------------------------------===//
// Framing
//===----------------------------------------------------------------------===//

/// Appends one encoded frame to \p Out (for buffered nonblocking writers).
void appendFrame(std::string &Out, const std::string &Payload);

/// Writes one frame (blocking, EINTR-safe). \returns false on I/O error.
bool writeFrame(int Fd, const std::string &Payload);

enum class FrameStatus : uint8_t {
  Ok,        ///< one complete frame delivered
  NeedMore,  ///< (decoder) no complete frame buffered yet
  Eof,       ///< peer closed cleanly between frames
  Malformed, ///< bad length header, missing terminator, or oversized
  IoError,   ///< read failed
};

/// Blocking read of exactly one frame. Partial trailing garbage and
/// frames over \p MaxBytes yield Malformed.
FrameStatus readFrame(int Fd, std::string &Payload,
                      size_t MaxBytes = defaultMaxFrameBytes);

/// Incremental decoder for nonblocking loops: feed() whatever arrived,
/// then drain next() until it returns NeedMore. Malformed is sticky —
/// the stream cannot be resynchronized and the peer should be dropped.
class FrameDecoder {
public:
  explicit FrameDecoder(size_t MaxBytes = defaultMaxFrameBytes)
      : MaxBytes(MaxBytes) {}

  void feed(const char *Data, size_t N) { Buf.append(Data, N); }

  /// \returns Ok with \p Payload filled, NeedMore, or Malformed.
  FrameStatus next(std::string &Payload);

  size_t buffered() const { return Buf.size(); }

private:
  std::string Buf;
  size_t MaxBytes;
  bool Bad = false;
};

//===----------------------------------------------------------------------===//
// Flat JSON payloads
//===----------------------------------------------------------------------===//

/// Serializer for the protocol's one-line flat JSON objects. Keys are
/// emitted in call order, so equal message contents render byte-
/// identically (the cache-correctness tests diff whole payloads).
class JsonWriter {
public:
  JsonWriter() : Out("{") {}
  void str(const char *Key, const std::string &V);
  void num(const char *Key, int64_t V);
  void num(const char *Key, uint64_t V);
  void boolean(const char *Key, bool V);
  std::string finish();

private:
  std::string Out;
  bool First = true;
};

/// Parses a one-line flat JSON object into key -> raw value. String
/// values are unescaped; numbers and booleans arrive as their literal
/// text ("42", "true"). Nested objects/arrays are rejected. \returns
/// false on malformed input.
bool parseFlatJson(const std::string &Text,
                   std::map<std::string, std::string> &Out);

//===----------------------------------------------------------------------===//
// Messages
//===----------------------------------------------------------------------===//

/// One request to the daemon (or, with Rung set, to a worker).
struct ServiceRequest {
  std::string Op = "compile"; ///< "compile" | "ping" | "status" | "shutdown"
  std::string Id;             ///< opaque, echoed in the response
  std::string IR;             ///< RTL text (ir/IRParser.h dialect)
  std::string Config = "coalesce-all"; ///< named pipeline config
  std::string Target = "alpha";
  bool WantRemarks = false; ///< include the remark NDJSON in the response
  bool WantIR = true;       ///< include the optimized IR in the response
  uint64_t DeadlineMs = 0;  ///< per-request override (daemon caps it); 0 = default
  /// Optional simulation after the compile: comma-separated int64
  /// arguments. The kernel runs over a zero-filled arena under the
  /// daemon's instruction budget; out-of-bounds addresses trap safely.
  std::string RunArgs;
  uint64_t ArenaKB = 0; ///< run-mode arena size (0 = 64 KB)
  /// Test-only fault plant, refused unless the daemon runs with
  /// --allow-fault-injection: "crash[:maxrung]", "hang[:maxrung]", or
  /// "<pass>:<fault-kind>:<seed>" (pipeline/FaultInjection.h).
  std::string Fault;
  /// Degradation-ladder attempt (0 = full pipeline). Set by the daemon
  /// on the worker hop; clients leave it 0.
  unsigned Rung = 0;

  std::string toJson() const;
  static std::optional<ServiceRequest> fromJson(const std::string &Text);
};

/// One response. Fields beyond Status are meaningful only where noted.
struct ServiceResponse {
  std::string Id; ///< echoed from the request
  /// Overall outcome; errorCodeName(Status) is the wire form. Ok covers
  /// degraded-but-correct results — check Rung/Degraded/Incidents.
  ErrorCode Status = ErrorCode::Ok;
  std::string Error; ///< human-readable detail when Status != Ok
  /// Degradation rung that produced the result: 0 full requested
  /// pipeline, 1 conservative (no coalescing), 2 reference O0.
  unsigned Rung = 0;
  /// Why the ladder moved ("worker-crash", "worker-deadline"); empty at
  /// rung 0.
  std::string Degraded;
  /// Guard-rail incident summary from the compile, ";"-separated
  /// "pass=coalesce rolled-back disabled" entries; empty when clean.
  std::string Incidents;
  std::string IR;      ///< optimized IR text (WantIR)
  std::string Stats;   ///< CoalesceStats JSON
  std::string Remarks; ///< remark NDJSON stream (WantRemarks)
  bool Cached = false; ///< served from the content cache
  std::string Key;     ///< canonical content key (hex)
  /// Run-mode results (request had RunArgs).
  bool Ran = false;
  std::string RunStatus; ///< sim/Interpreter.h runStatusName
  int64_t ReturnValue = 0;
  /// Always 0 from current workers: run mode executes on the functional
  /// tiered engine, which carries no cycle model. The field stays on the
  /// wire for compatibility.
  uint64_t Cycles = 0;
  uint64_t Instructions = 0;
  /// Extra counters for op=status responses (key order preserved).
  std::vector<std::pair<std::string, std::string>> Extra;

  std::string toJson() const;
  static std::optional<ServiceResponse> fromJson(const std::string &Text);

  /// The fields a cache hit must reproduce byte-for-byte: everything a
  /// client can observe about the *result*, excluding serving metadata
  /// (Cached, Id). The cache-correctness suite diffs this.
  std::string resultSignature() const;
};

} // namespace service
} // namespace vpo

#endif // VPO_SERVICE_PROTOCOL_H
