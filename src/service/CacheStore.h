//===- service/CacheStore.h - Crash-safe cache journal ----------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Append-only on-disk journal for the content cache, so a restarted
/// daemon boots warm instead of recompiling everything it had already
/// served. The commit protocol is built for kill -9 at any byte:
///
///   record := "VPJ1" | u32le payload-len | u64le fnv1a(payload) | payload
///
/// where the payload is one flat JSON object (service/Protocol.h
/// dialect) describing either a store insert or a raw->canonical alias.
/// Appends are write-then-fsync; a record is committed iff its checksum
/// verifies. Recovery replays the journal front to back:
///
///   * a torn tail (header or payload cut short by a crash) is
///     truncated back to the last committed record;
///   * a checksum failure discards that record and byte-scans forward
///     to the next magic, so one corrupt sector cannot take out the
///     records behind it.
///
/// Either way the cache ends up holding only values that were fully
/// committed — a crashed write yields a clean miss, never a corrupt
/// serve.
///
/// Superseded records (LRU evictions, refreshed keys) become garbage
/// that only compaction reclaims: the live entries are rewritten
/// oldest-first to a temp file (so replay reproduces the cache's
/// recency order), fsync'd, renamed over the journal, and the directory
/// fsync'd — the same atomic-replace idiom as the snapshot journal.
///
//===----------------------------------------------------------------------===//

#ifndef VPO_SERVICE_CACHESTORE_H
#define VPO_SERVICE_CACHESTORE_H

#include "service/ContentCache.h"

#include <cstdint>
#include <string>
#include <unordered_map>

namespace vpo {
namespace service {

/// What recovery found, reported by the daemon's status op so the chaos
/// harness (and operators) can see crash-recovery working.
struct CacheRecoveryStats {
  uint64_t RecoveredEntries = 0;  ///< committed inserts replayed
  uint64_t RecoveredAliases = 0;  ///< committed aliases replayed
  uint64_t DiscardedRecords = 0;  ///< checksum/parse failures skipped
  bool TornTail = false;          ///< trailing partial record truncated
  uint64_t JournalBytes = 0;      ///< journal size after recovery
};

class CacheStore {
public:
  struct Options {
    /// fsync after every append. The whole point of the journal is
    /// surviving kill -9, so this defaults on; tests that hammer the
    /// write path can turn it off.
    bool SyncEveryWrite = true;
    /// Compaction trigger floor: below this size the garbage ratio is
    /// ignored (rewriting a tiny journal buys nothing).
    uint64_t CompactMinBytes = 64 * 1024;
  };

  CacheStore() = default;
  ~CacheStore();
  CacheStore(const CacheStore &) = delete;
  CacheStore &operator=(const CacheStore &) = delete;

  Options Opts;

  /// Opens (creating if absent) the journal at \p Path and replays every
  /// committed record into \p Cache. Truncates a torn tail in place.
  /// \returns false with \p Err set if the file cannot be opened; a
  /// damaged-but-openable journal still succeeds (damage is reported in
  /// \p Stats, not treated as fatal).
  bool open(const std::string &Path, ContentCache &Cache,
            CacheRecoveryStats &Stats, std::string &Err);

  /// Journals a store insert. Call *before* ContentCache::insert so the
  /// on-disk copy is write-ahead: a crash between the two costs a
  /// recompile, never a phantom cache entry.
  void noteInsert(const ContentKey &Canon, const CachedResult &R);

  /// Journals a raw -> canonical alias.
  void noteAlias(const ContentKey &Raw, const ContentKey &Canon);

  /// Garbage accounting for an LRU eviction (wire via
  /// ContentCache::setEvictHook). The record stays on disk until
  /// compaction; replaying it is harmless (the entry just re-evicts).
  void noteEvicted(const ContentKey &Canon);

  /// Compacts when the journal is big enough and mostly garbage.
  /// \returns true if a compaction ran.
  bool maybeCompact(const ContentCache &Cache);

  /// Rewrites the journal to exactly \p Cache's live contents via
  /// tmp + fsync + rename + directory fsync. \returns false (journal
  /// left untouched) on any I/O failure.
  bool compact(const ContentCache &Cache);

  /// fsync the journal (drain path: flush before exit).
  void sync();

  /// fsync + close. Reopen with open().
  void close();

  /// Drops the fd without syncing — for forked children that must not
  /// touch the parent's journal.
  void abandon();

  bool isOpen() const { return Fd >= 0; }
  uint64_t journalBytes() const { return JournalBytes; }
  uint64_t garbageBytes() const { return GarbageBytes; }
  uint64_t compactions() const { return Compactions; }

  /// Serializes one insert/alias payload (exposed for tests, which
  /// hand-craft journals to corrupt).
  static std::string encodeInsertPayload(const ContentKey &Canon,
                                         const CachedResult &R);
  static std::string encodeAliasPayload(const ContentKey &Raw,
                                        const ContentKey &Canon);
  /// Frames \p Payload as a full record (magic + header + checksum).
  static std::string encodeRecord(const std::string &Payload);

private:
  void appendRecord(const std::string &Payload);

  int Fd = -1;
  std::string Path;
  uint64_t JournalBytes = 0;
  uint64_t GarbageBytes = 0;
  uint64_t Compactions = 0;
  /// Last journaled record size per live canonical key, so a refresh or
  /// eviction can move exactly that many bytes to the garbage side.
  std::unordered_map<std::string, uint64_t> LiveBytes;
};

} // namespace service
} // namespace vpo

#endif // VPO_SERVICE_CACHESTORE_H
