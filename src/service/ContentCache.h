//===- service/ContentCache.h - Content-addressed result cache --*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Content-addressed caching for the compile service: results are keyed
/// by a 128-bit hash of (canonicalized IR, pipeline config, target,
/// run-mode signature), so a repeated request is a cache hit that
/// bypasses the worker pool entirely and returns a byte-identical
/// result.
///
/// Canonicalization is parse -> print: two textually different requests
/// for the same kernel (whitespace, comments) share a canonical key.
/// But parsing untrusted IR is exactly the kind of work the daemon
/// refuses to do in-process — it happens in a crash-contained worker.
/// The cache therefore has two levels:
///
///   * the **store**, keyed by the canonical hash the worker computed
///     (entries hold the full result payload);
///   * a **raw-text alias index**, mapping the hash of the request's
///     literal bytes to the canonical key.
///
/// A byte-identical repeat resolves through the alias index without any
/// parsing. A whitespace-variant request misses the alias index, costs
/// one worker round (which canonicalizes it), and then discovers the
/// existing store entry — so the *result* is still served from cache,
/// byte-identical, and the variant's raw hash is aliased for next time.
///
/// Eviction is LRU with a fixed entry bound; aliases of an evicted
/// entry die lazily on their next lookup. Only clean full-pipeline
/// results are inserted — degraded results describe transient worker
/// state, not the content, and must not be replayed.
///
//===----------------------------------------------------------------------===//

#ifndef VPO_SERVICE_CONTENTCACHE_H
#define VPO_SERVICE_CONTENTCACHE_H

#include "service/Protocol.h"

#include <cstdint>
#include <functional>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>

namespace vpo {
namespace service {

/// 128-bit content key (two independent 64-bit FNV-1a passes — not
/// cryptographic, but collision-proof at any realistic cache size).
struct ContentKey {
  uint64_t Hi = 0;
  uint64_t Lo = 0;

  bool operator==(const ContentKey &O) const {
    return Hi == O.Hi && Lo == O.Lo;
  }
  bool isZero() const { return Hi == 0 && Lo == 0; }

  /// 32 lowercase hex digits.
  std::string hex() const;
};

struct ContentKeyHash {
  size_t operator()(const ContentKey &K) const {
    return static_cast<size_t>(K.Lo ^ (K.Hi * 0x9e3779b97f4a7c15ull));
  }
};

/// Hashes one field-separated content tuple. \p RunSig encodes the
/// run-mode part of the request ("args:arena", empty for compile-only).
ContentKey hashContent(const std::string &IRText, const std::string &Config,
                       const std::string &Target,
                       const std::string &RunSig);

/// Parses 32 hex digits back into a key (the wire form a worker reports
/// via ServiceResponse::Key). \returns nullopt on malformed input.
std::optional<ContentKey> contentKeyFromHex(const std::string &Hex);

/// The run-mode part of a request's content identity: "args@arenakb"
/// when the request executes the kernel, empty for compile-only. Both
/// the daemon's raw-bytes key and the worker's canonical key hash this,
/// so compile-only and run results never collide.
std::string runSignature(const ServiceRequest &Req);

/// The payload a hit replays. Everything response-visible about the
/// *result*; serving metadata (Cached, Id) is per-request.
struct CachedResult {
  ErrorCode Status = ErrorCode::Ok;
  std::string Key; ///< canonical key hex (part of the result signature)
  std::string IR;
  std::string Stats;
  std::string Remarks;
  std::string Incidents;
  bool Ran = false;
  std::string RunStatus;
  int64_t ReturnValue = 0;
  uint64_t Cycles = 0;
  uint64_t Instructions = 0;
};

class ContentCache {
public:
  explicit ContentCache(size_t MaxEntries) : MaxEntries(MaxEntries) {}

  /// Store lookup by canonical key; bumps LRU and the hit counter.
  /// \returns nullptr on miss (counted).
  const CachedResult *lookup(const ContentKey &Canon);

  /// Alias-index lookup: raw-bytes key -> canonical key, then the store.
  /// A dangling alias (entry evicted) is erased and counts as a miss.
  const CachedResult *lookupRaw(const ContentKey &Raw);

  /// Inserts (or refreshes) the store entry for \p Canon, evicting the
  /// LRU tail beyond the bound.
  void insert(const ContentKey &Canon, CachedResult R);

  /// Records raw -> canonical. Bounded at 4x the entry bound; beyond
  /// that the oldest aliases are dropped (they only cost a re-parse).
  void alias(const ContentKey &Raw, const ContentKey &Canon);

  size_t size() const { return Entries.size(); }
  uint64_t hits() const { return Hits; }
  uint64_t misses() const { return Misses; }

  /// Called with the canonical key of every entry evicted by the LRU
  /// bound (not for refreshes). The persistent journal (CacheStore) uses
  /// it for garbage accounting so compaction knows when to run.
  void setEvictHook(std::function<void(const ContentKey &)> H) {
    OnEvict = std::move(H);
  }

  /// Walks live entries oldest-first (LRU tail to MRU head) — the order
  /// a compacted journal must append in so replaying it reproduces this
  /// cache's recency order.
  void forEachOldestFirst(
      const std::function<void(const ContentKey &, const CachedResult &)>
          &Fn) const {
    for (auto It = LRU.rbegin(); It != LRU.rend(); ++It)
      Fn(It->first, It->second);
  }

  /// Walks raw -> canonical aliases in insertion order.
  void forEachAlias(
      const std::function<void(const ContentKey &, const ContentKey &)> &Fn)
      const {
    for (const ContentKey &Raw : AliasOrder)
      if (auto It = Aliases.find(Raw); It != Aliases.end())
        Fn(Raw, It->second);
  }

private:
  size_t MaxEntries;
  /// MRU-first list of (canonical key, payload).
  std::list<std::pair<ContentKey, CachedResult>> LRU;
  std::unordered_map<ContentKey, decltype(LRU)::iterator, ContentKeyHash>
      Entries;
  std::unordered_map<ContentKey, ContentKey, ContentKeyHash> Aliases;
  std::list<ContentKey> AliasOrder; ///< insertion order, for bounding
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  std::function<void(const ContentKey &)> OnEvict;
};

} // namespace service
} // namespace vpo

#endif // VPO_SERVICE_CONTENTCACHE_H
