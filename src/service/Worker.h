//===- service/Worker.h - Crash-contained compile worker --------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The worker side of the compile service: a forked child that serves
/// compile requests over a socketpair until EOF. Everything that can be
/// damaged by untrusted input — parsing, the optimization pipeline, the
/// optional simulation — happens here, behind three fences:
///
///   * the daemon's per-request wall-clock deadline (a hung worker is
///     SIGKILLed and respawned; compare fuzz/Watchdog.h);
///   * InterpreterOptions::MaxSteps on run-mode simulations;
///   * an optional RLIMIT_AS address-space ceiling plus the pipeline's
///     CompileOptions::MaxFunctionInsts growth budget.
///
/// compileServiceRequest is the pure, fork-free core (tests call it
/// directly); workerMain wraps it in the serve loop.
///
/// The degradation ladder lives here too: rung 0 is the requested
/// configuration, rung 1 disables coalescing and its companion passes
/// (the guard-rail-incident passes of PR 1), rung 2 is the O0 reference
/// pipeline. The daemon escalates the rung each time a worker dies on a
/// request; a rung-2 compile exercises no optimization machinery, so
/// every request ends in a correct answer or a structured error.
///
//===----------------------------------------------------------------------===//

#ifndef VPO_SERVICE_WORKER_H
#define VPO_SERVICE_WORKER_H

#include "pipeline/Pipeline.h"
#include "service/ContentCache.h"
#include "service/Protocol.h"

namespace vpo {
namespace service {

/// Last rung of the degradation ladder (O0 reference compile).
constexpr unsigned maxServiceRung = 2;

/// Per-worker limits and switches, decided by the daemon at spawn time.
struct WorkerLimits {
  /// Instruction budget for run-mode simulations.
  uint64_t MaxInsts = 50'000'000;
  /// Pipeline IR growth budget (CompileOptions::MaxFunctionInsts).
  size_t MaxFunctionInsts = 2'000'000;
  /// Address-space ceiling for the worker process, MB (0 = off; forced
  /// off under ASan — see support/Posix.h).
  size_t MemLimitMB = 0;
  /// Honor ServiceRequest::Fault plants (test/benchmark daemons only).
  bool AllowFaultInjection = false;
  size_t MaxFrameBytes = defaultMaxFrameBytes;
  /// Allow run-mode simulations to promote hot blocks to native code
  /// (jit/JIT.h). The daemon's --no-jit clears it; rung-2 requests never
  /// promote regardless, keeping crash-suspect inputs on the portable
  /// interpreter tier.
  bool JITNative = true;
};

/// The named pipeline configurations the service accepts, mirroring the
/// fuzzer's oracle matrix: "O0", "vpo-O", "coalesce-loads",
/// "coalesce-all", "coalesce-all+companions", "coalesce-all-u4".
const std::vector<PipelineConfig> &serviceConfigs();

/// \returns the config named \p Name, or nullptr.
const PipelineConfig *serviceConfigByName(const std::string &Name);

/// Applies degradation rung \p Rung to a requested configuration:
/// rung 0 passes through, rung 1 turns off coalescing/companions, rung 2
/// returns the O0 reference options. All rungs keep guard rails on.
CompileOptions ladderOptions(const CompileOptions &Requested, unsigned Rung);

/// The pure worker core: validate, parse, canonicalize, compile at the
/// request's rung, optionally simulate. Never throws, never aborts on
/// any input (a crash here is a bug the daemon's containment turns into
/// a degraded-but-served request). Fault plants of the crash/hang kind
/// are honored *before* this returns, so they manifest as real worker
/// deaths. \p Canon receives the canonical content key (zero when the
/// input never parsed).
ServiceResponse compileServiceRequest(const ServiceRequest &Req,
                                      const WorkerLimits &Limits,
                                      ContentKey *Canon = nullptr);

/// Forked-child entry point: serves framed requests on \p Fd until EOF
/// or a fatal protocol error, then _exit(0)s. Installs SIGPIPE-ignore
/// and the address-space ceiling first.
[[noreturn]] void workerMain(int Fd, const WorkerLimits &Limits);

} // namespace service
} // namespace vpo

#endif // VPO_SERVICE_WORKER_H
