//===- analysis/BaseOrigin.cpp --------------------------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "analysis/BaseOrigin.h"

#include "ir/Function.h"
#include "support/MathExtras.h"

#include <unordered_map>

using namespace vpo;

namespace {

/// The instruction whose result gives a register its *identity*: its
/// unique definition, or — for induction variables, whose other
/// definitions are all self-updates (`R = R op X`) that move the pointer
/// within the same object — its unique initializer. nullptr when
/// genuinely ambiguous.
std::unordered_map<unsigned, const Instruction *>
identityDefs(const Function &F) {
  std::unordered_map<unsigned, std::vector<const Instruction *>> All;
  for (const auto &BB : F.blocks())
    for (const Instruction &I : BB->insts())
      if (auto D = I.def())
        All[D->Id].push_back(&I);

  std::unordered_map<unsigned, const Instruction *> Defs;
  std::vector<Reg> Uses;
  for (auto &[Id, List] : All) {
    const Instruction *Init = nullptr;
    bool Ambiguous = false;
    for (const Instruction *I : List) {
      Uses.clear();
      I->collectUses(Uses);
      bool SelfUpdate = false;
      for (Reg U : Uses)
        SelfUpdate |= U.Id == Id;
      if (SelfUpdate)
        continue;
      if (Init)
        Ambiguous = true;
      Init = I;
    }
    Defs[Id] = Ambiguous ? nullptr : Init;
  }
  return Defs;
}

bool isParam(const Function &F, Reg R) {
  for (Reg P : F.params())
    if (P == R)
      return true;
  return false;
}

bool hasDeclaredFacts(const Function &F, Reg Param) {
  ParamInfo PI = F.paramInfoFor(Param);
  return PI.NoAlias || PI.KnownAlign > 1;
}

BaseOrigin traceImpl(
    const Function &F,
    const std::unordered_map<unsigned, const Instruction *> &Defs, Reg R,
    int Depth) {
  BaseOrigin O;
  if (Depth > 16)
    return O;
  if (isParam(F, R)) {
    O.Param = R;
    O.ExactOffset = true;
    O.Offset = 0;
    return O;
  }
  auto It = Defs.find(R.Id);
  if (It == Defs.end() || !It->second)
    return O;
  const Instruction &I = *It->second;

  auto Follow = [&](Reg Next, int64_t Delta,
                    bool DeltaExact) -> BaseOrigin {
    BaseOrigin Inner = traceImpl(F, Defs, Next, Depth + 1);
    if (!Inner.traced())
      return Inner;
    Inner.ExactOffset = Inner.ExactOffset && DeltaExact;
    Inner.Offset = Inner.ExactOffset ? Inner.Offset + Delta : 0;
    return Inner;
  };

  switch (I.Op) {
  case Opcode::Mov:
    if (I.A.isReg())
      return Follow(I.A.reg(), 0, true);
    return O;
  case Opcode::Add:
    if (I.A.isReg() && I.B.isImm())
      return Follow(I.A.reg(), I.B.imm(), true);
    if (I.B.isReg() && I.A.isImm())
      return Follow(I.B.reg(), I.A.imm(), true);
    if (I.A.isReg() && I.B.isReg()) {
      // Register + register: usable only when exactly one side reaches a
      // parameter with declared facts (the pointer side).
      BaseOrigin LHS = Follow(I.A.reg(), 0, false);
      BaseOrigin RHS = Follow(I.B.reg(), 0, false);
      bool LGood = LHS.traced() && hasDeclaredFacts(F, LHS.Param);
      bool RGood = RHS.traced() && hasDeclaredFacts(F, RHS.Param);
      if (LGood != RGood)
        return LGood ? LHS : RHS;
      return O;
    }
    return O;
  case Opcode::Sub:
    if (I.A.isReg() && I.B.isImm())
      return Follow(I.A.reg(), -I.B.imm(), true);
    if (I.A.isReg() && I.B.isReg()) {
      BaseOrigin LHS = Follow(I.A.reg(), 0, false);
      if (LHS.traced() && hasDeclaredFacts(F, LHS.Param))
        return LHS;
      return O;
    }
    return O;
  default:
    return O;
  }
}

} // namespace

BaseOrigin vpo::traceBaseOrigin(const Function &F, Reg R) {
  auto Defs = identityDefs(F);
  return traceImpl(F, Defs, R, 0);
}

bool vpo::baseIsNoAlias(const Function &F, Reg R) {
  BaseOrigin O = traceBaseOrigin(F, R);
  return O.traced() && F.paramInfoFor(O.Param).NoAlias;
}

uint64_t vpo::baseKnownAlignment(const Function &F, Reg R) {
  BaseOrigin O = traceBaseOrigin(F, R);
  if (!O.traced() || !O.ExactOffset)
    return 1;
  uint64_t ParamAlign = F.paramInfoFor(O.Param).KnownAlign;
  if (O.Offset == 0)
    return ParamAlign;
  uint64_t OffAlign = knownAlignmentOf(O.Offset);
  return ParamAlign < OffAlign ? ParamAlign : OffAlign;
}
