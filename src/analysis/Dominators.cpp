//===- analysis/Dominators.cpp --------------------------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "analysis/Dominators.h"

#include "analysis/CFG.h"
#include "ir/Function.h"

#include <unordered_map>

using namespace vpo;

DominatorTree::DominatorTree(const CFG &G) : G(G) {
  const auto &RPO = G.reversePostOrder();
  if (RPO.empty())
    return;

  std::unordered_map<const BasicBlock *, int> RPONum;
  for (size_t I = 0; I < RPO.size(); ++I)
    RPONum[RPO[I]] = static_cast<int>(I);

  BasicBlock *Entry = RPO.front();
  IDom[Entry] = Entry; // sentinel; reported as nullptr by idom().

  auto Intersect = [&](BasicBlock *A, BasicBlock *B) {
    while (A != B) {
      while (RPONum[A] > RPONum[B])
        A = IDom[A];
      while (RPONum[B] > RPONum[A])
        B = IDom[B];
    }
    return A;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (BasicBlock *BB : RPO) {
      if (BB == Entry || G.isUnreachable(BB))
        continue;
      BasicBlock *NewIDom = nullptr;
      for (BasicBlock *P : G.predecessors(BB)) {
        if (G.isUnreachable(P) || !IDom.count(P))
          continue;
        NewIDom = NewIDom ? Intersect(P, NewIDom) : P;
      }
      if (!NewIDom)
        continue;
      auto It = IDom.find(BB);
      if (It == IDom.end() || It->second != NewIDom) {
        IDom[BB] = NewIDom;
        Changed = true;
      }
    }
  }
}

BasicBlock *DominatorTree::idom(const BasicBlock *BB) const {
  auto It = IDom.find(BB);
  if (It == IDom.end() || It->second == BB)
    return nullptr;
  return It->second;
}

bool DominatorTree::dominates(const BasicBlock *A,
                              const BasicBlock *B) const {
  if (G.isUnreachable(A) || G.isUnreachable(B))
    return false;
  const BasicBlock *Cur = B;
  while (true) {
    if (Cur == A)
      return true;
    auto It = IDom.find(Cur);
    if (It == IDom.end() || It->second == Cur)
      return false; // reached the entry without meeting A
    Cur = It->second;
  }
}
