//===- analysis/MemoryPartitions.cpp --------------------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "analysis/MemoryPartitions.h"

#include "analysis/InductionVars.h"
#include "analysis/LoopInfo.h"
#include "ir/Function.h"

#include <unordered_map>

using namespace vpo;

MemoryPartitions::MemoryPartitions(const Loop &L, const LoopScalarInfo &LSI) {
  BasicBlock *Body = L.singleBodyBlock();
  if (!Body) {
    // Multi-block loops: conservatively unclassified. The coalescer's
    // same-basic-block safety rule (paper Fig. 4) makes such loops
    // untransformable anyway.
    AllClassified = false;
    return;
  }

  std::unordered_map<unsigned, size_t> PartIdxByBase;
  // Running sum of increments already executed for each IV as we walk the
  // block: a reference *after* `r16 = r16 + 2` addresses 2 bytes beyond a
  // reference before it with an equal displacement.
  std::unordered_map<unsigned, int64_t> ExecutedStep;

  for (size_t Idx = 0; Idx < Body->size(); ++Idx) {
    const Instruction &I = Body->insts()[Idx];

    if (I.isMemory()) {
      Reg Base = I.Addr.Base;
      const InductionVar *IV = LSI.ivFor(Base);
      bool Invariant = LSI.isInvariant(Base);
      if (!IV && !Invariant) {
        // Base register is redefined in the loop in a way that is not a
        // constant increment: no unique partition identifier exists.
        AllClassified = false;
      } else {
        auto [It, Inserted] = PartIdxByBase.try_emplace(Base.Id, Parts.size());
        if (Inserted) {
          Partition P;
          P.Base = Base;
          P.BaseIsIV = IV != nullptr;
          P.Step = IV ? IV->StepPerIteration : 0;
          Parts.push_back(P);
        }
        MemRef R;
        R.InstIdx = Idx;
        R.IsLoad = I.isLoad();
        R.IsStore = I.isStore();
        R.W = I.W;
        R.IsFloat = I.IsFloat;
        R.SignExtend = I.SignExtend;
        int64_t Adjust = 0;
        if (IV) {
          auto SIt = ExecutedStep.find(Base.Id);
          if (SIt != ExecutedStep.end())
            Adjust = SIt->second;
        }
        R.Offset = I.Addr.Disp + Adjust;
        Parts[It->second].Refs.push_back(R);
      }
    }

    // Track executed IV increments.
    if (auto D = I.def())
      if (const InductionVar *IV = LSI.ivFor(*D))
        for (size_t IncIdx : IV->IncIdxs)
          if (IncIdx == Idx) {
            // Recover this increment's step from the instruction itself.
            int64_t Step = 0;
            if (I.Op == Opcode::Add)
              Step = I.A.isImm() ? I.A.imm() : I.B.imm();
            else if (I.Op == Opcode::Sub)
              Step = -I.B.imm();
            ExecutedStep[D->Id] += Step;
          }
  }
}

int MemoryPartitions::partitionIdFor(size_t InstIdx) const {
  for (size_t P = 0; P < Parts.size(); ++P)
    for (const MemRef &R : Parts[P].Refs)
      if (R.InstIdx == InstIdx)
        return static_cast<int>(P);
  return -1;
}

const Partition *MemoryPartitions::partitionForBase(Reg R) const {
  for (const Partition &P : Parts)
    if (P.Base == R)
      return &P;
  return nullptr;
}
