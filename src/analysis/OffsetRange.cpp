//===- analysis/OffsetRange.cpp - offset/stride abstract domain -*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "analysis/OffsetRange.h"

#include <algorithm>
#include <numeric>

using namespace vpo;

int64_t vpo::floorMod(int64_t V, uint64_t M) {
  if (M <= 1)
    return 0;
  int64_t SM = static_cast<int64_t>(M);
  int64_t R = V % SM;
  return R < 0 ? R + SM : R;
}

namespace {

/// |A - B| as an unsigned 64-bit value (exact for any int64 pair).
uint64_t absDiff(int64_t A, int64_t B) {
  return A >= B ? static_cast<uint64_t>(A) - static_cast<uint64_t>(B)
                : static_cast<uint64_t>(B) - static_cast<uint64_t>(A);
}

/// Moduli too large for floorMod's signed arithmetic carry no useful
/// stride information; collapse them to "unknown".
constexpr uint64_t ModCap = uint64_t(1) << 62;

struct Cong {
  uint64_t Mod; // 0 = exact, 1 = unknown
  int64_t Rem;
};

Cong congUnknown() { return {1, 0}; }

Cong canonCong(uint64_t M, int64_t R) {
  if (M == 1 || M > ModCap)
    return congUnknown();
  if (M == 0)
    return {0, R};
  return {M, floorMod(R, M)};
}

/// gcd treating 0 as the identity (an exact value joins like modulus 0).
uint64_t gcd0(uint64_t A, uint64_t B) {
  if (A == 0)
    return B;
  if (B == 0)
    return A;
  return std::gcd(A, B);
}

Cong joinCong(Cong A, Cong B) {
  uint64_t G = gcd0(gcd0(A.Mod, B.Mod), absDiff(A.Rem, B.Rem));
  if (G == 0) // both exact and equal
    return {0, A.Rem};
  return canonCong(G, A.Rem);
}

Cong addCong(Cong A, Cong B) {
  uint64_t G = gcd0(A.Mod, B.Mod);
  int64_t S;
  if (__builtin_add_overflow(A.Rem, B.Rem, &S))
    return G == 0 ? congUnknown() : canonCong(G, floorMod(A.Rem, G) +
                                                     floorMod(B.Rem, G));
  return canonCong(G, S);
}

Cong subCong(Cong A, Cong B) {
  uint64_t G = gcd0(A.Mod, B.Mod);
  int64_t S;
  if (__builtin_sub_overflow(A.Rem, B.Rem, &S))
    return G == 0 ? congUnknown() : canonCong(G, floorMod(A.Rem, G) -
                                                     floorMod(B.Rem, G));
  return canonCong(G, S);
}

Cong mulCongConst(Cong A, int64_t C) {
  if (C == 0)
    return {0, 0};
  uint64_t AC = C < 0 ? -static_cast<uint64_t>(C) : static_cast<uint64_t>(C);
  int64_t RC;
  bool RemOv = __builtin_mul_overflow(A.Rem, C, &RC);
  if (A.Mod == 0)
    return RemOv ? congUnknown() : Cong{0, RC};
  uint64_t MC;
  if (__builtin_mul_overflow(A.Mod, AC, &MC) || MC > ModCap)
    // value = C * x is still a multiple of C.
    return canonCong(AC, 0);
  if (RemOv)
    return canonCong(AC, 0);
  return canonCong(MC, RC);
}

} // namespace

void OffsetRange::normalize() {
  if (K == Kind::Bottom) {
    HasLo = HasHi = false;
    Lo = Hi = 0;
    Mod = 1;
    Rem = 0;
    ParamIdx = 0;
    return;
  }
  if (K == Kind::Number)
    ParamIdx = 0;
  Cong C = canonCong(Mod, Rem);
  Mod = C.Mod;
  Rem = C.Rem;
  if (HasLo && HasHi && Lo == Hi) {
    Mod = 0;
    Rem = Lo;
  }
  if (Mod == 0) {
    HasLo = HasHi = true;
    Lo = Hi = Rem;
  }
}

OffsetRange OffsetRange::bottom() {
  OffsetRange R;
  R.K = Kind::Bottom;
  R.normalize();
  return R;
}

OffsetRange OffsetRange::unknown() { return OffsetRange(); }

OffsetRange OffsetRange::number(int64_t V) {
  OffsetRange R;
  R.K = Kind::Number;
  R.Mod = 0;
  R.Rem = V;
  R.normalize();
  return R;
}

OffsetRange OffsetRange::param(unsigned ParamIdx) {
  OffsetRange R;
  R.K = Kind::Param;
  R.ParamIdx = ParamIdx;
  R.Mod = 0;
  R.Rem = 0;
  R.normalize();
  return R;
}

bool OffsetRange::isTop() const {
  return K == Kind::Number && !HasLo && !HasHi && Mod == 1;
}

bool OffsetRange::isExact(int64_t &V) const {
  if (K == Kind::Bottom || Mod != 0)
    return false;
  V = Rem;
  return true;
}

bool OffsetRange::offsetCongruentTo(uint64_t M, int64_t &R) const {
  if (K == Kind::Bottom || M == 0)
    return false;
  if (M == 1) {
    R = 0;
    return true;
  }
  if (Mod == 0) {
    R = floorMod(Rem, M);
    return true;
  }
  if (Mod % M == 0) {
    R = floorMod(Rem, M);
    return true;
  }
  return false;
}

OffsetRange OffsetRange::join(const OffsetRange &A, const OffsetRange &B) {
  if (A.K == Kind::Bottom)
    return B;
  if (B.K == Kind::Bottom)
    return A;
  if (A.K != B.K || (A.K == Kind::Param && A.ParamIdx != B.ParamIdx))
    return unknown();
  OffsetRange R;
  R.K = A.K;
  R.ParamIdx = A.ParamIdx;
  R.HasLo = A.HasLo && B.HasLo;
  R.Lo = std::min(A.Lo, B.Lo);
  R.HasHi = A.HasHi && B.HasHi;
  R.Hi = std::max(A.Hi, B.Hi);
  Cong C = joinCong({A.Mod, A.Rem}, {B.Mod, B.Rem});
  R.Mod = C.Mod;
  R.Rem = C.Rem;
  R.normalize();
  return R;
}

OffsetRange OffsetRange::widen(const OffsetRange &Old, const OffsetRange &New) {
  if (Old.K == Kind::Bottom)
    return New;
  OffsetRange J = join(Old, New);
  if (J.K == Kind::Bottom)
    return J;
  if (J.Mod == 0) // pinned exact value: already stable
    return J;
  if (J.HasLo && (!Old.HasLo || J.Lo < Old.Lo))
    J.HasLo = false;
  if (J.HasHi && (!Old.HasHi || J.Hi > Old.Hi))
    J.HasHi = false;
  J.normalize();
  return J;
}

bool OffsetRange::leq(const OffsetRange &O) const {
  if (K == Kind::Bottom)
    return true;
  if (O.K == Kind::Bottom)
    return false;
  if (O.isTop())
    return true;
  if (K != O.K || (K == Kind::Param && ParamIdx != O.ParamIdx))
    return false;
  if (O.HasLo && (!HasLo || Lo < O.Lo))
    return false;
  if (O.HasHi && (!HasHi || Hi > O.Hi))
    return false;
  if (O.Mod == 0)
    return Mod == 0 && Rem == O.Rem;
  if (O.Mod == 1)
    return true;
  if (Mod == 0)
    return floorMod(Rem, O.Mod) == O.Rem;
  return Mod % O.Mod == 0 && floorMod(Rem, O.Mod) == O.Rem;
}

bool OffsetRange::operator==(const OffsetRange &O) const {
  if (K != O.K)
    return false;
  if (K == Kind::Bottom)
    return true;
  return ParamIdx == O.ParamIdx && HasLo == O.HasLo && HasHi == O.HasHi &&
         (!HasLo || Lo == O.Lo) && (!HasHi || Hi == O.Hi) && Mod == O.Mod &&
         Rem == O.Rem;
}

OffsetRange OffsetRange::add(const OffsetRange &A, const OffsetRange &B) {
  if (A.K == Kind::Bottom || B.K == Kind::Bottom)
    return bottom();
  if (A.K == Kind::Param && B.K == Kind::Param)
    return unknown(); // param + param: no single base survives
  OffsetRange R;
  R.K = (A.K == Kind::Param || B.K == Kind::Param) ? Kind::Param : Kind::Number;
  R.ParamIdx = A.K == Kind::Param ? A.ParamIdx : B.ParamIdx;
  R.HasLo = A.HasLo && B.HasLo && !__builtin_add_overflow(A.Lo, B.Lo, &R.Lo);
  R.HasHi = A.HasHi && B.HasHi && !__builtin_add_overflow(A.Hi, B.Hi, &R.Hi);
  Cong C = addCong({A.Mod, A.Rem}, {B.Mod, B.Rem});
  R.Mod = C.Mod;
  R.Rem = C.Rem;
  R.normalize();
  return R;
}

OffsetRange OffsetRange::sub(const OffsetRange &A, const OffsetRange &B) {
  if (A.K == Kind::Bottom || B.K == Kind::Bottom)
    return bottom();
  if (B.K == Kind::Param) {
    if (A.K != Kind::Param || A.ParamIdx != B.ParamIdx)
      return unknown(); // -param or cross-param difference
    // Same-parameter difference: the bases cancel to a Number.
  }
  OffsetRange R;
  R.K = (A.K == Kind::Param && B.K != Kind::Param) ? Kind::Param : Kind::Number;
  R.ParamIdx = R.K == Kind::Param ? A.ParamIdx : 0;
  R.HasLo = A.HasLo && B.HasHi && !__builtin_sub_overflow(A.Lo, B.Hi, &R.Lo);
  R.HasHi = A.HasHi && B.HasLo && !__builtin_sub_overflow(A.Hi, B.Lo, &R.Hi);
  Cong C = subCong({A.Mod, A.Rem}, {B.Mod, B.Rem});
  R.Mod = C.Mod;
  R.Rem = C.Rem;
  R.normalize();
  return R;
}

OffsetRange OffsetRange::mulConst(const OffsetRange &A, int64_t C) {
  if (A.K == Kind::Bottom)
    return bottom();
  if (C == 0)
    return number(0);
  if (A.K == Kind::Param) {
    // (param + off) * C: no base survives, but the product is a multiple
    // of C — the key alignment fact for scaled indices.
    OffsetRange R;
    Cong G = canonCong(C < 0 ? -static_cast<uint64_t>(C)
                             : static_cast<uint64_t>(C),
                       0);
    R.Mod = G.Mod;
    R.Rem = G.Rem;
    R.normalize();
    return R;
  }
  OffsetRange R;
  R.K = Kind::Number;
  int64_t LoC, HiC;
  bool LoOk = A.HasLo && !__builtin_mul_overflow(A.Lo, C, &LoC);
  bool HiOk = A.HasHi && !__builtin_mul_overflow(A.Hi, C, &HiC);
  if (C > 0) {
    R.HasLo = LoOk;
    R.Lo = LoC;
    R.HasHi = HiOk;
    R.Hi = HiC;
  } else {
    R.HasLo = HiOk;
    R.Lo = HiC;
    R.HasHi = LoOk;
    R.Hi = LoC;
  }
  Cong G = mulCongConst({A.Mod, A.Rem}, C);
  R.Mod = G.Mod;
  R.Rem = G.Rem;
  R.normalize();
  return R;
}

OffsetRange OffsetRange::shlConst(const OffsetRange &A, int64_t Sh) {
  if (A.K == Kind::Bottom)
    return bottom();
  if (Sh < 0 || Sh >= 63)
    return unknown();
  return mulConst(A, int64_t(1) << Sh);
}

OffsetRange OffsetRange::andMask(const OffsetRange &A, int64_t Mask) {
  if (A.K == Kind::Bottom)
    return bottom();
  if (Mask < 0)
    return unknown(); // sign-extended masks clear nothing useful here
  OffsetRange R;
  R.K = Kind::Number;
  R.HasLo = true;
  R.Lo = 0;
  R.HasHi = true;
  R.Hi = Mask;
  // x & Mask with Mask+1 a power of two is x mod (Mask+1): exact when the
  // operand's residue modulo Mask+1 is known. Only meaningful for Number
  // operands — a Param operand's absolute residue is unknown.
  uint64_t M1 = static_cast<uint64_t>(Mask) + 1;
  int64_t Res;
  if (A.K == Kind::Number && (M1 & (M1 - 1)) == 0 &&
      A.offsetCongruentTo(M1, Res)) {
    R.Mod = 0;
    R.Rem = Res;
  }
  R.normalize();
  return R;
}

OffsetRange OffsetRange::boolRange() {
  OffsetRange R;
  R.K = Kind::Number;
  R.HasLo = true;
  R.Lo = 0;
  R.HasHi = true;
  R.Hi = 1;
  R.normalize();
  return R;
}

OffsetRange OffsetRange::extRange(const OffsetRange &A, unsigned Bits,
                                  bool SignExtend) {
  if (A.K == Kind::Bottom)
    return bottom();
  if (Bits >= 64)
    return A;
  int64_t Lo = SignExtend ? -(int64_t(1) << (Bits - 1)) : 0;
  int64_t Hi = SignExtend ? (int64_t(1) << (Bits - 1)) - 1
                          : (int64_t(1) << Bits) - 1;
  // If the operand is a Number already inside the representable window the
  // extension is the identity.
  if (A.K == Kind::Number && A.HasLo && A.HasHi && A.Lo >= Lo && A.Hi <= Hi)
    return A;
  OffsetRange R;
  R.K = Kind::Number;
  R.HasLo = true;
  R.Lo = Lo;
  R.HasHi = true;
  R.Hi = Hi;
  R.normalize();
  return R;
}

bool OffsetRange::containsConcrete(int64_t BaseVal, int64_t V) const {
  if (K == Kind::Bottom)
    return false;
  int64_t Off;
  if (K == Kind::Param) {
    if (__builtin_sub_overflow(V, BaseVal, &Off))
      return false; // offset not representable; tests avoid this region
  } else {
    Off = V;
  }
  if (HasLo && Off < Lo)
    return false;
  if (HasHi && Off > Hi)
    return false;
  if (Mod == 0)
    return Off == Rem;
  if (Mod >= 2)
    return floorMod(Off, Mod) == Rem;
  return true;
}

std::string OffsetRange::str() const {
  if (K == Kind::Bottom)
    return "bottom";
  std::string S;
  if (K == Kind::Param)
    S += "param" + std::to_string(ParamIdx) + "+";
  S += HasLo ? "[" + std::to_string(Lo) : "(-inf";
  S += ",";
  S += HasHi ? std::to_string(Hi) + "]" : "+inf)";
  if (Mod == 0)
    S += " exact";
  else if (Mod >= 2)
    S += " mod " + std::to_string(Mod) + " rem " + std::to_string(Rem);
  return S;
}
