//===- analysis/LoopInfo.h - Natural loop detection --------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Natural loop discovery. The coalescing algorithm (paper Fig. 2) iterates
/// over "each loop in the current function"; this analysis provides that
/// iteration order (innermost loops first).
///
//===----------------------------------------------------------------------===//

#ifndef VPO_ANALYSIS_LOOPINFO_H
#define VPO_ANALYSIS_LOOPINFO_H

#include <memory>
#include <unordered_set>
#include <vector>

namespace vpo {

class BasicBlock;
class CFG;
class DominatorTree;

/// One natural loop: the header plus every block that can reach a latch
/// without passing through the header.
class Loop {
public:
  BasicBlock *header() const { return Header; }
  const std::vector<BasicBlock *> &latches() const { return Latches; }
  const std::vector<BasicBlock *> &blocks() const { return Blocks; }
  Loop *parent() const { return Parent; }

  bool contains(const BasicBlock *BB) const {
    return BlockSet.count(BB) != 0;
  }

  /// \returns the unique predecessor of the header outside the loop, or
  /// nullptr if there is none or more than one.
  BasicBlock *preheader(const CFG &G) const;

  /// \returns blocks outside the loop that have a predecessor inside.
  std::vector<BasicBlock *> exitBlocks(const CFG &G) const;

  /// True if no other loop is nested inside this one.
  bool isInnermost() const { return Innermost; }

  /// \returns the loop's only block if the loop body is a single block
  /// (header == latch), else nullptr. The paper's transformation operates
  /// on such loops — its Fig. 1 dot-product loop is one block.
  BasicBlock *singleBodyBlock() const {
    return Blocks.size() == 1 ? Header : nullptr;
  }

private:
  friend class LoopInfo;
  BasicBlock *Header = nullptr;
  std::vector<BasicBlock *> Latches;
  std::vector<BasicBlock *> Blocks; // header first
  std::unordered_set<const BasicBlock *> BlockSet;
  Loop *Parent = nullptr;
  bool Innermost = true;
};

/// All natural loops of a function.
class LoopInfo {
public:
  LoopInfo(const CFG &G, const DominatorTree &DT);

  /// Loops ordered innermost-first (safe order for transformation).
  const std::vector<std::unique_ptr<Loop>> &loops() const { return Loops; }

  /// \returns the innermost loop containing \p BB, or nullptr.
  Loop *loopFor(const BasicBlock *BB) const;

private:
  std::vector<std::unique_ptr<Loop>> Loops;
};

} // namespace vpo

#endif // VPO_ANALYSIS_LOOPINFO_H
