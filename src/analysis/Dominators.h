//===- analysis/Dominators.h - Dominator computation ------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Immediate-dominator computation (Cooper–Harvey–Kennedy iterative
/// algorithm over reverse post-order). Needed to find natural loops: a back
/// edge is an edge T -> H where H dominates T.
///
//===----------------------------------------------------------------------===//

#ifndef VPO_ANALYSIS_DOMINATORS_H
#define VPO_ANALYSIS_DOMINATORS_H

#include <unordered_map>

namespace vpo {

class BasicBlock;
class CFG;

class DominatorTree {
public:
  explicit DominatorTree(const CFG &G);

  /// \returns the immediate dominator of \p BB, or nullptr for the entry
  /// block and unreachable blocks.
  BasicBlock *idom(const BasicBlock *BB) const;

  /// \returns true if \p A dominates \p B (every block dominates itself).
  /// Unreachable blocks dominate nothing and are dominated by nothing.
  bool dominates(const BasicBlock *A, const BasicBlock *B) const;

private:
  const CFG &G;
  std::unordered_map<const BasicBlock *, BasicBlock *> IDom;
};

} // namespace vpo

#endif // VPO_ANALYSIS_DOMINATORS_H
