//===- analysis/LoopInfo.cpp ----------------------------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "analysis/LoopInfo.h"

#include "analysis/CFG.h"
#include "analysis/Dominators.h"
#include "ir/Function.h"

#include <algorithm>
#include <map>

using namespace vpo;

BasicBlock *Loop::preheader(const CFG &G) const {
  BasicBlock *Pre = nullptr;
  for (BasicBlock *P : G.predecessors(Header)) {
    if (contains(P))
      continue;
    if (Pre)
      return nullptr; // more than one outside predecessor
    Pre = P;
  }
  return Pre;
}

std::vector<BasicBlock *> Loop::exitBlocks(const CFG &G) const {
  std::vector<BasicBlock *> Exits;
  for (BasicBlock *BB : Blocks)
    for (BasicBlock *S : G.successors(BB))
      if (!contains(S) &&
          std::find(Exits.begin(), Exits.end(), S) == Exits.end())
        Exits.push_back(S);
  return Exits;
}

LoopInfo::LoopInfo(const CFG &G, const DominatorTree &DT) {
  // Collect back edges grouped by header, in layout order for determinism.
  std::map<int, std::pair<BasicBlock *, std::vector<BasicBlock *>>> ByHeader;
  const Function &F = G.function();
  for (const auto &BBPtr : F.blocks()) {
    BasicBlock *BB = BBPtr.get();
    if (G.isUnreachable(BB))
      continue;
    for (BasicBlock *S : BB->successors())
      if (DT.dominates(S, BB)) {
        int Idx = F.blockIndex(S);
        ByHeader[Idx].first = S;
        ByHeader[Idx].second.push_back(BB);
      }
  }

  for (auto &[Idx, HL] : ByHeader) {
    (void)Idx;
    auto L = std::make_unique<Loop>();
    L->Header = HL.first;
    L->Latches = HL.second;
    // Natural loop body: header + reverse reachability from latches
    // without passing through the header.
    L->BlockSet.insert(L->Header);
    L->Blocks.push_back(L->Header);
    std::vector<BasicBlock *> Work = L->Latches;
    for (BasicBlock *Latch : Work)
      if (L->BlockSet.insert(Latch).second)
        L->Blocks.push_back(Latch);
    while (!Work.empty()) {
      BasicBlock *BB = Work.back();
      Work.pop_back();
      if (BB == L->Header)
        continue;
      for (BasicBlock *P : G.predecessors(BB))
        if (!G.isUnreachable(P) && L->BlockSet.insert(P).second) {
          L->Blocks.push_back(P);
          Work.push_back(P);
        }
    }
    Loops.push_back(std::move(L));
  }

  // Establish nesting: parent = smallest strictly-containing loop.
  for (auto &Inner : Loops) {
    Loop *Best = nullptr;
    for (auto &Outer : Loops) {
      if (Outer.get() == Inner.get())
        continue;
      if (!Outer->contains(Inner->Header))
        continue;
      if (Outer->Blocks.size() <= Inner->Blocks.size())
        continue;
      if (!Best || Outer->Blocks.size() < Best->Blocks.size())
        Best = Outer.get();
    }
    Inner->Parent = Best;
    if (Best)
      Best->Innermost = false;
  }

  // Order innermost-first: sort by block count ascending (an inner loop is
  // always strictly smaller than any loop containing it).
  std::sort(Loops.begin(), Loops.end(), [](const auto &A, const auto &B) {
    return A->Blocks.size() < B->Blocks.size();
  });
}

Loop *LoopInfo::loopFor(const BasicBlock *BB) const {
  Loop *Best = nullptr;
  for (const auto &L : Loops)
    if (L->contains(BB) &&
        (!Best || L->blocks().size() < Best->blocks().size()))
      Best = L.get();
  return Best;
}
