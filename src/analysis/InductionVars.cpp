//===- analysis/InductionVars.cpp -----------------------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "analysis/InductionVars.h"

#include "analysis/LoopInfo.h"
#include "ir/Function.h"

using namespace vpo;

namespace {

/// Matches `R = R + imm` / `R = R - imm` (Add is matched commutatively).
/// \returns the signed step, or nullopt.
std::optional<int64_t> matchIncrement(const Instruction &I, Reg R) {
  if (!I.Dst.isValid() || I.Dst != R)
    return std::nullopt;
  if (I.Op == Opcode::Add) {
    if (I.A.isReg() && I.A.reg() == R && I.B.isImm())
      return I.B.imm();
    if (I.B.isReg() && I.B.reg() == R && I.A.isImm())
      return I.A.imm();
    return std::nullopt;
  }
  if (I.Op == Opcode::Sub) {
    if (I.A.isReg() && I.A.reg() == R && I.B.isImm())
      return -I.B.imm();
    return std::nullopt;
  }
  return std::nullopt;
}

} // namespace

LoopScalarInfo::LoopScalarInfo(const Loop &L, const Function &F) {
  (void)F;
  // Pass 1: count definitions of every register inside the loop.
  for (const BasicBlock *BB : L.blocks())
    for (const Instruction &I : BB->insts())
      if (auto D = I.def())
        ++DefCounts[D->Id];

  // The block in which IV increments must live: the single body block, or
  // the unique latch for multi-block loops (executed once per iteration).
  BasicBlock *IncBlock = L.singleBodyBlock();
  if (!IncBlock && L.latches().size() == 1)
    IncBlock = L.latches().front();

  // Pass 2: find IVs — registers whose every in-loop definition is a
  // constant increment in IncBlock.
  if (IncBlock) {
    std::unordered_map<unsigned, InductionVar> Candidates;
    std::unordered_map<unsigned, unsigned> IncCounts;
    for (size_t Idx = 0; Idx < IncBlock->size(); ++Idx) {
      const Instruction &I = IncBlock->insts()[Idx];
      auto D = I.def();
      if (!D)
        continue;
      auto Step = matchIncrement(I, *D);
      if (!Step)
        continue;
      InductionVar &IV = Candidates[D->Id];
      IV.R = *D;
      IV.StepPerIteration += *Step;
      IV.IncBlock = IncBlock;
      IV.IncIdxs.push_back(Idx);
      ++IncCounts[D->Id];
    }
    for (auto &[Id, IV] : Candidates) {
      // All loop definitions must be increments we saw.
      if (IncCounts[Id] != DefCounts[Id])
        continue;
      if (IV.StepPerIteration == 0)
        continue;
      IVs.push_back(IV);
    }
    // Deterministic order by register id.
    std::sort(IVs.begin(), IVs.end(),
              [](const InductionVar &A, const InductionVar &B) {
                return A.R.Id < B.R.Id;
              });
  }

  // Loop bound: the latch terminator in canonical compare form.
  if (L.latches().size() == 1) {
    const BasicBlock *Latch = L.latches().front();
    if (!Latch->empty()) {
      const Instruction &T = Latch->terminator();
      if (T.Op == Opcode::Br) {
        bool TrueContinues = T.TrueTarget == L.header();
        bool FalseContinues = T.FalseTarget == L.header();
        if (TrueContinues != FalseContinues) {
          CondCode CC = TrueContinues ? T.CC : invertCond(T.CC);
          // Normalize so the IV is the left operand.
          auto TryBound = [&](const Operand &Lhs, const Operand &Rhs,
                              CondCode Cond) -> std::optional<LoopBound> {
            if (!Lhs.isReg())
              return std::nullopt;
            const InductionVar *IV = ivFor(Lhs.reg());
            if (!IV)
              return std::nullopt;
            if (Rhs.isReg() && !isInvariant(Rhs.reg()))
              return std::nullopt;
            LoopBound B;
            B.IV = Lhs.reg();
            B.Limit = Rhs;
            B.ContinueCond = Cond;
            return B;
          };
          if (auto B = TryBound(T.A, T.B, CC))
            Bound = B;
          else if (auto B = TryBound(T.B, T.A, swapCond(CC)))
            Bound = B;
        }
      }
    }
  }
}

std::vector<std::unordered_map<unsigned, int64_t>>
vpo::accumulatedIVSteps(const BasicBlock &Body, const LoopScalarInfo &LSI) {
  std::vector<std::unordered_map<unsigned, int64_t>> Acc(Body.size());
  std::unordered_map<unsigned, int64_t> Running;
  for (size_t Idx = 0; Idx < Body.size(); ++Idx) {
    Acc[Idx] = Running;
    const Instruction &I = Body.insts()[Idx];
    auto D = I.def();
    if (!D)
      continue;
    const InductionVar *IV = LSI.ivFor(*D);
    if (!IV)
      continue;
    for (size_t IncIdx : IV->IncIdxs)
      if (IncIdx == Idx) {
        int64_t Step = 0;
        if (I.Op == Opcode::Add)
          Step = I.A.isImm() ? I.A.imm() : I.B.imm();
        else if (I.Op == Opcode::Sub)
          Step = -I.B.imm();
        Running[D->Id] += Step;
      }
  }
  return Acc;
}

bool vpo::isIVIncrement(const LoopScalarInfo &LSI, const BasicBlock &Body,
                        size_t Idx) {
  auto D = Body.insts()[Idx].def();
  if (!D)
    return false;
  const InductionVar *IV = LSI.ivFor(*D);
  if (!IV)
    return false;
  for (size_t I : IV->IncIdxs)
    if (I == Idx)
      return true;
  return false;
}

bool LoopScalarInfo::isInvariant(Reg R) const {
  return DefCounts.find(R.Id) == DefCounts.end();
}

unsigned LoopScalarInfo::defCount(Reg R) const {
  auto It = DefCounts.find(R.Id);
  return It == DefCounts.end() ? 0 : It->second;
}

const InductionVar *LoopScalarInfo::ivFor(Reg R) const {
  for (const InductionVar &IV : IVs)
    if (IV.R == R)
      return &IV;
  return nullptr;
}
