//===- analysis/OffsetPropagation.h - loop-pointer fixed point --*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Forward fixed-point propagation of OffsetRange values over a whole
/// function: every register at every block entry is bound to an abstract
/// `param + interval + congruence` value, with widening at back-edge
/// targets for termination. On top of the per-register facts sit the two
/// queries the coalescer needs:
///
///  - provablyDisjoint: two memory partitions whose pointers derive from
///    the *same* parameter never touch a common byte — either their
///    absolute offset intervals are separated (bounded cursor vs distant
///    block) or their footprints occupy disjoint residue classes modulo a
///    common stride (interleaved channels of one record stream). Such
///    pairs need no Fig. 5 preheader overlap check.
///
///  - provablyAligned: the wide address `base + StartOff` is a multiple of
///    the wide width on every iteration, from the base's offset congruence
///    at the loop header combined with the parameter's declared alignment
///    (or an absolute residue for Number-valued bases). Such runs need no
///    preheader alignment check.
///
/// Soundness caveat (documented in DESIGN.md): interval comparisons across
/// a loop bound assume pointer arithmetic over live objects does not wrap
/// the 64-bit address space, which the memory model guarantees (all
/// allocations live far from the top of the address space).
///
//===----------------------------------------------------------------------===//

#ifndef VPO_ANALYSIS_OFFSETPROPAGATION_H
#define VPO_ANALYSIS_OFFSETPROPAGATION_H

#include "analysis/OffsetRange.h"
#include "ir/Instruction.h"

#include <unordered_map>
#include <vector>

namespace vpo {

class BasicBlock;
class Function;
class Loop;
class LoopScalarInfo;
struct Partition;

/// Whole-function forward propagation of OffsetRange values.
class OffsetPropagation {
public:
  /// Abstract register file at one program point. Registers absent from
  /// the map are unconstrained (top).
  using State = std::unordered_map<unsigned, OffsetRange>;

  explicit OffsetPropagation(const Function &F);

  const Function &function() const { return F; }

  /// False if the fixed point did not stabilize within the iteration
  /// budget; all queries conservatively fail in that case.
  bool converged() const { return Converged; }

  struct Stats {
    unsigned Sweeps = 0;    ///< RPO passes until stabilization
    unsigned Widenings = 0; ///< header states that required widening
  };
  const Stats &stats() const { return S; }

  /// Abstract value of \p R on entry to \p BB (bottom if unreachable).
  OffsetRange valueAt(const BasicBlock *BB, Reg R) const;

  /// Abstract value of \p R after the last instruction of \p BB.
  OffsetRange valueAfter(const BasicBlock *BB, Reg R) const;

  /// Applies one instruction's transfer function to \p St in place.
  /// Exposed for the soundness test suite, which replays concrete
  /// executions against the abstract semantics one step at a time.
  static void applyInstruction(State &St, const Instruction &I);

private:
  const Function &F;
  bool Converged = false;
  Stats S;
  std::unordered_map<const BasicBlock *, State> InStates;
  std::unordered_map<const BasicBlock *, State> OutStates;
};

/// The byte footprint of one memory partition over the whole loop
/// execution, relative to one parameter.
struct PartitionFootprint {
  bool Valid = false;
  unsigned ParamIdx = 0;
  /// Congruence of the iteration-start pointer offset (0 = exact).
  uint64_t Mod = 1;
  int64_t Rem = 0;
  /// Interval of the iteration-start pointer offset across all
  /// iterations, after clamping against the loop bound.
  bool HasLo = false, HasHi = false;
  int64_t Lo = 0, Hi = 0;
  /// Constant (offset, width) of each reference relative to the
  /// iteration-start pointer, duplicates removed.
  std::vector<std::pair<int64_t, unsigned>> Refs;
  int64_t MinOff = 0;    ///< min over Refs of offset
  int64_t MaxOffEnd = 0; ///< max over Refs of offset + width
};

/// Builds the footprint of \p P for loop \p L. Invalid when the base
/// pointer does not resolve to `parameter + offset` at the loop header.
PartitionFootprint computePartitionFootprint(const OffsetPropagation &OP,
                                             const Loop &L,
                                             const LoopScalarInfo &LSI,
                                             const Partition &P);

/// True if no byte touched by \p A can be touched by \p B. On success
/// \p Why (when non-null) names the rule that fired: "interval" or
/// "residue-classes".
bool provablyDisjoint(const PartitionFootprint &A, const PartitionFootprint &B,
                      const char **Why = nullptr);

/// True if `Base + StartOff` is provably WideBytes-aligned on every
/// iteration of the loop headed by \p Header. \p WideBytes must be a
/// power of two.
bool provablyAligned(const OffsetPropagation &OP, const BasicBlock *Header,
                     Reg Base, int64_t StartOff, unsigned WideBytes);

} // namespace vpo

#endif // VPO_ANALYSIS_OFFSETPROPAGATION_H
