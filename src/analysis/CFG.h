//===- analysis/CFG.h - Control-flow graph utilities ------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Predecessor maps and orderings over the CFG implied by block terminators.
///
//===----------------------------------------------------------------------===//

#ifndef VPO_ANALYSIS_CFG_H
#define VPO_ANALYSIS_CFG_H

#include <unordered_map>
#include <vector>

namespace vpo {

class BasicBlock;
class Function;

/// Predecessor lists for every block of a function. Invalidated by any CFG
/// edit; recompute after transformation passes.
class CFG {
public:
  explicit CFG(const Function &F);

  const Function &function() const { return F; }

  const std::vector<BasicBlock *> &predecessors(const BasicBlock *BB) const;
  std::vector<BasicBlock *> successors(const BasicBlock *BB) const;

  /// Blocks in reverse post-order from the entry (unreachable blocks are
  /// appended at the end in layout order so analyses still see them).
  const std::vector<BasicBlock *> &reversePostOrder() const { return RPO; }

  /// \returns true if \p BB cannot be reached from the entry block.
  bool isUnreachable(const BasicBlock *BB) const;

private:
  const Function &F;
  std::unordered_map<const BasicBlock *, std::vector<BasicBlock *>> Preds;
  std::vector<BasicBlock *> RPO;
  std::unordered_map<const BasicBlock *, bool> Reachable;
};

} // namespace vpo

#endif // VPO_ANALYSIS_CFG_H
