//===- analysis/MemoryPartitions.h - Reference classification ----*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ClassifyMemoryReferencesIntoPartitions and CalculateRelativeOffsets from
/// the paper's Fig. 2 (lines 8–16): memory references in a loop are grouped
/// by a unique partition identifier — the (loop-invariant or induction-
/// variable) base register — and each reference gets a constant offset
/// relative to the induction variable's value at the top of the iteration.
/// "If a constant offset is not found, it is not safe to do memory
/// coalescing."
///
//===----------------------------------------------------------------------===//

#ifndef VPO_ANALYSIS_MEMORYPARTITIONS_H
#define VPO_ANALYSIS_MEMORYPARTITIONS_H

#include "ir/Instruction.h"

#include <vector>

namespace vpo {

class BasicBlock;
class Loop;
class LoopScalarInfo;

/// One classified memory reference inside the loop body block.
struct MemRef {
  size_t InstIdx = 0; ///< index within the loop's single body block
  bool IsLoad = false;
  bool IsStore = false;
  MemWidth W = MemWidth::W1;
  bool IsFloat = false;
  bool SignExtend = false;
  /// Byte offset of the referenced location relative to the partition's
  /// base register value at the *top of the iteration* (accounts for IV
  /// increments that execute before this reference).
  int64_t Offset = 0;
};

/// All references sharing one base register.
struct Partition {
  Reg Base;
  bool BaseIsIV = false;
  /// Signed bytes the base advances per iteration (0 for invariant bases).
  int64_t Step = 0;
  std::vector<MemRef> Refs; ///< in program order
};

/// Partitioning of every memory reference in a single-block loop.
///
/// Only single-body-block loops are fully supported: that is the shape the
/// paper's transformation targets (its hazard analysis requires all
/// coalesced references to share a basic block; see Fig. 4).
class MemoryPartitions {
public:
  MemoryPartitions(const Loop &L, const LoopScalarInfo &LSI);

  /// True if every memory reference was classified into a partition with a
  /// constant relative offset. When false, coalescing this loop is unsafe.
  bool allClassified() const { return AllClassified; }

  const std::vector<Partition> &partitions() const { return Parts; }

  /// \returns the index into partitions() owning the reference at
  /// \p InstIdx, or -1 if unclassified / not a memory reference.
  int partitionIdFor(size_t InstIdx) const;

  /// \returns the partition whose base register is \p R, or nullptr.
  const Partition *partitionForBase(Reg R) const;

private:
  std::vector<Partition> Parts;
  bool AllClassified = true;
};

} // namespace vpo

#endif // VPO_ANALYSIS_MEMORYPARTITIONS_H
