//===- analysis/OffsetRange.h - offset/stride abstract domain ---*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abstract domain behind the loop-pointer analysis (OffsetPropagation):
/// each 64-bit register value is approximated as
///
///     base + offset,   offset in [Lo, Hi],  offset == Rem (mod Mod)
///
/// where `base` is either nothing (a plain number) or one of the function's
/// parameters. The interval component bounds how far a pointer can stray
/// from its originating parameter; the congruence component captures stride
/// and alignment facts ("this cursor is always 8 bytes past a multiple of
/// 16 from x") that survive arbitrary unroll factors. Modeled on GPUCheck's
/// OffsetVal lattice and the *Iterating Pointers* affine-pointer domain.
///
/// Lattice structure, bottom to top:
///
///   Bottom  <  { Number with constraints }  |  { Param(i) + constraints }
///           <  Top (= Number, unbounded interval, no congruence)
///
/// Join weakens pointwise (interval hull, congruence gcd-join); joining
/// values relative to different bases forgets the base. widen() drops any
/// interval bound that grew, so header states stabilize in two visits per
/// bound while the congruence component descends a finite divisor chain.
///
/// Congruence encoding: Mod == 0 means the offset is *exactly* Rem (the
/// interval is pinned to [Rem, Rem] by normalization); Mod == 1 means no
/// congruence information; Mod >= 2 means offset == Rem (mod Mod) with
/// 0 <= Rem < Mod.
///
//===----------------------------------------------------------------------===//

#ifndef VPO_ANALYSIS_OFFSETRANGE_H
#define VPO_ANALYSIS_OFFSETRANGE_H

#include <cstdint>
#include <string>

namespace vpo {

/// floor-modulus: result in [0, M) for M >= 1 regardless of V's sign.
int64_t floorMod(int64_t V, uint64_t M);

class OffsetRange {
public:
  enum class Kind : uint8_t {
    Bottom, ///< unreachable: concretizes to nothing
    Number, ///< value = offset (no symbolic base)
    Param,  ///< value = parameter(ParamIdx) + offset
  };

  /// Defaults to top: any value at all.
  OffsetRange() = default;

  static OffsetRange bottom();
  /// Top: a Number with unbounded interval and no congruence.
  static OffsetRange unknown();
  /// The exact constant \p V.
  static OffsetRange number(int64_t V);
  /// Exactly parameter \p ParamIdx (offset 0).
  static OffsetRange param(unsigned ParamIdx);

  Kind kind() const { return K; }
  bool isBottom() const { return K == Kind::Bottom; }
  bool isNumber() const { return K == Kind::Number; }
  bool isParam() const { return K == Kind::Param; }
  /// True for the top element (Number, unbounded, congruence-free).
  bool isTop() const;

  unsigned paramIdx() const { return ParamIdx; }

  bool hasLo() const { return HasLo; }
  bool hasHi() const { return HasHi; }
  int64_t lo() const { return Lo; }
  int64_t hi() const { return Hi; }

  uint64_t mod() const { return Mod; }
  int64_t rem() const { return Rem; }

  /// If the offset is known exactly, returns true and sets \p V.
  bool isExact(int64_t &V) const;

  /// If the offset's residue modulo \p M (M >= 1) is known, returns true
  /// and sets \p R to it (in [0, M)).
  bool offsetCongruentTo(uint64_t M, int64_t &R) const;

  /// Least upper bound.
  static OffsetRange join(const OffsetRange &A, const OffsetRange &B);

  /// Widening: an upper bound of join(Old, New) that drops any interval
  /// bound which grew relative to \p Old, guaranteeing termination of
  /// ascending chains at loop headers.
  static OffsetRange widen(const OffsetRange &Old, const OffsetRange &New);

  /// Partial order: true if every concrete value of *this is a concrete
  /// value of \p O (syntactic sufficient check; exact on matching kinds).
  bool leq(const OffsetRange &O) const;

  bool operator==(const OffsetRange &O) const;
  bool operator!=(const OffsetRange &O) const { return !(*this == O); }

  // Transfer-function building blocks. All are sound over-approximations
  // of the corresponding 64-bit machine arithmetic; interval bounds that
  // would overflow are dropped rather than wrapped.
  static OffsetRange add(const OffsetRange &A, const OffsetRange &B);
  static OffsetRange sub(const OffsetRange &A, const OffsetRange &B);
  static OffsetRange mulConst(const OffsetRange &A, int64_t C);
  static OffsetRange shlConst(const OffsetRange &A, int64_t Sh);
  static OffsetRange andMask(const OffsetRange &A, int64_t Mask);
  /// The result range of CmpSet: {0, 1}.
  static OffsetRange boolRange();
  /// The result range of Ext with \p Bits value bits, sign- or zero-extended.
  static OffsetRange extRange(const OffsetRange &A, unsigned Bits,
                              bool SignExtend);

  /// Concretization membership test (the property-test oracle): with the
  /// base parameter bound to \p BaseVal (ignored for Number kind), is the
  /// concrete value \p V inside this abstract value?
  bool containsConcrete(int64_t BaseVal, int64_t V) const;

  /// Rendering like "param3+[0,+inf) mod 16 rem 8" for test failures and
  /// remark arguments.
  std::string str() const;

private:
  void normalize();

  Kind K = Kind::Number;
  unsigned ParamIdx = 0;
  bool HasLo = false, HasHi = false;
  int64_t Lo = 0, Hi = 0;
  uint64_t Mod = 1; ///< 0 = exact, 1 = unknown, >= 2 = congruence modulus
  int64_t Rem = 0;
};

} // namespace vpo

#endif // VPO_ANALYSIS_OFFSETRANGE_H
