//===- analysis/InductionVars.h - IVs and loop bounds ------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// FindInductionVars from the paper's Fig. 2: identifies registers updated
/// only by constant increments inside a loop, which register is loop
/// invariant, and the loop's termination condition. This information feeds
/// both the unroller (trip-count math, remainder loop) and the coalescer
/// (relative offsets of memory references from the induction variable).
///
//===----------------------------------------------------------------------===//

#ifndef VPO_ANALYSIS_INDUCTIONVARS_H
#define VPO_ANALYSIS_INDUCTIONVARS_H

#include "ir/Instruction.h"

#include <optional>
#include <unordered_map>
#include <vector>

namespace vpo {

class BasicBlock;
class Loop;
class Function;

/// A basic induction variable: inside the loop, register R is defined only
/// by `R = R + c_k` / `R = R - c_k` instructions, all in the loop's single
/// body block (or unique latch for multi-block loops).
struct InductionVar {
  Reg R;
  /// Net signed change to R per iteration (sum of all increments).
  int64_t StepPerIteration = 0;
  /// Block holding the increments.
  BasicBlock *IncBlock = nullptr;
  /// Instruction indices of the increments within IncBlock, ascending.
  std::vector<size_t> IncIdxs;
};

/// The loop-continuation condition, normalized so the IV is on the left:
/// the loop continues while `IV ContinueCond Limit` holds.
struct LoopBound {
  Reg IV;
  Operand Limit; ///< loop-invariant register or immediate
  CondCode ContinueCond = CondCode::LTs;
};

/// Scalar (register-level) facts about one loop.
class LoopScalarInfo {
public:
  LoopScalarInfo(const Loop &L, const Function &F);

  /// \returns true if \p R is never defined inside the loop.
  bool isInvariant(Reg R) const;

  /// \returns true if \p O is an immediate or an invariant register.
  bool isInvariant(const Operand &O) const {
    return !O.isReg() || isInvariant(O.reg());
  }

  /// Number of instructions in the loop that define \p R.
  unsigned defCount(Reg R) const;

  const std::vector<InductionVar> &inductionVars() const { return IVs; }

  /// \returns the induction variable record for \p R, or nullptr.
  const InductionVar *ivFor(Reg R) const;

  /// The loop-continuation condition derived from the latch terminator,
  /// if it has the canonical `br cc IV, Limit` shape.
  const std::optional<LoopBound> &bound() const { return Bound; }

private:
  std::unordered_map<unsigned, unsigned> DefCounts; // Reg::Id -> count
  std::vector<InductionVar> IVs;
  std::optional<LoopBound> Bound;
};

/// For each instruction index of \p Body, the sum of IV increments already
/// executed *before* that instruction, per IV register id. A memory
/// reference at index Idx with displacement D addresses
/// `iteration-start base + D + result[Idx][base]`.
std::vector<std::unordered_map<unsigned, int64_t>>
accumulatedIVSteps(const BasicBlock &Body, const LoopScalarInfo &LSI);

/// \returns true if instruction \p Idx of \p Body is one of the recorded
/// increments of an induction variable.
bool isIVIncrement(const LoopScalarInfo &LSI, const BasicBlock &Body,
                   size_t Idx);

} // namespace vpo

#endif // VPO_ANALYSIS_INDUCTIONVARS_H
