//===- analysis/Liveness.h - Live-variable dataflow --------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classic backward live-variable analysis over virtual registers. Used by
/// dead-code elimination and by the unroller (a register live out of a loop
/// must keep its final value across the rewrite).
///
//===----------------------------------------------------------------------===//

#ifndef VPO_ANALYSIS_LIVENESS_H
#define VPO_ANALYSIS_LIVENESS_H

#include "ir/Instruction.h"

#include <unordered_map>
#include <vector>

namespace vpo {

class BasicBlock;
class CFG;

class Liveness {
public:
  explicit Liveness(const CFG &G);

  /// \returns true if \p R is live on entry to \p BB.
  bool liveIn(const BasicBlock *BB, Reg R) const;

  /// \returns true if \p R is live on exit from \p BB.
  bool liveOut(const BasicBlock *BB, Reg R) const;

  /// \returns true if \p R is live immediately *after* instruction
  /// \p InstIdx of \p BB (computed by walking backward from the block end).
  bool liveAfter(const BasicBlock *BB, size_t InstIdx, Reg R) const;

private:
  using RegSet = std::vector<bool>; // indexed by Reg::Id

  const CFG &G;
  unsigned NumRegs;
  std::unordered_map<const BasicBlock *, RegSet> LiveInSets;
  std::unordered_map<const BasicBlock *, RegSet> LiveOutSets;
};

} // namespace vpo

#endif // VPO_ANALYSIS_LIVENESS_H
