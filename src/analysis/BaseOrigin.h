//===- analysis/BaseOrigin.h - trace pointers to parameters ------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Kernels rarely use parameter registers directly as reference bases:
/// they derive row pointers and offset cursors (`pM = img + W`,
/// `pX = x + 4`). The alias and alignment facts attached to the
/// parameters (`restrict`, known alignment) are only usable if a derived
/// base can be traced back to its originating parameter.
///
/// traceBaseOrigin follows definition chains of Mov/Add/Sub from a
/// register to a parameter, accumulating a constant byte offset when the
/// chain is built from immediates. Induction variables are handled by
/// ignoring their self-updates (`R = R op X` moves the pointer within the
/// same object): the traced origin describes the register's *initial*
/// value, which is exactly what alignment reasoning wants when combined
/// with the step-preserves-alignment check. A chain step adding two
/// registers is resolved only when exactly one side reaches a parameter
/// that carries declared facts (the other side is then a scalar index):
/// the offset becomes unknown but the identity survives.
///
//===----------------------------------------------------------------------===//

#ifndef VPO_ANALYSIS_BASEORIGIN_H
#define VPO_ANALYSIS_BASEORIGIN_H

#include "ir/Instruction.h"

namespace vpo {

class Function;

struct BaseOrigin {
  /// The parameter register the base derives from; invalid if the chain
  /// could not be traced.
  Reg Param;
  /// True when Offset below is the exact byte displacement from Param.
  bool ExactOffset = false;
  int64_t Offset = 0;

  bool traced() const { return Param.isValid(); }
};

/// Traces \p R to a parameter of \p F. Conservative: returns an
/// untraced origin on any ambiguity (multiple definitions, loads,
/// register-register arithmetic without a distinguished pointer side).
BaseOrigin traceBaseOrigin(const Function &F, Reg R);

/// Convenience: the NoAlias fact of the traced parameter (false when
/// untraceable).
bool baseIsNoAlias(const Function &F, Reg R);

/// Convenience: the provable alignment of the value in \p R (1 = none):
/// the parameter's declared alignment reduced by the chain's constant
/// displacement.
uint64_t baseKnownAlignment(const Function &F, Reg R);

} // namespace vpo

#endif // VPO_ANALYSIS_BASEORIGIN_H
