//===- analysis/OffsetPropagation.cpp - loop-pointer fixed point *- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "analysis/OffsetPropagation.h"

#include "analysis/CFG.h"
#include "analysis/InductionVars.h"
#include "analysis/LoopInfo.h"
#include "analysis/MemoryPartitions.h"
#include "ir/Function.h"

#include <algorithm>
#include <numeric>

using namespace vpo;

namespace {

/// Every sweep visits every block once; widening bounds the number of
/// productive sweeps by the lattice height, so this cap is a backstop for
/// pathological inputs, not a tuning knob.
constexpr unsigned MaxSweeps = 48;

/// Footprints with more distinct references than this give up rather than
/// risk quadratic residue checks (an unrolled body stays well under it).
constexpr size_t MaxFootprintRefs = 128;

OffsetRange evalOperand(const OffsetPropagation::State &St, const Operand &O) {
  if (O.isImm())
    return OffsetRange::number(O.imm());
  if (!O.isReg())
    return OffsetRange::unknown();
  auto It = St.find(O.reg().Id);
  return It == St.end() ? OffsetRange::unknown() : It->second;
}

void setReg(OffsetPropagation::State &St, Reg R, const OffsetRange &V) {
  if (V.isTop())
    St.erase(R.Id); // absent = top keeps states canonical and small
  else
    St[R.Id] = V;
}

/// Pointwise state join. Registers present in only one side join with top
/// and disappear.
OffsetPropagation::State joinStates(const OffsetPropagation::State &A,
                                    const OffsetPropagation::State &B) {
  OffsetPropagation::State R;
  for (const auto &[Id, VA] : A) {
    auto It = B.find(Id);
    if (It == B.end())
      continue;
    OffsetRange J = OffsetRange::join(VA, It->second);
    if (!J.isTop())
      R.emplace(Id, J);
  }
  return R;
}

/// Pointwise widening of \p NewIn against the previous header state.
OffsetPropagation::State widenStates(const OffsetPropagation::State &Old,
                                     const OffsetPropagation::State &NewIn,
                                     bool &Widened) {
  OffsetPropagation::State R;
  for (const auto &[Id, VN] : NewIn) {
    auto It = Old.find(Id);
    if (It == Old.end())
      continue; // was already top
    OffsetRange W = OffsetRange::widen(It->second, VN);
    if (W != VN)
      Widened = true;
    if (!W.isTop())
      R.emplace(Id, W);
  }
  if (R.size() != NewIn.size())
    Widened = true;
  return R;
}

bool statesEqual(const OffsetPropagation::State &A,
                 const OffsetPropagation::State &B) {
  if (A.size() != B.size())
    return false;
  for (const auto &[Id, VA] : A) {
    auto It = B.find(Id);
    if (It == B.end() || !(VA == It->second))
      return false;
  }
  return true;
}

} // namespace

void OffsetPropagation::applyInstruction(State &St, const Instruction &I) {
  auto Def = I.def();
  if (!Def)
    return; // stores and control flow bind no register
  OffsetRange V = OffsetRange::unknown();
  switch (I.Op) {
  case Opcode::Mov:
    V = evalOperand(St, I.A);
    break;
  case Opcode::Add:
    V = OffsetRange::add(evalOperand(St, I.A), evalOperand(St, I.B));
    break;
  case Opcode::Sub:
    V = OffsetRange::sub(evalOperand(St, I.A), evalOperand(St, I.B));
    break;
  case Opcode::Mul: {
    int64_t C;
    if (evalOperand(St, I.B).isExact(C))
      V = OffsetRange::mulConst(evalOperand(St, I.A), C);
    else if (evalOperand(St, I.A).isExact(C))
      V = OffsetRange::mulConst(evalOperand(St, I.B), C);
    break;
  }
  case Opcode::Shl: {
    int64_t C;
    if (evalOperand(St, I.B).isExact(C))
      V = OffsetRange::shlConst(evalOperand(St, I.A), C);
    break;
  }
  case Opcode::And: {
    int64_t C;
    if (evalOperand(St, I.B).isExact(C))
      V = OffsetRange::andMask(evalOperand(St, I.A), C);
    else if (evalOperand(St, I.A).isExact(C))
      V = OffsetRange::andMask(evalOperand(St, I.B), C);
    break;
  }
  case Opcode::CmpSet:
    V = OffsetRange::boolRange();
    break;
  case Opcode::Select:
    V = OffsetRange::join(evalOperand(St, I.B), evalOperand(St, I.C));
    break;
  case Opcode::Ext:
    V = OffsetRange::extRange(evalOperand(St, I.A), widthBits(I.W),
                              I.SignExtend);
    break;
  default:
    // Loads, divisions, FP, field manipulation: no offset tracking.
    break;
  }
  setReg(St, *Def, V);
}

OffsetPropagation::OffsetPropagation(const Function &Fn) : F(Fn) {
  CFG G(F);
  const std::vector<BasicBlock *> &RPO = G.reversePostOrder();
  std::unordered_map<const BasicBlock *, size_t> RPOIdx;
  for (size_t I = 0; I < RPO.size(); ++I)
    RPOIdx[RPO[I]] = I;

  // Widening points: targets of back edges w.r.t. the RPO numbering
  // (covers all natural-loop headers, plus any irreducible entries).
  std::unordered_map<const BasicBlock *, bool> WidenPoint;
  for (BasicBlock *BB : RPO)
    for (BasicBlock *P : G.predecessors(BB))
      if (RPOIdx[P] >= RPOIdx[BB])
        WidenPoint[BB] = true;

  State Entry;
  const std::vector<Reg> &Params = F.params();
  for (size_t I = 0; I < Params.size(); ++I)
    Entry[Params[I].Id] = OffsetRange::param(static_cast<unsigned>(I));

  const BasicBlock *EntryBB = F.blocks().empty() ? nullptr : F.entry();
  if (!EntryBB) {
    Converged = true;
    return;
  }

  auto Transfer = [](const State &In, const BasicBlock *BB) {
    State Out = In;
    for (const Instruction &I : BB->insts())
      applyInstruction(Out, I);
    return Out;
  };

  InStates[EntryBB] = Entry;
  OutStates[EntryBB] = Transfer(Entry, EntryBB);

  for (unsigned Sweep = 0; Sweep < MaxSweeps; ++Sweep) {
    ++S.Sweeps;
    bool Changed = false;
    for (BasicBlock *BB : RPO) {
      State In;
      bool AnyPred = false;
      if (BB == EntryBB) {
        In = Entry;
        AnyPred = true;
      }
      for (BasicBlock *P : G.predecessors(BB)) {
        auto It = OutStates.find(P);
        if (It == OutStates.end())
          continue; // predecessor not yet reached: bottom contributes nothing
        In = AnyPred ? joinStates(In, It->second) : It->second;
        AnyPred = true;
      }
      if (!AnyPred)
        continue; // unreachable block: stays bottom
      auto OldIt = InStates.find(BB);
      if (OldIt != InStates.end()) {
        if (WidenPoint[BB]) {
          bool Widened = false;
          In = widenStates(OldIt->second, In, Widened);
          if (Widened)
            ++S.Widenings;
        }
        if (statesEqual(OldIt->second, In))
          continue;
      }
      InStates[BB] = In;
      OutStates[BB] = Transfer(In, BB);
      Changed = true;
    }
    if (!Changed) {
      Converged = true;
      break;
    }
  }
}

OffsetRange OffsetPropagation::valueAt(const BasicBlock *BB, Reg R) const {
  if (!Converged)
    return OffsetRange::unknown();
  auto It = InStates.find(BB);
  if (It == InStates.end())
    return OffsetRange::bottom(); // unreachable
  auto VIt = It->second.find(R.Id);
  return VIt == It->second.end() ? OffsetRange::unknown() : VIt->second;
}

OffsetRange OffsetPropagation::valueAfter(const BasicBlock *BB, Reg R) const {
  if (!Converged)
    return OffsetRange::unknown();
  auto It = OutStates.find(BB);
  if (It == OutStates.end())
    return OffsetRange::bottom();
  auto VIt = It->second.find(R.Id);
  return VIt == It->second.end() ? OffsetRange::unknown() : VIt->second;
}

PartitionFootprint vpo::computePartitionFootprint(const OffsetPropagation &OP,
                                                  const Loop &L,
                                                  const LoopScalarInfo &LSI,
                                                  const Partition &P) {
  PartitionFootprint FP;
  OffsetRange V = OP.valueAt(L.header(), P.Base);
  if (!V.isParam() || P.Refs.empty())
    return FP;
  FP.ParamIdx = V.paramIdx();
  FP.Mod = V.mod();
  FP.Rem = V.rem();
  FP.HasLo = V.hasLo();
  FP.Lo = V.lo();
  FP.HasHi = V.hasHi();
  FP.Hi = V.hi();

  // Bound clamp: when this partition's base is the loop-bound IV, the
  // continuation condition caps the iteration-start offset against the
  // limit's offset from the same parameter. (No-wrap assumption: see the
  // header comment.)
  if (const std::optional<LoopBound> &B = LSI.bound();
      B && B->IV == P.Base) {
    OffsetRange LV = B->Limit.isImm()
                         ? OffsetRange::number(B->Limit.imm())
                         : OP.valueAt(L.header(), B->Limit.reg());
    if (LV.isParam() && LV.paramIdx() == FP.ParamIdx) {
      auto ClampHi = [&](int64_t NewHi) {
        FP.Hi = FP.HasHi ? std::min(FP.Hi, NewHi) : NewHi;
        FP.HasHi = true;
      };
      auto ClampLo = [&](int64_t NewLo) {
        FP.Lo = FP.HasLo ? std::max(FP.Lo, NewLo) : NewLo;
        FP.HasLo = true;
      };
      int64_t Adj;
      switch (B->ContinueCond) {
      case CondCode::LTu:
      case CondCode::LTs:
        if (LV.hasHi() && !__builtin_sub_overflow(LV.hi(), int64_t(1), &Adj))
          ClampHi(Adj);
        break;
      case CondCode::LEu:
      case CondCode::LEs:
        if (LV.hasHi())
          ClampHi(LV.hi());
        break;
      case CondCode::GTu:
      case CondCode::GTs:
        if (LV.hasLo() && !__builtin_add_overflow(LV.lo(), int64_t(1), &Adj))
          ClampLo(Adj);
        break;
      case CondCode::GEu:
      case CondCode::GEs:
        if (LV.hasLo())
          ClampLo(LV.lo());
        break;
      default:
        break;
      }
    }
  }

  for (const MemRef &R : P.Refs) {
    std::pair<int64_t, unsigned> E{R.Offset, widthBytes(R.W)};
    if (std::find(FP.Refs.begin(), FP.Refs.end(), E) == FP.Refs.end())
      FP.Refs.push_back(E);
  }
  if (FP.Refs.size() > MaxFootprintRefs)
    return FP; // Valid stays false: give up rather than scan quadratically
  FP.MinOff = FP.Refs.front().first;
  FP.MaxOffEnd = FP.Refs.front().first;
  for (const auto &[Off, W] : FP.Refs) {
    FP.MinOff = std::min(FP.MinOff, Off);
    int64_t End;
    if (__builtin_add_overflow(Off, static_cast<int64_t>(W), &End))
      return FP;
    FP.MaxOffEnd = std::max(FP.MaxOffEnd, End);
  }
  FP.Valid = true;
  return FP;
}

namespace {

/// [SA, SA+LA) and [SB, SB+LB) disjoint on the circle of size M.
bool wrappedDisjoint(uint64_t M, int64_t SA, uint64_t LA, int64_t SB,
                     uint64_t LB) {
  return static_cast<uint64_t>(floorMod(SB - SA, M)) >= LA &&
         static_cast<uint64_t>(floorMod(SA - SB, M)) >= LB;
}

} // namespace

bool vpo::provablyDisjoint(const PartitionFootprint &A,
                           const PartitionFootprint &B, const char **Why) {
  if (!A.Valid || !B.Valid || A.ParamIdx != B.ParamIdx)
    return false;

  // Interval rule: the two absolute touched spans never meet.
  int64_t AHiEnd = 0, BLoStart = 0, BHiEnd = 0, ALoStart = 0;
  bool AHiOk = A.HasHi && !__builtin_add_overflow(A.Hi, A.MaxOffEnd, &AHiEnd);
  bool ALoOk = A.HasLo && !__builtin_add_overflow(A.Lo, A.MinOff, &ALoStart);
  bool BHiOk = B.HasHi && !__builtin_add_overflow(B.Hi, B.MaxOffEnd, &BHiEnd);
  bool BLoOk = B.HasLo && !__builtin_add_overflow(B.Lo, B.MinOff, &BLoStart);
  if ((AHiOk && BLoOk && AHiEnd <= BLoStart) ||
      (BHiOk && ALoOk && BHiEnd <= ALoStart)) {
    if (Why)
      *Why = "interval";
    return true;
  }

  // Residue rule: both footprints are periodic modulo a common stride and
  // occupy disjoint residue classes on that circle.
  if (A.Mod == 0 && B.Mod == 0) {
    // Both pointers are loop-invariant with exact offsets: compare the
    // finite byte sets directly.
    for (const auto &[OffA, WA] : A.Refs)
      for (const auto &[OffB, WB] : B.Refs) {
        int64_t SA = A.Rem + OffA, SB = B.Rem + OffB;
        if (SA < SB + static_cast<int64_t>(WB) &&
            SB < SA + static_cast<int64_t>(WA))
          return false;
      }
    if (Why)
      *Why = "interval";
    return true;
  }
  uint64_t M = A.Mod == 0 ? B.Mod : (B.Mod == 0 ? A.Mod : std::gcd(A.Mod, B.Mod));
  if (M <= 1)
    return false;
  for (const auto &[OffA, WA] : A.Refs) {
    if (WA >= M)
      return false; // one reference covers the whole circle
    for (const auto &[OffB, WB] : B.Refs) {
      if (WB >= M)
        return false;
      int64_t SA = floorMod(A.Rem + OffA, M);
      int64_t SB = floorMod(B.Rem + OffB, M);
      if (!wrappedDisjoint(M, SA, WA, SB, WB))
        return false;
    }
  }
  if (Why)
    *Why = "residue-classes";
  return true;
}

bool vpo::provablyAligned(const OffsetPropagation &OP, const BasicBlock *Header,
                          Reg Base, int64_t StartOff, unsigned WideBytes) {
  if (WideBytes == 0)
    return false;
  OffsetRange V = OP.valueAt(Header, Base);
  int64_t R;
  if (!V.offsetCongruentTo(WideBytes, R))
    return false;
  bool OffsetAligned = floorMod(R + StartOff, WideBytes) == 0;
  if (!OffsetAligned)
    return false;
  if (V.isNumber())
    return true; // absolute address residue known
  if (!V.isParam())
    return false;
  const Function &F = OP.function();
  if (V.paramIdx() >= F.params().size())
    return false;
  uint64_t Align = F.paramInfoFor(F.params()[V.paramIdx()]).KnownAlign;
  return Align != 0 && Align % WideBytes == 0;
}
