//===- analysis/CFG.cpp ---------------------------------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "analysis/CFG.h"

#include "ir/Function.h"

#include <algorithm>
#include <unordered_set>

using namespace vpo;

CFG::CFG(const Function &F) : F(F) {
  // Ensure every block has an entry in the predecessor map.
  for (const auto &BB : F.blocks())
    Preds[BB.get()];

  for (const auto &BB : F.blocks())
    for (BasicBlock *Succ : BB->successors())
      Preds[Succ].push_back(BB.get());

  // Deduplicate (a conditional branch with identical arms yields one edge,
  // but defensive duplicates from rewrites are merged here).
  for (auto &[BB, List] : Preds) {
    (void)BB;
    std::sort(List.begin(), List.end());
    List.erase(std::unique(List.begin(), List.end()), List.end());
  }

  // Iterative DFS post-order, then reverse.
  if (!F.blocks().empty()) {
    std::unordered_set<const BasicBlock *> Visited;
    std::vector<std::pair<BasicBlock *, size_t>> Stack;
    std::vector<BasicBlock *> PostOrder;
    BasicBlock *Entry = F.entry();
    Stack.push_back({Entry, 0});
    Visited.insert(Entry);
    while (!Stack.empty()) {
      auto &[BB, NextSucc] = Stack.back();
      std::vector<BasicBlock *> Succs = BB->successors();
      if (NextSucc < Succs.size()) {
        BasicBlock *S = Succs[NextSucc++];
        if (Visited.insert(S).second)
          Stack.push_back({S, 0});
        continue;
      }
      PostOrder.push_back(BB);
      Stack.pop_back();
    }
    RPO.assign(PostOrder.rbegin(), PostOrder.rend());
    for (const auto &BB : F.blocks()) {
      Reachable[BB.get()] = Visited.count(BB.get()) != 0;
      if (!Visited.count(BB.get()))
        RPO.push_back(BB.get());
    }
  }
}

const std::vector<BasicBlock *> &
CFG::predecessors(const BasicBlock *BB) const {
  auto It = Preds.find(BB);
  assert(It != Preds.end() && "block not in CFG");
  return It->second;
}

std::vector<BasicBlock *> CFG::successors(const BasicBlock *BB) const {
  return BB->successors();
}

bool CFG::isUnreachable(const BasicBlock *BB) const {
  auto It = Reachable.find(BB);
  return It == Reachable.end() || !It->second;
}
