//===- analysis/Liveness.cpp ----------------------------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "analysis/Liveness.h"

#include "analysis/CFG.h"
#include "ir/Function.h"

using namespace vpo;

Liveness::Liveness(const CFG &G) : G(G) {
  const Function &F = G.function();
  NumRegs = F.regUpperBound();

  // Per-block Use (read before any write) and Def sets.
  std::unordered_map<const BasicBlock *, RegSet> UseSets, DefSets;
  std::vector<Reg> Tmp;
  for (const auto &BBPtr : F.blocks()) {
    const BasicBlock *BB = BBPtr.get();
    RegSet Use(NumRegs, false), Def(NumRegs, false);
    for (const Instruction &I : BB->insts()) {
      Tmp.clear();
      I.collectUses(Tmp);
      for (Reg R : Tmp)
        if (!Def[R.Id])
          Use[R.Id] = true;
      if (auto D = I.def())
        Def[D->Id] = true;
    }
    UseSets[BB] = std::move(Use);
    DefSets[BB] = std::move(Def);
    LiveInSets[BB] = RegSet(NumRegs, false);
    LiveOutSets[BB] = RegSet(NumRegs, false);
  }

  // Iterate to fixpoint (backward). Post-order = reverse of RPO gives fast
  // convergence.
  bool Changed = true;
  const auto &RPO = G.reversePostOrder();
  while (Changed) {
    Changed = false;
    for (auto It = RPO.rbegin(); It != RPO.rend(); ++It) {
      const BasicBlock *BB = *It;
      RegSet &Out = LiveOutSets[BB];
      for (const BasicBlock *S : BB->successors()) {
        const RegSet &SIn = LiveInSets[S];
        for (unsigned R = 0; R < NumRegs; ++R)
          if (SIn[R] && !Out[R]) {
            Out[R] = true;
            Changed = true;
          }
      }
      RegSet &In = LiveInSets[BB];
      const RegSet &Use = UseSets[BB];
      const RegSet &Def = DefSets[BB];
      for (unsigned R = 0; R < NumRegs; ++R) {
        bool NewIn = Use[R] || (Out[R] && !Def[R]);
        if (NewIn && !In[R]) {
          In[R] = true;
          Changed = true;
        }
      }
    }
  }
}

bool Liveness::liveIn(const BasicBlock *BB, Reg R) const {
  auto It = LiveInSets.find(BB);
  return It != LiveInSets.end() && R.Id < NumRegs && It->second[R.Id];
}

bool Liveness::liveOut(const BasicBlock *BB, Reg R) const {
  auto It = LiveOutSets.find(BB);
  return It != LiveOutSets.end() && R.Id < NumRegs && It->second[R.Id];
}

bool Liveness::liveAfter(const BasicBlock *BB, size_t InstIdx, Reg R) const {
  assert(InstIdx < BB->size() && "instruction index out of range");
  // Walk backward from the end of the block to just after InstIdx.
  RegSet Live = LiveOutSets.at(BB);
  std::vector<Reg> Tmp;
  const auto &Insts = BB->insts();
  for (size_t I = Insts.size(); I-- > InstIdx + 1;) {
    const Instruction &Inst = Insts[I];
    if (auto D = Inst.def())
      Live[D->Id] = false;
    Tmp.clear();
    Inst.collectUses(Tmp);
    for (Reg U : Tmp)
      Live[U.Id] = true;
  }
  return R.Id < NumRegs && Live[R.Id];
}
