//===- transform/ScalarReplace.h - subscripted-variable reuse ---*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Scalar replacement of subscripted variables [Cal90, Dues93], the
/// "register blocking" of the paper's section 1.1: when a loop loads
/// a[i], a[i+1], …, a[i+k] each iteration, the values loaded for the
/// higher offsets are exactly the values the lower offsets will need on
/// the next iteration. Carrying them in registers leaves one real load
/// per iteration per stream.
///
/// The canonical customer is the convolution kernel: each output pixel
/// loads three neighbouring pixels per row, two of which were loaded by
/// the previous iteration — scalar replacement cuts its nine loads per
/// pixel to three.
///
/// Mechanics for a consecutive offset chain o_0 < o_1 < … < o_{n-1}
/// (spacing = the induction step s, all loads, same width):
///
///   * guarded preheader: C_i = load [base + o_i] for i < n-1 (the first
///     iteration's values);
///   * body: the load at o_i (i < n-1) becomes `dst_i = mov C_i`; only
///     the load at o_{n-1} remains a memory reference;
///   * before the terminator: C_i = mov dst_{i+1} (rotate the window).
///
/// Safety mirrors the recurrence pass: no store in the loop may be able
/// to write the carried locations (same-partition overlap checked by
/// offset; cross-partition stores need a NoAlias base). Loads must all
/// precede the rotation point and each destination register must have a
/// single definition in the body.
///
//===----------------------------------------------------------------------===//

#ifndef VPO_TRANSFORM_SCALARREPLACE_H
#define VPO_TRANSFORM_SCALARREPLACE_H

namespace vpo {

class Function;

struct ScalarReplaceStats {
  unsigned LoopsExamined = 0;
  unsigned ChainsReplaced = 0;
  unsigned LoadsRemoved = 0;
};

/// Applies scalar replacement to every innermost single-block loop.
ScalarReplaceStats replaceSubscriptedScalars(Function &F);

} // namespace vpo

#endif // VPO_TRANSFORM_SCALARREPLACE_H
