//===- transform/Recurrence.cpp -------------------------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "transform/Recurrence.h"

#include "analysis/BaseOrigin.h"
#include "analysis/CFG.h"
#include "analysis/Dominators.h"
#include "analysis/InductionVars.h"
#include "analysis/LoopInfo.h"
#include "analysis/MemoryPartitions.h"
#include "ir/Function.h"
#include "ir/Verifier.h"

#include <unordered_set>

using namespace vpo;

namespace {

class RecurrencePass {
public:
  explicit RecurrencePass(Function &F) : F(F) {}

  RecurrenceStats run() {
    while (true) {
      CFG G(F);
      DominatorTree DT(G);
      LoopInfo LI(G, DT);
      Loop *Candidate = nullptr;
      for (const auto &L : LI.loops()) {
        if (!L->isInnermost() || !L->singleBodyBlock())
          continue;
        if (Done.count(L->singleBodyBlock()))
          continue;
        Candidate = L.get();
        break;
      }
      if (!Candidate)
        break;
      processLoop(*Candidate, G);
    }
    return Stats;
  }

private:
  Function &F;
  RecurrenceStats Stats;
  std::unordered_set<const BasicBlock *> Done;

  void processLoop(Loop &L, CFG &G) {
    BasicBlock *Body = L.singleBodyBlock();
    Done.insert(Body);
    ++Stats.LoopsExamined;

    BasicBlock *Preheader = L.preheader(G);
    if (!Preheader)
      return;
    LoopScalarInfo LSI(L, F);
    MemoryPartitions MP(L, LSI);
    if (!MP.allClassified())
      return;

    // Find a candidate (load, store) pair.
    for (size_t PI = 0; PI < MP.partitions().size(); ++PI) {
      const Partition &P = MP.partitions()[PI];
      if (!P.BaseIsIV || P.Step == 0)
        continue;
      for (size_t LR = 0; LR < P.Refs.size(); ++LR) {
        const MemRef &LRef = P.Refs[LR];
        if (!LRef.IsLoad)
          continue;
        for (size_t SR = 0; SR < P.Refs.size(); ++SR) {
          const MemRef &SRef = P.Refs[SR];
          if (!SRef.IsStore || SRef.W != LRef.W ||
              SRef.IsFloat != LRef.IsFloat)
            continue;
          if (LRef.Offset != SRef.Offset - P.Step)
            continue;
          if (LRef.InstIdx >= SRef.InstIdx)
            continue;
          if (!safeToCarry(MP, PI, LRef, SRef))
            continue;
          applyRecurrence(Preheader, Body, P, LRef, SRef);
          ++Stats.RecurrencesOptimized;
          ++Stats.LoadsRemoved;
          return; // analyses are stale; revisit other loops next round
        }
      }
    }
  }

  /// No other store in the loop may write the carried location.
  bool safeToCarry(const MemoryPartitions &MP, size_t PartIdx,
                   const MemRef &LRef, const MemRef &SRef) const {
    const Partition &P = MP.partitions()[PartIdx];
    int64_t Lo = LRef.Offset;
    int64_t Hi = SRef.Offset + widthBytes(SRef.W);
    for (size_t QI = 0; QI < MP.partitions().size(); ++QI) {
      const Partition &Q = MP.partitions()[QI];
      for (const MemRef &R : Q.Refs) {
        if (!R.IsStore)
          continue;
        if (QI == PartIdx) {
          if (R.InstIdx == SRef.InstIdx)
            continue; // the recurrence store itself
          // Same partition: exact offsets; conservative against any
          // overlap with the carried window [Lo, Hi).
          if (R.Offset + widthBytes(R.W) > Lo && R.Offset < Hi)
            return false;
          continue;
        }
        // Cross-partition store: only a restrict-like guarantee helps.
        if (!baseIsNoAlias(F, P.Base) && !baseIsNoAlias(F, Q.Base))
          return false;
      }
    }
    // The loaded value must also not be clobbered by the *wide* variety
    // of loads (LoadWideU has no store semantics), so nothing else to do.
    return true;
  }

  /// Appends a normalization of \p Stored into \p Carry after position
  /// \p Pos: the value a load of width W would observe after the store.
  /// \returns the number of instructions inserted.
  unsigned emitNormalize(BasicBlock &BB, size_t Pos, Reg Carry,
                         Operand Stored, const MemRef &LRef) {
    if (LRef.IsFloat) {
      // f32 store/load round trip: double -> float bits -> double.
      Reg Tmp = F.newReg();
      Instruction Ins;
      Ins.Op = Opcode::InsertF;
      Ins.Dst = Tmp;
      Ins.A = Operand::imm(0);
      Ins.B = Operand::imm(0);
      Ins.C = Stored;
      Ins.W = MemWidth::W4;
      Ins.IsFloat = true;
      BB.insertAt(Pos, std::move(Ins));
      Instruction Ext;
      Ext.Op = Opcode::ExtractF;
      Ext.Dst = Carry;
      Ext.A = Tmp;
      Ext.B = Operand::imm(0);
      Ext.W = MemWidth::W4;
      Ext.IsFloat = true;
      BB.insertAt(Pos + 1, std::move(Ext));
      return 2;
    }
    Instruction Ext;
    Ext.Op = Opcode::Ext;
    Ext.Dst = Carry;
    Ext.A = Stored;
    Ext.W = LRef.W;
    Ext.SignExtend = LRef.SignExtend;
    BB.insertAt(Pos, std::move(Ext));
    return 1;
  }

  void applyRecurrence(BasicBlock *Preheader, BasicBlock *Body,
                       const Partition &P, const MemRef &LRef,
                       const MemRef &SRef) {
    Reg Carry = F.newReg();

    // Guarded pre-load block on the loop entry edge: it runs only when
    // the loop will execute at least one iteration, so the pre-load can
    // never access memory the original program would not have touched.
    BasicBlock *Pre =
        F.addBlock(F.uniqueBlockName(Body->name() + ".carry.init"));
    {
      Instruction Load = Body->insts()[LRef.InstIdx];
      Load.Dst = Carry;
      // The IV holds its entry value here; the iteration-start-relative
      // offset (which folds in any increments that precede the load
      // inside the body) gives the address the first iteration would
      // have loaded.
      Load.Addr.Disp = LRef.Offset;
      Pre->append(std::move(Load));
      Instruction Jmp;
      Jmp.Op = Opcode::Jmp;
      Jmp.TrueTarget = Body;
      Pre->append(std::move(Jmp));
      Instruction &PreTerm = Preheader->terminator();
      if (PreTerm.TrueTarget == Body)
        PreTerm.TrueTarget = Pre;
      if (PreTerm.FalseTarget == Body)
        PreTerm.FalseTarget = Pre;
    }
    Done.insert(Pre);

    // Replace the load with a copy from the carry register.
    {
      Instruction &Old = Body->insts()[LRef.InstIdx];
      Instruction Mov;
      Mov.Op = Opcode::Mov;
      Mov.Dst = Old.Dst;
      Mov.A = Carry;
      Old = Mov;
    }

    // Refresh the carry register after the store.
    (void)P;
    const Instruction &Store = Body->insts()[SRef.InstIdx];
    emitNormalize(*Body, SRef.InstIdx + 1, Carry, Store.A, LRef);

    verifyOrDie(F, "recurrence");
  }
};

} // namespace

RecurrenceStats vpo::optimizeRecurrences(Function &F) {
  return RecurrencePass(F).run();
}
