//===- transform/Unroll.cpp -----------------------------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "transform/Unroll.h"

#include "analysis/CFG.h"
#include "analysis/Dominators.h"
#include "analysis/InductionVars.h"
#include "analysis/Liveness.h"
#include "analysis/LoopInfo.h"
#include "ir/Function.h"
#include "ir/Verifier.h"
#include "sched/ListScheduler.h"
#include "sched/RegPressure.h"
#include "support/Error.h"
#include "support/MathExtras.h"
#include "target/TargetMachine.h"
#include "transform/Utils.h"

#include <unordered_map>
#include <unordered_set>

using namespace vpo;

const char *vpo::unrollFailureName(UnrollFailure F) {
  switch (F) {
  case UnrollFailure::None:
    return "none";
  case UnrollFailure::NotSingleBlock:
    return "not-single-block";
  case UnrollFailure::NoPreheader:
    return "no-preheader";
  case UnrollFailure::NoCanonicalBound:
    return "no-canonical-bound";
  case UnrollFailure::UnsupportedBound:
    return "unsupported-bound";
  case UnrollFailure::IVUsedOutsideAddress:
    return "iv-used-outside-address";
  case UnrollFailure::ICacheLimit:
    return "icache-limit";
  case UnrollFailure::BadFactor:
    return "bad-factor";
  }
  vpo_unreachable("invalid unroll failure");
}

namespace {

/// Registers renameable per unrolled copy: defined before any use inside
/// the body, not an IV, and dead outside the loop (checked via liveness at
/// the loop's exit successor).
std::unordered_set<unsigned> renameableTemps(const BasicBlock &Body,
                                             const LoopScalarInfo &LSI,
                                             const Liveness &LV,
                                             const BasicBlock *ExitBB) {
  std::unordered_set<unsigned> Renameable;
  std::unordered_set<unsigned> UsedBeforeDef, Defined;
  std::vector<Reg> Uses;
  for (const Instruction &I : Body.insts()) {
    Uses.clear();
    I.collectUses(Uses);
    for (Reg U : Uses)
      if (!Defined.count(U.Id))
        UsedBeforeDef.insert(U.Id);
    if (auto D = I.def())
      Defined.insert(D->Id);
  }
  for (unsigned Id : Defined) {
    if (UsedBeforeDef.count(Id))
      continue;
    if (LSI.ivFor(Reg(Id)))
      continue;
    if (LV.liveIn(ExitBB, Reg(Id)))
      continue;
    Renameable.insert(Id);
  }
  return Renameable;
}

/// Emits \p Factor copies of \p Body's non-increment instructions into
/// \p Out — per-copy temporaries renamed through \p NewTemp, IV-based
/// displacements advanced by the accumulated and per-copy steps — followed
/// by the combined IV increments. Shared between the real unroll and the
/// pressure clamp's scratch simulation so the clamp measures exactly the
/// body the unroller would build. The caller appends the back edge.
void emitUnrolledBody(const BasicBlock &Body, const LoopScalarInfo &LSI,
                      unsigned Factor,
                      const std::unordered_set<unsigned> &Renameable,
                      BasicBlock &Out,
                      const std::function<Reg()> &NewTemp) {
  auto Acc = accumulatedIVSteps(Body, LSI);
  for (unsigned Copy = 0; Copy < Factor; ++Copy) {
    std::unordered_map<unsigned, Reg> Rename;
    for (size_t Idx = 0; Idx + 1 < Body.size(); ++Idx) {
      if (isIVIncrement(LSI, Body, Idx))
        continue;
      Instruction I = Body.insts()[Idx];
      // Rewrite uses with this copy's renames.
      if (Copy > 0) {
        I.forEachUse([&](Reg &R) {
          auto It = Rename.find(R.Id);
          if (It != Rename.end())
            R = It->second;
        });
      }
      // Adjust address displacement by the accumulated and per-copy steps.
      if (I.isMemory()) {
        Reg BaseReg = I.Addr.Base;
        // The base may have been renamed above only if it were a temp,
        // which IV bases never are; look up its IV by the original name.
        if (const InductionVar *IV = LSI.ivFor(BaseReg)) {
          auto It = Acc[Idx].find(BaseReg.Id);
          int64_t Before = It == Acc[Idx].end() ? 0 : It->second;
          I.Addr.Disp += Before +
                         static_cast<int64_t>(Copy) * IV->StepPerIteration;
        }
      }
      // Rename this copy's definition of a copy-local temp.
      if (Copy > 0) {
        if (auto D = I.def()) {
          if (Renameable.count(D->Id)) {
            auto It = Rename.find(D->Id);
            Reg NewReg = It != Rename.end() ? It->second : NewTemp();
            Rename[D->Id] = NewReg;
            I.Dst = NewReg;
          }
        }
      }
      Out.append(std::move(I));
    }
  }
  // Combined IV increments.
  for (const InductionVar &IV : LSI.inductionVars()) {
    Instruction Inc;
    Inc.Op = Opcode::Add;
    Inc.Dst = IV.R;
    Inc.A = IV.R;
    Inc.B = Operand::imm(IV.StepPerIteration * static_cast<int64_t>(Factor));
    Out.append(std::move(Inc));
  }
}

/// True if the bound shape is one we can dispatch on: a strict inequality
/// whose direction matches the sign of the IV step (ascending `<`,
/// descending `>`).
bool boundSupported(const LoopBound &B, const LoopScalarInfo &LSI) {
  const InductionVar *IV = LSI.ivFor(B.IV);
  if (!IV)
    return false;
  int64_t Step = IV->StepPerIteration;
  switch (B.ContinueCond) {
  case CondCode::LTs:
  case CondCode::LTu:
    return Step > 0;
  case CondCode::GTs:
  case CondCode::GTu:
    return Step < 0;
  default:
    return false;
  }
}

} // namespace

unsigned vpo::chooseUnrollFactor(const Loop &L, const TargetMachine &TM,
                                 unsigned MaxFactor) {
  const BasicBlock *Body = L.singleBodyBlock();
  if (!Body)
    return 1;
  // Paper heuristic: if the rolled loop fits in the i-cache, the unrolled
  // one must too. Account for the rolled copy that remains as the safe
  // version plus the dispatch code (~4 instructions).
  size_t RolledBytes = Body->size() * TM.encodingBytes();
  if (RolledBytes > TM.iCacheBytes())
    return 1; // does not fit even rolled; leave it alone
  unsigned Factor = 1;
  for (unsigned Cand = 2; Cand <= MaxFactor; Cand *= 2) {
    size_t UnrolledBytes = (Body->size() * (Cand + 1) + 4) *
                           TM.encodingBytes();
    if (UnrolledBytes <= TM.iCacheBytes())
      Factor = Cand;
  }
  return Factor;
}

UnrollFailure vpo::canUnrollLoop(const Function &F, const Loop &L,
                                 const LoopScalarInfo &LSI, unsigned Factor,
                                 const TargetMachine &TM,
                                 bool IgnoreICache) {
  if (Factor < 2 || !isPowerOf2(Factor))
    return UnrollFailure::BadFactor;
  const BasicBlock *Body = L.singleBodyBlock();
  if (!Body)
    return UnrollFailure::NotSingleBlock;

  CFG G(F);
  if (!L.preheader(G))
    return UnrollFailure::NoPreheader;

  if (!LSI.bound())
    return UnrollFailure::NoCanonicalBound;
  const LoopBound &B = *LSI.bound();
  if (!boundSupported(B, LSI))
    return UnrollFailure::UnsupportedBound;

  const InductionVar *BoundIV = LSI.ivFor(B.IV);
  uint64_t Mag = static_cast<uint64_t>(BoundIV->StepPerIteration < 0
                                           ? -BoundIV->StepPerIteration
                                           : BoundIV->StepPerIteration);
  if (!isPowerOf2(Mag))
    return UnrollFailure::UnsupportedBound;

  // Every use of an IV must be as an address base, inside its own
  // increment, or in the loop-bound compare (the terminator).
  for (size_t Idx = 0; Idx < Body->size(); ++Idx) {
    const Instruction &I = Body->insts()[Idx];
    bool IsTerm = Idx + 1 == Body->size();
    bool IsInc = isIVIncrement(LSI, *Body, Idx);
    std::vector<Reg> Uses;
    I.collectUses(Uses);
    for (Reg U : Uses) {
      if (!LSI.ivFor(U))
        continue;
      if (IsTerm)
        continue; // bound compare
      if (IsInc && I.def() && *I.def() == U)
        continue; // its own increment
      if (I.isMemory() && I.Addr.Base == U) {
        // Also used as a non-address operand of the same instruction?
        bool NonAddressUse = (I.A.isReg() && I.A.reg() == U) ||
                             (I.B.isReg() && I.B.reg() == U) ||
                             (I.C.isReg() && I.C.reg() == U);
        if (!NonAddressUse)
          continue;
      }
      return UnrollFailure::IVUsedOutsideAddress;
    }
  }

  // The i-cache fit requirement.
  size_t UnrolledBytes = (Body->size() * (Factor + 1) + 4) *
                         TM.encodingBytes();
  if (!IgnoreICache &&
      Body->size() * TM.encodingBytes() <= TM.iCacheBytes() &&
      UnrolledBytes > TM.iCacheBytes())
    return UnrollFailure::ICacheLimit;

  return UnrollFailure::None;
}

UnrollFailure vpo::unrollLoop(Function &F, const Loop &L,
                              const LoopScalarInfo &LSI, unsigned Factor,
                              const TargetMachine &TM, UnrollResult &Result,
                              bool IgnoreICache) {
  UnrollFailure Fail = canUnrollLoop(F, L, LSI, Factor, TM, IgnoreICache);
  if (Fail != UnrollFailure::None)
    return Fail;

  BasicBlock *Body = L.singleBodyBlock();
  CFG G(F);
  BasicBlock *Preheader = L.preheader(G);
  const LoopBound &Bound = *LSI.bound();
  const InductionVar *BoundIV = LSI.ivFor(Bound.IV);
  int64_t Step = BoundIV->StepPerIteration;
  bool Ascending = Step > 0;
  uint64_t StepMag = static_cast<uint64_t>(Ascending ? Step : -Step);

  // Identify the loop's exit successor (the terminator arm leaving Body).
  Instruction &OldTerm = Body->terminator();
  assert(OldTerm.Op == Opcode::Br && "canonical bound requires Br");
  BasicBlock *ExitBB =
      OldTerm.TrueTarget == Body ? OldTerm.FalseTarget : OldTerm.TrueTarget;

  // Which registers can be renamed per copy: defined before any use inside
  // the body, not an IV, and dead outside the loop.
  Liveness LV(G);
  std::unordered_set<unsigned> Renameable =
      renameableTemps(*Body, LSI, LV, ExitBB);

  // --- Build the unrolled body -----------------------------------------
  BasicBlock *Unrolled =
      F.addBlock(F.uniqueBlockName(Body->name() + ".unrolled"));
  emitUnrolledBody(*Body, LSI, Factor, Renameable, *Unrolled,
                   [&] { return F.newReg(); });
  // Back edge: same bound compare, targeting the unrolled body.
  {
    Instruction Br = OldTerm;
    if (Br.TrueTarget == Body)
      Br.TrueTarget = Unrolled;
    if (Br.FalseTarget == Body)
      Br.FalseTarget = Unrolled;
    Unrolled->append(std::move(Br));
  }

  // The unrolled main loop runs while `iv CC mainLimit` with
  // mainLimit = limit -/+ (span mod (factor*|step|)); the leftover
  // iterations run afterwards in a rolled epilogue bounded by the original
  // limit. Running the main loop *first* keeps its wide references at the
  // base address's alignment phase, which is what the coalescer's
  // `base & (wide-1)` checks test (paper section 2.2).
  Reg MainLimit = F.newReg(); // defined in the setup block below

  {
    // Main loop back edge: continue while iv CC mainLimit.
    Instruction Br;
    Br.Op = Opcode::Br;
    Br.CC = Bound.ContinueCond;
    Br.A = Bound.IV;
    Br.B = MainLimit;
    Br.TrueTarget = Unrolled;
    Br.FalseTarget = nullptr; // epilogue guard, patched below
    Unrolled->insts().pop_back();
    Unrolled->append(std::move(Br));
  }

  // --- Epilogue: guard + rolled clone for the leftover iterations ------
  BasicBlock *EpiGuard =
      F.addBlock(F.uniqueBlockName(Body->name() + ".epi.guard"));
  BasicBlock *Epilogue = cloneBlock(F, *Body, Body->name() + ".epi");
  {
    // The clone's bound (original limit) and exit target are already
    // correct; only the epilogue guard is new.
    Instruction Br;
    Br.Op = Opcode::Br;
    Br.CC = Bound.ContinueCond;
    Br.A = Bound.IV;
    Br.B = Bound.Limit;
    Br.TrueTarget = Epilogue;
    Br.FalseTarget = ExitBB;
    EpiGuard->append(std::move(Br));
    Unrolled->terminator().FalseTarget = EpiGuard;
  }

  // --- Setup block: main-loop limit computation -------------------------
  BasicBlock *Setup =
      F.addBlock(F.uniqueBlockName(Body->name() + ".unroll.setup"));
  {
    // span = limit - iv (ascending) or iv - limit (descending): positive
    // on entry (the loop guard in the preheader already ran).
    Instruction SpanI;
    SpanI.Op = Opcode::Sub;
    SpanI.Dst = F.newReg();
    if (Ascending) {
      SpanI.A = Bound.Limit;
      SpanI.B = Bound.IV;
    } else {
      SpanI.A = Bound.IV;
      SpanI.B = Bound.Limit;
    }
    Reg Span = SpanI.Dst;
    Setup->append(std::move(SpanI));

    // A span that is not a multiple of |step| means the loop was not
    // counting in exact strides; fall back to the untouched rolled loop.
    BasicBlock *Tail = Setup;
    if (StepMag > 1) {
      Instruction ModI;
      ModI.Op = Opcode::And;
      ModI.Dst = F.newReg();
      ModI.A = Span;
      ModI.B = Operand::imm(static_cast<int64_t>(StepMag - 1));
      Reg Mod = ModI.Dst;
      Setup->append(std::move(ModI));
      Instruction Br;
      Br.Op = Opcode::Br;
      Br.CC = CondCode::NE;
      Br.A = Mod;
      Br.B = Operand::imm(0);
      Br.TrueTarget = Body; // inexact stride: run the original loop
      Tail = F.addBlock(F.uniqueBlockName(Body->name() + ".unroll.setup2"));
      Br.FalseTarget = Tail;
      Setup->append(std::move(Br));
      Result.InexactStrideGuard = true;
    }

    uint64_t Mask = StepMag * Factor - 1;
    Instruction RemI;
    RemI.Op = Opcode::And;
    RemI.Dst = F.newReg();
    RemI.A = Span;
    RemI.B = Operand::imm(static_cast<int64_t>(Mask));
    Reg Rem = RemI.Dst;
    Tail->append(std::move(RemI));

    // mainLimit = limit -/+ rem: where the unrolled main loop stops.
    Instruction LimI;
    LimI.Op = Ascending ? Opcode::Sub : Opcode::Add;
    LimI.Dst = MainLimit;
    LimI.A = Bound.Limit;
    LimI.B = Rem;
    Tail->append(std::move(LimI));

    // Skip the main loop entirely when fewer than `factor` iterations
    // remain (mainLimit == iv).
    Instruction Br;
    Br.Op = Opcode::Br;
    Br.CC = Bound.ContinueCond;
    Br.A = Bound.IV;
    Br.B = MainLimit;
    Br.TrueTarget = Unrolled;
    Br.FalseTarget = EpiGuard;
    Tail->append(std::move(Br));
  }

  // --- Retarget the preheader ------------------------------------------
  Instruction &PreTerm = Preheader->terminator();
  if (PreTerm.TrueTarget == Body)
    PreTerm.TrueTarget = Setup;
  if (PreTerm.FalseTarget == Body)
    PreTerm.FalseTarget = Setup;

  verifyOrDie(F, "unroll");

  Result.RolledBody = Body;
  Result.UnrolledBody = Unrolled;
  Result.RemainderBody = Epilogue;
  Result.Setup = Setup;
  Result.Guard = EpiGuard;
  Result.Factor = Factor;
  return UnrollFailure::None;
}

PressureClampInfo vpo::clampUnrollFactorForPressure(
    const Function &F, const Loop &L, const LoopScalarInfo &LSI,
    unsigned Factor, const TargetMachine &TM,
    const std::vector<CoalescableGroup> &Groups) {
  PressureClampInfo Info;
  Info.Factor = Factor;
  const BasicBlock *Body = L.singleBodyBlock();
  if (Factor < 2 || !Body || Body->empty() || !LSI.bound())
    return Info;
  const Instruction &Term = Body->terminator();
  if (Term.Op != Opcode::Br)
    return Info;
  const BasicBlock *ExitBB =
      Term.TrueTarget == Body ? Term.FalseTarget : Term.TrueTarget;

  CFG G(F);
  Liveness LV(G);
  std::unordered_set<unsigned> Renameable =
      renameableTemps(*Body, LSI, LV, ExitBB);

  // Bus cycles coalescing recovers at factor Fac: each group's Fac *
  // RefsPerIteration narrow references collapse into ceil-divided wide
  // ones, and every reference eliminated returns its issue occupancy.
  auto SavingCycles = [&](unsigned Fac) -> uint64_t {
    uint64_t Saved = 0;
    for (const CoalescableGroup &Gr : Groups) {
      if (Gr.NarrowBytes == 0 || Gr.WideBytes <= Gr.NarrowBytes)
        continue;
      uint64_t PerWide = Gr.WideBytes / Gr.NarrowBytes;
      uint64_t Narrow =
          static_cast<uint64_t>(Fac) * Gr.RefsPerIteration;
      uint64_t Wide = (Narrow + PerWide - 1) / PerWide;
      Saved += (Narrow - Wide) * TM.spec().MemIssueCycles;
    }
    return Saved;
  };

  // Build the unrolled body at Fac in a scratch function (F stays
  // untouched: no name-counter or register-allocator perturbation),
  // schedule it, and measure max-live under the schedule order. Rename
  // registers are drawn from past F's allocator bound so copied ids never
  // collide.
  auto MeasureAt = [&](unsigned Fac, PressureEstimate &P,
                       uint64_t &SpillCycles) {
    Function Scratch("pressure.scratch");
    BasicBlock *SB = Scratch.addBlock("body");
    unsigned NextId = F.regUpperBound();
    emitUnrolledBody(*Body, LSI, Fac, Renameable, *SB,
                     [&] { return Reg(NextId++); });
    SB->append(Term); // back edge: its targets are never dereferenced here
    ScheduleResult S = scheduleBlock(*SB, TM);
    P = estimateMaxLive(*SB, S.Order);
    SpillCycles = spillPenaltyCycles(P, TM);
  };

  // Baseline: what one rolled iteration already spills. A loop whose body
  // overflows the register file without any unrolling pays that charge
  // once per iteration no matter what we do here, so the acceptance test
  // below is *marginal*: factor Fac is acceptable when its spill charge
  // (covering Fac iterations) stays within Fac rolled baselines plus the
  // bus cycles coalescing recovers at Fac. Comparing absolute spill
  // against the saving would wrongly refuse unrolling for every loop that
  // is merely pre-existing-spilly, however profitable the unroll.
  PressureEstimate RolledP;
  uint64_t RolledSpill = 0;
  MeasureAt(1, RolledP, RolledSpill);
  Info.RolledSpillCycles = RolledSpill;

  for (unsigned Fac = Factor; Fac >= 2; Fac /= 2) {
    PressureEstimate P;
    uint64_t SpillCycles = 0;
    MeasureAt(Fac, P, SpillCycles);
    if (SpillCycles <= Fac * RolledSpill + SavingCycles(Fac)) {
      Info.Factor = Fac;
      Info.Clamped = Fac != Factor;
      Info.Pressure = P;
      return Info;
    }
    if (Fac == Factor) {
      Info.RefusedPressure = P;
      Info.RefusedSpillCycles = SpillCycles;
      Info.RefusedSavingCycles = SavingCycles(Fac);
    }
  }
  // Even factor 2 spills more than coalescing recovers: do not unroll.
  Info.Factor = 1;
  Info.Clamped = true;
  return Info;
}
