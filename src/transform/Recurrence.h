//===- transform/Recurrence.h - recurrence detection + optimization -------===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recurrence detection and optimization [Beni91], discussed in the
/// paper's section 1.1 with the fifth Livermore loop:
///
///     for (i = 1; i < n; i++) x[i] = z[i] * (y[i] - x[i-1]);
///
/// "By detecting the fact that a recurrence is being evaluated, code can
/// be generated so that the x[i] computed on one iteration of the loop is
/// held in a register and is obtained from that register on the next
/// iteration… the transformation yields code that saves one memory
/// reference per loop iteration."
///
/// Mechanics for a single-block counted loop: find a load L and a store S
/// in the same partition with loadOffset == storeOffset - step (L reads
/// the location S wrote on the previous iteration), L preceding S. Then:
///
///   * split the loop entry edge and pre-load the carried value there
///     (guarded: the preheader code never runs on the zero-trip path);
///   * replace L with a copy from the carry register;
///   * after S, refresh the carry register with the stored value,
///     normalized through the store/load width (an Ext for integers; an
///     insert/extract round-trip for f32, which rounds exactly as the
///     memory round-trip would).
///
/// Safety: every other store in the loop must be provably unable to touch
/// the carried location (same-partition disjoint offsets, or a NoAlias
/// base parameter). A second benefit falls out for free: with the
/// recurrent load gone, the store stream no longer has a Fig. 4 hazard
/// and becomes coalescable.
///
//===----------------------------------------------------------------------===//

#ifndef VPO_TRANSFORM_RECURRENCE_H
#define VPO_TRANSFORM_RECURRENCE_H

namespace vpo {

class Function;

struct RecurrenceStats {
  unsigned LoopsExamined = 0;
  unsigned RecurrencesOptimized = 0;
  unsigned LoadsRemoved = 0;
};

/// Detects and optimizes register-carriable recurrences in every
/// innermost single-block loop of \p F.
RecurrenceStats optimizeRecurrences(Function &F);

} // namespace vpo

#endif // VPO_TRANSFORM_RECURRENCE_H
