//===- transform/StrengthReduce.h - derive pointer IVs ----------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Induction-variable strength reduction. The front end emits array
/// accesses naively — `addr = base + (i << k)` recomputed per access —
/// which leaves every memory reference with a base register that is
/// redefined each iteration, so the coalescer's partitioning (paper
/// Fig. 2: "a unique identifier… most probably the register containing
/// the start address of A") finds nothing.
///
/// This pass rewrites each such access to use a derived pointer induction
/// variable: initialized in the preheader to `base + i0*scale`, advanced
/// by `step*scale` beside each increment of `i`, and used as the
/// reference's base register with the displacement unchanged. The old
/// address arithmetic dies and DCE removes it. This is the
/// `EliminateInductionVariables` step of the paper's Fig. 2 (line 16).
///
//===----------------------------------------------------------------------===//

#ifndef VPO_TRANSFORM_STRENGTHREDUCE_H
#define VPO_TRANSFORM_STRENGTHREDUCE_H

namespace vpo {

class Function;

struct StrengthReduceStats {
  unsigned LoopsExamined = 0;
  unsigned PointersDerived = 0;
  unsigned RefsRewritten = 0;
};

/// Applies strength reduction to every innermost single-block loop of
/// \p F. Runs its own cleanup is NOT included; run the cleanup pipeline
/// afterwards to remove the dead address arithmetic.
StrengthReduceStats strengthReduce(Function &F);

} // namespace vpo

#endif // VPO_TRANSFORM_STRENGTHREDUCE_H
