//===- transform/Cleanup.h - DCE, copy propagation, folding -----*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The scalar cleanup passes a vpo-style optimizer runs between major
/// transformations:
///
///  * dead code elimination — removes instructions whose results are never
///    used (loads included: a dead load has no architectural effect);
///  * local copy propagation — forwards `r = mov X` within a block;
///  * constant folding — evaluates ALU operations on immediates and
///    simplifies identities (x+0, x*1, x<<0, x&0, ...).
///
/// Unrolling and coalescing leave behind dead induction-variable updates
/// and redundant moves; these passes tidy them before scheduling.
///
//===----------------------------------------------------------------------===//

#ifndef VPO_TRANSFORM_CLEANUP_H
#define VPO_TRANSFORM_CLEANUP_H

namespace vpo {

class BasicBlock;
class Function;

struct CleanupStats {
  unsigned DeadRemoved = 0;
  unsigned CopiesPropagated = 0;
  unsigned Folded = 0;

  CleanupStats &operator+=(const CleanupStats &O) {
    DeadRemoved += O.DeadRemoved;
    CopiesPropagated += O.CopiesPropagated;
    Folded += O.Folded;
    return *this;
  }
};

/// Removes instructions computing values that are dead (never live after
/// the definition). Iterates to a fixpoint. Memory writes, branches, and
/// returns are never removed.
CleanupStats eliminateDeadCode(Function &F);

/// Forwards copies and immediate moves within each block.
CleanupStats propagateCopies(Function &F);

/// Folds constant ALU operations and algebraic identities in place.
CleanupStats foldConstants(Function &F);

/// Runs fold -> copy-prop -> DCE until nothing changes.
CleanupStats runCleanupPipeline(Function &F);

} // namespace vpo

#endif // VPO_TRANSFORM_CLEANUP_H
