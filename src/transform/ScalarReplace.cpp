//===- transform/ScalarReplace.cpp ----------------------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "transform/ScalarReplace.h"

#include "analysis/BaseOrigin.h"
#include "analysis/CFG.h"
#include "analysis/Dominators.h"
#include "analysis/InductionVars.h"
#include "analysis/LoopInfo.h"
#include "analysis/MemoryPartitions.h"
#include "ir/Function.h"
#include "ir/Verifier.h"

#include <algorithm>
#include <map>
#include <unordered_set>

using namespace vpo;

namespace {

class ScalarReplacePass {
public:
  explicit ScalarReplacePass(Function &F) : F(F) {}

  ScalarReplaceStats run() {
    while (true) {
      CFG G(F);
      DominatorTree DT(G);
      LoopInfo LI(G, DT);
      Loop *Candidate = nullptr;
      for (const auto &L : LI.loops()) {
        if (!L->isInnermost() || !L->singleBodyBlock())
          continue;
        if (Done.count(L->singleBodyBlock()))
          continue;
        Candidate = L.get();
        break;
      }
      if (!Candidate)
        break;
      processLoop(*Candidate, G);
    }
    return Stats;
  }

private:
  Function &F;
  ScalarReplaceStats Stats;
  std::unordered_set<const BasicBlock *> Done;

  void processLoop(Loop &L, CFG &G) {
    BasicBlock *Body = L.singleBodyBlock();
    Done.insert(Body);
    ++Stats.LoopsExamined;

    BasicBlock *Preheader = L.preheader(G);
    if (!Preheader)
      return;
    LoopScalarInfo LSI(L, F);
    MemoryPartitions MP(L, LSI);
    if (!MP.allClassified())
      return;

    // Shared guarded-preheader block, created lazily for the first chain.
    BasicBlock *Guard = nullptr;

    for (size_t PI = 0; PI < MP.partitions().size(); ++PI) {
      const Partition &P = MP.partitions()[PI];
      if (!P.BaseIsIV || P.Step == 0)
        continue;
      auto Chain = findChain(MP, PI, LSI, Body);
      if (Chain.size() < 2)
        continue;
      if (!Guard)
        Guard = makeGuardBlock(Preheader, Body);
      applyChain(Guard, Body, P, Chain);
      ++Stats.ChainsReplaced;
      Stats.LoadsRemoved += static_cast<unsigned>(Chain.size() - 1);
    }

    if (Guard)
      verifyOrDie(F, "scalar-replace");
  }

  /// \returns ref indices of a maximal replaceable load chain in
  /// partition \p PI: unique consecutive offsets spaced by the step,
  /// same width/signedness, all with single-def destinations, safe
  /// against every store in the loop.
  std::vector<size_t> findChain(const MemoryPartitions &MP, size_t PI,
                                const LoopScalarInfo &LSI,
                                BasicBlock *Body) {
    const Partition &P = MP.partitions()[PI];
    int64_t Step = P.Step;
    // Offsets must advance with the stream direction: for a positive
    // step, o_i + s = o_{i+1} (the next iteration's lower tap); negative
    // steps mirror.
    std::map<int64_t, size_t> LoadAt; // offset -> ref index
    for (size_t R = 0; R < P.Refs.size(); ++R) {
      const MemRef &Ref = P.Refs[R];
      if (!Ref.IsLoad)
        continue;
      if (LoadAt.count(Ref.Offset))
        return {}; // duplicate loads complicate rotation; leave alone
      LoadAt[Ref.Offset] = R;
    }
    if (LoadAt.size() < 2)
      return {};

    // The longest run of offsets spaced exactly |Step| apart.
    std::vector<int64_t> Offsets;
    for (const auto &[Off, _] : LoadAt)
      Offsets.push_back(Off);
    int64_t Spacing = Step > 0 ? Step : -Step;
    size_t BestStart = 0, BestLen = 1, CurStart = 0, CurLen = 1;
    for (size_t I = 1; I < Offsets.size(); ++I) {
      if (Offsets[I] == Offsets[I - 1] + Spacing) {
        ++CurLen;
      } else {
        CurStart = I;
        CurLen = 1;
      }
      if (CurLen > BestLen) {
        BestLen = CurLen;
        BestStart = CurStart;
      }
    }
    if (BestLen < 2)
      return {};

    std::vector<size_t> Chain;
    for (size_t I = BestStart; I < BestStart + BestLen; ++I)
      Chain.push_back(LoadAt[Offsets[I]]);
    // For a negative step the *low* offset holds last iteration's value
    // of the next-lower... reverse so Chain[0] is the one whose value
    // arrives from the previous iteration.
    if (Step < 0)
      std::reverse(Chain.begin(), Chain.end());

    // Uniform width/signedness and single-def destinations.
    const MemRef &First = P.Refs[Chain[0]];
    for (size_t R : Chain) {
      const MemRef &Ref = P.Refs[R];
      if (Ref.W != First.W || Ref.SignExtend != First.SignExtend ||
          Ref.IsFloat != First.IsFloat)
        return {};
      Reg Dst = Body->insts()[Ref.InstIdx].Dst;
      if (LSI.defCount(Dst) != 1)
        return {};
    }

    // Stores anywhere in the loop must be unable to touch the carried
    // window.
    int64_t Lo = P.Refs[Chain.front()].Offset;
    int64_t Hi = P.Refs[Chain.back()].Offset;
    if (Lo > Hi)
      std::swap(Lo, Hi);
    Hi += widthBytes(First.W);
    // The window shifts by Step each iteration; a same-partition store is
    // dangerous if it can hit any *future* position of the window. Exact
    // reasoning: store offset so vs window [Lo,Hi) shifted by k*Step for
    // k >= 0. Conservative and simple: require the store to be outside
    // [Lo, Hi) and on the already-consumed side of the stream.
    for (size_t QI = 0; QI < MP.partitions().size(); ++QI) {
      const Partition &Q = MP.partitions()[QI];
      for (const MemRef &Ref : Q.Refs) {
        if (!Ref.IsStore)
          continue;
        if (QI == PI) {
          int64_t SLo = Ref.Offset;
          int64_t SHi = Ref.Offset + widthBytes(Ref.W);
          bool Behind = P.Step > 0 ? (SHi <= Lo) : (SLo >= Hi);
          if (!Behind)
            return {};
          continue;
        }
        if (!baseIsNoAlias(F, P.Base) && !baseIsNoAlias(F, Q.Base))
          return {};
      }
    }
    return Chain;
  }

  /// Splits the preheader->body edge with a guarded block for the
  /// preloads (it executes only when the loop runs at least once).
  BasicBlock *makeGuardBlock(BasicBlock *Preheader, BasicBlock *Body) {
    BasicBlock *Guard =
        F.addBlock(F.uniqueBlockName(Body->name() + ".preload"));
    Instruction Jmp;
    Jmp.Op = Opcode::Jmp;
    Jmp.TrueTarget = Body;
    Guard->append(std::move(Jmp));
    Instruction &PreTerm = Preheader->terminator();
    if (PreTerm.TrueTarget == Body)
      PreTerm.TrueTarget = Guard;
    if (PreTerm.FalseTarget == Body)
      PreTerm.FalseTarget = Guard;
    Done.insert(Guard);
    return Guard;
  }

  void applyChain(BasicBlock *Guard, BasicBlock *Body, const Partition &P,
                  const std::vector<size_t> &Chain) {
    size_t N = Chain.size();
    // Carries C_0..C_{n-2}: entering each iteration, C_i holds the value
    // of the chain's i-th location for *this* iteration.
    std::vector<Reg> Carries(N - 1);
    for (size_t I = 0; I + 1 < N; ++I)
      Carries[I] = F.newReg();

    // Guarded preloads (inserted before the jump).
    for (size_t I = 0; I + 1 < N; ++I) {
      const MemRef &Ref = P.Refs[Chain[I]];
      Instruction Load = Body->insts()[Ref.InstIdx];
      Load.Dst = Carries[I];
      Load.Addr = Address(P.Base, Ref.Offset);
      Guard->insertAt(Guard->size() - 1, std::move(Load));
    }

    // Destination registers per chain position (before rewriting).
    std::vector<Reg> Dsts(N);
    for (size_t I = 0; I < N; ++I)
      Dsts[I] = Body->insts()[P.Refs[Chain[I]].InstIdx].Dst;

    // Replace loads 0..n-2 with copies from the carries.
    for (size_t I = 0; I + 1 < N; ++I) {
      Instruction &Old = Body->insts()[P.Refs[Chain[I]].InstIdx];
      Instruction Mov;
      Mov.Op = Opcode::Mov;
      Mov.Dst = Old.Dst;
      Mov.A = Carries[I];
      Old = Mov;
    }

    // Rotate the window just before the terminator: C_i = dst_{i+1}.
    size_t InsertAt = Body->size() - 1;
    for (size_t I = 0; I + 1 < N; ++I) {
      Instruction Mov;
      Mov.Op = Opcode::Mov;
      Mov.Dst = Carries[I];
      Mov.A = Dsts[I + 1];
      Body->insertAt(InsertAt + I, std::move(Mov));
    }
  }
};

} // namespace

ScalarReplaceStats vpo::replaceSubscriptedScalars(Function &F) {
  return ScalarReplacePass(F).run();
}
