//===- transform/Cleanup.cpp ----------------------------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "transform/Cleanup.h"

#include "analysis/CFG.h"
#include "analysis/Liveness.h"
#include "ir/Function.h"
#include "support/MathExtras.h"

#include <optional>
#include <unordered_map>

using namespace vpo;

namespace {

/// True if removing \p I (assuming its result is unused) changes program
/// behaviour. Dead loads are removable: they have no architectural effect
/// in this memory model.
bool hasSideEffects(const Instruction &I) {
  return I.isStore() || I.isTerminator();
}

/// Evaluates a two-operand ALU op over immediates with the interpreter's
/// semantics. \returns nullopt when the operation must not be folded
/// (division by zero).
std::optional<uint64_t> evalALU(Opcode Op, uint64_t A, uint64_t B) {
  switch (Op) {
  case Opcode::Add:
    return A + B;
  case Opcode::Sub:
    return A - B;
  case Opcode::Mul:
    return A * B;
  case Opcode::DivS:
    if (B == 0)
      return std::nullopt;
    return static_cast<uint64_t>(static_cast<int64_t>(A) /
                                 static_cast<int64_t>(B));
  case Opcode::DivU:
    if (B == 0)
      return std::nullopt;
    return A / B;
  case Opcode::RemS:
    if (B == 0)
      return std::nullopt;
    return static_cast<uint64_t>(static_cast<int64_t>(A) %
                                 static_cast<int64_t>(B));
  case Opcode::RemU:
    if (B == 0)
      return std::nullopt;
    return A % B;
  case Opcode::And:
    return A & B;
  case Opcode::Or:
    return A | B;
  case Opcode::Xor:
    return A ^ B;
  case Opcode::Shl:
    return A << (B & 63);
  case Opcode::ShrA:
    return static_cast<uint64_t>(static_cast<int64_t>(A) >> (B & 63));
  case Opcode::ShrL:
    return A >> (B & 63);
  default:
    return std::nullopt;
  }
}

bool isALU(Opcode Op) {
  switch (Op) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::DivS:
  case Opcode::DivU:
  case Opcode::RemS:
  case Opcode::RemU:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::ShrA:
  case Opcode::ShrL:
    return true;
  default:
    return false;
  }
}

} // namespace

CleanupStats vpo::eliminateDeadCode(Function &F) {
  CleanupStats Stats;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    CFG G(F);
    Liveness LV(G);
    for (const auto &BBPtr : F.blocks()) {
      BasicBlock &BB = *BBPtr;
      // Walk backward with a running live set seeded from live-out.
      std::vector<bool> Live(F.regUpperBound(), false);
      for (unsigned R = 1; R < F.regUpperBound(); ++R)
        Live[R] = LV.liveOut(&BB, Reg(R));
      std::vector<Reg> Uses;
      for (size_t I = BB.size(); I-- > 0;) {
        Instruction &Inst = BB.insts()[I];
        auto D = Inst.def();
        bool Dead = D && !Live[D->Id] && !hasSideEffects(Inst);
        if (Dead) {
          BB.eraseAt(I);
          ++Stats.DeadRemoved;
          Changed = true;
          continue;
        }
        if (D)
          Live[D->Id] = false;
        Uses.clear();
        Inst.collectUses(Uses);
        for (Reg U : Uses)
          Live[U.Id] = true;
      }
    }
  }
  return Stats;
}

CleanupStats vpo::propagateCopies(Function &F) {
  CleanupStats Stats;
  for (const auto &BBPtr : F.blocks()) {
    BasicBlock &BB = *BBPtr;
    // Known copies: destination register -> forwarded operand.
    std::unordered_map<unsigned, Operand> Copies;
    auto Invalidate = [&Copies](Reg R) {
      Copies.erase(R.Id);
      for (auto It = Copies.begin(); It != Copies.end();) {
        if (It->second.isReg() && It->second.reg() == R)
          It = Copies.erase(It);
        else
          ++It;
      }
    };
    for (Instruction &I : BB.insts()) {
      // Rewrite register operands through the copy map. Address bases may
      // only be replaced by other registers (not immediates).
      auto Forward = [&](Operand &O) {
        if (!O.isReg())
          return;
        auto It = Copies.find(O.reg().Id);
        if (It != Copies.end()) {
          O = It->second;
          ++Stats.CopiesPropagated;
        }
      };
      Forward(I.A);
      Forward(I.B);
      Forward(I.C);
      if (I.isMemory()) {
        auto It = Copies.find(I.Addr.Base.Id);
        if (It != Copies.end() && It->second.isReg()) {
          I.Addr.Base = It->second.reg();
          ++Stats.CopiesPropagated;
        }
      }
      if (auto D = I.def()) {
        Invalidate(*D);
        if (I.Op == Opcode::Mov && (I.A.isImm() || I.A.isReg()) &&
            !(I.A.isReg() && I.A.reg() == *D))
          Copies[D->Id] = I.A;
      }
    }
  }
  return Stats;
}

CleanupStats vpo::foldConstants(Function &F) {
  CleanupStats Stats;
  for (const auto &BBPtr : F.blocks()) {
    for (Instruction &I : BBPtr->insts()) {
      if (isALU(I.Op) && I.A.isImm() && I.B.isImm()) {
        auto V = evalALU(I.Op, static_cast<uint64_t>(I.A.imm()),
                         static_cast<uint64_t>(I.B.imm()));
        if (!V)
          continue;
        I.Op = Opcode::Mov;
        I.A = Operand::imm(static_cast<int64_t>(*V));
        I.B = Operand();
        ++Stats.Folded;
        continue;
      }
      // Algebraic identities with a register LHS and immediate RHS.
      if (!isALU(I.Op) || !I.B.isImm())
        continue;
      int64_t C = I.B.imm();
      auto ToMovOfA = [&I, &Stats]() {
        I.Op = Opcode::Mov;
        I.B = Operand();
        ++Stats.Folded;
      };
      auto ToMovImm = [&I, &Stats](int64_t V) {
        I.Op = Opcode::Mov;
        I.A = Operand::imm(V);
        I.B = Operand();
        ++Stats.Folded;
      };
      switch (I.Op) {
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Shl:
      case Opcode::ShrA:
      case Opcode::ShrL:
        if (C == 0)
          ToMovOfA();
        break;
      case Opcode::Mul:
        if (C == 1)
          ToMovOfA();
        else if (C == 0)
          ToMovImm(0);
        break;
      case Opcode::And:
        if (C == 0)
          ToMovImm(0);
        else if (C == -1)
          ToMovOfA();
        break;
      default:
        break;
      }
    }
  }
  return Stats;
}

CleanupStats vpo::runCleanupPipeline(Function &F) {
  CleanupStats Total;
  while (true) {
    CleanupStats Round;
    Round += foldConstants(F);
    Round += propagateCopies(F);
    Round += eliminateDeadCode(F);
    Total += Round;
    if (Round.DeadRemoved == 0 && Round.CopiesPropagated == 0 &&
        Round.Folded == 0)
      break;
  }
  return Total;
}
