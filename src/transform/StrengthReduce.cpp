//===- transform/StrengthReduce.cpp ---------------------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "transform/StrengthReduce.h"

#include "analysis/CFG.h"
#include "analysis/Dominators.h"
#include "analysis/InductionVars.h"
#include "analysis/LoopInfo.h"
#include "ir/Function.h"
#include "ir/Verifier.h"

#include <map>
#include <optional>
#include <unordered_set>

using namespace vpo;

namespace {

/// A recognized address computation: Base + IV * Scale (+ the memory
/// operand's own displacement).
struct AddrPattern {
  Reg Base;    ///< loop-invariant array base
  Reg IV;      ///< basic induction variable
  int64_t Scale;
};

class StrengthReducePass {
public:
  explicit StrengthReducePass(Function &F) : F(F) {}

  StrengthReduceStats run() {
    while (true) {
      CFG G(F);
      DominatorTree DT(G);
      LoopInfo LI(G, DT);
      Loop *Candidate = nullptr;
      for (const auto &L : LI.loops()) {
        if (!L->isInnermost() || !L->singleBodyBlock())
          continue;
        if (Done.count(L->singleBodyBlock()))
          continue;
        Candidate = L.get();
        break;
      }
      if (!Candidate)
        break;
      processLoop(*Candidate, G);
    }
    return Stats;
  }

private:
  Function &F;
  StrengthReduceStats Stats;
  std::unordered_set<const BasicBlock *> Done;

  void processLoop(Loop &L, CFG &G) {
    BasicBlock *Body = L.singleBodyBlock();
    Done.insert(Body);
    ++Stats.LoopsExamined;

    BasicBlock *Preheader = L.preheader(G);
    if (!Preheader)
      return;

    // Derived pointers for this loop: (base, iv, scale) -> pointer reg.
    // Passes restart after every structural change (pointer creation
    // inserts instructions, shifting positions); references matching an
    // already-derived key are rewritten in place on stable passes.
    std::map<std::tuple<unsigned, unsigned, int64_t>, Reg> Derived;
    bool Changed = false;
    while (onePass(L, Preheader, Body, Derived, Changed))
      ;
    if (Changed)
      verifyOrDie(F, "strength-reduce");
  }

  /// One scan over the body. \returns true if a pointer was created (the
  /// body changed structurally and the scan must restart).
  bool onePass(Loop &L, BasicBlock *Preheader, BasicBlock *Body,
               std::map<std::tuple<unsigned, unsigned, int64_t>, Reg>
                   &Derived,
               bool &Changed) {
    LoopScalarInfo LSI(L, F);
    if (LSI.inductionVars().empty())
      return false;

    // Map each in-loop single-def register to its defining instruction
    // index, for pattern matching.
    std::map<unsigned, std::optional<size_t>> DefIdx;
    for (size_t Idx = 0; Idx < Body->size(); ++Idx)
      if (auto D = Body->insts()[Idx].def()) {
        auto [It, Inserted] = DefIdx.try_emplace(D->Id, Idx);
        if (!Inserted)
          It->second = std::nullopt; // multiple defs: not matchable
      }

    for (size_t Idx = 0; Idx < Body->size(); ++Idx) {
      Instruction &I = Body->insts()[Idx];
      if (!I.isMemory())
        continue;
      auto Pattern = matchAddress(Body, LSI, DefIdx, I.Addr.Base, Idx);
      if (!Pattern)
        continue;

      auto Key = std::make_tuple(Pattern->Base.Id, Pattern->IV.Id,
                                 Pattern->Scale);
      auto It = Derived.find(Key);
      if (It != Derived.end()) {
        // Pointer already exists: rewriting the base is position-stable.
        I.Addr.Base = It->second;
        ++Stats.RefsRewritten;
        Changed = true;
        continue;
      }
      // Create the pointer and restart; this reference is rewritten on
      // the next pass through the already-derived path.
      Derived[Key] = createPointer(L, Preheader, Body, LSI, *Pattern);
      ++Stats.PointersDerived;
      Changed = true;
      return true;
    }
    return false;
  }

  /// Matches `AddrReg = Base + IV*Scale` where Base is invariant, IV is a
  /// basic induction variable, and no IV increment executes between the
  /// address computation chain and \p UseIdx (the front end computes the
  /// address immediately before using it, so this holds for generated
  /// code; hand-written IR that interleaves is left alone).
  std::optional<AddrPattern>
  matchAddress(BasicBlock *Body, const LoopScalarInfo &LSI,
               const std::map<unsigned, std::optional<size_t>> &DefIdx,
               Reg AddrReg, size_t UseIdx) {
    auto DefOf = [&](Reg R) -> const Instruction * {
      auto It = DefIdx.find(R.Id);
      if (It == DefIdx.end() || !It->second)
        return nullptr;
      return &Body->insts()[*It->second];
    };

    const Instruction *AddrDef = DefOf(AddrReg);
    if (!AddrDef || AddrDef->Op != Opcode::Add)
      return std::nullopt;
    if (!AddrDef->A.isReg() || !AddrDef->B.isReg())
      return std::nullopt;

    auto Classify = [&](Reg R, AddrPattern &P, bool &HaveBase,
                        bool &HaveIndex) {
      if (LSI.isInvariant(R)) {
        if (!HaveBase) {
          P.Base = R;
          HaveBase = true;
          return true;
        }
        return false;
      }
      // Index side: IV directly (scale 1)…
      if (LSI.ivFor(R)) {
        if (!HaveIndex) {
          P.IV = R;
          P.Scale = 1;
          HaveIndex = true;
          return true;
        }
        return false;
      }
      // …or T = IV << k / IV * c / mov IV.
      const Instruction *TD = DefOf(R);
      if (!TD || HaveIndex)
        return false;
      if (TD->Op == Opcode::Shl && TD->A.isReg() && TD->B.isImm() &&
          LSI.ivFor(TD->A.reg())) {
        P.IV = TD->A.reg();
        P.Scale = int64_t(1) << (TD->B.imm() & 63);
        HaveIndex = true;
        return true;
      }
      if (TD->Op == Opcode::Mul && TD->A.isReg() && TD->B.isImm() &&
          LSI.ivFor(TD->A.reg())) {
        P.IV = TD->A.reg();
        P.Scale = TD->B.imm();
        HaveIndex = true;
        return true;
      }
      if (TD->Op == Opcode::Mov && TD->A.isReg() &&
          LSI.ivFor(TD->A.reg())) {
        P.IV = TD->A.reg();
        P.Scale = 1;
        HaveIndex = true;
        return true;
      }
      return false;
    };

    AddrPattern P;
    bool HaveBase = false, HaveIndex = false;
    if (!Classify(AddrDef->A.reg(), P, HaveBase, HaveIndex))
      return std::nullopt;
    if (!Classify(AddrDef->B.reg(), P, HaveBase, HaveIndex))
      return std::nullopt;
    if (!HaveBase || !HaveIndex || P.Scale == 0)
      return std::nullopt;

    // No IV increment may execute between the address chain's uses of IV
    // and the reference itself (the IV value must be the same at both
    // points). The chain's earliest instruction is the scale computation
    // or the add; scan from there to the use.
    size_t ChainStart = *DefIdx.at(AddrReg.Id);
    const InductionVar *IV = LSI.ivFor(P.IV);
    for (size_t K = ChainStart; K < UseIdx; ++K)
      for (size_t IncIdx : IV->IncIdxs)
        if (IncIdx == K)
          return std::nullopt;
    // Also between a scale temp and the add — conservatively require the
    // whole window [min(def of scale temp), UseIdx] to be increment-free.
    for (const Operand *O : {&AddrDef->A, &AddrDef->B}) {
      auto It = DefIdx.find(O->reg().Id);
      if (It == DefIdx.end() || !It->second)
        continue;
      for (size_t K = *It->second; K < UseIdx; ++K)
        for (size_t IncIdx : IV->IncIdxs)
          if (IncIdx == K)
            return std::nullopt;
    }
    return P;
  }

  /// Materializes the derived pointer: preheader init + an advance beside
  /// every increment of the driving IV.
  Reg createPointer(Loop &L, BasicBlock *Preheader, BasicBlock *Body,
                    const LoopScalarInfo &LSI, const AddrPattern &P) {
    (void)L;
    Reg Ptr = F.newReg();
    const InductionVar *IV = LSI.ivFor(P.IV);

    // Preheader: Ptr = Base + IV*Scale (IV holds its entry value there).
    {
      size_t InsertAt = Preheader->size() - 1; // before the terminator
      Reg Scaled = F.newReg();
      Instruction MulI;
      MulI.Op = Opcode::Mul;
      MulI.Dst = Scaled;
      MulI.A = P.IV;
      MulI.B = Operand::imm(P.Scale);
      Preheader->insertAt(InsertAt, std::move(MulI));
      Instruction AddI;
      AddI.Op = Opcode::Add;
      AddI.Dst = Ptr;
      AddI.A = P.Base;
      AddI.B = Scaled;
      Preheader->insertAt(InsertAt + 1, std::move(AddI));
    }

    // Body: advance the pointer right after each IV increment, by that
    // increment's step times the scale.
    // Collect (position, step) first; inserting invalidates indices.
    std::vector<std::pair<size_t, int64_t>> Incs;
    for (size_t IncIdx : IV->IncIdxs) {
      const Instruction &Inc = Body->insts()[IncIdx];
      int64_t Step = 0;
      if (Inc.Op == Opcode::Add)
        Step = Inc.A.isImm() ? Inc.A.imm() : Inc.B.imm();
      else if (Inc.Op == Opcode::Sub)
        Step = -Inc.B.imm();
      Incs.push_back({IncIdx, Step});
    }
    for (size_t K = Incs.size(); K-- > 0;) {
      Instruction Adv;
      Adv.Op = Opcode::Add;
      Adv.Dst = Ptr;
      Adv.A = Ptr;
      Adv.B = Operand::imm(Incs[K].second * P.Scale);
      Body->insertAt(Incs[K].first + 1, std::move(Adv));
    }
    return Ptr;
  }
};

} // namespace

StrengthReduceStats vpo::strengthReduce(Function &F) {
  return StrengthReducePass(F).run();
}
