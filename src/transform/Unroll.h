//===- transform/Unroll.h - Loop unrolling for coalescing --------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// UnRollLoopIfProfitable from the paper's Fig. 2 (line 7). Unrolling
/// exposes narrow, consecutive memory references that the coalescer merges
/// into wide references.
///
/// Shape of the transformed code (the paper's Fig. 5 runs the loop body
/// "n mod unrollfactor" times in a rolled copy; we place that copy as an
/// epilogue so the unrolled main loop starts at the arrays' base addresses
/// — the alignment phase the coalescer's `base & (wide-1)` checks test):
///
///   preheader ─► setup: rem = (limit-iv) & (factor*step-1)
///                       mainLimit = limit -/+ rem
///                  │ span not a multiple of step ─► original rolled loop
///                  │ iv CC mainLimit ─► unrolled main loop ─► epi guard
///                  │ else ───────────────────────────────────► epi guard
///   epi guard: iv CC limit? ─► rolled epilogue ─► exit, else exit
///
/// The original rolled body is kept intact: the coalescer later uses it as
/// the safe fallback of its run-time checks (at check time the induction
/// variables still hold their initial values).
///
/// The unrolled body contains `factor` copies of the original body with
/// induction-variable increments deleted, address displacements adjusted by
/// the accumulated step, per-copy temporaries renamed (so the scheduler is
/// not serialized by false dependences), and a single combined increment
/// per induction variable at the end.
///
/// The i-cache heuristic: "if the original loop fits in the instruction
/// cache, the unrolled loop must fit as well" (paper section 2.2).
///
//===----------------------------------------------------------------------===//

#ifndef VPO_TRANSFORM_UNROLL_H
#define VPO_TRANSFORM_UNROLL_H

#include "ir/Instruction.h"
#include "sched/RegPressure.h"

#include <vector>

namespace vpo {

class BasicBlock;
class Function;
class Loop;
class LoopScalarInfo;
class TargetMachine;

/// Result of a successful unroll.
struct UnrollResult {
  BasicBlock *RolledBody = nullptr;   ///< the original loop (safe version)
  BasicBlock *UnrolledBody = nullptr; ///< the new unrolled loop
  BasicBlock *RemainderBody = nullptr;///< runs (trips mod factor) iterations
  BasicBlock *Setup = nullptr;        ///< remainder-count computation
  BasicBlock *Guard = nullptr;        ///< unrolled loop's preheader/guard
  unsigned Factor = 1;
  /// True when the setup emitted the extra "span not a multiple of |step|"
  /// guard branch (paper section 2.2's divisibility dispatch): only needed
  /// for strides > 1, where the span can be inexact.
  bool InexactStrideGuard = false;
};

/// Reasons unrolling can be refused (reported for statistics/tests).
enum class UnrollFailure {
  None,
  NotSingleBlock,
  NoPreheader,
  NoCanonicalBound,
  UnsupportedBound,    ///< condition not a strict </> matching the IV step
  IVUsedOutsideAddress,///< IV read by a non-address, non-increment use
  ICacheLimit,
  BadFactor,
};

/// \returns a printable name for an unroll failure.
const char *unrollFailureName(UnrollFailure F);

/// Checks whether \p L can be unrolled by \p Factor on \p TM.
/// \p IgnoreICache disables the i-cache-fit requirement (used by the
/// ablation that measures what the heuristic protects against).
UnrollFailure canUnrollLoop(const Function &F, const Loop &L,
                            const LoopScalarInfo &LSI, unsigned Factor,
                            const TargetMachine &TM,
                            bool IgnoreICache = false);

/// Unrolls \p L by \p Factor. \p Result is filled on success.
/// On failure the function is left unchanged.
UnrollFailure unrollLoop(Function &F, const Loop &L,
                         const LoopScalarInfo &LSI, unsigned Factor,
                         const TargetMachine &TM, UnrollResult &Result,
                         bool IgnoreICache = false);

/// The paper's i-cache heuristic: the largest power-of-two factor (capped
/// at \p MaxFactor) whose unrolled body still fits in the target's
/// instruction cache; returns 1 if even factor 2 does not fit.
unsigned chooseUnrollFactor(const Loop &L, const TargetMachine &TM,
                            unsigned MaxFactor);

/// One partition of coalescable narrow references, as the coalescer's
/// planning pass sees it: the pressure clamp's saving model uses these to
/// estimate the bus cycles coalescing recovers at a given unroll factor.
struct CoalescableGroup {
  unsigned NarrowBytes = 0;      ///< width of each narrow reference
  unsigned WideBytes = 0;        ///< bytes one wide reference would cover
  unsigned RefsPerIteration = 1; ///< narrow references per rolled iteration
};

/// What the pressure clamp decided for one loop.
struct PressureClampInfo {
  /// The accepted factor (== the requested factor when not clamped).
  unsigned Factor = 1;
  /// True when the clamp refused the requested factor.
  bool Clamped = false;
  /// Schedule-order max-live at the accepted factor (when Factor >= 2).
  PressureEstimate Pressure;
  /// The estimate that justified the clamp: pressure, modeled spill
  /// cycles, and modeled coalescing saving at the *refused* factor.
  PressureEstimate RefusedPressure;
  uint64_t RefusedSpillCycles = 0;
  uint64_t RefusedSavingCycles = 0;
  /// Modeled spill cycles of one rolled (factor-1) iteration — the
  /// baseline the marginal acceptance rule scales by the candidate
  /// factor. Non-zero when the loop body spills even without unrolling.
  uint64_t RolledSpillCycles = 0;
};

/// Register-pressure-aware factor clamp: simulates the unrolled body of
/// \p L at \p Factor (and, on refusal, each halved candidate) in a scratch
/// function, schedules it, and measures max-live under the schedule.
/// A factor Fac is refused when its modeled spill cost exceeds the
/// *marginal* bound Fac * Spill(rolled) + Saving(Fac): a loop that spills
/// even rolled pays Fac times its baseline spill charge anyway (the body
/// executes once per iteration either way), so only spill traffic beyond
/// that — pressure the unrolling itself created — counts against the bus
/// cycles coalescing recovers at Fac. The
/// function is read-only on \p F: all simulation happens on scratch blocks
/// in a private function, so block-name counters and the register
/// allocator of \p F are untouched.
PressureClampInfo clampUnrollFactorForPressure(
    const Function &F, const Loop &L, const LoopScalarInfo &LSI,
    unsigned Factor, const TargetMachine &TM,
    const std::vector<CoalescableGroup> &Groups);

} // namespace vpo

#endif // VPO_TRANSFORM_UNROLL_H
