//===- transform/Utils.cpp ------------------------------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "transform/Utils.h"

#include "ir/Function.h"

using namespace vpo;

BasicBlock *vpo::cloneBlock(Function &F, const BasicBlock &Src,
                            const std::string &Name) {
  BasicBlock *Clone = F.addBlock(F.uniqueBlockName(Name));
  for (Instruction I : Src.insts()) {
    if (I.TrueTarget == &Src)
      I.TrueTarget = Clone;
    if (I.FalseTarget == &Src)
      I.FalseTarget = Clone;
    Clone->append(std::move(I));
  }
  return Clone;
}

void vpo::retargetBranches(Function &F, BasicBlock *From, BasicBlock *To,
                           const BasicBlock *ExceptIn) {
  for (const auto &BB : F.blocks()) {
    if (BB.get() == ExceptIn)
      continue;
    for (Instruction &I : BB->insts()) {
      if (I.TrueTarget == From)
        I.TrueTarget = To;
      if (I.FalseTarget == From)
        I.FalseTarget = To;
    }
  }
}
