//===- transform/Utils.h - Shared transformation utilities ------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#ifndef VPO_TRANSFORM_UTILS_H
#define VPO_TRANSFORM_UTILS_H

#include <string>

namespace vpo {

class BasicBlock;
class Function;

/// Clones \p Src into a new block of \p F named \p Name (uniqued).
/// Branch targets pointing at \p Src itself (a self loop's back edge) are
/// retargeted to the clone; all other targets are kept. This is the
/// DoReplication step of the paper's Fig. 3.
BasicBlock *cloneBlock(Function &F, const BasicBlock &Src,
                       const std::string &Name);

/// Retargets every branch in \p F that points at \p From to point at \p To,
/// except branches inside blocks listed in \p ExceptIn.
void retargetBranches(Function &F, BasicBlock *From, BasicBlock *To,
                      const BasicBlock *ExceptIn = nullptr);

} // namespace vpo

#endif // VPO_TRANSFORM_UTILS_H
