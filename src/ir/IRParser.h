//===- ir/IRParser.h - Parser for the textual RTL form ----------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the textual format produced by ir/IRPrinter.h. Used by tests
/// (golden IR comparisons, hand-written loop fixtures) and by the examples.
///
//===----------------------------------------------------------------------===//

#ifndef VPO_IR_IRPARSER_H
#define VPO_IR_IRPARSER_H

#include "support/Diagnostics.h"

#include <memory>
#include <string>
#include <vector>

namespace vpo {

class Module;

/// Parses \p Text as a module. On failure returns nullptr and, if
/// \p ErrorMsg is non-null, stores a line-numbered diagnostic into it.
std::unique_ptr<Module> parseModule(const std::string &Text,
                                    std::string *ErrorMsg = nullptr);

/// Structured-diagnostic form for recoverable callers (the fuzzer and the
/// test-case reducer feed this partial and deliberately broken programs).
/// On failure returns nullptr and appends ErrorCode::ParseError
/// diagnostics to \p Diags (Pass = "ir-parser", Function = the function
/// being parsed when known, Message carries the 1-based line number).
/// Never aborts on malformed input; pathological register ids are
/// rejected (see maxParsedRegId) instead of poisoning the allocator
/// bound that downstream passes size their tables by.
std::unique_ptr<Module> parseModule(const std::string &Text,
                                    std::vector<Diagnostic> &Diags);

/// Largest register id the text parser accepts. Inputs beyond this are
/// malformed by definition: no generated or printed kernel comes close,
/// and admitting arbitrary ids would let one corrupt token make every
/// downstream pass allocate gigabyte-sized register tables.
constexpr unsigned maxParsedRegId = 1u << 20;

} // namespace vpo

#endif // VPO_IR_IRPARSER_H
