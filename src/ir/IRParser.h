//===- ir/IRParser.h - Parser for the textual RTL form ----------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the textual format produced by ir/IRPrinter.h. Used by tests
/// (golden IR comparisons, hand-written loop fixtures) and by the examples.
///
//===----------------------------------------------------------------------===//

#ifndef VPO_IR_IRPARSER_H
#define VPO_IR_IRPARSER_H

#include <memory>
#include <string>

namespace vpo {

class Module;

/// Parses \p Text as a module. On failure returns nullptr and, if
/// \p ErrorMsg is non-null, stores a line-numbered diagnostic into it.
std::unique_ptr<Module> parseModule(const std::string &Text,
                                    std::string *ErrorMsg = nullptr);

} // namespace vpo

#endif // VPO_IR_IRPARSER_H
