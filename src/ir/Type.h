//===- ir/Type.h - Memory widths and value classes -------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Width and value-class definitions for the RTL IR. The paper's
/// transformation is defined in terms of memory-reference *widths*:
/// a "narrow" reference of N bits is coalesced into a "wide" one of N*c
/// bits, where the meaning of narrow/wide is target-relative.
///
//===----------------------------------------------------------------------===//

#ifndef VPO_IR_TYPE_H
#define VPO_IR_TYPE_H

#include <cassert>
#include <cstdint>

namespace vpo {

/// Width of a memory reference or register field, in bytes.
enum class MemWidth : uint8_t {
  W1 = 1, ///< byte
  W2 = 2, ///< shortword (paper's 16-bit samples)
  W4 = 4, ///< longword
  W8 = 8, ///< quadword (DEC Alpha terminology)
};

/// \returns the size of \p W in bytes.
constexpr unsigned widthBytes(MemWidth W) { return static_cast<unsigned>(W); }

/// \returns the size of \p W in bits.
constexpr unsigned widthBits(MemWidth W) {
  return static_cast<unsigned>(W) * 8;
}

/// \returns the MemWidth for a byte count, which must be 1, 2, 4, or 8.
constexpr MemWidth widthFromBytes(unsigned Bytes) {
  assert((Bytes == 1 || Bytes == 2 || Bytes == 4 || Bytes == 8) &&
         "invalid width");
  return static_cast<MemWidth>(Bytes);
}

/// \returns true if \p Bytes is a representable memory width.
constexpr bool isValidWidthBytes(unsigned Bytes) {
  return Bytes == 1 || Bytes == 2 || Bytes == 4 || Bytes == 8;
}

/// \returns a short mnemonic for the width ("i8", "i16", ...).
const char *widthName(MemWidth W);

/// \returns a short mnemonic for a float width ("f32"/"f64").
const char *floatWidthName(MemWidth W);

} // namespace vpo

#endif // VPO_IR_TYPE_H
