//===- ir/Verifier.h - Structural IR checks ---------------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural well-formedness checks run after every transformation pass.
/// The paper's transformation replicates and rewrites whole loops; the
/// verifier is the first line of defence against malformed rewrites.
///
//===----------------------------------------------------------------------===//

#ifndef VPO_IR_VERIFIER_H
#define VPO_IR_VERIFIER_H

#include "support/Diagnostics.h"

#include <string>
#include <vector>

namespace vpo {

class Function;
class Module;

/// Checks \p F for structural validity:
///  - every block is non-empty and ends in exactly one terminator,
///    with no terminator in the middle;
///  - all branch targets are blocks of \p F;
///  - all register ids are below the function's allocator bound and nonzero
///    where required;
///  - memory instructions have a valid base register and width;
///  - FP memory widths are 4 or 8; LoadWideU width is at least 2;
///  - Select/InsertF have all three operands, Br has both operands.
///
/// Appends human-readable problems to \p Problems; returns true if none.
bool verifyFunction(const Function &F, std::vector<std::string> &Problems);

/// Verifies every function in \p M.
bool verifyModule(const Module &M, std::vector<std::string> &Problems);

/// Structured form of verifyFunction for recoverable callers: every
/// problem becomes an ErrorCode::InvalidIR Diagnostic tagged with
/// \p PassName (the pass that just ran) and the function's name. An empty
/// result means the function verified cleanly. The guarded pipeline
/// driver consumes this to roll back a pass instead of aborting.
std::vector<Diagnostic> verifyFunctionDiagnostics(const Function &F,
                                                  const char *PassName);

/// Convenience: verify and fatalError with a full report on failure.
/// \p Context names the pass that just ran, for the diagnostic. Reserved
/// for invariants *inside* a transformation (mid-pass sanity checks);
/// pipeline-level verification goes through verifyFunctionDiagnostics so
/// a bad pass degrades instead of killing the process.
void verifyOrDie(const Function &F, const char *Context);

} // namespace vpo

#endif // VPO_IR_VERIFIER_H
