//===- ir/Verifier.h - Structural IR checks ---------------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural well-formedness checks run after every transformation pass.
/// The paper's transformation replicates and rewrites whole loops; the
/// verifier is the first line of defence against malformed rewrites.
///
//===----------------------------------------------------------------------===//

#ifndef VPO_IR_VERIFIER_H
#define VPO_IR_VERIFIER_H

#include <string>
#include <vector>

namespace vpo {

class Function;
class Module;

/// Checks \p F for structural validity:
///  - every block is non-empty and ends in exactly one terminator,
///    with no terminator in the middle;
///  - all branch targets are blocks of \p F;
///  - all register ids are below the function's allocator bound and nonzero
///    where required;
///  - memory instructions have a valid base register and width;
///  - FP memory widths are 4 or 8; LoadWideU width is at least 2;
///  - Select/InsertF have all three operands, Br has both operands.
///
/// Appends human-readable problems to \p Problems; returns true if none.
bool verifyFunction(const Function &F, std::vector<std::string> &Problems);

/// Verifies every function in \p M.
bool verifyModule(const Module &M, std::vector<std::string> &Problems);

/// Convenience: verify and fatalError with a full report on failure.
/// \p Context names the pass that just ran, for the diagnostic.
void verifyOrDie(const Function &F, const char *Context);

} // namespace vpo

#endif // VPO_IR_VERIFIER_H
