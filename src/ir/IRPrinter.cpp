//===- ir/IRPrinter.cpp ---------------------------------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "ir/IRPrinter.h"

#include "ir/Function.h"
#include "support/Error.h"
#include "support/StringUtils.h"

using namespace vpo;

namespace {

std::string printOperand(const Operand &O) {
  switch (O.kind()) {
  case Operand::Kind::None:
    return "_";
  case Operand::Kind::Register:
    return "r" + std::to_string(O.reg().Id);
  case Operand::Kind::Immediate:
    return std::to_string(O.imm());
  }
  vpo_unreachable("invalid operand kind");
}

std::string printAddress(const Address &A) {
  std::string S = "[r" + std::to_string(A.Base.Id);
  if (A.Disp > 0)
    S += "+" + std::to_string(A.Disp);
  else if (A.Disp < 0)
    S += std::to_string(A.Disp);
  S += "]";
  return S;
}

std::string typeSuffix(const Instruction &I) {
  if (I.IsFloat)
    return std::string(".") + floatWidthName(I.W);
  std::string S = std::string(".") + widthName(I.W);
  return S;
}

std::string signSuffix(const Instruction &I) {
  return I.SignExtend ? ".s" : ".u";
}

} // namespace

std::string vpo::printInstruction(const Instruction &I) {
  std::string Dst =
      I.Dst.isValid() ? ("r" + std::to_string(I.Dst.Id) + " = ") : "";
  switch (I.Op) {
  case Opcode::Mov:
  case Opcode::CvtIF:
  case Opcode::CvtFI:
    return Dst + opcodeName(I.Op) + " " + printOperand(I.A);
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::DivS:
  case Opcode::DivU:
  case Opcode::RemS:
  case Opcode::RemU:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::ShrA:
  case Opcode::ShrL:
  case Opcode::FAdd:
  case Opcode::FSub:
  case Opcode::FMul:
  case Opcode::FDiv:
    return Dst + opcodeName(I.Op) + " " + printOperand(I.A) + ", " +
           printOperand(I.B);
  case Opcode::CmpSet:
    return Dst + strformat("cmpset.%s %s, %s", condName(I.CC),
                           printOperand(I.A).c_str(),
                           printOperand(I.B).c_str());
  case Opcode::Select:
    return Dst + "select " + printOperand(I.A) + ", " + printOperand(I.B) +
           ", " + printOperand(I.C);
  case Opcode::Ext:
    return Dst + "ext" + typeSuffix(I) + signSuffix(I) + " " +
           printOperand(I.A);
  case Opcode::Load:
    if (I.IsFloat)
      return Dst + "load" + typeSuffix(I) + " " + printAddress(I.Addr);
    return Dst + "load" + typeSuffix(I) + signSuffix(I) + " " +
           printAddress(I.Addr);
  case Opcode::LoadWideU:
    return Dst + "loadwu" + typeSuffix(I) + " " + printAddress(I.Addr);
  case Opcode::Store:
    return "store" + typeSuffix(I) + " " + printAddress(I.Addr) + ", " +
           printOperand(I.A);
  case Opcode::ExtractF:
    return Dst + "extractf" + typeSuffix(I) + signSuffix(I) + " " +
           printOperand(I.A) + ", " + printOperand(I.B);
  case Opcode::ExtQHi:
    return Dst + "extqhi " + printOperand(I.A) + ", " + printOperand(I.B);
  case Opcode::InsertF:
    return Dst + "insertf" + typeSuffix(I) + " " + printOperand(I.A) + ", " +
           printOperand(I.B) + ", " + printOperand(I.C);
  case Opcode::Br:
    return strformat("br.%s %s, %s, %s, %s", condName(I.CC),
                     printOperand(I.A).c_str(), printOperand(I.B).c_str(),
                     I.TrueTarget ? I.TrueTarget->name().c_str() : "<null>",
                     I.FalseTarget ? I.FalseTarget->name().c_str()
                                   : "<null>");
  case Opcode::Jmp:
    return strformat("jmp %s",
                     I.TrueTarget ? I.TrueTarget->name().c_str() : "<null>");
  case Opcode::Ret:
    if (I.A.isNone())
      return "ret";
    return "ret " + printOperand(I.A);
  }
  vpo_unreachable("invalid opcode");
}

std::string vpo::printFunction(const Function &F) {
  std::string Out = "func @" + F.name() + "(";
  for (size_t I = 0; I < F.params().size(); ++I) {
    if (I)
      Out += ", ";
    Out += "r" + std::to_string(F.params()[I].Id);
  }
  Out += ") {\n";
  for (const auto &BB : F.blocks()) {
    Out += BB->name() + ":\n";
    for (const Instruction &I : BB->insts())
      Out += "  " + printInstruction(I) + "\n";
  }
  Out += "}\n";
  return Out;
}

std::string vpo::printModule(const Module &M) {
  std::string Out;
  for (const auto &F : M.functions()) {
    if (!Out.empty())
      Out += "\n";
    Out += printFunction(*F);
  }
  return Out;
}
