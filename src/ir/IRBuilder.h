//===- ir/IRBuilder.h - Convenience construction API ------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fluent helper for emitting RTL instructions into a block. Value-producing
/// helpers allocate a fresh virtual register; the *To variants redefine an
/// existing register, which RTL code (not SSA) needs for accumulators and
/// induction variables like `r[4] = r[4] + r[1]` in the paper's Figure 1.
///
//===----------------------------------------------------------------------===//

#ifndef VPO_IR_IRBUILDER_H
#define VPO_IR_IRBUILDER_H

#include "ir/Function.h"

namespace vpo {

class IRBuilder {
public:
  explicit IRBuilder(Function *F) : F(F) {}

  Function *function() const { return F; }
  BasicBlock *block() const { return BB; }
  void setInsertBlock(BasicBlock *NewBB) { BB = NewBB; }

  /// Creates a block and makes it the insertion point.
  BasicBlock *createBlock(const std::string &Name) {
    BB = F->addBlock(F->uniqueBlockName(Name));
    return BB;
  }

  /// Emits \p I into the current block.
  void emit(Instruction I) {
    assert(BB && "no insertion block set");
    BB->append(std::move(I));
  }

  // --- Data movement and ALU -------------------------------------------

  Reg mov(Operand A) { return alu(Opcode::Mov, A, Operand()); }
  void movTo(Reg Dst, Operand A) { aluTo(Dst, Opcode::Mov, A, Operand()); }

  Reg add(Operand A, Operand B) { return alu(Opcode::Add, A, B); }
  Reg sub(Operand A, Operand B) { return alu(Opcode::Sub, A, B); }
  Reg mul(Operand A, Operand B) { return alu(Opcode::Mul, A, B); }
  Reg divS(Operand A, Operand B) { return alu(Opcode::DivS, A, B); }
  Reg remS(Operand A, Operand B) { return alu(Opcode::RemS, A, B); }
  Reg remU(Operand A, Operand B) { return alu(Opcode::RemU, A, B); }
  Reg and_(Operand A, Operand B) { return alu(Opcode::And, A, B); }
  Reg or_(Operand A, Operand B) { return alu(Opcode::Or, A, B); }
  Reg xor_(Operand A, Operand B) { return alu(Opcode::Xor, A, B); }
  Reg shl(Operand A, Operand B) { return alu(Opcode::Shl, A, B); }
  Reg shrA(Operand A, Operand B) { return alu(Opcode::ShrA, A, B); }
  Reg shrL(Operand A, Operand B) { return alu(Opcode::ShrL, A, B); }

  void addTo(Reg Dst, Operand A, Operand B) {
    aluTo(Dst, Opcode::Add, A, B);
  }

  /// Generic two-operand ALU instruction defining a fresh register.
  Reg alu(Opcode Op, Operand A, Operand B) {
    Reg Dst = F->newReg();
    aluTo(Dst, Op, A, B);
    return Dst;
  }

  /// Generic two-operand ALU instruction redefining \p Dst.
  void aluTo(Reg Dst, Opcode Op, Operand A, Operand B) {
    Instruction I;
    I.Op = Op;
    I.Dst = Dst;
    I.A = A;
    I.B = B;
    emit(std::move(I));
  }

  Reg cmpSet(CondCode CC, Operand A, Operand B) {
    Reg Dst = F->newReg();
    Instruction I;
    I.Op = Opcode::CmpSet;
    I.Dst = Dst;
    I.A = A;
    I.B = B;
    I.CC = CC;
    emit(std::move(I));
    return Dst;
  }

  Reg select(Operand Pred, Operand IfTrue, Operand IfFalse) {
    Reg Dst = F->newReg();
    Instruction I;
    I.Op = Opcode::Select;
    I.Dst = Dst;
    I.A = Pred;
    I.B = IfTrue;
    I.C = IfFalse;
    emit(std::move(I));
    return Dst;
  }

  Reg ext(Operand A, MemWidth W, bool Sign) {
    Reg Dst = F->newReg();
    Instruction I;
    I.Op = Opcode::Ext;
    I.Dst = Dst;
    I.A = A;
    I.W = W;
    I.SignExtend = Sign;
    emit(std::move(I));
    return Dst;
  }

  // --- Floating point ---------------------------------------------------

  Reg fadd(Operand A, Operand B) { return alu(Opcode::FAdd, A, B); }
  Reg fsub(Operand A, Operand B) { return alu(Opcode::FSub, A, B); }
  Reg fmul(Operand A, Operand B) { return alu(Opcode::FMul, A, B); }
  Reg fdiv(Operand A, Operand B) { return alu(Opcode::FDiv, A, B); }
  Reg cvtIF(Operand A) { return alu(Opcode::CvtIF, A, Operand()); }
  Reg cvtFI(Operand A) { return alu(Opcode::CvtFI, A, Operand()); }

  // --- Memory -----------------------------------------------------------

  Reg load(Address Addr, MemWidth W, bool Sign, bool IsFloat = false) {
    Reg Dst = F->newReg();
    loadTo(Dst, Addr, W, Sign, IsFloat);
    return Dst;
  }

  void loadTo(Reg Dst, Address Addr, MemWidth W, bool Sign,
              bool IsFloat = false) {
    Instruction I;
    I.Op = Opcode::Load;
    I.Dst = Dst;
    I.Addr = Addr;
    I.W = W;
    I.SignExtend = Sign;
    I.IsFloat = IsFloat;
    emit(std::move(I));
  }

  void store(Address Addr, Operand Val, MemWidth W, bool IsFloat = false) {
    Instruction I;
    I.Op = Opcode::Store;
    I.A = Val;
    I.Addr = Addr;
    I.W = W;
    I.IsFloat = IsFloat;
    emit(std::move(I));
  }

  Reg loadWideU(Address Addr, MemWidth W) {
    Reg Dst = F->newReg();
    Instruction I;
    I.Op = Opcode::LoadWideU;
    I.Dst = Dst;
    I.Addr = Addr;
    I.W = W;
    emit(std::move(I));
    return Dst;
  }

  Reg extractF(Operand Src, Operand ByteOff, MemWidth W, bool Sign) {
    Reg Dst = F->newReg();
    Instruction I;
    I.Op = Opcode::ExtractF;
    I.Dst = Dst;
    I.A = Src;
    I.B = ByteOff;
    I.W = W;
    I.SignExtend = Sign;
    emit(std::move(I));
    return Dst;
  }

  Reg insertF(Operand Src, Operand ByteOff, Operand Val, MemWidth W) {
    Reg Dst = F->newReg();
    Instruction I;
    I.Op = Opcode::InsertF;
    I.Dst = Dst;
    I.A = Src;
    I.B = ByteOff;
    I.C = Val;
    I.W = W;
    emit(std::move(I));
    return Dst;
  }

  // --- Control flow ------------------------------------------------------

  void br(CondCode CC, Operand A, Operand B, BasicBlock *IfTrue,
          BasicBlock *IfFalse) {
    Instruction I;
    I.Op = Opcode::Br;
    I.A = A;
    I.B = B;
    I.CC = CC;
    I.TrueTarget = IfTrue;
    I.FalseTarget = IfFalse;
    emit(std::move(I));
  }

  void jmp(BasicBlock *Target) {
    Instruction I;
    I.Op = Opcode::Jmp;
    I.TrueTarget = Target;
    emit(std::move(I));
  }

  void ret(Operand A = Operand()) {
    Instruction I;
    I.Op = Opcode::Ret;
    I.A = A;
    emit(std::move(I));
  }

private:
  Function *F;
  BasicBlock *BB = nullptr;
};

} // namespace vpo

#endif // VPO_IR_IRBUILDER_H
