//===- ir/Snapshot.h - Function checkpoint / rollback -----------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Checkpoint / rollback support for the guarded pipeline driver, so a
/// pass that produces malformed IR can be *rolled back* instead of
/// aborting the process. Two mechanisms:
///
///  * **SnapshotJournal** (what the driver uses): an undo journal armed on
///    the function before the pass runs. Arming is O(blocks) — it records
///    the layout order and sets a per-block hook; the first mutation of
///    each block saves that block's pre-image (copy-on-first-write at
///    block granularity). A pass that touches 2 of 50 blocks copies 2
///    blocks, not 50; a pass that touches nothing copies nothing.
///    rollback() restores the pre-images, the original layout order, and
///    re-owns any removed blocks (they are kept alive inside the journal
///    precisely so arm-time branch-target pointers stay valid); blocks
///    added since arm() are destroyed. commit() simply detaches and frees
///    the journal state.
///
///  * **FunctionSnapshot**: the original eager full copy, kept as the
///    simple reference implementation the journal is tested against (and
///    for tooling that genuinely wants a detached value-semantic copy).
///    Function itself is non-copyable (blocks own instructions that point
///    back at blocks); the snapshot stores instructions with branch
///    targets re-encoded as block indices, and restore() rebuilds the
///    block list in place.
///
/// Neither mechanism captures parameters or the register allocator bound:
/// registers allocated by an undone pass simply become unused ids.
///
//===----------------------------------------------------------------------===//

#ifndef VPO_IR_SNAPSHOT_H
#define VPO_IR_SNAPSHOT_H

#include "ir/Instruction.h"

#include <memory>
#include <string>
#include <vector>

namespace vpo {

class BasicBlock;
class Function;

class FunctionSnapshot {
public:
  /// Captures the code of \p F (blocks, instructions, branch topology).
  static FunctionSnapshot take(const Function &F);

  /// Restores \p F's code to the captured state. \p F must be the same
  /// function the snapshot was taken from (parameters are not captured).
  /// Every BasicBlock pointer previously obtained from \p F is
  /// invalidated.
  void restore(Function &F) const;

  size_t blockCount() const { return Blocks.size(); }

private:
  struct BlockState {
    std::string Name;
    std::vector<Instruction> Insts;
    /// Per-instruction (TrueTarget, FalseTarget) as block indices;
    /// -1 encodes null.
    std::vector<std::pair<int, int>> Targets;
  };
  std::vector<BlockState> Blocks;
};

/// Copy-on-first-write undo journal for one guarded pass over one
/// Function. Lifecycle: arm() -> (pass mutates the function) -> commit()
/// or rollback(). The armed Function must outlive the journal (or be
/// detached first); one function supports at most one armed journal at a
/// time.
class SnapshotJournal {
public:
  SnapshotJournal() = default;
  ~SnapshotJournal();

  SnapshotJournal(const SnapshotJournal &) = delete;
  SnapshotJournal &operator=(const SnapshotJournal &) = delete;

  /// Attaches to \p Fn: records the current block layout and hooks every
  /// block so its first mutation saves a pre-image. O(blocks), no
  /// instruction copies.
  void arm(Function &Fn);

  /// Accepts the pass's changes: detaches all hooks and destroys any
  /// blocks the pass removed (nothing references them any more).
  void commit();

  /// Undoes everything since arm(): restores each mutated block's
  /// pre-image, the original layout order, and ownership of removed
  /// blocks; destroys blocks added since arm(). Detaches when done.
  void rollback();

  bool armed() const { return F != nullptr; }

  /// Number of blocks whose pre-image has been saved so far (i.e. blocks
  /// the pass actually touched). Exposed for tests and benchmarks.
  size_t savedBlockCount() const { return PreImages.size(); }

private:
  friend class BasicBlock;
  friend class Function;

  /// BasicBlock::preMutate() lands here (out of line, once per block per
  /// pass): saves \p BB's pre-image.
  void noteMutation(BasicBlock &BB);
  /// Function::addBlock/addBlockBefore notify the journal of \p BB.
  void noteAdded(BasicBlock *BB);
  /// Function::removeBlock hands ownership of \p BB to the journal so the
  /// pointer stays valid for a possible rollback.
  void noteRemoved(std::unique_ptr<BasicBlock> BB);

  /// Clears hooks on all blocks the journal knows about and resets state.
  void detach();

  struct PreImage {
    BasicBlock *BB;
    std::string Name;
    std::vector<Instruction> Insts;
  };

  Function *F = nullptr;
  std::vector<BasicBlock *> OriginalLayout;
  std::vector<PreImage> PreImages;
  std::vector<std::unique_ptr<BasicBlock>> Removed; ///< kept alive for rollback
};

} // namespace vpo

#endif // VPO_IR_SNAPSHOT_H
