//===- ir/Snapshot.h - Function checkpoint / rollback -----------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A value-semantic checkpoint of a Function's code, taken by the guarded
/// pipeline driver before each pass so a pass that produces malformed IR
/// can be *rolled back* instead of aborting the process. Function itself
/// is non-copyable (blocks own instructions that point back at blocks);
/// the snapshot stores instructions with branch targets re-encoded as
/// block indices, and restore() rebuilds the block list in place —
/// parameters and the register allocator bound are left untouched, so
/// registers allocated by the undone pass simply become unused ids.
///
//===----------------------------------------------------------------------===//

#ifndef VPO_IR_SNAPSHOT_H
#define VPO_IR_SNAPSHOT_H

#include "ir/Instruction.h"

#include <string>
#include <vector>

namespace vpo {

class Function;

class FunctionSnapshot {
public:
  /// Captures the code of \p F (blocks, instructions, branch topology).
  static FunctionSnapshot take(const Function &F);

  /// Restores \p F's code to the captured state. \p F must be the same
  /// function the snapshot was taken from (parameters are not captured).
  /// Every BasicBlock pointer previously obtained from \p F is
  /// invalidated.
  void restore(Function &F) const;

  size_t blockCount() const { return Blocks.size(); }

private:
  struct BlockState {
    std::string Name;
    std::vector<Instruction> Insts;
    /// Per-instruction (TrueTarget, FalseTarget) as block indices;
    /// -1 encodes null.
    std::vector<std::pair<int, int>> Targets;
  };
  std::vector<BlockState> Blocks;
};

} // namespace vpo

#endif // VPO_IR_SNAPSHOT_H
