//===- ir/Function.h - Basic blocks, functions, modules --------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Containers for RTL code: BasicBlock (a label plus a straight-line list of
/// instructions ending in a terminator), Function (an owned list of blocks
/// plus a virtual register allocator), and Module.
///
//===----------------------------------------------------------------------===//

#ifndef VPO_IR_FUNCTION_H
#define VPO_IR_FUNCTION_H

#include "ir/Instruction.h"

#include <memory>
#include <string>
#include <vector>

namespace vpo {

class Function;
class SnapshotJournal;

namespace detail {
/// Process-wide monotonic counter backing Function::uid() and
/// Function::version(). Never reused, so a (uid, version) pair identifies
/// one revision of one live Function object for the lifetime of the
/// process — exactly what cross-run caches of derived forms (predecoded
/// streams, JIT code) need as a key that cannot suffer ABA across
/// Function destruction and reallocation.
uint64_t nextFunctionEpoch();
} // namespace detail

/// A basic block: named, single-entry, ending in exactly one terminator
/// (enforced by the Verifier, not the type).
///
/// Every mutating accessor funnels through preMutate(), which lets an
/// armed SnapshotJournal (ir/Snapshot.h) save the block's pre-image
/// lazily, on the block's first mutation under a guarded pass. With no
/// journal armed the hook is a single null-pointer test.
class BasicBlock {
public:
  BasicBlock(Function *Parent, std::string Name)
      : Parent(Parent), Name(std::move(Name)) {}

  Function *parent() const { return Parent; }
  const std::string &name() const { return Name; }
  void setName(std::string N) {
    preMutate();
    Name = std::move(N);
  }

  std::vector<Instruction> &insts() {
    preMutate();
    return Insts;
  }
  const std::vector<Instruction> &insts() const { return Insts; }

  bool empty() const { return Insts.empty(); }
  size_t size() const { return Insts.size(); }

  /// \returns the terminator, i.e. the last instruction. The block must be
  /// non-empty and well-formed.
  Instruction &terminator() {
    assert(!Insts.empty() && "terminator() on empty block");
    preMutate();
    return Insts.back();
  }
  const Instruction &terminator() const {
    assert(!Insts.empty() && "terminator() on empty block");
    return Insts.back();
  }

  /// Appends \p I to the block.
  void append(Instruction I) {
    preMutate();
    Insts.push_back(std::move(I));
  }

  /// Inserts \p I before position \p Pos.
  void insertAt(size_t Pos, Instruction I) {
    assert(Pos <= Insts.size() && "insert position out of range");
    preMutate();
    Insts.insert(Insts.begin() + static_cast<ptrdiff_t>(Pos), std::move(I));
  }

  /// Removes the instruction at \p Pos.
  void eraseAt(size_t Pos) {
    assert(Pos < Insts.size() && "erase position out of range");
    preMutate();
    Insts.erase(Insts.begin() + static_cast<ptrdiff_t>(Pos));
  }

  /// \returns the successor blocks implied by the terminator (0-2 blocks).
  std::vector<BasicBlock *> successors() const;

private:
  friend class SnapshotJournal;

  /// Journal hook: the first mutation under an armed journal saves this
  /// block's pre-image; later mutations cost one pointer test. Also bumps
  /// the parent function's version so cached derived forms (predecode /
  /// JIT, sim/ProgramCache.h) are invalidated. Defined after Function.
  void preMutate();
  void journalSave(); // out of line: the once-per-block slow path

  Function *Parent;
  std::string Name;
  std::vector<Instruction> Insts;
  SnapshotJournal *Journal = nullptr; ///< armed journal, if any
  bool JournalSaved = false;          ///< pre-image already captured
};

/// Optional compile-time facts about a parameter. The paper's point is that
/// for the interesting codes these facts are *unknown* at compile time
/// (forcing run-time alias and alignment checks); tests and ablations can
/// set them to exercise the static-analysis path.
struct ParamInfo {
  /// The pointed-to object overlaps no other parameter's object
  /// (C99 `restrict`-like).
  bool NoAlias = false;
  /// Known minimum alignment of the incoming value (1 = unknown).
  uint64_t KnownAlign = 1;
};

/// A function: parameters arrive in pre-allocated virtual registers; blocks
/// are owned in layout order; block 0 is the entry.
class Function {
public:
  explicit Function(std::string Name) : Name(std::move(Name)) {}

  Function(const Function &) = delete;
  Function &operator=(const Function &) = delete;

  const std::string &name() const { return Name; }

  /// Process-unique identity of this Function object (stable across its
  /// lifetime, never reused by another Function in this process).
  uint64_t uid() const { return Uid; }

  /// Monotonically increasing revision: bumped by every mutation of the
  /// function or any of its blocks (via BasicBlock::preMutate). Two
  /// observations of equal (uid, version) are guaranteed to have seen
  /// identical IR, so derived caches key on the pair.
  uint64_t version() const { return Version; }

  /// Records a mutation by advancing the version. Block-level mutators
  /// call this through preMutate(); function-level mutators call it
  /// directly.
  void noteMutated() { Version = detail::nextFunctionEpoch(); }

  /// Allocates a fresh virtual register.
  Reg newReg() {
    noteMutated();
    return Reg(NextRegId++);
  }

  /// \returns one past the largest allocated register id.
  unsigned regUpperBound() const { return NextRegId; }

  /// Records that register id \p Id is in use, growing the allocator bound.
  /// Used by the text parser, which sees explicit register numbers.
  void noteRegUsed(unsigned Id) {
    if (Id >= NextRegId) {
      noteMutated();
      NextRegId = Id + 1;
    }
  }

  /// Declares a new parameter register (parameters are passed in order).
  Reg addParam() {
    Reg R = newReg();
    Params.push_back(R);
    ParamInfos.push_back(ParamInfo());
    return R;
  }
  const std::vector<Reg> &params() const { return Params; }

  /// Mutable compile-time facts about parameter \p Idx.
  ParamInfo &paramInfo(size_t Idx) {
    assert(Idx < ParamInfos.size() && "parameter index out of range");
    noteMutated();
    return ParamInfos[Idx];
  }

  /// \returns the ParamInfo for register \p R if it is a parameter,
  /// else a default (nothing known).
  ParamInfo paramInfoFor(Reg R) const {
    for (size_t I = 0; I < Params.size(); ++I)
      if (Params[I] == R)
        return ParamInfos[I];
    return ParamInfo();
  }

  /// Creates and owns a new block appended to the layout.
  BasicBlock *addBlock(std::string BlockName);

  /// Creates a new block inserted into the layout before \p Before.
  BasicBlock *addBlockBefore(BasicBlock *Before, std::string BlockName);

  /// Removes \p BB from the function. No instruction may still branch to it.
  void removeBlock(BasicBlock *BB);

  BasicBlock *entry() const {
    assert(!Blocks.empty() && "entry() on function with no blocks");
    return Blocks.front().get();
  }

  const std::vector<std::unique_ptr<BasicBlock>> &blocks() const {
    return Blocks;
  }

  /// \returns the layout index of \p BB, or -1 if not found.
  int blockIndex(const BasicBlock *BB) const;

  /// \returns the block named \p BlockName, or nullptr.
  BasicBlock *findBlock(const std::string &BlockName) const;

  /// \returns a unique block name derived from \p Base ("Base", "Base.1"...).
  std::string uniqueBlockName(const std::string &Base) const;

  /// Total instruction count across all blocks.
  size_t instructionCount() const;

private:
  friend class SnapshotJournal;

  std::string Name;
  std::vector<Reg> Params;
  std::vector<ParamInfo> ParamInfos;
  std::vector<std::unique_ptr<BasicBlock>> Blocks;
  unsigned NextRegId = 1;
  SnapshotJournal *Journal = nullptr; ///< armed journal, if any
  uint64_t Uid = detail::nextFunctionEpoch();
  uint64_t Version = Uid;
};

inline void BasicBlock::preMutate() {
  if (Journal && !JournalSaved)
    journalSave();
  if (Parent)
    Parent->noteMutated();
}

/// A module: a named set of functions.
class Module {
public:
  Function *addFunction(std::string Name);
  Function *findFunction(const std::string &Name) const;
  const std::vector<std::unique_ptr<Function>> &functions() const {
    return Funcs;
  }

private:
  std::vector<std::unique_ptr<Function>> Funcs;
};

} // namespace vpo

#endif // VPO_IR_FUNCTION_H
