//===- ir/Verifier.cpp ----------------------------------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"

#include "ir/Function.h"
#include "ir/IRPrinter.h"
#include "support/Error.h"
#include "support/StringUtils.h"

using namespace vpo;

namespace {

class VerifierImpl {
public:
  VerifierImpl(const Function &F, std::vector<std::string> &Problems)
      : F(F), Problems(Problems) {}

  bool run() {
    size_t Before = Problems.size();
    if (F.blocks().empty())
      problem("function has no blocks");
    for (const auto &BB : F.blocks())
      checkBlock(*BB);
    return Problems.size() == Before;
  }

private:
  const Function &F;
  std::vector<std::string> &Problems;
  const BasicBlock *CurBB = nullptr;
  const Instruction *CurInst = nullptr;

  void problem(const std::string &Msg) {
    std::string Where = "@" + F.name();
    if (CurBB)
      Where += ":" + CurBB->name();
    if (CurInst)
      Where += ": '" + printInstruction(*CurInst) + "'";
    Problems.push_back(Where + ": " + Msg);
  }

  void checkReg(Reg R, const char *What) {
    if (!R.isValid())
      problem(strformat("%s register is invalid", What));
    else if (R.Id >= F.regUpperBound())
      problem(strformat("%s register r%u beyond allocator bound %u", What,
                        R.Id, F.regUpperBound()));
  }

  void checkOperandPresent(const Operand &O, const char *What) {
    if (O.isNone()) {
      problem(strformat("missing %s operand", What));
      return;
    }
    if (O.isReg())
      checkReg(O.reg(), What);
  }

  void checkTarget(BasicBlock *T, const char *What) {
    if (!T) {
      problem(strformat("%s target is null", What));
      return;
    }
    if (F.blockIndex(T) < 0)
      problem(strformat("%s target '%s' not in function", What,
                        T->name().c_str()));
  }

  void checkBlock(const BasicBlock &BB) {
    CurBB = &BB;
    CurInst = nullptr;
    if (BB.empty()) {
      problem("block is empty");
      CurBB = nullptr;
      return;
    }
    for (size_t I = 0; I < BB.size(); ++I) {
      const Instruction &Inst = BB.insts()[I];
      CurInst = &Inst;
      bool IsLast = I + 1 == BB.size();
      if (Inst.isTerminator() != IsLast) {
        problem(IsLast ? "block does not end in a terminator"
                       : "terminator in the middle of a block");
      }
      checkInstruction(Inst);
    }
    CurInst = nullptr;
    CurBB = nullptr;
  }

  void checkInstruction(const Instruction &I) {
    switch (I.Op) {
    case Opcode::Mov:
    case Opcode::Ext:
    case Opcode::CvtIF:
    case Opcode::CvtFI:
      checkReg(I.Dst, "destination");
      checkOperandPresent(I.A, "source");
      break;
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::DivS:
    case Opcode::DivU:
    case Opcode::RemS:
    case Opcode::RemU:
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Xor:
    case Opcode::Shl:
    case Opcode::ShrA:
    case Opcode::ShrL:
    case Opcode::FAdd:
    case Opcode::FSub:
    case Opcode::FMul:
    case Opcode::FDiv:
    case Opcode::CmpSet:
      checkReg(I.Dst, "destination");
      checkOperandPresent(I.A, "lhs");
      checkOperandPresent(I.B, "rhs");
      break;
    case Opcode::Select:
      checkReg(I.Dst, "destination");
      checkOperandPresent(I.A, "predicate");
      checkOperandPresent(I.B, "true-value");
      checkOperandPresent(I.C, "false-value");
      break;
    case Opcode::Load:
      checkReg(I.Dst, "destination");
      checkReg(I.Addr.Base, "address base");
      if (I.IsFloat && I.W != MemWidth::W4 && I.W != MemWidth::W8)
        problem("FP load width must be f32 or f64");
      break;
    case Opcode::LoadWideU:
      checkReg(I.Dst, "destination");
      checkReg(I.Addr.Base, "address base");
      if (I.W == MemWidth::W1)
        problem("unaligned wide load of a single byte is meaningless");
      break;
    case Opcode::Store:
      if (I.Dst.isValid())
        problem("store must not define a register");
      checkReg(I.Addr.Base, "address base");
      checkOperandPresent(I.A, "stored value");
      if (I.IsFloat && I.W != MemWidth::W4 && I.W != MemWidth::W8)
        problem("FP store width must be f32 or f64");
      break;
    case Opcode::ExtractF:
    case Opcode::ExtQHi:
      checkReg(I.Dst, "destination");
      checkOperandPresent(I.A, "source");
      checkOperandPresent(I.B, "byte offset");
      break;
    case Opcode::InsertF:
      checkReg(I.Dst, "destination");
      checkOperandPresent(I.A, "source");
      checkOperandPresent(I.B, "byte offset");
      checkOperandPresent(I.C, "field value");
      break;
    case Opcode::Br:
      if (I.Dst.isValid())
        problem("branch must not define a register");
      checkOperandPresent(I.A, "lhs");
      checkOperandPresent(I.B, "rhs");
      checkTarget(I.TrueTarget, "true");
      checkTarget(I.FalseTarget, "false");
      break;
    case Opcode::Jmp:
      if (I.Dst.isValid())
        problem("jump must not define a register");
      checkTarget(I.TrueTarget, "jump");
      break;
    case Opcode::Ret:
      if (I.Dst.isValid())
        problem("ret must not define a register");
      if (I.A.isReg())
        checkReg(I.A.reg(), "return value");
      break;
    }
  }
};

} // namespace

bool vpo::verifyFunction(const Function &F,
                         std::vector<std::string> &Problems) {
  return VerifierImpl(F, Problems).run();
}

bool vpo::verifyModule(const Module &M, std::vector<std::string> &Problems) {
  bool OK = true;
  for (const auto &F : M.functions())
    OK &= verifyFunction(*F, Problems);
  return OK;
}

std::vector<Diagnostic>
vpo::verifyFunctionDiagnostics(const Function &F, const char *PassName) {
  std::vector<std::string> Problems;
  std::vector<Diagnostic> Diags;
  if (verifyFunction(F, Problems))
    return Diags;
  Diags.reserve(Problems.size());
  for (std::string &P : Problems)
    Diags.emplace_back(ErrorCode::InvalidIR, PassName, F.name(),
                       std::move(P));
  return Diags;
}

void vpo::verifyOrDie(const Function &F, const char *Context) {
  std::vector<std::string> Problems;
  if (verifyFunction(F, Problems))
    return;
  std::string Msg =
      strformat("IR verification failed after %s:\n", Context);
  for (const std::string &P : Problems)
    Msg += "  " + P + "\n";
  Msg += printFunction(F);
  fatalError(Msg);
}
