//===- ir/Instruction.h - RTL instructions ----------------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The register-transfer-list (RTL) instruction set. This mirrors the IR of
/// the paper's vpo back end: a machine-independent but machine-level form in
/// which every memory reference has an explicit width and a base+displacement
/// address, which is exactly the information the coalescing analysis needs.
///
//===----------------------------------------------------------------------===//

#ifndef VPO_IR_INSTRUCTION_H
#define VPO_IR_INSTRUCTION_H

#include "ir/Type.h"

#include <cassert>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

namespace vpo {

class BasicBlock;

/// A virtual register. Id 0 is reserved as the invalid register.
struct Reg {
  unsigned Id = 0;

  Reg() = default;
  explicit Reg(unsigned Id) : Id(Id) {}

  bool isValid() const { return Id != 0; }
  bool operator==(const Reg &O) const { return Id == O.Id; }
  bool operator!=(const Reg &O) const { return Id != O.Id; }
  bool operator<(const Reg &O) const { return Id < O.Id; }
};

/// An instruction source operand: a register or an immediate.
class Operand {
public:
  enum class Kind : uint8_t { None, Register, Immediate };

  Operand() = default;
  /*implicit*/ Operand(Reg R) : K(Kind::Register), R(R) {
    assert(R.isValid() && "operand built from invalid register");
  }

  /// Named constructor for immediates (avoids int/Reg ambiguity).
  static Operand imm(int64_t V) {
    Operand O;
    O.K = Kind::Immediate;
    O.ImmVal = V;
    return O;
  }

  Kind kind() const { return K; }
  bool isNone() const { return K == Kind::None; }
  bool isReg() const { return K == Kind::Register; }
  bool isImm() const { return K == Kind::Immediate; }

  Reg reg() const {
    assert(isReg() && "not a register operand");
    return R;
  }
  int64_t imm() const {
    assert(isImm() && "not an immediate operand");
    return ImmVal;
  }

  bool operator==(const Operand &O) const {
    if (K != O.K)
      return false;
    if (K == Kind::Register)
      return R == O.R;
    if (K == Kind::Immediate)
      return ImmVal == O.ImmVal;
    return true;
  }

private:
  Kind K = Kind::None;
  Reg R;
  int64_t ImmVal = 0;
};

/// A base+displacement memory address, the only addressing mode of the IR
/// (matching the RISC targets the paper evaluates). The displacement is in
/// bytes.
struct Address {
  Reg Base;
  int64_t Disp = 0;

  Address() = default;
  Address(Reg Base, int64_t Disp) : Base(Base), Disp(Disp) {}

  bool operator==(const Address &O) const {
    return Base == O.Base && Disp == O.Disp;
  }
};

/// RTL opcodes.
enum class Opcode : uint8_t {
  // Data movement.
  Mov, ///< Dst = A

  // 64-bit integer ALU. Dst = A op B.
  Add,
  Sub,
  Mul,
  DivS,
  DivU,
  RemS,
  RemU,
  And,
  Or,
  Xor,
  Shl,
  ShrA, ///< arithmetic (sign-propagating) right shift
  ShrL, ///< logical right shift

  /// Dst = (A `CC` B) ? 1 : 0.
  CmpSet,
  /// Dst = (A != 0) ? B : C.
  Select,

  /// Dst = extend of the low widthBits(W) bits of A; SignExtend selects
  /// sign vs zero extension.
  Ext,

  // Double-precision FP ALU (registers hold the bit pattern of a double).
  FAdd,
  FSub,
  FMul,
  FDiv,
  CvtIF, ///< Dst = double(A as signed int)
  CvtFI, ///< Dst = int64(trunc(A as double))

  // Memory.
  Load,  ///< Dst = mem[Addr] of width W; SignExtend applies for W < W8;
         ///< IsFloat marks an FP load (W4 = float, W8 = double).
  Store, ///< mem[Addr] = low W bytes of A (or FP value if IsFloat).
  LoadWideU, ///< Dst = the aligned W-byte block *containing* Addr
             ///< (DEC Alpha ldq_u-style unaligned wide load).

  // Register field manipulation (what the Alpha EXTxx/INSxx and the 88100
  // ext instructions provide; expanded by legalization where absent).
  ExtractF, ///< Dst = field of width W from A at byte offset B
            ///< (offset taken modulo 8 when B is a register address);
            ///< SignExtend selects sign vs zero extension. With W = i64
            ///< this is the Alpha EXTQL: the register shifted right by
            ///< the offset, zero-filled.
  ExtQHi,   ///< Alpha EXTQH: Dst = (B mod 8) == 0 ? 0
            ///< : A << 8*(8 - B mod 8). Together with ExtractF.i64 it
            ///< assembles 8 unaligned bytes from two aligned quadwords.
  InsertF,  ///< Dst = A with the field of width W at byte offset B
            ///< replaced by the low W bytes of C.

  // Control flow. All blocks end in exactly one of these.
  Br,  ///< if (A `CC` B) goto TrueTarget else goto FalseTarget
  Jmp, ///< goto TrueTarget
  Ret, ///< return A (A may be None for void)
};

/// Comparison condition codes for Br and CmpSet.
enum class CondCode : uint8_t {
  EQ,
  NE,
  LTs,
  LEs,
  GTs,
  GEs,
  LTu,
  LEu,
  GTu,
  GEu,
};

/// \returns the condition that is true exactly when \p CC is false.
CondCode invertCond(CondCode CC);

/// \returns the condition CC' such that (A CC B) == (B CC' A).
CondCode swapCond(CondCode CC);

/// \returns a mnemonic like "eq", "lts" for printing.
const char *condName(CondCode CC);

/// \returns the opcode mnemonic ("add", "load", ...).
const char *opcodeName(Opcode Op);

/// A single RTL instruction. Plain value type; basic blocks own vectors of
/// these, so transformation passes copy and splice them freely (the paper's
/// algorithm replicates whole loops during profitability analysis).
struct Instruction {
  Opcode Op = Opcode::Mov;
  Reg Dst;          ///< defined register (invalid for stores/branches)
  Operand A, B, C;  ///< source operands
  Address Addr;     ///< address for Load/Store/LoadWideU
  MemWidth W = MemWidth::W8;
  bool SignExtend = false;
  bool IsFloat = false;
  CondCode CC = CondCode::EQ;
  BasicBlock *TrueTarget = nullptr;
  BasicBlock *FalseTarget = nullptr;

  bool isTerminator() const {
    return Op == Opcode::Br || Op == Opcode::Jmp || Op == Opcode::Ret;
  }
  bool isLoad() const { return Op == Opcode::Load || Op == Opcode::LoadWideU; }
  bool isStore() const { return Op == Opcode::Store; }
  bool isMemory() const { return isLoad() || isStore(); }
  bool isFPALU() const {
    return Op == Opcode::FAdd || Op == Opcode::FSub || Op == Opcode::FMul ||
           Op == Opcode::FDiv;
  }

  /// \returns the register this instruction defines, if any.
  std::optional<Reg> def() const {
    if (Dst.isValid())
      return Dst;
    return std::nullopt;
  }

  /// Appends every register this instruction reads to \p Uses (including the
  /// address base of memory references).
  void collectUses(std::vector<Reg> &Uses) const;

  /// Calls \p Fn for each register-operand slot that is read, allowing
  /// in-place rewriting (used by unrolling and copy propagation).
  void forEachUse(const std::function<void(Reg &)> &Fn);
};

} // namespace vpo

namespace std {
template <> struct hash<vpo::Reg> {
  size_t operator()(const vpo::Reg &R) const {
    return std::hash<unsigned>()(R.Id);
  }
};
} // namespace std

#endif // VPO_IR_INSTRUCTION_H
