//===- ir/Function.cpp ----------------------------------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "ir/Function.h"

#include "ir/Snapshot.h"
#include "support/Error.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <atomic>

using namespace vpo;

uint64_t vpo::detail::nextFunctionEpoch() {
  static std::atomic<uint64_t> Counter{1};
  return Counter.fetch_add(1, std::memory_order_relaxed);
}

std::vector<BasicBlock *> BasicBlock::successors() const {
  if (Insts.empty())
    return {};
  const Instruction &T = Insts.back();
  switch (T.Op) {
  case Opcode::Br:
    if (T.TrueTarget == T.FalseTarget)
      return {T.TrueTarget};
    return {T.TrueTarget, T.FalseTarget};
  case Opcode::Jmp:
    return {T.TrueTarget};
  case Opcode::Ret:
    return {};
  default:
    // Not (yet) terminated; treated as having no successors. The Verifier
    // rejects such blocks in finished functions.
    return {};
  }
}

BasicBlock *Function::addBlock(std::string BlockName) {
  noteMutated();
  Blocks.push_back(std::make_unique<BasicBlock>(this, std::move(BlockName)));
  BasicBlock *Raw = Blocks.back().get();
  if (Journal)
    Journal->noteAdded(Raw);
  return Raw;
}

BasicBlock *Function::addBlockBefore(BasicBlock *Before,
                                     std::string BlockName) {
  int Idx = blockIndex(Before);
  assert(Idx >= 0 && "addBlockBefore: block not in function");
  noteMutated();
  auto NewBB = std::make_unique<BasicBlock>(this, std::move(BlockName));
  BasicBlock *Raw = NewBB.get();
  Blocks.insert(Blocks.begin() + Idx, std::move(NewBB));
  if (Journal)
    Journal->noteAdded(Raw);
  return Raw;
}

void Function::removeBlock(BasicBlock *BB) {
  auto It = std::find_if(Blocks.begin(), Blocks.end(),
                         [BB](const auto &P) { return P.get() == BB; });
  assert(It != Blocks.end() && "removeBlock: block not in function");
  noteMutated();
  if (Journal) {
    // The journal takes ownership: a rollback needs the block alive (both
    // to re-insert it and because saved pre-images may branch to it).
    std::unique_ptr<BasicBlock> Owned = std::move(*It);
    Blocks.erase(It);
    Journal->noteRemoved(std::move(Owned));
    return;
  }
  Blocks.erase(It);
}

int Function::blockIndex(const BasicBlock *BB) const {
  for (size_t I = 0; I < Blocks.size(); ++I)
    if (Blocks[I].get() == BB)
      return static_cast<int>(I);
  return -1;
}

BasicBlock *Function::findBlock(const std::string &BlockName) const {
  for (const auto &B : Blocks)
    if (B->name() == BlockName)
      return B.get();
  return nullptr;
}

std::string Function::uniqueBlockName(const std::string &Base) const {
  if (!findBlock(Base))
    return Base;
  for (unsigned I = 1;; ++I) {
    std::string Candidate = Base + "." + std::to_string(I);
    if (!findBlock(Candidate))
      return Candidate;
  }
}

size_t Function::instructionCount() const {
  size_t N = 0;
  for (const auto &B : Blocks)
    N += B->size();
  return N;
}

Function *Module::addFunction(std::string Name) {
  Funcs.push_back(std::make_unique<Function>(std::move(Name)));
  return Funcs.back().get();
}

Function *Module::findFunction(const std::string &Name) const {
  for (const auto &F : Funcs)
    if (F->name() == Name)
      return F.get();
  return nullptr;
}
