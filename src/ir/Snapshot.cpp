//===- ir/Snapshot.cpp - Function checkpoint / rollback ---------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "ir/Snapshot.h"

#include "ir/Function.h"

using namespace vpo;

FunctionSnapshot FunctionSnapshot::take(const Function &F) {
  FunctionSnapshot Snap;
  Snap.Blocks.reserve(F.blocks().size());

  // Branch targets may legitimately be null or dangle mid-rollback only in
  // *malformed* IR; a snapshot is always taken from verified IR, but be
  // defensive and encode unknown targets as null rather than asserting.
  auto IndexOf = [&F](const BasicBlock *BB) -> int {
    if (!BB)
      return -1;
    return F.blockIndex(BB);
  };

  for (const auto &BB : F.blocks()) {
    BlockState State;
    State.Name = BB->name();
    State.Insts = BB->insts();
    State.Targets.reserve(State.Insts.size());
    for (const Instruction &I : State.Insts)
      State.Targets.emplace_back(IndexOf(I.TrueTarget),
                                 IndexOf(I.FalseTarget));
    Snap.Blocks.push_back(std::move(State));
  }
  return Snap;
}

void FunctionSnapshot::restore(Function &F) const {
  while (!F.blocks().empty())
    F.removeBlock(F.blocks().back().get());

  std::vector<BasicBlock *> NewBlocks;
  NewBlocks.reserve(Blocks.size());
  for (const BlockState &State : Blocks)
    NewBlocks.push_back(F.addBlock(State.Name));

  auto BlockAt = [&NewBlocks](int Idx) -> BasicBlock * {
    if (Idx < 0 || static_cast<size_t>(Idx) >= NewBlocks.size())
      return nullptr;
    return NewBlocks[static_cast<size_t>(Idx)];
  };

  for (size_t B = 0; B < Blocks.size(); ++B) {
    const BlockState &State = Blocks[B];
    NewBlocks[B]->insts() = State.Insts;
    for (size_t I = 0; I < State.Insts.size(); ++I) {
      Instruction &Inst = NewBlocks[B]->insts()[I];
      Inst.TrueTarget = BlockAt(State.Targets[I].first);
      Inst.FalseTarget = BlockAt(State.Targets[I].second);
    }
  }
}
