//===- ir/Snapshot.cpp - Function checkpoint / rollback ---------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "ir/Snapshot.h"

#include "ir/Function.h"

#include <algorithm>
#include <unordered_map>

using namespace vpo;

// The once-per-block slow path behind BasicBlock::preMutate(). Lives here
// rather than in Function.cpp so everything the journal touches is in one
// translation unit.
void BasicBlock::journalSave() { Journal->noteMutation(*this); }

SnapshotJournal::~SnapshotJournal() {
  // An armed journal that is destroyed without a verdict accepts the
  // changes (the common non-exceptional path is an explicit commit()).
  if (armed())
    commit();
}

void SnapshotJournal::arm(Function &Fn) {
  assert(!armed() && "journal already armed");
  assert(!Fn.Journal && "function already has an armed journal");
  F = &Fn;
  Fn.Journal = this;
  OriginalLayout.reserve(Fn.blocks().size());
  for (const auto &BB : Fn.blocks()) {
    BB->Journal = this;
    BB->JournalSaved = false;
    OriginalLayout.push_back(BB.get());
  }
}

void SnapshotJournal::commit() {
  assert(armed() && "commit() on unarmed journal");
  detach();
}

void SnapshotJournal::rollback() {
  assert(armed() && "rollback() on unarmed journal");

  // Restore mutated blocks from their pre-images. The instruction lists
  // were captured at arm-time state, so any branch targets they contain
  // are arm-time block pointers — all still alive, because removed blocks
  // are owned by the journal, not destroyed.
  for (PreImage &P : PreImages) {
    P.BB->Name = std::move(P.Name);
    P.BB->Insts = std::move(P.Insts);
  }

  // Restore the original layout order and block ownership. Blocks added
  // since arm() are whatever is left over, and are destroyed.
  std::unordered_map<BasicBlock *, std::unique_ptr<BasicBlock>> Pool;
  Pool.reserve(F->Blocks.size() + Removed.size());
  for (auto &BB : F->Blocks)
    Pool.emplace(BB.get(), std::move(BB));
  for (auto &BB : Removed)
    Pool.emplace(BB.get(), std::move(BB));
  Removed.clear();

  F->Blocks.clear();
  for (BasicBlock *BB : OriginalLayout) {
    auto It = Pool.find(BB);
    assert(It != Pool.end() && "arm-time block lost");
    F->Blocks.push_back(std::move(It->second));
    Pool.erase(It);
  }
  // ~Pool destroys the added blocks.

  // The restore wrote block contents directly (bypassing preMutate), so
  // advance the version by hand: the function's IR changed even though it
  // changed *back*, and version-keyed caches must not serve entries built
  // from the rolled-back revision.
  F->noteMutated();

  detach();
}

void SnapshotJournal::noteMutation(BasicBlock &BB) {
  assert(armed() && "mutation hook fired on unarmed journal");
  BB.JournalSaved = true;
  PreImages.push_back(PreImage{&BB, BB.Name, BB.Insts});
}

void SnapshotJournal::noteAdded(BasicBlock *BB) {
  // No pre-image needed: a rollback destroys the block outright. Mark it
  // saved so preMutate() never fires for it.
  BB->Journal = this;
  BB->JournalSaved = true;
}

void SnapshotJournal::noteRemoved(std::unique_ptr<BasicBlock> BB) {
  Removed.push_back(std::move(BB));
}

void SnapshotJournal::detach() {
  for (auto &BB : F->Blocks) {
    BB->Journal = nullptr;
    BB->JournalSaved = false;
  }
  F->Journal = nullptr;
  F = nullptr;
  OriginalLayout.clear();
  PreImages.clear();
  Removed.clear(); // on commit this destroys the removed blocks for real
}

FunctionSnapshot FunctionSnapshot::take(const Function &F) {
  FunctionSnapshot Snap;
  Snap.Blocks.reserve(F.blocks().size());

  // Branch targets may legitimately be null or dangle mid-rollback only in
  // *malformed* IR; a snapshot is always taken from verified IR, but be
  // defensive and encode unknown targets as null rather than asserting.
  auto IndexOf = [&F](const BasicBlock *BB) -> int {
    if (!BB)
      return -1;
    return F.blockIndex(BB);
  };

  for (const auto &BB : F.blocks()) {
    BlockState State;
    State.Name = BB->name();
    State.Insts = BB->insts();
    State.Targets.reserve(State.Insts.size());
    for (const Instruction &I : State.Insts)
      State.Targets.emplace_back(IndexOf(I.TrueTarget),
                                 IndexOf(I.FalseTarget));
    Snap.Blocks.push_back(std::move(State));
  }
  return Snap;
}

void FunctionSnapshot::restore(Function &F) const {
  while (!F.blocks().empty())
    F.removeBlock(F.blocks().back().get());

  std::vector<BasicBlock *> NewBlocks;
  NewBlocks.reserve(Blocks.size());
  for (const BlockState &State : Blocks)
    NewBlocks.push_back(F.addBlock(State.Name));

  auto BlockAt = [&NewBlocks](int Idx) -> BasicBlock * {
    if (Idx < 0 || static_cast<size_t>(Idx) >= NewBlocks.size())
      return nullptr;
    return NewBlocks[static_cast<size_t>(Idx)];
  };

  for (size_t B = 0; B < Blocks.size(); ++B) {
    const BlockState &State = Blocks[B];
    NewBlocks[B]->insts() = State.Insts;
    for (size_t I = 0; I < State.Insts.size(); ++I) {
      Instruction &Inst = NewBlocks[B]->insts()[I];
      Inst.TrueTarget = BlockAt(State.Targets[I].first);
      Inst.FalseTarget = BlockAt(State.Targets[I].second);
    }
  }
}
