//===- ir/Instruction.cpp -------------------------------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "ir/Instruction.h"

#include "support/Error.h"

using namespace vpo;

const char *vpo::widthName(MemWidth W) {
  switch (W) {
  case MemWidth::W1:
    return "i8";
  case MemWidth::W2:
    return "i16";
  case MemWidth::W4:
    return "i32";
  case MemWidth::W8:
    return "i64";
  }
  vpo_unreachable("invalid width");
}

const char *vpo::floatWidthName(MemWidth W) {
  switch (W) {
  case MemWidth::W4:
    return "f32";
  case MemWidth::W8:
    return "f64";
  default:
    // Tolerated rather than asserted: the printer renders *malformed*
    // instructions inside verifier diagnostics.
    return "f?";
  }
}

CondCode vpo::invertCond(CondCode CC) {
  switch (CC) {
  case CondCode::EQ:
    return CondCode::NE;
  case CondCode::NE:
    return CondCode::EQ;
  case CondCode::LTs:
    return CondCode::GEs;
  case CondCode::LEs:
    return CondCode::GTs;
  case CondCode::GTs:
    return CondCode::LEs;
  case CondCode::GEs:
    return CondCode::LTs;
  case CondCode::LTu:
    return CondCode::GEu;
  case CondCode::LEu:
    return CondCode::GTu;
  case CondCode::GTu:
    return CondCode::LEu;
  case CondCode::GEu:
    return CondCode::LTu;
  }
  vpo_unreachable("invalid condition code");
}

CondCode vpo::swapCond(CondCode CC) {
  switch (CC) {
  case CondCode::EQ:
  case CondCode::NE:
    return CC;
  case CondCode::LTs:
    return CondCode::GTs;
  case CondCode::LEs:
    return CondCode::GEs;
  case CondCode::GTs:
    return CondCode::LTs;
  case CondCode::GEs:
    return CondCode::LEs;
  case CondCode::LTu:
    return CondCode::GTu;
  case CondCode::LEu:
    return CondCode::GEu;
  case CondCode::GTu:
    return CondCode::LTu;
  case CondCode::GEu:
    return CondCode::LEu;
  }
  vpo_unreachable("invalid condition code");
}

const char *vpo::condName(CondCode CC) {
  switch (CC) {
  case CondCode::EQ:
    return "eq";
  case CondCode::NE:
    return "ne";
  case CondCode::LTs:
    return "lts";
  case CondCode::LEs:
    return "les";
  case CondCode::GTs:
    return "gts";
  case CondCode::GEs:
    return "ges";
  case CondCode::LTu:
    return "ltu";
  case CondCode::LEu:
    return "leu";
  case CondCode::GTu:
    return "gtu";
  case CondCode::GEu:
    return "geu";
  }
  vpo_unreachable("invalid condition code");
}

const char *vpo::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Mov:
    return "mov";
  case Opcode::Add:
    return "add";
  case Opcode::Sub:
    return "sub";
  case Opcode::Mul:
    return "mul";
  case Opcode::DivS:
    return "divs";
  case Opcode::DivU:
    return "divu";
  case Opcode::RemS:
    return "rems";
  case Opcode::RemU:
    return "remu";
  case Opcode::And:
    return "and";
  case Opcode::Or:
    return "or";
  case Opcode::Xor:
    return "xor";
  case Opcode::Shl:
    return "shl";
  case Opcode::ShrA:
    return "shra";
  case Opcode::ShrL:
    return "shrl";
  case Opcode::CmpSet:
    return "cmpset";
  case Opcode::Select:
    return "select";
  case Opcode::Ext:
    return "ext";
  case Opcode::FAdd:
    return "fadd";
  case Opcode::FSub:
    return "fsub";
  case Opcode::FMul:
    return "fmul";
  case Opcode::FDiv:
    return "fdiv";
  case Opcode::CvtIF:
    return "cvtif";
  case Opcode::CvtFI:
    return "cvtfi";
  case Opcode::Load:
    return "load";
  case Opcode::Store:
    return "store";
  case Opcode::LoadWideU:
    return "loadwu";
  case Opcode::ExtractF:
    return "extractf";
  case Opcode::ExtQHi:
    return "extqhi";
  case Opcode::InsertF:
    return "insertf";
  case Opcode::Br:
    return "br";
  case Opcode::Jmp:
    return "jmp";
  case Opcode::Ret:
    return "ret";
  }
  vpo_unreachable("invalid opcode");
}

void Instruction::collectUses(std::vector<Reg> &Uses) const {
  if (A.isReg())
    Uses.push_back(A.reg());
  if (B.isReg())
    Uses.push_back(B.reg());
  if (C.isReg())
    Uses.push_back(C.reg());
  if (isMemory() && Addr.Base.isValid())
    Uses.push_back(Addr.Base);
}

void Instruction::forEachUse(const std::function<void(Reg &)> &Fn) {
  auto Visit = [&Fn](Operand &O) {
    if (!O.isReg())
      return;
    Reg R = O.reg();
    Fn(R);
    O = Operand(R);
  };
  Visit(A);
  Visit(B);
  Visit(C);
  if (isMemory() && Addr.Base.isValid())
    Fn(Addr.Base);
}
