//===- ir/IRPrinter.h - Text form of RTL functions --------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prints RTL in a textual format close to the register-transfer lists shown
/// in the paper's Figure 1. The format round-trips through ir/IRParser.h.
///
//===----------------------------------------------------------------------===//

#ifndef VPO_IR_IRPRINTER_H
#define VPO_IR_IRPRINTER_H

#include <string>

namespace vpo {

class Function;
class Instruction;
class Module;

/// \returns one instruction rendered on one line (no trailing newline).
std::string printInstruction(const Instruction &I);

/// \returns the whole function in textual form.
std::string printFunction(const Function &F);

/// \returns every function in the module, separated by blank lines.
std::string printModule(const Module &M);

} // namespace vpo

#endif // VPO_IR_IRPRINTER_H
