//===- ir/IRParser.cpp ----------------------------------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "ir/IRParser.h"

#include "ir/Function.h"
#include "support/StringUtils.h"

#include <map>
#include <optional>

using namespace vpo;

namespace {

/// Line-oriented recursive-descent parser for the printer's format.
class Parser {
public:
  explicit Parser(const std::string &Text) {
    for (const std::string &L : splitString(Text, "\n"))
      Lines.push_back(trimString(L));
  }

  std::unique_ptr<Module> run(std::string *ErrorMsg,
                              std::vector<Diagnostic> *Diags) {
    auto M = std::make_unique<Module>();
    while (CurLine < Lines.size()) {
      const std::string &L = Lines[CurLine];
      if (L.empty() || startsWith(L, "//") || startsWith(L, "#")) {
        ++CurLine;
        continue;
      }
      if (!startsWith(L, "func @")) {
        setError("expected 'func @name(...)'");
        break;
      }
      if (!parseFunction(*M))
        break;
    }
    if (!Error.empty()) {
      if (ErrorMsg)
        *ErrorMsg = Error;
      if (Diags)
        Diags->push_back(Diagnostic(ErrorCode::ParseError, "ir-parser",
                                    CurFunction, Error));
      return nullptr;
    }
    return M;
  }

private:
  std::vector<std::string> Lines;
  size_t CurLine = 0;
  std::string Error;
  std::string CurFunction; ///< name of the function being parsed, if any

  void setError(const std::string &Msg) {
    if (Error.empty())
      Error = strformat("line %zu: %s", CurLine + 1, Msg.c_str());
  }

  static std::optional<unsigned> parseRegToken(const std::string &Tok) {
    if (Tok.size() < 2 || Tok[0] != 'r')
      return std::nullopt;
    uint64_t Id = 0;
    for (size_t I = 1; I < Tok.size(); ++I) {
      if (!isdigit(static_cast<unsigned char>(Tok[I])))
        return std::nullopt;
      Id = Id * 10 + static_cast<uint64_t>(Tok[I] - '0');
      // Reject pathological ids instead of letting one corrupt token make
      // every downstream pass size its register tables by it.
      if (Id > maxParsedRegId)
        return std::nullopt;
    }
    if (Id == 0)
      return std::nullopt;
    return static_cast<unsigned>(Id);
  }

  bool parseFunction(Module &M) {
    const std::string &Header = Lines[CurLine];
    size_t NameBegin = 6; // after "func @"
    size_t Paren = Header.find('(', NameBegin);
    size_t Close = Header.find(')', NameBegin);
    if (Paren == std::string::npos || Close == std::string::npos ||
        Header.find('{', Close) == std::string::npos) {
      setError("malformed function header");
      return false;
    }
    std::string Name = Header.substr(NameBegin, Paren - NameBegin);
    CurFunction = Name;
    Function *F = M.addFunction(Name);

    std::string ParamText = Header.substr(Paren + 1, Close - Paren - 1);
    for (const std::string &P : splitString(ParamText, ", ")) {
      auto Id = parseRegToken(P);
      if (!Id) {
        setError("malformed parameter '" + P + "'");
        return false;
      }
      Reg R = F->addParam();
      if (R.Id != *Id) {
        setError(strformat("parameters must be r1..rN in order; got r%u at "
                           "position %u",
                           *Id, R.Id));
        return false;
      }
    }
    ++CurLine;

    // Pass 1: find labels, create blocks (branches may reference forward).
    std::map<std::string, BasicBlock *> BlockByName;
    size_t BodyStart = CurLine;
    size_t Depth = 1;
    for (size_t L = CurLine; L < Lines.size(); ++L) {
      const std::string &S = Lines[L];
      if (S == "}") {
        --Depth;
        if (Depth == 0)
          break;
        continue;
      }
      if (S.empty() || startsWith(S, "//"))
        continue;
      if (S.back() == ':') {
        std::string BlockName = S.substr(0, S.size() - 1);
        if (BlockByName.count(BlockName)) {
          CurLine = L;
          setError("duplicate label '" + BlockName + "'");
          return false;
        }
        BlockByName[BlockName] = F->addBlock(BlockName);
      }
    }

    // Pass 2: parse instructions.
    BasicBlock *BB = nullptr;
    for (CurLine = BodyStart; CurLine < Lines.size(); ++CurLine) {
      const std::string &S = Lines[CurLine];
      if (S == "}") {
        ++CurLine;
        return true;
      }
      if (S.empty() || startsWith(S, "//"))
        continue;
      if (S.back() == ':') {
        BB = BlockByName.at(S.substr(0, S.size() - 1));
        continue;
      }
      if (!BB) {
        setError("instruction before any label");
        return false;
      }
      if (!parseInstruction(*F, *BB, BlockByName, S))
        return false;
    }
    setError("missing closing '}'");
    return false;
  }

  bool parseOperand(Function &F, const std::string &Tok, Operand &Out) {
    if (Tok == "_") {
      Out = Operand();
      return true;
    }
    if (auto Id = parseRegToken(Tok)) {
      F.noteRegUsed(*Id);
      Out = Operand(Reg(*Id));
      return true;
    }
    // Immediate (possibly negative).
    char *End = nullptr;
    long long V = strtoll(Tok.c_str(), &End, 10);
    if (End == Tok.c_str() || *End != '\0') {
      setError("malformed operand '" + Tok + "'");
      return false;
    }
    Out = Operand::imm(V);
    return true;
  }

  bool parseAddress(Function &F, const std::string &Tok, Address &Out) {
    if (Tok.size() < 4 || Tok.front() != '[' || Tok.back() != ']') {
      setError("malformed address '" + Tok + "'");
      return false;
    }
    std::string Inner = Tok.substr(1, Tok.size() - 2);
    size_t Sep = Inner.find_first_of("+-", 1);
    std::string BaseTok = Sep == std::string::npos ? Inner
                                                   : Inner.substr(0, Sep);
    auto Id = parseRegToken(BaseTok);
    if (!Id) {
      setError("malformed address base in '" + Tok + "'");
      return false;
    }
    F.noteRegUsed(*Id);
    Out.Base = Reg(*Id);
    Out.Disp = 0;
    if (Sep != std::string::npos) {
      std::string DispTok = Inner.substr(Sep);
      if (!DispTok.empty() && DispTok[0] == '+')
        DispTok.erase(0, 1);
      char *End = nullptr;
      Out.Disp = strtoll(DispTok.c_str(), &End, 10);
      if (End == DispTok.c_str() || *End != '\0') {
        setError("malformed displacement in '" + Tok + "'");
        return false;
      }
    }
    return true;
  }

  /// Splits "load.i16.s" into {"load","i16","s"}.
  static std::vector<std::string> splitMnemonic(const std::string &Tok) {
    return splitString(Tok, ".");
  }

  static std::optional<MemWidth> widthFromName(const std::string &N,
                                               bool &IsFloat) {
    IsFloat = false;
    if (N == "i8")
      return MemWidth::W1;
    if (N == "i16")
      return MemWidth::W2;
    if (N == "i32")
      return MemWidth::W4;
    if (N == "i64")
      return MemWidth::W8;
    if (N == "f32") {
      IsFloat = true;
      return MemWidth::W4;
    }
    if (N == "f64") {
      IsFloat = true;
      return MemWidth::W8;
    }
    return std::nullopt;
  }

  static std::optional<CondCode> condFromName(const std::string &N) {
    static const std::pair<const char *, CondCode> Table[] = {
        {"eq", CondCode::EQ},   {"ne", CondCode::NE},
        {"lts", CondCode::LTs}, {"les", CondCode::LEs},
        {"gts", CondCode::GTs}, {"ges", CondCode::GEs},
        {"ltu", CondCode::LTu}, {"leu", CondCode::LEu},
        {"gtu", CondCode::GTu}, {"geu", CondCode::GEu}};
    for (const auto &[Name, CC] : Table)
      if (N == Name)
        return CC;
    return std::nullopt;
  }

  bool parseInstruction(Function &F, BasicBlock &BB,
                        const std::map<std::string, BasicBlock *> &Blocks,
                        const std::string &Line) {
    // Optional "rN = " destination.
    std::string Rest = Line;
    Reg Dst;
    size_t EqPos = Rest.find(" = ");
    if (EqPos != std::string::npos && Rest[0] == 'r') {
      auto Id = parseRegToken(Rest.substr(0, EqPos));
      if (Id) {
        F.noteRegUsed(*Id);
        Dst = Reg(*Id);
        Rest = Rest.substr(EqPos + 3);
      }
    }

    // Mnemonic is the first whitespace-delimited token.
    size_t Sp = Rest.find(' ');
    std::string Mnemonic = Sp == std::string::npos ? Rest
                                                   : Rest.substr(0, Sp);
    std::string ArgText = Sp == std::string::npos ? "" : Rest.substr(Sp + 1);
    std::vector<std::string> Args = splitString(ArgText, ", ");
    std::vector<std::string> Parts = splitMnemonic(Mnemonic);
    if (Parts.empty()) {
      setError("empty instruction");
      return false;
    }
    const std::string &Base = Parts[0];

    Instruction I;
    I.Dst = Dst;

    auto NeedArgs = [&](size_t N) {
      if (Args.size() == N)
        return true;
      setError(strformat("'%s' expects %zu operands, got %zu", Base.c_str(),
                         N, Args.size()));
      return false;
    };
    auto ParseWidthSign = [&](size_t WidthIdx, bool WantSign) {
      if (Parts.size() <= WidthIdx) {
        setError("missing width suffix on '" + Mnemonic + "'");
        return false;
      }
      bool IsFloat = false;
      auto W = widthFromName(Parts[WidthIdx], IsFloat);
      if (!W) {
        setError("bad width suffix '" + Parts[WidthIdx] + "'");
        return false;
      }
      I.W = *W;
      I.IsFloat = IsFloat;
      if (WantSign && !IsFloat) {
        if (Parts.size() <= WidthIdx + 1 ||
            (Parts[WidthIdx + 1] != "s" && Parts[WidthIdx + 1] != "u")) {
          setError("missing .s/.u suffix on '" + Mnemonic + "'");
          return false;
        }
        I.SignExtend = Parts[WidthIdx + 1] == "s";
      }
      return true;
    };

    static const std::map<std::string, Opcode> BinOps = {
        {"add", Opcode::Add},   {"sub", Opcode::Sub},
        {"mul", Opcode::Mul},   {"divs", Opcode::DivS},
        {"divu", Opcode::DivU}, {"rems", Opcode::RemS},
        {"remu", Opcode::RemU}, {"and", Opcode::And},
        {"or", Opcode::Or},     {"xor", Opcode::Xor},
        {"shl", Opcode::Shl},   {"shra", Opcode::ShrA},
        {"shrl", Opcode::ShrL}, {"fadd", Opcode::FAdd},
        {"fsub", Opcode::FSub}, {"fmul", Opcode::FMul},
        {"fdiv", Opcode::FDiv}};

    if (auto It = BinOps.find(Base); It != BinOps.end()) {
      I.Op = It->second;
      if (!NeedArgs(2) || !parseOperand(F, Args[0], I.A) ||
          !parseOperand(F, Args[1], I.B))
        return false;
    } else if (Base == "mov" || Base == "cvtif" || Base == "cvtfi") {
      I.Op = Base == "mov" ? Opcode::Mov
                           : (Base == "cvtif" ? Opcode::CvtIF : Opcode::CvtFI);
      if (!NeedArgs(1) || !parseOperand(F, Args[0], I.A))
        return false;
    } else if (Base == "cmpset") {
      I.Op = Opcode::CmpSet;
      if (Parts.size() < 2) {
        setError("cmpset requires a condition suffix");
        return false;
      }
      auto CC = condFromName(Parts[1]);
      if (!CC) {
        setError("bad condition '" + Parts[1] + "'");
        return false;
      }
      I.CC = *CC;
      if (!NeedArgs(2) || !parseOperand(F, Args[0], I.A) ||
          !parseOperand(F, Args[1], I.B))
        return false;
    } else if (Base == "select") {
      I.Op = Opcode::Select;
      if (!NeedArgs(3) || !parseOperand(F, Args[0], I.A) ||
          !parseOperand(F, Args[1], I.B) || !parseOperand(F, Args[2], I.C))
        return false;
    } else if (Base == "ext") {
      I.Op = Opcode::Ext;
      if (!ParseWidthSign(1, /*WantSign=*/true) || !NeedArgs(1) ||
          !parseOperand(F, Args[0], I.A))
        return false;
    } else if (Base == "load") {
      I.Op = Opcode::Load;
      if (!ParseWidthSign(1, /*WantSign=*/true))
        return false;
      if (!NeedArgs(1) || !parseAddress(F, Args[0], I.Addr))
        return false;
    } else if (Base == "loadwu") {
      I.Op = Opcode::LoadWideU;
      if (!ParseWidthSign(1, /*WantSign=*/false))
        return false;
      if (!NeedArgs(1) || !parseAddress(F, Args[0], I.Addr))
        return false;
    } else if (Base == "store") {
      I.Op = Opcode::Store;
      if (!ParseWidthSign(1, /*WantSign=*/false))
        return false;
      if (!NeedArgs(2) || !parseAddress(F, Args[0], I.Addr) ||
          !parseOperand(F, Args[1], I.A))
        return false;
    } else if (Base == "extqhi") {
      I.Op = Opcode::ExtQHi;
      if (!NeedArgs(2) || !parseOperand(F, Args[0], I.A) ||
          !parseOperand(F, Args[1], I.B))
        return false;
    } else if (Base == "extractf") {
      I.Op = Opcode::ExtractF;
      if (!ParseWidthSign(1, /*WantSign=*/true) || !NeedArgs(2) ||
          !parseOperand(F, Args[0], I.A) || !parseOperand(F, Args[1], I.B))
        return false;
    } else if (Base == "insertf") {
      I.Op = Opcode::InsertF;
      if (!ParseWidthSign(1, /*WantSign=*/false) || !NeedArgs(3) ||
          !parseOperand(F, Args[0], I.A) || !parseOperand(F, Args[1], I.B) ||
          !parseOperand(F, Args[2], I.C))
        return false;
    } else if (Base == "br") {
      I.Op = Opcode::Br;
      if (Parts.size() < 2) {
        setError("br requires a condition suffix");
        return false;
      }
      auto CC = condFromName(Parts[1]);
      if (!CC) {
        setError("bad condition '" + Parts[1] + "'");
        return false;
      }
      I.CC = *CC;
      if (!NeedArgs(4) || !parseOperand(F, Args[0], I.A) ||
          !parseOperand(F, Args[1], I.B))
        return false;
      auto TIt = Blocks.find(Args[2]);
      auto FIt = Blocks.find(Args[3]);
      if (TIt == Blocks.end() || FIt == Blocks.end()) {
        setError("unknown branch target");
        return false;
      }
      I.TrueTarget = TIt->second;
      I.FalseTarget = FIt->second;
    } else if (Base == "jmp") {
      I.Op = Opcode::Jmp;
      if (!NeedArgs(1))
        return false;
      auto TIt = Blocks.find(Args[0]);
      if (TIt == Blocks.end()) {
        setError("unknown jump target '" + Args[0] + "'");
        return false;
      }
      I.TrueTarget = TIt->second;
    } else if (Base == "ret") {
      I.Op = Opcode::Ret;
      if (Args.size() > 1) {
        setError("ret takes at most one operand");
        return false;
      }
      if (Args.size() == 1 && !parseOperand(F, Args[0], I.A))
        return false;
    } else {
      setError("unknown mnemonic '" + Base + "'");
      return false;
    }

    BB.append(std::move(I));
    return true;
  }
};

} // namespace

std::unique_ptr<Module> vpo::parseModule(const std::string &Text,
                                         std::string *ErrorMsg) {
  return Parser(Text).run(ErrorMsg, nullptr);
}

std::unique_ptr<Module> vpo::parseModule(const std::string &Text,
                                         std::vector<Diagnostic> &Diags) {
  return Parser(Text).run(nullptr, &Diags);
}
