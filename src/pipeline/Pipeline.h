//===- pipeline/Pipeline.h - Optimization pipeline ---------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The vpo-style compilation pipeline: coalescing (which includes its own
/// unrolling per the paper's Fig. 2), target legalization, and list
/// scheduling. Named configurations reproduce the compiler columns of the
/// paper's Tables II/III:
///
///   cc -O (model)    unrolled, no coalescing, no scheduling
///   vpo -O           unrolled, no coalescing, scheduled
///   coalesce-loads   unrolled, loads coalesced, scheduled
///   coalesce-all     unrolled, loads and stores coalesced, scheduled
///
//===----------------------------------------------------------------------===//

#ifndef VPO_PIPELINE_PIPELINE_H
#define VPO_PIPELINE_PIPELINE_H

#include "coalesce/Coalesce.h"
#include "support/Diagnostics.h"
#include "target/Legalize.h"
#include "transform/Cleanup.h"
#include "transform/Recurrence.h"
#include "transform/ScalarReplace.h"
#include "transform/StrengthReduce.h"

#include <functional>
#include <string>
#include <vector>

namespace vpo {

class Function;
class TargetMachine;

struct CompileOptions {
  CoalesceMode Mode = CoalesceMode::None;
  bool Unroll = true;
  unsigned UnrollFactor = 0; ///< 0 = automatic
  bool IgnoreICacheHeuristic = false; ///< ablation use only
  bool Schedule = true;
  bool Cleanup = true; ///< DCE / copy propagation / constant folding
  /// Rewrite `base + iv*scale` addressing into pointer induction
  /// variables (Fig. 2's EliminateInductionVariables). Required for
  /// front-end-generated code; a no-op on kernels already written with
  /// pointer IVs.
  bool StrengthReduce = true;
  /// Recurrence detection and optimization [Beni91] (paper section 1.1):
  /// carry loop-carried loads in registers. Off by default so the paper's
  /// tables measure coalescing in isolation.
  bool OptimizeRecurrences = false;
  /// Scalar replacement of subscripted variables [Cal90] (section 1.1's
  /// register blocking). Off by default for the same reason.
  bool ScalarReplace = false;
  bool UseRuntimeChecks = true;
  /// Loop-pointer offset/stride abstract interpretation: proves partition
  /// pairs disjoint and wide addresses aligned so fewer loops defer to
  /// run-time checks. Off reproduces the pre-analysis pipeline (ablation).
  bool OffsetAnalysis = true;
  bool RequireProfitability = true;
  unsigned MaxWideBytes = 0;
  /// Register-pressure-aware unroll clamp (sched/RegPressure): refuse
  /// unroll factors whose modeled spill cost exceeds the modeled
  /// coalescing saving. Off reproduces i-cache-only factor selection.
  bool PressureClamp = true;
  /// Exact-scheduler audit of the Fig. 3 profitability verdicts
  /// (telemetry-only; needs a remark sink to do anything).
  bool SchedAudit = true;
  /// Branch-and-bound state budget per audited schedule.
  uint64_t SchedAuditBudget = 50000;
  /// Test-only planted error in the coalesced side's schedule length
  /// (see CoalesceOptions::ProfitabilitySkew). 0 in production.
  int ProfitabilitySkew = 0;
  /// Replace list schedules with provably optimal ones where the
  /// branch-and-bound search fits the budget (sched/ExactScheduler).
  /// Opt-in: the exact scheduler never returns a longer schedule, but
  /// costs exponential worst-case compile time on large blocks.
  bool ExactSched = false;
  /// Cumulative branch-and-bound state budget per function for the
  /// opt-in exact scheduling pass.
  uint64_t ExactSchedBudget = 200000;
  /// Observability hook: called with the function after every pipeline
  /// stage that ran (stage name, current IR). Print with printFunction
  /// to watch the transformation unfold.
  std::function<void(const char *Stage, const Function &F)> TraceHook;
  /// Guard rails: snapshot the IR before every pass, re-verify after it,
  /// and on failure roll back, disable the pass, and keep compiling —
  /// the compile-time mirror of the paper's run-time dispatch (a bad
  /// coalesce degrades to the "vpo -O" column, never to a crash). Off
  /// only for overhead measurement; without guard rails a bad pass
  /// aborts via verifyOrDie as before.
  bool GuardRails = true;
  /// IR growth budget: a guarded pass whose output exceeds this many
  /// instructions (while growing the function) is rolled back with an
  /// ErrorCode::ResourceExhausted incident instead of being kept — the
  /// defence against inputs crafted to make unrolling or rewriting
  /// explode, so a service worker fails one request recoverably rather
  /// than exhausting its memory ceiling. 0 = unlimited. Enforced only
  /// with GuardRails (rollback is the recovery mechanism).
  size_t MaxFunctionInsts = 0;
  /// Test-only corruption hook, called after each guarded pass with the
  /// pass name and the current IR; return true if the IR was mutated.
  /// Used by pipeline/FaultInjection.h to prove the guard rails catch
  /// in-flight miscompiles. Requires GuardRails; ignored without it.
  std::function<bool(const char *Pass, Function &F)> FaultHook;
  /// Telemetry: every accept/reject decision the passes make is reported
  /// here as a structured remark (support/Remark.h), plus guard-rail
  /// events ("pass-rolled-back", ...) from the driver itself. Null =
  /// disabled, the default. Strictly read-only: the generated code is
  /// bit-identical with any sink or none.
  RemarkSink *Remarks = nullptr;
  /// Record per-pass wall time into CompileReport::Passes. Off by default
  /// so reports compare equal across runs; timing consumers (the bench
  /// harness's Chrome trace export) opt in.
  bool ProfilePasses = false;
};

struct CompileReport {
  CoalesceStats Coalesce;
  LegalizeStats Legalize;
  CleanupStats Cleanup;
  RecurrenceStats Recurrence;
  ScalarReplaceStats ScalarReplace;
  StrengthReduceStats StrengthReduce;
  unsigned BlocksScheduled = 0;

  /// One guard-rail intervention: a pass whose output failed verification.
  struct PassIncident {
    /// The pass that produced bad IR ("coalesce", "legalize", ...; or
    /// "frontend" when the *input* failed verification).
    std::string Pass;
    /// The IR was restored to the pre-pass snapshot.
    bool RolledBack = false;
    /// The pass was re-run once after rollback (required passes only).
    bool Retried = false;
    /// The pass was disabled for the rest of this compilation.
    bool Disabled = false;
    /// A required pass kept failing; compilation stopped (Succeeded is
    /// false and the IR is the last good snapshot).
    bool PipelineStopped = false;
    /// What the verifier saw.
    std::vector<Diagnostic> Diags;
  };

  /// One pipeline pass that ran, with its wall time. Filled only when
  /// CompileOptions::ProfilePasses is set; execution order.
  struct PassProfile {
    std::string Pass;
    double Seconds = 0.0;
    bool Kept = true; ///< false when guard rails rolled the pass back
  };

  /// Per-pass profile (empty unless ProfilePasses).
  std::vector<PassProfile> Passes;

  /// Guard-rail record: empty on a clean compile.
  std::vector<PassIncident> Incidents;
  /// False only when the input never verified or a required pass failed
  /// even after retry. The IR is always left in a verified state.
  bool Succeeded = true;

  /// All diagnostics across incidents, in pipeline order.
  std::vector<Diagnostic> allDiagnostics() const {
    std::vector<Diagnostic> Out;
    for (const PassIncident &I : Incidents)
      Out.insert(Out.end(), I.Diags.begin(), I.Diags.end());
    return Out;
  }
};

/// Runs the full pipeline over \p F in place.
CompileReport compileFunction(Function &F, const TargetMachine &TM,
                              const CompileOptions &Opts);

/// A named pipeline configuration (one column of Table II/III).
struct PipelineConfig {
  std::string Name;
  CompileOptions Options;
};

/// The four configurations of the paper's tables, in column order.
std::vector<PipelineConfig> paperConfigs();

} // namespace vpo

#endif // VPO_PIPELINE_PIPELINE_H
