//===- pipeline/Pipeline.cpp ----------------------------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "pipeline/Pipeline.h"

#include "ir/Function.h"
#include "ir/Snapshot.h"
#include "ir/Verifier.h"
#include "sched/ExactScheduler.h"
#include "sched/ListScheduler.h"
#include "support/Remark.h"
#include "target/TargetMachine.h"

#include <algorithm>
#include <chrono>
#include <set>

using namespace vpo;

namespace {

/// The guarded pass driver. Each pass runs between an IR snapshot and a
/// re-verification; a pass whose output fails verification is rolled back
/// and disabled (optional passes) or retried once and, failing that,
/// stops the pipeline with Succeeded = false (required passes). Either
/// way the IR the caller gets back always verifies — the compile-time
/// analogue of the paper's run-time dispatch to the safe loop.
class GuardedDriver {
public:
  GuardedDriver(Function &F, const CompileOptions &Opts,
                CompileReport &Report)
      : F(F), Opts(Opts), Report(Report) {}

  /// Runs \p Body as the pass named \p Name. \returns true if the pass's
  /// effects were kept. With ProfilePasses, the pass's wall time lands in
  /// Report.Passes (appended after any rollback, so the entry survives
  /// the report restore).
  template <typename BodyFn>
  bool runPass(const char *Name, bool Required, BodyFn &&Body) {
    if (Stopped || Disabled.count(Name))
      return false;
    if (!Opts.ProfilePasses)
      return runPassImpl(Name, Required, Body);
    auto T0 = std::chrono::steady_clock::now();
    bool Kept = runPassImpl(Name, Required, Body);
    auto T1 = std::chrono::steady_clock::now();
    CompileReport::PassProfile P;
    P.Pass = Name;
    P.Seconds = std::chrono::duration<double>(T1 - T0).count();
    P.Kept = Kept;
    Report.Passes.push_back(std::move(P));
    return Kept;
  }

  bool stopped() const { return Stopped; }

private:
  template <typename BodyFn>
  bool runPassImpl(const char *Name, bool Required, BodyFn &&Body) {
    if (!Opts.GuardRails) {
      Body();
      return true;
    }

    // Arm an undo journal rather than copying the function: the pass pays
    // for the blocks it actually mutates, not for the function's size.
    SnapshotJournal Journal;
    Journal.arm(F);
    const CompileReport Saved = Report;

    const size_t PreInsts = F.instructionCount();
    Body();
    if (Opts.FaultHook)
      Opts.FaultHook(Name, F);
    std::vector<Diagnostic> Diags = verifyFunctionDiagnostics(F, Name);
    // Resource guard: verified-but-exploded output is rolled back too,
    // with a resource-exhausted diagnostic rather than a generic one.
    // Only a pass that *grew* the function is charged; an input already
    // over budget is the frontend's problem, not this pass's.
    if (Diags.empty() && Opts.MaxFunctionInsts != 0 &&
        F.instructionCount() > Opts.MaxFunctionInsts &&
        F.instructionCount() > PreInsts)
      Diags.push_back(Diagnostic(
          ErrorCode::ResourceExhausted, Name, F.name(),
          "instruction budget exceeded: " +
              std::to_string(F.instructionCount()) + " > " +
              std::to_string(Opts.MaxFunctionInsts)));
    if (Diags.empty()) {
      Journal.commit();
      return true;
    }

    // The pass (or the fault hook standing in for a miscompiling pass)
    // produced bad IR: undo its changes and restore the pre-pass stats.
    Journal.rollback();
    Report = Saved;
    if (Opts.Remarks)
      Opts.Remarks->emit(Remark("pipeline", F.name(), "pass-rolled-back")
                             .arg("pass", Name)
                             .arg("required", Required));
    CompileReport::PassIncident Inc;
    Inc.Pass = Name;
    Inc.RolledBack = true;
    Inc.Diags = std::move(Diags);

    if (Required) {
      // Retry once from the clean state, without the fault hook: a
      // one-shot corruption vanishes, a genuinely broken pass does not.
      Inc.Retried = true;
      Journal.arm(F);
      Body();
      std::vector<Diagnostic> RetryDiags =
          verifyFunctionDiagnostics(F, Name);
      if (RetryDiags.empty() && Opts.MaxFunctionInsts != 0 &&
          F.instructionCount() > Opts.MaxFunctionInsts &&
          F.instructionCount() > PreInsts)
        RetryDiags.push_back(Diagnostic(
            ErrorCode::ResourceExhausted, Name, F.name(),
            "instruction budget exceeded: " +
                std::to_string(F.instructionCount()) + " > " +
                std::to_string(Opts.MaxFunctionInsts)));
      if (RetryDiags.empty()) {
        Journal.commit();
        Report.Incidents.push_back(std::move(Inc));
        return true;
      }
      Journal.rollback();
      Report = Saved;
      Inc.Diags.insert(Inc.Diags.end(),
                       std::make_move_iterator(RetryDiags.begin()),
                       std::make_move_iterator(RetryDiags.end()));
      Inc.PipelineStopped = true;
      Report.Incidents.push_back(std::move(Inc));
      Report.Succeeded = false;
      Stopped = true;
      if (Opts.Remarks)
        Opts.Remarks->emit(
            Remark("pipeline", F.name(), "pipeline-stopped").arg("pass",
                                                                 Name));
      return false;
    }

    // Optional pass: its effects are discarded and it stays off for the
    // rest of this compilation. The pipeline continues on the last good
    // IR (graceful degradation toward the unoptimized configuration).
    Inc.Disabled = true;
    Disabled.insert(Name);
    Report.Incidents.push_back(std::move(Inc));
    if (Opts.Remarks)
      Opts.Remarks->emit(
          Remark("pipeline", F.name(), "pass-disabled").arg("pass", Name));
    return false;
  }

  Function &F;
  const CompileOptions &Opts;
  CompileReport &Report;
  std::set<std::string> Disabled;
  bool Stopped = false;
};

} // namespace

CompileReport vpo::compileFunction(Function &F, const TargetMachine &TM,
                                   const CompileOptions &Opts) {
  CompileReport Report;

  // Input verification. A malformed kernel is a user error: with guard
  // rails it yields a failed report with diagnostics (and F untouched),
  // not an abort.
  if (Opts.GuardRails) {
    std::vector<Diagnostic> InputDiags =
        verifyFunctionDiagnostics(F, "frontend");
    if (!InputDiags.empty()) {
      CompileReport::PassIncident Inc;
      Inc.Pass = "frontend";
      Inc.PipelineStopped = true;
      Inc.Diags = std::move(InputDiags);
      Report.Incidents.push_back(std::move(Inc));
      Report.Succeeded = false;
      return Report;
    }
  } else {
    verifyOrDie(F, "frontend");
  }

  auto Trace = [&](const char *Stage) {
    if (Opts.TraceHook)
      Opts.TraceHook(Stage, F);
  };
  Trace("input");

  GuardedDriver Driver(F, Opts, Report);

  // Strength reduction first: front-end code addresses arrays as
  // base + iv*scale; the coalescer needs pointer induction variables.
  // The dead address arithmetic it leaves behind must be cleaned before
  // the unroller checks how induction variables are used.
  if (Opts.StrengthReduce) {
    bool Kept = Driver.runPass("strength-reduce", /*Required=*/false, [&] {
      Report.StrengthReduce = strengthReduce(F);
      if (Opts.Cleanup && Report.StrengthReduce.RefsRewritten > 0)
        Report.Cleanup += runCleanupPipeline(F);
    });
    if (Kept && Report.StrengthReduce.RefsRewritten > 0)
      Trace("strength-reduce");
  }

  // Recurrence optimization runs early: removing the loop-carried load
  // both saves a reference per iteration and clears the Fig. 4 hazard
  // that would otherwise block store coalescing of the recurrent stream.
  if (Opts.OptimizeRecurrences) {
    bool Kept = Driver.runPass("recurrence", /*Required=*/false, [&] {
      Report.Recurrence = optimizeRecurrences(F);
    });
    if (Kept && Report.Recurrence.RecurrencesOptimized > 0)
      Trace("recurrence");
  }

  // Register blocking: adjacent-subscript loads carried across
  // iterations in registers.
  if (Opts.ScalarReplace) {
    bool Kept = Driver.runPass("scalar-replace", /*Required=*/false, [&] {
      Report.ScalarReplace = replaceSubscriptedScalars(F);
    });
    if (Kept && Report.ScalarReplace.ChainsReplaced > 0)
      Trace("scalar-replace");
  }

  // Coalescing subsumes unrolling (paper Fig. 2). With Mode == None and
  // Unroll on, only the unrolling step runs — the unrolled-baseline
  // configurations of Tables II/III. A coalesce that miscompiles is
  // rolled back, leaving exactly the "vpo -O" pipeline.
  Driver.runPass("coalesce", /*Required=*/false, [&] {
    CoalesceOptions CO;
    CO.Mode = Opts.Mode;
    CO.Unroll = Opts.Unroll;
    CO.UnrollFactor = Opts.UnrollFactor;
    CO.IgnoreICacheHeuristic = Opts.IgnoreICacheHeuristic;
    CO.UseRuntimeChecks = Opts.UseRuntimeChecks;
    CO.OffsetAnalysis = Opts.OffsetAnalysis;
    CO.RequireProfitability = Opts.RequireProfitability;
    CO.MaxWideBytes = Opts.MaxWideBytes;
    CO.PressureClamp = Opts.PressureClamp;
    CO.SchedAudit = Opts.SchedAudit;
    CO.SchedAuditBudget = Opts.SchedAuditBudget;
    CO.ProfitabilitySkew = Opts.ProfitabilitySkew;
    CO.Remarks = Opts.Remarks;
    Report.Coalesce = coalesceMemoryAccesses(F, TM, CO);
  });
  Trace("coalesce");

  if (Opts.Cleanup)
    Driver.runPass("cleanup", /*Required=*/false, [&] {
      Report.Cleanup += runCleanupPipeline(F);
      if (!Opts.GuardRails)
        verifyOrDie(F, "cleanup");
    });

  // Legalization is required: without it the target cannot issue the
  // code. It gets the retry-once policy; if it genuinely cannot produce
  // verified IR the compile fails recoverably.
  Driver.runPass("legalize", /*Required=*/true, [&] {
    Report.Legalize = legalizeFunction(F, TM);
  });
  if (!Driver.stopped())
    Trace("legalize");

  if (Opts.Cleanup)
    Driver.runPass("cleanup-post-legalize", /*Required=*/false, [&] {
      Report.Cleanup += runCleanupPipeline(F);
      if (!Opts.GuardRails)
        verifyOrDie(F, "cleanup-post-legalize");
    });

  if (Opts.Schedule) {
    bool Kept = Driver.runPass("schedule", /*Required=*/false, [&] {
      // Opt-in exact scheduling: replace the list schedule wherever the
      // branch-and-bound search settles within the function's cumulative
      // state budget. The search is seeded with the list schedule, so a
      // block is never scheduled worse than the default pass would.
      uint64_t StatesLeft = Opts.ExactSchedBudget;
      for (const auto &BB : F.blocks()) {
        if (Opts.ExactSched && StatesLeft > 0) {
          ExactSchedulerOptions EO;
          EO.MaxStates = StatesLeft;
          ExactScheduleResult E = exactScheduleBlock(*BB, TM, EO);
          StatesLeft -= std::min(StatesLeft, E.StatesExplored);
          applySchedule(*BB, E.Best);
          ++Report.BlocksScheduled;
          if (Opts.Remarks)
            Opts.Remarks->emit(
                Remark("sched", F.name(), "exact-schedule")
                    .block(BB->name())
                    .arg("list-cycles", E.List.Cycles)
                    .arg("exact-cycles", E.Best.Cycles)
                    .arg("proved", E.Proved)
                    .arg("improved", E.Improved)
                    .arg("budget-exceeded", E.BudgetExceeded)
                    .arg("states", E.StatesExplored));
          continue;
        }
        ScheduleResult S = scheduleBlock(*BB, TM);
        applySchedule(*BB, S);
        ++Report.BlocksScheduled;
      }
      if (!Opts.GuardRails)
        verifyOrDie(F, "schedule");
    });
    if (Kept)
      Trace("schedule");
  }
  return Report;
}

std::vector<PipelineConfig> vpo::paperConfigs() {
  std::vector<PipelineConfig> Configs;
  {
    PipelineConfig C;
    C.Name = "cc -O (model)";
    C.Options.Mode = CoalesceMode::None;
    C.Options.Unroll = true;
    C.Options.Schedule = false;
    Configs.push_back(C);
  }
  {
    PipelineConfig C;
    C.Name = "vpo -O";
    C.Options.Mode = CoalesceMode::None;
    C.Options.Unroll = true;
    C.Options.Schedule = true;
    Configs.push_back(C);
  }
  {
    PipelineConfig C;
    C.Name = "coalesce loads";
    C.Options.Mode = CoalesceMode::Loads;
    C.Options.Unroll = true;
    C.Options.Schedule = true;
    Configs.push_back(C);
  }
  {
    PipelineConfig C;
    C.Name = "coalesce loads+stores";
    C.Options.Mode = CoalesceMode::LoadsAndStores;
    C.Options.Unroll = true;
    C.Options.Schedule = true;
    Configs.push_back(C);
  }
  return Configs;
}
