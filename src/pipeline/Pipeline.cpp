//===- pipeline/Pipeline.cpp ----------------------------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "pipeline/Pipeline.h"

#include "ir/Function.h"
#include "ir/Verifier.h"
#include "sched/ListScheduler.h"
#include "target/TargetMachine.h"

using namespace vpo;

CompileReport vpo::compileFunction(Function &F, const TargetMachine &TM,
                                   const CompileOptions &Opts) {
  CompileReport Report;
  verifyOrDie(F, "frontend");
  auto Trace = [&](const char *Stage) {
    if (Opts.TraceHook)
      Opts.TraceHook(Stage, F);
  };
  Trace("input");

  // Strength reduction first: front-end code addresses arrays as
  // base + iv*scale; the coalescer needs pointer induction variables.
  // The dead address arithmetic it leaves behind must be cleaned before
  // the unroller checks how induction variables are used.
  if (Opts.StrengthReduce) {
    Report.StrengthReduce = strengthReduce(F);
    if (Opts.Cleanup && Report.StrengthReduce.RefsRewritten > 0)
      Report.Cleanup += runCleanupPipeline(F);
    if (Report.StrengthReduce.RefsRewritten > 0)
      Trace("strength-reduce");
  }

  // Recurrence optimization runs first: removing the loop-carried load
  // both saves a reference per iteration and clears the Fig. 4 hazard
  // that would otherwise block store coalescing of the recurrent stream.
  if (Opts.OptimizeRecurrences) {
    Report.Recurrence = optimizeRecurrences(F);
    if (Report.Recurrence.RecurrencesOptimized > 0)
      Trace("recurrence");
  }

  // Register blocking: adjacent-subscript loads carried across
  // iterations in registers.
  if (Opts.ScalarReplace) {
    Report.ScalarReplace = replaceSubscriptedScalars(F);
    if (Report.ScalarReplace.ChainsReplaced > 0)
      Trace("scalar-replace");
  }

  // Coalescing subsumes unrolling (paper Fig. 2). With Mode == None and
  // Unroll on, only the unrolling step runs — the unrolled-baseline
  // configurations of Tables II/III.
  CoalesceOptions CO;
  CO.Mode = Opts.Mode;
  CO.Unroll = Opts.Unroll;
  CO.UnrollFactor = Opts.UnrollFactor;
  CO.IgnoreICacheHeuristic = Opts.IgnoreICacheHeuristic;
  CO.UseRuntimeChecks = Opts.UseRuntimeChecks;
  CO.RequireProfitability = Opts.RequireProfitability;
  CO.MaxWideBytes = Opts.MaxWideBytes;
  Report.Coalesce = coalesceMemoryAccesses(F, TM, CO);
  Trace("coalesce");

  if (Opts.Cleanup) {
    Report.Cleanup += runCleanupPipeline(F);
    verifyOrDie(F, "cleanup");
  }

  Report.Legalize = legalizeFunction(F, TM);
  Trace("legalize");

  if (Opts.Cleanup) {
    Report.Cleanup += runCleanupPipeline(F);
    verifyOrDie(F, "cleanup-post-legalize");
  }

  if (Opts.Schedule) {
    for (const auto &BB : F.blocks()) {
      ScheduleResult S = scheduleBlock(*BB, TM);
      applySchedule(*BB, S);
      ++Report.BlocksScheduled;
    }
    verifyOrDie(F, "schedule");
    Trace("schedule");
  }
  return Report;
}

std::vector<PipelineConfig> vpo::paperConfigs() {
  std::vector<PipelineConfig> Configs;
  {
    PipelineConfig C;
    C.Name = "cc -O (model)";
    C.Options.Mode = CoalesceMode::None;
    C.Options.Unroll = true;
    C.Options.Schedule = false;
    Configs.push_back(C);
  }
  {
    PipelineConfig C;
    C.Name = "vpo -O";
    C.Options.Mode = CoalesceMode::None;
    C.Options.Unroll = true;
    C.Options.Schedule = true;
    Configs.push_back(C);
  }
  {
    PipelineConfig C;
    C.Name = "coalesce loads";
    C.Options.Mode = CoalesceMode::Loads;
    C.Options.Unroll = true;
    C.Options.Schedule = true;
    Configs.push_back(C);
  }
  {
    PipelineConfig C;
    C.Name = "coalesce loads+stores";
    C.Options.Mode = CoalesceMode::LoadsAndStores;
    C.Options.Unroll = true;
    C.Options.Schedule = true;
    Configs.push_back(C);
  }
  return Configs;
}
