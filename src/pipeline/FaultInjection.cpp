//===- pipeline/FaultInjection.cpp ----------------------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "pipeline/FaultInjection.h"

#include "ir/Function.h"
#include "support/RNG.h"
#include "support/StringUtils.h"

#include <cstring>
#include <vector>

using namespace vpo;

const char *vpo::faultKindName(FaultKind K) {
  switch (K) {
  case FaultKind::WrongWidth:
    return "wrong-width";
  case FaultKind::ClobberedBase:
    return "clobbered-base";
  case FaultKind::DroppedCheck:
    return "dropped-check";
  case FaultKind::MissingOperand:
    return "missing-operand";
  case FaultKind::EmptyBlock:
    return "empty-block";
  case FaultKind::UnsoundProve:
    return "unsound-prove";
  case FaultKind::SchedLength:
    return "sched-length";
  }
  return "unknown";
}

namespace {

/// A corruptible site: instruction \p InstIdx of block \p BlockIdx (the
/// instruction index is unused for EmptyBlock).
struct Site {
  size_t BlockIdx;
  size_t InstIdx;
};

bool isBinaryAlu(Opcode Op) {
  switch (Op) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::DivS:
  case Opcode::DivU:
  case Opcode::RemS:
  case Opcode::RemU:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::ShrA:
  case Opcode::ShrL:
  case Opcode::CmpSet:
    return true;
  default:
    return false;
  }
}

/// Collects every site \p Kind can damage.
std::vector<Site> collectSites(const Function &F, FaultKind Kind) {
  std::vector<Site> Sites;
  // SchedLength is not IR damage: it lives in the profitability compare's
  // inputs (CoalesceOptions::ProfitabilitySkew), so there is nothing here
  // to corrupt.
  if (Kind == FaultKind::SchedLength)
    return Sites;
  const auto &Blocks = F.blocks();
  for (size_t BI = 0; BI < Blocks.size(); ++BI) {
    const BasicBlock &BB = *Blocks[BI];
    if (Kind == FaultKind::EmptyBlock) {
      if (!BB.empty())
        Sites.push_back({BI, 0});
      continue;
    }
    for (size_t II = 0; II < BB.size(); ++II) {
      const Instruction &I = BB.insts()[II];
      bool Applies = false;
      switch (Kind) {
      case FaultKind::WrongWidth:
        Applies = I.Op == Opcode::Load || I.Op == Opcode::Store;
        break;
      case FaultKind::ClobberedBase:
        Applies = I.isMemory();
        break;
      case FaultKind::DroppedCheck:
        Applies = I.Op == Opcode::Br;
        break;
      case FaultKind::MissingOperand:
        Applies = isBinaryAlu(I.Op);
        break;
      case FaultKind::UnsoundProve:
        // The dispatch out of a run-time check block: RuntimeChecks names
        // these '<fastloop>.checks', and each ends in a conditional
        // branch whose false target is the fast loop.
        Applies = I.Op == Opcode::Br && I.FalseTarget &&
                  BB.name().find(".checks") != std::string::npos;
        break;
      case FaultKind::EmptyBlock:
      case FaultKind::SchedLength:
        break;
      }
      if (Applies)
        Sites.push_back({BI, II});
    }
  }
  return Sites;
}

} // namespace

std::string vpo::injectFault(Function &F, FaultKind Kind, uint64_t Seed) {
  std::vector<Site> Sites = collectSites(F, Kind);
  if (Sites.empty())
    return "";

  RNG R(Seed);
  Site S = Sites[R.nextBelow(Sites.size())];
  BasicBlock &BB = *F.blocks()[S.BlockIdx];

  if (Kind == FaultKind::EmptyBlock) {
    size_t Dropped = BB.size();
    BB.insts().clear();
    return strformat("emptied block '%s' (%zu instructions dropped)",
                     BB.name().c_str(), Dropped);
  }

  Instruction &I = BB.insts()[S.InstIdx];
  switch (Kind) {
  case FaultKind::WrongWidth:
    I.IsFloat = true;
    I.W = MemWidth::W1;
    return strformat("rewrote %s in '%s' to an f8 reference",
                     I.Op == Opcode::Load ? "load" : "store",
                     BB.name().c_str());
  case FaultKind::ClobberedBase: {
    Reg Bogus(F.regUpperBound() + 7);
    I.Addr.Base = Bogus;
    return strformat("clobbered base of memory reference in '%s' with r%u",
                     BB.name().c_str(), Bogus.Id);
  }
  case FaultKind::DroppedCheck:
    I.FalseTarget = nullptr;
    return strformat("dropped false target of branch in '%s'",
                     BB.name().c_str());
  case FaultKind::MissingOperand:
    I.B = Operand();
    return strformat("cleared rhs operand of ALU instruction in '%s'",
                     BB.name().c_str());
  case FaultKind::UnsoundProve: {
    // Verifier-clean by construction: a well-formed unconditional jump
    // that always claims the checks passed.
    BasicBlock *Fast = I.FalseTarget;
    I.Op = Opcode::Jmp;
    I.A = Operand();
    I.B = Operand();
    I.TrueTarget = Fast;
    I.FalseTarget = nullptr;
    return strformat("short-circuited check dispatch in '%s' to '%s'",
                     BB.name().c_str(), Fast->name().c_str());
  }
  case FaultKind::EmptyBlock:
  case FaultKind::SchedLength:
    break; // EmptyBlock handled above; SchedLength has no IR site
  }
  return "";
}

bool FaultInjector::operator()(const char *Pass, Function &F) {
  if (S->Fired || std::strcmp(Pass, S->AfterPass.c_str()) != 0)
    return false;
  S->Fired = true;
  S->Description = injectFault(F, S->Kind, S->Seed);
  return !S->Description.empty();
}
