//===- pipeline/FaultInjection.h - Deterministic IR corruption ---*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fault-injection harness for exercising the pipeline's guard rails.
/// injectFault deterministically corrupts one site in a function with a
/// verifier-detectable defect — the kinds of damage a buggy transform
/// would do (wrong reference width, clobbered base register, dropped
/// branch target, lost operand, emptied block). FaultInjector packages
/// that as a one-shot CompileOptions::FaultHook so a test can corrupt
/// the IR right after a chosen pass and assert that the driver rolls it
/// back and still produces golden-matching output.
///
/// Everything here is seeded through support/RNG.h: the same (function,
/// kind, seed) triple always corrupts the same site, so failures are
/// replayable.
///
//===----------------------------------------------------------------------===//

#ifndef VPO_PIPELINE_FAULTINJECTION_H
#define VPO_PIPELINE_FAULTINJECTION_H

#include <cstdint>
#include <memory>
#include <string>

namespace vpo {

class Function;

/// The classes of IR damage the harness can inflict. Each is guaranteed
/// to be caught by verifyFunction — except UnsoundProve, which is
/// deliberately verifier-clean and can only be caught by a differential
/// oracle observing the program's behavior.
enum class FaultKind : uint8_t {
  /// A memory reference's width is rewritten to one the type system
  /// forbids (an f8 load) — the "coalescer picked the wrong width" bug.
  WrongWidth,
  /// A memory reference's base register is replaced with one beyond the
  /// allocator bound — the "address arithmetic lost its def" bug.
  ClobberedBase,
  /// A conditional branch loses its false target — the "run-time check
  /// dispatch was dropped" bug.
  DroppedCheck,
  /// An ALU instruction loses an operand — the "rewrite forgot to fill
  /// in the new operand" bug.
  MissingOperand,
  /// A basic block is emptied — the "pass deleted the loop body" bug.
  EmptyBlock,
  /// A run-time check dispatch (the branch terminating a `*.checks`
  /// block) is rewritten into an unconditional jump to its false target,
  /// the fast coalesced loop — the "static analysis proved the checks
  /// unnecessary when they weren't" bug. Unlike every other kind this
  /// leaves the IR verifier-clean: the resulting function is well-formed
  /// and merely computes the wrong thing on overlapping or misaligned
  /// inputs, so only the behavioral oracle can catch it.
  UnsoundProve,
  /// The Fig. 3 profitability compare is fed a wrong schedule length for
  /// the coalesced loop — the "cost model lied" bug. This one corrupts no
  /// IR at all (injectFault has no site for it and returns ""): the fuzz
  /// oracle plants it through CoalesceOptions::ProfitabilitySkew instead,
  /// and only the exact-scheduler audit (sched-audit / profitability-
  /// flipped remarks) can expose it. Self-tests the audit end to end.
  SchedLength,
};

/// \returns a printable name for a fault kind.
const char *faultKindName(FaultKind K);

/// Corrupts one deterministically chosen site in \p F with \p Kind.
/// \returns a human-readable description of what was damaged, or the
/// empty string when \p F has no site the kind applies to (the function
/// is then unchanged).
std::string injectFault(Function &F, FaultKind Kind, uint64_t Seed);

/// A one-shot fault bound to a pipeline position: bindable directly to
/// CompileOptions::FaultHook, it corrupts the IR the first time the
/// guarded driver finishes the pass named \p AfterPass, then goes
/// dormant — so the driver's retry of a required pass sees clean IR.
/// Copies share state (std::function copies its callable), so fired()
/// and description() on the original observe the hook's effect.
class FaultInjector {
public:
  FaultInjector(std::string AfterPass, FaultKind Kind, uint64_t Seed)
      : S(std::make_shared<State>()) {
    S->AfterPass = std::move(AfterPass);
    S->Kind = Kind;
    S->Seed = Seed;
  }

  /// FaultHook signature. \returns true if the IR was mutated.
  bool operator()(const char *Pass, Function &F);

  /// True once the fault has been injected.
  bool fired() const { return S->Fired; }

  /// What injectFault reported; empty until fired (or if no site).
  const std::string &description() const { return S->Description; }

private:
  struct State {
    std::string AfterPass;
    FaultKind Kind = FaultKind::WrongWidth;
    uint64_t Seed = 0;
    bool Fired = false;
    std::string Description;
  };
  std::shared_ptr<State> S;
};

} // namespace vpo

#endif // VPO_PIPELINE_FAULTINJECTION_H
