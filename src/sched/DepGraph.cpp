//===- sched/DepGraph.cpp -------------------------------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "sched/DepGraph.h"

#include "ir/Function.h"
#include "target/TargetMachine.h"

#include <unordered_map>

using namespace vpo;

DepGraph::DepGraph(const BasicBlock &BB, const TargetMachine &TM) {
  NumNodes = BB.size();
  Succs.resize(NumNodes);
  Preds.resize(NumNodes);
  Heights.assign(NumNodes, 0);

  std::unordered_map<unsigned, size_t> LastDef;             // reg -> node
  std::unordered_map<unsigned, std::vector<size_t>> Readers; // since last def
  std::vector<size_t> MemNodes; // loads and stores in order
  std::vector<Reg> Uses;

  const auto &Insts = BB.insts();
  for (size_t N = 0; N < NumNodes; ++N) {
    const Instruction &I = Insts[N];

    // Register dependences.
    Uses.clear();
    I.collectUses(Uses);
    for (Reg U : Uses) {
      auto It = LastDef.find(U.Id);
      if (It != LastDef.end())
        addEdge(It->second, N, TM.latency(Insts[It->second]), DepKind::RAW);
      Readers[U.Id].push_back(N);
    }
    if (auto D = I.def()) {
      auto It = LastDef.find(D->Id);
      if (It != LastDef.end())
        addEdge(It->second, N, 1, DepKind::WAW);
      for (size_t Reader : Readers[D->Id])
        if (Reader != N)
          addEdge(Reader, N, 0, DepKind::WAR);
      Readers[D->Id].clear();
      LastDef[D->Id] = N;
    }

    // Memory ordering: conservative — a store is ordered against every
    // earlier memory operation; a load is ordered against earlier stores.
    if (I.isMemory()) {
      for (size_t M : MemNodes) {
        bool EarlierIsStore = Insts[M].isStore();
        if (I.isStore() || EarlierIsStore)
          addEdge(M, N, 1, DepKind::Mem);
      }
      MemNodes.push_back(N);
    }

    // The terminator is ordered after everything.
    if (I.isTerminator())
      for (size_t P = 0; P < N; ++P)
        addEdge(P, N, 0, DepKind::Ctrl);
  }

  // Critical-path heights (reverse topological order = reverse program
  // order, since all edges go forward).
  for (size_t N = NumNodes; N-- > 0;) {
    unsigned H = TM.latency(Insts[N]);
    for (size_t EIdx : Succs[N]) {
      const DepEdge &E = Edges[EIdx];
      if (Heights[E.To] + E.Latency + 1 > H)
        H = Heights[E.To] + E.Latency + 1;
    }
    Heights[N] = H;
  }
}

void DepGraph::addEdge(size_t From, size_t To, unsigned Latency,
                       DepKind Kind) {
  assert(From < To && "dependence edges must go forward in program order");
  Edges.push_back(DepEdge{From, To, Latency, Kind});
  Succs[From].push_back(Edges.size() - 1);
  Preds[To].push_back(Edges.size() - 1);
}
