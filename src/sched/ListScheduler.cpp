//===- sched/ListScheduler.cpp --------------------------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "sched/ListScheduler.h"

#include "ir/Function.h"
#include "sched/DepGraph.h"
#include "target/TargetMachine.h"

#include <algorithm>
#include <cassert>

using namespace vpo;

ScheduleResult vpo::scheduleBlock(const BasicBlock &BB,
                                  const TargetMachine &TM) {
  DepGraph DG(BB, TM);
  size_t N = DG.size();
  ScheduleResult Res;
  Res.Order.reserve(N);
  if (N == 0)
    return Res;

  std::vector<unsigned> UnscheduledPreds(N, 0);
  std::vector<uint64_t> EarliestStart(N, 0);
  for (size_t I = 0; I < N; ++I)
    UnscheduledPreds[I] = static_cast<unsigned>(DG.preds(I).size());

  std::vector<size_t> Ready;
  for (size_t I = 0; I < N; ++I)
    if (UnscheduledPreds[I] == 0)
      Ready.push_back(I);

  uint64_t Clock = 0;
  size_t Scheduled = 0;
  while (Scheduled < N) {
    // Pick the ready node with the greatest critical-path height that can
    // start at or before the current clock; if none can, the one with the
    // smallest start time (stall).
    assert(!Ready.empty() && "dependence cycle in a basic block DAG?");
    size_t BestIdx = 0;
    bool BestStartable = false;
    for (size_t RI = 0; RI < Ready.size(); ++RI) {
      size_t Cand = Ready[RI];
      size_t Best = Ready[BestIdx];
      bool CandStartable = EarliestStart[Cand] <= Clock;
      if (CandStartable != BestStartable) {
        if (CandStartable) {
          BestIdx = RI;
          BestStartable = true;
        }
        continue;
      }
      if (CandStartable) {
        if (DG.height(Cand) > DG.height(Best) ||
            (DG.height(Cand) == DG.height(Best) && Cand < Best))
          BestIdx = RI;
      } else {
        if (EarliestStart[Cand] < EarliestStart[Best] ||
            (EarliestStart[Cand] == EarliestStart[Best] &&
             DG.height(Cand) > DG.height(Best)))
          BestIdx = RI;
      }
    }
    size_t Node = Ready[BestIdx];
    Ready.erase(Ready.begin() + static_cast<ptrdiff_t>(BestIdx));

    uint64_t Start = std::max(Clock, EarliestStart[Node]);
    Res.Order.push_back(Node);
    ++Scheduled;
    // Single issue; memory references may occupy the port for several
    // cycles, and non-pipelined machines block for the full latency.
    Clock = Start + TM.issueCycles(BB.insts()[Node]);

    for (size_t EIdx : DG.succs(Node)) {
      const DepEdge &E = DG.edges()[EIdx];
      uint64_t Avail = Start + E.Latency;
      if (Avail > EarliestStart[E.To])
        EarliestStart[E.To] = Avail;
      if (--UnscheduledPreds[E.To] == 0)
        Ready.push_back(E.To);
    }
    // Track the makespan: completion of this node.
    uint64_t Finish = Start + TM.latency(BB.insts()[Node]);
    if (Finish > Res.Cycles)
      Res.Cycles = static_cast<unsigned>(Finish);
  }
  return Res;
}

unsigned vpo::estimateBlockCycles(const BasicBlock &BB,
                                  const TargetMachine &TM) {
  // Simulate the scoreboard over the existing order.
  DepGraph DG(BB, TM);
  size_t N = DG.size();
  std::vector<uint64_t> Start(N, 0);
  uint64_t Clock = 0, Makespan = 0;
  for (size_t I = 0; I < N; ++I) {
    uint64_t S = Clock;
    for (size_t EIdx : DG.preds(I)) {
      const DepEdge &E = DG.edges()[EIdx];
      uint64_t Avail = Start[E.From] + E.Latency;
      if (Avail > S)
        S = Avail;
    }
    Start[I] = S;
    Clock = S + TM.issueCycles(BB.insts()[I]);
    uint64_t Finish = S + TM.latency(BB.insts()[I]);
    if (Finish > Makespan)
      Makespan = Finish;
    if (Clock > Makespan)
      Makespan = Clock;
  }
  return static_cast<unsigned>(Makespan);
}

void vpo::applySchedule(BasicBlock &BB, const ScheduleResult &S) {
  assert(S.Order.size() == BB.size() && "schedule does not match block");
  std::vector<Instruction> NewInsts;
  NewInsts.reserve(BB.size());
  for (size_t Idx : S.Order)
    NewInsts.push_back(BB.insts()[Idx]);
  BB.insts() = std::move(NewInsts);
  assert(BB.insts().back().isTerminator() &&
         "schedule moved the terminator off the end");
}
