//===- sched/ExactScheduler.h - Branch-and-bound scheduling ------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An exact basic-block scheduler: branch-and-bound over the dependence
/// DAG under precisely the list scheduler's timing model (single issue,
/// issue occupancy, scoreboarded latencies). For a block it either
///
///   - *proves* the list schedule optimal (its makespan equals a lower
///     bound, or the exhaustive search finds nothing shorter), or
///   - returns a strictly shorter schedule, or
///   - gives up against the state budget (BudgetExceeded), in which case
///     the list schedule stands unjudged.
///
/// Because the search is seeded with the list schedule as its incumbent,
/// the result is never longer than the list schedule — callers can apply
/// it unconditionally.
///
/// Two lower bounds prune the search, both memoized up front from the
/// DepGraph:
///   - critical path: for each node, the longest latency tail to any sink;
///     an unscheduled node n cannot finish before EarliestStart[n] +
///     tail(n);
///   - resource: a single-issue machine needs at least the sum of the
///     unscheduled instructions' issue occupancies, and the terminator
///     (forced last by control edges) still needs its own latency.
///
/// Used two ways (mirroring the list scheduler's own dual role): as an
/// opt-in pipeline pass that replaces list schedules on small blocks, and
/// as the telemetry-only audit oracle that re-derives the Fig. 3
/// profitability verdicts in coalescing.
///
//===----------------------------------------------------------------------===//

#ifndef VPO_SCHED_EXACTSCHEDULER_H
#define VPO_SCHED_EXACTSCHEDULER_H

#include "sched/ListScheduler.h"

#include <cstddef>
#include <cstdint>

namespace vpo {

class BasicBlock;
class TargetMachine;

struct ExactSchedulerOptions {
  /// Branch-and-bound states to expand before giving up. The bound-equal
  /// fast path (list makespan == lower bound) costs zero states, so most
  /// blocks are proved optimal without any search.
  uint64_t MaxStates = 200000;
  /// Blocks larger than this are not searched; they can still be proved
  /// optimal by the bound-equal fast path. The cap bounds per-state cost
  /// (each expansion is O(N) for the bound and ready-list), not
  /// correctness — MaxStates is the real work limit. 192 comfortably
  /// covers the paper matrix's largest unrolled bodies (~160
  /// instructions at factor 16).
  size_t MaxBlockSize = 192;
};

struct ExactScheduleResult {
  /// The list schedule the search started from.
  ScheduleResult List;
  /// The best schedule known: the list schedule, or a strictly shorter
  /// one when Improved. Safe to apply unconditionally.
  ScheduleResult Best;
  /// Best.Cycles is provably minimal.
  bool Proved = false;
  /// Best is strictly shorter than List.
  bool Improved = false;
  /// The search hit MaxStates (or the block exceeded MaxBlockSize with a
  /// makespan above the lower bound); optimality is unknown.
  bool BudgetExceeded = false;
  /// States the branch-and-bound expanded (0 when the fast path decided).
  uint64_t StatesExplored = 0;

  /// The block's verdict is settled: proved optimal or improved. The only
  /// other outcome is BudgetExceeded.
  bool conclusive() const { return Proved || Improved; }
};

/// Exactly schedules \p BB without modifying it.
ExactScheduleResult exactScheduleBlock(const BasicBlock &BB,
                                       const TargetMachine &TM,
                                       const ExactSchedulerOptions &Opts = {});

} // namespace vpo

#endif // VPO_SCHED_EXACTSCHEDULER_H
