//===- sched/ListScheduler.h - Latency-driven list scheduling ----*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A classic critical-path list scheduler for one basic block, used two
/// ways (paper Fig. 3):
///
///  1. `Schedule(LOOP)` / `Schedule(LCOPY)`: estimate the cycle count of
///     the original and the coalesced loop bodies to decide profitability;
///  2. reorder the surviving loop body to hide load latency.
///
//===----------------------------------------------------------------------===//

#ifndef VPO_SCHED_LISTSCHEDULER_H
#define VPO_SCHED_LISTSCHEDULER_H

#include <cstddef>
#include <vector>

namespace vpo {

class BasicBlock;
class TargetMachine;

struct ScheduleResult {
  /// New order: Order[i] = index of the instruction (in the original
  /// block) to place at position i.
  std::vector<size_t> Order;
  /// Estimated makespan of the block in cycles on a single-issue,
  /// scoreboarded machine.
  unsigned Cycles = 0;
};

/// Computes a schedule for \p BB without modifying it.
ScheduleResult scheduleBlock(const BasicBlock &BB, const TargetMachine &TM);

/// Estimated cycles of \p BB *as currently ordered* (no reordering):
/// used to cost a block whose order will not change.
unsigned estimateBlockCycles(const BasicBlock &BB, const TargetMachine &TM);

/// Reorders \p BB in place according to \p S.
void applySchedule(BasicBlock &BB, const ScheduleResult &S);

} // namespace vpo

#endif // VPO_SCHED_LISTSCHEDULER_H
