//===- sched/ExactScheduler.cpp -------------------------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "sched/ExactScheduler.h"

#include "ir/Function.h"
#include "sched/DepGraph.h"
#include "target/TargetMachine.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>
#include <utility>

using namespace vpo;

namespace {

/// FNV-1a over the scheduled-set words: two states are candidates for
/// dominance only when they schedule exactly the same set of nodes.
struct SetHash {
  size_t operator()(const std::vector<uint64_t> &V) const {
    size_t H = 1469598103934665603ull;
    for (uint64_t W : V) {
      H ^= W;
      H *= 1099511628211ull;
    }
    return H;
  }
};

/// The branch-and-bound search. Timing is bit-for-bit the list
/// scheduler's: Start = max(Clock, EarliestStart), Clock advances by the
/// issue occupancy, the makespan is the latest completion.
class Search {
public:
  Search(const BasicBlock &BB, const TargetMachine &TM, const DepGraph &DG,
         uint64_t MaxStates, ExactScheduleResult &Res)
      : BB(BB), TM(TM), DG(DG), MaxStates(MaxStates), Res(Res) {
    size_t N = DG.size();
    UnscheduledPreds.resize(N);
    for (size_t I = 0; I < N; ++I)
      UnscheduledPreds[I] = static_cast<unsigned>(DG.preds(I).size());
    EarliestStart.assign(N, 0);
    Scheduled.assign(N, false);
    SetWords.assign((N + 63) / 64, 0);
    CurOrder.reserve(N);

    // Memoized critical-path tails: the longest latency path from each
    // node to any sink, counting the node's own latency. Reverse program
    // order is reverse topological order (all edges go forward).
    Tail.assign(N, 0);
    for (size_t I = N; I-- > 0;) {
      uint64_t T = TM.latency(BB.insts()[I]);
      for (size_t EIdx : DG.succs(I)) {
        const DepEdge &E = DG.edges()[EIdx];
        T = std::max(T, E.Latency + Tail[E.To]);
      }
      Tail[I] = T;
    }

    // Heads: the longest latency path from any source to each node — an
    // absolute lower bound on the node's start time in every schedule.
    // Program order is topological order, so one forward pass suffices.
    Head.assign(N, 0);
    for (size_t I = 0; I < N; ++I)
      for (size_t EIdx : DG.preds(I)) {
        const DepEdge &E = DG.edges()[EIdx];
        Head[I] = std::max(Head[I], Head[E.From] + E.Latency);
      }

    // The terminator (forced last by control edges) completes after all
    // other issue work; the release bound accounts for it separately.
    TermIdx = SIZE_MAX;
    if (N > 0 && BB.insts()[N - 1].isTerminator())
      TermIdx = N - 1;
  }

  /// Lower bound on any completion of the empty (initial) state.
  uint64_t initialLowerBound() const {
    uint64_t CP = 0;
    for (size_t I = 0; I < DG.size(); ++I)
      CP = std::max(CP, Head[I] + Tail[I]);
    return std::max(CP, releaseBound(0));
  }

  void run() {
    dfs(0, 0);
    if (!Aborted)
      Res.Proved = true; // exhausted: the incumbent is minimal
    else
      Res.BudgetExceeded = true;
  }

private:
  /// Single-machine release-time bound (1|r_j|Cmax): each unscheduled
  /// non-terminator cannot start before r_j = max(Clock, its earliest
  /// start from scheduled preds, its head path), and the machine then
  /// serves issue occupancies one at a time — so for every j, issue work
  /// cannot drain before r_j plus the occupancy of everything released at
  /// or after r_j. This dominates the plain Clock + remaining-issue
  /// resource bound and additionally captures latency-forced idle time
  /// (e.g. a block whose first loads stall all their consumers).
  uint64_t releaseBound(uint64_t Clock) const {
    Releases.clear();
    for (size_t I = 0; I < DG.size(); ++I) {
      if (Scheduled[I] || I == TermIdx)
        continue;
      uint64_t R = std::max({Clock, EarliestStart[I], Head[I]});
      Releases.emplace_back(R, TM.issueCycles(BB.insts()[I]));
    }
    std::sort(Releases.begin(), Releases.end());
    uint64_t Bound = Clock, Suffix = 0;
    for (size_t I = Releases.size(); I-- > 0;) {
      Suffix += Releases[I].second;
      Bound = std::max(Bound, Releases[I].first + Suffix);
    }
    uint64_t TermLat =
        TermIdx == SIZE_MAX ? 0 : TM.latency(BB.insts()[TermIdx]);
    return Bound + TermLat;
  }

  void dfs(uint64_t Clock, uint64_t Makespan) {
    if (Aborted)
      return;
    if (CurOrder.size() == DG.size()) {
      if (Makespan < Res.Best.Cycles) {
        Res.Best.Order = CurOrder;
        Res.Best.Cycles = static_cast<unsigned>(Makespan);
        Res.Improved = true;
      }
      return;
    }
    if (++Res.StatesExplored > MaxStates) {
      Aborted = true;
      return;
    }

    // Bound this state: current makespan, the release-time resource
    // bound, and the critical-path bound over every unscheduled node.
    uint64_t LB = std::max(Makespan, releaseBound(Clock));
    for (size_t I = 0; I < DG.size(); ++I)
      if (!Scheduled[I])
        LB = std::max(
            LB, std::max({Clock, EarliestStart[I], Head[I]}) + Tail[I]);
    if (LB >= Res.Best.Cycles)
      return;

    // History domination — the decisive pruning for blocks with many
    // independent chains (unrolled loop bodies), where plain DFS explores
    // every interleaving of equivalent prefixes. If some earlier expanded
    // state scheduled exactly this node set with no-later clock, no-later
    // makespan, and no-later operand availability for every unscheduled
    // node, then every completion of this state is matched or beaten from
    // that one, so the subtree is redundant.
    if (!historyAdmit(Clock, Makespan))
      return;

    // Ready nodes, most promising first: startable before stalled, then
    // earlier start, then longer tail, then index (deterministic).
    std::vector<size_t> Ready;
    for (size_t I = 0; I < DG.size(); ++I)
      if (!Scheduled[I] && UnscheduledPreds[I] == 0)
        Ready.push_back(I);
    std::sort(Ready.begin(), Ready.end(), [&](size_t A, size_t B) {
      uint64_t SA = std::max(Clock, EarliestStart[A]);
      uint64_t SB = std::max(Clock, EarliestStart[B]);
      if (SA != SB)
        return SA < SB;
      if (Tail[A] != Tail[B])
        return Tail[A] > Tail[B];
      return A < B;
    });

    for (size_t Node : Ready) {
      uint64_t Start = std::max(Clock, EarliestStart[Node]);
      uint64_t Issue = TM.issueCycles(BB.insts()[Node]);
      uint64_t NewMakespan =
          std::max(Makespan, Start + TM.latency(BB.insts()[Node]));

      Scheduled[Node] = true;
      SetWords[Node >> 6] ^= 1ull << (Node & 63);
      CurOrder.push_back(Node);
      // Update successors' earliest starts, remembering what to restore.
      std::vector<std::pair<size_t, uint64_t>> Saved;
      for (size_t EIdx : DG.succs(Node)) {
        const DepEdge &E = DG.edges()[EIdx];
        uint64_t Avail = Start + E.Latency;
        if (Avail > EarliestStart[E.To]) {
          Saved.emplace_back(E.To, EarliestStart[E.To]);
          EarliestStart[E.To] = Avail;
        }
        --UnscheduledPreds[E.To];
      }

      dfs(Start + Issue, NewMakespan);

      for (size_t EIdx : DG.succs(Node)) {
        const DepEdge &E = DG.edges()[EIdx];
        ++UnscheduledPreds[E.To];
      }
      for (auto It = Saved.rbegin(); It != Saved.rend(); ++It)
        EarliestStart[It->first] = It->second;
      CurOrder.pop_back();
      Scheduled[Node] = false;
      SetWords[Node >> 6] ^= 1ull << (Node & 63);
      if (Aborted)
        return;
    }
  }

  /// One expanded state over a given scheduled set: when the machine was
  /// free again (Clock), the makespan so far, and the unscheduled nodes
  /// whose operands arrive only after Clock (everything else is available
  /// immediately, which Clock comparison alone covers).
  struct Hist {
    uint64_t Clock;
    uint64_t Makespan;
    std::vector<std::pair<uint32_t, uint64_t>> Lags;
  };

  /// \returns false when a previously expanded state dominates the
  /// current one (prune); otherwise records the current state and returns
  /// true. Sound because a dominating state A (same set, Clock_A <=
  /// Clock_B, Makespan_A <= Makespan_B, avail_A(n) <= avail_B(n) for all
  /// unscheduled n, where avail(n) = max(Clock, EarliestStart[n])) can
  /// replay any completion order of B no later at every step.
  bool historyAdmit(uint64_t Clock, uint64_t Makespan) {
    std::vector<Hist> &Entries = History[SetWords];
    for (const Hist &H : Entries) {
      if (H.Clock > Clock || H.Makespan > Makespan)
        continue;
      bool Dominates = true;
      for (const std::pair<uint32_t, uint64_t> &L : H.Lags)
        if (L.second > std::max(Clock, EarliestStart[L.first])) {
          Dominates = false;
          break;
        }
      if (Dominates)
        return false;
    }
    // Record (bounded by the state budget, so memory tracks MaxStates).
    if (HistEntries <= MaxStates) {
      ++HistEntries;
      Hist H;
      H.Clock = Clock;
      H.Makespan = Makespan;
      for (size_t I = 0; I < DG.size(); ++I)
        if (!Scheduled[I] && EarliestStart[I] > Clock)
          H.Lags.emplace_back(static_cast<uint32_t>(I), EarliestStart[I]);
      Entries.push_back(std::move(H));
    }
    return true;
  }

  const BasicBlock &BB;
  const TargetMachine &TM;
  const DepGraph &DG;
  uint64_t MaxStates;
  ExactScheduleResult &Res;
  std::unordered_map<std::vector<uint64_t>, std::vector<Hist>, SetHash>
      History;
  uint64_t HistEntries = 0;
  std::vector<uint64_t> SetWords;

  std::vector<unsigned> UnscheduledPreds;
  std::vector<uint64_t> EarliestStart;
  std::vector<uint64_t> Tail;
  std::vector<uint64_t> Head;
  std::vector<bool> Scheduled;
  std::vector<size_t> CurOrder;
  size_t TermIdx = SIZE_MAX;
  bool Aborted = false;
  /// Scratch for releaseBound (avoids a per-state allocation).
  mutable std::vector<std::pair<uint64_t, uint64_t>> Releases;
};

} // namespace

ExactScheduleResult vpo::exactScheduleBlock(const BasicBlock &BB,
                                            const TargetMachine &TM,
                                            const ExactSchedulerOptions &Opts) {
  ExactScheduleResult Res;
  Res.List = scheduleBlock(BB, TM);
  Res.Best = Res.List;
  if (BB.size() == 0) {
    Res.Proved = true;
    return Res;
  }

  DepGraph DG(BB, TM);
  Search S(BB, TM, DG, Opts.MaxStates, Res);

  // Fast path: the list schedule already meets a lower bound, so it is
  // optimal without expanding a single state.
  if (Res.List.Cycles <= S.initialLowerBound()) {
    Res.Proved = true;
    return Res;
  }

  if (BB.size() > Opts.MaxBlockSize) {
    Res.BudgetExceeded = true;
    return Res;
  }

  S.run();
  return Res;
}
