//===- sched/DepGraph.h - Basic-block dependence DAG -------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dependence DAG over one basic block: register RAW/WAR/WAW edges,
/// conservative memory-ordering edges, and control edges keeping the
/// terminator last. Feeds the list scheduler.
///
/// The paper notes that coalescing "collects memory accesses that are
/// distributed throughout the loop into a single reference", concentrating
/// dependences on one instruction — which is why profitability must be
/// judged on *scheduled* cycles, not instruction counts.
///
//===----------------------------------------------------------------------===//

#ifndef VPO_SCHED_DEPGRAPH_H
#define VPO_SCHED_DEPGRAPH_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace vpo {

class BasicBlock;
class TargetMachine;

enum class DepKind : uint8_t { RAW, WAR, WAW, Mem, Ctrl };

struct DepEdge {
  size_t From;
  size_t To;
  unsigned Latency;
  DepKind Kind;
};

class DepGraph {
public:
  DepGraph(const BasicBlock &BB, const TargetMachine &TM);

  size_t size() const { return NumNodes; }
  const std::vector<DepEdge> &edges() const { return Edges; }

  /// Successor edge indices of node \p N.
  const std::vector<size_t> &succs(size_t N) const { return Succs[N]; }
  /// Predecessor edge indices of node \p N.
  const std::vector<size_t> &preds(size_t N) const { return Preds[N]; }

  /// Length of the longest latency path from \p N to any sink (critical
  /// path height, the list scheduler's priority).
  unsigned height(size_t N) const { return Heights[N]; }

private:
  void addEdge(size_t From, size_t To, unsigned Latency, DepKind Kind);

  size_t NumNodes;
  std::vector<DepEdge> Edges;
  std::vector<std::vector<size_t>> Succs, Preds;
  std::vector<unsigned> Heights;
};

} // namespace vpo

#endif // VPO_SCHED_DEPGRAPH_H
