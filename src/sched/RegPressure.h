//===- sched/RegPressure.h - Max-live pressure estimation --------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A linear-scan max-live estimator over a basic block under a candidate
/// schedule, per register class, plus the spill-cost model the unroller's
/// pressure clamp and the simulator's spill charge share.
///
/// The paper's pipeline unrolls before it coalesces, and the unroller's
/// factor selection is i-cache arithmetic only — so on a machine with a
/// small register file an aggressive factor can spill away the entire
/// coalescing win. This header supplies the missing half of that decision:
/// given the unrolled (and possibly coalesced) body in the order a schedule
/// would issue it, how many values are live at the worst point, and what
/// would the excess over the target's register file cost per iteration?
///
/// The estimate is deliberately simple (single block, no global liveness):
///   - a register used before any def in the block is live-in from entry;
///   - a loop-carried register (live-in *and* redefined) is live across the
///     whole block;
///   - a register defined but never used afterwards in the block is assumed
///     live-out to the end (loop temporaries feeding the next iteration);
///   - everything else lives from its def to its last use.
/// These rules err toward overestimating pressure, which is the safe
/// direction for a clamp that refuses unroll factors.
///
//===----------------------------------------------------------------------===//

#ifndef VPO_SCHED_REGPRESSURE_H
#define VPO_SCHED_REGPRESSURE_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace vpo {

class BasicBlock;
class TargetMachine;

/// Worst-point live-register counts for one block, per register class.
struct PressureEstimate {
  unsigned MaxLiveInt = 0;
  unsigned MaxLiveFP = 0;
};

/// Max-live over \p BB in its current instruction order.
PressureEstimate estimateMaxLive(const BasicBlock &BB);

/// Max-live over \p BB reordered by \p Order (Order[i] = original index of
/// the instruction at position i, as produced by scheduleBlock). The order
/// must be a permutation of the block.
PressureEstimate estimateMaxLive(const BasicBlock &BB,
                                 const std::vector<size_t> &Order);

/// How many values exceed \p TM's register files at the worst point —
/// the number of live ranges the allocator would have to spill.
unsigned spillCount(const PressureEstimate &P, const TargetMachine &TM);

/// Modeled cycles one spilled live range costs per block execution: a
/// store to the stack plus a reload (bus occupancy + load latency). The
/// same constant feeds the unroller's clamp and the simulator's spill
/// charge so the clamp optimizes exactly what the simulator measures.
unsigned spillCycleCost(const TargetMachine &TM);

/// Total modeled spill cycles per block execution at pressure \p P:
/// spillCount^2 * spillCycleCost. The charge is deliberately convex in
/// the overflow: with S ranges contending for the same few scratch
/// registers the allocator cannot keep any of them resident, so each
/// extra overflowing range forces store/reload traffic around all the
/// others (the classic spill-thrashing effect). The quadratic form makes
/// over-unrolling past the register file genuinely expensive while a
/// loop that spills one or two ranges pays only a small tax — and the
/// clamp and the simulator share it, so the clamp optimizes exactly what
/// the simulator measures.
uint64_t spillPenaltyCycles(const PressureEstimate &P,
                            const TargetMachine &TM);

/// Total modeled spill cycles charged per execution of \p BB on \p TM:
/// spillPenaltyCycles(estimateMaxLive(BB), TM).
uint64_t blockSpillCycles(const BasicBlock &BB, const TargetMachine &TM);

} // namespace vpo

#endif // VPO_SCHED_REGPRESSURE_H
