//===- sched/RegPressure.cpp ----------------------------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "sched/RegPressure.h"

#include "ir/Function.h"
#include "target/TargetMachine.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>
#include <unordered_set>

using namespace vpo;

namespace {

/// Registers carrying floating-point values: defs of FP producers, operands
/// of FP consumers, closed over Mov copies (a copy of an FP value is FP).
std::unordered_set<unsigned> classifyFPRegs(const BasicBlock &BB) {
  std::unordered_set<unsigned> FP;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const Instruction &I : BB.insts()) {
      auto MarkDef = [&] {
        if (I.Dst.isValid() && FP.insert(I.Dst.Id).second)
          Changed = true;
      };
      auto MarkUse = [&](const Operand &O) {
        if (O.isReg() && FP.insert(O.reg().Id).second)
          Changed = true;
      };
      if (I.isFPALU() || I.Op == Opcode::CvtIF || (I.isLoad() && I.IsFloat))
        MarkDef();
      if (I.isFPALU()) {
        MarkUse(I.A);
        MarkUse(I.B);
      }
      if (I.Op == Opcode::CvtFI)
        MarkUse(I.A);
      if (I.isStore() && I.IsFloat)
        MarkUse(I.A);
      if (I.Op == Opcode::Mov && I.A.isReg()) {
        if (FP.count(I.A.reg().Id))
          MarkDef();
        else if (I.Dst.isValid() && FP.count(I.Dst.Id))
          MarkUse(I.A);
      }
    }
  }
  return FP;
}

} // namespace

PressureEstimate vpo::estimateMaxLive(const BasicBlock &BB,
                                      const std::vector<size_t> &Order) {
  const auto &Insts = BB.insts();
  size_t N = Order.size();
  assert(N == Insts.size() && "order does not match block");
  if (N == 0)
    return PressureEstimate();

  // Live-in registers in *program* order: used before any def in the
  // block. A schedule keeps uses after their in-block def (RAW edges), so
  // this set is order-independent.
  std::unordered_set<unsigned> LiveIn;
  {
    std::unordered_set<unsigned> Defined;
    std::vector<Reg> Uses;
    for (const Instruction &I : Insts) {
      Uses.clear();
      I.collectUses(Uses);
      for (Reg U : Uses)
        if (!Defined.count(U.Id))
          LiveIn.insert(U.Id);
      if (auto D = I.def())
        Defined.insert(D->Id);
    }
  }

  // First def and last use position of each register under the schedule.
  struct Range {
    size_t FirstDef = SIZE_MAX;
    size_t LastUse = SIZE_MAX;
  };
  std::unordered_map<unsigned, Range> Ranges;
  std::vector<Reg> Uses;
  for (size_t Pos = 0; Pos < N; ++Pos) {
    const Instruction &I = Insts[Order[Pos]];
    Uses.clear();
    I.collectUses(Uses);
    for (Reg U : Uses)
      Ranges[U.Id].LastUse = Pos;
    if (auto D = I.def()) {
      Range &R = Ranges[D->Id];
      if (R.FirstDef == SIZE_MAX)
        R.FirstDef = Pos;
    }
  }

  std::unordered_set<unsigned> FP = classifyFPRegs(BB);

  // Sweep the live intervals per class. +1 at the interval start, -1 one
  // past its end; running sum at each position is the live count there.
  std::vector<int> DeltaInt(N + 1, 0), DeltaFP(N + 1, 0);
  for (const auto &[Id, R] : Ranges) {
    size_t Start, End;
    bool IsLiveIn = LiveIn.count(Id) != 0;
    bool IsDefined = R.FirstDef != SIZE_MAX;
    if (IsLiveIn && IsDefined) {
      // Loop-carried (an induction variable, a recurrence temp): live
      // across the whole body.
      Start = 0;
      End = N - 1;
    } else if (IsLiveIn) {
      Start = 0;
      End = R.LastUse; // has at least one use, or it would not be live-in
    } else if (R.LastUse == SIZE_MAX || R.LastUse < R.FirstDef) {
      // Defined, never read afterwards in the block: assume live-out.
      Start = R.FirstDef;
      End = N - 1;
    } else {
      Start = R.FirstDef;
      End = R.LastUse;
    }
    std::vector<int> &Delta = FP.count(Id) ? DeltaFP : DeltaInt;
    Delta[Start] += 1;
    Delta[End + 1] -= 1;
  }

  PressureEstimate P;
  int LiveI = 0, LiveF = 0;
  for (size_t Pos = 0; Pos < N; ++Pos) {
    LiveI += DeltaInt[Pos];
    LiveF += DeltaFP[Pos];
    P.MaxLiveInt = std::max(P.MaxLiveInt, static_cast<unsigned>(LiveI));
    P.MaxLiveFP = std::max(P.MaxLiveFP, static_cast<unsigned>(LiveF));
  }
  return P;
}

PressureEstimate vpo::estimateMaxLive(const BasicBlock &BB) {
  std::vector<size_t> Identity(BB.size());
  for (size_t I = 0; I < Identity.size(); ++I)
    Identity[I] = I;
  return estimateMaxLive(BB, Identity);
}

unsigned vpo::spillCount(const PressureEstimate &P, const TargetMachine &TM) {
  unsigned Spills = 0;
  if (P.MaxLiveInt > TM.intRegs())
    Spills += P.MaxLiveInt - TM.intRegs();
  if (P.MaxLiveFP > TM.fpRegs())
    Spills += P.MaxLiveFP - TM.fpRegs();
  return Spills;
}

unsigned vpo::spillCycleCost(const TargetMachine &TM) {
  // A spilled range costs a stack store plus a reload each time the block
  // runs: one bus occupancy for the store, and the reload's latency (its
  // consumer is waiting, or the allocator would not have kept it live).
  return TM.spec().MemIssueCycles + TM.spec().LoadLatency;
}

uint64_t vpo::spillPenaltyCycles(const PressureEstimate &P,
                                 const TargetMachine &TM) {
  uint64_t Spills = spillCount(P, TM);
  return Spills * Spills * spillCycleCost(TM);
}

uint64_t vpo::blockSpillCycles(const BasicBlock &BB,
                               const TargetMachine &TM) {
  return spillPenaltyCycles(estimateMaxLive(BB), TM);
}
