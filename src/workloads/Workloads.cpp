//===- workloads/Workloads.cpp - registry and shared helpers ---*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include <bit>

using namespace vpo;

Workload::~Workload() = default;

float vpo::rdf32(const uint8_t *M, uint64_t A) {
  return std::bit_cast<float>(rd32(M, A));
}

void vpo::wrf32(uint8_t *M, uint64_t A, float V) {
  wr32(M, A, std::bit_cast<uint32_t>(V));
}

std::vector<std::unique_ptr<Workload>> vpo::allWorkloads() {
  std::vector<std::unique_ptr<Workload>> W;
  W.push_back(makeConvolution());
  W.push_back(makeImageAdd());
  W.push_back(makeImageAdd16());
  W.push_back(makeImageXor());
  W.push_back(makeTranslate());
  W.push_back(makeEqntott());
  W.push_back(makeMirror());
  W.push_back(makeDotProduct());
  W.push_back(makeLivermore5());
  W.push_back(makeDeinterleave());
  W.push_back(makeTileblit());
  return W;
}

std::unique_ptr<Workload> vpo::makeWorkloadByName(const std::string &Name) {
  for (auto &W : allWorkloads())
    if (Name == W->name())
      return std::move(W);
  return nullptr;
}
