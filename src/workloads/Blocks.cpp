//===- workloads/Blocks.cpp - same-object record/tile kernels --*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// Kernels whose reference streams all derive from *one* array parameter —
/// the shapes the offset-propagation analysis exists for. Parameter
/// no-alias facts say nothing about overlap within a single object, so
/// without the analysis every partition pair defers to a run-time check:
///
///   deinterleave  rec[8+i] = rec[i] ^ 0xff over 16-byte records: the read
///                 and write cursors occupy disjoint residue classes mod
///                 the record stride (proven by the residue rule).
///   tileblit      dst16[i] = src16[i] with dst = base + 64*k, k a run-time
///                 tile index: the copy distance is unknown (overlap still
///                 checked at run time) but dst's congruence mod 64 proves
///                 the wide-store alignment the exact chain cannot.
///
//===----------------------------------------------------------------------===//

#include "workloads/WorkloadUtils.h"

#include "ir/Function.h"

using namespace vpo;
using namespace vpo::workloads_detail;

namespace {

/// rec[8+i] = rec[i] ^ 0xff for i in 0..7, over n 16-byte records: derive
/// the low half of each record into the high half. Both cursors step by 16
/// from the same parameter; loads touch residues 0..7 and stores residues
/// 8..15 (mod 16), so the streams interleave without ever sharing a byte.
class Deinterleave final : public Workload {
public:
  const char *name() const override { return "deinterleave"; }
  const char *description() const override {
    return "derive the high half of 16-byte records from the low half";
  }

  Function *build(Module &M) const override {
    Function *F = M.addFunction("deinterleave");
    Reg X = F->addParam(); // record cursor (reads bytes 0..7)
    Reg N = F->addParam();
    IRBuilder B(F);

    BasicBlock *Entry = B.createBlock("entry");
    BasicBlock *Body = F->addBlock("loop");
    BasicBlock *Exit = F->addBlock("exit");

    B.setInsertBlock(Entry);
    Reg NBytes = B.shl(N, Operand::imm(4));
    Reg Limit = B.add(X, NBytes);
    Reg Q = B.add(X, Operand::imm(8)); // write cursor (bytes 8..15)
    B.br(CondCode::LEs, N, Operand::imm(0), Exit, Body);

    B.setInsertBlock(Body);
    // Loads and stores interleaved per byte, so the wide reference's
    // movement window always crosses the other partition.
    for (int I = 0; I < 8; ++I) {
      Reg V = B.load(Address(X, I), MemWidth::W1, /*Sign=*/false);
      Reg D = B.xor_(V, Operand::imm(0xff));
      B.store(Address(Q, I), D, MemWidth::W1);
    }
    B.aluTo(X, Opcode::Add, X, Operand::imm(16));
    B.aluTo(Q, Opcode::Add, Q, Operand::imm(16));
    B.br(CondCode::LTu, X, Limit, Body, Exit);

    B.setInsertBlock(Exit);
    B.ret(Operand::imm(0));
    return F;
  }

  SetupResult setup(Memory &Mem, const SetupOptions &O) const override {
    SetupResult S;
    RNG R(O.Seed);
    size_t Bytes = static_cast<size_t>(O.N) * 16;
    uint64_t X = allocArray(Mem, S, Bytes, O, 1);
    fillBytes(Mem, X, Bytes, R);
    // Both streams live in the same object by construction; OverlapMode
    // has nothing extra to arrange.
    S.Args = {static_cast<int64_t>(X), O.N};
    return S;
  }

  int64_t golden(uint8_t *Image, const SetupOptions &O,
                 const SetupResult &S) const override {
    uint64_t X = static_cast<uint64_t>(S.Args[0]);
    for (int64_t Rec = 0; Rec < O.N; ++Rec)
      for (int64_t I = 0; I < 8; ++I) {
        uint64_t Base = X + static_cast<uint64_t>(Rec) * 16;
        wr8(Image, Base + 8 + I,
            static_cast<uint8_t>(rd8(Image, Base + I) ^ 0xff));
      }
    return 0;
  }
};

/// dst16[i] = src16[i] where dst = base + 64*k and k is a run-time tile
/// index: blit one row of 16-bit pixels to a tile-aligned position in the
/// same frame. The copy distance is unknown at compile time, so overlap
/// stays a run-time question — but dst's offset is congruent to 0 modulo
/// the tile stride, which pins the wide-store alignment statically.
class Tileblit final : public Workload {
public:
  const char *name() const override { return "tileblit"; }
  const char *description() const override {
    return "copy 16-bit pixels to a 64-byte tile boundary in one frame";
  }

  Function *build(Module &M) const override {
    Function *F = M.addFunction("tileblit");
    Reg X = F->addParam(); // frame base; also the read cursor
    Reg K = F->addParam(); // destination tile index
    Reg N = F->addParam();
    IRBuilder B(F);

    BasicBlock *Entry = B.createBlock("entry");
    BasicBlock *Body = F->addBlock("loop");
    BasicBlock *Exit = F->addBlock("exit");

    B.setInsertBlock(Entry);
    Reg Off = B.shl(K, Operand::imm(6));
    Reg Q = B.add(X, Off); // write cursor: base + 64*k
    Reg NBytes = B.shl(N, Operand::imm(1));
    Reg Limit = B.add(X, NBytes);
    B.br(CondCode::LEs, N, Operand::imm(0), Exit, Body);

    B.setInsertBlock(Body);
    Reg V = B.load(Address(X, 0), MemWidth::W2, /*Sign=*/false);
    B.store(Address(Q, 0), V, MemWidth::W2);
    B.aluTo(X, Opcode::Add, X, Operand::imm(2));
    B.aluTo(Q, Opcode::Add, Q, Operand::imm(2));
    B.br(CondCode::LTu, X, Limit, Body, Exit);

    B.setInsertBlock(Exit);
    B.ret(Operand::imm(0));
    return F;
  }

  SetupResult setup(Memory &Mem, const SetupOptions &O) const override {
    SetupResult S;
    RNG R(O.Seed);
    size_t SrcBytes = static_cast<size_t>(O.N) * 2;
    // Disjoint: first tile boundary at or past the end of the source row.
    // Overlap: the second tile, which the source row crosses for N > 32.
    int64_t K = O.OverlapMode == 1
                    ? 1
                    : static_cast<int64_t>((SrcBytes + 63) / 64);
    size_t Bytes = static_cast<size_t>(K) * 64 + SrcBytes;
    uint64_t X = allocArray(Mem, S, Bytes, O, 2);
    fillShorts(Mem, X, static_cast<size_t>(O.N), R, -5000, 5000);
    S.Args = {static_cast<int64_t>(X), K, O.N};
    return S;
  }

  int64_t golden(uint8_t *Image, const SetupOptions &O,
                 const SetupResult &S) const override {
    uint64_t X = static_cast<uint64_t>(S.Args[0]);
    uint64_t Dst = X + static_cast<uint64_t>(S.Args[1]) * 64;
    for (int64_t I = 0; I < O.N; ++I)
      wr16(Image, Dst + 2 * I, rd16(Image, X + 2 * I));
    return 0;
  }
};

} // namespace

std::unique_ptr<Workload> vpo::makeDeinterleave() {
  return std::make_unique<Deinterleave>();
}
std::unique_ptr<Workload> vpo::makeTileblit() {
  return std::make_unique<Tileblit>();
}
