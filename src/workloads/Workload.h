//===- workloads/Workload.h - Benchmark kernels ------------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compute- and memory-intensive kernels of the paper's Table I
/// (convolution, image add, image add 16-bit, image xor, translate,
/// eqntott, mirror) plus the Figure 1 dot product and Livermore loop 5.
///
/// Each workload provides:
///  * an RTL builder producing the kernel exactly as a C front end would
///    (narrow loads/stores, pointer induction variables, bottom-test loop);
///  * a setup routine that allocates and fills simulated memory, with
///    controllable alignment skew and deliberate overlap so the run-time
///    check paths can be exercised;
///  * a *golden* scalar C++ implementation executed against a copy of the
///    initial memory image. A kernel run is correct iff the final memory
///    image and return value match the golden ones byte-for-byte.
///
//===----------------------------------------------------------------------===//

#ifndef VPO_WORKLOADS_WORKLOAD_H
#define VPO_WORKLOADS_WORKLOAD_H

#include "sim/Memory.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace vpo {

class Function;
class Module;

/// Controls a workload instance's data layout.
struct SetupOptions {
  int64_t N = 4096;      ///< element count (1-D kernels)
  int64_t Width = 64;    ///< image width (2-D kernels)
  int64_t Height = 64;   ///< image height (2-D kernels)
  size_t BaseAlign = 8;  ///< allocation alignment of every array
  size_t Skew = 0;       ///< bytes added past the alignment (misalignment)
  /// 0 = arrays disjoint; 1 = the kernel's first two arrays overlap
  /// (forces the run-time alias check to take the safe path).
  int OverlapMode = 0;
  uint64_t Seed = 12345;
};

struct SetupResult {
  std::vector<int64_t> Args;
  /// [address, size] of each allocated array, for diagnostics.
  std::vector<std::pair<uint64_t, size_t>> Regions;
};

/// Base class for all kernels.
class Workload {
public:
  virtual ~Workload();

  virtual const char *name() const = 0;
  virtual const char *description() const = 0;

  /// Builds the kernel into \p M and returns the function.
  virtual Function *build(Module &M) const = 0;

  /// Allocates and initializes the kernel's arrays in \p Mem.
  virtual SetupResult setup(Memory &Mem, const SetupOptions &O) const = 0;

  /// Reference implementation over a raw memory image (the bytes of a
  /// Memory at setup time). \returns the expected kernel return value and
  /// mutates \p Image exactly as a correct kernel run would.
  virtual int64_t golden(uint8_t *Image, const SetupOptions &O,
                         const SetupResult &S) const = 0;
};

// Factories (one per Table I row + the paper's running examples).
std::unique_ptr<Workload> makeDotProduct();
std::unique_ptr<Workload> makeImageAdd();
std::unique_ptr<Workload> makeImageAdd16();
std::unique_ptr<Workload> makeImageXor();
std::unique_ptr<Workload> makeTranslate();
std::unique_ptr<Workload> makeEqntott();
std::unique_ptr<Workload> makeMirror();
std::unique_ptr<Workload> makeConvolution();
std::unique_ptr<Workload> makeLivermore5();
std::unique_ptr<Workload> makeDeinterleave();
std::unique_ptr<Workload> makeTileblit();

/// All workloads in Table I order (plus dotproduct and livermore5 at the
/// end).
std::vector<std::unique_ptr<Workload>> allWorkloads();

/// \returns the workload named \p Name, or nullptr.
std::unique_ptr<Workload> makeWorkloadByName(const std::string &Name);

// --- Little-endian accessors over a raw image (golden helpers) ----------

inline uint8_t rd8(const uint8_t *M, uint64_t A) { return M[A]; }
inline void wr8(uint8_t *M, uint64_t A, uint8_t V) { M[A] = V; }

inline uint16_t rd16(const uint8_t *M, uint64_t A) {
  return static_cast<uint16_t>(M[A] | (M[A + 1] << 8));
}
inline int16_t rd16s(const uint8_t *M, uint64_t A) {
  return static_cast<int16_t>(rd16(M, A));
}
inline void wr16(uint8_t *M, uint64_t A, uint16_t V) {
  M[A] = static_cast<uint8_t>(V);
  M[A + 1] = static_cast<uint8_t>(V >> 8);
}

inline uint32_t rd32(const uint8_t *M, uint64_t A) {
  return static_cast<uint32_t>(M[A]) | (static_cast<uint32_t>(M[A + 1]) << 8) |
         (static_cast<uint32_t>(M[A + 2]) << 16) |
         (static_cast<uint32_t>(M[A + 3]) << 24);
}
inline void wr32(uint8_t *M, uint64_t A, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    M[A + I] = static_cast<uint8_t>(V >> (8 * I));
}

float rdf32(const uint8_t *M, uint64_t A);
void wrf32(uint8_t *M, uint64_t A, float V);

} // namespace vpo

#endif // VPO_WORKLOADS_WORKLOAD_H
