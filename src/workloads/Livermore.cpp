//===- workloads/Livermore.cpp - Livermore loop 5 (FP) ---------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// The fifth Livermore loop — tri-diagonal elimination below the diagonal —
/// quoted in the paper's related-work discussion:
///
///   for (i = 1; i < n; i++) x[i] = z[i] * (y[i] - x[i-1]);
///
/// Single precision. The x[i-1] recurrence makes the x stream
/// uncoalescable (a load of the store run's span sits between the stores),
/// while the y and z streams coalesce into 64-bit pair loads — the wide-bus
/// floating-point case of the paper's earlier work [Alex93].
///
//===----------------------------------------------------------------------===//

#include "workloads/WorkloadUtils.h"

#include "ir/Function.h"

using namespace vpo;
using namespace vpo::workloads_detail;

namespace {

class Livermore5 final : public Workload {
public:
  const char *name() const override { return "livermore5"; }
  const char *description() const override {
    return "Livermore loop 5: tri-diagonal elimination (f32 recurrence)";
  }

  Function *build(Module &M) const override {
    Function *F = M.addFunction("livermore5");
    Reg X = F->addParam();
    Reg Y = F->addParam();
    Reg Z = F->addParam();
    Reg N = F->addParam();
    IRBuilder B(F);

    BasicBlock *Entry = B.createBlock("entry");
    BasicBlock *Body = F->addBlock("loop");
    BasicBlock *Exit = F->addBlock("exit");

    B.setInsertBlock(Entry);
    Reg PX = B.add(X, Operand::imm(4));
    Reg PY = B.add(Y, Operand::imm(4));
    Reg PZ = B.add(Z, Operand::imm(4));
    Reg NBytes = B.shl(N, Operand::imm(2));
    Reg Limit = B.add(X, NBytes);
    B.br(CondCode::LEs, N, Operand::imm(1), Exit, Body);

    B.setInsertBlock(Body);
    Reg Xm = B.load(Address(PX, -4), MemWidth::W4, /*Sign=*/false,
                    /*IsFloat=*/true);
    Reg Yv = B.load(Address(PY, 0), MemWidth::W4, false, true);
    Reg Zv = B.load(Address(PZ, 0), MemWidth::W4, false, true);
    Reg D = B.fsub(Yv, Xm);
    Reg P = B.fmul(Zv, D);
    B.store(Address(PX, 0), P, MemWidth::W4, /*IsFloat=*/true);
    B.aluTo(PX, Opcode::Add, PX, Operand::imm(4));
    B.aluTo(PY, Opcode::Add, PY, Operand::imm(4));
    B.aluTo(PZ, Opcode::Add, PZ, Operand::imm(4));
    B.br(CondCode::LTu, PX, Limit, Body, Exit);

    B.setInsertBlock(Exit);
    B.ret(Operand::imm(0));
    return F;
  }

  SetupResult setup(Memory &Mem, const SetupOptions &O) const override {
    SetupResult S;
    RNG R(O.Seed);
    size_t Bytes = static_cast<size_t>(O.N) * 4;
    uint64_t X = allocArray(Mem, S, Bytes + Bytes, O, 4);
    uint64_t Y = O.OverlapMode == 1
                     ? X + (static_cast<uint64_t>(O.N) / 2) * 4
                     : allocArray(Mem, S, Bytes, O, 4);
    uint64_t Z = allocArray(Mem, S, Bytes, O, 4);
    fillFloats(Mem, X, static_cast<size_t>(O.N), R);
    if (O.OverlapMode != 1)
      fillFloats(Mem, Y, static_cast<size_t>(O.N), R);
    fillFloats(Mem, Z, static_cast<size_t>(O.N), R);
    S.Args = {static_cast<int64_t>(X), static_cast<int64_t>(Y),
              static_cast<int64_t>(Z), O.N};
    return S;
  }

  int64_t golden(uint8_t *Image, const SetupOptions &O,
                 const SetupResult &S) const override {
    uint64_t X = static_cast<uint64_t>(S.Args[0]);
    uint64_t Y = static_cast<uint64_t>(S.Args[1]);
    uint64_t Z = static_cast<uint64_t>(S.Args[2]);
    for (int64_t I = 1; I < O.N; ++I) {
      // Mirror the kernel exactly: operands widen to double, one rounding
      // to float at the store.
      double Xm = rdf32(Image, X + 4 * (I - 1));
      double Yv = rdf32(Image, Y + 4 * I);
      double Zv = rdf32(Image, Z + 4 * I);
      wrf32(Image, X + 4 * I, static_cast<float>(Zv * (Yv - Xm)));
    }
    return 0;
  }
};

} // namespace

std::unique_ptr<Workload> vpo::makeLivermore5() {
  return std::make_unique<Livermore5>();
}
