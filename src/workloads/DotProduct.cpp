//===- workloads/DotProduct.cpp - the paper's Fig. 1 kernel ----*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// int dotproduct(short a[], short b[], int n) {
///   int c = 0;
///   for (int i = 0; i < n; i++) c += a[i] * b[i];
///   return c;
/// }
///
//===----------------------------------------------------------------------===//

#include "workloads/WorkloadUtils.h"

#include "ir/Function.h"

using namespace vpo;
using namespace vpo::workloads_detail;

namespace {

class DotProduct final : public Workload {
public:
  const char *name() const override { return "dotproduct"; }
  const char *description() const override {
    return "16-bit dot product (paper Figure 1)";
  }

  Function *build(Module &M) const override {
    Function *F = M.addFunction("dotproduct");
    Reg PA = F->addParam(); // a
    Reg PB = F->addParam(); // b
    Reg N = F->addParam();  // n (elements)
    IRBuilder B(F);

    BasicBlock *Entry = B.createBlock("entry");
    BasicBlock *Body = F->addBlock("loop");
    BasicBlock *Exit = F->addBlock("exit");

    B.setInsertBlock(Entry);
    Reg Acc = B.mov(Operand::imm(0));
    Reg NBytes = B.shl(N, Operand::imm(1));
    Reg Limit = B.add(PA, NBytes);
    B.br(CondCode::LEs, N, Operand::imm(0), Exit, Body);

    B.setInsertBlock(Body);
    Reg Va = B.load(Address(PA, 0), MemWidth::W2, /*Sign=*/true);
    Reg Vb = B.load(Address(PB, 0), MemWidth::W2, /*Sign=*/true);
    Reg Prod = B.mul(Va, Vb);
    B.addTo(Acc, Acc, Prod);
    B.aluTo(PA, Opcode::Add, PA, Operand::imm(2));
    B.aluTo(PB, Opcode::Add, PB, Operand::imm(2));
    B.br(CondCode::LTu, PA, Limit, Body, Exit);

    B.setInsertBlock(Exit);
    B.ret(Acc);
    return F;
  }

  SetupResult setup(Memory &Mem, const SetupOptions &O) const override {
    SetupResult S;
    RNG R(O.Seed);
    size_t Bytes = static_cast<size_t>(O.N) * 2;
    uint64_t A = allocArray(Mem, S, Bytes + Bytes, O, 2);
    uint64_t B = O.OverlapMode == 1
                     ? A + (static_cast<uint64_t>(O.N) / 2) * 2
                     : allocArray(Mem, S, Bytes, O, 2);
    fillShorts(Mem, A, static_cast<size_t>(O.N), R, -1000, 1000);
    if (O.OverlapMode != 1)
      fillShorts(Mem, B, static_cast<size_t>(O.N), R, -1000, 1000);
    S.Args = {static_cast<int64_t>(A), static_cast<int64_t>(B), O.N};
    return S;
  }

  int64_t golden(uint8_t *Image, const SetupOptions &O,
                 const SetupResult &S) const override {
    uint64_t A = static_cast<uint64_t>(S.Args[0]);
    uint64_t B = static_cast<uint64_t>(S.Args[1]);
    int64_t Acc = 0;
    for (int64_t I = 0; I < O.N; ++I)
      Acc += static_cast<int64_t>(rd16s(Image, A + 2 * I)) *
             static_cast<int64_t>(rd16s(Image, B + 2 * I));
    return Acc;
  }
};

} // namespace

std::unique_ptr<Workload> vpo::makeDotProduct() {
  return std::make_unique<DotProduct>();
}
