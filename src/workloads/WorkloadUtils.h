//===- workloads/WorkloadUtils.h - shared setup helpers ----------*- C++ -*-===//
//
// Part of the vpo-mac project (internal header).
//
//===----------------------------------------------------------------------===//

#ifndef VPO_WORKLOADS_WORKLOADUTILS_H
#define VPO_WORKLOADS_WORKLOADUTILS_H

#include "ir/IRBuilder.h"
#include "support/RNG.h"
#include "workloads/Workload.h"

namespace vpo {
namespace workloads_detail {

/// Allocates an array honouring the workload's alignment/skew options; the
/// skew is rounded down to a multiple of \p ElemBytes so narrow references
/// stay naturally aligned (as any C allocation would guarantee).
inline uint64_t allocArray(Memory &Mem, SetupResult &S, size_t Bytes,
                           const SetupOptions &O, size_t ElemBytes) {
  size_t Skew = O.Skew - (O.Skew % ElemBytes);
  uint64_t Addr = Mem.allocate(Bytes, O.BaseAlign, Skew);
  S.Regions.push_back({Addr, Bytes});
  return Addr;
}

inline void fillBytes(Memory &Mem, uint64_t Addr, size_t N, RNG &R) {
  for (size_t I = 0; I < N; ++I)
    Mem.write(Addr + I, 1, R.next() & 0xff);
}

inline void fillShorts(Memory &Mem, uint64_t Addr, size_t N, RNG &R,
                       int64_t Lo, int64_t Hi) {
  for (size_t I = 0; I < N; ++I)
    Mem.write(Addr + 2 * I, 2,
              static_cast<uint64_t>(R.nextInRange(Lo, Hi)));
}

inline void fillFloats(Memory &Mem, uint64_t Addr, size_t N, RNG &R) {
  for (size_t I = 0; I < N; ++I) {
    float V = static_cast<float>(R.nextInRange(-1000, 1000)) / 64.0f;
    uint8_t *P = Mem.data();
    wrf32(P, Addr + 4 * I, V);
  }
}

} // namespace workloads_detail
} // namespace vpo

#endif // VPO_WORKLOADS_WORKLOADUTILS_H
