//===- workloads/Convolution.cpp - 3x3 gradient edge conv ------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// Gradient directional edge convolution of a black-and-white image
/// (Lindley's "Practical Image Processing in C", as in the paper's
/// Table I): a 3x3 kernel over 8-bit pixels with 16-bit coefficients,
/// scaled and clamped to 0..255. Row-major inner loop over columns; three
/// row pointers plus an output pointer advance by one byte per iteration.
///
/// The nine coefficient loads are hoisted to the entry block (as vpo's
/// loop-invariant code motion would do); the nine pixel loads per output
/// remain in the loop and — after unrolling — form long consecutive runs.
///
//===----------------------------------------------------------------------===//

#include "workloads/WorkloadUtils.h"

#include "ir/Function.h"

using namespace vpo;
using namespace vpo::workloads_detail;

namespace {

// Gradient-direction (Sobel-like) kernel and post-sum scaling shift.
const int16_t Coef[9] = {-1, 0, 1, -2, 0, 2, -1, 0, 1};
const int64_t ScaleShift = 2;

class Convolution final : public Workload {
public:
  const char *name() const override { return "convolution"; }
  const char *description() const override {
    return "3x3 gradient directional edge convolution of a B/W image";
  }

  Function *build(Module &M) const override {
    Function *F = M.addFunction("convolution");
    Reg Img = F->addParam();
    Reg Out = F->addParam();
    Reg CoefBase = F->addParam();
    Reg W = F->addParam();
    Reg H = F->addParam();
    IRBuilder B(F);

    BasicBlock *Entry = B.createBlock("entry");
    BasicBlock *OuterHead = F->addBlock("rows");
    BasicBlock *Inner = F->addBlock("cols");
    BasicBlock *OuterLatch = F->addBlock("rows.latch");
    BasicBlock *Exit = F->addBlock("exit");

    B.setInsertBlock(Entry);
    Reg C[9];
    for (int I = 0; I < 9; ++I)
      C[I] = B.load(Address(CoefBase, 2 * I), MemWidth::W2, /*Sign=*/true);
    // Row pointers at (row, col=0) for rows 0..2; output row 1. The
    // window is anchored at the output pixel, so every stream starts at a
    // row base address.
    Reg PT = B.add(Img, Operand::imm(0));
    Reg PM = B.add(Img, W);
    Reg W2 = B.shl(W, Operand::imm(1));
    Reg PB = B.add(Img, W2);
    Reg PO = B.add(Out, W);
    Reg RowsLeft = B.sub(H, Operand::imm(2));
    Reg InnerCount = B.sub(W, Operand::imm(2));
    B.br(CondCode::LEs, RowsLeft, Operand::imm(0), Exit, OuterHead);

    B.setInsertBlock(OuterHead);
    Reg ColLimit = B.add(PM, InnerCount);
    B.jmp(Inner);

    B.setInsertBlock(Inner);
    Reg Sum;
    bool First = true;
    // Tap order: row by row, left to right — consecutive addresses within
    // each row pointer's partition. The window is anchored at the output
    // pixel (taps at columns c..c+2), the usual correlation formulation.
    Reg RowPtr[3] = {PT, PM, PB};
    for (int R = 0; R < 3; ++R)
      for (int T = 0; T < 3; ++T) {
        Reg Pix = B.load(Address(RowPtr[R], T), MemWidth::W1,
                         /*Sign=*/false);
        Reg Prod = B.mul(Pix, C[R * 3 + T]);
        Sum = First ? Prod : B.add(Sum, Prod);
        First = false;
      }
    Reg Scaled = B.shrA(Sum, Operand::imm(ScaleShift));
    Reg Neg = B.cmpSet(CondCode::LTs, Scaled, Operand::imm(0));
    Reg Lo = B.select(Neg, Operand::imm(0), Scaled);
    Reg Hi = B.cmpSet(CondCode::GTs, Lo, Operand::imm(255));
    Reg Clamped = B.select(Hi, Operand::imm(255), Lo);
    B.store(Address(PO, 0), Clamped, MemWidth::W1);
    B.aluTo(PT, Opcode::Add, PT, Operand::imm(1));
    B.aluTo(PM, Opcode::Add, PM, Operand::imm(1));
    B.aluTo(PB, Opcode::Add, PB, Operand::imm(1));
    B.aluTo(PO, Opcode::Add, PO, Operand::imm(1));
    B.br(CondCode::LTu, PM, ColLimit, Inner, OuterLatch);

    B.setInsertBlock(OuterLatch);
    // The inner loop ends at column W-2; advance to column 0 of the next
    // row.
    B.aluTo(PT, Opcode::Add, PT, Operand::imm(2));
    B.aluTo(PM, Opcode::Add, PM, Operand::imm(2));
    B.aluTo(PB, Opcode::Add, PB, Operand::imm(2));
    B.aluTo(PO, Opcode::Add, PO, Operand::imm(2));
    B.aluTo(RowsLeft, Opcode::Sub, RowsLeft, Operand::imm(1));
    B.br(CondCode::GTs, RowsLeft, Operand::imm(0), OuterHead, Exit);

    B.setInsertBlock(Exit);
    B.ret(Operand::imm(0));
    return F;
  }

  SetupResult setup(Memory &Mem, const SetupOptions &O) const override {
    SetupResult S;
    RNG R(O.Seed);
    // Row stride padded to 8 bytes, standard bitmap layout practice (a
    // 500-pixel row occupies 504 bytes). The kernel sees the stride as
    // its width; the pad columns are processed like any others.
    int64_t Stride = (O.Width + 7) & ~int64_t(7);
    size_t Bytes = static_cast<size_t>(Stride) * O.Height;
    uint64_t Img = allocArray(Mem, S, Bytes, O, 1);
    uint64_t Out = O.OverlapMode == 1 ? Img + Bytes / 3
                                      : allocArray(Mem, S, Bytes, O, 1);
    uint64_t CoefA = allocArray(Mem, S, 18, O, 2);
    fillBytes(Mem, Img, Bytes, R);
    for (int I = 0; I < 9; ++I)
      Mem.write(CoefA + 2 * I, 2, static_cast<uint64_t>(
                                      static_cast<uint16_t>(Coef[I])));
    S.Args = {static_cast<int64_t>(Img), static_cast<int64_t>(Out),
              static_cast<int64_t>(CoefA), Stride, O.Height};
    return S;
  }

  int64_t golden(uint8_t *Image, const SetupOptions &O,
                 const SetupResult &S) const override {
    uint64_t Img = static_cast<uint64_t>(S.Args[0]);
    uint64_t Out = static_cast<uint64_t>(S.Args[1]);
    int64_t W = S.Args[3], H = O.Height;
    for (int64_t R = 1; R < H - 1; ++R)
      for (int64_t Cc = 0; Cc < W - 2; ++Cc) {
        int64_t Sum = 0;
        for (int DR = -1; DR <= 1; ++DR)
          for (int DC = 0; DC <= 2; ++DC)
            Sum += static_cast<int64_t>(
                       rd8(Image, Img + (R + DR) * W + (Cc + DC))) *
                   Coef[(DR + 1) * 3 + DC];
        int64_t V = Sum >> ScaleShift;
        if (V < 0)
          V = 0;
        if (V > 255)
          V = 255;
        wr8(Image, Out + R * W + Cc, static_cast<uint8_t>(V));
      }
    return 0;
  }
};

} // namespace

std::unique_ptr<Workload> vpo::makeConvolution() {
  return std::make_unique<Convolution>();
}
