//===- workloads/ImageOps.cpp - image add/xor/translate/mirror -*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// The pixel-stream kernels of Table I, operating on synthetic
/// deterministic "500 by 500 black and white frames":
///
///   image_add    c[i] = sat8(a[i] + b[i])
///   image_add16  c[i] = a[i] + b[i]            (16-bit samples)
///   image_xor    c[i] = a[i] ^ b[i]
///   translate    dst[i] = src[i]               (move to a new position)
///   mirror       b[n-1-i] = a[i]
///
//===----------------------------------------------------------------------===//

#include "workloads/WorkloadUtils.h"

#include "ir/Function.h"

using namespace vpo;
using namespace vpo::workloads_detail;

namespace {

/// Common scaffolding for the a/b -> c streaming kernels.
class BinaryPixelKernel : public Workload {
public:
  Function *build(Module &M) const override {
    unsigned EB = elemBytes();
    MemWidth W = widthFromBytes(EB);
    Function *F = M.addFunction(name());
    Reg PA = F->addParam();
    Reg PB = F->addParam();
    Reg PC = F->addParam();
    Reg N = F->addParam();
    IRBuilder B(F);

    BasicBlock *Entry = B.createBlock("entry");
    BasicBlock *Body = F->addBlock("loop");
    BasicBlock *Exit = F->addBlock("exit");

    B.setInsertBlock(Entry);
    Operand NBytes = N;
    if (EB > 1)
      NBytes = B.shl(N, Operand::imm(EB == 2 ? 1 : 2));
    Reg Limit = B.add(PA, NBytes);
    B.br(CondCode::LEs, N, Operand::imm(0), Exit, Body);

    B.setInsertBlock(Body);
    Reg Va = B.load(Address(PA, 0), W, /*Sign=*/false);
    Reg Vb = B.load(Address(PB, 0), W, /*Sign=*/false);
    Reg Out = emitCombine(B, Va, Vb);
    B.store(Address(PC, 0), Out, W);
    B.aluTo(PA, Opcode::Add, PA, Operand::imm(EB));
    B.aluTo(PB, Opcode::Add, PB, Operand::imm(EB));
    B.aluTo(PC, Opcode::Add, PC, Operand::imm(EB));
    B.br(CondCode::LTu, PA, Limit, Body, Exit);

    B.setInsertBlock(Exit);
    B.ret(Operand::imm(0));
    return F;
  }

  SetupResult setup(Memory &Mem, const SetupOptions &O) const override {
    SetupResult S;
    RNG R(O.Seed);
    unsigned EB = elemBytes();
    size_t Bytes = static_cast<size_t>(O.N) * EB;
    uint64_t A = allocArray(Mem, S, Bytes, O, EB);
    uint64_t B = allocArray(Mem, S, Bytes, O, EB);
    // OverlapMode 1: the output overlaps input a (in-place-ish update) —
    // the alias check must send execution to the safe loop.
    uint64_t C = O.OverlapMode == 1
                     ? A + (static_cast<uint64_t>(O.N) / 2) * EB
                     : allocArray(Mem, S, Bytes, O, EB);
    if (EB == 1) {
      fillBytes(Mem, A, Bytes, R);
      fillBytes(Mem, B, Bytes, R);
    } else {
      fillShorts(Mem, A, static_cast<size_t>(O.N), R, -5000, 5000);
      fillShorts(Mem, B, static_cast<size_t>(O.N), R, -5000, 5000);
    }
    S.Args = {static_cast<int64_t>(A), static_cast<int64_t>(B),
              static_cast<int64_t>(C), O.N};
    return S;
  }

  int64_t golden(uint8_t *Image, const SetupOptions &O,
                 const SetupResult &S) const override {
    uint64_t A = static_cast<uint64_t>(S.Args[0]);
    uint64_t B = static_cast<uint64_t>(S.Args[1]);
    uint64_t C = static_cast<uint64_t>(S.Args[2]);
    unsigned EB = elemBytes();
    for (int64_t I = 0; I < O.N; ++I) {
      if (EB == 1) {
        uint8_t V = goldenCombine8(rd8(Image, A + I), rd8(Image, B + I));
        wr8(Image, C + I, V);
      } else {
        uint16_t V =
            goldenCombine16(rd16(Image, A + 2 * I), rd16(Image, B + 2 * I));
        wr16(Image, C + 2 * I, V);
      }
    }
    return 0;
  }

protected:
  virtual unsigned elemBytes() const { return 1; }
  virtual Reg emitCombine(IRBuilder &B, Reg Va, Reg Vb) const = 0;
  virtual uint8_t goldenCombine8(uint8_t A, uint8_t B) const {
    (void)A;
    (void)B;
    return 0;
  }
  virtual uint16_t goldenCombine16(uint16_t A, uint16_t B) const {
    (void)A;
    (void)B;
    return 0;
  }
};

class ImageAdd final : public BinaryPixelKernel {
public:
  const char *name() const override { return "image_add"; }
  const char *description() const override {
    return "saturating 8-bit image addition of two frames";
  }

protected:
  Reg emitCombine(IRBuilder &B, Reg Va, Reg Vb) const override {
    Reg Sum = B.add(Va, Vb);
    Reg Over = B.cmpSet(CondCode::GTu, Sum, Operand::imm(255));
    return B.select(Over, Operand::imm(255), Sum);
  }
  uint8_t goldenCombine8(uint8_t A, uint8_t B) const override {
    unsigned S = unsigned(A) + unsigned(B);
    return static_cast<uint8_t>(S > 255 ? 255 : S);
  }
};

class ImageAdd16 final : public BinaryPixelKernel {
public:
  const char *name() const override { return "image_add16"; }
  const char *description() const override {
    return "16-bit sample addition of two frames";
  }

protected:
  unsigned elemBytes() const override { return 2; }
  Reg emitCombine(IRBuilder &B, Reg Va, Reg Vb) const override {
    return B.add(Va, Vb);
  }
  uint16_t goldenCombine16(uint16_t A, uint16_t B) const override {
    return static_cast<uint16_t>(A + B);
  }
};

class ImageXor final : public BinaryPixelKernel {
public:
  const char *name() const override { return "image_xor"; }
  const char *description() const override {
    return "8-bit exclusive-or of two frames";
  }

protected:
  Reg emitCombine(IRBuilder &B, Reg Va, Reg Vb) const override {
    return B.xor_(Va, Vb);
  }
  uint8_t goldenCombine8(uint8_t A, uint8_t B) const override {
    return A ^ B;
  }
};

/// dst[i] = src[i]; the "new position" shows up as a destination pointer
/// with arbitrary alignment (and optionally overlapping the source).
class Translate final : public Workload {
public:
  const char *name() const override { return "translate"; }
  const char *description() const override {
    return "move an 8-bit image to a new position";
  }

  Function *build(Module &M) const override {
    Function *F = M.addFunction("translate");
    Reg Src = F->addParam();
    Reg Dst = F->addParam();
    Reg N = F->addParam();
    IRBuilder B(F);

    BasicBlock *Entry = B.createBlock("entry");
    BasicBlock *Body = F->addBlock("loop");
    BasicBlock *Exit = F->addBlock("exit");

    B.setInsertBlock(Entry);
    Reg Limit = B.add(Src, N);
    B.br(CondCode::LEs, N, Operand::imm(0), Exit, Body);

    B.setInsertBlock(Body);
    Reg V = B.load(Address(Src, 0), MemWidth::W1, /*Sign=*/false);
    B.store(Address(Dst, 0), V, MemWidth::W1);
    B.aluTo(Src, Opcode::Add, Src, Operand::imm(1));
    B.aluTo(Dst, Opcode::Add, Dst, Operand::imm(1));
    B.br(CondCode::LTu, Src, Limit, Body, Exit);

    B.setInsertBlock(Exit);
    B.ret(Operand::imm(0));
    return F;
  }

  SetupResult setup(Memory &Mem, const SetupOptions &O) const override {
    SetupResult S;
    RNG R(O.Seed);
    size_t Bytes = static_cast<size_t>(O.N);
    uint64_t Src = allocArray(Mem, S, Bytes + Bytes, O, 1);
    // Translation offset: overlapping forward copy when requested, else a
    // fresh region whose address honours the alignment options.
    uint64_t Dst = O.OverlapMode == 1 ? Src + Bytes / 4
                                      : allocArray(Mem, S, Bytes, O, 1);
    fillBytes(Mem, Src, Bytes, R);
    S.Args = {static_cast<int64_t>(Src), static_cast<int64_t>(Dst), O.N};
    return S;
  }

  int64_t golden(uint8_t *Image, const SetupOptions &O,
                 const SetupResult &S) const override {
    uint64_t Src = static_cast<uint64_t>(S.Args[0]);
    uint64_t Dst = static_cast<uint64_t>(S.Args[1]);
    for (int64_t I = 0; I < O.N; ++I)
      wr8(Image, Dst + I, rd8(Image, Src + I));
    return 0;
  }
};

/// b[n-1-i] = a[i]: one ascending and one descending reference stream.
class Mirror final : public Workload {
public:
  const char *name() const override { return "mirror"; }
  const char *description() const override {
    return "mirror image of an 8-bit frame";
  }

  Function *build(Module &M) const override {
    Function *F = M.addFunction("mirror");
    Reg Src = F->addParam();
    Reg DstBase = F->addParam();
    Reg N = F->addParam();
    IRBuilder B(F);

    BasicBlock *Entry = B.createBlock("entry");
    BasicBlock *Body = F->addBlock("loop");
    BasicBlock *Exit = F->addBlock("exit");

    B.setInsertBlock(Entry);
    Reg Limit = B.add(Src, N);
    Reg DstEnd = B.add(DstBase, N);
    Reg Dst = B.sub(DstEnd, Operand::imm(1));
    B.br(CondCode::LEs, N, Operand::imm(0), Exit, Body);

    B.setInsertBlock(Body);
    Reg V = B.load(Address(Src, 0), MemWidth::W1, /*Sign=*/false);
    B.store(Address(Dst, 0), V, MemWidth::W1);
    B.aluTo(Src, Opcode::Add, Src, Operand::imm(1));
    B.aluTo(Dst, Opcode::Sub, Dst, Operand::imm(1));
    B.br(CondCode::LTu, Src, Limit, Body, Exit);

    B.setInsertBlock(Exit);
    B.ret(Operand::imm(0));
    return F;
  }

  SetupResult setup(Memory &Mem, const SetupOptions &O) const override {
    SetupResult S;
    RNG R(O.Seed);
    size_t Bytes = static_cast<size_t>(O.N);
    uint64_t Src = allocArray(Mem, S, Bytes + Bytes, O, 1);
    uint64_t Dst = O.OverlapMode == 1 ? Src + Bytes / 2
                                      : allocArray(Mem, S, Bytes, O, 1);
    fillBytes(Mem, Src, Bytes, R);
    S.Args = {static_cast<int64_t>(Src), static_cast<int64_t>(Dst), O.N};
    return S;
  }

  int64_t golden(uint8_t *Image, const SetupOptions &O,
                 const SetupResult &S) const override {
    uint64_t Src = static_cast<uint64_t>(S.Args[0]);
    uint64_t Dst = static_cast<uint64_t>(S.Args[1]);
    for (int64_t I = 0; I < O.N; ++I)
      wr8(Image, Dst + (O.N - 1 - I), rd8(Image, Src + I));
    return 0;
  }
};

} // namespace

std::unique_ptr<Workload> vpo::makeImageAdd() {
  return std::make_unique<ImageAdd>();
}
std::unique_ptr<Workload> vpo::makeImageAdd16() {
  return std::make_unique<ImageAdd16>();
}
std::unique_ptr<Workload> vpo::makeImageXor() {
  return std::make_unique<ImageXor>();
}
std::unique_ptr<Workload> vpo::makeTranslate() {
  return std::make_unique<Translate>();
}
std::unique_ptr<Workload> vpo::makeMirror() {
  return std::make_unique<Mirror>();
}
