//===- workloads/Eqntott.cpp - cmppt-style compare kernel ------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// Models the hot loop of SPEC89 eqntott (cmppt: comparing truth-table
/// rows of 16-bit entries). The if-converted comparison logic gives the
/// loop a high ALU-to-memory ratio, which is why the paper measures only a
/// few percent improvement here (3.86% on the Alpha).
///
//===----------------------------------------------------------------------===//

#include "workloads/WorkloadUtils.h"

#include "ir/Function.h"

using namespace vpo;
using namespace vpo::workloads_detail;

namespace {

class Eqntott final : public Workload {
public:
  const char *name() const override { return "eqntott"; }
  const char *description() const override {
    return "truth-table comparison (SPEC89 eqntott cmppt model)";
  }

  Function *build(Module &M) const override {
    Function *F = M.addFunction("eqntott");
    Reg PA = F->addParam();
    Reg PB = F->addParam();
    Reg N = F->addParam();
    IRBuilder B(F);

    BasicBlock *Entry = B.createBlock("entry");
    BasicBlock *Body = F->addBlock("loop");
    BasicBlock *Exit = F->addBlock("exit");

    B.setInsertBlock(Entry);
    Reg Acc = B.mov(Operand::imm(0));
    Reg NBytes = B.shl(N, Operand::imm(1));
    Reg Limit = B.add(PA, NBytes);
    B.br(CondCode::LEs, N, Operand::imm(0), Exit, Body);

    B.setInsertBlock(Body);
    Reg Va = B.load(Address(PA, 0), MemWidth::W2, /*Sign=*/true);
    Reg Vb = B.load(Address(PB, 0), MemWidth::W2, /*Sign=*/true);
    // Direction of the first difference, if-converted.
    Reg Lt = B.cmpSet(CondCode::LTs, Va, Vb);
    Reg Gt = B.cmpSet(CondCode::GTs, Va, Vb);
    Reg Dir = B.sub(Lt, Gt);
    B.addTo(Acc, Acc, Dir);
    // Table-row hashing flavour: a serial polynomial accumulation whose
    // multiply latency dominates each iteration, as cmppt's compare logic
    // does on real eqntott — this is why the paper measures only a few
    // percent improvement here.
    Reg X = B.xor_(Va, Vb);
    Reg Mask = B.and_(X, Operand::imm(255));
    Reg Sh = B.shrA(Va, Operand::imm(2));
    Reg Mix = B.add(Mask, Sh);
    Reg Rot = B.shl(Mix, Operand::imm(1));
    Reg Fold = B.xor_(Rot, Mask);
    // Three serial scoring rounds: the accumulator recurrence is the
    // loop's critical path, so eliminating load slots shortens execution
    // only marginally — matching the paper's 3.86% on this benchmark.
    for (int64_t K : {31, 17, 13})
      B.aluTo(Acc, Opcode::Mul, Acc, Operand::imm(K));
    B.addTo(Acc, Acc, Fold);
    B.aluTo(PA, Opcode::Add, PA, Operand::imm(2));
    B.aluTo(PB, Opcode::Add, PB, Operand::imm(2));
    B.br(CondCode::LTu, PA, Limit, Body, Exit);

    B.setInsertBlock(Exit);
    B.ret(Acc);
    return F;
  }

  SetupResult setup(Memory &Mem, const SetupOptions &O) const override {
    SetupResult S;
    RNG R(O.Seed);
    size_t Bytes = static_cast<size_t>(O.N) * 2;
    uint64_t A = allocArray(Mem, S, Bytes + Bytes, O, 2);
    uint64_t B = O.OverlapMode == 1
                     ? A + (static_cast<uint64_t>(O.N) / 2) * 2
                     : allocArray(Mem, S, Bytes, O, 2);
    // Truth-table entries are small non-negative values (0/1/2 dominate);
    // mostly-equal rows model eqntott's behaviour.
    for (int64_t I = 0; I < O.N; ++I) {
      int64_t V = static_cast<int64_t>(R.nextBelow(3));
      Mem.write(A + 2 * I, 2, static_cast<uint64_t>(V));
      if (O.OverlapMode != 1) {
        int64_t W = R.nextBelow(16) == 0 ? static_cast<int64_t>(R.nextBelow(3))
                                         : V;
        Mem.write(B + 2 * I, 2, static_cast<uint64_t>(W));
      }
    }
    S.Args = {static_cast<int64_t>(A), static_cast<int64_t>(B), O.N};
    return S;
  }

  int64_t golden(uint8_t *Image, const SetupOptions &O,
                 const SetupResult &S) const override {
    uint64_t A = static_cast<uint64_t>(S.Args[0]);
    uint64_t B = static_cast<uint64_t>(S.Args[1]);
    int64_t Acc = 0;
    for (int64_t I = 0; I < O.N; ++I) {
      int64_t Va = rd16s(Image, A + 2 * I);
      int64_t Vb = rd16s(Image, B + 2 * I);
      int64_t Dir = (Va < Vb ? 1 : 0) - (Va > Vb ? 1 : 0);
      Acc += Dir;
      int64_t X = Va ^ Vb;
      int64_t Mask = X & 255;
      int64_t Sh = Va >> 2;
      int64_t Mix = Mask + Sh;
      int64_t Rot = Mix << 1;
      int64_t Fold = Rot ^ Mask;
      // Unsigned arithmetic: the kernel's 64-bit registers wrap.
      uint64_t U = static_cast<uint64_t>(Acc);
      U = U * 31;
      U = U * 17;
      U = U * 13;
      Acc = static_cast<int64_t>(U + static_cast<uint64_t>(Fold));
    }
    return Acc;
  }
};

} // namespace

std::unique_ptr<Workload> vpo::makeEqntott() {
  return std::make_unique<Eqntott>();
}
