//===- jit/JIT.h - Copy-and-patch native tier for the simulator -*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The native execution tier of the *functional* engine: basic blocks of a
/// predecoded function (sim/Predecode.h) are compiled to x86-64 on demand
/// and chained together with patchable jumps, so a hot loop whose blocks
/// have all compiled runs entirely in native code. The tier is purely
/// architectural — it produces exact results, memory images, trap points
/// and instruction/memory-reference counts, but no cycle model; the
/// cycle-accurate interpreter remains the timing oracle.
///
/// Contract with the driver (sim/Interpreter.cpp):
///
///  * All architectural state lives in the caller's value pool
///    (ExecState::Vals) and simulated memory; compiled code addresses both
///    memory-to-memory, so any exit leaves a state the interpreter can
///    resume from with no reconstruction.
///  * Every block entry guards the remaining instruction budget: if the
///    block might cross MaxSteps it deopts *before* any of its effects, and
///    the interpreter re-executes the block per-op to hit the limit (or a
///    trap) at exactly the reference point.
///  * Bounds, alignment, divide-by-zero and field-range checks are inline;
///    a failing check jumps to a per-site trap stub that compensates the
///    instruction/memory counters to the faulting op's prefix and reports
///    the trap kind, op index and address. The driver rebuilds the
///    byte-identical diagnostic from those.
///  * Exits to not-yet-compiled blocks leave through per-target deopt
///    stubs; when the target compiles, every recorded site is patched to a
///    direct jump (block chaining).
///
/// Runtime capability: nativeAvailability() probes once per process for
/// x86-64 + a working PROT_EXEC mapping and honors VPO_NO_JIT; when native
/// execution is unavailable the driver stays on the portable interpreter
/// tier and reports a structured `jit-disabled` remark.
///
//===----------------------------------------------------------------------===//

#ifndef VPO_JIT_JIT_H
#define VPO_JIT_JIT_H

#include "sim/Predecode.h"

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace vpo {
namespace jit {

class CodeBuffer;

/// Result of the once-per-process native-capability probe.
struct Availability {
  bool Ok = false;
  /// Stable reason token when !Ok: "arch" (not x86-64/unix),
  /// "env-vpo-no-jit", "mmap-failed", "mmap-noexec", "probe-misexec".
  const char *Reason = "";
};

/// Probes (once) whether native code can be emitted and executed here.
const Availability &nativeAvailability();

enum class ExitKind : uint64_t {
  Ret = 0,   ///< the function returned; ExecState::ReturnValue is set
  Deopt = 1, ///< resume interpretation at block ExecState::ResumeBlock
  Trap = 2,  ///< run ended at a trap; Trap/TrapOp/TrapAddr describe it
  /// A hardware fault (SIGSEGV/SIGBUS/SIGFPE) escaped the emitted code;
  /// the faulting block is quarantined and lastFault() describes it.
  /// Never stored in ExecState::Exit by emitted code — synthesized by
  /// run() after the fault handler longjmps out.
  NativeFault = 3,
};

enum class TrapKind : uint64_t {
  OutOfBounds = 0,
  Unaligned = 1,
  DivideByZero = 2,
  ExtractField = 3, ///< extractf field exceeds the register (MalformedIR)
  InsertField = 4,  ///< insertf field exceeds the register (MalformedIR)
};

enum class DeoptReason : uint64_t {
  Budget = 0,     ///< block-entry budget guard fired
  ColdTarget = 1, ///< branch to a block that has not compiled yet
};

/// The register block native code runs against. Layout is part of the ABI
/// between the driver and emitted code (fixed r12-relative offsets);
/// JIT.cpp static_asserts every offset.
struct ExecState {
  uint64_t *Vals = nullptr;    ///< value pool base (r15)
  uint8_t *MemData = nullptr;  ///< simulated memory base (r14)
  uint64_t MemSize = 0;        ///< simulated memory size (rbx)
  uint64_t StepsRemaining = 0; ///< instruction budget (r13)
  uint64_t Loads = 0;
  uint64_t Stores = 0;
  uint64_t LoadBytes = 0;
  uint64_t StoreBytes = 0;
  uint64_t Branches = 0;
  uint64_t ReturnValue = 0;
  uint64_t Exit = 0;        ///< ExitKind
  uint64_t ResumeBlock = 0; ///< valid when Exit == Deopt
  uint64_t Trap = 0;        ///< TrapKind, valid when Exit == Trap
  uint64_t TrapOp = 0;      ///< faulting op index (global, DF.Ops)
  uint64_t TrapAddr = 0;    ///< faulting address (OOB / unaligned traps)
  uint64_t Deopt = 0;       ///< DeoptReason, valid when Exit == Deopt
};

/// Aggregate compilation counters, exposed through JIT remarks.
struct ProgramStats {
  uint64_t BlocksCompiled = 0;
  uint64_t BytesEmitted = 0;
  uint64_t CompileFailures = 0;
  uint64_t NativeFaults = 0;      ///< hardware faults contained in run()
  uint64_t BlocksQuarantined = 0; ///< blocks permanently deopted by faults
};

/// Description of the last contained hardware fault (ExitKind::NativeFault).
struct NativeFaultRecord {
  int Sig = 0;            ///< SIGSEGV, SIGBUS or SIGFPE
  uint64_t PcOff = 0;     ///< fault pc offset into the code buffer
  uint32_t Block = ~0u;   ///< quarantined block (valid when Attributed)
  uint32_t ResumeOp = 0;  ///< global op index to resume interpretation at
  /// True when the pc mapped to an op site: the ExecState counters and
  /// budget have been compensated to "everything before ResumeOp
  /// committed" and the interpreter can resume exactly there. False means
  /// the fault hit a stub or a wild pc — nothing is known about what
  /// committed, the program is broken() and the run must be abandoned.
  bool Attributed = false;
};

/// Compiled-code container for one DecodedFunction: per-block native
/// entries, hotness counters, the chain-patching tables and the W^X code
/// buffer. Cached alongside the decoded form (sim/ProgramCache.h) so
/// hotness and code persist across run() calls.
///
/// Concurrency: one driver at a time. A driver must hold tryAcquire() for
/// the whole run to count hotness, compile or execute; if the lock is
/// contested (two threads simulating the same function) the loser simply
/// runs the interpreter tier.
class JITProgram {
public:
  /// \returns null when native execution is unavailable or \p DF is not
  /// JIT-able (no blocks, or the value pool exceeds addressable range).
  /// \p DF must outlive the program. \p MaxCodeBytes bounds the code
  /// reservation. \p PlantWildStoreOnCompile is the seeded fault
  /// injector: when nonzero, the Nth block to compile gets a wild store
  /// to a non-canonical address planted before its first op — the
  /// "miscompiled template" the quarantine tests and the chaos harness
  /// prove containment against. Never set outside test rigs.
  static std::shared_ptr<JITProgram> create(const DecodedFunction &DF,
                                            size_t MaxCodeBytes,
                                            uint32_t PlantWildStoreOnCompile = 0);

  ~JITProgram();

  bool tryAcquire() { return RunLock.try_lock(); }
  void release() { RunLock.unlock(); }

  uint32_t numBlocks() const {
    return static_cast<uint32_t>(Blocks.size());
  }
  bool compiled(uint32_t B) const { return Blocks[B].EntryOff != kNoOffset; }
  bool compileFailed(uint32_t B) const { return Blocks[B].Failed; }
  /// True when a hardware fault permanently deopted \p B: its chain sites
  /// are patched back to the deopt stub and it will never recompile
  /// (quarantined blocks report compileFailed() so the driver's promotion
  /// logic needs no special case).
  bool quarantined(uint32_t B) const { return Blocks[B].Quarantined; }
  /// True after an unrecoverable native failure (W^X flip refused); the
  /// driver must stop attempting native entry for this program.
  bool broken() const { return Broken; }

  /// Counts one interpreter-tier entry of block \p B; \returns the new
  /// count (the driver compiles when it crosses its threshold).
  uint64_t bumpHot(uint32_t B) { return ++Blocks[B].Hot; }
  uint64_t hotCount(uint32_t B) const { return Blocks[B].Hot; }

  /// Compiles block \p B and patches every recorded jump site that waits
  /// on it. \returns false (and marks the block failed, permanently) when
  /// emission or buffer space fails.
  bool compileBlock(uint32_t B);

  /// Enters native code at block \p B (which must be compiled). \p S.Vals,
  /// MemData, MemSize and StepsRemaining must be live; counters accumulate
  /// in place.
  ExitKind run(uint32_t B, ExecState &S);

  /// Valid after run() returned ExitKind::NativeFault.
  const NativeFaultRecord &lastFault() const { return LastFault; }

  const ProgramStats &stats() const { return Stats; }

  // Introspection for tests.
  size_t codeBytes() const;
  size_t codeCapacity() const;

private:
  static constexpr size_t kNoOffset = ~size_t(0);

  /// Maps a code offset back to the op whose emitted sequence contains
  /// it, with the memory-counter prefix of the ops before it — what fault
  /// attribution needs to rebuild exact architectural state mid-block.
  struct OpSite {
    size_t CodeOff;  ///< absolute buffer offset where the op's code starts
    uint32_t OpIdx;  ///< global (DF.Ops) index
    int32_t PrefLoads, PrefStores, PrefLoadBytes, PrefStoreBytes;
  };

  struct BlockInfo {
    size_t EntryOff = kNoOffset;
    uint64_t Hot = 0;
    bool Failed = false;
    bool Quarantined = false;
    /// Absolute extent of the block's emitted code (entry guard, ops,
    /// trap stubs) — the fault-attribution range.
    size_t CodeStart = kNoOffset;
    size_t CodeEnd = kNoOffset;
    std::vector<OpSite> Sites;
    /// Every rel32 site ever patched to jump to this block's entry
    /// (chained jumps from other blocks and itself). Quarantine re-points
    /// them at the deopt stub.
    std::vector<size_t> ChainSites;
  };

  JITProgram(const DecodedFunction &DF, std::unique_ptr<CodeBuffer> Buf);

  bool emitProlog();
  size_t coldStub(uint32_t Target); ///< deopt stub for an uncompiled target
  /// Permanent deopt after a hardware fault in \p B: chain sites back to
  /// the deopt stub, entry cleared, never recompiled.
  void quarantineBlock(uint32_t B);
  /// Maps an absolute fault pc offset to (block, op site). \returns false
  /// for stub/trampoline/wild addresses.
  bool attributeFault(uint64_t PcOff, uint32_t &B, const OpSite *&Site) const;

  const DecodedFunction &DF;
  std::unique_ptr<CodeBuffer> Buf;
  std::vector<BlockInfo> Blocks;
  /// Per-target-block list of rel32 site offsets waiting to be patched to
  /// the target's entry when it compiles.
  std::vector<std::vector<size_t>> Pending;
  /// Per-target-block shared deopt stub offset (kNoOffset = none yet).
  std::vector<size_t> ColdStubs;
  size_t TrampOff = kNoOffset;
  size_t EpilogueOff = kNoOffset;
  bool Broken = false;
  /// Fault injector (see create()): compile ordinal to corrupt, 0 = off.
  uint32_t PlantWildStoreOnCompile = 0;
  NativeFaultRecord LastFault;
  ProgramStats Stats;
  std::mutex RunLock;
};

} // namespace jit
} // namespace vpo

#endif // VPO_JIT_JIT_H
