//===- jit/Emitter.h - Minimal x86-64 instruction emitter -------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny, dependency-free x86-64 encoder: exactly the instruction forms
/// the copy-and-patch block compiler (jit/JIT.cpp) needs, nothing more.
/// Emission targets a plain byte vector; the caller appends the finished
/// block to the executable CodeBuffer in one shot and resolves recorded
/// jump sites afterwards.
///
/// Conventions used by the generated code (see JIT.cpp for the full
/// contract): r15 = value-pool base, r14 = simulated-memory base,
/// rbx = memory size, r13 = remaining instruction budget, r12 = &ExecState.
/// rax/rcx/rdx/rsi/rdi and xmm0 are scratch.
///
//===----------------------------------------------------------------------===//

#ifndef VPO_JIT_EMITTER_H
#define VPO_JIT_EMITTER_H

#include <cstdint>
#include <cstring>
#include <vector>

namespace vpo {
namespace jit {

enum GpReg : uint8_t {
  RAX = 0,
  RCX = 1,
  RDX = 2,
  RBX = 3,
  RSP = 4,
  RBP = 5,
  RSI = 6,
  RDI = 7,
  R8 = 8,
  R9 = 9,
  R10 = 10,
  R11 = 11,
  R12 = 12,
  R13 = 13,
  R14 = 14,
  R15 = 15,
};

/// x86 condition-code nibbles (for jcc / setcc / cmovcc).
enum CondNibble : uint8_t {
  CC_B = 0x2,  ///< unsigned <
  CC_AE = 0x3, ///< unsigned >=
  CC_E = 0x4,
  CC_NE = 0x5,
  CC_BE = 0x6, ///< unsigned <=
  CC_A = 0x7,  ///< unsigned >
  CC_L = 0xC,
  CC_GE = 0xD,
  CC_LE = 0xE,
  CC_G = 0xF,
};

class Emitter {
public:
  const uint8_t *data() const { return Buf.data(); }
  size_t size() const { return Buf.size(); }

  void u8(uint8_t V) { Buf.push_back(V); }
  void u32(uint32_t V) {
    size_t N = Buf.size();
    Buf.resize(N + 4);
    std::memcpy(Buf.data() + N, &V, 4);
  }
  void u64(uint64_t V) {
    size_t N = Buf.size();
    Buf.resize(N + 8);
    std::memcpy(Buf.data() + N, &V, 8);
  }

  /// Rewrites a previously emitted rel32 at \p Off.
  void patch32At(size_t Off, int32_t V) { std::memcpy(Buf.data() + Off, &V, 4); }

  /// Patches the rel32 at \p SiteOff so the jump lands on \p Target (both
  /// are offsets within this emitter's buffer).
  void bindLocal(size_t SiteOff, size_t Target) {
    patch32At(SiteOff, static_cast<int32_t>(Target - (SiteOff + 4)));
  }

  // --- prefixes / modrm ---------------------------------------------------

  void rex(bool W, uint8_t Reg, uint8_t Index, uint8_t Base,
           bool Force = false) {
    uint8_t V = 0x40 | (W ? 8 : 0) | ((Reg >> 3) << 2) | ((Index >> 3) << 1) |
                (Base >> 3);
    if (V != 0x40 || Force)
      u8(V);
  }

  /// modrm (+ SIB + disp) for [Base + Disp]. Handles the RSP/R12 SIB case
  /// and the RBP/R13 zero-disp case.
  void memOp(uint8_t Reg, GpReg Base, int32_t Disp) {
    uint8_t RegLow = Reg & 7, BaseLow = Base & 7;
    bool NeedSib = BaseLow == 4; // rsp/r12 encodings require SIB
    bool Disp0 = Disp == 0 && BaseLow != 5; // rbp/r13 need an explicit disp
    uint8_t Mod = Disp0 ? 0 : (Disp >= -128 && Disp <= 127 ? 1 : 2);
    u8(static_cast<uint8_t>((Mod << 6) | (RegLow << 3) |
                            (NeedSib ? 4 : BaseLow)));
    if (NeedSib)
      u8(0x24); // scale=0, no index, base=rsp/r12
    if (Mod == 1)
      u8(static_cast<uint8_t>(Disp));
    else if (Mod == 2)
      u32(static_cast<uint32_t>(Disp));
  }

  /// modrm + SIB for [Base + Index] (scale 1, no displacement unless the
  /// base requires one). Index must not be RSP.
  void memOpIndex(uint8_t Reg, GpReg Base, GpReg Index) {
    uint8_t BaseLow = Base & 7;
    uint8_t Mod = BaseLow == 5 ? 1 : 0;
    u8(static_cast<uint8_t>((Mod << 6) | ((Reg & 7) << 3) | 4));
    u8(static_cast<uint8_t>(((Index & 7) << 3) | BaseLow));
    if (Mod == 1)
      u8(0);
  }

  void regOp(uint8_t Reg, uint8_t Rm) {
    u8(static_cast<uint8_t>(0xC0 | ((Reg & 7) << 3) | (Rm & 7)));
  }

  // --- moves --------------------------------------------------------------

  /// mov Dst, qword [Base+Disp]
  void movRM(GpReg Dst, GpReg Base, int32_t Disp) {
    rex(true, Dst, 0, Base);
    u8(0x8B);
    memOp(Dst, Base, Disp);
  }
  /// mov Dst32, dword [Base+Disp] (zero-extends)
  void movRM32(GpReg Dst, GpReg Base, int32_t Disp) {
    rex(false, Dst, 0, Base);
    u8(0x8B);
    memOp(Dst, Base, Disp);
  }
  /// mov qword [Base+Disp], Src
  void movMR(GpReg Base, int32_t Disp, GpReg Src) {
    rex(true, Src, 0, Base);
    u8(0x89);
    memOp(Src, Base, Disp);
  }
  /// mov qword [Base+Disp], imm32 (sign-extended)
  void movMemImm32(GpReg Base, int32_t Disp, int32_t Imm) {
    rex(true, 0, 0, Base);
    u8(0xC7);
    memOp(0, Base, Disp);
    u32(static_cast<uint32_t>(Imm));
  }
  /// mov Dst, Src (64-bit)
  void movRR(GpReg Dst, GpReg Src) {
    rex(true, Dst, 0, Src);
    u8(0x8B);
    regOp(Dst, Src);
  }
  /// mov Dst32, Src32 (zero-extends to 64)
  void movRR32(GpReg Dst, GpReg Src) {
    rex(false, Dst, 0, Src);
    u8(0x8B);
    regOp(Dst, Src);
  }
  /// movabs Dst, imm64
  void movImm64(GpReg Dst, uint64_t V) {
    rex(true, 0, 0, Dst);
    u8(static_cast<uint8_t>(0xB8 | (Dst & 7)));
    u64(V);
  }

  /// movzx Dst32, byte/word [Base+Disp]
  void movzxRM(GpReg Dst, GpReg Base, int32_t Disp, unsigned Bytes) {
    rex(false, Dst, 0, Base);
    u8(0x0F);
    u8(Bytes == 1 ? 0xB6 : 0xB7);
    memOp(Dst, Base, Disp);
  }
  /// movsx Dst64, byte/word/dword [Base+Disp]
  void movsxRM(GpReg Dst, GpReg Base, int32_t Disp, unsigned Bytes) {
    rex(true, Dst, 0, Base);
    if (Bytes == 4) {
      u8(0x63); // movsxd
    } else {
      u8(0x0F);
      u8(Bytes == 1 ? 0xBE : 0xBF);
    }
    memOp(Dst, Base, Disp);
  }
  /// movzx Dst32, Src8/Src16 (register form)
  void movzxRR(GpReg Dst, GpReg Src, unsigned Bytes) {
    rex(false, Dst, 0, Src, /*Force=*/Src >= RSP);
    u8(0x0F);
    u8(Bytes == 1 ? 0xB6 : 0xB7);
    regOp(Dst, Src);
  }
  /// movsx Dst64, Src8/16/32 (register form)
  void movsxRR(GpReg Dst, GpReg Src, unsigned Bytes) {
    rex(true, Dst, 0, Src);
    if (Bytes == 4) {
      u8(0x63);
    } else {
      u8(0x0F);
      u8(Bytes == 1 ? 0xBE : 0xBF);
    }
    regOp(Dst, Src);
  }

  // --- loads/stores through [Base + Index] --------------------------------

  /// Zero-extending load of Bytes (1/2/4/8) into Dst from [Base+Index].
  void loadIndex(GpReg Dst, GpReg Base, GpReg Index, unsigned Bytes) {
    switch (Bytes) {
    case 1:
      rex(false, Dst, Index, Base);
      u8(0x0F);
      u8(0xB6);
      break;
    case 2:
      rex(false, Dst, Index, Base);
      u8(0x0F);
      u8(0xB7);
      break;
    case 4:
      rex(false, Dst, Index, Base);
      u8(0x8B);
      break;
    default:
      rex(true, Dst, Index, Base);
      u8(0x8B);
      break;
    }
    memOpIndex(Dst, Base, Index);
  }
  /// Sign-extending load of Bytes (1/2/4) into Dst64.
  void loadIndexSext(GpReg Dst, GpReg Base, GpReg Index, unsigned Bytes) {
    rex(true, Dst, Index, Base);
    if (Bytes == 4) {
      u8(0x63);
    } else {
      u8(0x0F);
      u8(Bytes == 1 ? 0xBE : 0xBF);
    }
    memOpIndex(Dst, Base, Index);
  }
  /// Store of the low Bytes (1/2/4/8) of Src to [Base+Index].
  void storeIndex(GpReg Base, GpReg Index, GpReg Src, unsigned Bytes) {
    if (Bytes == 2)
      u8(0x66);
    if (Bytes == 1) {
      rex(false, Src, Index, Base, /*Force=*/Src >= RSP);
      u8(0x88);
    } else {
      rex(Bytes == 8, Src, Index, Base);
      u8(0x89);
    }
    memOpIndex(Src, Base, Index);
  }

  // --- ALU ----------------------------------------------------------------

  /// 64-bit <op> Dst, qword [Base+Disp]. Opc: add 03, sub 2B, and 23,
  /// or 0B, xor 33, cmp 3B.
  void aluRM(uint8_t Opc, GpReg Dst, GpReg Base, int32_t Disp) {
    rex(true, Dst, 0, Base);
    u8(Opc);
    memOp(Dst, Base, Disp);
  }
  /// 64-bit <op> Dst, Src (same opcodes as aluRM).
  void aluRR(uint8_t Opc, GpReg Dst, GpReg Src) {
    rex(true, Dst, 0, Src);
    u8(Opc);
    regOp(Dst, Src);
  }
  /// imul Dst, qword [Base+Disp]
  void imulRM(GpReg Dst, GpReg Base, int32_t Disp) {
    rex(true, Dst, 0, Base);
    u8(0x0F);
    u8(0xAF);
    memOp(Dst, Base, Disp);
  }
  /// 64-bit <grp1 ext> Reg, imm (81/83 forms; add=0, and=4, sub=5, cmp=7).
  void aluImm(uint8_t Ext, GpReg Reg, int32_t Imm) {
    rex(true, 0, 0, Reg);
    if (Imm >= -128 && Imm <= 127) {
      u8(0x83);
      regOp(Ext, Reg);
      u8(static_cast<uint8_t>(Imm));
    } else {
      u8(0x81);
      regOp(Ext, Reg);
      u32(static_cast<uint32_t>(Imm));
    }
  }
  /// 32-bit <grp1 ext> Reg32, imm8 (and ecx,7 style).
  void aluImm32(uint8_t Ext, GpReg Reg, int8_t Imm) {
    rex(false, 0, 0, Reg);
    u8(0x83);
    regOp(Ext, Reg);
    u8(static_cast<uint8_t>(Imm));
  }
  /// 64-bit <grp1 ext> qword [Base+Disp], imm32.
  void aluMemImm(uint8_t Ext, GpReg Base, int32_t Disp, int32_t Imm) {
    rex(true, 0, 0, Base);
    u8(0x81);
    memOp(Ext, Base, Disp);
    u32(static_cast<uint32_t>(Imm));
  }
  /// test Dst, Src (64-bit)
  void testRR(GpReg A, GpReg B) {
    rex(true, B, 0, A);
    u8(0x85);
    regOp(B, A);
  }
  /// test A32, B32
  void testRR32(GpReg A, GpReg B) {
    rex(false, B, 0, A);
    u8(0x85);
    regOp(B, A);
  }
  /// test Reg8, imm8 (REX forced so dil/sil encode correctly)
  void test8Imm(GpReg Reg, uint8_t Imm) {
    rex(false, 0, 0, Reg, /*Force=*/Reg >= RSP);
    u8(0xF6);
    regOp(0, Reg);
    u8(Imm);
  }
  /// 64-bit shift by cl. Ext: shl=4, shr=5, sar=7.
  void shiftCl(uint8_t Ext, GpReg Reg) {
    rex(true, 0, 0, Reg);
    u8(0xD3);
    regOp(Ext, Reg);
  }
  /// 32-bit shl Reg32, imm8
  void shlImm32(GpReg Reg, uint8_t Imm) {
    rex(false, 0, 0, Reg);
    u8(0xC1);
    regOp(4, Reg);
    u8(Imm);
  }
  /// neg Reg32
  void negR32(GpReg Reg) {
    rex(false, 0, 0, Reg);
    u8(0xF7);
    regOp(3, Reg);
  }
  /// not Reg (64-bit)
  void notR(GpReg Reg) {
    rex(true, 0, 0, Reg);
    u8(0xF7);
    regOp(2, Reg);
  }
  /// xor Reg32, Reg32 (the canonical zeroing idiom)
  void xorR32(GpReg Dst, GpReg Src) {
    rex(false, Dst, 0, Src);
    u8(0x33);
    regOp(Dst, Src);
  }
  void cqo() {
    u8(0x48);
    u8(0x99);
  }
  /// div/idiv by Reg (64-bit). Signed selects idiv.
  void divR(GpReg Reg, bool Signed) {
    rex(true, 0, 0, Reg);
    u8(0xF7);
    regOp(Signed ? 7 : 6, Reg);
  }
  /// setcc Reg8 (REX forced; pair with movzxRR to widen)
  void setcc(uint8_t CC, GpReg Reg) {
    rex(false, 0, 0, Reg, /*Force=*/Reg >= RSP);
    u8(0x0F);
    u8(static_cast<uint8_t>(0x90 | CC));
    regOp(0, Reg);
  }
  /// cmovcc Dst, Src (64-bit)
  void cmovcc(uint8_t CC, GpReg Dst, GpReg Src) {
    rex(true, Dst, 0, Src);
    u8(0x0F);
    u8(static_cast<uint8_t>(0x40 | CC));
    regOp(Dst, Src);
  }

  // --- control flow -------------------------------------------------------

  /// jcc rel32 with a zero placeholder. \returns the rel32 site offset.
  size_t jcc32(uint8_t CC) {
    u8(0x0F);
    u8(static_cast<uint8_t>(0x80 | CC));
    size_t Site = Buf.size();
    u32(0);
    return Site;
  }
  /// jmp rel32 with a zero placeholder. \returns the rel32 site offset.
  size_t jmp32() {
    u8(0xE9);
    size_t Site = Buf.size();
    u32(0);
    return Site;
  }
  /// jmp Reg
  void jmpR(GpReg Reg) {
    rex(false, 0, 0, Reg);
    u8(0xFF);
    regOp(4, Reg);
  }
  void push(GpReg Reg) {
    rex(false, 0, 0, Reg);
    u8(static_cast<uint8_t>(0x50 | (Reg & 7)));
  }
  void pop(GpReg Reg) {
    rex(false, 0, 0, Reg);
    u8(static_cast<uint8_t>(0x58 | (Reg & 7)));
  }
  void ret() { u8(0xC3); }

  // --- SSE2 scalar double/float ------------------------------------------

  /// movsd Xmm, qword [Base+Disp]
  void movsdRM(uint8_t Xmm, GpReg Base, int32_t Disp) {
    u8(0xF2);
    rex(false, Xmm, 0, Base);
    u8(0x0F);
    u8(0x10);
    memOp(Xmm, Base, Disp);
  }
  /// movsd qword [Base+Disp], Xmm
  void movsdMR(GpReg Base, int32_t Disp, uint8_t Xmm) {
    u8(0xF2);
    rex(false, Xmm, 0, Base);
    u8(0x0F);
    u8(0x11);
    memOp(Xmm, Base, Disp);
  }
  /// movss Xmm, dword [Base+Index]
  void movssIndex(uint8_t Xmm, GpReg Base, GpReg Index) {
    u8(0xF3);
    rex(false, Xmm, Index, Base);
    u8(0x0F);
    u8(0x10);
    memOpIndex(Xmm, Base, Index);
  }
  /// addsd/subsd/mulsd/divsd Xmm, qword [Base+Disp].
  /// Opc: add 58, mul 59, sub 5C, div 5E.
  void sseArithRM(uint8_t Opc, uint8_t Xmm, GpReg Base, int32_t Disp) {
    u8(0xF2);
    rex(false, Xmm, 0, Base);
    u8(0x0F);
    u8(Opc);
    memOp(Xmm, Base, Disp);
  }
  /// cvtsi2sd Xmm, qword [Base+Disp]
  void cvtsi2sdRM(uint8_t Xmm, GpReg Base, int32_t Disp) {
    u8(0xF2);
    rex(true, Xmm, 0, Base);
    u8(0x0F);
    u8(0x2A);
    memOp(Xmm, Base, Disp);
  }
  /// cvttsd2si Dst64, qword [Base+Disp]
  void cvttsd2siRM(GpReg Dst, GpReg Base, int32_t Disp) {
    u8(0xF2);
    rex(true, Dst, 0, Base);
    u8(0x0F);
    u8(0x2C);
    memOp(Dst, Base, Disp);
  }
  /// cvtss2sd Dst, Src (register form)
  void cvtss2sd(uint8_t Dst, uint8_t Src) {
    u8(0xF3);
    u8(0x0F);
    u8(0x5A);
    regOp(Dst, Src);
  }
  /// cvtsd2ss Dst, Src (register form)
  void cvtsd2ss(uint8_t Dst, uint8_t Src) {
    u8(0xF2);
    u8(0x0F);
    u8(0x5A);
    regOp(Dst, Src);
  }
  /// movd Xmm, Src32
  void movdToXmm(uint8_t Xmm, GpReg Src) {
    u8(0x66);
    rex(false, Xmm, 0, Src);
    u8(0x0F);
    u8(0x6E);
    regOp(Xmm, Src);
  }
  /// movd Dst32, Xmm (zero-extends to 64)
  void movdFromXmm(GpReg Dst, uint8_t Xmm) {
    u8(0x66);
    rex(false, Xmm, 0, Dst);
    u8(0x0F);
    u8(0x7E);
    regOp(Xmm, Dst);
  }

private:
  std::vector<uint8_t> Buf;
};

} // namespace jit
} // namespace vpo

#endif // VPO_JIT_EMITTER_H
