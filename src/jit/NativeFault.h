//===- jit/NativeFault.h - Scoped hardware-fault containment ----*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Scoped SIGSEGV/SIGBUS/SIGFPE containment for native JIT entries. A
/// NativeFaultScope installs process-wide signal handlers for exactly the
/// duration of one native call (refcounted, so concurrent drivers share
/// one installation) and records a thread-local "active region" — the RX
/// code buffer the current thread is about to enter. When a hardware
/// fault fires on a thread with an active scope, the handler captures the
/// faulting pc and the live budget register (r13) from the ucontext and
/// siglongjmps back to the caller; faults on threads *without* an active
/// scope are re-raised under the previously-installed disposition, so
/// sanitizer runtimes and host crash reporting keep working.
///
/// The handler runs on a per-thread sigaltstack: a wild store that lands
/// on the thread's own stack guard page must still be catchable.
///
/// Usage (the only caller is JITProgram::run):
///
///   NativeFaultScope Scope(Buf->base(), Buf->used());
///   if (sigsetjmp(Scope.jmp(), 1) != 0) {
///     const NativeFaultInfo &FI = Scope.fault();  // pc, r13, signal
///     ... quarantine the faulting block, resume interpretation ...
///   } else {
///     Fn(&S, Entry);  // the native call
///   }
///
/// installCount() exposes the total number of handler installations for
/// the VPO_NO_JIT contract test: with native execution vetoed, no scope
/// is ever constructed and the count stays zero.
///
//===----------------------------------------------------------------------===//

#ifndef VPO_JIT_NATIVEFAULT_H
#define VPO_JIT_NATIVEFAULT_H

#include <csetjmp>
#include <cstddef>
#include <cstdint>

namespace vpo {
namespace jit {

/// What the signal handler captured before longjmping out.
struct NativeFaultInfo {
  int Sig = 0;         ///< SIGSEGV, SIGBUS or SIGFPE
  uint64_t PcOff = 0;  ///< faulting pc offset into the code buffer
  uint64_t R13 = 0;    ///< the budget register at the fault
  bool PcInCode = false; ///< pc landed inside the scope's code region
  bool HaveRegs = false; ///< the platform exposed pc/r13 in the ucontext
};

class NativeFaultScope {
public:
  /// Arms fault containment for code in [CodeBase, CodeBase + CodeSize).
  NativeFaultScope(const void *CodeBase, size_t CodeSize);
  ~NativeFaultScope();

  NativeFaultScope(const NativeFaultScope &) = delete;
  NativeFaultScope &operator=(const NativeFaultScope &) = delete;

  /// The jump target the handler returns through. The *caller* must run
  /// sigsetjmp on it (a saved context must outlive the frame that created
  /// it, so it cannot be hidden behind a member function call).
  sigjmp_buf &jmp();

  /// Valid after the sigsetjmp returned nonzero.
  const NativeFaultInfo &fault() const;

  /// Total handler installations this process has ever performed.
  /// VPO_NO_JIT contract: stays 0 when native execution never runs.
  static uint64_t installCount();

  /// True while any scope (on any thread) holds the handlers installed.
  static bool handlersActive();

private:
  void *Ctx; ///< opaque per-scope state (thread-local registration)
  bool Installed = false;
};

} // namespace jit
} // namespace vpo

#endif // VPO_JIT_NATIVEFAULT_H
