//===- jit/CodeBuffer.cpp -------------------------------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "jit/CodeBuffer.h"

#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#define VPO_JIT_HAVE_MMAP 1
#include <sys/mman.h>
#include <unistd.h>
#endif

using namespace vpo;
using namespace vpo::jit;

std::unique_ptr<CodeBuffer> CodeBuffer::create(size_t ReserveBytes) {
#if VPO_JIT_HAVE_MMAP
  long PageLong = sysconf(_SC_PAGESIZE);
  size_t Page = PageLong > 0 ? static_cast<size_t>(PageLong) : 4096;
  if (ReserveBytes < Page)
    ReserveBytes = Page;
  size_t Reserve = (ReserveBytes + Page - 1) / Page * Page;
  void *P = mmap(nullptr, Reserve, PROT_NONE, MAP_PRIVATE | MAP_ANONYMOUS,
                 -1, 0);
  if (P == MAP_FAILED)
    return nullptr;
  return std::unique_ptr<CodeBuffer>(
      new CodeBuffer(static_cast<uint8_t *>(P), Reserve, Page));
#else
  (void)ReserveBytes;
  return nullptr;
#endif
}

CodeBuffer::~CodeBuffer() {
#if VPO_JIT_HAVE_MMAP
  if (Base)
    munmap(Base, Reserve);
#endif
}

bool CodeBuffer::append(const void *Data, size_t N, size_t &OffOut) {
#if VPO_JIT_HAVE_MMAP
  if (!Writable || N > Reserve - Used)
    return false;
  size_t Need = (Used + N + Page - 1) / Page * Page;
  if (Need > Committed) {
    if (mprotect(Base + Committed, Need - Committed,
                 PROT_READ | PROT_WRITE) != 0)
      return false;
    Committed = Need;
  }
  std::memcpy(Base + Used, Data, N);
  OffOut = Used;
  Used += N;
  return true;
#else
  (void)Data;
  (void)N;
  (void)OffOut;
  return false;
#endif
}

void CodeBuffer::patch32(size_t Off, int32_t V) {
  if (!Writable || Off + 4 > Used)
    return;
  std::memcpy(Base + Off, &V, 4);
}

bool CodeBuffer::makeWritable() {
#if VPO_JIT_HAVE_MMAP
  if (Writable)
    return true;
  if (Committed &&
      mprotect(Base, Committed, PROT_READ | PROT_WRITE) != 0)
    return false;
  Writable = true;
  return true;
#else
  return false;
#endif
}

bool CodeBuffer::makeExecutable() {
#if VPO_JIT_HAVE_MMAP
  if (!Writable)
    return true;
  if (Committed && mprotect(Base, Committed, PROT_READ | PROT_EXEC) != 0)
    return false;
  Writable = false;
  return true;
#else
  return false;
#endif
}
