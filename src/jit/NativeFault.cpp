//===- jit/NativeFault.cpp - Scoped hardware-fault containment --*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
//
// Installation is refcounted under a mutex: the first live scope swaps in
// the handlers (saving the previous dispositions), the last one swaps
// them back. The thread-local active-region pointer is what makes the
// handler safe to share across threads: a fault on a thread that is not
// inside a native call sees no active scope and falls through to the
// saved disposition by *reinstalling it and returning* — for fault-type
// signals the kernel then re-delivers the signal at the same instruction
// under the original handler (ASan's, the default core-dumping one, ...),
// which is the only async-signal-safe way to chain.
//
//===----------------------------------------------------------------------===//

#include "jit/NativeFault.h"

#include <atomic>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <mutex>

#if defined(__unix__) || defined(__APPLE__)
#include <signal.h>
#include <ucontext.h>
#include <unistd.h>
#define VPO_NATIVE_FAULT_POSIX 1
#endif

using namespace vpo;
using namespace vpo::jit;

namespace {

#ifdef VPO_NATIVE_FAULT_POSIX

struct ScopeCtx {
  sigjmp_buf Jmp;
  uintptr_t Base = 0;
  size_t Size = 0;
  NativeFaultInfo Info;
  ScopeCtx *Prev = nullptr; ///< nesting guard (two programs on one thread)
};

thread_local ScopeCtx *TLActive = nullptr;

std::mutex InstallMu;
int InstallDepth = 0;
struct sigaction OldSegv, OldBus, OldFpe;
std::atomic<uint64_t> Installs{0};
std::atomic<int> ActiveDepth{0};

const int GuardedSigs[] = {SIGSEGV, SIGBUS, SIGFPE};

struct sigaction *savedFor(int Sig) {
  switch (Sig) {
  case SIGSEGV:
    return &OldSegv;
  case SIGBUS:
    return &OldBus;
  default:
    return &OldFpe;
  }
}

void handleFault(int Sig, siginfo_t *, void *UCtx) {
  ScopeCtx *C = TLActive;
  if (C) {
    C->Info.Sig = Sig;
    C->Info.HaveRegs = false;
    C->Info.PcInCode = false;
#if defined(__x86_64__) && defined(__linux__)
    auto *U = static_cast<ucontext_t *>(UCtx);
    uintptr_t Pc = static_cast<uintptr_t>(U->uc_mcontext.gregs[REG_RIP]);
    C->Info.R13 = static_cast<uint64_t>(U->uc_mcontext.gregs[REG_R13]);
    C->Info.HaveRegs = true;
#elif defined(__x86_64__) && defined(__APPLE__)
    auto *U = static_cast<ucontext_t *>(UCtx);
    uintptr_t Pc = static_cast<uintptr_t>(U->uc_mcontext->__ss.__rip);
    C->Info.R13 = static_cast<uint64_t>(U->uc_mcontext->__ss.__r13);
    C->Info.HaveRegs = true;
#else
    uintptr_t Pc = 0;
    (void)UCtx;
#endif
    if (C->Info.HaveRegs && Pc >= C->Base && Pc < C->Base + C->Size) {
      C->Info.PcOff = Pc - C->Base;
      C->Info.PcInCode = true;
    } else {
      // The thread *is* inside a native call (nothing else runs while the
      // scope is active on this thread), so even a wild pc — corrupted
      // code jumping out of the buffer — is the JIT's fault to contain.
      // It just cannot be attributed to an op site.
      C->Info.PcOff = Pc;
    }
    siglongjmp(C->Jmp, 1);
  }
  // Not our thread's fault: put the previous disposition back and return.
  // The faulting instruction re-executes and the kernel re-delivers the
  // signal to the original handler. (sigaction is async-signal-safe.)
  sigaction(Sig, savedFor(Sig), nullptr);
}

void installHandlers() {
  struct sigaction SA;
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_sigaction = handleFault;
  SA.sa_flags = SA_SIGINFO | SA_ONSTACK;
  sigemptyset(&SA.sa_mask);
  for (int Sig : GuardedSigs)
    sigaction(Sig, &SA, savedFor(Sig));
  Installs.fetch_add(1, std::memory_order_relaxed);
}

void restoreHandlers() {
  for (int Sig : GuardedSigs)
    sigaction(Sig, savedFor(Sig), nullptr);
}

/// Ensures this thread has an alternate signal stack: a wild store can
/// corrupt or overrun the thread's own stack, and the handler must still
/// run. Installed once per thread, intentionally leaked at thread exit
/// (freeing it would race the kernel's view of the stack).
void ensureAltStack() {
  thread_local bool Installed = false;
  if (Installed)
    return;
  stack_t Cur;
  if (sigaltstack(nullptr, &Cur) == 0 && !(Cur.ss_flags & SS_DISABLE) &&
      Cur.ss_size > 0) {
    Installed = true; // someone (e.g. ASan) already provided one
    return;
  }
  const size_t Size = SIGSTKSZ * 4;
  void *Mem = std::malloc(Size);
  if (!Mem)
    return; // degrade: handler runs on the normal stack
  stack_t SS;
  SS.ss_sp = Mem;
  SS.ss_size = Size;
  SS.ss_flags = 0;
  if (sigaltstack(&SS, nullptr) == 0)
    Installed = true;
  else
    std::free(Mem);
}

#endif // VPO_NATIVE_FAULT_POSIX

} // namespace

#ifdef VPO_NATIVE_FAULT_POSIX

NativeFaultScope::NativeFaultScope(const void *CodeBase, size_t CodeSize) {
  auto *C = new ScopeCtx();
  C->Base = reinterpret_cast<uintptr_t>(CodeBase);
  C->Size = CodeSize;
  C->Prev = TLActive;
  Ctx = C;
  ensureAltStack();
  {
    std::lock_guard<std::mutex> Lock(InstallMu);
    if (++InstallDepth == 1)
      installHandlers();
  }
  ActiveDepth.fetch_add(1, std::memory_order_relaxed);
  Installed = true;
  TLActive = C; // armed last: the handler must never see a half-built ctx
}

NativeFaultScope::~NativeFaultScope() {
  auto *C = static_cast<ScopeCtx *>(Ctx);
  TLActive = C->Prev;
  if (Installed) {
    ActiveDepth.fetch_sub(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> Lock(InstallMu);
    if (--InstallDepth == 0)
      restoreHandlers();
  }
  delete C;
}

sigjmp_buf &NativeFaultScope::jmp() {
  return static_cast<ScopeCtx *>(Ctx)->Jmp;
}

const NativeFaultInfo &NativeFaultScope::fault() const {
  return static_cast<ScopeCtx *>(Ctx)->Info;
}

uint64_t NativeFaultScope::installCount() {
  return Installs.load(std::memory_order_relaxed);
}

bool NativeFaultScope::handlersActive() {
  return ActiveDepth.load(std::memory_order_relaxed) > 0;
}

#else // !VPO_NATIVE_FAULT_POSIX

// Non-POSIX stub: the JIT never runs here (nativeAvailability() refuses
// non-unix hosts), but the symbols must link.
NativeFaultScope::NativeFaultScope(const void *, size_t) : Ctx(nullptr) {}
NativeFaultScope::~NativeFaultScope() = default;
static sigjmp_buf DummyJmp;
static NativeFaultInfo DummyInfo;
sigjmp_buf &NativeFaultScope::jmp() { return DummyJmp; }
const NativeFaultInfo &NativeFaultScope::fault() const { return DummyInfo; }
uint64_t NativeFaultScope::installCount() { return 0; }
bool NativeFaultScope::handlersActive() { return false; }

#endif
