//===- jit/CodeBuffer.h - W^X native code buffer ----------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An executable code arena with W^X discipline. One large region of
/// address space is *reserved* up front (PROT_NONE) and pages are
/// committed on demand as code is appended, so every emitted byte stays
/// within rel32 range of every other — block chaining patches 32-bit
/// relative jumps and never needs long thunks. The region is never
/// writable and executable at the same time: compilation windows flip the
/// committed prefix to RW (makeWritable), execution flips it to RX
/// (makeExecutable). Growth (committing further pages) is only legal
/// inside a writable window.
///
/// On platforms without mmap/PROT_EXEC support, create() returns null and
/// the JIT tier reports itself unavailable (jit/JIT.h probes this).
///
//===----------------------------------------------------------------------===//

#ifndef VPO_JIT_CODEBUFFER_H
#define VPO_JIT_CODEBUFFER_H

#include <cstddef>
#include <cstdint>
#include <memory>

namespace vpo {
namespace jit {

class CodeBuffer {
public:
  /// Reserves \p ReserveBytes of address space (rounded up to whole
  /// pages). \returns null if the platform cannot reserve or the JIT is
  /// compiled out. The new buffer starts in the writable state with zero
  /// committed pages.
  static std::unique_ptr<CodeBuffer> create(size_t ReserveBytes);

  ~CodeBuffer();
  CodeBuffer(const CodeBuffer &) = delete;
  CodeBuffer &operator=(const CodeBuffer &) = delete;

  const uint8_t *base() const { return Base; }
  size_t used() const { return Used; }
  size_t capacity() const { return Reserve; }
  size_t committed() const { return Committed; }
  bool writable() const { return Writable; }

  /// Appends \p N bytes, committing pages as needed. Requires a writable
  /// window. \returns false when the reservation is exhausted (the caller
  /// marks the block uncompilable and stays on the interpreter), true with
  /// \p OffOut = the offset of the first appended byte otherwise.
  bool append(const void *Data, size_t N, size_t &OffOut);

  /// Rewrites 4 bytes at \p Off (jump-site patching). Requires writable.
  void patch32(size_t Off, int32_t V);

  /// Flips the committed prefix RW / RX. No-ops when already in that
  /// state. \returns false if mprotect failed (the buffer is then unusable
  /// for execution and run attempts must bail).
  bool makeWritable();
  bool makeExecutable();

private:
  CodeBuffer(uint8_t *Base, size_t Reserve, size_t Page)
      : Base(Base), Reserve(Reserve), Page(Page) {}

  uint8_t *Base = nullptr;
  size_t Reserve = 0;
  size_t Page = 4096;
  size_t Used = 0;
  size_t Committed = 0;
  bool Writable = true;
};

} // namespace jit
} // namespace vpo

#endif // VPO_JIT_CODEBUFFER_H
