//===- jit/JIT.cpp - Copy-and-patch block compiler ------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
//
// Code generation contract (shared with the emitted code — keep in sync
// with the register conventions documented in Emitter.h):
//
//   r15 = value-pool base        (ExecState::Vals)
//   r14 = simulated-memory base  (ExecState::MemData)
//   rbx = memory size            (ExecState::MemSize)
//   r13 = remaining step budget  (ExecState::StepsRemaining)
//   r12 = &ExecState             (counter/exit writebacks are r12-relative)
//   rax, rcx, rdx, rsi, rdi, xmm0 are scratch.
//
// Each compiled block:
//   1. guards the budget: `cmp r13, L; jb budget-stub; sub r13, L` — a
//      block never starts unless every one of its L ops fits the budget,
//      so MaxSteps can only be hit at a block boundary and the interpreter
//      re-executes the block per-op to fault at the reference point;
//   2. runs its straight-line ops with checks (alignment, bounds, divide,
//      field range) inline, each failing check jumping to a per-site trap
//      stub that rewinds the budget to "prefix + faulting op" and adds the
//      prefix's memory counters before exiting;
//   3. batches its memory/branch counter increments at the terminator
//      (adds are emitted *before* the branch condition's cmp — they
//      clobber flags) and leaves through rel32 jumps: directly to compiled
//      successor blocks, or through a per-target cold stub (deopt) that is
//      patched to a direct jump the moment the target compiles.
//
// Bounds checks compare against [4096, MemSize - WBytes] to mirror
// Memory::inBounds; `MemSize - WBytes` only stays in range because the
// driver refuses native entry for arenas smaller than 4096 + 8 bytes.
//
//===----------------------------------------------------------------------===//

#include "jit/JIT.h"

#include "jit/CodeBuffer.h"
#include "jit/Emitter.h"
#include "jit/NativeFault.h"

#include <algorithm>
#include <csetjmp>
#include <cstddef>
#include <cstdlib>
#include <cstring>

using namespace vpo;
using namespace vpo::jit;

static_assert(offsetof(ExecState, Vals) == 0, "ABI");
static_assert(offsetof(ExecState, MemData) == 8, "ABI");
static_assert(offsetof(ExecState, MemSize) == 16, "ABI");
static_assert(offsetof(ExecState, StepsRemaining) == 24, "ABI");
static_assert(offsetof(ExecState, Loads) == 32, "ABI");
static_assert(offsetof(ExecState, Stores) == 40, "ABI");
static_assert(offsetof(ExecState, LoadBytes) == 48, "ABI");
static_assert(offsetof(ExecState, StoreBytes) == 56, "ABI");
static_assert(offsetof(ExecState, Branches) == 64, "ABI");
static_assert(offsetof(ExecState, ReturnValue) == 72, "ABI");
static_assert(offsetof(ExecState, Exit) == 80, "ABI");
static_assert(offsetof(ExecState, ResumeBlock) == 88, "ABI");
static_assert(offsetof(ExecState, Trap) == 96, "ABI");
static_assert(offsetof(ExecState, TrapOp) == 104, "ABI");
static_assert(offsetof(ExecState, TrapAddr) == 112, "ABI");
static_assert(offsetof(ExecState, Deopt) == 120, "ABI");

namespace {

// ExecState field displacements, for r12-relative addressing.
enum StateOff : int32_t {
  OffLoads = 32,
  OffStores = 40,
  OffLoadBytes = 48,
  OffStoreBytes = 56,
  OffBranches = 64,
  OffReturnValue = 72,
  OffExit = 80,
  OffResumeBlock = 88,
  OffTrap = 96,
  OffTrapOp = 104,
  OffTrapAddr = 112,
  OffDeopt = 120,
};

// grp1 /ext values for aluImm / aluMemImm.
constexpr uint8_t ALU_ADD = 0, ALU_AND = 4, ALU_SUB = 5, ALU_CMP = 7;
// opcode bytes for aluRM / aluRR.
constexpr uint8_t OP_ADD = 0x03, OP_SUB = 0x2B, OP_AND = 0x23, OP_OR = 0x0B,
                  OP_XOR = 0x33, OP_CMP = 0x3B;

uint8_t condNibble(CondCode CC) {
  switch (CC) {
  case CondCode::EQ:
    return CC_E;
  case CondCode::NE:
    return CC_NE;
  case CondCode::LTs:
    return CC_L;
  case CondCode::LEs:
    return CC_LE;
  case CondCode::GTs:
    return CC_G;
  case CondCode::GEs:
    return CC_GE;
  case CondCode::LTu:
    return CC_B;
  case CondCode::LEu:
    return CC_BE;
  case CondCode::GTu:
    return CC_A;
  case CondCode::GEu:
    return CC_AE;
  }
  return CC_E;
}

/// A pending rel32 in a block's local emitter buffer that targets
/// something outside it (the shared epilogue or another block's entry).
struct Reloc {
  enum Kind { Epilogue, Block } K;
  size_t Site;     ///< rel32 offset within the local emitter buffer
  uint32_t Target; ///< block index when K == Block
};

/// One inline check's jump to its (not yet emitted) trap stub, plus
/// everything the stub needs to reconstruct exact counters.
struct TrapFixup {
  size_t Site; ///< jcc rel32 offset in the local buffer
  TrapKind Kind;
  uint32_t OpIdx; ///< global (DF.Ops) index of the faulting op
  bool HasAddr;   ///< rdi holds the faulting address at the jump
  // Memory-counter deltas of the ops *before* the faulting one (the
  // faulting op's own reference/bytes never commit), and the budget to
  // hand back so r13 reflects "prefix + faulting op" executed.
  int32_t PrefLoads, PrefStores, PrefLoadBytes, PrefStoreBytes;
  int32_t BudgetRefund;
};

} // namespace

//===----------------------------------------------------------------------===//
// Capability probe
//===----------------------------------------------------------------------===//

static Availability probeNative() {
  Availability A;
#if !(defined(__x86_64__) && (defined(__unix__) || defined(__APPLE__)))
  A.Reason = "arch";
  return A;
#else
  if (const char *Env = std::getenv("VPO_NO_JIT")) {
    if (Env[0] != '\0' && !(Env[0] == '0' && Env[1] == '\0')) {
      A.Reason = "env-vpo-no-jit";
      return A;
    }
  }
  // End-to-end smoke: map a page, emit `mov eax, 42; ret`, flip to RX and
  // call it. Catches mmap-less sandboxes, W^X-hostile kernels and
  // PROT_EXEC-denying mounts in one shot.
  std::unique_ptr<CodeBuffer> Buf = CodeBuffer::create(4096);
  if (!Buf) {
    A.Reason = "mmap-failed";
    return A;
  }
  static const uint8_t Probe[] = {0xB8, 0x2A, 0x00, 0x00, 0x00, 0xC3};
  size_t Off = 0;
  if (!Buf->append(Probe, sizeof(Probe), Off) || !Buf->makeExecutable()) {
    A.Reason = "mmap-noexec";
    return A;
  }
  auto Fn = reinterpret_cast<int (*)()>(
      reinterpret_cast<uintptr_t>(Buf->base() + Off));
  if (Fn() != 42) {
    A.Reason = "probe-misexec";
    return A;
  }
  A.Ok = true;
  A.Reason = "";
  return A;
#endif
}

const Availability &vpo::jit::nativeAvailability() {
  static const Availability A = probeNative();
  return A;
}

//===----------------------------------------------------------------------===//
// JITProgram
//===----------------------------------------------------------------------===//

JITProgram::JITProgram(const DecodedFunction &DF,
                       std::unique_ptr<CodeBuffer> Buf)
    : DF(DF), Buf(std::move(Buf)), Blocks(DF.BlockStart.size()),
      Pending(DF.BlockStart.size()),
      ColdStubs(DF.BlockStart.size(), kNoOffset) {}

JITProgram::~JITProgram() = default;

size_t JITProgram::codeBytes() const { return Buf->used(); }
size_t JITProgram::codeCapacity() const { return Buf->capacity(); }

std::shared_ptr<JITProgram> JITProgram::create(const DecodedFunction &DF,
                                               size_t MaxCodeBytes,
                                               uint32_t PlantWildStore) {
  if (!nativeAvailability().Ok)
    return nullptr;
  if (DF.Ops.empty() || DF.BlockStart.empty())
    return nullptr;
  // Value-pool slots address as [r15 + slot*8] with an int32 displacement,
  // and op indices / block lengths are emitted as imm32.
  if (DF.poolSize() >= (size_t(1) << 28) ||
      DF.Ops.size() >= (size_t(1) << 31))
    return nullptr;
  std::unique_ptr<CodeBuffer> Buf = CodeBuffer::create(MaxCodeBytes);
  if (!Buf)
    return nullptr;
  std::shared_ptr<JITProgram> P(new JITProgram(DF, std::move(Buf)));
  P->PlantWildStoreOnCompile = PlantWildStore;
  if (!P->emitProlog())
    return nullptr;
  return P;
}

bool JITProgram::emitProlog() {
  // Trampoline: `uint64_t run(ExecState *S /*rdi*/, const void *Entry
  // /*rsi*/)` — spill callee-saved registers, load the execution context
  // and jump into block code.
  Emitter E;
  E.push(RBX);
  E.push(RBP);
  E.push(R12);
  E.push(R13);
  E.push(R14);
  E.push(R15);
  E.movRR(R12, RDI);
  E.movRM(R15, R12, 0);  // Vals
  E.movRM(R14, R12, 8);  // MemData
  E.movRM(RBX, R12, 16); // MemSize
  E.movRM(R13, R12, 24); // StepsRemaining
  E.jmpR(RSI);
  if (!Buf->append(E.data(), E.size(), TrampOff))
    return false;

  // Shared epilogue: every exit path (ret / deopt / trap stubs) jumps
  // here after filling in its ExecState exit fields.
  Emitter Ep;
  Ep.movMR(R12, 24, R13); // write back the remaining budget
  Ep.pop(R15);
  Ep.pop(R14);
  Ep.pop(R13);
  Ep.pop(R12);
  Ep.pop(RBP);
  Ep.pop(RBX);
  Ep.ret();
  if (!Buf->append(Ep.data(), Ep.size(), EpilogueOff))
    return false;
  Stats.BytesEmitted += E.size() + Ep.size();
  return true;
}

size_t JITProgram::coldStub(uint32_t Target) {
  if (ColdStubs[Target] != kNoOffset)
    return ColdStubs[Target];
  Emitter E;
  E.movMemImm32(R12, OffResumeBlock, static_cast<int32_t>(Target));
  E.movMemImm32(R12, OffDeopt,
                static_cast<int32_t>(DeoptReason::ColdTarget));
  E.movMemImm32(R12, OffExit, static_cast<int32_t>(ExitKind::Deopt));
  size_t JmpSite = E.jmp32();
  size_t Off = 0;
  if (!Buf->append(E.data(), E.size(), Off))
    return kNoOffset;
  Buf->patch32(Off + JmpSite,
               static_cast<int32_t>(EpilogueOff - (Off + JmpSite + 4)));
  Stats.BytesEmitted += E.size();
  ColdStubs[Target] = Off;
  return Off;
}

bool JITProgram::compileBlock(uint32_t B) {
  if (B >= Blocks.size())
    return false;
  if (compiled(B))
    return true;
  if (Blocks[B].Failed)
    return false;
  auto Fail = [&]() {
    // A block can fail after its entry went live (cold-stub emission ran
    // out of buffer mid-relocation); pull the entry back so nothing ever
    // jumps into half-relocated code. Sites other blocks parked for us
    // stay on their cold stubs — Pending[B] is only drained on success.
    Blocks[B].EntryOff = kNoOffset;
    Blocks[B].Failed = true;
    Blocks[B].CodeStart = Blocks[B].CodeEnd = kNoOffset;
    Blocks[B].Sites.clear();
    ++Stats.CompileFailures;
    return false;
  };
  if (Broken || !Buf->makeWritable())
    return Fail();

  const uint32_t Start = DF.BlockStart[B];
  const uint32_t End = B + 1 < DF.BlockStart.size()
                           ? DF.BlockStart[B + 1]
                           : static_cast<uint32_t>(DF.Ops.size());
  if (End <= Start)
    return Fail();
  const int32_t Len = static_cast<int32_t>(End - Start);

  Emitter E;
  std::vector<Reloc> Relocs;
  std::vector<TrapFixup> Traps;

  // Running memory-counter totals for the ops emitted so far — the values
  // a trap stub must commit for its prefix, and the block totals batched
  // at the terminator.
  int64_t NLoads = 0, NStores = 0, NLoadBytes = 0, NStoreBytes = 0;

  auto Slot = [&](uint32_t S) { return static_cast<int32_t>(S) * 8; };
  auto addTrap = [&](size_t Site, TrapKind K, uint32_t OpIdx, bool HasAddr,
                     int32_t Refund) {
    Traps.push_back({Site, K, OpIdx, HasAddr, static_cast<int32_t>(NLoads),
                     static_cast<int32_t>(NStores),
                     static_cast<int32_t>(NLoadBytes),
                     static_cast<int32_t>(NStoreBytes), Refund});
  };
  // Batched counter adds clobber flags: terminators emit them before the
  // branch condition's cmp.
  auto addCounters = [&](int32_t ExtraBranches) {
    if (NLoads)
      E.aluMemImm(ALU_ADD, R12, OffLoads, static_cast<int32_t>(NLoads));
    if (NStores)
      E.aluMemImm(ALU_ADD, R12, OffStores, static_cast<int32_t>(NStores));
    if (NLoadBytes)
      E.aluMemImm(ALU_ADD, R12, OffLoadBytes,
                  static_cast<int32_t>(NLoadBytes));
    if (NStoreBytes)
      E.aluMemImm(ALU_ADD, R12, OffStoreBytes,
                  static_cast<int32_t>(NStoreBytes));
    if (ExtraBranches)
      E.aluMemImm(ALU_ADD, R12, OffBranches, ExtraBranches);
  };

  // Budget guard: refuse to start the block unless all Len ops fit, so the
  // step limit is only ever crossed at a block boundary.
  E.aluImm(ALU_CMP, R13, Len);
  size_t BudgetSite = E.jcc32(CC_B);
  E.aluImm(ALU_SUB, R13, Len);

  // Fault injector: corrupt this block (if it is the chosen compile
  // ordinal) with a store to a non-canonical address, placed before the
  // first op so the faulting op's prefix is empty and quarantine replay
  // re-executes the whole block on the interpreter.
  const bool PlantHere = PlantWildStoreOnCompile != 0 &&
                         Stats.BlocksCompiled + 1 == PlantWildStoreOnCompile;

  bool SawTerminator = false;
  for (uint32_t Idx = Start; Idx < End; ++Idx) {
    // The op-site table drives fault attribution: each entry marks where
    // an op's emitted sequence begins (still local offsets here; rebased
    // after append) and the memory-counter prefix committed before it.
    Blocks[B].Sites.push_back({E.size(), Idx, static_cast<int32_t>(NLoads),
                               static_cast<int32_t>(NStores),
                               static_cast<int32_t>(NLoadBytes),
                               static_cast<int32_t>(NStoreBytes)});
    if (Idx == Start && PlantHere) {
      E.movImm64(RAX, 0xdead'beef'dead'beefULL); // non-canonical: #GP/SIGSEGV
      E.movMR(RAX, 0, RAX);
    }
    const DecodedOp &D = DF.Ops[Idx];
    const bool IsLast = Idx + 1 == End;
    const int32_t Refund = Len - static_cast<int32_t>(Idx - Start) - 1;
    const int32_t VA = Slot(D.A), VB = Slot(D.B), VC = Slot(D.C),
                  VD = Slot(D.Dst);

    switch (D.Op) {
    case Opcode::Mov:
      E.movRM(RAX, R15, VA);
      E.movMR(R15, VD, RAX);
      break;
    case Opcode::Add:
      E.movRM(RAX, R15, VA);
      E.aluRM(OP_ADD, RAX, R15, VB);
      E.movMR(R15, VD, RAX);
      break;
    case Opcode::Sub:
      E.movRM(RAX, R15, VA);
      E.aluRM(OP_SUB, RAX, R15, VB);
      E.movMR(R15, VD, RAX);
      break;
    case Opcode::Mul:
      E.movRM(RAX, R15, VA);
      E.imulRM(RAX, R15, VB);
      E.movMR(R15, VD, RAX);
      break;
    case Opcode::And:
      E.movRM(RAX, R15, VA);
      E.aluRM(OP_AND, RAX, R15, VB);
      E.movMR(R15, VD, RAX);
      break;
    case Opcode::Or:
      E.movRM(RAX, R15, VA);
      E.aluRM(OP_OR, RAX, R15, VB);
      E.movMR(R15, VD, RAX);
      break;
    case Opcode::Xor:
      E.movRM(RAX, R15, VA);
      E.aluRM(OP_XOR, RAX, R15, VB);
      E.movMR(R15, VD, RAX);
      break;
    case Opcode::DivS:
    case Opcode::RemS:
    case Opcode::DivU:
    case Opcode::RemU: {
      const bool Signed = D.Op == Opcode::DivS || D.Op == Opcode::RemS;
      const bool IsRem = D.Op == Opcode::RemS || D.Op == Opcode::RemU;
      E.movRM(RCX, R15, VB);
      E.testRR(RCX, RCX);
      addTrap(E.jcc32(CC_E), TrapKind::DivideByZero, Idx, /*HasAddr=*/false,
              Refund);
      E.movRM(RAX, R15, VA);
      if (Signed)
        E.cqo();
      else
        E.xorR32(RDX, RDX);
      // INT64_MIN / -1 faults in idiv exactly as the interpreter's C++
      // division does — undefined behaviour stays undefined identically.
      E.divR(RCX, Signed);
      E.movMR(R15, VD, IsRem ? RDX : RAX);
      break;
    }
    case Opcode::Shl:
    case Opcode::ShrA:
    case Opcode::ShrL:
      E.movRM(RCX, R15, VB);
      E.movRM(RAX, R15, VA);
      // D3-group shifts mask the count to 63, matching `B & 63`.
      E.shiftCl(D.Op == Opcode::Shl ? 4 : (D.Op == Opcode::ShrL ? 5 : 7),
                RAX);
      E.movMR(R15, VD, RAX);
      break;
    case Opcode::CmpSet:
      E.movRM(RAX, R15, VA);
      E.aluRM(OP_CMP, RAX, R15, VB);
      E.setcc(condNibble(D.CC), RCX);
      E.movzxRR(RAX, RCX, 1);
      E.movMR(R15, VD, RAX);
      break;
    case Opcode::Select:
      E.movRM(RAX, R15, VB);
      E.movRM(RCX, R15, VC);
      E.movRM(RDX, R15, VA);
      E.testRR(RDX, RDX);
      E.cmovcc(CC_E, RAX, RCX); // A == 0 selects C
      E.movMR(R15, VD, RAX);
      break;
    case Opcode::Ext:
      if (D.WBytes == 8) {
        E.movRM(RAX, R15, VA);
      } else if (D.SignExtend) {
        E.movsxRM(RAX, R15, VA, D.WBytes);
      } else if (D.WBytes == 4) {
        E.movRM32(RAX, R15, VA);
      } else {
        E.movzxRM(RAX, R15, VA, D.WBytes);
      }
      E.movMR(R15, VD, RAX);
      break;
    case Opcode::FAdd:
    case Opcode::FSub:
    case Opcode::FMul:
    case Opcode::FDiv: {
      uint8_t Opc = D.Op == Opcode::FAdd   ? 0x58
                    : D.Op == Opcode::FMul ? 0x59
                    : D.Op == Opcode::FSub ? 0x5C
                                           : 0x5E;
      E.movsdRM(0, R15, VA);
      E.sseArithRM(Opc, 0, R15, VB);
      E.movsdMR(R15, VD, 0);
      break;
    }
    case Opcode::CvtIF:
      E.cvtsi2sdRM(0, R15, VA);
      E.movsdMR(R15, VD, 0);
      break;
    case Opcode::CvtFI:
      // cvttsd2si truncates toward zero; NaN and out-of-range produce the
      // 0x8000...0 sentinel, the same code the interpreter's
      // trunc-then-cast compiles to on this target.
      E.cvttsd2siRM(RAX, R15, VA);
      E.movMR(R15, VD, RAX);
      break;
    case Opcode::Load:
    case Opcode::LoadWideU:
    case Opcode::Store: {
      // rdi = Base + Disp. rdi must survive untouched into the trap stubs
      // (they record it as the faulting address).
      E.movRM(RDI, R15, Slot(D.Base));
      if (D.Disp != 0) {
        if (D.Disp >= INT32_MIN && D.Disp <= INT32_MAX) {
          E.aluImm(ALU_ADD, RDI, static_cast<int32_t>(D.Disp));
        } else {
          E.movImm64(RSI, static_cast<uint64_t>(D.Disp));
          E.aluRR(OP_ADD, RDI, RSI);
        }
      }
      if (D.Op == Opcode::LoadWideU) {
        // Loads the aligned block containing the address; never an
        // alignment trap.
        E.aluImm(ALU_AND, RDI, -static_cast<int32_t>(D.WBytes));
      } else if (D.CheckAlign && D.WBytes > 1) {
        E.test8Imm(RDI, static_cast<uint8_t>(D.WBytes - 1));
        addTrap(E.jcc32(CC_NE), TrapKind::Unaligned, Idx, /*HasAddr=*/true,
                Refund);
      }
      // Memory::inBounds — addr in [4096, MemSize - WBytes]. The driver
      // only enters native code when MemSize >= 4096 + 8, so the
      // subtraction cannot wrap.
      E.aluImm(ALU_CMP, RDI, 4096);
      addTrap(E.jcc32(CC_B), TrapKind::OutOfBounds, Idx, /*HasAddr=*/true,
              Refund);
      E.movRR(RSI, RBX);
      E.aluImm(ALU_SUB, RSI, D.WBytes);
      E.aluRR(OP_CMP, RDI, RSI);
      addTrap(E.jcc32(CC_A), TrapKind::OutOfBounds, Idx, /*HasAddr=*/true,
              Refund);
      if (D.Op == Opcode::Store) {
        if (D.IsFloat && D.W == MemWidth::W4) {
          // Register holds a double; the memory lane stores float bits.
          E.movsdRM(0, R15, VA);
          E.cvtsd2ss(0, 0);
          E.movdFromXmm(RAX, 0);
        } else {
          E.movRM(RAX, R15, VA);
        }
        E.storeIndex(R14, RDI, RAX, D.WBytes);
        ++NStores;
        NStoreBytes += D.WBytes;
        break;
      }
      if (D.Op == Opcode::Load && D.IsFloat && D.W == MemWidth::W4) {
        // The 32-bit lane holds float bits; registers hold doubles.
        // Wider float loads are raw bit copies and share the integer path.
        E.movssIndex(0, R14, RDI);
        E.cvtss2sd(0, 0);
        E.movsdMR(R15, VD, 0);
        ++NLoads;
        NLoadBytes += D.WBytes;
        break;
      }
      if (D.Op == Opcode::Load && D.SignExtend && D.WBytes < 8)
        E.loadIndexSext(RAX, R14, RDI, D.WBytes);
      else
        E.loadIndex(RAX, R14, RDI, D.WBytes);
      E.movMR(R15, VD, RAX);
      ++NLoads;
      NLoadBytes += D.WBytes;
      break;
    }
    case Opcode::ExtQHi:
      // Off = B & 7; Dst = Off == 0 ? 0 : A << (8 * (8 - Off)).
      // neg(8*Off) & 63 == 64 - 8*Off for Off > 0; the Off == 0 case
      // (shift count masks to 0) is patched with a cmov from zero.
      E.movRM(RCX, R15, VB);
      E.aluImm32(ALU_AND, RCX, 7);
      E.shlImm32(RCX, 3);
      E.negR32(RCX);
      E.movRM(RAX, R15, VA);
      E.shiftCl(4, RAX);
      E.xorR32(RDX, RDX);
      E.testRR32(RCX, RCX);
      E.cmovcc(CC_E, RAX, RDX);
      E.movMR(R15, VD, RAX);
      break;
    case Opcode::ExtractF: {
      E.movRM(RCX, R15, VB);
      E.aluImm32(ALU_AND, RCX, 7);
      if (D.W != MemWidth::W8) {
        E.aluImm32(ALU_CMP, RCX, static_cast<int8_t>(8 - D.WBytes));
        addTrap(E.jcc32(CC_A), TrapKind::ExtractField, Idx,
                /*HasAddr=*/false, Refund);
      }
      E.shlImm32(RCX, 3);
      E.movRM(RAX, R15, VA);
      E.shiftCl(5, RAX); // Field = A >> (8 * Off)
      if (D.IsFloat && D.W == MemWidth::W4) {
        E.movdToXmm(0, RAX); // low 32 bits are the float lane
        E.cvtss2sd(0, 0);
        E.movsdMR(R15, VD, 0);
        break;
      }
      if (D.WBytes < 8) {
        if (D.SignExtend)
          E.movsxRR(RAX, RAX, D.WBytes);
        else if (D.WBytes == 4)
          E.movRR32(RAX, RAX);
        else
          E.movzxRR(RAX, RAX, D.WBytes);
      }
      E.movMR(R15, VD, RAX);
      break;
    }
    case Opcode::InsertF: {
      const uint64_t FieldMask =
          D.WBits >= 64 ? ~uint64_t(0) : ((uint64_t(1) << D.WBits) - 1);
      E.movRM(RCX, R15, VB);
      E.aluImm32(ALU_AND, RCX, 7);
      E.aluImm32(ALU_CMP, RCX, static_cast<int8_t>(8 - D.WBytes));
      addTrap(E.jcc32(CC_A), TrapKind::InsertField, Idx, /*HasAddr=*/false,
              Refund);
      E.shlImm32(RCX, 3); // cl = 8 * Off
      E.movImm64(RDX, FieldMask);
      E.movRR(RSI, RDX);
      E.shiftCl(4, RSI); // FieldMask << (8 * Off)
      E.notR(RSI);
      if (D.IsFloat && D.W == MemWidth::W4) {
        // Value register holds a double; the lane stores float bits.
        E.movsdRM(0, R15, VC);
        E.cvtsd2ss(0, 0);
        E.movdFromXmm(RAX, 0);
      } else {
        E.movRM(RAX, R15, VC);
      }
      E.aluRR(OP_AND, RAX, RDX);
      E.shiftCl(4, RAX);
      E.movRM(RDI, R15, VA);
      E.aluRR(OP_AND, RDI, RSI);
      E.aluRR(OP_OR, RAX, RDI);
      E.movMR(R15, VD, RAX);
      break;
    }
    case Opcode::Br: {
      if (!IsLast)
        return Fail();
      SawTerminator = true;
      addCounters(/*ExtraBranches=*/1);
      E.movRM(RAX, R15, VA);
      E.aluRM(OP_CMP, RAX, R15, VB);
      Relocs.push_back({Reloc::Block, E.jcc32(condNibble(D.CC)),
                        DF.Ops[D.TrueIdx].BlockIdx});
      Relocs.push_back(
          {Reloc::Block, E.jmp32(), DF.Ops[D.FalseIdx].BlockIdx});
      break;
    }
    case Opcode::Jmp:
      if (!IsLast)
        return Fail();
      SawTerminator = true;
      addCounters(/*ExtraBranches=*/1);
      Relocs.push_back(
          {Reloc::Block, E.jmp32(), DF.Ops[D.TrueIdx].BlockIdx});
      break;
    case Opcode::Ret:
      if (!IsLast)
        return Fail();
      SawTerminator = true;
      addCounters(/*ExtraBranches=*/0);
      E.movRM(RAX, R15, VA);
      E.movMR(R12, OffReturnValue, RAX);
      E.movMemImm32(R12, OffExit, static_cast<int32_t>(ExitKind::Ret));
      Relocs.push_back({Reloc::Epilogue, E.jmp32(), 0});
      break;
    }
    // Per-block counter deltas are emitted as imm32 adds.
    if (NLoadBytes > INT32_MAX || NStoreBytes > INT32_MAX)
      return Fail();
  }
  if (!SawTerminator)
    return Fail();

  // Sentinel site marking the end of op code: everything after it (trap
  // and budget stubs) is exit plumbing where a hardware fault cannot be
  // attributed to an op — attributeFault() refuses it.
  Blocks[B].Sites.push_back({E.size(), UINT32_MAX, 0, 0, 0, 0});

  // Trap stubs: land each failed check here, commit the prefix counters,
  // refund the unexecuted suffix's budget and report the trap site.
  for (const TrapFixup &T : Traps) {
    E.bindLocal(T.Site, E.size());
    if (T.PrefLoads)
      E.aluMemImm(ALU_ADD, R12, OffLoads, T.PrefLoads);
    if (T.PrefStores)
      E.aluMemImm(ALU_ADD, R12, OffStores, T.PrefStores);
    if (T.PrefLoadBytes)
      E.aluMemImm(ALU_ADD, R12, OffLoadBytes, T.PrefLoadBytes);
    if (T.PrefStoreBytes)
      E.aluMemImm(ALU_ADD, R12, OffStoreBytes, T.PrefStoreBytes);
    if (T.BudgetRefund)
      E.aluImm(ALU_ADD, R13, T.BudgetRefund);
    E.movMemImm32(R12, OffTrap, static_cast<int32_t>(T.Kind));
    E.movMemImm32(R12, OffTrapOp, static_cast<int32_t>(T.OpIdx));
    if (T.HasAddr)
      E.movMR(R12, OffTrapAddr, RDI);
    E.movMemImm32(R12, OffExit, static_cast<int32_t>(ExitKind::Trap));
    Relocs.push_back({Reloc::Epilogue, E.jmp32(), 0});
  }

  // Budget stub: nothing has executed; deopt so the interpreter replays
  // the block per-op and hits the step limit (or an earlier trap) exactly
  // where the reference engine does.
  E.bindLocal(BudgetSite, E.size());
  E.movMemImm32(R12, OffResumeBlock, static_cast<int32_t>(B));
  E.movMemImm32(R12, OffDeopt, static_cast<int32_t>(DeoptReason::Budget));
  E.movMemImm32(R12, OffExit, static_cast<int32_t>(ExitKind::Deopt));
  Relocs.push_back({Reloc::Epilogue, E.jmp32(), 0});

  size_t BaseOff = 0;
  if (!Buf->append(E.data(), E.size(), BaseOff))
    return Fail();
  // Entry is live before relocation so this block's own branches (and any
  // block compiled by coldStub below) chain straight back to it.
  Blocks[B].EntryOff = BaseOff;
  Blocks[B].CodeStart = BaseOff;
  Blocks[B].CodeEnd = BaseOff + E.size();
  for (OpSite &S : Blocks[B].Sites)
    S.CodeOff += BaseOff; // rebase local offsets to buffer-absolute

  for (const Reloc &R : Relocs) {
    size_t Site = BaseOff + R.Site;
    size_t Target;
    if (R.K == Reloc::Epilogue) {
      Target = EpilogueOff;
    } else if (compiled(R.Target)) {
      Target = Blocks[R.Target].EntryOff;
      // Quarantine must be able to un-chain this direct jump later.
      Blocks[R.Target].ChainSites.push_back(Site);
    } else {
      Target = coldStub(R.Target);
      if (Target == kNoOffset)
        return Fail();
      Pending[R.Target].push_back(Site);
    }
    Buf->patch32(Site,
                 static_cast<int32_t>(static_cast<int64_t>(Target) -
                                      static_cast<int64_t>(Site + 4)));
  }

  // Chain every site that was waiting on this block, and remember each
  // one — quarantine re-points them at the deopt stub.
  for (size_t Site : Pending[B]) {
    Buf->patch32(Site,
                 static_cast<int32_t>(static_cast<int64_t>(BaseOff) -
                                      static_cast<int64_t>(Site + 4)));
    Blocks[B].ChainSites.push_back(Site);
  }
  Pending[B].clear();

  ++Stats.BlocksCompiled;
  Stats.BytesEmitted += E.size();
  return true;
}

bool JITProgram::attributeFault(uint64_t PcOff, uint32_t &B,
                                const OpSite *&Site) const {
  for (uint32_t I = 0; I < Blocks.size(); ++I) {
    const BlockInfo &BI = Blocks[I];
    if (BI.CodeStart == kNoOffset || PcOff < BI.CodeStart ||
        PcOff >= BI.CodeEnd)
      continue;
    // Last site whose code starts at or before the pc. A pc before the
    // first site is the block's budget guard; a pc at or past the
    // sentinel is a trap/budget stub — neither is an op.
    auto It = std::upper_bound(
        BI.Sites.begin(), BI.Sites.end(), PcOff,
        [](uint64_t P, const OpSite &S) { return P < S.CodeOff; });
    if (It == BI.Sites.begin())
      return false;
    --It;
    if (It->OpIdx == UINT32_MAX)
      return false;
    B = I;
    Site = &*It;
    return true;
  }
  return false;
}

void JITProgram::quarantineBlock(uint32_t B) {
  BlockInfo &BI = Blocks[B];
  if (BI.Quarantined)
    return;
  // Permanent deopt: every jump that chained to this block goes back to
  // the per-target deopt stub, the entry is cleared so the driver
  // interprets it, and Failed pins it out of future promotion.
  if (!Buf->makeWritable()) {
    Broken = true;
  } else {
    size_t Stub = coldStub(B);
    if (Stub == kNoOffset) {
      Broken = true;
    } else {
      for (size_t Site : BI.ChainSites)
        Buf->patch32(Site,
                     static_cast<int32_t>(static_cast<int64_t>(Stub) -
                                          static_cast<int64_t>(Site + 4)));
    }
  }
  BI.EntryOff = kNoOffset;
  BI.Failed = true;
  BI.Quarantined = true;
  BI.CodeStart = BI.CodeEnd = kNoOffset;
  BI.ChainSites.clear();
  ++Stats.BlocksQuarantined;
}

ExitKind JITProgram::run(uint32_t B, ExecState &S) {
  if (Broken || !Buf->makeExecutable()) {
    // Can't flip to RX: poison the program so the driver stops trying
    // native entry, and report a deopt at the entry block.
    Broken = true;
    S.Exit = static_cast<uint64_t>(ExitKind::Deopt);
    S.Deopt = static_cast<uint64_t>(DeoptReason::ColdTarget);
    S.ResumeBlock = B;
    return ExitKind::Deopt;
  }
  using EntryFn = uint64_t (*)(ExecState *, const void *);
  auto Fn = reinterpret_cast<EntryFn>(
      reinterpret_cast<uintptr_t>(Buf->base() + TrampOff));

  // Hardware-fault containment: handlers live only across the native
  // call. A SIGSEGV/SIGBUS/SIGFPE inside the code buffer longjmps back
  // here instead of killing the process.
  NativeFaultScope Scope(Buf->base(), Buf->used());
  if (sigsetjmp(Scope.jmp(), 1) != 0) {
    const NativeFaultInfo &FI = Scope.fault();
    ++Stats.NativeFaults;
    LastFault = NativeFaultRecord();
    LastFault.Sig = FI.Sig;
    LastFault.PcOff = FI.PcOff;
    uint32_t FB = 0;
    const OpSite *Site = nullptr;
    if (FI.PcInCode && FI.HaveRegs && attributeFault(FI.PcOff, FB, Site)) {
      // The faulting op's emitted sequence began but none of its effects
      // are observable through ExecState: value-pool/memory writes are
      // each op's last emission, and counter adds batch at terminators.
      // So the architectural state *is* "every op before Site->OpIdx in
      // this block committed" — rebuild the budget from the live r13 the
      // handler captured (entry guard pre-subtracted the whole block)
      // plus the unexecuted suffix, add the compile-time counter prefix,
      // quarantine, and let the interpreter resume at the faulting op.
      const uint32_t BStart = DF.BlockStart[FB];
      const uint32_t BEnd = FB + 1 < DF.BlockStart.size()
                                ? DF.BlockStart[FB + 1]
                                : static_cast<uint32_t>(DF.Ops.size());
      const uint64_t Executed = Site->OpIdx - BStart;
      S.StepsRemaining = FI.R13 + (uint64_t(BEnd - BStart) - Executed);
      S.Loads += static_cast<uint64_t>(Site->PrefLoads);
      S.Stores += static_cast<uint64_t>(Site->PrefStores);
      S.LoadBytes += static_cast<uint64_t>(Site->PrefLoadBytes);
      S.StoreBytes += static_cast<uint64_t>(Site->PrefStoreBytes);
      quarantineBlock(FB);
      LastFault.Block = FB;
      LastFault.ResumeOp = Site->OpIdx;
      LastFault.Attributed = true;
    } else {
      // Stub, trampoline or wild pc: nothing is known about what
      // committed. The program is unusable and the run unrecoverable.
      Broken = true;
      LastFault.Attributed = false;
    }
    S.Exit = static_cast<uint64_t>(ExitKind::NativeFault);
    return ExitKind::NativeFault;
  }
  Fn(&S, Buf->base() + Blocks[B].EntryOff);
  return static_cast<ExitKind>(S.Exit);
}
