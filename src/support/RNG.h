//===- support/RNG.h - Deterministic pseudo-random generator ---*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, deterministic xorshift128+ generator. Workload data (synthetic
/// 500x500 images, eqntott bit vectors, ...) must be reproducible across
/// runs and platforms, so we do not use std::mt19937 whose distributions
/// are implementation-defined.
///
//===----------------------------------------------------------------------===//

#ifndef VPO_SUPPORT_RNG_H
#define VPO_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace vpo {

/// Deterministic xorshift128+ PRNG.
class RNG {
public:
  explicit RNG(uint64_t Seed) {
    // SplitMix64 seeding so nearby seeds give unrelated streams.
    auto Next = [&Seed]() {
      Seed += 0x9e3779b97f4a7c15ULL;
      uint64_t Z = Seed;
      Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
      return Z ^ (Z >> 31);
    };
    S0 = Next();
    S1 = Next();
    if (S0 == 0 && S1 == 0)
      S1 = 1;
  }

  /// \returns the next 64-bit pseudo-random value.
  uint64_t next() {
    uint64_t X = S0;
    const uint64_t Y = S1;
    S0 = Y;
    X ^= X << 23;
    S1 = X ^ Y ^ (X >> 17) ^ (Y >> 26);
    return S1 + Y;
  }

  /// \returns a value uniformly distributed in [0, Bound).
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound != 0 && "bound must be positive");
    return next() % Bound;
  }

  /// \returns a value uniformly distributed in [Lo, Hi] (inclusive).
  int64_t nextInRange(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "empty range");
    return Lo + static_cast<int64_t>(
                    nextBelow(static_cast<uint64_t>(Hi - Lo) + 1));
  }

private:
  uint64_t S0, S1;
};

} // namespace vpo

#endif // VPO_SUPPORT_RNG_H
