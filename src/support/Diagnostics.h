//===- support/Diagnostics.h - Recoverable error plumbing -------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structured, recoverable diagnostics — the compile-time analogue of the
/// paper's run-time dispatch. Where the coalescer defers unprovable facts
/// to a run-time check that falls back to the safe loop, the library
/// defers unexpected pass failures to a Status/Diagnostic that falls back
/// to the unoptimized pipeline. fatalError (support/Error.h) remains only
/// for true programmer invariants; anything reachable from user input —
/// a malformed kernel, a pass that produced bad IR, a simulated access
/// out of bounds — must surface as a Diagnostic, a Status, or a trap in
/// RunResult, never as an abort.
///
//===----------------------------------------------------------------------===//

#ifndef VPO_SUPPORT_DIAGNOSTICS_H
#define VPO_SUPPORT_DIAGNOSTICS_H

#include "support/Error.h"

#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace vpo {

/// Coarse classification of what went wrong, for dispatching on recovery
/// policy without parsing messages.
enum class ErrorCode : uint8_t {
  Ok,
  /// The IR failed structural verification.
  InvalidIR,
  /// A pass reported failure (and rolled back / was skipped).
  PassFailed,
  /// Input text could not be parsed.
  ParseError,
  /// The request is valid but unsupported on this target/configuration.
  Unsupported,
  /// A resource limit (memory arena, step budget, IR growth budget) was
  /// exhausted.
  ResourceExhausted,
  /// A wall-clock deadline expired before the work finished (the service
  /// killed a worker that was still compiling).
  DeadlineExceeded,
  /// The request was shed before any work started: the service's bounded
  /// queue was full. Retry later; nothing was partially done.
  Overloaded,
  /// A simulated run trapped (out of bounds, misalignment, divide by 0).
  Trap,
  /// Invariant violation reported without aborting (should not happen).
  Internal,
};

/// \returns a stable lowercase name ("invalid-ir", "pass-failed", ...).
const char *errorCodeName(ErrorCode Code);

/// Inverse of errorCodeName. \returns the code for \p Name, or nullopt —
/// the service protocol ships codes by name, so clients parse them back.
std::optional<ErrorCode> errorCodeFromName(const std::string &Name);

/// One structured failure record: what failed, where, and why.
struct Diagnostic {
  ErrorCode Code = ErrorCode::Internal;
  /// The pipeline pass (or subsystem) that produced the diagnostic.
  std::string Pass;
  /// The function being compiled/run when it was produced.
  std::string Function;
  /// Human-readable explanation.
  std::string Message;

  Diagnostic() = default;
  Diagnostic(ErrorCode Code, std::string Pass, std::string Function,
             std::string Message)
      : Code(Code), Pass(std::move(Pass)), Function(std::move(Function)),
        Message(std::move(Message)) {}

  /// "[invalid-ir] coalesce @dotproduct: <message>"
  std::string render() const;
};

/// Success-or-diagnostic result of an operation. Deliberately tiny: the
/// library does not use exceptions (LLVM convention), so fallible entry
/// points return Status / StatusOr instead.
class Status {
public:
  Status() = default;

  static Status ok() { return Status(); }
  static Status error(Diagnostic D) {
    Status S;
    S.Diag = std::move(D);
    return S;
  }
  static Status error(ErrorCode Code, std::string Pass, std::string Function,
                      std::string Message) {
    return error(Diagnostic(Code, std::move(Pass), std::move(Function),
                            std::move(Message)));
  }

  bool isOk() const { return !Diag.has_value(); }
  explicit operator bool() const { return isOk(); }

  ErrorCode code() const { return Diag ? Diag->Code : ErrorCode::Ok; }

  /// Only valid when !isOk().
  const Diagnostic &diagnostic() const {
    if (!Diag)
      fatalError("Status::diagnostic() on an OK status");
    return *Diag;
  }

  std::string message() const { return Diag ? Diag->render() : "ok"; }

private:
  std::optional<Diagnostic> Diag;
};

/// A value or the diagnostic explaining why there is none.
template <typename T> class StatusOr {
public:
  /*implicit*/ StatusOr(T Value) : Val(std::move(Value)) {}
  /*implicit*/ StatusOr(Status S) : Stat(std::move(S)) {
    if (Stat.isOk())
      fatalError("StatusOr constructed from an OK status without a value");
  }
  /*implicit*/ StatusOr(Diagnostic D) : Stat(Status::error(std::move(D))) {}

  bool isOk() const { return Val.has_value(); }
  explicit operator bool() const { return isOk(); }

  const Status &status() const { return Stat; }
  const Diagnostic &diagnostic() const { return Stat.diagnostic(); }

  T &value() {
    if (!Val)
      fatalError("StatusOr::value() on an error: " + Stat.message());
    return *Val;
  }
  const T &value() const {
    return const_cast<StatusOr *>(this)->value();
  }
  T &operator*() { return value(); }
  const T &operator*() const { return value(); }
  T *operator->() { return &value(); }
  const T *operator->() const { return &value(); }

private:
  std::optional<T> Val;
  Status Stat; // OK when Val is present
};

/// Renders a diagnostic list one-per-line (for test failure messages and
/// report dumps).
std::string renderDiagnostics(const std::vector<Diagnostic> &Diags);

} // namespace vpo

#endif // VPO_SUPPORT_DIAGNOSTICS_H
