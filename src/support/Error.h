//===- support/Error.h - Fatal error and unreachable helpers ---*- C++ -*-===//
//
// Part of the vpo-mac project: a reproduction of "Memory Access Coalescing"
// (Davidson & Jinturkar, PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Programmatic-error helpers used across the library. The library follows
/// the LLVM convention of not using exceptions: invariant violations abort
/// via fatalError/vpoUnreachable with a diagnostic message.
///
/// Convention (see support/Diagnostics.h): fatalError is reserved for true
/// programmer invariants — states the library's own code must never reach,
/// regardless of input. Anything reachable from *user input* (a malformed
/// kernel, a pass that produced bad IR, an out-of-bounds simulated access)
/// must be reported recoverably instead: as a vpo::Status / vpo::Diagnostic
/// from fallible entry points, as diagnostics in CompileReport from the
/// guarded pipeline, or as a trap status in sim::RunResult. If you are
/// about to call fatalError on a condition an adversarial kernel could
/// trigger, return a Diagnostic instead.
///
//===----------------------------------------------------------------------===//

#ifndef VPO_SUPPORT_ERROR_H
#define VPO_SUPPORT_ERROR_H

#include <string_view>

namespace vpo {

/// Prints \p Msg to stderr and aborts. Used for invariant violations that
/// cannot be recovered from (never for bad user input in library code).
[[noreturn]] void fatalError(std::string_view Msg);

/// Marks a point in control flow that must be unreachable if the program
/// invariants hold. Prints the message, file, and line, then aborts.
[[noreturn]] void vpoUnreachableImpl(const char *Msg, const char *File,
                                     unsigned Line);

} // namespace vpo

#define vpo_unreachable(MSG) ::vpo::vpoUnreachableImpl(MSG, __FILE__, __LINE__)

#endif // VPO_SUPPORT_ERROR_H
