//===- support/Posix.cpp - EINTR-safe syscall wrappers ----------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "support/Posix.h"

#if defined(__unix__) || defined(__APPLE__)
#define VPO_HAS_POSIX 1
#include <cerrno>
#include <csignal>
#include <ctime>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>
#else
#define VPO_HAS_POSIX 0
#endif

using namespace vpo;

bool posix::hasFork() { return VPO_HAS_POSIX != 0; }

#if VPO_HAS_POSIX

long posix::readRetry(int Fd, void *Buf, size_t N) {
  while (true) {
    ssize_t Got = read(Fd, Buf, N);
    if (Got < 0 && errno == EINTR)
      continue;
    return static_cast<long>(Got);
  }
}

bool posix::writeFull(int Fd, const void *Buf, size_t N) {
  const char *P = static_cast<const char *>(Buf);
  size_t Off = 0;
  while (Off < N) {
    ssize_t W = write(Fd, P + Off, N - Off);
    if (W < 0 && errno == EINTR)
      continue;
    if (W <= 0)
      return false;
    Off += static_cast<size_t>(W);
  }
  return true;
}

bool posix::writeFull(int Fd, const std::string &S) {
  return writeFull(Fd, S.data(), S.size());
}

void posix::ignoreSigpipe() { signal(SIGPIPE, SIG_IGN); }

int posix::reapChild(long Pid, unsigned GraceMs) {
  if (Pid <= 0)
    return -1;
  pid_t P = static_cast<pid_t>(Pid);
  int St = 0;
  // Poll for a voluntary exit through the grace period.
  for (unsigned Waited = 0;; Waited += 2) {
    pid_t R = waitpid(P, &St, WNOHANG);
    if (R == P)
      return St;
    if (R < 0 && errno != EINTR)
      return -1; // not our child (or already reaped)
    if (Waited >= GraceMs)
      break;
    timespec TS{0, 2 * 1000 * 1000};
    nanosleep(&TS, nullptr);
  }
  // Out of patience: kill, then wait for real (EINTR-retried).
  kill(P, SIGKILL);
  while (waitpid(P, &St, 0) < 0) {
    if (errno != EINTR)
      return -1;
  }
  return St;
}

bool posix::limitAddressSpace(size_t MaxBytes) {
  if (MaxBytes == 0)
    return false;
#if defined(__SANITIZE_ADDRESS__)
  return false;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
  return false;
#endif
#endif
  rlimit RL;
  RL.rlim_cur = MaxBytes;
  RL.rlim_max = MaxBytes;
  return setrlimit(RLIMIT_AS, &RL) == 0;
}

#else

long posix::readRetry(int, void *, size_t) { return -1; }
bool posix::writeFull(int, const void *, size_t) { return false; }
bool posix::writeFull(int, const std::string &) { return false; }
void posix::ignoreSigpipe() {}
int posix::reapChild(long, unsigned) { return -1; }
bool posix::limitAddressSpace(size_t) { return false; }

#endif
