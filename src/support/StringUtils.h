//===- support/StringUtils.h - printf-style std::string helpers -*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal string formatting helpers used by the IR printer, statistics
/// reporting, and the benchmark table writers.
///
//===----------------------------------------------------------------------===//

#ifndef VPO_SUPPORT_STRINGUTILS_H
#define VPO_SUPPORT_STRINGUTILS_H

#include <string>
#include <vector>

namespace vpo {

/// printf into a std::string.
std::string strformat(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Splits \p S on any character in \p Seps, dropping empty pieces.
std::vector<std::string> splitString(const std::string &S,
                                     const std::string &Seps);

/// \returns \p S with leading/trailing whitespace removed.
std::string trimString(const std::string &S);

/// \returns true if \p S starts with \p Prefix.
bool startsWith(const std::string &S, const std::string &Prefix);

} // namespace vpo

#endif // VPO_SUPPORT_STRINGUTILS_H
