//===- support/Remark.cpp -------------------------------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "support/Remark.h"

using namespace vpo;

RemarkSink::~RemarkSink() = default;

void vpo::appendJsonString(std::string &Out, const std::string &S) {
  Out += '"';
  for (char Ch : S) {
    switch (Ch) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(Ch) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", Ch);
        Out += Buf;
      } else {
        Out += Ch;
      }
    }
  }
  Out += '"';
}

std::string Remark::render() const {
  std::string S = Pass;
  S += " @";
  S += Fn;
  if (!Block.empty()) {
    S += " [";
    S += Block;
    S += ']';
  }
  S += ' ';
  S += Reason;
  for (const auto &[K, V] : Args) {
    S += ' ';
    S += K;
    S += '=';
    S += V;
  }
  return S;
}

std::string Remark::toJson() const {
  std::string J = "{\"pass\":";
  appendJsonString(J, Pass);
  J += ",\"function\":";
  appendJsonString(J, Fn);
  J += ",\"block\":";
  appendJsonString(J, Block);
  J += ",\"reason\":";
  appendJsonString(J, Reason);
  J += ",\"args\":{";
  for (size_t I = 0; I < Args.size(); ++I) {
    if (I)
      J += ',';
    appendJsonString(J, Args[I].first);
    J += ':';
    appendJsonString(J, Args[I].second);
  }
  J += "}}";
  return J;
}

unsigned CollectingRemarkSink::count(const char *Reason) const {
  unsigned N = 0;
  for (const Remark &R : Remarks)
    N += std::string(R.Reason) == Reason;
  return N;
}

std::string CollectingRemarkSink::renderAll() const {
  std::string S;
  for (const Remark &R : Remarks) {
    S += R.render();
    S += '\n';
  }
  return S;
}

std::string CollectingRemarkSink::toJsonLines() const {
  std::string S;
  for (const Remark &R : Remarks) {
    S += R.toJson();
    S += '\n';
  }
  return S;
}

void StreamingRemarkSink::emit(const Remark &R) {
  if (!Out)
    return;
  std::string J = R.toJson();
  J += '\n';
  std::fwrite(J.data(), 1, J.size(), Out);
}
