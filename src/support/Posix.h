//===- support/Posix.h - EINTR-safe syscall wrappers ------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The small set of POSIX patterns every long-lived process in this repo
/// must get right and that are easy to get subtly wrong at each call
/// site: retrying interrupted syscalls (a SIGCHLD from a dying worker
/// lands in the middle of every read), ignoring SIGPIPE process-wide (a
/// client that disconnects mid-response must cost one EPIPE, not the
/// daemon), and reaping children without leaking zombies even when the
/// child has to be killed first.
///
/// Shared by the fuzzing watchdog (fuzz/Watchdog.h) and the service
/// worker pool (service/Daemon.h); both fork untrusted work and talk to
/// it over pipes, so they share these failure modes. On non-POSIX
/// platforms every function degrades to a safe no-op / error return.
///
//===----------------------------------------------------------------------===//

#ifndef VPO_SUPPORT_POSIX_H
#define VPO_SUPPORT_POSIX_H

#include <cstddef>
#include <string>

namespace vpo {
namespace posix {

/// True when fork/pipe/waitpid exist on this platform.
bool hasFork();

/// read(2), retrying on EINTR. \returns bytes read, 0 at EOF, or -1 on a
/// genuine error (errno preserved).
long readRetry(int Fd, void *Buf, size_t N);

/// Writes all \p N bytes, retrying on EINTR and short writes. \returns
/// true when everything was written; false on a genuine error (EPIPE
/// when the peer vanished — harmless once SIGPIPE is ignored).
bool writeFull(int Fd, const void *Buf, size_t N);

/// writeFull over a string.
bool writeFull(int Fd, const std::string &S);

/// Ignores SIGPIPE for the whole process. Daemons and tools that write
/// to sockets/pipes call this first thing in main(): a peer closing its
/// end then costs the writer an EPIPE return, not its life. Idempotent.
void ignoreSigpipe();

/// Reaps child \p Pid without leaving a zombie. Waits up to
/// \p GraceMs for a voluntary exit (0 = don't wait, kill at once);
/// a child still alive after the grace period is SIGKILLed and the wait
/// retried until it is collected. \returns the raw waitpid status, or -1
/// when \p Pid was not a waitable child.
int reapChild(long Pid, unsigned GraceMs);

/// Caps the process's address space at \p MaxBytes via setrlimit, so a
/// runaway allocation in a forked worker fails with ENOMEM instead of
/// dragging the host into swap. No-op (returns false) when \p MaxBytes
/// is 0, on non-POSIX platforms, and under AddressSanitizer — ASan
/// reserves terabytes of shadow VA, so an RLIMIT_AS cap would abort
/// every sanitized run at startup.
bool limitAddressSpace(size_t MaxBytes);

} // namespace posix
} // namespace vpo

#endif // VPO_SUPPORT_POSIX_H
