//===- support/Trace.h - Chrome trace-event export ---------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal writer for the Chrome trace-event JSON format
/// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU):
/// complete ("ph":"X") events with microsecond timestamps, grouped by
/// pid/tid lanes, loadable in chrome://tracing or Perfetto. The bench
/// matrix runner exports one lane per worker so a whole table run can be
/// inspected as a timeline; a deterministic mode replaces wall-clock
/// timestamps with logical ones so determinism tests can compare files
/// byte-for-byte across thread counts.
///
//===----------------------------------------------------------------------===//

#ifndef VPO_SUPPORT_TRACE_H
#define VPO_SUPPORT_TRACE_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace vpo {

/// One complete ("X") trace event.
struct TraceEvent {
  std::string Name;
  std::string Cat;
  uint64_t TsMicros = 0;  ///< start, microseconds
  uint64_t DurMicros = 0; ///< duration, microseconds
  unsigned Pid = 1;
  unsigned Tid = 0;
  std::vector<std::pair<std::string, std::string>> Args;
};

/// An event list serializable as {"traceEvents":[...]}.
class TraceFile {
public:
  void add(TraceEvent E) { Events.push_back(std::move(E)); }

  const std::vector<TraceEvent> &events() const { return Events; }
  bool empty() const { return Events.empty(); }

  /// The full trace document. Events appear in insertion order; viewers
  /// sort by timestamp themselves.
  std::string toJson() const;

  /// Writes toJson() to \p Path. \returns false on I/O failure.
  bool writeFile(const std::string &Path) const;

private:
  std::vector<TraceEvent> Events;
};

} // namespace vpo

#endif // VPO_SUPPORT_TRACE_H
