//===- support/Error.cpp --------------------------------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "support/Error.h"

#include <cstdio>
#include <cstdlib>

using namespace vpo;

void vpo::fatalError(std::string_view Msg) {
  std::fprintf(stderr, "vpo fatal error: %.*s\n",
               static_cast<int>(Msg.size()), Msg.data());
  std::abort();
}

void vpo::vpoUnreachableImpl(const char *Msg, const char *File,
                             unsigned Line) {
  std::fprintf(stderr, "unreachable executed at %s:%u: %s\n", File, Line, Msg);
  std::abort();
}
