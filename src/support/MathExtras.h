//===- support/MathExtras.h - Bit and alignment utilities ------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small integer/bit utilities used by the IR, the coalescer (alignment
/// reasoning), and the simulator (address arithmetic).
///
//===----------------------------------------------------------------------===//

#ifndef VPO_SUPPORT_MATHEXTRAS_H
#define VPO_SUPPORT_MATHEXTRAS_H

#include <cassert>
#include <cstdint>

namespace vpo {

/// \returns true if \p V is a power of two (0 is not).
constexpr bool isPowerOf2(uint64_t V) { return V != 0 && (V & (V - 1)) == 0; }

/// \returns floor(log2(V)). \p V must be nonzero.
constexpr unsigned log2Floor(uint64_t V) {
  unsigned R = 0;
  while (V >>= 1)
    ++R;
  return R;
}

/// \returns \p V rounded up to the next multiple of \p Align.
/// \p Align must be a power of two.
constexpr uint64_t alignTo(uint64_t V, uint64_t Align) {
  assert(isPowerOf2(Align) && "alignment must be a power of two");
  return (V + Align - 1) & ~(Align - 1);
}

/// \returns true if \p V is a multiple of \p Align (power of two).
constexpr bool isAligned(uint64_t V, uint64_t Align) {
  assert(isPowerOf2(Align) && "alignment must be a power of two");
  return (V & (Align - 1)) == 0;
}

/// Sign-extends the low \p Bits bits of \p V to 64 bits.
constexpr int64_t signExtend64(uint64_t V, unsigned Bits) {
  assert(Bits > 0 && Bits <= 64 && "invalid bit count");
  if (Bits == 64)
    return static_cast<int64_t>(V);
  uint64_t Mask = (uint64_t(1) << Bits) - 1;
  uint64_t X = V & Mask;
  uint64_t SignBit = uint64_t(1) << (Bits - 1);
  return static_cast<int64_t>((X ^ SignBit) - SignBit);
}

/// Zero-extends the low \p Bits bits of \p V (masks the rest away).
constexpr uint64_t zeroExtend64(uint64_t V, unsigned Bits) {
  assert(Bits > 0 && Bits <= 64 && "invalid bit count");
  if (Bits == 64)
    return V;
  return V & ((uint64_t(1) << Bits) - 1);
}

/// \returns the largest power of two that divides \p V (its alignment).
/// For V == 0 returns a very large power of two (2^63): zero is "infinitely"
/// aligned, which is the identity for the gcd-style alignment lattice used
/// by the coalescer.
constexpr uint64_t knownAlignmentOf(int64_t V) {
  if (V == 0)
    return uint64_t(1) << 63;
  uint64_t U = static_cast<uint64_t>(V < 0 ? -V : V);
  return U & (~U + 1); // lowest set bit
}

} // namespace vpo

#endif // VPO_SUPPORT_MATHEXTRAS_H
