//===- support/Remark.h - Structured optimization remarks --------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structured optimization remarks: one machine-readable record per
/// accept/reject decision an optimization pass makes, with a stable
/// kebab-case reason code and ordered key=value arguments. The paper's
/// evaluation hinges on *why* each candidate run was or wasn't coalesced
/// (Fig. 3 profitability, Fig. 4 hazards, Fig. 5 run-time checks); remarks
/// make that reasoning observable without parsing dumps or diffing IR.
///
/// Telemetry is strictly read-only: a sink only ever receives copies of
/// data the pass computed anyway, so compiling with any sink — or none —
/// produces bit-identical IR (tests/pipeline/telemetry_observer_test.cpp
/// enforces this). With no sink attached the cost is one pointer test per
/// decision point.
///
/// Sinks:
///   * none (nullptr)       — disabled, the default everywhere;
///   * CollectingRemarkSink — in-memory, for tests and per-cell files;
///   * StreamingRemarkSink  — NDJSON lines to a FILE*, for long runs.
///
//===----------------------------------------------------------------------===//

#ifndef VPO_SUPPORT_REMARK_H
#define VPO_SUPPORT_REMARK_H

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace vpo {

/// One remark. Pass and reason are static strings (stable codes); args are
/// ordered so two equal decision sequences render byte-identically.
struct Remark {
  const char *Pass = "";
  std::string Fn;
  std::string Block;
  const char *Reason = "";
  std::vector<std::pair<const char *, std::string>> Args;

  Remark() = default;
  Remark(const char *Pass, std::string Fn, const char *Reason)
      : Pass(Pass), Fn(std::move(Fn)), Reason(Reason) {}

  Remark &block(std::string B) {
    Block = std::move(B);
    return *this;
  }
  Remark &arg(const char *K, std::string V) {
    Args.emplace_back(K, std::move(V));
    return *this;
  }
  Remark &arg(const char *K, const char *V) {
    Args.emplace_back(K, std::string(V));
    return *this;
  }
  Remark &arg(const char *K, int64_t V) {
    return arg(K, std::to_string(V));
  }
  Remark &arg(const char *K, uint64_t V) {
    return arg(K, std::to_string(V));
  }
  Remark &arg(const char *K, unsigned V) {
    return arg(K, std::to_string(V));
  }
  Remark &arg(const char *K, int V) { return arg(K, std::to_string(V)); }
  Remark &arg(const char *K, bool V) {
    return arg(K, V ? "true" : "false");
  }

  /// "pass @fn [block] reason k=v k=v" (block omitted when empty).
  std::string render() const;

  /// One JSON object on a single line:
  /// {"pass":"coalesce","function":"f","block":"body",
  ///  "reason":"run-accepted","args":{"kind":"load",...}}
  /// All arg values are JSON strings, so consumers need no type schema.
  std::string toJson() const;
};

/// Where remarks go. Implementations must not observe or mutate compiler
/// state — they receive value copies only.
class RemarkSink {
public:
  virtual ~RemarkSink();
  virtual void emit(const Remark &R) = 0;
};

/// Buffers remarks in memory, in emission order.
class CollectingRemarkSink final : public RemarkSink {
public:
  void emit(const Remark &R) override { Remarks.push_back(R); }

  const std::vector<Remark> &remarks() const { return Remarks; }
  void clear() { Remarks.clear(); }

  /// \returns how many remarks carry \p Reason.
  unsigned count(const char *Reason) const;

  /// render() of every remark, one per line (golden-test format).
  std::string renderAll() const;

  /// toJson() of every remark, one per line (NDJSON, remark-query format).
  std::string toJsonLines() const;

private:
  std::vector<Remark> Remarks;
};

/// Writes each remark as one NDJSON line to an unowned FILE*.
class StreamingRemarkSink final : public RemarkSink {
public:
  explicit StreamingRemarkSink(std::FILE *Out) : Out(Out) {}
  void emit(const Remark &R) override;

private:
  std::FILE *Out;
};

/// The handle passes carry: a sink (possibly null) plus the pass/function
/// context every remark from this site shares. Copyable and cheap; the
/// `enabled()` test is the only cost on the disabled path.
class RemarkEmitter {
public:
  RemarkEmitter() = default;
  RemarkEmitter(RemarkSink *Sink, const char *Pass, std::string Fn)
      : Sink(Sink), Pass(Pass), Fn(std::move(Fn)) {}

  bool enabled() const { return Sink != nullptr; }

  /// A remark pre-filled with this emitter's pass/function context.
  Remark start(const char *Reason) const { return Remark(Pass, Fn, Reason); }

  void emit(const Remark &R) const {
    if (Sink)
      Sink->emit(R);
  }

  RemarkSink *sink() const { return Sink; }

private:
  RemarkSink *Sink = nullptr;
  const char *Pass = "";
  std::string Fn;
};

/// Appends \p S to \p Out as a JSON string literal (quotes + escapes).
void appendJsonString(std::string &Out, const std::string &S);

} // namespace vpo

#endif // VPO_SUPPORT_REMARK_H
