//===- support/Diagnostics.cpp - Recoverable error plumbing -----*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

using namespace vpo;

const char *vpo::errorCodeName(ErrorCode Code) {
  switch (Code) {
  case ErrorCode::Ok:
    return "ok";
  case ErrorCode::InvalidIR:
    return "invalid-ir";
  case ErrorCode::PassFailed:
    return "pass-failed";
  case ErrorCode::ParseError:
    return "parse-error";
  case ErrorCode::Unsupported:
    return "unsupported";
  case ErrorCode::ResourceExhausted:
    return "resource-exhausted";
  case ErrorCode::DeadlineExceeded:
    return "deadline-exceeded";
  case ErrorCode::Overloaded:
    return "overloaded";
  case ErrorCode::Trap:
    return "trap";
  case ErrorCode::Internal:
    return "internal";
  }
  return "unknown";
}

std::optional<ErrorCode> vpo::errorCodeFromName(const std::string &Name) {
  static const ErrorCode All[] = {
      ErrorCode::Ok,           ErrorCode::InvalidIR,
      ErrorCode::PassFailed,   ErrorCode::ParseError,
      ErrorCode::Unsupported,  ErrorCode::ResourceExhausted,
      ErrorCode::DeadlineExceeded, ErrorCode::Overloaded,
      ErrorCode::Trap,         ErrorCode::Internal};
  for (ErrorCode C : All)
    if (Name == errorCodeName(C))
      return C;
  return std::nullopt;
}

std::string Diagnostic::render() const {
  std::string Out = "[";
  Out += errorCodeName(Code);
  Out += "] ";
  if (!Pass.empty()) {
    Out += Pass;
    Out += " ";
  }
  if (!Function.empty()) {
    Out += "@";
    Out += Function;
    Out += ": ";
  }
  Out += Message;
  return Out;
}

std::string vpo::renderDiagnostics(const std::vector<Diagnostic> &Diags) {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += D.render();
    Out += "\n";
  }
  return Out;
}
