//===- support/StringUtils.cpp --------------------------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "support/StringUtils.h"

#include <cstdarg>
#include <cstdio>

using namespace vpo;

std::string vpo::strformat(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Len = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  if (Len < 0) {
    va_end(ArgsCopy);
    return std::string();
  }
  std::string Out(static_cast<size_t>(Len), '\0');
  std::vsnprintf(Out.data(), Out.size() + 1, Fmt, ArgsCopy);
  va_end(ArgsCopy);
  return Out;
}

std::vector<std::string> vpo::splitString(const std::string &S,
                                          const std::string &Seps) {
  std::vector<std::string> Pieces;
  size_t Start = 0;
  while (Start < S.size()) {
    size_t End = S.find_first_of(Seps, Start);
    if (End == std::string::npos)
      End = S.size();
    if (End > Start)
      Pieces.push_back(S.substr(Start, End - Start));
    Start = End + 1;
  }
  return Pieces;
}

std::string vpo::trimString(const std::string &S) {
  const char *WS = " \t\r\n";
  size_t B = S.find_first_not_of(WS);
  if (B == std::string::npos)
    return std::string();
  size_t E = S.find_last_not_of(WS);
  return S.substr(B, E - B + 1);
}

bool vpo::startsWith(const std::string &S, const std::string &Prefix) {
  return S.size() >= Prefix.size() &&
         S.compare(0, Prefix.size(), Prefix) == 0;
}
