//===- support/Trace.cpp --------------------------------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "support/Trace.h"

#include "support/Remark.h"

#include <cstdio>

using namespace vpo;

std::string TraceFile::toJson() const {
  std::string J = "{\"traceEvents\":[";
  for (size_t I = 0; I < Events.size(); ++I) {
    const TraceEvent &E = Events[I];
    J += I ? ",\n " : "\n ";
    J += "{\"name\":";
    appendJsonString(J, E.Name);
    J += ",\"cat\":";
    appendJsonString(J, E.Cat);
    J += ",\"ph\":\"X\"";
    J += ",\"ts\":" + std::to_string(E.TsMicros);
    J += ",\"dur\":" + std::to_string(E.DurMicros);
    J += ",\"pid\":" + std::to_string(E.Pid);
    J += ",\"tid\":" + std::to_string(E.Tid);
    if (!E.Args.empty()) {
      J += ",\"args\":{";
      for (size_t A = 0; A < E.Args.size(); ++A) {
        if (A)
          J += ',';
        appendJsonString(J, E.Args[A].first);
        J += ':';
        appendJsonString(J, E.Args[A].second);
      }
      J += '}';
    }
    J += '}';
  }
  J += "\n]}\n";
  return J;
}

bool TraceFile::writeFile(const std::string &Path) const {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  std::string J = toJson();
  bool Ok = std::fwrite(J.data(), 1, J.size(), F) == J.size();
  Ok &= std::fclose(F) == 0;
  return Ok;
}
