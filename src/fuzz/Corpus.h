//===- fuzz/Corpus.h - Minimized repro corpus I/O ---------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The on-disk format for minimized fuzz repros (tests/fuzz/corpus/).
/// A corpus file is RTL text prefixed by `#` metadata lines the IR parser
/// skips, so every repro is simultaneously a parseable kernel and a
/// self-describing regression test:
///
///   # fuzz-repro specseed=17 kind=compile-incident expect=detect
///   # inject=coalesce:wrong-width:7
///   # note: reduced from 61 instructions
///   func @k(r1, r2) { ... }
///
/// `specseed` reconstructs the KernelSpec (memory layout, trip counts)
/// the oracle needs — via nearMissSpec when the header carries
/// `mode=near-miss`; the kernel text itself is the *reduced* IR, not what
/// the seed would generate. `expect=detect` entries re-plant the recorded
/// fault and must fail with exactly `kind` (guard-rail regressions);
/// `expect=match` entries must pass the oracle cleanly (fixed-bug
/// sentinels). tests/fuzz/corpus_replay_test.cpp replays the whole
/// directory under tier-1 ctest.
///
//===----------------------------------------------------------------------===//

#ifndef VPO_FUZZ_CORPUS_H
#define VPO_FUZZ_CORPUS_H

#include "fuzz/Oracle.h"

#include <optional>
#include <string>
#include <vector>

namespace vpo {
namespace fuzz {

struct CorpusEntry {
  std::string Path; ///< where it was loaded from (diagnostics only)
  uint64_t SpecSeed = 0;
  /// The FailKind this repro reproduces (for expect=detect) or
  /// reproduced before the fix (for expect=match).
  FailKind Kind = FailKind::None;
  /// True: replay must report exactly Kind. False: replay must pass.
  bool ExpectDetect = false;
  /// True when SpecSeed reconstructs through nearMissSpec (the shared-base
  /// near-miss generator) rather than KernelSpec::random. Serialized as
  /// `mode=near-miss` in the header.
  bool NearMiss = false;
  std::optional<InjectSpec> Inject;
  std::string Note;
  std::string IRText;

  std::string render() const; ///< serialized file contents
};

/// Parses one corpus file's contents. \returns false (with \p Err set)
/// on a malformed header.
bool parseCorpusEntry(const std::string &Contents, CorpusEntry &Entry,
                      std::string &Err);

/// Loads \p Path. \returns false with \p Err on I/O or parse failure.
bool loadCorpusFile(const std::string &Path, CorpusEntry &Entry,
                    std::string &Err);

/// Writes \p Entry to \p Path. \returns false on I/O failure.
bool writeCorpusFile(const std::string &Path, const CorpusEntry &Entry);

/// \returns the sorted .ir files directly inside \p Dir (empty when the
/// directory is missing).
std::vector<std::string> listCorpusFiles(const std::string &Dir);

/// Replays \p Entry: runs the oracle (re-planting the recorded fault for
/// expect=detect entries) and checks the expectation. \returns true on
/// success; otherwise \p Why explains the mismatch. \p Base supplies
/// targets/budgets; its Inject field is overridden per entry.
bool replayCorpusEntry(const CorpusEntry &Entry, OracleOptions Base,
                       std::string &Why);

} // namespace fuzz
} // namespace vpo

#endif // VPO_FUZZ_CORPUS_H
