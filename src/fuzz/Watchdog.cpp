//===- fuzz/Watchdog.cpp - Crash and timeout containment --------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Watchdog.h"

#include "support/Posix.h"

#include <algorithm>
#include <chrono>

#if defined(__unix__) || defined(__APPLE__)
#define VPO_FUZZ_HAS_FORK 1
#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>
#else
#define VPO_FUZZ_HAS_FORK 0
#endif

using namespace vpo::fuzz;

bool vpo::fuzz::watchdogCanFork() { return VPO_FUZZ_HAS_FORK != 0; }

#if VPO_FUZZ_HAS_FORK

ContainedOutcome vpo::fuzz::runContained(
    const std::function<int(int)> &Fn, unsigned TimeoutMs,
    size_t MaxOutputBytes) {
  ContainedOutcome Out;
  int Pipe[2];
  if (pipe(Pipe) != 0) {
    Out.K = ContainedOutcome::Kind::ForkUnavailable;
    return Out;
  }
  pid_t Child = fork();
  if (Child < 0) {
    close(Pipe[0]);
    close(Pipe[1]);
    Out.K = ContainedOutcome::Kind::ForkUnavailable;
    return Out;
  }
  if (Child == 0) {
    close(Pipe[0]);
    // _exit, not exit: no atexit handlers or stream flushing in a child
    // that shares the parent's buffers.
    _exit(Fn(Pipe[1]) & 0xff);
  }

  close(Pipe[1]);
  // Drain the pipe under the deadline. EOF before the deadline means the
  // child is done (or dead); the final waitpid classifies which. A poll
  // error other than EINTR counts as a timeout: the child may still be
  // running, and waiting for it unbounded would hang the campaign, so it
  // is killed and reaped like a hang (no zombie on the early-error path).
  bool Timeout = false;
  auto Deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(TimeoutMs);
  while (true) {
    auto Left = std::chrono::duration_cast<std::chrono::milliseconds>(
                    Deadline - std::chrono::steady_clock::now())
                    .count();
    pollfd P{Pipe[0], POLLIN, 0};
    int R = poll(&P, 1, Left > 0 ? static_cast<int>(Left) : 0);
    if (R < 0 && errno == EINTR)
      continue;
    if (R <= 0) {
      Timeout = true;
      break;
    }
    char Buf[4096];
    long Got = posix::readRetry(Pipe[0], Buf, sizeof(Buf));
    if (Got < 0) {
      Timeout = true; // kill + reap rather than block in waitpid
      break;
    }
    if (Got == 0)
      break; // EOF: the child closed its end
    if (Out.Output.size() < MaxOutputBytes)
      Out.Output.append(Buf,
                        Buf + std::min<size_t>(static_cast<size_t>(Got),
                                               MaxOutputBytes -
                                                   Out.Output.size()));
  }
  close(Pipe[0]);

  if (Timeout) {
    int St = posix::reapChild(Child, /*GraceMs=*/0);
    Out.K = ContainedOutcome::Kind::TimedOut;
    // A deadline child that beat the SIGKILL to a crash still counts as
    // a timeout for the campaign; classification keeps the kill signal.
    (void)St;
    return Out;
  }
  int St = posix::reapChild(Child, /*GraceMs=*/5000);
  if (St < 0) {
    Out.K = ContainedOutcome::Kind::Completed;
    Out.ExitCode = -1;
    return Out;
  }
  if (WIFSIGNALED(St)) {
    Out.K = ContainedOutcome::Kind::Crashed;
    Out.Signal = WTERMSIG(St);
  } else {
    Out.K = ContainedOutcome::Kind::Completed;
    Out.ExitCode = WIFEXITED(St) ? WEXITSTATUS(St) : -1;
  }
  return Out;
}

void vpo::fuzz::writeAll(int Fd, const std::string &S) {
  posix::writeFull(Fd, S);
}

#else

ContainedOutcome vpo::fuzz::runContained(const std::function<int(int)> &,
                                         unsigned, size_t) {
  ContainedOutcome Out;
  Out.K = ContainedOutcome::Kind::ForkUnavailable;
  return Out;
}

void vpo::fuzz::writeAll(int, const std::string &) {}

#endif
