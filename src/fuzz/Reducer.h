//===- fuzz/Reducer.h - Delta-debugging test-case reducer -------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Greedy delta-debugging over RTL text: parse, apply one structural
/// mutation, print, and keep the candidate iff the caller's predicate
/// still classifies it as the same failure. Mutations shrink the kernel
/// monotonically — drop an instruction, collapse a conditional branch to
/// one side, delete unreachable blocks, zero or halve an immediate — so
/// the loop terminates, and every accepted candidate is a well-formed
/// function (mutations never remove terminators).
///
/// The predicate owns the definition of "still interesting" (typically:
/// the oracle reports the same FailKind) and any containment around
/// probing it; the reducer itself never executes the kernel.
///
//===----------------------------------------------------------------------===//

#ifndef VPO_FUZZ_REDUCER_H
#define VPO_FUZZ_REDUCER_H

#include <cstddef>
#include <functional>
#include <string>

namespace vpo {
namespace fuzz {

struct ReduceOptions {
  unsigned MaxSweeps = 8;   ///< full passes over the candidate list
  unsigned MaxProbes = 4000; ///< total predicate evaluations
};

struct ReduceResult {
  std::string IRText;        ///< minimized text (original if nothing held)
  unsigned Probes = 0;       ///< predicate evaluations spent
  unsigned Applied = 0;      ///< accepted mutations
  size_t OriginalInsts = 0;
  size_t FinalInsts = 0;
};

/// \returns the instruction count of the first function in \p IRText, or
/// 0 when it does not parse.
size_t countInstructions(const std::string &IRText);

/// Minimizes \p IRText while \p StillInteresting holds. The predicate is
/// never called on the original text (it is assumed interesting).
ReduceResult
reduceIRText(const std::string &IRText,
             const std::function<bool(const std::string &)> &StillInteresting,
             const ReduceOptions &O = ReduceOptions());

} // namespace fuzz
} // namespace vpo

#endif // VPO_FUZZ_REDUCER_H
