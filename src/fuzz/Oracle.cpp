//===- fuzz/Oracle.cpp - Multi-oracle differential checker ------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Oracle.h"

#include "frontend/CFront.h"
#include "ir/Function.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include "support/Remark.h"
#include "sim/Interpreter.h"
#include "sim/Memory.h"
#include "target/TargetMachine.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>

using namespace vpo;
using namespace vpo::fuzz;

const char *vpo::fuzz::failKindName(FailKind K) {
  switch (K) {
  case FailKind::None:
    return "ok";
  case FailKind::GeneratorInvalid:
    return "generator-invalid";
  case FailKind::CompileIncident:
    return "compile-incident";
  case FailKind::StatusDiverged:
    return "status-diverged";
  case FailKind::ReturnDiverged:
    return "return-diverged";
  case FailKind::MemoryDiverged:
    return "memory-diverged";
  case FailKind::EngineDiverged:
    return "engine-diverged";
  case FailKind::RemarkDiverged:
    return "remark-diverged";
  case FailKind::AuditSilent:
    return "audit-silent";
  case FailKind::Crashed:
    return "crash";
  case FailKind::TimedOut:
    return "timeout";
  }
  return "unknown";
}

std::optional<FailKind>
vpo::fuzz::failKindFromName(const std::string &Name) {
  static const FailKind All[] = {
      FailKind::None,           FailKind::GeneratorInvalid,
      FailKind::CompileIncident, FailKind::StatusDiverged,
      FailKind::ReturnDiverged, FailKind::MemoryDiverged,
      FailKind::EngineDiverged, FailKind::RemarkDiverged,
      FailKind::AuditSilent,    FailKind::Crashed,
      FailKind::TimedOut};
  for (FailKind K : All)
    if (Name == failKindName(K))
      return K;
  return std::nullopt;
}

std::optional<FaultKind>
vpo::fuzz::faultKindFromName(const std::string &Name) {
  static const FaultKind All[] = {FaultKind::WrongWidth,
                                  FaultKind::ClobberedBase,
                                  FaultKind::DroppedCheck,
                                  FaultKind::MissingOperand,
                                  FaultKind::EmptyBlock,
                                  FaultKind::UnsoundProve,
                                  FaultKind::SchedLength};
  for (FaultKind K : All)
    if (Name == faultKindName(K))
      return K;
  return std::nullopt;
}

std::string InjectSpec::render() const {
  return AfterPass + ":" + faultKindName(Kind) + ":" + std::to_string(Seed);
}

std::optional<InjectSpec> InjectSpec::parse(const std::string &Text) {
  size_t C1 = Text.find(':');
  if (C1 == std::string::npos)
    return std::nullopt;
  size_t C2 = Text.find(':', C1 + 1);
  if (C2 == std::string::npos)
    return std::nullopt;
  InjectSpec S;
  S.AfterPass = Text.substr(0, C1);
  auto K = faultKindFromName(Text.substr(C1 + 1, C2 - C1 - 1));
  if (S.AfterPass.empty() || !K)
    return std::nullopt;
  S.Kind = *K;
  errno = 0;
  char *End = nullptr;
  const std::string SeedStr = Text.substr(C2 + 1);
  S.Seed = std::strtoull(SeedStr.c_str(), &End, 10);
  if (SeedStr.empty() || (End && *End))
    return std::nullopt;
  return S;
}

std::string OracleResult::render() const {
  if (passed())
    return "ok (" + std::to_string(Comparisons) + " comparisons)";
  std::string S = failKindName(Kind);
  if (!Program.empty())
    S += " program=" + Program;
  if (!Target.empty())
    S += " target=" + Target;
  if (!Config.empty())
    S += " config=" + Config;
  if (!Scenario.empty())
    S += " scenario=" + Scenario;
  if (!Engine.empty())
    S += " engine=" + Engine;
  if (!Detail.empty())
    S += ": " + Detail;
  return S;
}

std::vector<PipelineConfig> vpo::fuzz::oracleConfigs() {
  std::vector<PipelineConfig> Cfgs;
  {
    PipelineConfig C;
    C.Name = "O0";
    C.Options.Mode = CoalesceMode::None;
    C.Options.Unroll = false;
    C.Options.Schedule = false;
    C.Options.Cleanup = false;
    Cfgs.push_back(C);
  }
  {
    PipelineConfig C;
    C.Name = "vpo-O";
    C.Options.Mode = CoalesceMode::None;
    Cfgs.push_back(C);
  }
  {
    PipelineConfig C;
    C.Name = "coalesce-loads";
    C.Options.Mode = CoalesceMode::Loads;
    Cfgs.push_back(C);
  }
  {
    PipelineConfig C;
    C.Name = "coalesce-all";
    C.Options.Mode = CoalesceMode::LoadsAndStores;
    Cfgs.push_back(C);
  }
  {
    PipelineConfig C;
    C.Name = "coalesce-all+companions";
    C.Options.Mode = CoalesceMode::LoadsAndStores;
    C.Options.OptimizeRecurrences = true;
    C.Options.ScalarReplace = true;
    Cfgs.push_back(C);
  }
  {
    // A pinned unroll factor so the trip-count scenarios (0, 3, prime)
    // straddle exactly the unroll-1 boundary.
    PipelineConfig C;
    C.Name = "coalesce-all-u4";
    C.Options.Mode = CoalesceMode::LoadsAndStores;
    C.Options.UnrollFactor = 4;
    Cfgs.push_back(C);
  }
  {
    // Exact scheduling replaces the list schedules wholesale, so the
    // "never longer, always equivalent" claim gets the full differential
    // treatment against the O0 baseline.
    PipelineConfig C;
    C.Name = "coalesce-all+exact-sched";
    C.Options.Mode = CoalesceMode::LoadsAndStores;
    C.Options.ExactSched = true;
    Cfgs.push_back(C);
  }
  return Cfgs;
}

namespace {

/// Architectural outcome of one simulated run: everything two runs must
/// agree on (performance metrics are deliberately excluded).
struct ArchOutcome {
  RunResult::Status Exit = RunResult::Status::Ok;
  int64_t Ret = 0;
  std::vector<uint8_t> Image; ///< arena live prefix
  bool TailZero = true;
  std::string Error;
};

enum class Engine { Reference, Predecode, JIT };

ArchOutcome runOnce(const Function &F, const TargetMachine &TM,
                    const KernelSpec &Spec, int64_t N, size_t Skew,
                    Engine E, const OracleOptions &O) {
  Memory Mem(O.ArenaBytes);
  std::vector<int64_t> Args = setupKernelMemory(Spec, N, Mem, Skew);
  InterpreterOptions IO;
  IO.Predecode = E != Engine::Reference;
  if (E == Engine::JIT) {
    IO.EnableJIT = true;
    // Promote after two interpreted entries so even the short trip-count
    // scenarios exercise compiled code, chaining and deopt paths.
    IO.JITHotThreshold = 2;
  }
  IO.MaxSteps = O.MaxInsts;
  Interpreter Interp(TM, Mem, IO);
  RunResult R = Interp.run(F, Args);
  ArchOutcome Out;
  Out.Exit = R.Exit;
  Out.Ret = R.ReturnValue;
  Out.Error = R.Error;
  size_t Used = Mem.usedBytes();
  Out.Image.assign(Mem.data(), Mem.data() + Used);
  for (const uint8_t *P = Mem.data() + Used, *E = Mem.data() + Mem.size();
       P != E; ++P)
    if (*P != 0) {
      Out.TailZero = false;
      break;
    }
  return Out;
}

bool sameArch(const ArchOutcome &A, const ArchOutcome &B,
              std::string &Why) {
  if (A.Exit != B.Exit) {
    Why = std::string("status ") + runStatusName(A.Exit) + " vs " +
          runStatusName(B.Exit) + (B.Error.empty() ? "" : " (" + B.Error + ")");
    return false;
  }
  if (A.Exit == RunResult::Status::Ok && A.Ret != B.Ret) {
    Why = "return " + std::to_string(A.Ret) + " vs " + std::to_string(B.Ret);
    return false;
  }
  if (A.Image != B.Image || A.TailZero != B.TailZero) {
    Why = "memory image differs";
    return false;
  }
  return true;
}

/// sameArch plus byte-identical diagnostics — the JIT tier's contract is
/// that even its trap messages match the interpreters exactly.
bool sameArchAndError(const ArchOutcome &A, const ArchOutcome &B,
                      std::string &Why) {
  if (!sameArch(A, B, Why))
    return false;
  if (A.Error != B.Error) {
    Why = "diagnostic differs: \"" + A.Error + "\" vs \"" + B.Error + "\"";
    return false;
  }
  return true;
}

FailKind divergenceKind(const ArchOutcome &A, const ArchOutcome &B) {
  if (A.Exit != B.Exit)
    return FailKind::StatusDiverged;
  if (A.Exit == RunResult::Status::Ok && A.Ret != B.Ret)
    return FailKind::ReturnDiverged;
  return FailKind::MemoryDiverged;
}

/// The planted schedule-length error for FaultKind::SchedLength: large
/// enough that every kept Fig. 3 verdict flips (the coalesced loop
/// suddenly "costs" hundreds of extra cycles), deterministic in the seed.
int plantedSkew(uint64_t Seed) {
  return 500 + static_cast<int>(Seed % 64);
}

/// Scans one sink-on remark stream for exact-scheduler audit violations:
/// a conclusive sched-audit whose exact lengths contradict its verdict
/// without flagging "flipped", or a stream whose "flipped" statuses and
/// profitability-flipped remarks disagree in number. \returns a non-empty
/// description of the first violation; adds conclusive flips to \p Flips.
std::string auditInconsistency(const CollectingRemarkSink &Sink,
                               unsigned &Flips) {
  auto Arg = [](const Remark &R, const char *K) -> std::string {
    for (const auto &P : R.Args)
      if (std::strcmp(P.first, K) == 0)
        return P.second;
    return "";
  };
  auto Num = [](const std::string &S) -> uint64_t {
    return S.empty() ? 0 : std::strtoull(S.c_str(), nullptr, 10);
  };
  unsigned FlipStatuses = 0, FlipRemarks = 0;
  for (const Remark &R : Sink.remarks()) {
    if (std::strcmp(R.Reason, "profitability-flipped") == 0) {
      ++FlipRemarks;
      continue;
    }
    if (std::strcmp(R.Reason, "sched-audit") != 0)
      continue;
    const std::string Status = Arg(R, "status");
    if (Status == "budget-exceeded")
      continue;
    if (Status == "flipped")
      ++FlipStatuses;
    bool ExactKeep = Num(Arg(R, "exact-coalesced")) < Num(Arg(R, "exact-orig"));
    bool Verdict = Arg(R, "verdict") == "keep";
    if (ExactKeep != Verdict && Status != "flipped")
      return "conclusive sched-audit in '" + R.Block +
             "' contradicts its own verdict without flagging flipped";
  }
  if (FlipStatuses != FlipRemarks)
    return "audit reported " + std::to_string(FlipStatuses) +
           " flipped verdicts but emitted " + std::to_string(FlipRemarks) +
           " profitability-flipped remarks";
  Flips += FlipStatuses;
  return "";
}

/// Runs the full target x config x scenario x engine matrix over one
/// program rendering. \p Make builds a fresh module per compile.
OracleResult checkProgram(
    const std::string &Label,
    const std::function<std::unique_ptr<Module>(std::string &)> &Make,
    const KernelSpec &Spec, const OracleOptions &O) {
  OracleResult Res;
  Res.Program = Label;
  auto Fail = [&](FailKind K, const std::string &Detail) {
    Res.Kind = K;
    Res.Detail = Detail;
    return Res;
  };

  // FaultKind::SchedLength corrupts no IR: it is planted through the
  // profitability compare's inputs and must surface through the audit's
  // remark stream, so it needs the telemetry compiles to be observable.
  const bool PlantSkew =
      O.Inject && O.Inject->Kind == FaultKind::SchedLength;
  unsigned PlantedFlips = 0;

  std::vector<PipelineConfig> Configs = oracleConfigs();
  for (const std::string &Target : O.Targets) {
    Res.Target = Target;
    TargetMachine TM = makeTargetByName(Target);

    // Compile once per configuration (fresh module each: the pipeline
    // rewrites in place).
    std::vector<std::unique_ptr<Module>> Mods;
    std::vector<Function *> Fns;
    for (const PipelineConfig &Cfg : Configs) {
      Res.Config = Cfg.Name;
      std::string Err;
      std::unique_ptr<Module> M = Make(Err);
      if (!M || M->functions().empty())
        return Fail(FailKind::GeneratorInvalid,
                    "program did not build: " + Err);
      Function *F = M->functions().front().get();
      CompileOptions CO = Cfg.Options;
      CO.GuardRails = true;
      CO.SchedAuditBudget = O.SchedAuditBudget;
      if (O.Inject) {
        if (PlantSkew)
          CO.ProfitabilitySkew = plantedSkew(O.Inject->Seed);
        else
          CO.FaultHook =
              FaultInjector(O.Inject->AfterPass, O.Inject->Kind,
                            O.Inject->Seed);
      }
      CompileReport Rep = compileFunction(*F, TM, CO);
      if (!Rep.Succeeded || !Rep.Incidents.empty()) {
        std::string D = "guard rails:";
        for (const CompileReport::PassIncident &I : Rep.Incidents) {
          D += " pass=" + I.Pass;
          if (!I.Diags.empty())
            D += " (" + I.Diags.front().Message + ")";
        }
        if (!Rep.Succeeded)
          D += " [pipeline stopped]";
        return Fail(FailKind::CompileIncident, D);
      }
      // Verifier cleanliness of the final IR, independent of the guard
      // rails' own checks.
      std::vector<Diagnostic> Diags =
          verifyFunctionDiagnostics(*F, Cfg.Name.c_str());
      if (!Diags.empty())
        return Fail(FailKind::CompileIncident,
                    "post-compile verify: " + Diags.front().Message);

      // Telemetry oracle: the compile above ran with no sink; two more
      // with collecting sinks must yield (a) identical code — remarks
      // are read-only — and (b) identical remark streams — the pipeline
      // is deterministic, so its self-description must be too.
      if (O.CheckTelemetry) {
        CollectingRemarkSink SinkA, SinkB;
        std::string IRs[2];
        std::string Streams[2];
        CollectingRemarkSink *Sinks[2] = {&SinkA, &SinkB};
        for (int Rep = 0; Rep < 2; ++Rep) {
          std::string Err2;
          std::unique_ptr<Module> M2 = Make(Err2);
          if (!M2 || M2->functions().empty())
            return Fail(FailKind::GeneratorInvalid,
                        "program did not rebuild: " + Err2);
          Function *F2 = M2->functions().front().get();
          CompileOptions CO2 = CO;
          CO2.Remarks = Sinks[Rep];
          // Re-plant the fault fresh: the injector is one-shot with
          // shared state, so reusing CO's hook would leave the recompiles
          // clean and misreport a verifier-clean fault (unsound-prove) as
          // an observer effect. Injection is deterministic, so the
          // re-planted compiles still match the original exactly.
          // (SchedLength rides in on CO2's copied ProfitabilitySkew.)
          if (O.Inject && !PlantSkew)
            CO2.FaultHook = FaultInjector(O.Inject->AfterPass,
                                          O.Inject->Kind, O.Inject->Seed);
          compileFunction(*F2, TM, CO2);
          IRs[Rep] = printFunction(*F2);
          Streams[Rep] = Sinks[Rep]->toJsonLines();
        }
        if (IRs[0] != printFunction(*F))
          return Fail(FailKind::RemarkDiverged,
                      "observer effect: attaching a remark sink changed "
                      "the generated code");
        if (Streams[0] != Streams[1])
          return Fail(FailKind::RemarkDiverged,
                      "non-deterministic remarks: two identical compiles "
                      "produced different remark streams");
        // Audit-consistency oracle: every conclusive exact-scheduler
        // verdict in the stream must cohere with the decision it audited.
        std::string AuditWhy = auditInconsistency(SinkA, PlantedFlips);
        if (!AuditWhy.empty())
          return Fail(FailKind::AuditSilent, AuditWhy);
      }
      Mods.push_back(std::move(M));
      Fns.push_back(F);
    }
    Res.Config.clear();

    for (int64_t N : Spec.TripCounts) {
      for (size_t Skew : {size_t(0), size_t(3)}) {
        Res.Scenario =
            "n" + std::to_string(N) + ".skew" + std::to_string(Skew);
        // Baseline: the O0 compile on the reference interpreter.
        Res.Config = Configs[0].Name;
        Res.Engine = "reference";
        ArchOutcome Base =
            runOnce(*Fns[0], TM, Spec, N, Skew, Engine::Reference, O);
        if (Base.Exit != RunResult::Status::Ok)
          return Fail(FailKind::GeneratorInvalid,
                      std::string("baseline run: ") +
                          runStatusName(Base.Exit) + " " + Base.Error);

        for (size_t I = 0; I < Configs.size(); ++I) {
          Res.Config = Configs[I].Name;
          ArchOutcome Pre =
              runOnce(*Fns[I], TM, Spec, N, Skew, Engine::Predecode, O);
          ArchOutcome Ref =
              runOnce(*Fns[I], TM, Spec, N, Skew, Engine::Reference, O);
          std::string Why;
          // Engine cross-check: the two interpreters must agree exactly,
          // whatever the pipeline did.
          ++Res.Comparisons;
          if (!sameArch(Pre, Ref, Why)) {
            Res.Engine = "predecode-vs-reference";
            return Fail(FailKind::EngineDiverged, Why);
          }
          if (O.CheckJIT) {
            // Third engine: the tiered interpreter+JIT must reproduce the
            // predecode engine bit-for-bit, diagnostics included.
            ArchOutcome Jit =
                runOnce(*Fns[I], TM, Spec, N, Skew, Engine::JIT, O);
            ++Res.Comparisons;
            if (!sameArchAndError(Pre, Jit, Why)) {
              Res.Engine = "jit-vs-predecode";
              return Fail(FailKind::EngineDiverged, Why);
            }
          }
          ++Res.Comparisons;
          if (!sameArch(Base, Pre, Why)) {
            Res.Engine = "predecode";
            return Fail(divergenceKind(Base, Pre), Why);
          }
          ++Res.Comparisons;
          if (!sameArch(Base, Ref, Why)) {
            Res.Engine = "reference";
            return Fail(divergenceKind(Base, Ref), Why);
          }
        }
      }
    }
    Res.Config.clear();
    Res.Scenario.clear();
    Res.Engine.clear();
  }
  Res.Target.clear();
  // Self-test gate: a planted schedule-length error the audit never
  // reported anywhere means the audit is asleep at the wheel. (Only
  // meaningful when the telemetry compiles ran — without them the audit
  // has no sink and cannot speak.)
  if (PlantSkew && O.CheckTelemetry && PlantedFlips == 0)
    return Fail(FailKind::AuditSilent,
                "planted schedule-length skew was never reported as a "
                "flipped profitability verdict");
  return Res;
}

} // namespace

OracleResult vpo::fuzz::checkKernel(const GeneratedKernel &K,
                                    const OracleOptions &O) {
  OracleResult R = checkIRText(K.IRText, K.Spec, O);
  if (!R.passed())
    return R;
  if (O.CheckCSource && !K.CSource.empty()) {
    OracleResult C = checkProgram(
        "c",
        [&](std::string &Err) { return cc::compileC(K.CSource, &Err); },
        K.Spec, O);
    C.Comparisons += R.Comparisons;
    return C;
  }
  return R;
}

OracleResult vpo::fuzz::checkIRText(const std::string &IRText,
                                    const KernelSpec &Spec,
                                    const OracleOptions &O) {
  return checkProgram(
      "ir",
      [&](std::string &Err) {
        std::vector<Diagnostic> Diags;
        std::unique_ptr<Module> M = parseModule(IRText, Diags);
        if (!M && !Diags.empty())
          Err = Diags.front().Message;
        return M;
      },
      Spec, O);
}
