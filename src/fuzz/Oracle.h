//===- fuzz/Oracle.h - Multi-oracle differential checker --------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fuzzer's verdict machinery: one generated kernel is compiled under
/// every pipeline configuration on every requested target, run under all
/// three execution engines over every memory-layout/trip-count scenario,
/// and each run is compared against the O0 + reference-interpreter
/// baseline.
/// A disagreement anywhere — exit status, return value, final memory
/// image, a guard-rail incident, or post-compile verifier noise — fails
/// the case with a classified FailKind.
///
/// The oracle dimensions, per the differential-testing plan:
///   * {O0 baseline} x {vpo -O, coalesce-loads, coalesce-all,
///     coalesce-all + companion passes, coalesce-all at UnrollFactor 4}
///   * {alpha, m88100, m68030}
///   * {predecoded fast path, reference interpreter, tiered
///     interpreter+JIT (forced-hot, so compiled traces and deopts run)}
///   * memory scenarios that force the run-time checks down *both* the
///     fast (checks pass) and safe (checks fail) paths: layout skew on
///     and off, on top of the spec's adjacent/overlapping placements.
///
/// An InjectSpec plants a deterministic miscompile (pipeline/
/// FaultInjection.h) after a named pass in every compile; a healthy
/// oracle must convert that into FailKind::CompileIncident — this is the
/// fuzzer's own end-to-end self-test, and the acceptance gate for the
/// reduction loop.
///
//===----------------------------------------------------------------------===//

#ifndef VPO_FUZZ_ORACLE_H
#define VPO_FUZZ_ORACLE_H

#include "fuzz/KernelGen.h"
#include "pipeline/FaultInjection.h"
#include "pipeline/Pipeline.h"

#include <optional>
#include <string>
#include <vector>

namespace vpo {
namespace fuzz {

/// Why a case failed. Ordered roughly by where in the pipeline the
/// divergence surfaced.
enum class FailKind : uint8_t {
  None,             ///< all comparisons agreed
  GeneratorInvalid, ///< harness bug: kernel unparseable or baseline run bad
  CompileIncident,  ///< guard rails / verifier caught a bad pass output
  StatusDiverged,   ///< exit status differs from the baseline
  ReturnDiverged,   ///< return value differs
  MemoryDiverged,   ///< final memory image differs
  EngineDiverged,   ///< predecode and reference engines disagree
  /// Telemetry broke its read-only contract: attaching a remark sink
  /// changed the generated code, or two identical compiles produced
  /// different remark streams.
  RemarkDiverged,
  /// The exact-scheduler audit failed its own contract: a conclusive
  /// sched-audit remark's exact schedule lengths contradict the verdict
  /// it reports without flagging "flipped", a "flipped" audit emitted no
  /// profitability-flipped remark — or a planted wrong schedule length
  /// (FaultKind::SchedLength) went unreported across the whole case.
  AuditSilent,
  Crashed,          ///< (containment) the case killed its host process
  TimedOut,         ///< (containment) the case hit the wall-clock deadline
};

const char *failKindName(FailKind K);
/// \returns the kind for \p Name, or std::nullopt.
std::optional<FailKind> failKindFromName(const std::string &Name);

/// \returns the FaultKind for \p Name ("wrong-width", ...), or nullopt.
std::optional<FaultKind> faultKindFromName(const std::string &Name);

/// A planted miscompile: corrupt the IR after \p AfterPass in every
/// compile the oracle performs.
struct InjectSpec {
  std::string AfterPass; ///< "coalesce", "legalize", "schedule", ...
  FaultKind Kind = FaultKind::WrongWidth;
  uint64_t Seed = 0;

  std::string render() const; ///< "pass:kind:seed"
  static std::optional<InjectSpec> parse(const std::string &Text);
};

struct OracleOptions {
  std::vector<std::string> Targets = {"alpha", "m88100", "m68030"};
  /// Instruction budget per simulated run (watchdog layer 1); a baseline
  /// run that exhausts it is a harness problem (GeneratorInvalid).
  uint64_t MaxInsts = 50'000'000;
  /// Arena size per run; generated kernels touch a few KB.
  size_t ArenaBytes = size_t(1) << 20;
  /// Also check the mini-C rendering when the spec has one.
  bool CheckCSource = true;
  /// Run the tiered interpreter+JIT as a third engine and require its
  /// results — diagnostics included — to match the predecode engine
  /// byte-for-byte. Harmless on platforms without native support (the
  /// functional engine's interpreted tier runs instead). The campaign
  /// drivers' --no-jit turns it off.
  bool CheckJIT = true;
  /// Telemetry oracle: per configuration, compile twice more with remark
  /// sinks attached; the sink-off and sink-on IR must print identically
  /// (observer effect) and the two remark streams must match byte-for-
  /// byte (determinism). Divergence is FailKind::RemarkDiverged.
  /// The sink-on streams additionally feed the exact-scheduler audit
  /// consistency check (FailKind::AuditSilent).
  bool CheckTelemetry = true;
  /// Branch-and-bound state budget for the exact-scheduler audit during
  /// the telemetry compiles. Capped below the pipeline default so fuzz
  /// campaigns stay fast; every audited verdict is still consistency-
  /// checked.
  uint64_t SchedAuditBudget = 20'000;
  std::optional<InjectSpec> Inject;
};

struct OracleResult {
  FailKind Kind = FailKind::None;
  std::string Detail;   ///< first divergence, human-readable
  std::string Program;  ///< "ir" or "c"
  std::string Target;
  std::string Config;
  std::string Scenario; ///< "n13.skew3"
  std::string Engine;   ///< "predecode", "reference", or "jit"
  unsigned Comparisons = 0; ///< differential comparisons performed

  bool passed() const { return Kind == FailKind::None; }
  std::string render() const;
};

/// The pipeline configurations the oracle compiles each kernel under.
/// Index 0 is the O0 baseline.
std::vector<PipelineConfig> oracleConfigs();

/// Runs the full oracle stack over \p K.
OracleResult checkKernel(const GeneratedKernel &K, const OracleOptions &O);

/// Oracle over explicit RTL text with \p Spec supplying the memory layout
/// and trip counts — the entry point for reduced kernels and corpus
/// replay, where the text no longer matches what the spec would generate.
OracleResult checkIRText(const std::string &IRText, const KernelSpec &Spec,
                         const OracleOptions &O);

} // namespace fuzz
} // namespace vpo

#endif // VPO_FUZZ_ORACLE_H
