//===- fuzz/Campaign.cpp - Deterministic fuzzing campaign runner -*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Campaign.h"

#include "fuzz/Watchdog.h"

#include <atomic>
#include <cstdlib>
#include <sstream>
#include <thread>

using namespace vpo;
using namespace vpo::fuzz;

uint64_t vpo::fuzz::caseSeed(uint64_t CampaignSeed, unsigned Index) {
  // SplitMix64 over the combined value.
  uint64_t Z = CampaignSeed + 0x9e3779b97f4a7c15ULL * (Index + 1);
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

unsigned CampaignReport::failures() const {
  unsigned N = 0;
  for (const CaseOutcome &C : Outcomes)
    if (!C.Result.passed())
      ++N;
  return N;
}

unsigned CampaignReport::harnessProblems() const {
  unsigned N = 0;
  for (const CaseOutcome &C : Outcomes)
    if (C.Contained || C.Result.Kind == FailKind::GeneratorInvalid)
      ++N;
  return N;
}

std::string CampaignReport::summary() const {
  std::ostringstream S;
  S << "seed=" << Seed << " cases=" << Outcomes.size()
    << " failures=" << failures()
    << " harness-problems=" << harnessProblems() << "\n";
  for (const CaseOutcome &C : Outcomes)
    if (!C.Result.passed())
      S << "case " << C.Index << " seed=" << C.Seed << ": "
        << C.Result.render() << "\n";
  return S.str();
}

CampaignReport vpo::fuzz::runCampaign(const CampaignOptions &O) {
  CampaignReport Report;
  Report.Seed = O.Seed;
  Report.Outcomes.resize(O.Cases);

  CaseExecutor Exec = O.Executor;
  if (!Exec)
    Exec = [](const GeneratedKernel &K, const OracleOptions &OO) {
      return checkKernel(K, OO);
    };

  unsigned Threads = O.Threads;
  if (Threads == 0) {
    Threads = std::thread::hardware_concurrency();
    if (Threads == 0)
      Threads = 1;
  }
  if (O.Cases < Threads)
    Threads = O.Cases ? O.Cases : 1;

  std::atomic<unsigned> Next{0};
  auto Worker = [&] {
    while (true) {
      unsigned I = Next.fetch_add(1, std::memory_order_relaxed);
      if (I >= O.Cases)
        return;
      CaseOutcome &Out = Report.Outcomes[I];
      Out.Index = I;
      Out.Seed = caseSeed(O.Seed, I);
      GeneratedKernel K = generateKernel(
          O.NearMiss ? nearMissSpec(Out.Seed) : KernelSpec::random(Out.Seed));
      Out.Result = Exec(K, O.Oracle);
      Out.Contained = Out.Result.Kind == FailKind::Crashed ||
                      Out.Result.Kind == FailKind::TimedOut;
    }
  };

  std::vector<std::thread> Pool;
  Pool.reserve(Threads - 1);
  for (unsigned T = 1; T < Threads; ++T)
    Pool.emplace_back(Worker);
  Worker();
  for (std::thread &T : Pool)
    T.join();
  return Report;
}

std::string vpo::fuzz::serializeOracleResult(const OracleResult &R) {
  // Line-oriented; Detail goes last and may not contain newlines (the
  // oracle builds single-line details, but flatten defensively).
  std::string Detail = R.Detail;
  for (char &C : Detail)
    if (C == '\n')
      C = ' ';
  std::ostringstream S;
  S << "kind=" << failKindName(R.Kind) << "\n"
    << "comparisons=" << R.Comparisons << "\n"
    << "program=" << R.Program << "\n"
    << "target=" << R.Target << "\n"
    << "config=" << R.Config << "\n"
    << "scenario=" << R.Scenario << "\n"
    << "engine=" << R.Engine << "\n"
    << "detail=" << Detail << "\n";
  return S.str();
}

bool vpo::fuzz::deserializeOracleResult(const std::string &Text,
                                        OracleResult &R) {
  std::istringstream S(Text);
  std::string Line;
  bool SawKind = false;
  while (std::getline(S, Line)) {
    size_t Eq = Line.find('=');
    if (Eq == std::string::npos)
      continue;
    std::string Key = Line.substr(0, Eq), Val = Line.substr(Eq + 1);
    if (Key == "kind") {
      auto K = failKindFromName(Val);
      if (!K)
        return false;
      R.Kind = *K;
      SawKind = true;
    } else if (Key == "comparisons") {
      R.Comparisons = static_cast<unsigned>(std::strtoul(Val.c_str(),
                                                         nullptr, 10));
    } else if (Key == "program") {
      R.Program = Val;
    } else if (Key == "target") {
      R.Target = Val;
    } else if (Key == "config") {
      R.Config = Val;
    } else if (Key == "scenario") {
      R.Scenario = Val;
    } else if (Key == "engine") {
      R.Engine = Val;
    } else if (Key == "detail") {
      R.Detail = Val;
    }
  }
  return SawKind;
}

CaseExecutor vpo::fuzz::makeContainedExecutor(unsigned TimeoutMs) {
  return [TimeoutMs](const GeneratedKernel &K,
                     const OracleOptions &O) -> OracleResult {
    if (!watchdogCanFork())
      return checkKernel(K, O);
    ContainedOutcome C = runContained(
        [&](int WriteFd) {
          OracleResult R = checkKernel(K, O);
          writeAll(WriteFd, serializeOracleResult(R));
          return R.passed() ? 0 : 1;
        },
        TimeoutMs);
    OracleResult R;
    switch (C.K) {
    case ContainedOutcome::Kind::Completed:
      if (deserializeOracleResult(C.Output, R))
        return R;
      R.Kind = FailKind::Crashed;
      R.Detail = "child exited (" + std::to_string(C.ExitCode) +
                 ") without a parseable result";
      return R;
    case ContainedOutcome::Kind::Crashed:
      R.Kind = FailKind::Crashed;
      R.Detail = "child killed by signal " + std::to_string(C.Signal);
      return R;
    case ContainedOutcome::Kind::TimedOut:
      R.Kind = FailKind::TimedOut;
      R.Detail = "wall-clock deadline (" + std::to_string(TimeoutMs) +
                 " ms) expired";
      return R;
    case ContainedOutcome::Kind::ForkUnavailable:
      return checkKernel(K, O);
    }
    return R;
  };
}
