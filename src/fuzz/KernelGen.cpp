//===- fuzz/KernelGen.cpp - Seeded random kernel generator ------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "fuzz/KernelGen.h"

#include "ir/Function.h"
#include "ir/IRBuilder.h"
#include "ir/IRPrinter.h"
#include "sim/Memory.h"
#include "support/RNG.h"

#include <cassert>

using namespace vpo;
using namespace vpo::fuzz;

KernelSpec KernelSpec::random(uint64_t Seed) {
  RNG R(Seed * 0x9e3779b9u + 11);
  KernelSpec K;
  K.Seed = Seed;

  size_t NumStreams = 1 + R.nextBelow(4);
  for (size_t S = 0; S < NumStreams; ++S) {
    StreamSpec St;
    // Bias toward the narrow widths the paper's coalescer feeds on, but
    // keep i64 in the mix (never widenable — a pure hazard/ordering case).
    static const unsigned WidthTable[6] = {1, 1, 2, 2, 4, 8};
    St.ElemBytes = WidthTable[R.nextBelow(6)];
    St.RefsPerIter = 1 + static_cast<unsigned>(R.nextBelow(4));
    St.Descending = R.nextBelow(4) == 0;
    St.HasLoad = R.nextBelow(3) != 0;
    St.HasStore = !St.HasLoad || R.nextBelow(2) == 0;
    St.SignExtend = R.nextBelow(2) == 0;
    // Half the streams get a byte-granular base skew so the compiler can
    // never prove alignment statically.
    St.BaseSkew =
        R.nextBelow(2) == 0 ? 0 : static_cast<unsigned>(1 + R.nextBelow(7));
    if (S > 0) {
      uint64_t P = R.nextBelow(4);
      St.Place = P == 2   ? StreamSpec::Placement::Adjacent
                 : P == 3 ? StreamSpec::Placement::Overlapping
                          : StreamSpec::Placement::Disjoint;
      St.OverlapDelta = static_cast<unsigned>(R.nextBelow(64));
    }
    K.Streams.push_back(St);
  }

  if (R.nextBelow(4) == 0)
    K.Shape.OuterTrips = 2 + static_cast<int64_t>(R.nextBelow(2));
  K.Shape.EarlyExit = R.nextBelow(4) == 0;
  K.Shape.ExitMask = (1u << (1 + R.nextBelow(4))) - 1; // 1, 3, 7, 15
  K.Shape.ExitValue = static_cast<unsigned>(R.nextBelow(K.Shape.ExitMask + 1));
  K.AccInit = static_cast<int64_t>(Seed % 251);

  // Trip counts pinned to the boundaries: the zero-trip guard, one below
  // the common unroll factor of 4, and a small prime that never divides
  // the unroll factor.
  static const int64_t Primes[10] = {5, 7, 11, 13, 17, 19, 23, 29, 31, 37};
  K.TripCounts = {0, 3, Primes[R.nextBelow(10)]};
  return K;
}

KernelSpec vpo::fuzz::nearMissSpec(uint64_t Seed) {
  RNG R(Seed * 0x2545f491u + 5);
  KernelSpec K;
  K.Seed = Seed;
  K.SharedBase = true;

  // Two interleaved streams inside one record: a loader at the record
  // start and a storer placed at one of the exact boundaries the
  // disjointness proofs must classify. Byte elements keep every access
  // naturally aligned under any layout skew, so the only question each
  // layout asks is the aliasing one.
  StreamSpec A;
  A.ElemBytes = 1;
  A.RefsPerIter = 1 + static_cast<unsigned>(R.nextBelow(4));
  A.HasLoad = true;
  A.HasStore = false;
  StreamSpec St;
  St.ElemBytes = 1;
  St.RefsPerIter = 1 + static_cast<unsigned>(R.nextBelow(4));
  St.HasLoad = R.nextBelow(2) == 0;
  St.HasStore = true;
  const int64_t G0 = A.groupBytes(), G1 = St.groupBytes();

  enum Pattern {
    ExactAdjacent, ///< store span starts exactly where the load span ends
    DisjointByOne, ///< a single dead byte between the spans
    OverlapByOne,  ///< spans share exactly one byte — must NOT be proven
    PrimeStride,   ///< disjoint spans, prime (non-power-of-two) stride
    OverlapSame,   ///< identical starts — definite overlap
  };
  switch (static_cast<Pattern>(R.nextBelow(5))) {
  case ExactAdjacent:
    St.SharedSkew = G0;
    K.RecordStride = G0 + G1;
    break;
  case DisjointByOne:
    St.SharedSkew = G0 + 1;
    K.RecordStride = G0 + G1 + 1;
    break;
  case OverlapByOne:
    St.SharedSkew = G0 > 1 ? G0 - 1 : 0;
    K.RecordStride = G0 + G1;
    break;
  case PrimeStride: {
    // All larger than the 8-byte worst-case payload, so the spans stay
    // disjoint mod the stride while the stride itself defeats any
    // power-of-two reasoning.
    static const int64_t StridePrimes[6] = {11, 13, 17, 19, 23, 29};
    St.SharedSkew = G0;
    K.RecordStride = StridePrimes[R.nextBelow(6)];
    break;
  }
  case OverlapSame:
    St.SharedSkew = 0;
    K.RecordStride = G0 > G1 ? G0 : G1;
    break;
  }
  K.Streams.push_back(A);
  K.Streams.push_back(St);

  // Sometimes a third, load-only stream exactly adjacent to the record's
  // end — one more partition pair on the proven-disjoint side.
  if (R.nextBelow(3) == 0) {
    StreamSpec C;
    C.ElemBytes = 1;
    C.RefsPerIter = 1 + static_cast<unsigned>(R.nextBelow(3));
    C.HasLoad = true;
    C.HasStore = false;
    C.SharedSkew = K.RecordStride;
    K.RecordStride += C.groupBytes();
    K.Streams.push_back(C);
  }

  if (R.nextBelow(4) == 0)
    K.Shape.OuterTrips = 2;
  K.Shape.EarlyExit = R.nextBelow(8) == 0;
  K.Shape.ExitMask = (1u << (1 + R.nextBelow(4))) - 1;
  K.Shape.ExitValue = static_cast<unsigned>(R.nextBelow(K.Shape.ExitMask + 1));
  K.AccInit = static_cast<int64_t>(Seed % 251);

  static const int64_t Primes[10] = {5, 7, 11, 13, 17, 19, 23, 29, 31, 37};
  K.TripCounts = {0, 3, Primes[R.nextBelow(10)]};
  return K;
}

namespace {

/// Per-reference choices shared by the IR and C renderings so both walk
/// the streams identically (they are still independent fuzz subjects; the
/// sharing just keeps the generator's decision stream in one place).
struct RefDecision {
  Opcode Mix = Opcode::Add; ///< how a loaded value folds into acc
  size_t StoreSrc = 0;      ///< index into the body's value list (0 = acc)
};

struct Decisions {
  std::vector<std::vector<RefDecision>> PerStream;
};

Decisions decide(const KernelSpec &K) {
  RNG R(K.Seed * 131 + 7);
  Decisions D;
  static const Opcode MixTable[4] = {Opcode::Add, Opcode::Sub, Opcode::Xor,
                                     Opcode::Or};
  size_t ValuesSoFar = 1; // acc
  for (const StreamSpec &St : K.Streams) {
    std::vector<RefDecision> Refs;
    for (unsigned E = 0; E < St.RefsPerIter; ++E) {
      RefDecision RD;
      RD.Mix = MixTable[R.nextBelow(4)];
      if (St.HasLoad)
        ++ValuesSoFar;
      if (St.HasStore)
        RD.StoreSrc = R.nextBelow(ValuesSoFar);
      Refs.push_back(RD);
    }
    D.PerStream.push_back(std::move(Refs));
  }
  return D;
}

/// The early-exit path returns `acc ^ kEarlyExitXor` so a wrong exit
/// taken/not-taken shows up in the return value, not just in trip counts.
constexpr int64_t kEarlyExitXor = 23130; // 0x5a5a

std::string buildIR(const KernelSpec &K, const Decisions &D) {
  Module M;
  Function *F = M.addFunction("k");
  std::vector<Reg> Bases;
  if (K.SharedBase) {
    // One pointer parameter; every stream cursor derives from it.
    Reg Shared = F->addParam();
    Bases.assign(K.Streams.size(), Shared);
  } else {
    for (size_t S = 0; S < K.Streams.size(); ++S)
      Bases.push_back(F->addParam());
  }
  Reg N = F->addParam();
  IRBuilder B(F);

  BasicBlock *Entry = B.createBlock("entry");
  BasicBlock *OuterHead = F->addBlock("outer");
  BasicBlock *Body = F->addBlock("body");
  BasicBlock *Cont =
      K.Shape.EarlyExit ? F->addBlock("cont") : Body;
  BasicBlock *OuterLatch = F->addBlock("latch");
  BasicBlock *Early = K.Shape.EarlyExit ? F->addBlock("early") : nullptr;
  BasicBlock *Exit = F->addBlock("exit");

  B.setInsertBlock(Entry);
  Reg Acc = B.mov(Operand::imm(K.AccInit));
  Reg Outer = B.mov(Operand::imm(0));
  B.br(CondCode::LEs, N, Operand::imm(0), Exit, OuterHead);

  // Outer head: re-derive every stream pointer from its (skewed) base, so
  // each outer pass walks the same elements again. RTL registers are not
  // SSA: re-executing these defs resets the pointers mutated by the body.
  B.setInsertBlock(OuterHead);
  std::vector<Reg> Ptrs;
  Reg Limit = Reg();
  for (size_t S = 0; S < K.Streams.size(); ++S) {
    const StreamSpec &St = K.Streams[S];
    int64_t Group = K.SharedBase ? K.RecordStride : St.groupBytes();
    int64_t Skew =
        int64_t(St.BaseSkew) + (K.SharedBase ? St.SharedSkew : 0);
    Reg SBase = B.add(Bases[S], Operand::imm(Skew));
    Reg Ptr;
    if (!St.Descending) {
      Ptr = B.add(SBase, Operand::imm(0));
    } else {
      Reg Total = B.mul(N, Operand::imm(Group));
      Reg End = B.add(SBase, Total);
      Ptr = B.sub(End, Operand::imm(Group));
    }
    Ptrs.push_back(Ptr);
    if (S == 0) {
      // Loop bound on stream 0's pointer.
      if (!St.Descending) {
        Reg Total = B.mul(N, Operand::imm(Group));
        Limit = B.add(SBase, Total);
      } else {
        Limit = B.sub(SBase, Operand::imm(Group));
      }
    }
  }
  B.jmp(Body);

  B.setInsertBlock(Body);
  std::vector<Reg> Values = {Acc};
  for (size_t S = 0; S < K.Streams.size(); ++S) {
    const StreamSpec &St = K.Streams[S];
    MemWidth W = widthFromBytes(St.ElemBytes);
    for (unsigned E = 0; E < St.RefsPerIter; ++E) {
      const RefDecision &RD = D.PerStream[S][E];
      int64_t Off = int64_t(E) * St.ElemBytes;
      if (St.HasLoad) {
        Reg V = B.load(Address(Ptrs[S], Off), W, St.SignExtend);
        Values.push_back(V);
        B.aluTo(Acc, RD.Mix, Acc, V);
      }
      if (St.HasStore)
        B.store(Address(Ptrs[S], Off), Values[RD.StoreSrc], W);
    }
  }
  if (K.Shape.EarlyExit) {
    Reg Masked = B.and_(Acc, Operand::imm(int64_t(K.Shape.ExitMask)));
    B.br(CondCode::EQ, Masked, Operand::imm(int64_t(K.Shape.ExitValue)),
         Early, Cont);
    B.setInsertBlock(Cont);
  }
  for (size_t S = 0; S < K.Streams.size(); ++S) {
    const StreamSpec &St = K.Streams[S];
    int64_t Step = K.SharedBase ? K.RecordStride : St.groupBytes();
    B.aluTo(Ptrs[S], St.Descending ? Opcode::Sub : Opcode::Add, Ptrs[S],
            Operand::imm(Step));
  }
  CondCode CC = K.Streams[0].Descending ? CondCode::GTu : CondCode::LTu;
  B.br(CC, Ptrs[0], Limit, Body, OuterLatch);

  B.setInsertBlock(OuterLatch);
  B.aluTo(Outer, Opcode::Add, Outer, Operand::imm(1));
  B.br(CondCode::LTs, Outer, Operand::imm(K.Shape.OuterTrips), OuterHead,
       Exit);

  if (Early) {
    B.setInsertBlock(Early);
    Reg EarlyRet = B.xor_(Acc, Operand::imm(kEarlyExitXor));
    B.ret(EarlyRet);
  }

  B.setInsertBlock(Exit);
  B.ret(Acc);
  return printFunction(*F);
}

const char *cTypeName(const StreamSpec &St) {
  switch (St.ElemBytes) {
  case 1:
    return St.SignExtend ? "char" : "unsigned char";
  case 2:
    return St.SignExtend ? "short" : "unsigned short";
  case 4:
    return St.SignExtend ? "int" : "unsigned int";
  default:
    return "long";
  }
}

const char *cMixOp(Opcode Op) {
  switch (Op) {
  case Opcode::Sub:
    return "-";
  case Opcode::Xor:
    return "^";
  case Opcode::Or:
    return "|";
  default:
    return "+";
  }
}

/// `pS[Refs * i + C]`, or the reversed index for descending streams.
std::string cIndexExpr(const StreamSpec &St, unsigned E) {
  int64_t SkewElems = int64_t(St.BaseSkew) / St.ElemBytes;
  int64_t Addend = SkewElems + E;
  std::string Iv = St.Descending ? "(n - 1 - i)" : "i";
  return std::to_string(St.RefsPerIter) + " * " + Iv + " + " +
         std::to_string(Addend);
}

std::string buildC(const KernelSpec &K, const Decisions &D) {
  // Shared-base specs (all cursors derived from one parameter, stepping
  // by a uniform record stride) have no typed-C spelling; IR-only.
  if (K.SharedBase)
    return std::string();
  // Byte-granular skews have no typed-C spelling; those specs stay
  // IR-only.
  for (const StreamSpec &St : K.Streams)
    if (St.BaseSkew % St.ElemBytes != 0)
      return std::string();

  std::string C;
  C += "long k(";
  for (size_t S = 0; S < K.Streams.size(); ++S) {
    C += cTypeName(K.Streams[S]);
    C += " *p" + std::to_string(S) + ", ";
  }
  C += "long n) {\n";
  C += "  long acc = " + std::to_string(K.AccInit) + ";\n";
  C += "  long i = 0;\n  long j = 0;\n";
  // Hoisted temporaries, one per load in body order.
  size_t NumLoads = 0;
  for (const StreamSpec &St : K.Streams)
    if (St.HasLoad)
      NumLoads += St.RefsPerIter;
  for (size_t T = 1; T <= NumLoads; ++T)
    C += "  long t" + std::to_string(T) + " = 0;\n";

  C += "  for (j = 0; j < " + std::to_string(K.Shape.OuterTrips) +
       "; j++) {\n";
  C += "    for (i = 0; i < n; i++) {\n";
  size_t Temp = 0;
  // Value list mirrors the IR body: index 0 is acc, then each load.
  std::vector<std::string> Values = {"acc"};
  for (size_t S = 0; S < K.Streams.size(); ++S) {
    const StreamSpec &St = K.Streams[S];
    std::string P = "p" + std::to_string(S);
    for (unsigned E = 0; E < St.RefsPerIter; ++E) {
      const RefDecision &RD = D.PerStream[S][E];
      std::string Idx = P + "[" + cIndexExpr(St, E) + "]";
      if (St.HasLoad) {
        std::string T = "t" + std::to_string(++Temp);
        C += "      " + T + " = " + Idx + ";\n";
        C += "      acc = acc ";
        C += cMixOp(RD.Mix);
        C += " " + T + ";\n";
        Values.push_back(T);
      }
      if (St.HasStore)
        C += "      " + Idx + " = " + Values[RD.StoreSrc] + ";\n";
    }
  }
  if (K.Shape.EarlyExit) {
    C += "      if ((acc & " + std::to_string(K.Shape.ExitMask) +
         ") == " + std::to_string(K.Shape.ExitValue) + ") {\n";
    C += "        return acc ^ " + std::to_string(kEarlyExitXor) + ";\n";
    C += "      }\n";
  }
  C += "    }\n  }\n";
  C += "  return acc;\n}\n";
  return C;
}

uint64_t alignUp(uint64_t X, uint64_t A) { return (X + A - 1) & ~(A - 1); }

} // namespace

GeneratedKernel vpo::fuzz::generateKernel(const KernelSpec &Spec) {
  Decisions D = decide(Spec);
  GeneratedKernel K;
  K.Spec = Spec;
  K.IRText = buildIR(Spec, D);
  K.CSource = buildC(Spec, D);
  return K;
}

std::vector<int64_t> vpo::fuzz::setupKernelMemory(const KernelSpec &Spec,
                                                  int64_t N, Memory &Mem,
                                                  size_t LayoutSkew) {
  RNG Fill(Spec.Seed * 9 + 1);
  std::vector<int64_t> Args;
  if (Spec.SharedBase) {
    // One allocation covering every stream's walk. Near-miss specs use
    // byte elements throughout, so any base alignment is access-safe and
    // LayoutSkew passes straight through.
    uint64_t MaxSkewEnd = 0;
    for (const StreamSpec &St : Spec.Streams) {
      uint64_t End = uint64_t(St.SharedSkew + int64_t(St.BaseSkew) +
                              St.groupBytes());
      if (End > MaxSkewEnd)
        MaxSkewEnd = End;
    }
    uint64_t Span =
        N > 0 ? uint64_t(N) * uint64_t(Spec.RecordStride) : 0;
    uint64_t Touched = MaxSkewEnd + Span;
    uint64_t Base = Mem.allocate(Touched + 64, 8, LayoutSkew);
    for (uint64_t I = 0; I < Touched; ++I)
      Mem.write(Base + I, 1, Fill.next() & 0xff);
    Args.push_back(static_cast<int64_t>(Base));
    Args.push_back(N);
    return Args;
  }
  uint64_t PrevSpanStart = 0, PrevSpanEnd = 0;
  for (size_t S = 0; S < Spec.Streams.size(); ++S) {
    const StreamSpec &St = Spec.Streams[S];
    uint64_t Elem = St.ElemBytes;
    uint64_t Span = N > 0 ? uint64_t(N) * uint64_t(St.groupBytes()) : 0;
    uint64_t Base;
    if (S == 0 || St.Place == StreamSpec::Placement::Disjoint) {
      // Solve for an allocation skew that keeps the *absolute* element
      // addresses naturally aligned despite the kernel-side BaseSkew:
      // allocate() returns an 8-aligned address plus the skew, and every
      // element size divides 8, so only (skew + BaseSkew) % Elem matters.
      uint64_t Skew =
          LayoutSkew + (Elem - (LayoutSkew + St.BaseSkew) % Elem) % Elem;
      Base = Mem.allocate(St.BaseSkew + Span + 64, 8, Skew);
    } else {
      // Adjacent/overlapping placements derive the span start from the
      // previous stream, then reserve (without using) enough fresh arena
      // to keep every touched byte below the allocator's high-water mark.
      uint64_t Start;
      if (St.Place == StreamSpec::Placement::Adjacent) {
        Start = alignUp(PrevSpanEnd, Elem);
      } else {
        uint64_t PrevSpan = PrevSpanEnd - PrevSpanStart;
        uint64_t Delta =
            PrevSpan == 0 ? 0 : St.OverlapDelta % (PrevSpan + 1);
        Start = alignUp(PrevSpanStart + Delta, Elem);
      }
      Base = Start - St.BaseSkew;
      Mem.allocate(St.BaseSkew + Span + 128, 1, 0);
    }
    uint64_t SpanStart = Base + St.BaseSkew;
    for (uint64_t I = 0; I < Span; ++I)
      Mem.write(SpanStart + I, 1, Fill.next() & 0xff);
    PrevSpanStart = SpanStart;
    PrevSpanEnd = SpanStart + Span;
    Args.push_back(static_cast<int64_t>(Base));
  }
  Args.push_back(N);
  return Args;
}
