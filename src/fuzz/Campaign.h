//===- fuzz/Campaign.h - Deterministic fuzzing campaign runner --*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives N fuzz cases from one campaign seed. Per-case seeds are a pure
/// mix of (campaign seed, case index), cases run on an atomic-cursor
/// worker pool with results stored by submission index, and the summary
/// excludes timing — so a campaign's report is byte-identical at any
/// thread count (the seed-determinism guarantee, enforced by
/// tests/fuzz/fuzz_determinism_test.cpp).
///
/// The per-case executor is pluggable: the default runs the oracle
/// in-process; the fuzz_coalesce driver substitutes a fork-contained
/// executor (fuzz/Watchdog.h) in single-threaded mode so a crash or hang
/// in one case cannot take down the campaign. Serialization of an
/// OracleResult across the containment pipe lives here too, next to its
/// only consumer.
///
//===----------------------------------------------------------------------===//

#ifndef VPO_FUZZ_CAMPAIGN_H
#define VPO_FUZZ_CAMPAIGN_H

#include "fuzz/Oracle.h"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace vpo {
namespace fuzz {

/// \returns the seed for case \p Index of a campaign (SplitMix64 over the
/// pair, so neighbouring cases get unrelated kernels).
uint64_t caseSeed(uint64_t CampaignSeed, unsigned Index);

struct CaseOutcome {
  unsigned Index = 0;
  uint64_t Seed = 0;
  OracleResult Result;
  /// True when the watchdog had to intervene (Result.Kind is then
  /// Crashed or TimedOut and Detail carries the classification).
  bool Contained = false;
};

using CaseExecutor =
    std::function<OracleResult(const GeneratedKernel &, const OracleOptions &)>;

struct CampaignOptions {
  uint64_t Seed = 1;
  unsigned Cases = 100;
  /// Worker threads; 0 = hardware concurrency.
  unsigned Threads = 1;
  OracleOptions Oracle;
  /// Generate near-miss layouts (nearMissSpec: shared-base streams at the
  /// exact disjoint/overlap boundaries) instead of fully random specs.
  bool NearMiss = false;
  /// Per-case executor; default = checkKernel in-process.
  CaseExecutor Executor;
};

struct CampaignReport {
  uint64_t Seed = 0;
  std::vector<CaseOutcome> Outcomes; ///< by case index

  unsigned failures() const;
  /// Watchdog interventions (crashes + timeouts) plus generator-invalid
  /// verdicts — problems attributable to the harness, not the compiler.
  unsigned harnessProblems() const;
  /// Deterministic text: totals plus one line per failing case. No
  /// timing, no thread count.
  std::string summary() const;
};

/// Runs the campaign. Blocks until every case is done.
CampaignReport runCampaign(const CampaignOptions &O);

/// Serializes \p R for the containment pipe (single line-oriented block).
std::string serializeOracleResult(const OracleResult &R);
/// Inverse of serializeOracleResult. \returns false on malformed input.
bool deserializeOracleResult(const std::string &Text, OracleResult &R);

/// A CaseExecutor that forks per case (fuzz/Watchdog.h): crashes become
/// FailKind::Crashed, hangs FailKind::TimedOut. Falls back to in-process
/// execution where fork is unavailable. Only safe while the process is
/// single-threaded.
CaseExecutor makeContainedExecutor(unsigned TimeoutMs);

} // namespace fuzz
} // namespace vpo

#endif // VPO_FUZZ_CAMPAIGN_H
