//===- fuzz/Watchdog.h - Crash and timeout containment ----------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs untrusted work (a fuzz case: compile + simulate of generated IR)
/// in a forked child under a wall-clock deadline, so a crash or hang in
/// the pipeline kills one case, not the campaign. The child reports its
/// result through a pipe; the parent classifies the outcome as Completed
/// (with the child's exit code and pipe output), Crashed (signal number),
/// or TimedOut (SIGKILL after the deadline).
///
/// The interpreter's own instruction budget (InterpreterOptions::MaxSteps)
/// is the first line of defence against runaway *simulated* code; the
/// watchdog is the backstop for bugs in the *host* code — an infinite loop
/// or assertion failure inside a pass.
///
/// fork() from a multi-threaded process is not async-signal-safe
/// territory, so containment is only offered to single-threaded callers;
/// the campaign runner uses in-process execution when running on a pool.
///
//===----------------------------------------------------------------------===//

#ifndef VPO_FUZZ_WATCHDOG_H
#define VPO_FUZZ_WATCHDOG_H

#include <cstddef>
#include <functional>
#include <string>

namespace vpo {
namespace fuzz {

struct ContainedOutcome {
  enum class Kind : uint8_t {
    Completed,      ///< child exited; see ExitCode and Output
    Crashed,        ///< child died on a signal; see Signal
    TimedOut,       ///< deadline expired; child was SIGKILLed
    ForkUnavailable ///< platform cannot fork; caller must run inline
  };
  Kind K = Kind::Completed;
  int ExitCode = 0;
  int Signal = 0;
  std::string Output; ///< bytes the child wrote to its result pipe
};

/// \returns true when runContained can actually fork on this platform.
bool watchdogCanFork();

/// Forks, runs \p Fn in the child (its return value becomes the exit
/// code; \p WriteFd is the result pipe), and waits at most \p TimeoutMs.
/// Child output beyond \p MaxOutputBytes is discarded.
ContainedOutcome runContained(const std::function<int(int WriteFd)> &Fn,
                              unsigned TimeoutMs,
                              size_t MaxOutputBytes = size_t(1) << 20);

/// Writes all of \p S to \p Fd (the child side of the result pipe),
/// retrying short writes. A no-op on platforms without fork.
void writeAll(int Fd, const std::string &S);

} // namespace fuzz
} // namespace vpo

#endif // VPO_FUZZ_WATCHDOG_H
