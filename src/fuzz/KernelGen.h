//===- fuzz/KernelGen.h - Seeded random kernel generator --------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded generator of small loop kernels for differential fuzzing of the
/// coalescing pipeline. A KernelSpec is a pure function of its seed and
/// describes one to four pointer streams (mixed element widths, ascending
/// or descending, load and/or store per iteration) walked by a counted
/// loop, optionally nested under an outer loop and optionally cut short by
/// a data-dependent early exit (multi-exit control flow).
///
/// The spec deliberately biases toward the hazard and run-time-check
/// boundaries the coalescer must get right: skewed base pointers (the
/// kernel adds a small constant to each incoming base, so static alignment
/// is unknowable), streams placed exactly adjacent to or overlapping the
/// previous stream's region, and trip counts pinned to {0, unroll-1, a
/// small prime} rather than round numbers.
///
/// Each spec renders to two independent programs over the same memory
/// layout: direct RTL text (always) and mini-C source (when the spec stays
/// inside the frontend/CFront.h dialect — byte-granular base skews are
/// IR-only). The two are *separate* fuzz subjects, each checked
/// self-differentially by the oracle; they are not required to compute the
/// same function.
///
/// Generation is deterministic: the same seed produces byte-identical
/// kernel text on every platform (support/RNG.h), which the corpus format
/// and the seed-determinism test rely on.
///
//===----------------------------------------------------------------------===//

#ifndef VPO_FUZZ_KERNELGEN_H
#define VPO_FUZZ_KERNELGEN_H

#include <cstdint>
#include <string>
#include <vector>

namespace vpo {

class Memory;

namespace fuzz {

/// One pointer stream walked by the generated loop.
struct StreamSpec {
  unsigned ElemBytes = 1;   ///< 1, 2, 4, or 8
  unsigned RefsPerIter = 1; ///< consecutive elements touched per iteration
  bool Descending = false;
  bool HasLoad = true;
  bool HasStore = false;
  bool SignExtend = false; ///< sign- vs zero-extend narrow loads
  /// Constant byte offset the kernel adds to the incoming base
  /// (`p = base + BaseSkew`), defeating static alignment knowledge. The
  /// memory setup solves for an allocation that keeps the *absolute*
  /// element addresses naturally aligned, so no scenario traps.
  unsigned BaseSkew = 0;
  /// Placement of this stream's region relative to the previous stream.
  /// Stream 0 is always Disjoint. Adjacent = the two spans touch but do
  /// not overlap (the exact boundary the overlap checks must classify as
  /// safe); Overlapping forces the run-time checks to fail and the safe
  /// path to run.
  enum class Placement : uint8_t { Disjoint, Adjacent, Overlapping };
  Placement Place = Placement::Disjoint;
  /// For Overlapping: byte distance from the previous span's start
  /// (clamped to that span; 0 = same start).
  unsigned OverlapDelta = 0;
  /// Shared-base mode only (KernelSpec::SharedBase): byte offset of this
  /// stream's cursor from the single shared base parameter. Every cursor
  /// advances by the spec's RecordStride, so the stream's footprint is the
  /// residue classes [SharedSkew, SharedSkew + groupBytes()) mod stride —
  /// exactly what the offset-propagation residue rule reasons about.
  int64_t SharedSkew = 0;

  int64_t groupBytes() const {
    return int64_t(ElemBytes) * RefsPerIter;
  }
};

/// Loop/control shape.
struct ShapeSpec {
  /// Outer-loop trip count; 1 = a flat loop, >1 re-walks every stream from
  /// its (re-derived) start so stores of one outer pass feed loads of the
  /// next.
  int64_t OuterTrips = 1;
  /// Emit a data-dependent `if ((acc & ExitMask) == ExitValue) return ...`
  /// in the loop body — a second function exit out of the middle of the
  /// loop.
  bool EarlyExit = false;
  unsigned ExitMask = 7;
  unsigned ExitValue = 0;
};

struct KernelSpec {
  uint64_t Seed = 0;
  std::vector<StreamSpec> Streams;
  ShapeSpec Shape;
  int64_t AccInit = 0;
  /// Inner trip counts the oracle exercises; always contains 0 and values
  /// straddling the unroll factor.
  std::vector<int64_t> TripCounts;
  /// Near-miss layout mode: the kernel takes ONE pointer parameter and
  /// every stream cursor is derived from it (`base + SharedSkew`), so
  /// no-alias parameter facts can never separate the streams — only the
  /// offset analysis (or a run-time check) can. All cursors step by
  /// RecordStride bytes per iteration.
  bool SharedBase = false;
  int64_t RecordStride = 0; ///< uniform per-iteration step (SharedBase only)

  /// Derives a spec from \p Seed alone (pure, deterministic).
  static KernelSpec random(uint64_t Seed);
};

/// Derives a shared-base *near-miss* spec from \p Seed: streams interleaved
/// within a record at the exact boundaries the disjointness proofs must
/// classify correctly — exactly adjacent, disjoint by a single byte,
/// overlapping by a single byte, prime (non-power-of-two) record strides,
/// and identical starts. Pure and deterministic, like KernelSpec::random.
KernelSpec nearMissSpec(uint64_t Seed);

struct GeneratedKernel {
  KernelSpec Spec;
  std::string IRText; ///< RTL text, parseable by ir/IRParser.h
  /// Mini-C rendering, or empty when the spec uses IR-only features
  /// (byte-granular base skews).
  std::string CSource;
};

/// Renders \p Spec. Deterministic: equal specs yield byte-identical text.
GeneratedKernel generateKernel(const KernelSpec &Spec);

/// Convenience: random spec for \p Seed, rendered.
inline GeneratedKernel generateKernel(uint64_t Seed) {
  return generateKernel(KernelSpec::random(Seed));
}

/// Allocates and seeds every stream's region in \p Mem for inner trip
/// count \p N, honouring the spec's placements, and \returns the kernel's
/// argument vector (stream bases, then N; for SharedBase specs the single
/// shared base, then N). \p LayoutSkew adds extra misalignment (rounded
/// per stream so element addresses stay naturally aligned) — the scenario
/// knob that flips the alignment run-time checks.
std::vector<int64_t> setupKernelMemory(const KernelSpec &Spec, int64_t N,
                                       Memory &Mem, size_t LayoutSkew);

} // namespace fuzz
} // namespace vpo

#endif // VPO_FUZZ_KERNELGEN_H
