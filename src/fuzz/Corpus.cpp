//===- fuzz/Corpus.cpp - Minimized repro corpus I/O -------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Corpus.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

using namespace vpo;
using namespace vpo::fuzz;

std::string CorpusEntry::render() const {
  std::ostringstream S;
  S << "# fuzz-repro specseed=" << SpecSeed << " kind=" << failKindName(Kind)
    << " expect=" << (ExpectDetect ? "detect" : "match");
  if (NearMiss)
    S << " mode=near-miss";
  S << "\n";
  if (Inject)
    S << "# inject=" << Inject->render() << "\n";
  if (!Note.empty())
    S << "# note: " << Note << "\n";
  S << IRText;
  if (!IRText.empty() && IRText.back() != '\n')
    S << "\n";
  return S.str();
}

namespace {

/// Splits "key=value" tokens out of a header line.
bool parseHeaderFields(const std::string &Line, CorpusEntry &Entry,
                       std::string &Err) {
  std::istringstream S(Line);
  std::string Tok;
  while (S >> Tok) {
    size_t Eq = Tok.find('=');
    if (Eq == std::string::npos)
      continue;
    std::string Key = Tok.substr(0, Eq), Val = Tok.substr(Eq + 1);
    if (Key == "specseed") {
      Entry.SpecSeed = std::strtoull(Val.c_str(), nullptr, 10);
    } else if (Key == "kind") {
      auto K = failKindFromName(Val);
      if (!K) {
        Err = "unknown kind '" + Val + "'";
        return false;
      }
      Entry.Kind = *K;
    } else if (Key == "expect") {
      if (Val != "detect" && Val != "match") {
        Err = "expect must be 'detect' or 'match', got '" + Val + "'";
        return false;
      }
      Entry.ExpectDetect = Val == "detect";
    } else if (Key == "mode") {
      if (Val != "near-miss" && Val != "random") {
        Err = "mode must be 'near-miss' or 'random', got '" + Val + "'";
        return false;
      }
      Entry.NearMiss = Val == "near-miss";
    }
  }
  return true;
}

} // namespace

bool vpo::fuzz::parseCorpusEntry(const std::string &Contents,
                                 CorpusEntry &Entry, std::string &Err) {
  std::istringstream S(Contents);
  std::string Line;
  bool SawHeader = false;
  std::string Body;
  while (std::getline(S, Line)) {
    if (Line.rfind("# fuzz-repro", 0) == 0) {
      if (!parseHeaderFields(Line.substr(12), Entry, Err))
        return false;
      SawHeader = true;
      continue;
    }
    if (Line.rfind("# inject=", 0) == 0) {
      auto I = InjectSpec::parse(Line.substr(9));
      if (!I) {
        Err = "malformed inject line: " + Line;
        return false;
      }
      Entry.Inject = *I;
      continue;
    }
    if (Line.rfind("# note: ", 0) == 0) {
      Entry.Note = Line.substr(8);
      continue;
    }
    Body += Line;
    Body += '\n';
  }
  if (!SawHeader) {
    Err = "missing '# fuzz-repro' header";
    return false;
  }
  Entry.IRText = std::move(Body);
  return true;
}

bool vpo::fuzz::loadCorpusFile(const std::string &Path, CorpusEntry &Entry,
                               std::string &Err) {
  std::ifstream In(Path);
  if (!In) {
    Err = "cannot open " + Path;
    return false;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  Entry.Path = Path;
  if (!parseCorpusEntry(Buf.str(), Entry, Err)) {
    Err = Path + ": " + Err;
    return false;
  }
  return true;
}

bool vpo::fuzz::writeCorpusFile(const std::string &Path,
                                const CorpusEntry &Entry) {
  std::ofstream Out(Path);
  if (!Out)
    return false;
  Out << Entry.render();
  return static_cast<bool>(Out);
}

std::vector<std::string> vpo::fuzz::listCorpusFiles(const std::string &Dir) {
  std::vector<std::string> Files;
  std::error_code EC;
  for (const auto &E : std::filesystem::directory_iterator(Dir, EC)) {
    if (!E.is_regular_file())
      continue;
    if (E.path().extension() == ".ir")
      Files.push_back(E.path().string());
  }
  std::sort(Files.begin(), Files.end());
  return Files;
}

bool vpo::fuzz::replayCorpusEntry(const CorpusEntry &Entry,
                                  OracleOptions Base, std::string &Why) {
  KernelSpec Spec = Entry.NearMiss ? nearMissSpec(Entry.SpecSeed)
                                   : KernelSpec::random(Entry.SpecSeed);
  Base.Inject = Entry.ExpectDetect ? Entry.Inject : std::nullopt;
  OracleResult R = checkIRText(Entry.IRText, Spec, Base);
  if (Entry.ExpectDetect) {
    if (R.Kind != Entry.Kind) {
      Why = std::string("expected ") + failKindName(Entry.Kind) + ", got " +
            R.render();
      return false;
    }
    return true;
  }
  if (!R.passed()) {
    Why = "expected clean pass, got " + R.render();
    return false;
  }
  return true;
}
