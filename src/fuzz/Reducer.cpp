//===- fuzz/Reducer.cpp - Delta-debugging test-case reducer -----*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Reducer.h"

#include "ir/Function.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"

#include <memory>
#include <set>

using namespace vpo;
using namespace vpo::fuzz;

namespace {

enum class MutKind : uint8_t {
  BrToJmp,    ///< collapse a conditional branch to one side
  DropInst,   ///< delete a non-terminator instruction
  RetImmZero, ///< return 0 instead of a register
  ZeroImm,    ///< immediate operand -> 0
  HalveImm,   ///< immediate operand -> half (toward zero)
  ZeroDisp,   ///< address displacement -> 0
  HalveDisp,  ///< address displacement -> half
};

struct Mutation {
  MutKind K;
  size_t Block = 0;
  size_t Inst = 0;
  int Slot = 0; ///< BrToJmp: 0 = keep true side, 1 = false side;
                ///< Zero/HalveImm: 0 = A, 1 = B, 2 = C
};

Function *firstFunction(Module &M) {
  return M.functions().empty() ? nullptr : M.functions().front().get();
}

/// All candidate mutations of \p F, coarse first (branch collapses kill
/// whole loops, instruction drops one line, immediate shrinks last).
std::vector<Mutation> enumerate(const Function &F) {
  std::vector<Mutation> Out;
  const auto &Blocks = F.blocks();
  for (size_t B = 0; B < Blocks.size(); ++B) {
    const BasicBlock &BB = *Blocks[B];
    if (!BB.empty() && BB.terminator().Op == Opcode::Br) {
      Out.push_back({MutKind::BrToJmp, B, BB.size() - 1, 0});
      Out.push_back({MutKind::BrToJmp, B, BB.size() - 1, 1});
    }
  }
  for (size_t B = 0; B < Blocks.size(); ++B) {
    const BasicBlock &BB = *Blocks[B];
    if (BB.empty())
      continue;
    // Reverse order: later instructions usually depend on earlier ones,
    // so deleting from the back succeeds more often.
    for (size_t I = BB.size() - 1; I-- > 0;)
      Out.push_back({MutKind::DropInst, B, I, 0});
    const Instruction &T = BB.terminator();
    if (T.Op == Opcode::Ret && T.A.isReg())
      Out.push_back({MutKind::RetImmZero, B, BB.size() - 1, 0});
  }
  for (size_t B = 0; B < Blocks.size(); ++B) {
    const BasicBlock &BB = *Blocks[B];
    for (size_t I = 0; I < BB.size(); ++I) {
      const Instruction &In = BB.insts()[I];
      const Operand *Ops[3] = {&In.A, &In.B, &In.C};
      for (int S = 0; S < 3; ++S) {
        if (!Ops[S]->isImm())
          continue;
        int64_t V = Ops[S]->imm();
        if (V != 0)
          Out.push_back({MutKind::ZeroImm, B, I, S});
        if (V >= 2 || V <= -2)
          Out.push_back({MutKind::HalveImm, B, I, S});
      }
      if (In.Addr.Base.isValid()) {
        if (In.Addr.Disp != 0)
          Out.push_back({MutKind::ZeroDisp, B, I, 0});
        if (In.Addr.Disp >= 2 || In.Addr.Disp <= -2)
          Out.push_back({MutKind::HalveDisp, B, I, 0});
      }
    }
  }
  return Out;
}

/// Deletes blocks unreachable from the entry (collapsed branches strand
/// them; the printer would still print them).
void dropUnreachable(Function &F) {
  if (F.blocks().empty())
    return;
  std::set<const BasicBlock *> Reached;
  std::vector<const BasicBlock *> Work = {F.entry()};
  while (!Work.empty()) {
    const BasicBlock *BB = Work.back();
    Work.pop_back();
    if (!Reached.insert(BB).second)
      continue;
    for (BasicBlock *S : BB->successors())
      Work.push_back(S);
  }
  std::vector<BasicBlock *> Dead;
  for (const auto &BB : F.blocks())
    if (!Reached.count(BB.get()))
      Dead.push_back(BB.get());
  for (BasicBlock *BB : Dead)
    F.removeBlock(BB);
}

/// Applies \p M to \p F. \returns false when the mutation no longer fits
/// the (re-parsed) function shape.
bool apply(Function &F, const Mutation &M) {
  if (M.Block >= F.blocks().size())
    return false;
  BasicBlock &BB = *F.blocks()[M.Block];
  if (M.Inst >= BB.size())
    return false;
  Instruction &In = BB.insts()[M.Inst];
  switch (M.K) {
  case MutKind::BrToJmp: {
    if (In.Op != Opcode::Br)
      return false;
    BasicBlock *Kept = M.Slot == 0 ? In.TrueTarget : In.FalseTarget;
    if (!Kept)
      return false;
    In.Op = Opcode::Jmp;
    In.A = Operand();
    In.B = Operand();
    In.TrueTarget = Kept;
    In.FalseTarget = nullptr;
    dropUnreachable(F);
    return true;
  }
  case MutKind::DropInst:
    if (M.Inst + 1 == BB.size())
      return false; // never drop the terminator
    BB.eraseAt(M.Inst);
    return true;
  case MutKind::RetImmZero:
    if (In.Op != Opcode::Ret || !In.A.isReg())
      return false;
    In.A = Operand::imm(0);
    return true;
  case MutKind::ZeroImm:
  case MutKind::HalveImm: {
    Operand *Ops[3] = {&In.A, &In.B, &In.C};
    Operand &Op = *Ops[M.Slot];
    if (!Op.isImm())
      return false;
    Op = Operand::imm(M.K == MutKind::ZeroImm ? 0 : Op.imm() / 2);
    return true;
  }
  case MutKind::ZeroDisp:
    In.Addr.Disp = 0;
    return true;
  case MutKind::HalveDisp:
    In.Addr.Disp /= 2;
    return true;
  }
  return false;
}

} // namespace

size_t vpo::fuzz::countInstructions(const std::string &IRText) {
  auto M = parseModule(IRText);
  if (!M)
    return 0;
  Function *F = firstFunction(*M);
  if (!F)
    return 0;
  size_t N = 0;
  for (const auto &BB : F->blocks())
    N += BB->size();
  return N;
}

ReduceResult vpo::fuzz::reduceIRText(
    const std::string &IRText,
    const std::function<bool(const std::string &)> &StillInteresting,
    const ReduceOptions &O) {
  ReduceResult Res;
  Res.IRText = IRText;
  Res.OriginalInsts = countInstructions(IRText);
  Res.FinalInsts = Res.OriginalInsts;
  if (Res.OriginalInsts == 0)
    return Res; // unparseable input: nothing to do

  for (unsigned Sweep = 0; Sweep < O.MaxSweeps; ++Sweep) {
    bool Progress = false;
    size_t Idx = 0;
    while (Res.Probes < O.MaxProbes) {
      // Enumerate against the current text; after an acceptance the list
      // shifts, so re-derive it and continue from the same index (the
      // next unvisited candidate).
      auto Cur = parseModule(Res.IRText);
      if (!Cur)
        break;
      Function *F = firstFunction(*Cur);
      if (!F)
        break;
      std::vector<Mutation> Cands = enumerate(*F);
      if (Idx >= Cands.size())
        break;
      if (apply(*F, Cands[Idx])) {
        std::string Cand = printFunction(*F);
        if (Cand != Res.IRText) {
          ++Res.Probes;
          if (StillInteresting(Cand)) {
            Res.IRText = std::move(Cand);
            ++Res.Applied;
            Progress = true;
            continue; // same Idx, fresh enumeration
          }
        }
      }
      ++Idx;
    }
    if (!Progress || Res.Probes >= O.MaxProbes)
      break;
  }
  Res.FinalInsts = countInstructions(Res.IRText);
  return Res;
}
