//===- target/TargetMachine.cpp - machine descriptions ----------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "target/TargetMachine.h"

#include "support/Error.h"

using namespace vpo;

unsigned TargetMachine::latency(const Instruction &I) const {
  switch (I.Op) {
  case Opcode::Load:
  case Opcode::LoadWideU:
  case Opcode::Store:
    return S.LoadLatency;
  case Opcode::Mul:
    return S.MulLatency;
  case Opcode::DivS:
  case Opcode::DivU:
  case Opcode::RemS:
  case Opcode::RemU:
    return S.DivLatency;
  case Opcode::FAdd:
  case Opcode::FSub:
  case Opcode::FMul:
  case Opcode::CvtIF:
  case Opcode::CvtFI:
    return S.FPLatency;
  case Opcode::FDiv:
    return S.FPDivLatency;
  case Opcode::ExtractF:
  case Opcode::ExtQHi:
    return S.ExtractLatency;
  case Opcode::InsertF:
    return S.InsertLatency;
  case Opcode::Br:
  case Opcode::Jmp:
  case Opcode::Ret:
    return 1;
  default:
    return S.AluLatency;
  }
}

unsigned TargetMachine::issueCycles(const Instruction &I) const {
  if (!S.FullyPipelined) {
    // Non-pipelined machine: the instruction occupies the machine for its
    // full duration; memory references additionally hold the bus.
    unsigned Lat = latency(I);
    if (I.isMemory() && S.MemIssueCycles > Lat)
      return S.MemIssueCycles;
    return Lat;
  }
  if (I.isMemory())
    return S.MemIssueCycles;
  return 1;
}

TargetMachine vpo::makeAlphaTarget() {
  TargetMachine::Spec S;
  S.Name = "alpha";
  S.MaxMemWidthBytes = 8;
  S.MinIntMemBytes = 4; // no ldb/ldw: bytes and halfwords are extracted
  S.NaturalAlignment = true;
  S.UnalignedWideLoad = true; // ldq_u
  S.NativeInsert = true;      // INSxx
  S.EncodingBytes = 4;
  S.ICacheBytes = 8192;
  S.DCache = CacheParams{8192, 32, 1, 0, 24};
  S.AluLatency = 1;
  S.MulLatency = 5;
  S.DivLatency = 35;
  S.LoadLatency = 3;
  S.FPLatency = 6;
  S.FPDivLatency = 30;
  S.ExtractLatency = 1;
  S.InsertLatency = 1;
  S.MemIssueCycles = 1;
  // 32 integer + 32 FP registers, minus $sp, $gp, $ra, and the assembler
  // temporary on the integer side; FP loses the same number to the
  // calling convention's reserved set in our model.
  S.IntRegs = 28;
  S.FPRegs = 28;
  S.FullyPipelined = true;
  return TargetMachine(std::move(S));
}

TargetMachine vpo::makeM88100Target() {
  TargetMachine::Spec S;
  S.Name = "m88100";
  S.MaxMemWidthBytes = 8; // ld.d
  S.MinIntMemBytes = 1;   // ld.b / ld.h exist
  S.NaturalAlignment = true;
  S.UnalignedWideLoad = false;
  S.NativeInsert = false; // ext but no ins: inserts expand to and/shl/or
  S.EncodingBytes = 4;
  S.ICacheBytes = 16384; // external CMMU cache
  S.DCache = CacheParams{16384, 32, 4, 0, 12};
  S.AluLatency = 1;
  S.MulLatency = 3;
  S.DivLatency = 38;
  S.LoadLatency = 3;
  S.FPLatency = 5;
  S.FPDivLatency = 30;
  S.ExtractLatency = 1;
  S.InsertLatency = 1;
  // Each reference holds the P-bus for two cycles, so halving the
  // reference count pays even though narrow references are legal.
  S.MemIssueCycles = 2;
  // One unified file of 32 registers (r0 wired to zero, plus sp/ra and
  // linkage reserves); the 88100 runs FP through the same file.
  S.IntRegs = 26;
  S.FPRegs = 26;
  S.FullyPipelined = true;
  return TargetMachine(std::move(S));
}

TargetMachine vpo::makeM68030Target() {
  TargetMachine::Spec S;
  S.Name = "m68030";
  S.MaxMemWidthBytes = 4; // 4-byte bus: a "wide" reference gains little
  S.MinIntMemBytes = 1;
  S.NaturalAlignment = false; // tolerates misalignment (extra bus cycles)
  S.UnalignedWideLoad = false;
  S.NativeInsert = true; // bfins exists, it is just slow
  S.EncodingBytes = 2;   // variable-length CISC encoding, ~2 bytes average
  S.ICacheBytes = 256;
  S.DCache = CacheParams{256, 16, 1, 0, 8};
  S.AluLatency = 2;
  S.MulLatency = 28;
  S.DivLatency = 56;
  S.LoadLatency = 4;
  S.FPLatency = 10;
  S.FPDivLatency = 90;
  S.ExtractLatency = 8; // bfextu
  S.InsertLatency = 10; // bfins
  S.MemIssueCycles = 3;
  // Eight data + eight address registers minus sp/fp and a scratch on
  // the data side; the 68881/2 FPU exposes eight FP registers, one
  // reserved. The tiny files are what makes aggressive unrolling spill
  // here long before the i-cache heuristic would say stop.
  S.IntRegs = 13;
  S.FPRegs = 7;
  S.FullyPipelined = false;
  return TargetMachine(std::move(S));
}

std::optional<TargetMachine>
vpo::tryMakeTargetByName(const std::string &Name) {
  if (Name == "alpha")
    return makeAlphaTarget();
  if (Name == "m88100")
    return makeM88100Target();
  if (Name == "m68030")
    return makeM68030Target();
  return std::nullopt;
}

const std::vector<std::string> &vpo::knownTargetNames() {
  static const std::vector<std::string> Names = {"alpha", "m88100",
                                                 "m68030"};
  return Names;
}

TargetMachine vpo::makeTargetByName(const std::string &Name) {
  if (std::optional<TargetMachine> TM = tryMakeTargetByName(Name))
    return *TM;
  fatalError("unknown target '" + Name + "' (alpha, m88100, m68030)");
}
