//===- target/Legalize.h - lower illegal memory references ------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Rewrites memory references the target cannot issue into sequences it
/// can. On the Alpha a byte or halfword load becomes an unaligned wide
/// load (ldq_u) plus a field extract, and a narrow store becomes a wide
/// load / field insert / wide store read-modify-write — the very expansion
/// whose cost makes coalescing profitable there (paper §2). On the 88100,
/// which has an extract but no insert, InsertF instructions are expanded
/// into and/shl/or. The 68030 issues everything natively; legalization is
/// the identity there.
///
//===----------------------------------------------------------------------===//

#ifndef VPO_TARGET_LEGALIZE_H
#define VPO_TARGET_LEGALIZE_H

namespace vpo {

class BasicBlock;
class Function;
class TargetMachine;

struct LegalizeStats {
  /// Narrow integer loads expanded into wide-load + extract.
  unsigned NarrowLoadsExpanded = 0;
  /// Narrow integer stores expanded into wide-load + insert + wide-store.
  unsigned NarrowStoresExpanded = 0;
  /// InsertF instructions expanded into and/shl/or (no native insert).
  unsigned InsertsExpanded = 0;

  LegalizeStats &operator+=(const LegalizeStats &O) {
    NarrowLoadsExpanded += O.NarrowLoadsExpanded;
    NarrowStoresExpanded += O.NarrowStoresExpanded;
    InsertsExpanded += O.InsertsExpanded;
    return *this;
  }
};

/// Legalizes every instruction in \p BB in place.
LegalizeStats legalizeBlock(BasicBlock &BB, const TargetMachine &TM);

/// Legalizes every block of \p F.
LegalizeStats legalizeFunction(Function &F, const TargetMachine &TM);

} // namespace vpo

#endif // VPO_TARGET_LEGALIZE_H
