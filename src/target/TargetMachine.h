//===- target/TargetMachine.h - machine descriptions ------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parameterised descriptions of the three machines the paper evaluates
/// (Table I): the DEC Alpha (no sub-word memory references, ldq_u-style
/// unaligned wide loads, cheap extract/insert), the Motorola 88100 (native
/// narrow references, an extract instruction but no insert), and the
/// Motorola 68030 (a CISC with a 4-byte bus, a 256-byte instruction cache,
/// and expensive bit-field operations). Everything the optimizer and the
/// simulator need to know about a machine — reference legality, alignment
/// rules, latencies, issue occupancy, cache geometry — flows through
/// TargetMachine so retargeting is a matter of building a new Spec.
///
//===----------------------------------------------------------------------===//

#ifndef VPO_TARGET_TARGETMACHINE_H
#define VPO_TARGET_TARGETMACHINE_H

#include "ir/Instruction.h"
#include "ir/Type.h"

#include <optional>
#include <string>
#include <vector>

namespace vpo {

/// Geometry and timing of one cache (shared by the data-cache model and the
/// instruction-cache model derived from it in the simulator).
struct CacheParams {
  unsigned SizeBytes = 8192;
  unsigned LineBytes = 32;
  unsigned Ways = 1;
  unsigned HitCycles = 0;
  unsigned MissPenalty = 20;
};

class TargetMachine {
public:
  /// The complete description of a machine. Aggregate so experiments can
  /// copy a factory's spec, tweak a field, and build a variant (see
  /// bench/ablation_fp.cpp).
  struct Spec {
    std::string Name = "generic";

    // --- Memory reference legality (paper §2, Table I). ---
    /// Widest single memory reference, in bytes (the memory bus width).
    unsigned MaxMemWidthBytes = 8;
    /// Narrowest *legal* integer memory reference, in bytes. The Alpha has
    /// no byte or halfword references, so 4; everything narrower is
    /// expanded by legalization into wide-load + extract (+ insert).
    unsigned MinIntMemBytes = 1;
    /// Memory references must be naturally aligned (RISC targets trap on
    /// misalignment; the 68030 tolerates it at a bus-cycle cost).
    bool NaturalAlignment = true;
    /// Has an ldq_u-style unaligned wide load (loads the aligned block
    /// *containing* the address) — the Alpha's funnel-shift idiom.
    bool UnalignedWideLoad = false;
    /// Has a native field-insert instruction. The 88100 has ext but no
    /// ins, so inserts are expanded into and/shl/or by legalization.
    bool NativeInsert = true;

    // --- Code geometry. ---
    /// Bytes per encoded instruction (fixed 4 on the RISCs, ~2 average on
    /// the 68030) — drives the unroller's i-cache heuristic.
    unsigned EncodingBytes = 4;
    /// Instruction-cache capacity in bytes.
    unsigned ICacheBytes = 8192;
    /// Data-cache geometry for the simulator.
    CacheParams DCache;

    // --- Timing (cycles). ---
    unsigned AluLatency = 1;
    unsigned MulLatency = 5;
    unsigned DivLatency = 35;
    unsigned LoadLatency = 3;
    unsigned FPLatency = 6;
    unsigned FPDivLatency = 30;
    unsigned ExtractLatency = 1;
    unsigned InsertLatency = 1;
    /// Issue occupancy of a memory reference (bus cycles the reference
    /// keeps the memory port busy).
    unsigned MemIssueCycles = 1;

    // --- Register files. ---
    /// Integer registers available to the allocator, after reserving the
    /// stack/frame pointers, return address, and assembler temporaries.
    unsigned IntRegs = 28;
    /// Floating-point registers available to the allocator.
    unsigned FPRegs = 28;
    /// Fully pipelined: a new instruction can issue every cycle regardless
    /// of latency. False on the 68030, where an instruction occupies the
    /// machine for its full duration.
    bool FullyPipelined = true;
  };

  explicit TargetMachine(Spec S) : S(std::move(S)) {}

  const Spec &spec() const { return S; }
  const std::string &name() const { return S.Name; }

  unsigned maxMemWidthBytes() const { return S.MaxMemWidthBytes; }
  bool requiresNaturalAlignment() const { return S.NaturalAlignment; }
  bool hasUnalignedWideLoad() const { return S.UnalignedWideLoad; }
  bool hasNativeInsert() const { return S.NativeInsert; }
  unsigned encodingBytes() const { return S.EncodingBytes; }
  unsigned iCacheBytes() const { return S.ICacheBytes; }
  unsigned intRegs() const { return S.IntRegs; }
  unsigned fpRegs() const { return S.FPRegs; }
  const CacheParams &dataCache() const { return S.DCache; }

  /// Whether a single memory reference of width \p W is legal on this
  /// machine. FP references exist only at f32/f64 and are legal on every
  /// target; integer references must be at least MinIntMemBytes wide and
  /// no wider than the bus.
  bool isLegalLoad(MemWidth W, bool IsFloat) const {
    unsigned Bytes = widthBytes(W);
    if (Bytes > S.MaxMemWidthBytes)
      return false;
    if (IsFloat)
      return Bytes >= 4;
    return Bytes >= S.MinIntMemBytes;
  }
  bool isLegalStore(MemWidth W, bool IsFloat) const {
    return isLegalLoad(W, IsFloat);
  }

  /// Result latency of \p I in cycles (producer to consumer).
  unsigned latency(const Instruction &I) const;

  /// Issue occupancy of \p I: cycles before the next instruction can
  /// issue. 1 for everything on a fully pipelined machine except memory
  /// references (MemIssueCycles); the full latency otherwise.
  unsigned issueCycles(const Instruction &I) const;

private:
  Spec S;
};

/// DEC Alpha (21064-flavoured): no sub-word references, unaligned wide
/// load, cheap extract + insert. Both coalescing modes win here.
TargetMachine makeAlphaTarget();

/// Motorola 88100: native narrow references, extract but *no* insert —
/// load coalescing wins, store coalescing does not.
TargetMachine makeM88100Target();

/// Motorola 68030: narrow references are cheap, bit-field ops expensive,
/// 4-byte bus, 256-byte i-cache — profitability refuses coalescing.
TargetMachine makeM68030Target();

/// \returns the target named "alpha", "m88100", or "m68030".
TargetMachine makeTargetByName(const std::string &Name);

/// Non-aborting lookup for callers fed untrusted names (the compile
/// service validates requests with this). \returns nullopt for unknown
/// names where makeTargetByName would fatalError.
std::optional<TargetMachine> tryMakeTargetByName(const std::string &Name);

/// The names tryMakeTargetByName accepts, for error messages and
/// request validation.
const std::vector<std::string> &knownTargetNames();

} // namespace vpo

#endif // VPO_TARGET_TARGETMACHINE_H
