//===- target/Legalize.cpp - lower illegal memory references ----*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "target/Legalize.h"

#include "ir/Function.h"
#include "target/TargetMachine.h"

using namespace vpo;

namespace {

/// Materialises Base + Disp into a register (or reuses Base when Disp is
/// zero), appending any needed add to \p Out.
Reg effectiveAddress(Function &F, const Address &Addr,
                     std::vector<Instruction> &Out) {
  if (Addr.Disp == 0)
    return Addr.Base;
  Instruction Add;
  Add.Op = Opcode::Add;
  Add.Dst = F.newReg();
  Add.A = Operand(Addr.Base);
  Add.B = Operand::imm(Addr.Disp);
  Out.push_back(Add);
  return Add.Dst;
}

/// Narrow integer load on a machine without sub-word references: load the
/// aligned wide block containing the address and extract the field
/// (Alpha: ldq_u + extbl/extwl).
void expandNarrowLoad(Function &F, const Instruction &I,
                      std::vector<Instruction> &Out) {
  Reg EA = effectiveAddress(F, I.Addr, Out);

  Instruction Wide;
  Wide.Op = Opcode::LoadWideU;
  Wide.Dst = F.newReg();
  Wide.Addr = Address(EA, 0);
  Wide.W = MemWidth::W8;
  Out.push_back(Wide);

  Instruction Ext;
  Ext.Op = Opcode::ExtractF;
  Ext.Dst = I.Dst;
  Ext.A = Operand(Wide.Dst);
  Ext.B = Operand(EA); // byte offset = EA mod 8
  Ext.W = I.W;
  Ext.SignExtend = I.SignExtend;
  Out.push_back(Ext);
}

/// Narrow integer store: read-modify-write of the containing wide block
/// (Alpha: ldq_u + insbl/inswl + stq). The wide store rewrites the
/// neighbouring bytes with the values just read, so single-threaded
/// semantics are preserved exactly.
void expandNarrowStore(Function &F, const Instruction &I,
                       std::vector<Instruction> &Out) {
  Reg EA = effectiveAddress(F, I.Addr, Out);

  Instruction Wide;
  Wide.Op = Opcode::LoadWideU;
  Wide.Dst = F.newReg();
  Wide.Addr = Address(EA, 0);
  Wide.W = MemWidth::W8;
  Out.push_back(Wide);

  Instruction Ins;
  Ins.Op = Opcode::InsertF;
  Ins.Dst = F.newReg();
  Ins.A = Operand(Wide.Dst);
  Ins.B = Operand(EA); // byte offset = EA mod 8
  Ins.C = I.A;         // the stored value
  Ins.W = I.W;
  Out.push_back(Ins);

  Instruction Align;
  Align.Op = Opcode::And;
  Align.Dst = F.newReg();
  Align.A = Operand(EA);
  Align.B = Operand::imm(-8);
  Out.push_back(Align);

  Instruction St;
  St.Op = Opcode::Store;
  St.Dst = Reg();
  St.A = Operand(Ins.Dst);
  St.Addr = Address(Align.Dst, 0);
  St.W = MemWidth::W8;
  Out.push_back(St);
}

/// Field insert on a machine without a native insert instruction (88100):
/// mask out the field, mask + shift the value into place, or them
/// together. Only constant byte offsets can be expanded statically; the
/// coalescer only ever emits constant lane offsets.
void expandInsert(Function &F, const Instruction &I,
                  std::vector<Instruction> &Out) {
  unsigned Bytes = widthBytes(I.W);
  unsigned Off = static_cast<unsigned>(I.B.imm()) & 7;
  if (Bytes >= 8) {
    Instruction Mov;
    Mov.Op = Opcode::Mov;
    Mov.Dst = I.Dst;
    Mov.A = I.C;
    Out.push_back(Mov);
    return;
  }
  uint64_t Mask = (uint64_t(1) << (8 * Bytes)) - 1;

  Instruction Clear;
  Clear.Op = Opcode::And;
  Clear.Dst = F.newReg();
  Clear.A = I.A;
  Clear.B = Operand::imm(static_cast<int64_t>(~(Mask << (8 * Off))));
  Out.push_back(Clear);

  Instruction Trunc;
  Trunc.Op = Opcode::And;
  Trunc.Dst = F.newReg();
  Trunc.A = I.C;
  Trunc.B = Operand::imm(static_cast<int64_t>(Mask));
  Out.push_back(Trunc);

  Operand Field = Operand(Trunc.Dst);
  if (Off != 0) {
    Instruction Shift;
    Shift.Op = Opcode::Shl;
    Shift.Dst = F.newReg();
    Shift.A = Field;
    Shift.B = Operand::imm(8 * Off);
    Out.push_back(Shift);
    Field = Operand(Shift.Dst);
  }

  Instruction Merge;
  Merge.Op = Opcode::Or;
  Merge.Dst = I.Dst;
  Merge.A = Operand(Clear.Dst);
  Merge.B = Field;
  Out.push_back(Merge);
}

} // namespace

LegalizeStats vpo::legalizeBlock(BasicBlock &BB, const TargetMachine &TM) {
  LegalizeStats Stats;
  Function &F = *BB.parent();

  // The wide-block expansion needs a full-width unaligned load; a machine
  // with a narrower bus necessarily issues narrow references natively.
  bool CanExpandNarrow = TM.maxMemWidthBytes() >= 8;

  bool AnyWork = false;
  for (const Instruction &I : BB.insts()) {
    if (I.Op == Opcode::Load && !I.IsFloat &&
        !TM.isLegalLoad(I.W, I.IsFloat) && CanExpandNarrow)
      AnyWork = true;
    else if (I.Op == Opcode::Store && !I.IsFloat &&
             !TM.isLegalStore(I.W, I.IsFloat) && CanExpandNarrow)
      AnyWork = true;
    else if (I.Op == Opcode::InsertF && !TM.hasNativeInsert() &&
             I.B.isImm() && !I.IsFloat)
      AnyWork = true;
  }
  if (!AnyWork)
    return Stats;

  std::vector<Instruction> Out;
  Out.reserve(BB.insts().size() * 2);
  for (const Instruction &I : BB.insts()) {
    if (I.Op == Opcode::Load && !I.IsFloat &&
        !TM.isLegalLoad(I.W, I.IsFloat) && CanExpandNarrow) {
      expandNarrowLoad(F, I, Out);
      ++Stats.NarrowLoadsExpanded;
    } else if (I.Op == Opcode::Store && !I.IsFloat &&
               !TM.isLegalStore(I.W, I.IsFloat) && CanExpandNarrow) {
      expandNarrowStore(F, I, Out);
      ++Stats.NarrowStoresExpanded;
    } else if (I.Op == Opcode::InsertF && !TM.hasNativeInsert() &&
               I.B.isImm() && !I.IsFloat) {
      expandInsert(F, I, Out);
      ++Stats.InsertsExpanded;
    } else {
      Out.push_back(I);
    }
  }
  BB.insts() = std::move(Out);
  return Stats;
}

LegalizeStats vpo::legalizeFunction(Function &F, const TargetMachine &TM) {
  LegalizeStats Stats;
  for (const auto &BB : F.blocks())
    Stats += legalizeBlock(*BB, TM);
  return Stats;
}
