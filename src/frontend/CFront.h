//===- frontend/CFront.h - mini-C to RTL compiler ----------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A miniature C front end, standing in for the paper's vpcc: it compiles
/// the dialect the paper's kernels are written in directly to RTL.
///
/// Supported subset:
///   * functions over scalar and pointer parameters:
///     `int f(short *a, unsigned char * restrict dst, int n)`
///   * element types: (unsigned) char/short/int/long, float, double;
///   * statements: declarations with initializers, assignments (including
///     `+=`, `-=`, `++`, `--`), `if`/`else`, `while`, `for`, `return`,
///     compound blocks;
///   * expressions: integer and float arithmetic, bitwise ops, shifts,
///     comparisons (yielding 0/1), unary `-` `~` `!`, array indexing
///     `a[i]` as both value and assignment target, parentheses, decimal
///     and hex literals;
///   * `restrict` on a pointer parameter sets the NoAlias attribute the
///     optimizer's static alias analysis consumes.
///
/// Deviations from ISO C, documented here once: all integer arithmetic is
/// performed in 64 bits (narrow types load sign/zero-extended and store
/// truncated, but intermediates never wrap at 32 bits), `float`
/// arithmetic is performed in double precision with rounding at stores
/// (exactly what the RTL machines do), and there are no calls, structs,
/// globals, or address-of.
///
/// Loops are emitted in the rotated (guard + bottom-test) form the
/// optimizer's analyses expect, and array indexing is emitted naively —
/// `a + (i << k)` recomputed per access; the strength-reduction pass
/// (transform/StrengthReduce.h) then derives the pointer induction
/// variables that memory access coalescing needs.
///
//===----------------------------------------------------------------------===//

#ifndef VPO_FRONTEND_CFRONT_H
#define VPO_FRONTEND_CFRONT_H

#include <memory>
#include <string>

namespace vpo {

class Module;

namespace cc {

/// Compiles \p Source into a fresh module. On failure returns nullptr
/// and, if \p Error is non-null, a line-numbered diagnostic.
std::unique_ptr<Module> compileC(const std::string &Source,
                                 std::string *Error = nullptr);

} // namespace cc
} // namespace vpo

#endif // VPO_FRONTEND_CFRONT_H
