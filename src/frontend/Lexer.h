//===- frontend/Lexer.h - tokens for the mini-C front end -------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lexer for the miniature C dialect the kernels are written in (the
/// paper's toolchain was "a C front end and vpo"; this is the C front
/// end, scaled to the loops the paper studies).
///
//===----------------------------------------------------------------------===//

#ifndef VPO_FRONTEND_LEXER_H
#define VPO_FRONTEND_LEXER_H

#include <cstdint>
#include <string>
#include <vector>

namespace vpo {
namespace cc {

enum class TokKind {
  End,
  Identifier,
  Number,
  // Keywords.
  KwChar,
  KwShort,
  KwInt,
  KwLong,
  KwUnsigned,
  KwSigned,
  KwFloat,
  KwDouble,
  KwVoid,
  KwFor,
  KwWhile,
  KwIf,
  KwElse,
  KwReturn,
  KwRestrict,
  // Punctuation and operators.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Semi,
  Comma,
  Star,
  Plus,
  Minus,
  Slash,
  Percent,
  Amp,
  Pipe,
  Caret,
  Tilde,
  Shl,
  Shr,
  Assign,
  PlusAssign,
  MinusAssign,
  PlusPlus,
  MinusMinus,
  Lt,
  Gt,
  Le,
  Ge,
  EqEq,
  NotEq,
  Not,
  AndAnd,
  OrOr,
  Question,
  Colon,
};

struct Token {
  TokKind Kind = TokKind::End;
  std::string Text;   ///< identifier spelling
  int64_t Value = 0;  ///< number value
  unsigned Line = 1;
};

/// \returns a printable name for diagnostics.
const char *tokKindName(TokKind K);

/// Tokenizes \p Source. On a bad character, records a message in
/// \p Error and stops. Comments (// and /* */) are skipped.
std::vector<Token> tokenize(const std::string &Source, std::string &Error);

} // namespace cc
} // namespace vpo

#endif // VPO_FRONTEND_LEXER_H
