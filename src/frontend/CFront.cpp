//===- frontend/CFront.cpp ------------------------------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "frontend/CFront.h"

#include "frontend/Lexer.h"
#include "ir/Function.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "support/StringUtils.h"

#include <cstring>
#include <map>
#include <optional>

using namespace vpo;
using namespace vpo::cc;

namespace {

/// A (very small) C type: a scalar or a pointer to a scalar.
struct CType {
  unsigned Bytes = 4;      ///< scalar size (element size for pointers)
  bool Unsigned = false;
  bool IsFloat = false;
  bool IsPointer = false;
  bool Restrict = false;

  MemWidth width() const { return widthFromBytes(Bytes); }
};

/// An evaluated expression: an operand plus the type it carries.
struct Value {
  Operand Op;
  CType Ty;
};

class CompilerImpl {
public:
  CompilerImpl(const std::string &Source, std::string *Error)
      : Error(Error) {
    std::string LexError;
    Toks = tokenize(Source, LexError);
    if (!LexError.empty())
      fail(LexError);
  }

  std::unique_ptr<Module> run() {
    auto M = std::make_unique<Module>();
    while (!Failed && !at(TokKind::End))
      parseFunction(*M);
    if (Failed)
      return nullptr;
    std::vector<std::string> Problems;
    if (!verifyModule(*M, Problems)) {
      fail("internal: generated IR fails verification: " +
           (Problems.empty() ? std::string() : Problems.front()));
      return nullptr;
    }
    return M;
  }

private:
  std::vector<Token> Toks;
  size_t Pos = 0;
  std::string *Error;
  bool Failed = false;

  Function *F = nullptr;
  std::unique_ptr<IRBuilder> B;
  BasicBlock *ExitBB = nullptr;
  Reg RetReg;
  CType RetTy;
  std::map<std::string, std::pair<Reg, CType>> Scope;

  // --- Token plumbing ---------------------------------------------------

  const Token &cur() const { return Toks[Pos]; }
  bool at(TokKind K) const { return cur().Kind == K; }

  bool accept(TokKind K) {
    if (!at(K))
      return false;
    ++Pos;
    return true;
  }

  void expect(TokKind K) {
    if (Failed)
      return;
    if (!accept(K))
      fail(strformat("line %u: expected %s, found %s", cur().Line,
                     tokKindName(K), tokKindName(cur().Kind)));
  }

  void fail(const std::string &Msg) {
    if (!Failed && Error)
      *Error = Msg;
    Failed = true;
  }

  // --- Types ------------------------------------------------------------

  bool atTypeStart() const {
    switch (cur().Kind) {
    case TokKind::KwChar:
    case TokKind::KwShort:
    case TokKind::KwInt:
    case TokKind::KwLong:
    case TokKind::KwUnsigned:
    case TokKind::KwSigned:
    case TokKind::KwFloat:
    case TokKind::KwDouble:
    case TokKind::KwVoid:
      return true;
    default:
      return false;
    }
  }

  CType parseType() {
    CType Ty;
    bool SawSign = false;
    if (accept(TokKind::KwUnsigned)) {
      Ty.Unsigned = true;
      SawSign = true;
    } else if (accept(TokKind::KwSigned)) {
      SawSign = true;
    }
    if (accept(TokKind::KwChar)) {
      Ty.Bytes = 1;
    } else if (accept(TokKind::KwShort)) {
      Ty.Bytes = 2;
    } else if (accept(TokKind::KwInt)) {
      Ty.Bytes = 4;
    } else if (accept(TokKind::KwLong)) {
      Ty.Bytes = 8;
    } else if (accept(TokKind::KwFloat)) {
      Ty.Bytes = 4;
      Ty.IsFloat = true;
    } else if (accept(TokKind::KwDouble)) {
      Ty.Bytes = 8;
      Ty.IsFloat = true;
    } else if (accept(TokKind::KwVoid)) {
      Ty.Bytes = 8;
    } else if (!SawSign) {
      fail(strformat("line %u: expected a type, found %s", cur().Line,
                     tokKindName(cur().Kind)));
    }
    if (accept(TokKind::Star)) {
      Ty.IsPointer = true;
      if (accept(TokKind::KwRestrict))
        Ty.Restrict = true;
    }
    return Ty;
  }

  // --- Function and statements -------------------------------------------

  void parseFunction(Module &M) {
    RetTy = parseType();
    if (!at(TokKind::Identifier)) {
      fail(strformat("line %u: expected function name", cur().Line));
      return;
    }
    std::string Name = cur().Text;
    ++Pos;

    F = M.addFunction(Name);
    B = std::make_unique<IRBuilder>(F);
    Scope.clear();

    expect(TokKind::LParen);
    size_t ParamIdx = 0;
    while (!Failed && !at(TokKind::RParen)) {
      if (ParamIdx > 0)
        expect(TokKind::Comma);
      CType Ty = parseType();
      if (!at(TokKind::Identifier)) {
        fail(strformat("line %u: expected parameter name", cur().Line));
        return;
      }
      Reg R = F->addParam();
      if (Ty.Restrict)
        F->paramInfo(ParamIdx).NoAlias = true;
      Scope[cur().Text] = {R, Ty};
      ++Pos;
      ++ParamIdx;
    }
    expect(TokKind::RParen);

    BasicBlock *Entry = B->createBlock("entry");
    (void)Entry;
    ExitBB = F->addBlock("exit");
    RetReg = F->newReg();
    B->movTo(RetReg, Operand::imm(0));

    parseCompound();

    // Fall-through return.
    if (!Failed && B->block() != nullptr)
      B->jmp(ExitBB);
    B->setInsertBlock(ExitBB);
    B->ret(RetReg);

    // Drop the exit block to the end of the layout for readability.
    if (Failed)
      return;
  }

  void parseCompound() {
    expect(TokKind::LBrace);
    // Block scoping: restore shadowed names on exit.
    auto Saved = Scope;
    while (!Failed && !at(TokKind::RBrace) && !at(TokKind::End))
      parseStatement();
    expect(TokKind::RBrace);
    Scope = std::move(Saved);
  }

  void parseStatement() {
    if (at(TokKind::LBrace)) {
      parseCompound();
      return;
    }
    if (atTypeStart()) {
      parseDeclaration();
      return;
    }
    if (accept(TokKind::KwReturn)) {
      if (!at(TokKind::Semi)) {
        Value V = parseExpr();
        B->movTo(RetReg, coerce(V, RetTy).Op);
      }
      expect(TokKind::Semi);
      B->jmp(ExitBB);
      // Statements after a return are unreachable; give them a block so
      // parsing can continue (the verifier tolerates unreachable code).
      B->createBlock("dead");
      return;
    }
    if (accept(TokKind::KwIf)) {
      parseIf();
      return;
    }
    if (accept(TokKind::KwWhile)) {
      parseWhile();
      return;
    }
    if (accept(TokKind::KwFor)) {
      parseFor();
      return;
    }
    if (accept(TokKind::Semi))
      return; // empty statement
    parseSimpleStatement();
    expect(TokKind::Semi);
  }

  void parseDeclaration() {
    CType Ty = parseType();
    if (!at(TokKind::Identifier)) {
      fail(strformat("line %u: expected variable name", cur().Line));
      return;
    }
    std::string Name = cur().Text;
    ++Pos;
    Reg R = F->newReg();
    if (accept(TokKind::Assign)) {
      Value V = parseExpr();
      B->movTo(R, coerce(V, Ty).Op);
    } else {
      B->movTo(R, Operand::imm(0));
    }
    Scope[Name] = {R, Ty};
    expect(TokKind::Semi);
  }

  /// assignment | increment | bare expression (evaluated for nothing).
  void parseSimpleStatement() {
    // Lookahead: ident ([...])? (= | += | -= | ++ | --)?
    if (at(TokKind::Identifier)) {
      size_t Save = Pos;
      std::string Name = cur().Text;
      ++Pos;
      auto It = Scope.find(Name);
      if (It == Scope.end()) {
        fail(strformat("line %u: unknown variable '%s'", cur().Line,
                       Name.c_str()));
        return;
      }
      Reg VarReg = It->second.first;
      CType VarTy = It->second.second;

      if (at(TokKind::LBracket)) {
        // Array element assignment: a[i] op= expr.
        if (!VarTy.IsPointer) {
          fail(strformat("line %u: '%s' is not a pointer", cur().Line,
                         Name.c_str()));
          return;
        }
        ++Pos;
        Value Idx = parseExpr();
        expect(TokKind::RBracket);
        Reg Addr = emitElementAddress(VarReg, VarTy, Idx);
        CType ElemTy = VarTy;
        ElemTy.IsPointer = false;
        if (accept(TokKind::Assign)) {
          Value V = parseExpr();
          emitStore(Addr, ElemTy, coerce(V, ElemTy));
        } else if (at(TokKind::PlusAssign) || at(TokKind::MinusAssign)) {
          bool IsAdd = at(TokKind::PlusAssign);
          ++Pos;
          Value Old = emitLoad(Addr, ElemTy);
          Value Rhs = parseExpr();
          Value New = emitBinary(IsAdd ? TokKind::Plus : TokKind::Minus,
                                 Old, Rhs);
          emitStore(Addr, ElemTy, coerce(New, ElemTy));
        } else {
          fail(strformat("line %u: expected assignment", cur().Line));
        }
        return;
      }

      if (accept(TokKind::Assign)) {
        Value V = parseExpr();
        B->movTo(VarReg, coerce(V, VarTy).Op);
        return;
      }
      if (at(TokKind::PlusAssign) || at(TokKind::MinusAssign)) {
        bool IsAdd = at(TokKind::PlusAssign);
        ++Pos;
        Value Rhs = parseExpr();
        emitVarStep(VarReg, VarTy, Rhs, IsAdd);
        return;
      }
      if (at(TokKind::PlusPlus) || at(TokKind::MinusMinus)) {
        bool IsInc = at(TokKind::PlusPlus);
        ++Pos;
        Value One{Operand::imm(1), CType{}};
        emitVarStep(VarReg, VarTy, One, IsInc);
        return;
      }
      // Not an assignment after all: re-parse as a full expression.
      Pos = Save;
    }
    parseExpr();
  }

  /// var += rhs with C pointer-arithmetic scaling.
  void emitVarStep(Reg VarReg, const CType &VarTy, Value Rhs, bool IsAdd) {
    Operand Step = Rhs.Op;
    if (VarTy.IsPointer && VarTy.Bytes > 1) {
      if (Step.isImm())
        Step = Operand::imm(Step.imm() * VarTy.Bytes);
      else
        Step = B->mul(Step, Operand::imm(VarTy.Bytes));
    }
    if (VarTy.IsFloat && !VarTy.IsPointer) {
      Value RhsF = coerce(Rhs, VarTy);
      Reg NewV = IsAdd ? B->fadd(VarReg, RhsF.Op) : B->fsub(VarReg, RhsF.Op);
      B->movTo(VarReg, NewV);
      return;
    }
    B->aluTo(VarReg, IsAdd ? Opcode::Add : Opcode::Sub, VarReg, Step);
  }

  void parseIf() {
    expect(TokKind::LParen);
    BasicBlock *Then = F->addBlock(F->uniqueBlockName("then"));
    BasicBlock *Else = F->addBlock(F->uniqueBlockName("else"));
    BasicBlock *Join = F->addBlock(F->uniqueBlockName("join"));
    emitCondBranch(Then, Else);
    expect(TokKind::RParen);

    B->setInsertBlock(Then);
    parseStatement();
    B->jmp(Join);

    B->setInsertBlock(Else);
    if (accept(TokKind::KwElse))
      parseStatement();
    B->jmp(Join);

    B->setInsertBlock(Join);
  }

  void parseWhile() {
    expect(TokKind::LParen);
    size_t CondPos = Pos; // re-parsed for the bottom test
    BasicBlock *Body = F->addBlock(F->uniqueBlockName("loop"));
    BasicBlock *After = F->addBlock(F->uniqueBlockName("after"));
    emitCondBranch(Body, After); // rotated loop: guard in the preheader
    expect(TokKind::RParen);

    B->setInsertBlock(Body);
    parseStatement();
    size_t EndPos = Pos;
    // Rotated loop: re-emit the condition as the bottom test.
    Pos = CondPos;
    emitCondBranch(Body, After);
    Pos = EndPos;

    B->setInsertBlock(After);
  }

  void parseFor() {
    expect(TokKind::LParen);
    // init
    if (!at(TokKind::Semi)) {
      if (atTypeStart()) {
        parseDeclaration(); // consumes the ';'
      } else {
        parseSimpleStatement();
        expect(TokKind::Semi);
      }
    } else {
      expect(TokKind::Semi);
    }

    size_t CondPos = Pos;
    BasicBlock *Body = F->addBlock(F->uniqueBlockName("loop"));
    BasicBlock *After = F->addBlock(F->uniqueBlockName("after"));
    bool HasCond = !at(TokKind::Semi);
    if (HasCond)
      emitCondBranch(Body, After);
    else
      B->jmp(Body);
    // Skip the condition text and ';'.
    skipUntil(TokKind::Semi);
    expect(TokKind::Semi);

    size_t StepPos = Pos;
    skipUntil(TokKind::RParen);
    expect(TokKind::RParen);

    B->setInsertBlock(Body);
    parseStatement();
    size_t EndPos = Pos;

    // step
    Pos = StepPos;
    if (!at(TokKind::RParen))
      parseSimpleStatement();
    // bottom test
    Pos = CondPos;
    if (HasCond)
      emitCondBranch(Body, After);
    else
      B->jmp(Body);
    Pos = EndPos;

    B->setInsertBlock(After);
  }

  /// Advances past balanced parens/brackets until \p K at depth 0.
  void skipUntil(TokKind K) {
    int Depth = 0;
    while (!Failed && !at(TokKind::End)) {
      if (Depth == 0 && at(K))
        return;
      if (at(TokKind::LParen) || at(TokKind::LBracket))
        ++Depth;
      if (at(TokKind::RParen) || at(TokKind::RBracket))
        --Depth;
      ++Pos;
    }
  }

  /// Parses a condition expression and branches on it. Top-level
  /// comparisons fuse into the branch; anything else tests != 0.
  void emitCondBranch(BasicBlock *IfTrue, BasicBlock *IfFalse) {
    Value V = parseExpr();
    if (LastCmp && LastCmp->Result == V.Op) {
      B->br(LastCmp->CC, LastCmp->A, LastCmp->B, IfTrue, IfFalse);
      return;
    }
    B->br(CondCode::NE, V.Op, Operand::imm(0), IfTrue, IfFalse);
  }

  // --- Expressions --------------------------------------------------------

  /// Remembers the most recent comparison so emitCondBranch can fuse it.
  struct CmpInfo {
    Operand Result;
    CondCode CC;
    Operand A, B;
  };
  std::optional<CmpInfo> LastCmp;

  Value parseExpr() { return parseConditional(); }

  /// `cond ? a : b`, compiled to a Select. Both arms are evaluated
  /// unconditionally (if-conversion) — fine for the pure expressions this
  /// dialect allows, and exactly what the optimizer wants inside loops.
  Value parseConditional() {
    Value Cond = parseBitOr();
    if (!accept(TokKind::Question))
      return Cond;
    Value TrueV = parseConditional();
    expect(TokKind::Colon);
    Value FalseV = parseConditional();
    LastCmp.reset();
    CType Ty = TrueV.Ty;
    if (TrueV.Ty.IsFloat || FalseV.Ty.IsFloat) {
      Ty.IsFloat = true;
      Ty.Bytes = 8;
      TrueV = coerce(TrueV, Ty);
      FalseV = coerce(FalseV, Ty);
    }
    Reg Out = B->select(Cond.Op, TrueV.Op, FalseV.Op);
    return {Operand(Out), Ty};
  }

  Value parseBitOr() {
    Value L = parseBitXor();
    while (at(TokKind::Pipe)) {
      ++Pos;
      L = emitBinary(TokKind::Pipe, L, parseBitXor());
    }
    return L;
  }

  Value parseBitXor() {
    Value L = parseBitAnd();
    while (at(TokKind::Caret)) {
      ++Pos;
      L = emitBinary(TokKind::Caret, L, parseBitAnd());
    }
    return L;
  }

  Value parseBitAnd() {
    Value L = parseEquality();
    while (at(TokKind::Amp)) {
      ++Pos;
      L = emitBinary(TokKind::Amp, L, parseEquality());
    }
    return L;
  }

  Value parseEquality() {
    Value L = parseRelational();
    while (at(TokKind::EqEq) || at(TokKind::NotEq)) {
      TokKind Op = cur().Kind;
      ++Pos;
      L = emitCompare(Op, L, parseRelational());
    }
    return L;
  }

  Value parseRelational() {
    Value L = parseShift();
    while (at(TokKind::Lt) || at(TokKind::Gt) || at(TokKind::Le) ||
           at(TokKind::Ge)) {
      TokKind Op = cur().Kind;
      ++Pos;
      L = emitCompare(Op, L, parseShift());
    }
    return L;
  }

  Value parseShift() {
    Value L = parseAdditive();
    while (at(TokKind::Shl) || at(TokKind::Shr)) {
      TokKind Op = cur().Kind;
      ++Pos;
      L = emitBinary(Op, L, parseAdditive());
    }
    return L;
  }

  Value parseAdditive() {
    Value L = parseMultiplicative();
    while (at(TokKind::Plus) || at(TokKind::Minus)) {
      TokKind Op = cur().Kind;
      ++Pos;
      L = emitBinary(Op, L, parseMultiplicative());
    }
    return L;
  }

  Value parseMultiplicative() {
    Value L = parseUnary();
    while (at(TokKind::Star) || at(TokKind::Slash) ||
           at(TokKind::Percent)) {
      TokKind Op = cur().Kind;
      ++Pos;
      L = emitBinary(Op, L, parseUnary());
    }
    return L;
  }

  Value parseUnary() {
    if (accept(TokKind::Minus)) {
      Value V = parseUnary();
      if (V.Ty.IsFloat) {
        Reg R = B->fsub(emitFloatImm(0.0), V.Op);
        return {Operand(R), V.Ty};
      }
      Reg R = B->sub(Operand::imm(0), V.Op);
      return {Operand(R), V.Ty};
    }
    if (accept(TokKind::Tilde)) {
      Value V = parseUnary();
      Reg R = B->xor_(V.Op, Operand::imm(-1));
      return {Operand(R), V.Ty};
    }
    if (accept(TokKind::Not)) {
      Value V = parseUnary();
      Reg R = B->cmpSet(CondCode::EQ, V.Op, Operand::imm(0));
      CType Ty;
      return {Operand(R), Ty};
    }
    return parsePrimary();
  }

  Value parsePrimary() {
    if (at(TokKind::Number)) {
      int64_t V = cur().Value;
      ++Pos;
      CType Ty;
      Ty.Bytes = 8;
      return {Operand::imm(V), Ty};
    }
    if (accept(TokKind::LParen)) {
      Value V = parseExpr();
      expect(TokKind::RParen);
      return V;
    }
    if (at(TokKind::Identifier)) {
      std::string Name = cur().Text;
      ++Pos;
      auto It = Scope.find(Name);
      if (It == Scope.end()) {
        fail(strformat("line %u: unknown variable '%s'", cur().Line,
                       Name.c_str()));
        return {Operand::imm(0), CType{}};
      }
      Reg VarReg = It->second.first;
      CType VarTy = It->second.second;
      if (at(TokKind::LBracket)) {
        if (!VarTy.IsPointer) {
          fail(strformat("line %u: '%s' is not a pointer", cur().Line,
                         Name.c_str()));
          return {Operand::imm(0), CType{}};
        }
        ++Pos;
        Value Idx = parseExpr();
        expect(TokKind::RBracket);
        Reg Addr = emitElementAddress(VarReg, VarTy, Idx);
        CType ElemTy = VarTy;
        ElemTy.IsPointer = false;
        return emitLoad(Addr, ElemTy);
      }
      return {Operand(VarReg), VarTy};
    }
    fail(strformat("line %u: expected an expression, found %s", cur().Line,
                   tokKindName(cur().Kind)));
    ++Pos;
    return {Operand::imm(0), CType{}};
  }

  // --- IR emission helpers -------------------------------------------------

  Operand emitFloatImm(double V) {
    // Materialize a double constant through its bit pattern.
    int64_t Bits;
    static_assert(sizeof(Bits) == sizeof(V), "layout");
    memcpy(&Bits, &V, sizeof(Bits));
    Reg R = B->mov(Operand::imm(Bits));
    return R;
  }

  /// base + index * elemsize, emitted naively (strength reduction turns
  /// this into a pointer induction variable later).
  Reg emitElementAddress(Reg Base, const CType &PtrTy, const Value &Idx) {
    Operand Scaled = Idx.Op;
    if (PtrTy.Bytes > 1) {
      unsigned Shift = 0;
      switch (PtrTy.Bytes) {
      case 2:
        Shift = 1;
        break;
      case 4:
        Shift = 2;
        break;
      case 8:
        Shift = 3;
        break;
      }
      if (Scaled.isImm())
        Scaled = Operand::imm(Scaled.imm() * PtrTy.Bytes);
      else
        Scaled = B->shl(Scaled, Operand::imm(Shift));
    }
    return B->add(Base, Scaled);
  }

  Value emitLoad(Reg Addr, const CType &ElemTy) {
    Reg R = B->load(Address(Addr, 0), ElemTy.width(),
                    /*Sign=*/!ElemTy.Unsigned && !ElemTy.IsFloat,
                    ElemTy.IsFloat);
    CType Ty = ElemTy;
    return {Operand(R), Ty};
  }

  void emitStore(Reg Addr, const CType &ElemTy, const Value &V) {
    B->store(Address(Addr, 0), V.Op, ElemTy.width(), ElemTy.IsFloat);
  }

  /// int <-> float conversions when the context demands it.
  Value coerce(Value V, const CType &To) {
    if (To.IsFloat && !V.Ty.IsFloat && !V.Ty.IsPointer) {
      Reg R = B->cvtIF(V.Op);
      Value Out{Operand(R), To};
      return Out;
    }
    if (!To.IsFloat && V.Ty.IsFloat && !To.IsPointer) {
      Reg R = B->cvtFI(V.Op);
      Value Out{Operand(R), To};
      return Out;
    }
    return V;
  }

  Value emitBinary(TokKind Op, Value L, Value R) {
    LastCmp.reset();
    // Pointer arithmetic: p + i scales by the element size.
    if ((Op == TokKind::Plus || Op == TokKind::Minus) &&
        (L.Ty.IsPointer != R.Ty.IsPointer)) {
      Value &Ptr = L.Ty.IsPointer ? L : R;
      Value &Int = L.Ty.IsPointer ? R : L;
      Operand Scaled = Int.Op;
      if (Ptr.Ty.Bytes > 1) {
        if (Scaled.isImm())
          Scaled = Operand::imm(Scaled.imm() * Ptr.Ty.Bytes);
        else
          Scaled = B->mul(Scaled, Operand::imm(Ptr.Ty.Bytes));
      }
      Reg Out = Op == TokKind::Plus ? B->add(Ptr.Op, Scaled)
                                    : B->sub(Ptr.Op, Scaled);
      return {Operand(Out), Ptr.Ty};
    }

    bool FloatOp = L.Ty.IsFloat || R.Ty.IsFloat;
    if (FloatOp) {
      CType FTy;
      FTy.IsFloat = true;
      FTy.Bytes = 8;
      L = coerce(L, FTy);
      R = coerce(R, FTy);
      Reg Out;
      switch (Op) {
      case TokKind::Plus:
        Out = B->fadd(L.Op, R.Op);
        break;
      case TokKind::Minus:
        Out = B->fsub(L.Op, R.Op);
        break;
      case TokKind::Star:
        Out = B->fmul(L.Op, R.Op);
        break;
      case TokKind::Slash:
        Out = B->fdiv(L.Op, R.Op);
        break;
      default:
        fail("unsupported float operation");
        return L;
      }
      return {Operand(Out), FTy};
    }

    bool Uns = L.Ty.Unsigned || R.Ty.Unsigned;
    Opcode OC;
    switch (Op) {
    case TokKind::Plus:
      OC = Opcode::Add;
      break;
    case TokKind::Minus:
      OC = Opcode::Sub;
      break;
    case TokKind::Star:
      OC = Opcode::Mul;
      break;
    case TokKind::Slash:
      OC = Uns ? Opcode::DivU : Opcode::DivS;
      break;
    case TokKind::Percent:
      OC = Uns ? Opcode::RemU : Opcode::RemS;
      break;
    case TokKind::Amp:
      OC = Opcode::And;
      break;
    case TokKind::Pipe:
      OC = Opcode::Or;
      break;
    case TokKind::Caret:
      OC = Opcode::Xor;
      break;
    case TokKind::Shl:
      OC = Opcode::Shl;
      break;
    case TokKind::Shr:
      OC = Uns ? Opcode::ShrL : Opcode::ShrA;
      break;
    default:
      fail("unsupported operator");
      return L;
    }
    Reg Out = B->alu(OC, L.Op, R.Op);
    CType Ty;
    Ty.Bytes = 8;
    Ty.Unsigned = Uns;
    return {Operand(Out), Ty};
  }

  Value emitCompare(TokKind Op, Value L, Value R) {
    // Pointers compare unsigned; mixed signedness promotes to unsigned.
    bool Uns = L.Ty.Unsigned || R.Ty.Unsigned || L.Ty.IsPointer ||
               R.Ty.IsPointer;
    CondCode CC;
    switch (Op) {
    case TokKind::Lt:
      CC = Uns ? CondCode::LTu : CondCode::LTs;
      break;
    case TokKind::Gt:
      CC = Uns ? CondCode::GTu : CondCode::GTs;
      break;
    case TokKind::Le:
      CC = Uns ? CondCode::LEu : CondCode::LEs;
      break;
    case TokKind::Ge:
      CC = Uns ? CondCode::GEu : CondCode::GEs;
      break;
    case TokKind::EqEq:
      CC = CondCode::EQ;
      break;
    case TokKind::NotEq:
      CC = CondCode::NE;
      break;
    default:
      fail("unsupported comparison");
      return L;
    }
    Reg Out = B->cmpSet(CC, L.Op, R.Op);
    LastCmp = CmpInfo{Operand(Out), CC, L.Op, R.Op};
    CType Ty;
    return {Operand(Out), Ty};
  }
};

} // namespace

std::unique_ptr<Module> vpo::cc::compileC(const std::string &Source,
                                          std::string *Error) {
  return CompilerImpl(Source, Error).run();
}
