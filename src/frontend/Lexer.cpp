//===- frontend/Lexer.cpp -------------------------------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "frontend/Lexer.h"

#include "support/StringUtils.h"

#include <cctype>
#include <map>

using namespace vpo;
using namespace vpo::cc;

const char *vpo::cc::tokKindName(TokKind K) {
  switch (K) {
  case TokKind::End:
    return "end of input";
  case TokKind::Identifier:
    return "identifier";
  case TokKind::Number:
    return "number";
  case TokKind::KwChar:
    return "'char'";
  case TokKind::KwShort:
    return "'short'";
  case TokKind::KwInt:
    return "'int'";
  case TokKind::KwLong:
    return "'long'";
  case TokKind::KwUnsigned:
    return "'unsigned'";
  case TokKind::KwSigned:
    return "'signed'";
  case TokKind::KwFloat:
    return "'float'";
  case TokKind::KwDouble:
    return "'double'";
  case TokKind::KwVoid:
    return "'void'";
  case TokKind::KwFor:
    return "'for'";
  case TokKind::KwWhile:
    return "'while'";
  case TokKind::KwIf:
    return "'if'";
  case TokKind::KwElse:
    return "'else'";
  case TokKind::KwReturn:
    return "'return'";
  case TokKind::KwRestrict:
    return "'restrict'";
  case TokKind::LParen:
    return "'('";
  case TokKind::RParen:
    return "')'";
  case TokKind::LBrace:
    return "'{'";
  case TokKind::RBrace:
    return "'}'";
  case TokKind::LBracket:
    return "'['";
  case TokKind::RBracket:
    return "']'";
  case TokKind::Semi:
    return "';'";
  case TokKind::Comma:
    return "','";
  case TokKind::Star:
    return "'*'";
  case TokKind::Plus:
    return "'+'";
  case TokKind::Minus:
    return "'-'";
  case TokKind::Slash:
    return "'/'";
  case TokKind::Percent:
    return "'%'";
  case TokKind::Amp:
    return "'&'";
  case TokKind::Pipe:
    return "'|'";
  case TokKind::Caret:
    return "'^'";
  case TokKind::Tilde:
    return "'~'";
  case TokKind::Shl:
    return "'<<'";
  case TokKind::Shr:
    return "'>>'";
  case TokKind::Assign:
    return "'='";
  case TokKind::PlusAssign:
    return "'+='";
  case TokKind::MinusAssign:
    return "'-='";
  case TokKind::PlusPlus:
    return "'++'";
  case TokKind::MinusMinus:
    return "'--'";
  case TokKind::Lt:
    return "'<'";
  case TokKind::Gt:
    return "'>'";
  case TokKind::Le:
    return "'<='";
  case TokKind::Ge:
    return "'>='";
  case TokKind::EqEq:
    return "'=='";
  case TokKind::NotEq:
    return "'!='";
  case TokKind::Not:
    return "'!'";
  case TokKind::AndAnd:
    return "'&&'";
  case TokKind::OrOr:
    return "'||'";
  case TokKind::Question:
    return "'?'";
  case TokKind::Colon:
    return "':'";
  }
  return "?";
}

std::vector<Token> vpo::cc::tokenize(const std::string &Source,
                                     std::string &Error) {
  static const std::map<std::string, TokKind> Keywords = {
      {"char", TokKind::KwChar},       {"short", TokKind::KwShort},
      {"int", TokKind::KwInt},         {"long", TokKind::KwLong},
      {"unsigned", TokKind::KwUnsigned}, {"signed", TokKind::KwSigned},
      {"float", TokKind::KwFloat},     {"double", TokKind::KwDouble},
      {"void", TokKind::KwVoid},       {"for", TokKind::KwFor},
      {"while", TokKind::KwWhile},     {"if", TokKind::KwIf},
      {"else", TokKind::KwElse},       {"return", TokKind::KwReturn},
      {"restrict", TokKind::KwRestrict}};

  std::vector<Token> Toks;
  unsigned Line = 1;
  size_t I = 0;
  auto Push = [&](TokKind K) {
    Token T;
    T.Kind = K;
    T.Line = Line;
    Toks.push_back(std::move(T));
  };

  while (I < Source.size()) {
    char C = Source[I];
    if (C == '\n') {
      ++Line;
      ++I;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(C))) {
      ++I;
      continue;
    }
    // Comments.
    if (C == '/' && I + 1 < Source.size()) {
      if (Source[I + 1] == '/') {
        while (I < Source.size() && Source[I] != '\n')
          ++I;
        continue;
      }
      if (Source[I + 1] == '*') {
        I += 2;
        while (I + 1 < Source.size() &&
               !(Source[I] == '*' && Source[I + 1] == '/')) {
          if (Source[I] == '\n')
            ++Line;
          ++I;
        }
        I = std::min(I + 2, Source.size());
        continue;
      }
    }
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      size_t B = I;
      while (I < Source.size() &&
             (std::isalnum(static_cast<unsigned char>(Source[I])) ||
              Source[I] == '_'))
        ++I;
      std::string Word = Source.substr(B, I - B);
      auto It = Keywords.find(Word);
      Token T;
      T.Line = Line;
      if (It != Keywords.end()) {
        T.Kind = It->second;
      } else {
        T.Kind = TokKind::Identifier;
        T.Text = Word;
      }
      Toks.push_back(std::move(T));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(C))) {
      size_t B = I;
      int Base = 10;
      if (C == '0' && I + 1 < Source.size() &&
          (Source[I + 1] == 'x' || Source[I + 1] == 'X')) {
        Base = 16;
        I += 2;
      }
      while (I < Source.size() &&
             std::isalnum(static_cast<unsigned char>(Source[I])))
        ++I;
      Token T;
      T.Kind = TokKind::Number;
      T.Line = Line;
      std::string Digits = Source.substr(B, I - B);
      char *End = nullptr;
      T.Value = static_cast<int64_t>(
          strtoll(Digits.c_str(), &End, Base == 16 ? 16 : 10));
      if (End == Digits.c_str() || *End != '\0') {
        Error = strformat("line %u: malformed number '%s'", Line,
                          Digits.c_str());
        return Toks;
      }
      Toks.push_back(std::move(T));
      continue;
    }

    auto Two = [&](char Next) {
      return I + 1 < Source.size() && Source[I + 1] == Next;
    };
    switch (C) {
    case '(':
      Push(TokKind::LParen);
      break;
    case ')':
      Push(TokKind::RParen);
      break;
    case '{':
      Push(TokKind::LBrace);
      break;
    case '}':
      Push(TokKind::RBrace);
      break;
    case '[':
      Push(TokKind::LBracket);
      break;
    case ']':
      Push(TokKind::RBracket);
      break;
    case ';':
      Push(TokKind::Semi);
      break;
    case ',':
      Push(TokKind::Comma);
      break;
    case '*':
      Push(TokKind::Star);
      break;
    case '~':
      Push(TokKind::Tilde);
      break;
    case '%':
      Push(TokKind::Percent);
      break;
    case '^':
      Push(TokKind::Caret);
      break;
    case '?':
      Push(TokKind::Question);
      break;
    case ':':
      Push(TokKind::Colon);
      break;
    case '/':
      Push(TokKind::Slash);
      break;
    case '+':
      if (Two('+')) {
        Push(TokKind::PlusPlus);
        ++I;
      } else if (Two('=')) {
        Push(TokKind::PlusAssign);
        ++I;
      } else {
        Push(TokKind::Plus);
      }
      break;
    case '-':
      if (Two('-')) {
        Push(TokKind::MinusMinus);
        ++I;
      } else if (Two('=')) {
        Push(TokKind::MinusAssign);
        ++I;
      } else {
        Push(TokKind::Minus);
      }
      break;
    case '&':
      if (Two('&')) {
        Push(TokKind::AndAnd);
        ++I;
      } else {
        Push(TokKind::Amp);
      }
      break;
    case '|':
      if (Two('|')) {
        Push(TokKind::OrOr);
        ++I;
      } else {
        Push(TokKind::Pipe);
      }
      break;
    case '<':
      if (Two('<')) {
        Push(TokKind::Shl);
        ++I;
      } else if (Two('=')) {
        Push(TokKind::Le);
        ++I;
      } else {
        Push(TokKind::Lt);
      }
      break;
    case '>':
      if (Two('>')) {
        Push(TokKind::Shr);
        ++I;
      } else if (Two('=')) {
        Push(TokKind::Ge);
        ++I;
      } else {
        Push(TokKind::Gt);
      }
      break;
    case '=':
      if (Two('=')) {
        Push(TokKind::EqEq);
        ++I;
      } else {
        Push(TokKind::Assign);
      }
      break;
    case '!':
      if (Two('=')) {
        Push(TokKind::NotEq);
        ++I;
      } else {
        Push(TokKind::Not);
      }
      break;
    default:
      Error = strformat("line %u: unexpected character '%c'", Line, C);
      return Toks;
    }
    ++I;
  }
  Push(TokKind::End);
  return Toks;
}
