//===- coalesce/RuntimeChecks.cpp -----------------------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "coalesce/RuntimeChecks.h"

#include "ir/Function.h"
#include "ir/IRBuilder.h"
#include "support/MathExtras.h"
#include "support/Remark.h"

#include <map>
#include <optional>

using namespace vpo;

namespace {

std::string regName(Reg R) { return "r" + std::to_string(R.Id); }

} // namespace

BasicBlock *vpo::buildRuntimeChecks(Function &F, const CheckPlan &Plan,
                                    BasicBlock *SafeLoop,
                                    BasicBlock *FastLoop,
                                    unsigned &InstrCount,
                                    const RemarkEmitter *RE) {
  BasicBlock *BB = F.addBlock(F.uniqueBlockName(FastLoop->name() + ".checks"));
  IRBuilder B(&F);
  B.setInsertBlock(BB);
  size_t Before = BB->size();

  // Accumulate failures into one flag; a single branch dispatches.
  Reg Bad = B.mov(Operand::imm(0));

  // --- Alignment checks --------------------------------------------------
  for (const CheckPlan::Align &A : Plan.AlignChecks) {
    Operand AddrOp = A.Base;
    if (A.StartOff != 0)
      AddrOp = B.add(A.Base, Operand::imm(A.StartOff));
    Reg Low = B.and_(AddrOp, Operand::imm(static_cast<int64_t>(
                                 A.WideBytes - 1)));
    Reg Misaligned = B.cmpSet(CondCode::NE, Low, Operand::imm(0));
    B.aluTo(Bad, Opcode::Or, Bad, Misaligned);
    if (RE && RE->enabled())
      RE->emit(RE->start("alignment-check")
                   .block(BB->name())
                   .arg("base", regName(A.Base))
                   .arg("start-off", A.StartOff)
                   .arg("wide", A.WideBytes));
  }

  // --- Overlap checks ----------------------------------------------------
  if (!Plan.OverlapChecks.empty()) {
    // Extent arithmetic scales the traversed byte span by step ratios
    // using shifts, which requires power-of-two steps. A non-power-of-two
    // step (or a missing/odd loop bound step) cannot be checked cheaply;
    // rather than aborting, such pairs are treated as *always
    // overlapping*, so the dispatch conservatively takes the safe loop —
    // coalescing is skipped for that invocation, never the process.
    uint64_t BStep = static_cast<uint64_t>(
        Plan.BoundStep < 0 ? -Plan.BoundStep : Plan.BoundStep);
    bool BoundFeasible = Plan.BoundStep != 0 && isPowerOf2(BStep);

    // span = number of bytes the bound IV will traverse (positive).
    Reg Span;
    if (BoundFeasible)
      Span = Plan.BoundStep > 0 ? B.sub(Plan.Limit, Plan.BoundIV)
                                : B.sub(Plan.BoundIV, Plan.Limit);

    // Interval [Lo, Hi) of each partition, computed once per base+step.
    // An empty optional means the extent cannot be bounded at run time.
    using Interval = std::optional<std::pair<Reg, Reg>>;
    std::map<std::pair<unsigned, int64_t>, Interval> Cache;
    auto ComputeInterval = [&](const CheckPlan::Extent &E) -> Interval {
      auto Key = std::make_pair(E.Base.Id, E.Step);
      auto It = Cache.find(Key);
      if (It != Cache.end())
        return It->second;

      Reg Lo, Hi;
      if (E.Step == 0) {
        Lo = B.add(E.Base, Operand::imm(E.MinOff));
        Hi = B.add(E.Base, Operand::imm(E.MaxOffEnd));
      } else {
        uint64_t SMag = static_cast<uint64_t>(E.Step < 0 ? -E.Step : E.Step);
        if (!BoundFeasible || !isPowerOf2(SMag)) {
          Cache[Key] = std::nullopt;
          return std::nullopt;
        }
        // ext = span * SMag / BStep (both powers of two).
        Operand Ext = Span;
        if (SMag > BStep)
          Ext = B.shl(Span, Operand::imm(log2Floor(SMag / BStep)));
        else if (SMag < BStep)
          Ext = B.shrL(Span, Operand::imm(log2Floor(BStep / SMag)));
        if (E.Step > 0) {
          // Iterations touch [base+MinOff, base+ext-step+MaxOffEnd).
          Lo = B.add(E.Base, Operand::imm(E.MinOff));
          Reg EndBase = B.add(E.Base, Ext);
          Hi = B.add(EndBase, Operand::imm(E.MaxOffEnd - E.Step));
        } else {
          // Descending: [base-ext+|step|+MinOff, base+MaxOffEnd).
          Reg NegBase = B.sub(E.Base, Ext);
          Lo = B.add(NegBase,
                     Operand::imm(static_cast<int64_t>(SMag) + E.MinOff));
          Hi = B.add(E.Base, Operand::imm(E.MaxOffEnd));
        }
      }
      Cache[Key] = std::make_pair(Lo, Hi);
      return std::make_pair(Lo, Hi);
    };

    for (const CheckPlan::Overlap &O : Plan.OverlapChecks) {
      Interval IA = ComputeInterval(O.A);
      Interval IB = ComputeInterval(O.B);
      if (!IA || !IB) {
        // Uncheckable pair: force the safe loop.
        B.aluTo(Bad, Opcode::Or, Bad, Operand::imm(1));
        if (RE && RE->enabled())
          RE->emit(RE->start("overlap-check-uncheckable")
                       .block(BB->name())
                       .arg("base-a", regName(O.A.Base))
                       .arg("base-b", regName(O.B.Base))
                       .arg("why", "non-power-of-two-step"));
        continue;
      }
      auto [LoA, HiA] = *IA;
      auto [LoB, HiB] = *IB;
      Reg C1 = B.cmpSet(CondCode::LTu, LoA, HiB);
      Reg C2 = B.cmpSet(CondCode::LTu, LoB, HiA);
      Reg Both = B.and_(C1, C2);
      B.aluTo(Bad, Opcode::Or, Bad, Both);
      if (RE && RE->enabled())
        RE->emit(RE->start("overlap-check")
                     .block(BB->name())
                     .arg("base-a", regName(O.A.Base))
                     .arg("step-a", O.A.Step)
                     .arg("base-b", regName(O.B.Base))
                     .arg("step-b", O.B.Step));
    }
  }

  B.br(CondCode::NE, Bad, Operand::imm(0), SafeLoop, FastLoop);
  InstrCount = static_cast<unsigned>(BB->size() - Before);
  return BB;
}
