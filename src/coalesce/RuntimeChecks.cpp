//===- coalesce/RuntimeChecks.cpp -----------------------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "coalesce/RuntimeChecks.h"

#include "ir/Function.h"
#include "ir/IRBuilder.h"
#include "support/Error.h"
#include "support/MathExtras.h"

#include <map>

using namespace vpo;

BasicBlock *vpo::buildRuntimeChecks(Function &F, const CheckPlan &Plan,
                                    BasicBlock *SafeLoop,
                                    BasicBlock *FastLoop,
                                    unsigned &InstrCount) {
  BasicBlock *BB = F.addBlock(F.uniqueBlockName(FastLoop->name() + ".checks"));
  IRBuilder B(&F);
  B.setInsertBlock(BB);
  size_t Before = BB->size();

  // Accumulate failures into one flag; a single branch dispatches.
  Reg Bad = B.mov(Operand::imm(0));

  // --- Alignment checks --------------------------------------------------
  for (const CheckPlan::Align &A : Plan.AlignChecks) {
    Operand AddrOp = A.Base;
    if (A.StartOff != 0)
      AddrOp = B.add(A.Base, Operand::imm(A.StartOff));
    Reg Low = B.and_(AddrOp, Operand::imm(static_cast<int64_t>(
                                 A.WideBytes - 1)));
    Reg Misaligned = B.cmpSet(CondCode::NE, Low, Operand::imm(0));
    B.aluTo(Bad, Opcode::Or, Bad, Misaligned);
  }

  // --- Overlap checks ----------------------------------------------------
  if (!Plan.OverlapChecks.empty()) {
    assert(Plan.BoundStep != 0 && "overlap checks need the loop bound");
    uint64_t BStep = static_cast<uint64_t>(
        Plan.BoundStep < 0 ? -Plan.BoundStep : Plan.BoundStep);
    assert(isPowerOf2(BStep) && "bound step must be a power of two");

    // span = number of bytes the bound IV will traverse (positive).
    Reg Span = Plan.BoundStep > 0 ? B.sub(Plan.Limit, Plan.BoundIV)
                                  : B.sub(Plan.BoundIV, Plan.Limit);

    // Interval [Lo, Hi) of each partition, computed once per base+step.
    std::map<std::pair<unsigned, int64_t>, std::pair<Reg, Reg>> Cache;
    auto ComputeInterval = [&](const CheckPlan::Extent &E) {
      auto Key = std::make_pair(E.Base.Id, E.Step);
      auto It = Cache.find(Key);
      if (It != Cache.end())
        return It->second;

      Reg Lo, Hi;
      if (E.Step == 0) {
        Lo = B.add(E.Base, Operand::imm(E.MinOff));
        Hi = B.add(E.Base, Operand::imm(E.MaxOffEnd));
      } else {
        uint64_t SMag = static_cast<uint64_t>(E.Step < 0 ? -E.Step : E.Step);
        if (!isPowerOf2(SMag))
          fatalError("runtime overlap check requires a power-of-two step");
        // ext = span * SMag / BStep (both powers of two).
        Operand Ext = Span;
        if (SMag > BStep)
          Ext = B.shl(Span, Operand::imm(log2Floor(SMag / BStep)));
        else if (SMag < BStep)
          Ext = B.shrL(Span, Operand::imm(log2Floor(BStep / SMag)));
        if (E.Step > 0) {
          // Iterations touch [base+MinOff, base+ext-step+MaxOffEnd).
          Lo = B.add(E.Base, Operand::imm(E.MinOff));
          Reg EndBase = B.add(E.Base, Ext);
          Hi = B.add(EndBase, Operand::imm(E.MaxOffEnd - E.Step));
        } else {
          // Descending: [base-ext+|step|+MinOff, base+MaxOffEnd).
          Reg NegBase = B.sub(E.Base, Ext);
          Lo = B.add(NegBase,
                     Operand::imm(static_cast<int64_t>(SMag) + E.MinOff));
          Hi = B.add(E.Base, Operand::imm(E.MaxOffEnd));
        }
      }
      Cache[Key] = {Lo, Hi};
      return std::make_pair(Lo, Hi);
    };

    for (const CheckPlan::Overlap &O : Plan.OverlapChecks) {
      auto [LoA, HiA] = ComputeInterval(O.A);
      auto [LoB, HiB] = ComputeInterval(O.B);
      Reg C1 = B.cmpSet(CondCode::LTu, LoA, HiB);
      Reg C2 = B.cmpSet(CondCode::LTu, LoB, HiA);
      Reg Both = B.and_(C1, C2);
      B.aluTo(Bad, Opcode::Or, Bad, Both);
    }
  }

  B.br(CondCode::NE, Bad, Operand::imm(0), SafeLoop, FastLoop);
  InstrCount = static_cast<unsigned>(BB->size() - Before);
  return BB;
}
