//===- coalesce/Rewrite.cpp -----------------------------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "coalesce/Rewrite.h"

#include "analysis/InductionVars.h"
#include "ir/Function.h"
#include "support/Error.h"

#include <algorithm>

using namespace vpo;

RewriteCounts vpo::applyRunsToBlock(Function &F, BasicBlock &Body,
                                    const MemoryPartitions &MP,
                                    const LoopScalarInfo &LSI,
                                    const std::vector<CoalesceRun> &Runs) {
  RewriteCounts Counts;
  auto Acc = accumulatedIVSteps(Body, LSI);
  auto AccFor = [&Acc](size_t Idx, Reg Base) -> int64_t {
    auto It = Acc[Idx].find(Base.Id);
    return It == Acc[Idx].end() ? 0 : It->second;
  };

  // Deferred insertions: instruction to place before original index Pos.
  struct Insertion {
    size_t Pos;
    Instruction I;
  };
  std::vector<Insertion> Insertions;

  for (const CoalesceRun &Run : Runs) {
    const Partition &P = MP.partitions()[Run.PartitionIdx];
    Reg WideReg = F.newReg();
    MemWidth WideW = widthFromBytes(Run.WideBytes);

    size_t FirstIdx = P.Refs[Run.Members.front()].InstIdx;
    size_t LastIdx = P.Refs[Run.Members.back()].InstIdx;

    // Replace the members.
    for (size_t M : Run.Members) {
      const MemRef &R = P.Refs[M];
      Instruction &Old = Body.insts()[R.InstIdx];
      assert(Old.isMemory() && Old.W == R.W &&
             "partition data out of sync with the block");
      int64_t Lane = R.Offset - Run.StartOff;
      assert(Lane >= 0 &&
             Lane + widthBytes(R.W) <= Run.WideBytes && "lane out of range");

      Instruction New;
      if (Run.IsLoad) {
        New.Op = Opcode::ExtractF;
        New.Dst = Old.Dst;
        New.A = WideReg;
        New.B = Operand::imm(Lane);
        New.W = R.W;
        New.SignExtend = R.SignExtend;
        New.IsFloat = Run.IsFloat;
        ++Counts.NarrowLoadsRemoved;
      } else {
        New.Op = Opcode::InsertF;
        New.Dst = WideReg;
        New.A = WideReg;
        New.B = Operand::imm(Lane);
        New.C = Old.A;
        New.W = R.W;
        New.IsFloat = Run.IsFloat;
        ++Counts.NarrowStoresRemoved;
      }
      Old = New;
    }

    // Queue the wide reference.
    if (Run.IsLoad && Run.UseUnaligned) {
      // The paper's UnAlignedWideType: fetch the two aligned quadwords
      // containing the run and funnel the bytes together (Alpha
      // ldq_u + extql/extqh + or). Lane extracts then use static offsets
      // into the merged register.
      int64_t Off = Run.StartOff - AccFor(FirstIdx, P.Base);
      Reg AddrReg = F.newReg();
      Instruction AddrI;
      AddrI.Op = Opcode::Add;
      AddrI.Dst = AddrReg;
      AddrI.A = P.Base;
      AddrI.B = Operand::imm(Off);
      Insertions.push_back({FirstIdx, std::move(AddrI)});

      Reg W1 = F.newReg(), W2 = F.newReg();
      Instruction L1;
      L1.Op = Opcode::LoadWideU;
      L1.Dst = W1;
      L1.W = MemWidth::W8;
      L1.Addr = Address(AddrReg, 0);
      Insertions.push_back({FirstIdx, std::move(L1)});
      Instruction L2;
      L2.Op = Opcode::LoadWideU;
      L2.Dst = W2;
      L2.W = MemWidth::W8;
      L2.Addr = Address(AddrReg, static_cast<int64_t>(Run.WideBytes) - 1);
      Insertions.push_back({FirstIdx, std::move(L2)});

      Reg LoPart = F.newReg();
      Instruction ExtLo;
      ExtLo.Op = Opcode::ExtractF;
      ExtLo.Dst = LoPart;
      ExtLo.A = W1;
      ExtLo.B = AddrReg;
      ExtLo.W = MemWidth::W8;
      Insertions.push_back({FirstIdx, std::move(ExtLo)});
      Reg HiPart = F.newReg();
      Instruction ExtHi;
      ExtHi.Op = Opcode::ExtQHi;
      ExtHi.Dst = HiPart;
      ExtHi.A = W2;
      ExtHi.B = AddrReg;
      Insertions.push_back({FirstIdx, std::move(ExtHi)});
      Instruction Merge;
      Merge.Op = Opcode::Or;
      Merge.Dst = WideReg;
      Merge.A = LoPart;
      Merge.B = HiPart;
      Insertions.push_back({FirstIdx, std::move(Merge)});
      Counts.WideLoads += 2;
    } else if (Run.IsLoad) {
      Instruction Wide;
      Wide.Op = Opcode::Load;
      Wide.Dst = WideReg;
      Wide.W = WideW;
      Wide.Addr = Address(P.Base, Run.StartOff - AccFor(FirstIdx, P.Base));
      Insertions.push_back({FirstIdx, std::move(Wide)});
      ++Counts.WideLoads;
    } else {
      Instruction Wide;
      Wide.Op = Opcode::Store;
      Wide.A = WideReg;
      Wide.W = WideW;
      Wide.Addr = Address(P.Base, Run.StartOff - AccFor(LastIdx, P.Base));
      Insertions.push_back({LastIdx + 1, std::move(Wide)});
      ++Counts.WideStores;
    }
  }

  // Apply insertions back-to-front so earlier positions stay valid.
  // Within one position, walking the emission list backward and inserting
  // each instruction at the position keeps the emission order intact.
  std::stable_sort(Insertions.begin(), Insertions.end(),
                   [](const Insertion &A, const Insertion &B) {
                     return A.Pos < B.Pos;
                   });
  for (size_t I = Insertions.size(); I-- > 0;)
    Body.insertAt(Insertions[I].Pos, std::move(Insertions[I].I));

  return Counts;
}
