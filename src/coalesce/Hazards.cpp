//===- coalesce/Hazards.cpp -----------------------------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "coalesce/Hazards.h"

#include "analysis/BaseOrigin.h"
#include "ir/Function.h"

#include <algorithm>

using namespace vpo;

namespace {

/// [Lo, Hi) byte interval relative to a partition's iteration-start base.
struct Span {
  int64_t Lo, Hi;
  bool overlaps(const Span &O) const { return Lo < O.Hi && O.Lo < Hi; }
};

Span refSpan(const MemRef &R) {
  return Span{R.Offset, R.Offset + widthBytes(R.W)};
}

} // namespace

const char *vpo::hazardClauseName(HazardClause C) {
  switch (C) {
  case HazardClause::None:
    return "none";
  case HazardClause::UnclassifiedRef:
    return "unclassified-ref";
  case HazardClause::SamePartitionOverlap:
    return "same-partition-overlap";
  }
  return "unknown";
}

HazardResult vpo::analyzeRunHazards(const CoalesceRun &Run,
                                    const MemoryPartitions &MP,
                                    const BasicBlock &Body, const Function &F,
                                    const AliasPairSet *ProvenDisjoint) {
  HazardResult Res;
  const Partition &P = MP.partitions()[Run.PartitionIdx];
  Span RunSpan{Run.StartOff,
               Run.StartOff + static_cast<int64_t>(Run.WideBytes)};

  // Wide reference position: first member for loads, last for stores.
  size_t WidePos = Run.IsLoad
                       ? P.Refs[Run.Members.front()].InstIdx
                       : P.Refs[Run.Members.back()].InstIdx;

  // Instruction indices of the run's own members (skipped while scanning).
  std::vector<size_t> MemberPos;
  for (size_t M : Run.Members)
    MemberPos.push_back(P.Refs[M].InstIdx);

  auto IsMember = [&MemberPos](size_t Idx) {
    return std::find(MemberPos.begin(), MemberPos.end(), Idx) !=
           MemberPos.end();
  };

  bool PBaseNoAlias = baseIsNoAlias(F, P.Base);
  BaseOrigin POrigin = traceBaseOrigin(F, P.Base);

  // The window of instruction indices whose memory operations the wide
  // reference moves across: (WidePos, lastMember] for loads is empty —
  // loads move *up*, so the window is [firstMember, lastMember] excluding
  // members; for stores the wide store moves *down* past everything in
  // [firstMember, WidePos).
  size_t WinLo = MemberPos.front();
  size_t WinHi = MemberPos.back();
  (void)WidePos;

  for (size_t Idx = WinLo; Idx <= WinHi; ++Idx) {
    if (IsMember(Idx))
      continue;
    const Instruction &I = Body.insts()[Idx];
    if (!I.isMemory())
      continue;

    int OtherPart = MP.partitionIdFor(Idx);
    if (OtherPart < 0) {
      // Unclassified reference in the window: no basis for reasoning.
      Res.Safe = false;
      Res.Clause = HazardClause::UnclassifiedRef;
      Res.HazardInstIdx = Idx;
      return Res;
    }
    const Partition &Q = MP.partitions()[static_cast<size_t>(OtherPart)];
    bool SamePartition = static_cast<size_t>(OtherPart) == Run.PartitionIdx;

    // For a load run, a load in the window is harmless. For a store run, a
    // load between a member store and the wide store may observe memory
    // before the (deferred) wide store lands.
    bool Conflicts = I.isStore() || !Run.IsLoad;
    if (!Conflicts)
      continue;

    if (SamePartition) {
      // Exact offsets known: a static hazard only if the spans overlap.
      const MemRef *QR = nullptr;
      for (const MemRef &R : Q.Refs)
        if (R.InstIdx == Idx) {
          QR = &R;
          break;
        }
      assert(QR && "classified reference missing from its partition");
      if (refSpan(*QR).overlaps(RunSpan)) {
        Res.Safe = false;
        Res.Clause = HazardClause::SamePartitionOverlap;
        Res.HazardInstIdx = Idx;
        return Res;
      }
      continue;
    }

    // Cross-partition: defer to a run-time overlap check, unless parameter
    // attributes already exclude aliasing. NoAlias only separates one
    // parameter's object from *other* objects, so it proves nothing when
    // both bases derive from the same parameter.
    BaseOrigin QOrigin = traceBaseOrigin(F, Q.Base);
    bool SameObject = POrigin.traced() && QOrigin.traced() &&
                      POrigin.Param == QOrigin.Param;
    bool QBaseNoAlias = baseIsNoAlias(F, Q.Base);
    if (!SameObject && (PBaseNoAlias || QBaseNoAlias))
      continue;
    size_t A = Run.PartitionIdx, B = static_cast<size_t>(OtherPart);
    std::pair<size_t, size_t> Key{std::min(A, B), std::max(A, B)};
    if (ProvenDisjoint && ProvenDisjoint->count(Key)) {
      Res.ProvenDisjointPairs.insert(Key);
      continue;
    }
    Res.AliasPairs.insert(Key);
  }

  Res.Safe = true;
  return Res;
}
