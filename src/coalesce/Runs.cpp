//===- coalesce/Runs.cpp --------------------------------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "coalesce/Runs.h"

#include "analysis/BaseOrigin.h"
#include "ir/Function.h"
#include "support/MathExtras.h"
#include "target/TargetMachine.h"

#include <algorithm>
#include <map>

using namespace vpo;

namespace {

/// Groups the refs of one partition by (kind, width, float-ness) and emits
/// maximal power-of-two consecutive runs for one group.
void findRunsInGroup(size_t PartIdx, const Partition &P, bool IsLoad,
                     MemWidth W, bool IsFloat,
                     const std::vector<size_t> &RefIdxs, unsigned MaxWide,
                     std::vector<CoalesceRun> &Out) {
  unsigned WB = widthBytes(W);
  if (WB * 2 > MaxWide)
    return;

  // offset -> member ref indices (several refs may hit the same offset).
  std::map<int64_t, std::vector<size_t>> ByOffset;
  for (size_t RI : RefIdxs)
    ByOffset[P.Refs[RI].Offset].push_back(RI);

  // Walk the sorted unique offsets, splitting into maximal consecutive
  // sequences with spacing == width.
  std::vector<int64_t> Offsets;
  for (const auto &[Off, _] : ByOffset)
    Offsets.push_back(Off);

  size_t SeqStart = 0;
  while (SeqStart < Offsets.size()) {
    size_t SeqEnd = SeqStart + 1;
    while (SeqEnd < Offsets.size() &&
           Offsets[SeqEnd] == Offsets[SeqEnd - 1] + WB)
      ++SeqEnd;

    // Greedily carve the largest power-of-two chunks out of the sequence.
    size_t Pos = SeqStart;
    while (SeqEnd - Pos >= 2) {
      size_t MaxMembers = MaxWide / WB;
      size_t K = size_t(1) << log2Floor(std::min(SeqEnd - Pos, MaxMembers));
      if (K < 2)
        break;
      CoalesceRun Run;
      Run.PartitionIdx = PartIdx;
      Run.IsLoad = IsLoad;
      Run.NarrowW = W;
      Run.IsFloat = IsFloat;
      Run.WideBytes = static_cast<unsigned>(K) * WB;
      Run.StartOff = Offsets[Pos];
      for (size_t O = Pos; O < Pos + K; ++O)
        for (size_t RI : ByOffset[Offsets[O]])
          Run.Members.push_back(RI);
      std::sort(Run.Members.begin(), Run.Members.end(),
                [&P](size_t A, size_t B) {
                  return P.Refs[A].InstIdx < P.Refs[B].InstIdx;
                });
      Out.push_back(std::move(Run));
      Pos += K;
    }
    SeqStart = SeqEnd;
  }
}

} // namespace

std::vector<CoalesceRun> vpo::findCoalesceRuns(const MemoryPartitions &MP,
                                               const TargetMachine &TM,
                                               bool Loads, bool Stores,
                                               unsigned MaxWideBytes) {
  unsigned MaxWide = TM.maxMemWidthBytes();
  if (MaxWideBytes != 0 && MaxWideBytes < MaxWide)
    MaxWide = MaxWideBytes;

  std::vector<CoalesceRun> Runs;
  const auto &Parts = MP.partitions();
  for (size_t PI = 0; PI < Parts.size(); ++PI) {
    const Partition &P = Parts[PI];
    // Group keys: (IsLoad, W, IsFloat).
    std::map<std::tuple<bool, unsigned, bool>, std::vector<size_t>> Groups;
    for (size_t RI = 0; RI < P.Refs.size(); ++RI) {
      const MemRef &R = P.Refs[RI];
      if (R.IsLoad && !Loads)
        continue;
      if (R.IsStore && !Stores)
        continue;
      Groups[{R.IsLoad, widthBytes(R.W), R.IsFloat}].push_back(RI);
    }
    for (const auto &[Key, RefIdxs] : Groups) {
      auto [IsLoad, WB, IsFloat] = Key;
      // The wide reference is an integer load/store; float lanes are
      // reconstructed by float-aware extract/insert. A wide *float*
      // reference would need an FP register file model we do not have,
      // so f64 refs are never coalesced (nothing wider exists anyway).
      if (IsFloat && WB == 8)
        continue;
      findRunsInGroup(PI, P, IsLoad, widthFromBytes(WB), IsFloat, RefIdxs,
                      MaxWide, Runs);
    }
  }
  return Runs;
}

void vpo::analyzeRunAlignment(std::vector<CoalesceRun> &Runs,
                              const MemoryPartitions &MP,
                              const Function &F) {
  for (CoalesceRun &Run : Runs) {
    const Partition &P = MP.partitions()[Run.PartitionIdx];
    // Aligned iff base alignment >= wide width and the start offset is a
    // multiple of the wide width. The base alignment is traced through
    // derived-pointer chains back to parameter declarations. An IV base
    // keeps its alignment across iterations only if its step is also a
    // multiple of the wide width (after unrolling by the coalescing
    // factor it always is).
    bool BaseAligned = baseKnownAlignment(F, P.Base) >= Run.WideBytes;
    bool OffAligned =
        isAligned(static_cast<uint64_t>(
                      Run.StartOff < 0 ? -Run.StartOff : Run.StartOff),
                  Run.WideBytes);
    bool StepAligned =
        !P.BaseIsIV ||
        isAligned(static_cast<uint64_t>(P.Step < 0 ? -P.Step : P.Step),
                  Run.WideBytes);
    Run.NeedsAlignCheck = !(BaseAligned && OffAligned && StepAligned);
    // A preheader check tests the first iteration's address only; it is
    // conclusive for all iterations only when the step preserves the
    // alignment phase.
    Run.CheckableAlignment = StepAligned;
    // The first clause that defeated the static proof, for remarks.
    Run.AlignWhy = !StepAligned    ? "step-breaks-phase"
                   : !BaseAligned  ? "base-alignment-unknown"
                   : !OffAligned   ? "offset-misaligned"
                                   : nullptr;
  }
}
