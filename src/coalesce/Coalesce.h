//===- coalesce/Coalesce.h - Memory access coalescing ------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's primary contribution: `CoalesceMemoryAccesses` (Fig. 2).
/// For every innermost loop:
///
///   1. find induction variables;
///   2. unroll the loop if profitable (i-cache heuristic), dispatching
///      non-divisible trip counts to the original rolled loop — the
///      divisibility check of the paper's section 2.2 example;
///   3. classify memory references into partitions and compute constant
///      relative offsets;
///   4. find candidate runs and perform hazard analysis (Fig. 4);
///   5. replicate the loop, insert wide references (Fig. 3), and keep the
///      coalesced copy only if its schedule is shorter;
///   6. emit run-time alias and alignment checks that choose between the
///      safe loop and the coalesced loop (Fig. 5).
///
//===----------------------------------------------------------------------===//

#ifndef VPO_COALESCE_COALESCE_H
#define VPO_COALESCE_COALESCE_H

#include <cstdint>
#include <string>

namespace vpo {

class Function;
class RemarkSink;
class TargetMachine;

/// Which reference kinds to coalesce (the paper's Tables II/III evaluate
/// "coalesce loads" and "coalesce loads and stores" separately).
enum class CoalesceMode { None, Loads, LoadsAndStores };

struct CoalesceOptions {
  CoalesceMode Mode = CoalesceMode::LoadsAndStores;
  /// Unroll loops to expose coalescable runs (Fig. 2 line 7).
  bool Unroll = true;
  /// Force a specific unroll factor (0 = derive from reference widths and
  /// the i-cache heuristic).
  unsigned UnrollFactor = 0;
  /// Disable the i-cache-fit heuristic (ablation use only: lets forced
  /// unroll factors blow past the instruction cache to measure the cost
  /// the heuristic avoids).
  bool IgnoreICacheHeuristic = false;
  /// Emit run-time alias/alignment checks when static analysis is
  /// inconclusive. With this off, such loops are left untouched.
  bool UseRuntimeChecks = true;
  /// Run the loop-pointer offset/stride abstract interpretation
  /// (analysis/OffsetPropagation.h) so same-parameter streams proven
  /// disjoint or aligned are accepted statically instead of deferring to
  /// preheader checks. Off reproduces the pre-analysis pipeline exactly
  /// (ablation knob).
  bool OffsetAnalysis = true;
  /// Keep the coalesced loop only if its schedule beats the original
  /// (Fig. 3). Turning this off reproduces "always coalesce" — the
  /// configuration that loses on the Motorola 68030.
  bool RequireProfitability = true;
  /// Cap on wide-reference width in bytes (0 = target bus width).
  unsigned MaxWideBytes = 0;
  /// Register-pressure-aware unroll clamp: refuse factors whose modeled
  /// spill cost exceeds the modeled coalescing saving (sched/RegPressure).
  /// Off reproduces the i-cache-only factor selection (ablation knob).
  bool PressureClamp = true;
  /// Audit the Fig. 3 profitability verdicts with the exact scheduler and
  /// report `sched-audit` / `sched-optimality-gap` / `profitability-flipped`
  /// remarks. Telemetry-only: runs only when a remark sink is attached and
  /// never changes a decision.
  bool SchedAudit = true;
  /// Branch-and-bound state budget per audited schedule.
  uint64_t SchedAuditBudget = 50000;
  /// Test-only: cycles added to the coalesced side's list-schedule length
  /// before the Fig. 3 compare — a planted "wrong schedule length" the
  /// audit must catch (fuzz FaultKind::SchedLength). 0 in production.
  int ProfitabilitySkew = 0;
  /// Optional telemetry: every accept/reject decision is reported here as
  /// a structured remark (support/Remark.h). Strictly read-only — the
  /// generated code is bit-identical with any sink or none.
  RemarkSink *Remarks = nullptr;
};

struct CoalesceStats {
  unsigned LoopsExamined = 0;
  unsigned LoopsUnrolled = 0;
  unsigned LoopsTransformed = 0;
  unsigned LoadRunsCoalesced = 0;
  unsigned StoreRunsCoalesced = 0;
  unsigned UnalignedLoadRuns = 0;
  unsigned NarrowLoadsRemoved = 0;
  unsigned NarrowStoresRemoved = 0;
  unsigned RunsRejectedHazard = 0;
  unsigned RunsRejectedChecksDisabled = 0;
  /// Unique partition pairs hazard analysis could not discharge statically
  /// and deferred to a run-time overlap check — the deferral rate a
  /// stronger loop-pointer analysis (e.g. *Iterating Pointers*) would cut.
  unsigned AliasPairsDeferred = 0;
  /// Unique partition pairs the offset-propagation analysis proved
  /// disjoint, which would otherwise have been deferred to a run-time
  /// overlap check.
  unsigned AliasPairsProvenDisjoint = 0;
  /// Runs whose wide-address alignment the congruence analysis proved
  /// after exact-chain reasoning gave up (no preheader alignment check).
  unsigned AlignmentProvenStatic = 0;
  unsigned LoopsRejectedProfitability = 0;
  unsigned LoopsRejectedUnclassified = 0;
  unsigned AlignmentChecks = 0;
  unsigned OverlapChecks = 0;
  unsigned CheckInstructions = 0;

  std::string summary() const;

  /// One JSON object on a single line with every counter under a stable
  /// kebab-case key — the format of the checked-in stats-regression
  /// baselines (tests/coalesce/stats_regression_test.cpp) and the per-cell
  /// descriptor lines the bench harnesses write.
  std::string toJson() const;

  bool operator==(const CoalesceStats &O) const;
};

/// Runs the transformation over every innermost loop of \p F.
CoalesceStats coalesceMemoryAccesses(Function &F, const TargetMachine &TM,
                                     const CoalesceOptions &Opts);

} // namespace vpo

#endif // VPO_COALESCE_COALESCE_H
