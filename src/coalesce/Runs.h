//===- coalesce/Runs.h - Candidate coalescing runs ---------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A *run* is a set of same-width narrow references in one partition whose
/// offsets are consecutive and whose total width is a legal wide reference:
/// the unit the coalescer replaces with a single wide load or store.
///
//===----------------------------------------------------------------------===//

#ifndef VPO_COALESCE_RUNS_H
#define VPO_COALESCE_RUNS_H

#include "analysis/MemoryPartitions.h"

#include <vector>

namespace vpo {

class TargetMachine;
class Function;

/// One candidate coalescing opportunity.
struct CoalesceRun {
  size_t PartitionIdx = 0;
  bool IsLoad = true; ///< load run vs store run
  MemWidth NarrowW = MemWidth::W1;
  bool IsFloat = false;
  unsigned WideBytes = 0; ///< total width of the wide reference
  /// Lowest member offset relative to the iteration-start base value; the
  /// wide reference addresses Base + StartOff.
  int64_t StartOff = 0;
  /// Indices into Partition::Refs of the member references, program order.
  std::vector<size_t> Members;
  /// Filled by alignment analysis: the wide address cannot be proven
  /// aligned at compile time, so a run-time check is required.
  bool NeedsAlignCheck = true;
  /// Use the unaligned wide-load sequence (two ldq_u-style loads funneled
  /// together) instead of one aligned wide load; needs no alignment check.
  /// Load runs only, on targets with unaligned wide loads (paper Fig. 3's
  /// UnAlignedWideType).
  bool UseUnaligned = false;
  /// False when no preheader check can establish alignment: the base
  /// advances by a step that is not a multiple of the wide width, so the
  /// wide address alternates alignment across iterations. Such runs can
  /// only use the unaligned sequence (or stay narrow).
  bool CheckableAlignment = true;
  /// Why static analysis could not prove the wide address aligned
  /// (nullptr when it could): "base-alignment-unknown",
  /// "offset-misaligned", or "step-breaks-phase". Filled by
  /// analyzeRunAlignment; surfaces verbatim in optimization remarks.
  const char *AlignWhy = nullptr;
  /// Set when the offset-propagation congruence analysis proved the wide
  /// address aligned after the exact-chain reasoning of
  /// analyzeRunAlignment had given up (drives the alignment-proven-static
  /// remark and CoalesceStats::AlignmentProvenStatic).
  bool AlignProvenStatic = false;
};

/// Finds candidate runs in every partition: for each partition and access
/// kind, groups references with consecutive offsets (spacing = width) into
/// maximal power-of-two runs of 2..MaxWide/W members. Store runs must cover
/// every lane; load runs must also be gap-free (run detection enforces
/// both by construction).
std::vector<CoalesceRun> findCoalesceRuns(const MemoryPartitions &MP,
                                          const TargetMachine &TM,
                                          bool Loads, bool Stores,
                                          unsigned MaxWideBytes);

/// Static alignment analysis: clears NeedsAlignCheck when the wide address
/// Base+StartOff is provably WideBytes-aligned (parameter alignment facts
/// plus offset arithmetic). \p F provides parameter alignment attributes.
void analyzeRunAlignment(std::vector<CoalesceRun> &Runs,
                         const MemoryPartitions &MP, const Function &F);

} // namespace vpo

#endif // VPO_COALESCE_RUNS_H
