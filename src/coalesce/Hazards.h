//===- coalesce/Hazards.h - IsHazard safety analysis -------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Fig. 4 `IsHazard` analysis. Replacing a run of narrow
/// references with one wide reference *moves* memory traffic: a wide load
/// executes at the position of the run's first (dominating) load; a wide
/// store executes at the position of the run's last (dominated) store.
/// Every memory operation originally between a member and the wide
/// position must be shown harmless:
///
///  * same partition + overlapping the run's span  -> static hazard,
///    the run is rejected;
///  * different partition -> "there is a possibility of aliasing, which
///    can probably be detected only at run time": the partition pair is
///    recorded for a run-time overlap check (Fig. 5).
///
//===----------------------------------------------------------------------===//

#ifndef VPO_COALESCE_HAZARDS_H
#define VPO_COALESCE_HAZARDS_H

#include "coalesce/Runs.h"

#include <set>
#include <utility>

namespace vpo {

class BasicBlock;
class Function;

/// An unordered partition pair (by partition index) that needs a run-time
/// overlap check.
using AliasPairSet = std::set<std::pair<size_t, size_t>>;

/// Which Fig. 4 `IsHazard` clause rejected a run (None when Safe).
enum class HazardClause : uint8_t {
  None,
  /// An unclassified memory reference sits in the wide reference's
  /// movement window: no partition, so no basis for reasoning.
  UnclassifiedRef,
  /// A same-partition reference with a statically known offset overlaps
  /// the run's byte span.
  SamePartitionOverlap,
};

/// \returns the stable remark code for \p C ("unclassified-ref", ...).
const char *hazardClauseName(HazardClause C);

struct HazardResult {
  bool Safe = false;
  /// Why the run was rejected (None when Safe). The instruction index of
  /// the offending reference is in HazardInstIdx.
  HazardClause Clause = HazardClause::None;
  size_t HazardInstIdx = 0;
  /// Partition pairs whose potential aliasing must be excluded at run time
  /// for this run to be used.
  AliasPairSet AliasPairs;
  /// Partition pairs that would have needed a run-time check but were
  /// statically proven disjoint by the offset analysis (accepted with no
  /// check; reported separately so telemetry can reconcile the counts).
  AliasPairSet ProvenDisjointPairs;
};

/// Analyzes one run inside \p Body. \p F supplies parameter no-alias facts
/// (a pair involving a NoAlias parameter base needs no check, unless both
/// bases derive from the *same* parameter — NoAlias says nothing about
/// overlap within one object). \p ProvenDisjoint, when given, lists
/// partition pairs the offset analysis proved disjoint: those are accepted
/// without a check and reported in HazardResult::ProvenDisjointPairs.
HazardResult analyzeRunHazards(const CoalesceRun &Run,
                               const MemoryPartitions &MP,
                               const BasicBlock &Body, const Function &F,
                               const AliasPairSet *ProvenDisjoint = nullptr);

} // namespace vpo

#endif // VPO_COALESCE_HAZARDS_H
