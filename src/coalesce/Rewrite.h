//===- coalesce/Rewrite.h - Wide-reference insertion -------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// InsertWideReferences from the paper's Fig. 3: replaces each narrow load
/// of a run with an extract from a fresh wide register, inserts the wide
/// load at the position of the run's first load; replaces each narrow
/// store with an insert into a fresh wide register and emits the wide
/// store after the run's last store — producing code of the shape of the
/// paper's Figure 1c.
///
//===----------------------------------------------------------------------===//

#ifndef VPO_COALESCE_REWRITE_H
#define VPO_COALESCE_REWRITE_H

#include "coalesce/Runs.h"

namespace vpo {

class BasicBlock;
class Function;
class LoopScalarInfo;

struct RewriteCounts {
  unsigned WideLoads = 0;
  unsigned WideStores = 0;
  unsigned NarrowLoadsRemoved = 0;
  unsigned NarrowStoresRemoved = 0;
};

/// Applies \p Runs to \p Body in place. \p MP and \p LSI must have been
/// computed on a block with identical instruction order (the clone source).
RewriteCounts applyRunsToBlock(Function &F, BasicBlock &Body,
                               const MemoryPartitions &MP,
                               const LoopScalarInfo &LSI,
                               const std::vector<CoalesceRun> &Runs);

} // namespace vpo

#endif // VPO_COALESCE_REWRITE_H
