//===- coalesce/RuntimeChecks.h - Run-time alias/alignment checks -*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's signature technique: *run-time alias and alignment
/// analysis*. When compile-time analysis cannot prove that coalescing is
/// safe (the usual case for library routines whose arrays arrive as
/// parameters), the optimizer emits a short check sequence in the loop
/// preheader:
///
///   * for every potentially-aliasing partition pair, an interval-overlap
///     test over the full address ranges the loop will touch;
///   * for every wide reference whose alignment is unknown, a test that
///     `(base + offset) mod wide == 0`.
///
/// All checks passing branches to the coalesced loop; any failure branches
/// to the original safe loop (paper Fig. 5). The paper reports 10-15 added
/// preheader instructions; buildRuntimeChecks returns the exact count so
/// benchmarks can confirm it.
///
//===----------------------------------------------------------------------===//

#ifndef VPO_COALESCE_RUNTIMECHECKS_H
#define VPO_COALESCE_RUNTIMECHECKS_H

#include "ir/Instruction.h"

#include <vector>

namespace vpo {

class BasicBlock;
class Function;
class RemarkEmitter;

/// What must be checked at run time before entering the coalesced loop.
struct CheckPlan {
  /// `(Base + StartOff) mod WideBytes == 0`.
  struct Align {
    Reg Base;
    int64_t StartOff;
    unsigned WideBytes;

    bool operator==(const Align &O) const {
      return Base == O.Base && StartOff == O.StartOff &&
             WideBytes == O.WideBytes;
    }
  };

  /// The address interval one partition touches over the whole loop:
  /// derived from its base register, per-iteration step, the offsets of
  /// its references, and the loop trip count (computed at run time from
  /// the loop bound).
  struct Extent {
    Reg Base;
    int64_t Step;      ///< signed bytes per iteration (0 = invariant)
    int64_t MinOff;    ///< lowest byte offset referenced in one iteration
    int64_t MaxOffEnd; ///< one past the highest byte referenced
  };

  /// Overlap test between two partitions' extents.
  struct Overlap {
    Extent A, B;
  };

  std::vector<Align> AlignChecks;
  std::vector<Overlap> OverlapChecks;

  // Loop-bound data for trip-count/extent computation at run time.
  Reg BoundIV;
  Operand Limit;
  /// Signed bound-IV step. Extent scaling uses shifts, so overlap pairs
  /// are only *checkable* when |BoundStep| and the partition steps are
  /// powers of two; uncheckable pairs are emitted as an unconditional
  /// "assume overlap", dispatching to the safe loop.
  int64_t BoundStep = 0;
};

/// Builds a check block that branches to \p FastLoop when every check
/// passes and to \p SafeLoop otherwise. \returns the new block; stores the
/// number of emitted instructions in \p InstrCount. Never aborts: checks
/// that cannot be computed (e.g. a non-power-of-two step) degrade into a
/// constant "take the safe loop" flag. When \p RE is non-null, each
/// emitted check — and each uncheckable pair that degraded to "assume
/// overlap" — is reported as an optimization remark.
BasicBlock *buildRuntimeChecks(Function &F, const CheckPlan &Plan,
                               BasicBlock *SafeLoop, BasicBlock *FastLoop,
                               unsigned &InstrCount,
                               const RemarkEmitter *RE = nullptr);

} // namespace vpo

#endif // VPO_COALESCE_RUNTIMECHECKS_H
