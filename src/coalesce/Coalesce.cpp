//===- coalesce/Coalesce.cpp ----------------------------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "coalesce/Coalesce.h"

#include "analysis/CFG.h"
#include "analysis/Dominators.h"
#include "analysis/InductionVars.h"
#include "analysis/LoopInfo.h"
#include "analysis/MemoryPartitions.h"
#include "analysis/OffsetPropagation.h"
#include "coalesce/Hazards.h"
#include "coalesce/Rewrite.h"
#include "coalesce/Runs.h"
#include "coalesce/RuntimeChecks.h"
#include "ir/Function.h"
#include "ir/Verifier.h"
#include "sched/ExactScheduler.h"
#include "sched/ListScheduler.h"
#include "support/MathExtras.h"
#include "support/Remark.h"
#include "support/StringUtils.h"
#include "target/Legalize.h"
#include "target/TargetMachine.h"
#include "transform/Unroll.h"
#include "transform/Utils.h"

#include <algorithm>
#include <map>
#include <memory>
#include <unordered_set>

using namespace vpo;

std::string CoalesceStats::summary() const {
  return strformat(
      "loops: examined=%u unrolled=%u transformed=%u "
      "(rejected: unclassified=%u profitability=%u)\n"
      "runs: loads=%u (unaligned=%u) stores=%u (narrow removed: loads=%u "
      "stores=%u; rejected: hazard=%u checks-disabled=%u; "
      "alias-deferred=%u alias-proven=%u align-proven=%u)\n"
      "checks: alignment=%u overlap=%u instructions=%u",
      LoopsExamined, LoopsUnrolled, LoopsTransformed,
      LoopsRejectedUnclassified, LoopsRejectedProfitability,
      LoadRunsCoalesced, UnalignedLoadRuns, StoreRunsCoalesced,
      NarrowLoadsRemoved, NarrowStoresRemoved, RunsRejectedHazard,
      RunsRejectedChecksDisabled, AliasPairsDeferred,
      AliasPairsProvenDisjoint, AlignmentProvenStatic, AlignmentChecks,
      OverlapChecks, CheckInstructions);
}

std::string CoalesceStats::toJson() const {
  return strformat(
      "{\"loops-examined\":%u,\"loops-unrolled\":%u,"
      "\"loops-transformed\":%u,\"load-runs\":%u,\"store-runs\":%u,"
      "\"unaligned-load-runs\":%u,\"narrow-loads-removed\":%u,"
      "\"narrow-stores-removed\":%u,\"runs-rejected-hazard\":%u,"
      "\"runs-rejected-checks-disabled\":%u,\"alias-pairs-deferred\":%u,"
      "\"alias-pairs-proven-disjoint\":%u,\"alignment-proven-static\":%u,"
      "\"loops-rejected-profitability\":%u,"
      "\"loops-rejected-unclassified\":%u,\"alignment-checks\":%u,"
      "\"overlap-checks\":%u,\"check-instructions\":%u}",
      LoopsExamined, LoopsUnrolled, LoopsTransformed, LoadRunsCoalesced,
      StoreRunsCoalesced, UnalignedLoadRuns, NarrowLoadsRemoved,
      NarrowStoresRemoved, RunsRejectedHazard, RunsRejectedChecksDisabled,
      AliasPairsDeferred, AliasPairsProvenDisjoint, AlignmentProvenStatic,
      LoopsRejectedProfitability, LoopsRejectedUnclassified,
      AlignmentChecks, OverlapChecks, CheckInstructions);
}

bool CoalesceStats::operator==(const CoalesceStats &O) const {
  return toJson() == O.toJson();
}

namespace {

std::string regName(Reg R) { return "r" + std::to_string(R.Id); }

class CoalescePass {
public:
  CoalescePass(Function &F, const TargetMachine &TM,
               const CoalesceOptions &Opts)
      : F(F), TM(TM), Opts(Opts),
        RE(Opts.Remarks, "coalesce", F.name()),
        UE(Opts.Remarks, "unroll", F.name()) {}

  CoalesceStats run() {
    // Iterate until no unprocessed innermost single-block loop remains.
    // Transformations add blocks, so analyses are recomputed per loop.
    while (true) {
      CFG G(F);
      DominatorTree DT(G);
      LoopInfo LI(G, DT);
      Loop *Candidate = nullptr;
      for (const auto &L : LI.loops()) {
        if (!L->isInnermost() || !L->singleBodyBlock())
          continue;
        if (Done.count(L->singleBodyBlock()))
          continue;
        Candidate = L.get();
        break;
      }
      if (!Candidate)
        break;
      processLoop(*Candidate, G);
    }
    return Stats;
  }

private:
  Function &F;
  const TargetMachine &TM;
  const CoalesceOptions &Opts;
  CoalesceStats Stats;
  std::unordered_set<const BasicBlock *> Done;
  /// Telemetry handles (no-ops when Opts.Remarks is null). Remarks are
  /// strictly read-only: every argument is data the pass computed anyway.
  RemarkEmitter RE; ///< pass="coalesce"
  RemarkEmitter UE; ///< pass="unroll"

  /// A remark describing one candidate run (shared arg set, so every
  /// run-* reason renders the same identifying fields).
  Remark runRemark(const char *Reason, const BasicBlock &Body,
                   const CoalesceRun &Run,
                   const MemoryPartitions &MP) const {
    return RE.start(Reason)
        .block(Body.name())
        .arg("kind", Run.IsLoad ? "load" : "store")
        .arg("partition", Run.PartitionIdx)
        .arg("base", regName(MP.partitions()[Run.PartitionIdx].Base))
        .arg("narrow", widthBytes(Run.NarrowW))
        .arg("wide", Run.WideBytes)
        .arg("start-off", Run.StartOff)
        .arg("members", Run.Members.size());
  }

  /// The unroll factor that exposes full-width runs: bus width over the
  /// narrowest classified reference width in the loop.
  unsigned desiredUnrollFactor(const MemoryPartitions &MP) const {
    unsigned MaxWide = TM.maxMemWidthBytes();
    if (Opts.MaxWideBytes != 0 && Opts.MaxWideBytes < MaxWide)
      MaxWide = Opts.MaxWideBytes;
    unsigned MinNarrow = MaxWide;
    for (const Partition &P : MP.partitions())
      for (const MemRef &R : P.Refs)
        if (P.BaseIsIV)
          MinNarrow = std::min(MinNarrow, widthBytes(R.W));
    return MinNarrow == 0 ? 1 : MaxWide / MinNarrow;
  }

  /// The narrow-reference groups coalescing could merge, for the pressure
  /// clamp's saving model: one group per (partition, width, kind) among
  /// the IV-based partitions, honoring the coalesce mode. With Mode ==
  /// None (plain unrolling) there is nothing to save, so any modeled
  /// spill refuses the factor.
  std::vector<CoalescableGroup>
  coalescableGroups(const MemoryPartitions &MP) const {
    std::vector<CoalescableGroup> Groups;
    unsigned MaxWide = TM.maxMemWidthBytes();
    if (Opts.MaxWideBytes != 0 && Opts.MaxWideBytes < MaxWide)
      MaxWide = Opts.MaxWideBytes;
    for (const Partition &P : MP.partitions()) {
      if (!P.BaseIsIV)
        continue;
      std::map<std::pair<unsigned, bool>, unsigned> Counts;
      for (const MemRef &R : P.Refs) {
        if (R.IsStore && Opts.Mode != CoalesceMode::LoadsAndStores)
          continue;
        if (R.IsLoad && Opts.Mode == CoalesceMode::None)
          continue;
        Counts[{widthBytes(R.W), R.IsLoad}] += 1;
      }
      for (const auto &[Key, Count] : Counts) {
        if (Key.first >= MaxWide)
          continue;
        CoalescableGroup Gr;
        Gr.NarrowBytes = Key.first;
        Gr.WideBytes = MaxWide;
        Gr.RefsPerIteration = Count;
        Groups.push_back(Gr);
      }
    }
    return Groups;
  }

  /// Exact-scheduler audit of one Fig. 3 verdict (telemetry-only: called
  /// only under an enabled remark sink, reads the already-built
  /// profitability clones, and never feeds back into the decision). The
  /// audit either confirms both list schedules optimal, reports the
  /// optimality gap, or — when the exact lengths would change the
  /// accept/reject — emits `profitability-flipped`.
  void auditProfitability(const BasicBlock &T1, const BasicBlock &T2,
                          unsigned C1, unsigned C2, bool Keep,
                          const char *Variant,
                          const std::string &BodyName) {
    ExactSchedulerOptions EO;
    EO.MaxStates = Opts.SchedAuditBudget;
    ExactScheduleResult E1 = exactScheduleBlock(T1, TM, EO);
    ExactScheduleResult E2 = exactScheduleBlock(T2, TM, EO);
    bool Conclusive = E1.conclusive() && E2.conclusive();
    bool ExactKeep = E2.Best.Cycles < E1.Best.Cycles;
    const char *Status;
    if (!Conclusive)
      Status = "budget-exceeded";
    else if (ExactKeep != Keep)
      Status = "flipped";
    else if (E1.Improved || E2.Improved)
      Status = "gap";
    else
      Status = "confirmed-optimal";
    RE.emit(RE.start("sched-audit")
                .block(BodyName)
                .arg("variant", Variant)
                .arg("list-orig", C1)
                .arg("list-coalesced", C2)
                .arg("exact-orig", E1.Best.Cycles)
                .arg("exact-coalesced", E2.Best.Cycles)
                .arg("proved-orig", E1.Proved)
                .arg("proved-coalesced", E2.Proved)
                .arg("states", E1.StatesExplored + E2.StatesExplored)
                .arg("status", Status)
                .arg("verdict", Keep ? "keep" : "reject"));
    if (E1.Improved)
      RE.emit(RE.start("sched-optimality-gap")
                  .block(BodyName)
                  .arg("variant", Variant)
                  .arg("side", "orig")
                  .arg("list-cycles", E1.List.Cycles)
                  .arg("exact-cycles", E1.Best.Cycles));
    if (E2.Improved)
      RE.emit(RE.start("sched-optimality-gap")
                  .block(BodyName)
                  .arg("variant", Variant)
                  .arg("side", "coalesced")
                  .arg("list-cycles", E2.List.Cycles)
                  .arg("exact-cycles", E2.Best.Cycles));
    if (Conclusive && ExactKeep != Keep)
      RE.emit(RE.start("profitability-flipped")
                  .block(BodyName)
                  .arg("variant", Variant)
                  .arg("list-verdict", Keep ? "keep" : "reject")
                  .arg("exact-verdict", ExactKeep ? "keep" : "reject")
                  .arg("list-orig", C1)
                  .arg("list-coalesced", C2)
                  .arg("exact-orig", E1.Best.Cycles)
                  .arg("exact-coalesced", E2.Best.Cycles));
  }

  void processLoop(Loop &L, CFG &G) {
    BasicBlock *Body = L.singleBodyBlock();
    Done.insert(Body);
    ++Stats.LoopsExamined;

    BasicBlock *Preheader = L.preheader(G);
    if (!Preheader)
      return;

    LoopScalarInfo LSI(L, F);

    // --- Step 1: unroll (Fig. 2 line 7) --------------------------------
    if (Opts.Unroll) {
      MemoryPartitions MP0(L, LSI);
      unsigned Factor = Opts.UnrollFactor != 0 ? Opts.UnrollFactor
                                               : desiredUnrollFactor(MP0);
      if (MP0.allClassified() && Factor >= 2) {
        unsigned Capped = Opts.IgnoreICacheHeuristic
                              ? Factor
                              : chooseUnrollFactor(L, TM, Factor);
        if (UE.enabled())
          UE.emit(UE.start("unroll-factor")
                      .block(Body->name())
                      .arg("desired", Factor)
                      .arg("capped", Capped)
                      .arg("rolled-bytes",
                           Body->size() * TM.encodingBytes())
                      .arg("unrolled-bytes",
                           (Body->size() * (Capped + 1) + 4) *
                               TM.encodingBytes())
                      .arg("icache-bytes", TM.iCacheBytes())
                      .arg("icache-heuristic",
                           !Opts.IgnoreICacheHeuristic));
        // Register-pressure clamp: the i-cache heuristic bounds code
        // size only; on a machine with a small register file an unroll
        // factor that fits the cache can still spill away the coalescing
        // win. Refuse factors whose modeled spill cost exceeds the
        // modeled saving (sched/RegPressure).
        bool PressureClamped = false;
        if (Opts.PressureClamp && Capped >= 2) {
          PressureClampInfo PC = clampUnrollFactorForPressure(
              F, L, LSI, Capped, TM, coalescableGroups(MP0));
          if (PC.Clamped) {
            if (UE.enabled())
              UE.emit(UE.start("unroll-clamped-pressure")
                          .block(Body->name())
                          .arg("from", Capped)
                          .arg("to", PC.Factor)
                          .arg("max-live-int",
                               PC.RefusedPressure.MaxLiveInt)
                          .arg("max-live-fp", PC.RefusedPressure.MaxLiveFP)
                          .arg("int-regs", TM.intRegs())
                          .arg("fp-regs", TM.fpRegs())
                          .arg("spill-cycles", PC.RefusedSpillCycles)
                          .arg("rolled-spill-cycles", PC.RolledSpillCycles)
                          .arg("saving-cycles", PC.RefusedSavingCycles));
            Capped = PC.Factor;
            PressureClamped = true;
          }
        }
        if (Capped >= 2) {
          UnrollResult UR;
          UnrollFailure UF = unrollLoop(F, L, LSI, Capped, TM, UR,
                                        Opts.IgnoreICacheHeuristic);
          if (UF == UnrollFailure::None) {
            ++Stats.LoopsUnrolled;
            Done.insert(UR.UnrolledBody);
            Done.insert(UR.RemainderBody);
            Done.insert(UR.Setup);
            Done.insert(UR.Guard);
            if (UE.enabled())
              UE.emit(UE.start("loop-unrolled")
                          .block(Body->name())
                          .arg("factor", UR.Factor)
                          .arg("unrolled-body", UR.UnrolledBody->name())
                          .arg("inexact-stride-guard",
                               UR.InexactStrideGuard));
            // Re-resolve analyses for the unrolled loop and coalesce it.
            coalesceBody(UR.UnrolledBody);
            return;
          }
          if (UE.enabled())
            UE.emit(UE.start("unroll-refused")
                        .block(Body->name())
                        .arg("factor", Capped)
                        .arg("why", unrollFailureName(UF)));
        } else if (UE.enabled()) {
          UE.emit(UE.start("unroll-refused")
                      .block(Body->name())
                      .arg("factor", Factor)
                      .arg("why", PressureClamped ? "register-pressure"
                                                  : "icache-limit"));
        }
      } else if (UE.enabled()) {
        UE.emit(UE.start("unroll-skipped")
                    .block(Body->name())
                    .arg("why", !MP0.allClassified() ? "unclassified-refs"
                                                     : "width-uniform"));
      }
    }

    // Unrolling skipped or refused: try to coalesce pre-existing runs in
    // the rolled body (e.g. adjacent convolution taps).
    coalesceBody(Body);
  }

  /// Finds the loop whose single body block is \p Body and coalesces it.
  void coalesceBody(BasicBlock *Body) {
    if (Opts.Mode == CoalesceMode::None)
      return;
    CFG G(F);
    DominatorTree DT(G);
    LoopInfo LI(G, DT);
    Loop *L = nullptr;
    for (const auto &Cand : LI.loops())
      if (Cand->singleBodyBlock() == Body) {
        L = Cand.get();
        break;
      }
    if (!L)
      return;
    BasicBlock *Preheader = L->preheader(G);
    if (!Preheader)
      return;

    LoopScalarInfo LSI(*L, F);
    MemoryPartitions MP(*L, LSI);
    if (!MP.allClassified()) {
      ++Stats.LoopsRejectedUnclassified;
      if (RE.enabled())
        RE.emit(RE.start("loop-rejected-unclassified")
                    .block(Body->name())
                    .arg("partitions", MP.partitions().size()));
      return;
    }

    // --- Loop-pointer offset analysis --------------------------------
    // Whole-function abstract interpretation; the partition footprints at
    // the loop header feed two static proofs that absorb Fig. 5 run-time
    // checks: pairwise disjointness (overlap checks) and wide-address
    // congruence (alignment checks).
    std::unique_ptr<OffsetPropagation> OP;
    AliasPairSet ProvenSet;
    std::map<std::pair<size_t, size_t>, const char *> ProvenWhy;
    if (Opts.OffsetAnalysis) {
      OP = std::make_unique<OffsetPropagation>(F);
      std::vector<PartitionFootprint> Footprints;
      Footprints.reserve(MP.partitions().size());
      for (const Partition &P : MP.partitions())
        Footprints.push_back(computePartitionFootprint(*OP, *L, LSI, P));
      for (size_t A = 0; A < Footprints.size(); ++A)
        for (size_t B = A + 1; B < Footprints.size(); ++B) {
          const char *Why = nullptr;
          if (provablyDisjoint(Footprints[A], Footprints[B], &Why)) {
            ProvenSet.insert({A, B});
            ProvenWhy[{A, B}] = Why;
          }
        }
      if (RE.enabled())
        RE.emit(RE.start("offset-propagation")
                    .block(Body->name())
                    .arg("converged", OP->converged())
                    .arg("sweeps", OP->stats().Sweeps)
                    .arg("widenings", OP->stats().Widenings)
                    .arg("partitions", MP.partitions().size())
                    .arg("pairs-proven", ProvenSet.size()));
    }

    // --- Step 2: candidate runs + safety (Fig. 4) ----------------------
    std::vector<CoalesceRun> Runs = findCoalesceRuns(
        MP, TM, /*Loads=*/true,
        /*Stores=*/Opts.Mode == CoalesceMode::LoadsAndStores,
        Opts.MaxWideBytes);
    analyzeRunAlignment(Runs, MP, F);

    // Congruence supplement: analyzeRunAlignment's exact-chain reasoning
    // gives up on scaled or symbolic base offsets; the fixed-point
    // congruence of the header pointer value can still pin the wide
    // address's residue. Skipped on targets that tolerate misalignment in
    // hardware — no check was at stake there.
    if (OP && TM.requiresNaturalAlignment())
      for (CoalesceRun &Run : Runs) {
        if (!Run.NeedsAlignCheck)
          continue;
        const Partition &P = MP.partitions()[Run.PartitionIdx];
        if (!provablyAligned(*OP, L->header(), P.Base, Run.StartOff,
                             Run.WideBytes))
          continue;
        Run.NeedsAlignCheck = false;
        Run.AlignWhy = nullptr;
        Run.CheckableAlignment = true;
        Run.AlignProvenStatic = true;
        ++Stats.AlignmentProvenStatic;
        if (RE.enabled())
          RE.emit(runRemark("alignment-proven-static", *Body, Run, MP));
      }

    std::vector<CoalesceRun> Accepted;
    AliasPairSet AliasPairs;
    AliasPairSet ProvenPairs;
    bool NeedAlign = false;
    for (CoalesceRun &Run : Runs) {
      if (RE.enabled())
        RE.emit(runRemark("run-candidate", *Body, Run, MP));
      HazardResult HR = analyzeRunHazards(Run, MP, *Body, F, &ProvenSet);
      if (!HR.Safe) {
        ++Stats.RunsRejectedHazard;
        if (RE.enabled())
          RE.emit(runRemark("run-rejected-hazard", *Body, Run, MP)
                      .arg("clause", hazardClauseName(HR.Clause))
                      .arg("at", HR.HazardInstIdx));
        continue;
      }
      // Machines that tolerate unaligned references in hardware (the
      // 68030) need no alignment reasoning at all; cache-line splits are
      // priced by the simulator's cache model.
      bool HwTolerant = !TM.requiresNaturalAlignment();
      if (HwTolerant) {
        Run.NeedsAlignCheck = false;
        Run.CheckableAlignment = true;
      }
      // When the step does not preserve the alignment phase, no preheader
      // check helps: the run must use the unaligned sequence or be
      // dropped.
      if (Run.NeedsAlignCheck && !Run.CheckableAlignment) {
        if (Run.IsLoad && TM.hasUnalignedWideLoad()) {
          Run.UseUnaligned = true;
          Run.NeedsAlignCheck = false;
          ++Stats.UnalignedLoadRuns;
        } else {
          ++Stats.RunsRejectedHazard;
          if (RE.enabled())
            RE.emit(runRemark("run-rejected-uncheckable", *Body, Run, MP)
                        .arg("why-unproven",
                             Run.AlignWhy ? Run.AlignWhy : "none"));
          continue;
        }
      }
      // A load run whose alignment is unknown can fall back to the
      // two-quadword funnel sequence (UnAlignedWideType) on machines with
      // unaligned wide loads, so a missing run-time check never blocks it.
      bool HasUnalignedFallback =
          Run.IsLoad && Run.NeedsAlignCheck && TM.hasUnalignedWideLoad();
      if (!Opts.UseRuntimeChecks) {
        if (Run.NeedsAlignCheck && HasUnalignedFallback) {
          Run.UseUnaligned = true;
          Run.NeedsAlignCheck = false;
        }
        if (Run.NeedsAlignCheck || !HR.AliasPairs.empty()) {
          ++Stats.RunsRejectedChecksDisabled;
          if (RE.enabled())
            RE.emit(runRemark("run-rejected-checks-disabled", *Body, Run,
                              MP)
                        .arg("needs",
                             Run.NeedsAlignCheck
                                 ? (HR.AliasPairs.empty() ? "alignment"
                                                          : "both")
                                 : "alias"));
          continue;
        }
      }
      NeedAlign |= Run.NeedsAlignCheck;
      for (const auto &P : HR.AliasPairs)
        AliasPairs.insert(P);
      for (const auto &P : HR.ProvenDisjointPairs)
        ProvenPairs.insert(P);
      if (RE.enabled()) {
        const char *Align = Run.AlignWhy == nullptr ? "static"
                            : HwTolerant            ? "hw-tolerant"
                            : Run.UseUnaligned      ? "unaligned-seq"
                            : Run.NeedsAlignCheck   ? "runtime-check"
                                                    : "static";
        Remark R = runRemark("run-accepted", *Body, Run, MP)
                       .arg("align", Align)
                       .arg("alias-pairs", HR.AliasPairs.size());
        if (Run.AlignWhy)
          R.arg("why-unproven", Run.AlignWhy);
        RE.emit(R);
      }
      Accepted.push_back(Run);
    }
    if (Accepted.empty())
      return;

    // Each unique partition pair deferred to a run-time overlap check is
    // a static-analysis miss the paper's technique absorbs (and a stronger
    // loop-pointer analysis would cut).
    Stats.AliasPairsDeferred += static_cast<unsigned>(AliasPairs.size());
    if (RE.enabled())
      for (const auto &[A, B] : AliasPairs)
        RE.emit(RE.start("alias-check-deferred")
                    .block(Body->name())
                    .arg("partition-a", A)
                    .arg("base-a", regName(MP.partitions()[A].Base))
                    .arg("partition-b", B)
                    .arg("base-b", regName(MP.partitions()[B].Base)));

    // Pairs the offset analysis discharged: they would have deferred to a
    // run-time overlap check (the NoAlias reasoning had no answer) but are
    // accepted with no check at all.
    Stats.AliasPairsProvenDisjoint +=
        static_cast<unsigned>(ProvenPairs.size());
    if (RE.enabled())
      for (const auto &[A, B] : ProvenPairs) {
        auto It = ProvenWhy.find({A, B});
        RE.emit(RE.start("alias-check-proven-disjoint")
                    .block(Body->name())
                    .arg("partition-a", A)
                    .arg("base-a", regName(MP.partitions()[A].Base))
                    .arg("partition-b", B)
                    .arg("base-b", regName(MP.partitions()[B].Base))
                    .arg("why",
                         It == ProvenWhy.end() ? "unknown" : It->second));
      }

    // Overlap checks are only expressible when the loop bound is canonical
    // and every involved step divides evenly (powers of two).
    if (!AliasPairs.empty() && !overlapCheckFeasible(LSI, MP, AliasPairs)) {
      Stats.RunsRejectedChecksDisabled +=
          static_cast<unsigned>(Accepted.size());
      if (RE.enabled())
        RE.emit(RE.start("loop-rejected-overlap-infeasible")
                    .block(Body->name())
                    .arg("runs", Accepted.size())
                    .arg("pairs", AliasPairs.size()));
      return;
    }

    // --- Step 3/4: replicate, insert wide references, check
    // profitability by dual scheduling (Fig. 3). The schedule-length
    // comparison uses legalized copies so it prices the machine's true
    // extract/insert sequences.
    auto IsProfitable = [&](BasicBlock *Candidate, const char *Variant) {
      if (!Opts.RequireProfitability) {
        if (RE.enabled())
          RE.emit(RE.start("profitability")
                      .block(Body->name())
                      .arg("variant", Variant)
                      .arg("verdict", "waived"));
        return true;
      }
      BasicBlock *T1 = cloneBlock(F, *Body, "prof.orig");
      BasicBlock *T2 = cloneBlock(F, *Candidate, "prof.coal");
      legalizeBlock(*T1, TM);
      legalizeBlock(*T2, TM);
      unsigned C1 = scheduleBlock(*T1, TM).Cycles;
      unsigned C2 = scheduleBlock(*T2, TM).Cycles;
      // Test-only planted scheduling error (fuzz FaultKind::SchedLength):
      // skews the coalesced side's length before the compare so the
      // exact-scheduler audit below has something to catch. 0 normally.
      if (Opts.ProfitabilitySkew != 0) {
        int64_t Skewed = static_cast<int64_t>(C2) + Opts.ProfitabilitySkew;
        C2 = Skewed < 0 ? 0 : static_cast<unsigned>(Skewed);
      }
      bool Keep = C2 < C1;
      if (RE.enabled()) {
        RE.emit(RE.start("profitability")
                    .block(Body->name())
                    .arg("variant", Variant)
                    .arg("cycles-orig", C1)
                    .arg("cycles-coalesced", C2)
                    .arg("verdict", Keep ? "keep" : "reject"));
        if (Opts.SchedAudit)
          auditProfitability(*T1, *T2, C1, C2, Keep, Variant,
                             Body->name());
      }
      F.removeBlock(T1);
      F.removeBlock(T2);
      return Keep;
    };
    auto MakeCopy = [&](const std::vector<CoalesceRun> &RunSet,
                        const char *Suffix, const char *Variant,
                        RewriteCounts &RC) -> BasicBlock * {
      BasicBlock *Copy = cloneBlock(F, *Body, Body->name() + Suffix);
      RC = applyRunsToBlock(F, *Copy, MP, LSI, RunSet);
      Done.insert(Copy);
      if (IsProfitable(Copy, Variant))
        return Copy;
      F.removeBlock(Copy);
      Done.erase(Copy);
      return nullptr;
    };

    // The runs usable without any alignment check form the fallback tier
    // taken when a run-time alignment test fails: statically-aligned runs
    // stay as they are, and checked load runs degrade to the unaligned
    // two-quadword sequence where the target has one (the paper's
    // UnAlignedWideType, Fig. 3 line 6).
    std::vector<CoalesceRun> NoCheckRuns;
    for (const CoalesceRun &Run : Accepted) {
      if (!Run.NeedsAlignCheck) {
        NoCheckRuns.push_back(Run);
        continue;
      }
      if (Run.IsLoad && TM.hasUnalignedWideLoad()) {
        CoalesceRun Unaligned = Run;
        Unaligned.UseUnaligned = true;
        Unaligned.NeedsAlignCheck = false;
        NoCheckRuns.push_back(Unaligned);
        ++Stats.UnalignedLoadRuns;
      }
    }

    RewriteCounts RCFull;
    BasicBlock *CopyFull = MakeCopy(Accepted, ".coalesced", "full", RCFull);
    std::vector<CoalesceRun> UsedRuns = Accepted;
    RewriteCounts RCUsed = RCFull;
    if (!CopyFull) {
      // The full set is not profitable; try the check-free variant alone
      // (it differs whenever some run needed an alignment check).
      if (!NeedAlign || NoCheckRuns.empty()) {
        ++Stats.LoopsRejectedProfitability;
        if (RE.enabled())
          RE.emit(RE.start("loop-rejected-profitability")
                      .block(Body->name())
                      .arg("runs", Accepted.size()));
        return;
      }
      CopyFull = MakeCopy(NoCheckRuns, ".coalesced", "no-check", RCUsed);
      if (!CopyFull) {
        ++Stats.LoopsRejectedProfitability;
        if (RE.enabled())
          RE.emit(RE.start("loop-rejected-profitability")
                      .block(Body->name())
                      .arg("runs", Accepted.size()));
        return;
      }
      UsedRuns = NoCheckRuns;
      NeedAlign = false;
    }

    // A second tier: a failed alignment test falls back to the check-free
    // copy (unaligned-sequence loads, checked stores dropped) rather than
    // all the way to the safe rolled loop.
    BasicBlock *CopyNoCheck = nullptr;
    if (NeedAlign && !NoCheckRuns.empty()) {
      RewriteCounts RCIgnore;
      CopyNoCheck =
          MakeCopy(NoCheckRuns, ".coalesced.nochk", "no-check", RCIgnore);
    }

    // --- Step 5: wire in, with checks if needed (Fig. 5) ---------------
    bool NeedChecks = NeedAlign || !AliasPairs.empty();
    BasicBlock *Entry = CopyFull; // where the preheader should branch
    if (!NeedChecks) {
      // No checks: use the coalesced copy outright (Fig. 3: "just use the
      // LCOPY instead of the original one").
      if (CopyNoCheck) {
        F.removeBlock(CopyNoCheck);
        Done.erase(CopyNoCheck);
      }
      std::vector<Instruction> NewInsts = CopyFull->insts();
      for (Instruction &I : NewInsts) {
        if (I.TrueTarget == CopyFull)
          I.TrueTarget = Body;
        if (I.FalseTarget == CopyFull)
          I.FalseTarget = Body;
      }
      Body->insts() = std::move(NewInsts);
      F.removeBlock(CopyFull);
      Done.erase(CopyFull);
      Entry = nullptr;
    } else {
      // Alignment tier: failed alignment goes to the check-free copy when
      // one exists, else to the safe loop.
      unsigned LoopAlignChecks = 0, LoopOverlapChecks = 0,
               LoopCheckInstrs = 0;
      if (NeedAlign) {
        CheckPlan AlignPlan = buildCheckPlan(LSI, MP, UsedRuns, {});
        AlignPlan.OverlapChecks.clear();
        unsigned NumInstrs = 0;
        BasicBlock *AlignSafe = CopyNoCheck ? CopyNoCheck : Body;
        Entry = buildRuntimeChecks(F, AlignPlan, AlignSafe, CopyFull,
                                   NumInstrs, &RE);
        Stats.CheckInstructions += NumInstrs;
        Stats.AlignmentChecks +=
            static_cast<unsigned>(AlignPlan.AlignChecks.size());
        LoopAlignChecks = static_cast<unsigned>(AlignPlan.AlignChecks.size());
        LoopCheckInstrs += NumInstrs;
        Done.insert(Entry);
      }
      // Alias tier: any potential overlap goes to the safe loop.
      if (!AliasPairs.empty()) {
        CheckPlan AliasPlan = buildCheckPlan(LSI, MP, {}, AliasPairs);
        unsigned NumInstrs = 0;
        BasicBlock *AliasChecks =
            buildRuntimeChecks(F, AliasPlan, Body, Entry, NumInstrs, &RE);
        Stats.CheckInstructions += NumInstrs;
        Stats.OverlapChecks +=
            static_cast<unsigned>(AliasPlan.OverlapChecks.size());
        LoopOverlapChecks =
            static_cast<unsigned>(AliasPlan.OverlapChecks.size());
        LoopCheckInstrs += NumInstrs;
        Done.insert(AliasChecks);
        Entry = AliasChecks;
      }
      if (RE.enabled())
        RE.emit(RE.start("checks-emitted")
                    .block(Body->name())
                    .arg("alignment", LoopAlignChecks)
                    .arg("overlap", LoopOverlapChecks)
                    .arg("instructions", LoopCheckInstrs)
                    .arg("align-fallback",
                         CopyNoCheck ? "coalesced-nocheck" : "safe-loop"));
      // Route the loop entry edge through the checks.
      Instruction &PreTerm = Preheader->terminator();
      if (PreTerm.TrueTarget == Body)
        PreTerm.TrueTarget = Entry;
      if (PreTerm.FalseTarget == Body)
        PreTerm.FalseTarget = Entry;
    }

    unsigned LoopLoadRuns = 0, LoopStoreRuns = 0;
    for (const CoalesceRun &Run : UsedRuns) {
      if (Run.IsLoad)
        ++LoopLoadRuns;
      else
        ++LoopStoreRuns;
    }
    Stats.LoadRunsCoalesced += LoopLoadRuns;
    Stats.StoreRunsCoalesced += LoopStoreRuns;
    Stats.NarrowLoadsRemoved += RCUsed.NarrowLoadsRemoved;
    Stats.NarrowStoresRemoved += RCUsed.NarrowStoresRemoved;
    ++Stats.LoopsTransformed;
    if (RE.enabled())
      RE.emit(RE.start("loop-coalesced")
                  .block(Body->name())
                  .arg("runs", UsedRuns.size())
                  .arg("load-runs", LoopLoadRuns)
                  .arg("store-runs", LoopStoreRuns)
                  .arg("narrow-loads-removed", RCUsed.NarrowLoadsRemoved)
                  .arg("narrow-stores-removed",
                       RCUsed.NarrowStoresRemoved)
                  .arg("checked", NeedChecks)
                  .arg("tiers", CopyNoCheck != nullptr ? 2 : 1));
    verifyOrDie(F, "coalesce");
  }

  static bool stepFeasible(int64_t Step, int64_t BoundStep) {
    if (Step == 0)
      return true;
    uint64_t S = static_cast<uint64_t>(Step < 0 ? -Step : Step);
    uint64_t B = static_cast<uint64_t>(BoundStep < 0 ? -BoundStep
                                                     : BoundStep);
    return isPowerOf2(S) && isPowerOf2(B);
  }

  bool overlapCheckFeasible(const LoopScalarInfo &LSI,
                            const MemoryPartitions &MP,
                            const AliasPairSet &Pairs) const {
    if (!LSI.bound())
      return false;
    const InductionVar *BIV = LSI.ivFor(LSI.bound()->IV);
    if (!BIV)
      return false;
    for (const auto &[A, B] : Pairs) {
      if (!stepFeasible(MP.partitions()[A].Step, BIV->StepPerIteration) ||
          !stepFeasible(MP.partitions()[B].Step, BIV->StepPerIteration))
        return false;
    }
    return true;
  }

  CheckPlan buildCheckPlan(const LoopScalarInfo &LSI,
                           const MemoryPartitions &MP,
                           const std::vector<CoalesceRun> &Accepted,
                           const AliasPairSet &AliasPairs) const {
    CheckPlan Plan;
    for (const CoalesceRun &Run : Accepted) {
      if (!Run.NeedsAlignCheck)
        continue;
      CheckPlan::Align A;
      A.Base = MP.partitions()[Run.PartitionIdx].Base;
      A.StartOff = Run.StartOff;
      A.WideBytes = Run.WideBytes;
      if (std::find(Plan.AlignChecks.begin(), Plan.AlignChecks.end(), A) ==
          Plan.AlignChecks.end())
        Plan.AlignChecks.push_back(A);
    }
    auto ExtentOf = [&MP](size_t PI) {
      const Partition &P = MP.partitions()[PI];
      CheckPlan::Extent E;
      E.Base = P.Base;
      E.Step = P.Step;
      E.MinOff = P.Refs.front().Offset;
      E.MaxOffEnd = P.Refs.front().Offset +
                    widthBytes(P.Refs.front().W);
      for (const MemRef &R : P.Refs) {
        E.MinOff = std::min(E.MinOff, R.Offset);
        E.MaxOffEnd = std::max(
            E.MaxOffEnd, R.Offset + static_cast<int64_t>(widthBytes(R.W)));
      }
      return E;
    };
    for (const auto &[A, B] : AliasPairs)
      Plan.OverlapChecks.push_back({ExtentOf(A), ExtentOf(B)});
    if (LSI.bound()) {
      Plan.BoundIV = LSI.bound()->IV;
      Plan.Limit = LSI.bound()->Limit;
      if (const InductionVar *BIV = LSI.ivFor(Plan.BoundIV))
        Plan.BoundStep = BIV->StepPerIteration;
    }
    return Plan;
  }
};

} // namespace

CoalesceStats vpo::coalesceMemoryAccesses(Function &F,
                                          const TargetMachine &TM,
                                          const CoalesceOptions &Opts) {
  return CoalescePass(F, TM, Opts).run();
}
