//===- coalesce/Coalesce.cpp ----------------------------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "coalesce/Coalesce.h"

#include "analysis/CFG.h"
#include "analysis/Dominators.h"
#include "analysis/InductionVars.h"
#include "analysis/LoopInfo.h"
#include "analysis/MemoryPartitions.h"
#include "coalesce/Hazards.h"
#include "coalesce/Rewrite.h"
#include "coalesce/Runs.h"
#include "coalesce/RuntimeChecks.h"
#include "ir/Function.h"
#include "ir/Verifier.h"
#include "sched/ListScheduler.h"
#include "support/MathExtras.h"
#include "support/StringUtils.h"
#include "target/Legalize.h"
#include "target/TargetMachine.h"
#include "transform/Unroll.h"
#include "transform/Utils.h"

#include <algorithm>
#include <unordered_set>

using namespace vpo;

std::string CoalesceStats::summary() const {
  return strformat(
      "loops: examined=%u unrolled=%u transformed=%u "
      "(rejected: unclassified=%u profitability=%u)\n"
      "runs: loads=%u (unaligned=%u) stores=%u (narrow removed: loads=%u "
      "stores=%u; rejected: hazard=%u checks-disabled=%u)\n"
      "checks: alignment=%u overlap=%u instructions=%u",
      LoopsExamined, LoopsUnrolled, LoopsTransformed,
      LoopsRejectedUnclassified, LoopsRejectedProfitability,
      LoadRunsCoalesced, UnalignedLoadRuns, StoreRunsCoalesced,
      NarrowLoadsRemoved, NarrowStoresRemoved, RunsRejectedHazard,
      RunsRejectedChecksDisabled, AlignmentChecks, OverlapChecks,
      CheckInstructions);
}

namespace {

class CoalescePass {
public:
  CoalescePass(Function &F, const TargetMachine &TM,
               const CoalesceOptions &Opts)
      : F(F), TM(TM), Opts(Opts) {}

  CoalesceStats run() {
    // Iterate until no unprocessed innermost single-block loop remains.
    // Transformations add blocks, so analyses are recomputed per loop.
    while (true) {
      CFG G(F);
      DominatorTree DT(G);
      LoopInfo LI(G, DT);
      Loop *Candidate = nullptr;
      for (const auto &L : LI.loops()) {
        if (!L->isInnermost() || !L->singleBodyBlock())
          continue;
        if (Done.count(L->singleBodyBlock()))
          continue;
        Candidate = L.get();
        break;
      }
      if (!Candidate)
        break;
      processLoop(*Candidate, G);
    }
    return Stats;
  }

private:
  Function &F;
  const TargetMachine &TM;
  const CoalesceOptions &Opts;
  CoalesceStats Stats;
  std::unordered_set<const BasicBlock *> Done;

  /// The unroll factor that exposes full-width runs: bus width over the
  /// narrowest classified reference width in the loop.
  unsigned desiredUnrollFactor(const MemoryPartitions &MP) const {
    unsigned MaxWide = TM.maxMemWidthBytes();
    if (Opts.MaxWideBytes != 0 && Opts.MaxWideBytes < MaxWide)
      MaxWide = Opts.MaxWideBytes;
    unsigned MinNarrow = MaxWide;
    for (const Partition &P : MP.partitions())
      for (const MemRef &R : P.Refs)
        if (P.BaseIsIV)
          MinNarrow = std::min(MinNarrow, widthBytes(R.W));
    return MinNarrow == 0 ? 1 : MaxWide / MinNarrow;
  }

  void processLoop(Loop &L, CFG &G) {
    BasicBlock *Body = L.singleBodyBlock();
    Done.insert(Body);
    ++Stats.LoopsExamined;

    BasicBlock *Preheader = L.preheader(G);
    if (!Preheader)
      return;

    LoopScalarInfo LSI(L, F);

    // --- Step 1: unroll (Fig. 2 line 7) --------------------------------
    if (Opts.Unroll) {
      MemoryPartitions MP0(L, LSI);
      unsigned Factor = Opts.UnrollFactor != 0 ? Opts.UnrollFactor
                                               : desiredUnrollFactor(MP0);
      if (MP0.allClassified() && Factor >= 2) {
        unsigned Capped = Opts.IgnoreICacheHeuristic
                              ? Factor
                              : chooseUnrollFactor(L, TM, Factor);
        if (Capped >= 2) {
          UnrollResult UR;
          if (unrollLoop(F, L, LSI, Capped, TM, UR,
                         Opts.IgnoreICacheHeuristic) ==
              UnrollFailure::None) {
            ++Stats.LoopsUnrolled;
            Done.insert(UR.UnrolledBody);
            Done.insert(UR.RemainderBody);
            Done.insert(UR.Setup);
            Done.insert(UR.Guard);
            // Re-resolve analyses for the unrolled loop and coalesce it.
            coalesceBody(UR.UnrolledBody);
            return;
          }
        }
      }
    }

    // Unrolling skipped or refused: try to coalesce pre-existing runs in
    // the rolled body (e.g. adjacent convolution taps).
    coalesceBody(Body);
  }

  /// Finds the loop whose single body block is \p Body and coalesces it.
  void coalesceBody(BasicBlock *Body) {
    if (Opts.Mode == CoalesceMode::None)
      return;
    CFG G(F);
    DominatorTree DT(G);
    LoopInfo LI(G, DT);
    Loop *L = nullptr;
    for (const auto &Cand : LI.loops())
      if (Cand->singleBodyBlock() == Body) {
        L = Cand.get();
        break;
      }
    if (!L)
      return;
    BasicBlock *Preheader = L->preheader(G);
    if (!Preheader)
      return;

    LoopScalarInfo LSI(*L, F);
    MemoryPartitions MP(*L, LSI);
    if (!MP.allClassified()) {
      ++Stats.LoopsRejectedUnclassified;
      return;
    }

    // --- Step 2: candidate runs + safety (Fig. 4) ----------------------
    std::vector<CoalesceRun> Runs = findCoalesceRuns(
        MP, TM, /*Loads=*/true,
        /*Stores=*/Opts.Mode == CoalesceMode::LoadsAndStores,
        Opts.MaxWideBytes);
    analyzeRunAlignment(Runs, MP, F);

    std::vector<CoalesceRun> Accepted;
    AliasPairSet AliasPairs;
    bool NeedAlign = false;
    for (CoalesceRun &Run : Runs) {
      HazardResult HR = analyzeRunHazards(Run, MP, *Body, F);
      if (!HR.Safe) {
        ++Stats.RunsRejectedHazard;
        continue;
      }
      // Machines that tolerate unaligned references in hardware (the
      // 68030) need no alignment reasoning at all; cache-line splits are
      // priced by the simulator's cache model.
      if (!TM.requiresNaturalAlignment()) {
        Run.NeedsAlignCheck = false;
        Run.CheckableAlignment = true;
      }
      // When the step does not preserve the alignment phase, no preheader
      // check helps: the run must use the unaligned sequence or be
      // dropped.
      if (Run.NeedsAlignCheck && !Run.CheckableAlignment) {
        if (Run.IsLoad && TM.hasUnalignedWideLoad()) {
          Run.UseUnaligned = true;
          Run.NeedsAlignCheck = false;
          ++Stats.UnalignedLoadRuns;
        } else {
          ++Stats.RunsRejectedHazard;
          continue;
        }
      }
      // A load run whose alignment is unknown can fall back to the
      // two-quadword funnel sequence (UnAlignedWideType) on machines with
      // unaligned wide loads, so a missing run-time check never blocks it.
      bool HasUnalignedFallback =
          Run.IsLoad && Run.NeedsAlignCheck && TM.hasUnalignedWideLoad();
      if (!Opts.UseRuntimeChecks) {
        if (Run.NeedsAlignCheck && HasUnalignedFallback) {
          Run.UseUnaligned = true;
          Run.NeedsAlignCheck = false;
        }
        if (Run.NeedsAlignCheck || !HR.AliasPairs.empty()) {
          ++Stats.RunsRejectedChecksDisabled;
          continue;
        }
      }
      NeedAlign |= Run.NeedsAlignCheck;
      for (const auto &P : HR.AliasPairs)
        AliasPairs.insert(P);
      Accepted.push_back(Run);
    }
    if (Accepted.empty())
      return;

    // Overlap checks are only expressible when the loop bound is canonical
    // and every involved step divides evenly (powers of two).
    if (!AliasPairs.empty() && !overlapCheckFeasible(LSI, MP, AliasPairs)) {
      Stats.RunsRejectedChecksDisabled +=
          static_cast<unsigned>(Accepted.size());
      return;
    }

    // --- Step 3/4: replicate, insert wide references, check
    // profitability by dual scheduling (Fig. 3). The schedule-length
    // comparison uses legalized copies so it prices the machine's true
    // extract/insert sequences.
    auto IsProfitable = [&](BasicBlock *Candidate) {
      if (!Opts.RequireProfitability)
        return true;
      BasicBlock *T1 = cloneBlock(F, *Body, "prof.orig");
      BasicBlock *T2 = cloneBlock(F, *Candidate, "prof.coal");
      legalizeBlock(*T1, TM);
      legalizeBlock(*T2, TM);
      unsigned C1 = scheduleBlock(*T1, TM).Cycles;
      unsigned C2 = scheduleBlock(*T2, TM).Cycles;
      F.removeBlock(T1);
      F.removeBlock(T2);
      return C2 < C1;
    };
    auto MakeCopy = [&](const std::vector<CoalesceRun> &RunSet,
                        const char *Suffix,
                        RewriteCounts &RC) -> BasicBlock * {
      BasicBlock *Copy = cloneBlock(F, *Body, Body->name() + Suffix);
      RC = applyRunsToBlock(F, *Copy, MP, LSI, RunSet);
      Done.insert(Copy);
      if (IsProfitable(Copy))
        return Copy;
      F.removeBlock(Copy);
      Done.erase(Copy);
      return nullptr;
    };

    // The runs usable without any alignment check form the fallback tier
    // taken when a run-time alignment test fails: statically-aligned runs
    // stay as they are, and checked load runs degrade to the unaligned
    // two-quadword sequence where the target has one (the paper's
    // UnAlignedWideType, Fig. 3 line 6).
    std::vector<CoalesceRun> NoCheckRuns;
    for (const CoalesceRun &Run : Accepted) {
      if (!Run.NeedsAlignCheck) {
        NoCheckRuns.push_back(Run);
        continue;
      }
      if (Run.IsLoad && TM.hasUnalignedWideLoad()) {
        CoalesceRun Unaligned = Run;
        Unaligned.UseUnaligned = true;
        Unaligned.NeedsAlignCheck = false;
        NoCheckRuns.push_back(Unaligned);
        ++Stats.UnalignedLoadRuns;
      }
    }

    RewriteCounts RCFull;
    BasicBlock *CopyFull = MakeCopy(Accepted, ".coalesced", RCFull);
    std::vector<CoalesceRun> UsedRuns = Accepted;
    RewriteCounts RCUsed = RCFull;
    if (!CopyFull) {
      // The full set is not profitable; try the check-free variant alone
      // (it differs whenever some run needed an alignment check).
      if (!NeedAlign || NoCheckRuns.empty()) {
        ++Stats.LoopsRejectedProfitability;
        return;
      }
      CopyFull = MakeCopy(NoCheckRuns, ".coalesced", RCUsed);
      if (!CopyFull) {
        ++Stats.LoopsRejectedProfitability;
        return;
      }
      UsedRuns = NoCheckRuns;
      NeedAlign = false;
    }

    // A second tier: a failed alignment test falls back to the check-free
    // copy (unaligned-sequence loads, checked stores dropped) rather than
    // all the way to the safe rolled loop.
    BasicBlock *CopyNoCheck = nullptr;
    if (NeedAlign && !NoCheckRuns.empty()) {
      RewriteCounts RCIgnore;
      CopyNoCheck = MakeCopy(NoCheckRuns, ".coalesced.nochk", RCIgnore);
    }

    // --- Step 5: wire in, with checks if needed (Fig. 5) ---------------
    bool NeedChecks = NeedAlign || !AliasPairs.empty();
    BasicBlock *Entry = CopyFull; // where the preheader should branch
    if (!NeedChecks) {
      // No checks: use the coalesced copy outright (Fig. 3: "just use the
      // LCOPY instead of the original one").
      if (CopyNoCheck) {
        F.removeBlock(CopyNoCheck);
        Done.erase(CopyNoCheck);
      }
      std::vector<Instruction> NewInsts = CopyFull->insts();
      for (Instruction &I : NewInsts) {
        if (I.TrueTarget == CopyFull)
          I.TrueTarget = Body;
        if (I.FalseTarget == CopyFull)
          I.FalseTarget = Body;
      }
      Body->insts() = std::move(NewInsts);
      F.removeBlock(CopyFull);
      Done.erase(CopyFull);
      Entry = nullptr;
    } else {
      // Alignment tier: failed alignment goes to the check-free copy when
      // one exists, else to the safe loop.
      if (NeedAlign) {
        CheckPlan AlignPlan = buildCheckPlan(LSI, MP, UsedRuns, {});
        AlignPlan.OverlapChecks.clear();
        unsigned NumInstrs = 0;
        BasicBlock *AlignSafe = CopyNoCheck ? CopyNoCheck : Body;
        Entry = buildRuntimeChecks(F, AlignPlan, AlignSafe, CopyFull,
                                   NumInstrs);
        Stats.CheckInstructions += NumInstrs;
        Stats.AlignmentChecks +=
            static_cast<unsigned>(AlignPlan.AlignChecks.size());
        Done.insert(Entry);
      }
      // Alias tier: any potential overlap goes to the safe loop.
      if (!AliasPairs.empty()) {
        CheckPlan AliasPlan = buildCheckPlan(LSI, MP, {}, AliasPairs);
        unsigned NumInstrs = 0;
        BasicBlock *AliasChecks =
            buildRuntimeChecks(F, AliasPlan, Body, Entry, NumInstrs);
        Stats.CheckInstructions += NumInstrs;
        Stats.OverlapChecks +=
            static_cast<unsigned>(AliasPlan.OverlapChecks.size());
        Done.insert(AliasChecks);
        Entry = AliasChecks;
      }
      // Route the loop entry edge through the checks.
      Instruction &PreTerm = Preheader->terminator();
      if (PreTerm.TrueTarget == Body)
        PreTerm.TrueTarget = Entry;
      if (PreTerm.FalseTarget == Body)
        PreTerm.FalseTarget = Entry;
    }

    for (const CoalesceRun &Run : UsedRuns) {
      if (Run.IsLoad)
        ++Stats.LoadRunsCoalesced;
      else
        ++Stats.StoreRunsCoalesced;
    }
    Stats.NarrowLoadsRemoved += RCUsed.NarrowLoadsRemoved;
    Stats.NarrowStoresRemoved += RCUsed.NarrowStoresRemoved;
    ++Stats.LoopsTransformed;
    verifyOrDie(F, "coalesce");
  }

  static bool stepFeasible(int64_t Step, int64_t BoundStep) {
    if (Step == 0)
      return true;
    uint64_t S = static_cast<uint64_t>(Step < 0 ? -Step : Step);
    uint64_t B = static_cast<uint64_t>(BoundStep < 0 ? -BoundStep
                                                     : BoundStep);
    return isPowerOf2(S) && isPowerOf2(B);
  }

  bool overlapCheckFeasible(const LoopScalarInfo &LSI,
                            const MemoryPartitions &MP,
                            const AliasPairSet &Pairs) const {
    if (!LSI.bound())
      return false;
    const InductionVar *BIV = LSI.ivFor(LSI.bound()->IV);
    if (!BIV)
      return false;
    for (const auto &[A, B] : Pairs) {
      if (!stepFeasible(MP.partitions()[A].Step, BIV->StepPerIteration) ||
          !stepFeasible(MP.partitions()[B].Step, BIV->StepPerIteration))
        return false;
    }
    return true;
  }

  CheckPlan buildCheckPlan(const LoopScalarInfo &LSI,
                           const MemoryPartitions &MP,
                           const std::vector<CoalesceRun> &Accepted,
                           const AliasPairSet &AliasPairs) const {
    CheckPlan Plan;
    for (const CoalesceRun &Run : Accepted) {
      if (!Run.NeedsAlignCheck)
        continue;
      CheckPlan::Align A;
      A.Base = MP.partitions()[Run.PartitionIdx].Base;
      A.StartOff = Run.StartOff;
      A.WideBytes = Run.WideBytes;
      if (std::find(Plan.AlignChecks.begin(), Plan.AlignChecks.end(), A) ==
          Plan.AlignChecks.end())
        Plan.AlignChecks.push_back(A);
    }
    auto ExtentOf = [&MP](size_t PI) {
      const Partition &P = MP.partitions()[PI];
      CheckPlan::Extent E;
      E.Base = P.Base;
      E.Step = P.Step;
      E.MinOff = P.Refs.front().Offset;
      E.MaxOffEnd = P.Refs.front().Offset +
                    widthBytes(P.Refs.front().W);
      for (const MemRef &R : P.Refs) {
        E.MinOff = std::min(E.MinOff, R.Offset);
        E.MaxOffEnd = std::max(
            E.MaxOffEnd, R.Offset + static_cast<int64_t>(widthBytes(R.W)));
      }
      return E;
    };
    for (const auto &[A, B] : AliasPairs)
      Plan.OverlapChecks.push_back({ExtentOf(A), ExtentOf(B)});
    if (LSI.bound()) {
      Plan.BoundIV = LSI.bound()->IV;
      Plan.Limit = LSI.bound()->Limit;
      if (const InductionVar *BIV = LSI.ivFor(Plan.BoundIV))
        Plan.BoundStep = BIV->StepPerIteration;
    }
    return Plan;
  }
};

} // namespace

CoalesceStats vpo::coalesceMemoryAccesses(Function &F,
                                          const TargetMachine &TM,
                                          const CoalesceOptions &Opts) {
  return CoalescePass(F, TM, Opts).run();
}
