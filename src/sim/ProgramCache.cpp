//===- sim/ProgramCache.cpp -----------------------------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "sim/ProgramCache.h"

#include "ir/Function.h"
#include "ir/Verifier.h"
#include "target/TargetMachine.h"

#include <list>
#include <unordered_map>

using namespace vpo;

namespace {

/// FNV-1a over the full TargetMachine::Spec — two targets with identical
/// specs may share cached programs (latencies are baked into DecodedOp, so
/// every field that can differ must feed the hash).
uint64_t fnv1a(uint64_t H, uint64_t V) {
  for (int I = 0; I < 8; ++I) {
    H ^= (V >> (I * 8)) & 0xFF;
    H *= 1099511628211ULL;
  }
  return H;
}

uint64_t specFingerprint(const TargetMachine &TM) {
  const TargetMachine::Spec &S = TM.spec();
  uint64_t H = 14695981039346656037ULL;
  for (char C : S.Name)
    H = fnv1a(H, static_cast<uint8_t>(C));
  H = fnv1a(H, S.MaxMemWidthBytes);
  H = fnv1a(H, S.MinIntMemBytes);
  H = fnv1a(H, S.NaturalAlignment);
  H = fnv1a(H, S.UnalignedWideLoad);
  H = fnv1a(H, S.NativeInsert);
  H = fnv1a(H, S.EncodingBytes);
  H = fnv1a(H, S.ICacheBytes);
  H = fnv1a(H, S.DCache.SizeBytes);
  H = fnv1a(H, S.DCache.LineBytes);
  H = fnv1a(H, S.DCache.Ways);
  H = fnv1a(H, S.DCache.HitCycles);
  H = fnv1a(H, S.DCache.MissPenalty);
  H = fnv1a(H, S.AluLatency);
  H = fnv1a(H, S.MulLatency);
  H = fnv1a(H, S.DivLatency);
  H = fnv1a(H, S.LoadLatency);
  H = fnv1a(H, S.FPLatency);
  H = fnv1a(H, S.FPDivLatency);
  H = fnv1a(H, S.ExtractLatency);
  H = fnv1a(H, S.InsertLatency);
  H = fnv1a(H, S.MemIssueCycles);
  H = fnv1a(H, S.FullyPipelined);
  return H;
}

struct Key {
  uint64_t Uid, Version, TargetFp;
  bool operator==(const Key &O) const {
    return Uid == O.Uid && Version == O.Version && TargetFp == O.TargetFp;
  }
};

struct KeyHash {
  size_t operator()(const Key &K) const {
    uint64_t H = 14695981039346656037ULL;
    H = fnv1a(H, K.Uid);
    H = fnv1a(H, K.Version);
    H = fnv1a(H, K.TargetFp);
    return static_cast<size_t>(H);
  }
};

/// Mutex-guarded LRU. 64 entries comfortably covers a fuzz oracle's
/// per-case function set times its target matrix while bounding how much
/// compiled code an unbounded workload stream can pin.
class Cache {
public:
  static constexpr size_t MaxEntries = 64;

  std::shared_ptr<CachedProgram> get(const Function &F,
                                     const TargetMachine &TM) {
    Key K{F.uid(), F.version(), specFingerprint(TM)};
    std::lock_guard<std::mutex> Lock(M);
    auto It = Map.find(K);
    if (It != Map.end()) {
      ++Stats.Hits;
      Order.splice(Order.begin(), Order, It->second.Pos);
      return It->second.Prog;
    }
    ++Stats.Misses;
    auto Prog = std::make_shared<CachedProgram>();
    std::vector<std::string> Problems;
    if (verifyFunction(F, Problems)) {
      Prog->VerifyOk = true;
      Prog->DecodeOk = predecodeFunction(F, TM, Prog->DF, Prog->DecodeError);
    } else {
      for (const std::string &P : Problems)
        Prog->VerifyProblems += "\n  " + P;
    }
    if (Map.size() >= MaxEntries) {
      Map.erase(Order.back());
      Order.pop_back();
      ++Stats.Evictions;
    }
    Order.push_front(K);
    Map.emplace(K, Entry{Prog, Order.begin()});
    return Prog;
  }

  ProgramCacheStats stats() {
    std::lock_guard<std::mutex> Lock(M);
    return Stats;
  }

  void clear() {
    std::lock_guard<std::mutex> Lock(M);
    Map.clear();
    Order.clear();
  }

private:
  struct Entry {
    std::shared_ptr<CachedProgram> Prog;
    std::list<Key>::iterator Pos;
  };

  std::mutex M;
  std::unordered_map<Key, Entry, KeyHash> Map;
  std::list<Key> Order;
  ProgramCacheStats Stats;
};

Cache &cache() {
  static Cache C;
  return C;
}

} // namespace

std::shared_ptr<CachedProgram> vpo::getOrBuildProgram(const Function &F,
                                                      const TargetMachine &TM) {
  return cache().get(F, TM);
}

ProgramCacheStats vpo::programCacheStats() { return cache().stats(); }

void vpo::programCacheClear() { cache().clear(); }
