//===- sim/Cache.cpp ------------------------------------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "sim/Cache.h"

#include "support/Error.h"
#include "support/MathExtras.h"

#include <algorithm>

using namespace vpo;

DataCache::DataCache(const CacheParams &P) : P(P) {
  if (P.LineBytes == 0 || !isPowerOf2(P.LineBytes))
    fatalError("cache line size must be a power of two");
  if (P.Ways == 0 || P.SizeBytes % (P.LineBytes * P.Ways) != 0)
    fatalError("cache size must be a multiple of line size times ways");
  NumSets = P.SizeBytes / (P.LineBytes * P.Ways);
  if (!isPowerOf2(NumSets))
    fatalError("cache set count must be a power of two");
  Lines.resize(static_cast<size_t>(NumSets) * P.Ways);
}

void DataCache::reset() {
  std::fill(Lines.begin(), Lines.end(), Line());
  Tick = 0;
  S = Stats();
}

unsigned DataCache::access(uint64_t Addr, unsigned NumBytes, bool IsStore) {
  uint64_t FirstLine = Addr / P.LineBytes;
  uint64_t LastLine = (Addr + NumBytes - 1) / P.LineBytes;
  unsigned Cycles = 0;
  for (uint64_t L = FirstLine; L <= LastLine; ++L)
    Cycles += accessLine(L, IsStore);
  return Cycles;
}

unsigned DataCache::accessLine(uint64_t LineAddr, bool IsStore) {
  ++Tick;
  ++S.Accesses;
  uint64_t Set = LineAddr & (NumSets - 1);
  uint64_t Tag = LineAddr >> log2Floor(NumSets);
  Line *Base = &Lines[Set * P.Ways];

  // Hit?
  for (unsigned W = 0; W < P.Ways; ++W) {
    Line &Ln = Base[W];
    if (Ln.Valid && Ln.Tag == Tag) {
      Ln.LastUse = Tick;
      Ln.Dirty |= IsStore;
      ++S.Hits;
      return P.HitCycles;
    }
  }

  // Miss: fill an invalid way if there is one, else evict the LRU line
  // (write-allocate for both loads and stores).
  ++S.Misses;
  Line *Victim = nullptr;
  for (unsigned W = 0; W < P.Ways; ++W)
    if (!Base[W].Valid) {
      Victim = &Base[W];
      break;
    }
  if (!Victim) {
    Victim = Base;
    for (unsigned W = 1; W < P.Ways; ++W)
      if (Base[W].LastUse < Victim->LastUse)
        Victim = &Base[W];
  }
  if (Victim->Valid && Victim->Dirty)
    ++S.WriteBacks;
  Victim->Valid = true;
  Victim->Dirty = IsStore;
  Victim->Tag = Tag;
  Victim->LastUse = Tick;
  return P.HitCycles + P.MissPenalty;
}
