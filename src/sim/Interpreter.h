//===- sim/Interpreter.h - RTL interpreter with cost model -------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes RTL functions over a simulated memory with a target cost model,
/// producing both the architectural result (memory contents, return value)
/// and performance metrics (cycles, memory references, cache behaviour).
/// This stands in for the paper's three hardware platforms: the paper's
/// claims are relative execution-time improvements, which the cycle model
/// preserves.
///
/// The interpreter also enforces the safety properties the paper's run-time
/// checks exist to protect: on targets that require natural alignment, an
/// unaligned load/store terminates the run with Status::UnalignedTrap —
/// exactly what would happen on a real DEC Alpha if the coalescer emitted a
/// wide reference to an unaligned address.
///
/// Instruction fetch is modeled too: each block is assigned a code address
/// in layout order and every executed instruction probes an instruction
/// cache of the target's declared size. This is what makes over-unrolling
/// genuinely expensive (the premise of the paper's i-cache-fit heuristic,
/// section 2.2) rather than free.
///
/// Two cycle-accurate engines produce bit-identical results and metrics:
///
///  * the **predecoded fast path** (default): the function is lowered once
///    into a flat decoded-op array (sim/Predecode.h) and the hot loop is an
///    index-driven dispatch over POD structs;
///  * the **reference path** (InterpreterOptions::Predecode = false, the
///    harnesses' --no-predecode): the original walk of the IR, kept as the
///    executable specification the fast path is differentially tested
///    against.
///
/// A third, **functional tiered engine** (InterpreterOptions::EnableJIT)
/// trades the cycle model for throughput: blocks start on a portable
/// functional interpreter, per-block counters promote hot blocks to
/// copy-and-patch native code (jit/JIT.h), and compiled traces fall back
/// to the interpreter at side exits. It reproduces the architectural
/// results of the other two engines exactly — return value, memory image,
/// instruction/memory-reference counts, trap points and byte-identical
/// trap diagnostics — but reports Cycles = 0 and empty cache stats; the
/// cycle-accurate engines remain the timing oracle.
///
/// One Interpreter owns its register file, scoreboard, and cache models
/// and reuses them across run() calls, so sweeping many runs of the same
/// function does not reallocate per run. run(Function) resolves its
/// verified + predecoded (and JIT-compiled) form through the process-wide
/// program cache (sim/ProgramCache.h), keyed on the function's identity
/// epoch — repeated runs of an unmodified function skip verification and
/// lowering entirely.
///
//===----------------------------------------------------------------------===//

#ifndef VPO_SIM_INTERPRETER_H
#define VPO_SIM_INTERPRETER_H

#include "sim/Cache.h"
#include "sim/Memory.h"
#include "sim/Predecode.h"
#include "target/TargetMachine.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace vpo {

class Function;
class RemarkSink;

namespace jit {
class JITProgram;
}

/// Outcome and metrics of one simulated run.
struct RunResult {
  enum class Status {
    Ok,
    UnalignedTrap, ///< aligned-only target saw an unaligned reference
    OutOfBounds,
    DivideByZero,
    StepLimit,
    MalformedIR,
  };

  Status Exit = Status::Ok;
  std::string Error; ///< diagnostic for non-Ok exits

  int64_t ReturnValue = 0;

  uint64_t Instructions = 0;
  uint64_t Cycles = 0;
  uint64_t Loads = 0;        ///< executed Load + LoadWideU
  uint64_t Stores = 0;
  uint64_t MemRefs() const { return Loads + Stores; }
  uint64_t LoadBytes = 0;
  uint64_t StoreBytes = 0;
  uint64_t Branches = 0;
  DataCache::Stats Cache;
  DataCache::Stats ICache;

  bool ok() const { return Exit == Status::Ok; }

  /// A run-time trap: the simulated program performed an illegal access
  /// (as opposed to the harness rejecting the IR or hitting a limit).
  bool trapped() const {
    return Exit == Status::UnalignedTrap || Exit == Status::OutOfBounds ||
           Exit == Status::DivideByZero;
  }
};

/// \returns a printable name for a run status.
const char *runStatusName(RunResult::Status S);

struct InterpreterOptions {
  /// Execute through the predecoded fast path. The reference path exists
  /// as an executable specification and as the --no-predecode escape
  /// hatch; both produce identical results and metrics.
  bool Predecode = true;
  /// Instruction budget (watchdog): a run that executes this many
  /// instructions without returning exits with Status::StepLimit. This is
  /// the first-class form of run()'s MaxSteps parameter, so harnesses
  /// that execute untrusted or generated kernels (the fuzzer, the bench
  /// matrix under --max-insts) can bound every run they make without
  /// threading a limit through each call site.
  uint64_t MaxSteps = 500'000'000;

  /// Run through the functional tiered engine instead of the
  /// cycle-accurate simulator: exact architectural results (including
  /// trap diagnostics and instruction/memory counts) at interpreter+JIT
  /// speed, with Cycles = 0 and empty cache stats.
  bool EnableJIT = false;
  /// Allow promotion to native code within the tiered engine. Off keeps
  /// the functional engine purely interpreted — the crash-blast-radius
  /// setting for degraded service rungs, and the --no-jit escape hatch.
  bool JITNative = true;
  /// Interpreted entries of a block before it is compiled.
  uint64_t JITHotThreshold = 32;
  /// Reserved native-code address space per function.
  size_t JITMaxCodeBytes = 16u << 20;
  /// Seeded fault injector (test rigs only): corrupt the Nth block the
  /// JIT compiles with a wild store to a non-canonical address, proving
  /// the native-fault quarantine end to end. 0 = off.
  uint32_t JITPlantWildStore = 0;
  /// Optional sink for jit-disabled / jit-summary remarks (read-only
  /// telemetry; never observed by execution).
  RemarkSink *Remarks = nullptr;

  /// Model register pressure: both cycle-accurate engines charge
  /// sched/RegPressure's blockSpillCycles() on every entry to a block
  /// whose estimated max-live exceeds the target's register file — the
  /// spill/reload traffic a real allocator would have inserted there.
  /// This is what makes over-unrolling on register-starved targets (the
  /// Motorola 68030's 13 int / 7 FP files) genuinely expensive, so the
  /// pressure-aware unroll clamp has a measurable effect to win back.
  /// Off by default: the differential and golden suites pin the
  /// historical pressure-blind cycle model.
  bool ModelRegPressure = false;
};

class Interpreter {
public:
  Interpreter(const TargetMachine &TM, Memory &Mem,
              InterpreterOptions Opts = InterpreterOptions());

  /// Runs \p F with \p Args bound to its parameter registers. Verifies
  /// \p F first (malformed input yields Status::MalformedIR, not UB).
  /// \p MaxSteps overrides the options' instruction budget for this run;
  /// 0 means "use InterpreterOptions::MaxSteps".
  RunResult run(const Function &F, const std::vector<int64_t> &Args,
                uint64_t MaxSteps = 0);

  /// Runs an already-predecoded function, skipping verification and
  /// lowering — the repeated-run entry point for sweeps that execute one
  /// compiled kernel many times. The source Function must be unchanged
  /// since predecodeFunction().
  RunResult run(const DecodedFunction &DF, const std::vector<int64_t> &Args,
                uint64_t MaxSteps = 0);

  const InterpreterOptions &options() const { return Opts; }

private:
  RunResult runReference(const Function &F,
                         const std::vector<int64_t> &Args,
                         uint64_t MaxSteps);
  RunResult runDecoded(const DecodedFunction &DF,
                       const std::vector<int64_t> &Args, uint64_t MaxSteps);
  /// The functional tiered engine. \p JP is the (possibly null) native
  /// program resolved by the caller; \p DisabledReason names why it is
  /// null, for the jit-disabled remark.
  RunResult runFunctional(const DecodedFunction &DF,
                          const std::vector<int64_t> &Args,
                          uint64_t MaxSteps, jit::JITProgram *JP,
                          const char *DisabledReason);

  // Held by value: callers routinely pass a freshly-made TargetMachine
  // temporary to the constructor, and run() consults the target spec (the
  // program-cache key fingerprints it), so a reference would dangle.
  TargetMachine TM;
  Memory &Mem;
  InterpreterOptions Opts;
  DataCache DCache;  ///< data-cache model, reset per run
  DataCache IFetch;  ///< instruction-cache model, reset per run
  std::vector<uint64_t> Vals;     ///< register file / value pool, reused
  std::vector<uint64_t> RegReady; ///< scoreboard, reused
  // Native-program memo for the run(DecodedFunction) entry point, which
  // bypasses the program cache. Revalidated against the DF's address and
  // source identity epoch; run(Function) uses the shared cache instead.
  std::shared_ptr<void> MemoJIT;
  bool MemoJITTried = false;
  const DecodedFunction *MemoDF = nullptr;
  uint64_t MemoUid = 0, MemoVersion = 0;
};

} // namespace vpo

#endif // VPO_SIM_INTERPRETER_H
