//===- sim/ProgramCache.h - Cached verify/predecode/JIT programs -*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-global cache of executable program forms, keyed on function
/// identity. Interpreter::run(F) historically re-verified and re-predecoded
/// the function on *every* call — measurable pure overhead for benchmark
/// and fuzz drivers that run the same function thousands of times. The
/// cache keys on (Function::uid(), Function::version(), target-spec
/// fingerprint), so:
///
///  * an unmodified function re-run on the same target is a pure hit:
///    verification, predecoding and any compiled native code are reused;
///  * any IR mutation bumps version() (BasicBlock::preMutate and the
///    function-level mutators route through Function::noteMutated), which
///    changes the key — stale forms are unreachable, no explicit
///    invalidation hooks needed;
///  * uids are never reused (process-global epoch counter), so a destroyed
///    function's entries can never be hit by a later allocation at the
///    same address.
///
/// Entries also carry the (type-erased) JIT program so block hotness and
/// compiled code survive across runs — that is what lets the tiered
/// driver actually reach native speed on repeated benchmark iterations.
///
//===----------------------------------------------------------------------===//

#ifndef VPO_SIM_PROGRAMCACHE_H
#define VPO_SIM_PROGRAMCACHE_H

#include "sim/Predecode.h"

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

namespace vpo {

class Function;
class TargetMachine;

/// Everything derived from one (function revision, target) pair.
struct CachedProgram {
  /// Verification outcome. When !VerifyOk, VerifyProblems carries the
  /// pre-formatted problem list (one "\n  "-prefixed line per problem).
  bool VerifyOk = false;
  std::string VerifyProblems;

  /// Predecode outcome (only attempted when VerifyOk).
  bool DecodeOk = false;
  std::string DecodeError;
  DecodedFunction DF;

  /// Lazily created jit::JITProgram, type-erased so sim's public headers
  /// stay free of the jit dependency. Guarded by JITInit; null until the
  /// tiered driver first promotes a block, and left null forever when the
  /// platform has no native support.
  std::shared_ptr<void> JIT;
  bool JITInitTried = false;
  std::mutex JITInit;
};

/// Cache observability for tests and telemetry.
struct ProgramCacheStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Evictions = 0;
};

/// Looks up (or verifies + predecodes and inserts) the program for \p F on
/// \p TM's spec. Never returns null. The returned entry is shared — the
/// Function must outlive any use of entry->DF (same rule as
/// predecodeFunction), and concurrent runs of the same entry coordinate
/// through the JIT program's own run lock.
std::shared_ptr<CachedProgram> getOrBuildProgram(const Function &F,
                                                 const TargetMachine &TM);

ProgramCacheStats programCacheStats();
/// Drops every cached entry (tests; also frees compiled code).
void programCacheClear();

} // namespace vpo

#endif // VPO_SIM_PROGRAMCACHE_H
