//===- sim/Memory.cpp -----------------------------------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "sim/Memory.h"

#include "support/Error.h"
#include "support/MathExtras.h"

using namespace vpo;

Memory::Memory(size_t Size) : Bytes(Size, 0) {}

bool Memory::tryAllocate(size_t Size, size_t Align, size_t Skew,
                         uint64_t &AddrOut) {
  if (Align == 0 || !isPowerOf2(Align))
    return false;
  uint64_t Addr = alignTo(NextAlloc, Align) + Skew;
  // Red zone between allocations so out-of-bounds kernels corrupt a gap,
  // not a neighbouring array (made visible by golden-output comparison).
  uint64_t Next = Addr + Size + 64;
  if (Next > Bytes.size() || Next < Addr)
    return false;
  NextAlloc = Next;
  AddrOut = Addr;
  return true;
}

uint64_t Memory::allocate(size_t Size, size_t Align, size_t Skew) {
  if (Align == 0 || !isPowerOf2(Align))
    fatalError("Memory::allocate: alignment must be a power of two");
  uint64_t Addr = 0;
  if (!tryAllocate(Size, Align, Skew, Addr))
    fatalError("Memory::allocate: out of simulated memory");
  return Addr;
}

bool Memory::tryRead(uint64_t Addr, unsigned NumBytes, uint64_t &Out) const {
  if (!inBounds(Addr, NumBytes))
    return false;
  uint64_t V = 0;
  for (unsigned I = 0; I < NumBytes; ++I)
    V |= static_cast<uint64_t>(Bytes[Addr + I]) << (8 * I);
  Out = V;
  return true;
}

bool Memory::tryWrite(uint64_t Addr, unsigned NumBytes, uint64_t V) {
  if (!inBounds(Addr, NumBytes))
    return false;
  for (unsigned I = 0; I < NumBytes; ++I)
    Bytes[Addr + I] = static_cast<uint8_t>(V >> (8 * I));
  return true;
}

uint64_t Memory::read(uint64_t Addr, unsigned NumBytes) const {
  uint64_t V = 0;
  if (!tryRead(Addr, NumBytes, V))
    fatalError("Memory::read out of bounds");
  return V;
}

void Memory::write(uint64_t Addr, unsigned NumBytes, uint64_t V) {
  if (!tryWrite(Addr, NumBytes, V))
    fatalError("Memory::write out of bounds");
}
