//===- sim/Predecode.h - Flat decoded-op form of a function -----*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a verified Function into a flat, cache-friendly array of decoded
/// operations so the interpreter's hot loop is an index-driven dispatch
/// over POD structs instead of per-step Operand inspection, hash-map code
/// address lookups, and use-list collection.
///
/// The decoded form pre-resolves everything that is invariant across a
/// run:
///
///  * **Operands** become indices into one unified *value pool*: slots
///    [0, NumRegs) are the virtual registers (slot == register id) and
///    slots [NumRegs, poolSize()) hold the function's immediate constants
///    (deduplicated). Absent operands map to slot 0, the invalid register,
///    which always holds zero. Reading any operand is therefore a single
///    indexed load with no kind branch — and the scoreboard can check
///    operand readiness unconditionally, because constant slots are ready
///    at cycle 0 forever.
///  * **Latency and issue occupancy** are looked up in the TargetMachine
///    once per static instruction instead of once per dynamic one.
///  * **Code addresses** (for the instruction-cache model) are computed
///    per op from the same synthetic layout the reference interpreter
///    uses.
///  * **Branch targets** become op indices into the flat array.
///
/// The decoded function keeps a pointer to the source Function purely for
/// diagnostics (trap messages re-print the offending instruction); the
/// Function must stay alive and unmodified while the decoded form is in
/// use. Interpreter asserts the two paths agree: see
/// tests/sim/predecode_test.cpp for the exhaustive differential suite.
///
//===----------------------------------------------------------------------===//

#ifndef VPO_SIM_PREDECODE_H
#define VPO_SIM_PREDECODE_H

#include "ir/Instruction.h"

#include <cstdint>
#include <string>
#include <vector>

namespace vpo {

class Function;
class TargetMachine;

/// One predecoded instruction. Plain data; everything the execute loop
/// needs is inline.
struct DecodedOp {
  Opcode Op = Opcode::Mov;
  MemWidth W = MemWidth::W8;
  CondCode CC = CondCode::EQ;
  bool SignExtend = false;
  bool IsFloat = false;
  /// Natural-alignment trap required for this memory reference (target
  /// requires alignment and the op is not an unaligned-tolerant wide
  /// load).
  bool CheckAlign = false;
  uint8_t WBytes = 8; ///< widthBytes(W)
  uint8_t WBits = 64; ///< widthBits(W)
  uint16_t Lat = 1;   ///< TargetMachine::latency
  uint16_t Occ = 1;   ///< TargetMachine::issueCycles
  uint32_t A = 0, B = 0, C = 0; ///< value-pool indices of the sources
  uint32_t Dst = 0;             ///< destination register id; 0 = none
  uint32_t Base = 0;            ///< value-pool index of the address base
  int64_t Disp = 0;             ///< address displacement
  uint64_t CodeAddr = 0;        ///< synthetic fetch address of this op
  uint32_t TrueIdx = 0;         ///< successor op index (Br taken / Jmp)
  uint32_t FalseIdx = 0;        ///< successor op index (Br not taken)
  uint32_t BlockIdx = 0;        ///< source block (diagnostics only)
  uint32_t InstIdx = 0;         ///< index within the source block
};

/// A Function lowered for fast interpretation, tied to one TargetMachine
/// (latencies and alignment rules are baked in).
class DecodedFunction {
public:
  /// All ops, blocks concatenated in layout order.
  std::vector<DecodedOp> Ops;
  /// Immediate constants, in value-pool slot order (slot NumRegs + i).
  std::vector<uint64_t> ConstPool;
  /// First op index of each source block, in layout order. Ops[BlockStart[b]]
  /// is the block head every branch into block b lands on; the JIT tier
  /// compiles and chains code at exactly these boundaries.
  std::vector<uint32_t> BlockStart;
  /// Number of register slots (== Function::regUpperBound()).
  uint32_t NumRegs = 0;
  /// Entry op index (always 0; kept explicit for readability).
  uint32_t EntryIdx = 0;
  /// Identity of the source revision this form was lowered from
  /// (Function::uid() / version() at predecode time). Caches key on these
  /// so a mutated function can never be served a stale decoded stream.
  uint64_t SourceUid = 0;
  uint64_t SourceVersion = 0;

  /// Registers plus constants: the size of the interpreter's unified
  /// value array.
  size_t poolSize() const { return NumRegs + ConstPool.size(); }

  const Function *source() const { return F; }

  /// \returns the source instruction of op \p OpIdx (diagnostics).
  const Instruction &sourceInst(size_t OpIdx) const;

private:
  friend bool predecodeFunction(const Function &, const TargetMachine &,
                                DecodedFunction &, std::string &);
  const Function *F = nullptr;
};

/// Lowers \p F (which must already have passed verification) for execution
/// on \p TM. \returns false and sets \p Error if \p F cannot be lowered
/// (no blocks, or block/op counts exceed the 32-bit index space).
bool predecodeFunction(const Function &F, const TargetMachine &TM,
                       DecodedFunction &Out, std::string &Error);

} // namespace vpo

#endif // VPO_SIM_PREDECODE_H
