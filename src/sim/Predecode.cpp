//===- sim/Predecode.cpp --------------------------------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "sim/Predecode.h"

#include "ir/Function.h"
#include "target/TargetMachine.h"

#include <limits>
#include <unordered_map>

using namespace vpo;

const Instruction &DecodedFunction::sourceInst(size_t OpIdx) const {
  const DecodedOp &D = Ops[OpIdx];
  return F->blocks()[D.BlockIdx]->insts()[D.InstIdx];
}

bool vpo::predecodeFunction(const Function &F, const TargetMachine &TM,
                            DecodedFunction &Out, std::string &Error) {
  Out = DecodedFunction();
  Out.F = &F;
  Out.NumRegs = F.regUpperBound();
  Out.SourceUid = F.uid();
  Out.SourceVersion = F.version();

  if (F.blocks().empty()) {
    Error = "function has no blocks";
    return false;
  }
  size_t TotalOps = F.instructionCount();
  if (TotalOps >= std::numeric_limits<uint32_t>::max() ||
      F.blocks().size() >= std::numeric_limits<uint32_t>::max()) {
    Error = "function too large to predecode";
    return false;
  }

  // Pass 1: block start indices in the flat array, and the synthetic code
  // layout (must match the reference interpreter's exactly: blocks in
  // layout order, encodingBytes() per instruction).
  Out.BlockStart.assign(F.blocks().size(), 0);
  std::vector<uint32_t> &BlockStart = Out.BlockStart;
  std::vector<uint64_t> BlockAddr(F.blocks().size(), 0);
  uint32_t Start = 0;
  uint64_t Addr = 0;
  for (size_t B = 0; B < F.blocks().size(); ++B) {
    BlockStart[B] = Start;
    BlockAddr[B] = Addr;
    Start += static_cast<uint32_t>(F.blocks()[B]->size());
    Addr += F.blocks()[B]->size() * TM.encodingBytes();
  }

  // Immediates are pooled behind the registers; slot 0 (the invalid
  // register, never defined) doubles as the constant-zero slot for absent
  // operands.
  std::unordered_map<int64_t, uint32_t> ImmSlot;
  auto OperandSlot = [&](const Operand &O) -> uint32_t {
    if (O.isReg())
      return O.reg().Id;
    if (O.isImm()) {
      auto It = ImmSlot.find(O.imm());
      if (It != ImmSlot.end())
        return It->second;
      uint32_t Slot =
          Out.NumRegs + static_cast<uint32_t>(Out.ConstPool.size());
      Out.ConstPool.push_back(static_cast<uint64_t>(O.imm()));
      ImmSlot.emplace(O.imm(), Slot);
      return Slot;
    }
    return 0;
  };

  bool NeedsAlign = TM.requiresNaturalAlignment();
  Out.Ops.reserve(TotalOps);
  for (size_t B = 0; B < F.blocks().size(); ++B) {
    const BasicBlock &BB = *F.blocks()[B];
    for (size_t I = 0; I < BB.size(); ++I) {
      const Instruction &Inst = BB.insts()[I];
      DecodedOp D;
      D.Op = Inst.Op;
      D.W = Inst.W;
      D.CC = Inst.CC;
      D.SignExtend = Inst.SignExtend;
      D.IsFloat = Inst.IsFloat;
      D.WBytes = static_cast<uint8_t>(widthBytes(Inst.W));
      D.WBits = static_cast<uint8_t>(widthBits(Inst.W));
      D.CheckAlign =
          NeedsAlign && Inst.isMemory() && Inst.Op != Opcode::LoadWideU;
      D.Lat = static_cast<uint16_t>(TM.latency(Inst));
      D.Occ = static_cast<uint16_t>(TM.issueCycles(Inst));
      D.A = OperandSlot(Inst.A);
      D.B = OperandSlot(Inst.B);
      D.C = OperandSlot(Inst.C);
      D.Dst = Inst.Dst.Id;
      D.Base = Inst.isMemory() ? Inst.Addr.Base.Id : 0;
      D.Disp = Inst.Addr.Disp;
      D.CodeAddr = BlockAddr[B] + I * TM.encodingBytes();
      D.BlockIdx = static_cast<uint32_t>(B);
      D.InstIdx = static_cast<uint32_t>(I);
      if (Inst.TrueTarget) {
        int TIdx = F.blockIndex(Inst.TrueTarget);
        if (TIdx < 0) {
          Error = "branch target not in function: block " + BB.name();
          return false;
        }
        D.TrueIdx = BlockStart[static_cast<size_t>(TIdx)];
      }
      if (Inst.FalseTarget) {
        int FIdx = F.blockIndex(Inst.FalseTarget);
        if (FIdx < 0) {
          Error = "branch target not in function: block " + BB.name();
          return false;
        }
        D.FalseIdx = BlockStart[static_cast<size_t>(FIdx)];
      }
      Out.Ops.push_back(D);
    }
  }
  return true;
}
