//===- sim/Cache.h - Set-associative data-cache model ------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A write-back, write-allocate, LRU set-associative data cache. Redundant
/// narrow loads usually *hit* in this cache — the paper's point is that even
/// cache hits consume issue slots and load latency, so coalescing pays on
/// top of caching; the model reflects that by charging the load latency on
/// hits and an additional penalty on misses.
///
//===----------------------------------------------------------------------===//

#ifndef VPO_SIM_CACHE_H
#define VPO_SIM_CACHE_H

#include "target/TargetMachine.h"

#include <cstdint>
#include <vector>

namespace vpo {

class DataCache {
public:
  struct Stats {
    uint64_t Accesses = 0;
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    uint64_t WriteBacks = 0;
  };

  explicit DataCache(const CacheParams &P);

  /// Simulates an access to [Addr, Addr+NumBytes). An access spanning two
  /// lines touches both. \returns the added cycles (hit/miss costs).
  unsigned access(uint64_t Addr, unsigned NumBytes, bool IsStore);

  const Stats &stats() const { return S; }
  void resetStats() { S = Stats(); }

  /// Restores the cache to its just-constructed state: every line invalid,
  /// LRU clock at zero, statistics cleared. Lets an Interpreter reuse one
  /// cache object across runs with results identical to a fresh cache.
  void reset();

private:
  struct Line {
    uint64_t Tag = ~uint64_t(0);
    bool Valid = false;
    bool Dirty = false;
    uint64_t LastUse = 0;
  };

  unsigned accessLine(uint64_t LineAddr, bool IsStore);

  CacheParams P;
  unsigned NumSets;
  std::vector<Line> Lines; // NumSets x Ways
  uint64_t Tick = 0;
  Stats S;
};

} // namespace vpo

#endif // VPO_SIM_CACHE_H
