//===- sim/Interpreter.cpp ------------------------------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "sim/Interpreter.h"

#include "ir/Function.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include "jit/JIT.h"
#include "sched/RegPressure.h"
#include "sim/ProgramCache.h"
#include "support/Error.h"
#include "support/MathExtras.h"
#include "support/Remark.h"
#include "support/StringUtils.h"
#include "target/TargetMachine.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <csignal>
#include <mutex>
#include <unordered_map>

using namespace vpo;

const char *vpo::runStatusName(RunResult::Status S) {
  switch (S) {
  case RunResult::Status::Ok:
    return "ok";
  case RunResult::Status::UnalignedTrap:
    return "unaligned-trap";
  case RunResult::Status::OutOfBounds:
    return "out-of-bounds";
  case RunResult::Status::DivideByZero:
    return "divide-by-zero";
  case RunResult::Status::StepLimit:
    return "step-limit";
  case RunResult::Status::MalformedIR:
    return "malformed-ir";
  }
  vpo_unreachable("invalid status");
}

namespace {

CacheParams makeICacheParams(const TargetMachine &TM) {
  CacheParams P;
  P.SizeBytes = TM.iCacheBytes();
  P.LineBytes = 16;
  P.Ways = 1;
  P.HitCycles = 0;
  // Refilling an instruction line costs about what a data miss does.
  P.MissPenalty = TM.dataCache().MissPenalty / 2 + 4;
  return P;
}

bool evalCond(CondCode CC, uint64_t A, uint64_t B) {
  int64_t SA = static_cast<int64_t>(A), SB = static_cast<int64_t>(B);
  switch (CC) {
  case CondCode::EQ:
    return A == B;
  case CondCode::NE:
    return A != B;
  case CondCode::LTs:
    return SA < SB;
  case CondCode::LEs:
    return SA <= SB;
  case CondCode::GTs:
    return SA > SB;
  case CondCode::GEs:
    return SA >= SB;
  case CondCode::LTu:
    return A < B;
  case CondCode::LEu:
    return A <= B;
  case CondCode::GTu:
    return A > B;
  case CondCode::GEu:
    return A >= B;
  }
  vpo_unreachable("invalid condition");
}

/// The reference execution engine: walks the IR directly, resolving
/// operands per step. This is the executable specification the predecoded
/// fast path is differentially tested against — keep its observable
/// behaviour (metrics, trap messages) frozen. State buffers are borrowed
/// from the owning Interpreter so repeated runs do not reallocate.
class Machine {
public:
  Machine(const TargetMachine &TM, Memory &Mem, const Function &F,
          const std::vector<int64_t> &Args, uint64_t MaxSteps,
          DataCache &Cache, DataCache &ICache, std::vector<uint64_t> &Regs,
          std::vector<uint64_t> &RegReady, bool ModelPressure)
      : TM(TM), Mem(Mem), F(F), MaxSteps(MaxSteps), Cache(Cache),
        ICache(ICache), Regs(Regs), RegReady(RegReady) {
    Cache.reset();
    ICache.reset();
    Regs.assign(F.regUpperBound(), 0);
    size_t N = std::min(Args.size(), F.params().size());
    for (size_t I = 0; I < N; ++I)
      Regs[F.params()[I].Id] = static_cast<uint64_t>(Args[I]);
    // Lay the code out: each block gets a synthetic address range so the
    // instruction cache sees realistic fetch locality.
    uint64_t Addr = 0;
    for (const auto &BB : F.blocks()) {
      CodeAddr[BB.get()] = Addr;
      Addr += BB->size() * TM.encodingBytes();
      if (ModelPressure)
        SpillCharge[BB.get()] = blockSpillCycles(*BB, TM);
    }
  }

  RunResult run() {
    if (F.blocks().empty())
      return fail(RunResult::Status::MalformedIR, "function has no blocks");
    RegReady.assign(Regs.size(), 0);
    const BasicBlock *BB = F.entry();
    Clock += spillCharge(BB);
    size_t Idx = 0;
    std::vector<Reg> Uses;
    while (true) {
      if (Idx >= BB->size())
        return fail(RunResult::Status::MalformedIR,
                    "fell off the end of block " + BB->name());
      if (R.Instructions >= MaxSteps)
        return fail(RunResult::Status::StepLimit, "step limit exceeded");
      const Instruction &I = BB->insts()[Idx];
      ++R.Instructions;

      // Instruction fetch: a miss stalls the front end outright.
      unsigned FetchStall = ICache.access(
          CodeAddr[BB] + Idx * TM.encodingBytes(), TM.encodingBytes(),
          /*IsStore=*/false);

      // In-order single-issue scoreboard: the instruction issues one cycle
      // after its predecessor, or later if a source register is still being
      // produced (load-use and multi-cycle-ALU stalls).
      uint64_t Issue = Clock + 1 + FetchStall;
      Uses.clear();
      I.collectUses(Uses);
      for (Reg U : Uses)
        if (RegReady[U.Id] > Issue)
          Issue = RegReady[U.Id];

      MemPenalty = 0;
      if (!step(I, BB, Idx))
        return R;

      unsigned Lat = TM.latency(I);
      unsigned Occ = TM.issueCycles(I);
      if (auto D = I.def())
        RegReady[D->Id] = Issue + Lat + MemPenalty;
      if (I.isStore())
        Clock = Issue + Occ - 1 + MemPenalty; // write misses stall the pipe
      else if (I.isTerminator())
        Clock = Issue + std::max(Occ, Lat) - 1; // taken-branch bubbles
      else
        Clock = Issue + Occ - 1;

      // Spill model: step() already moved BB to the branch target, so
      // charge the target block's modeled spill/reload traffic here (Ret
      // sets Done and charges nothing).
      if (I.isTerminator() && !Done)
        Clock += spillCharge(BB);

      if (Done) {
        R.Cycles = Clock;
        R.Cache = Cache.stats();
        R.ICache = ICache.stats();
        return R;
      }
    }
  }

private:
  const TargetMachine &TM;
  Memory &Mem;
  const Function &F;
  uint64_t MaxSteps;
  DataCache &Cache;
  DataCache &ICache;
  std::unordered_map<const BasicBlock *, uint64_t> CodeAddr;
  /// Per-block entry cost under InterpreterOptions::ModelRegPressure
  /// (empty when the model is off).
  std::unordered_map<const BasicBlock *, uint64_t> SpillCharge;
  std::vector<uint64_t> &Regs;
  std::vector<uint64_t> &RegReady; ///< cycle at which each register is ready
  uint64_t Clock = 0;              ///< issue cycle of the last instruction
  uint64_t MemPenalty = 0;         ///< cache cycles of the current memory op
  RunResult R;
  bool Done = false;

  RunResult fail(RunResult::Status S, const std::string &Msg) {
    R.Exit = S;
    R.Error = Msg;
    R.Cycles = Clock;
    R.Cache = Cache.stats();
    R.ICache = ICache.stats();
    return R;
  }

  uint64_t spillCharge(const BasicBlock *B) const {
    if (SpillCharge.empty())
      return 0;
    auto It = SpillCharge.find(B);
    return It == SpillCharge.end() ? 0 : It->second;
  }

  uint64_t eval(const Operand &O) const {
    if (O.isReg())
      return Regs[O.reg().Id];
    if (O.isImm())
      return static_cast<uint64_t>(O.imm());
    return 0;
  }

  double evalF(const Operand &O) const {
    return std::bit_cast<double>(eval(O));
  }

  void setReg(Reg Dst, uint64_t V) { Regs[Dst.Id] = V; }
  void setRegF(Reg Dst, double V) { Regs[Dst.Id] = std::bit_cast<uint64_t>(V); }

  /// Executes \p I. Updates \p BB / \p Idx for control flow. \returns false
  /// if the run has failed (R.Exit already set).
  bool step(const Instruction &I, const BasicBlock *&BB, size_t &Idx) {
    uint64_t A = eval(I.A), B = eval(I.B);
    switch (I.Op) {
    case Opcode::Mov:
      setReg(I.Dst, A);
      break;
    case Opcode::Add:
      setReg(I.Dst, A + B);
      break;
    case Opcode::Sub:
      setReg(I.Dst, A - B);
      break;
    case Opcode::Mul:
      setReg(I.Dst, A * B);
      break;
    case Opcode::DivS:
    case Opcode::RemS: {
      int64_t SB = static_cast<int64_t>(B);
      if (SB == 0) {
        fail(RunResult::Status::DivideByZero, printInstruction(I));
        return false;
      }
      int64_t SA = static_cast<int64_t>(A);
      setReg(I.Dst, static_cast<uint64_t>(I.Op == Opcode::DivS ? SA / SB
                                                               : SA % SB));
      break;
    }
    case Opcode::DivU:
    case Opcode::RemU:
      if (B == 0) {
        fail(RunResult::Status::DivideByZero, printInstruction(I));
        return false;
      }
      setReg(I.Dst, I.Op == Opcode::DivU ? A / B : A % B);
      break;
    case Opcode::And:
      setReg(I.Dst, A & B);
      break;
    case Opcode::Or:
      setReg(I.Dst, A | B);
      break;
    case Opcode::Xor:
      setReg(I.Dst, A ^ B);
      break;
    case Opcode::Shl:
      setReg(I.Dst, A << (B & 63));
      break;
    case Opcode::ShrA:
      setReg(I.Dst,
             static_cast<uint64_t>(static_cast<int64_t>(A) >> (B & 63)));
      break;
    case Opcode::ShrL:
      setReg(I.Dst, A >> (B & 63));
      break;
    case Opcode::CmpSet:
      setReg(I.Dst, evalCond(I.CC, A, B) ? 1 : 0);
      break;
    case Opcode::Select:
      setReg(I.Dst, A != 0 ? B : eval(I.C));
      break;
    case Opcode::Ext:
      setReg(I.Dst, I.SignExtend
                        ? static_cast<uint64_t>(
                              signExtend64(A, widthBits(I.W)))
                        : zeroExtend64(A, widthBits(I.W)));
      break;
    case Opcode::FAdd:
      setRegF(I.Dst, evalF(I.A) + evalF(I.B));
      break;
    case Opcode::FSub:
      setRegF(I.Dst, evalF(I.A) - evalF(I.B));
      break;
    case Opcode::FMul:
      setRegF(I.Dst, evalF(I.A) * evalF(I.B));
      break;
    case Opcode::FDiv:
      setRegF(I.Dst, evalF(I.A) / evalF(I.B));
      break;
    case Opcode::CvtIF:
      setRegF(I.Dst, static_cast<double>(static_cast<int64_t>(A)));
      break;
    case Opcode::CvtFI:
      setReg(I.Dst, static_cast<uint64_t>(
                        static_cast<int64_t>(std::trunc(evalF(I.A)))));
      break;
    case Opcode::Load:
    case Opcode::LoadWideU:
    case Opcode::Store:
      if (!memOp(I))
        return false;
      break;
    case Opcode::ExtQHi: {
      unsigned Off = static_cast<unsigned>(B & 7);
      setReg(I.Dst, Off == 0 ? 0 : A << (8 * (8 - Off)));
      break;
    }
    case Opcode::ExtractF: {
      unsigned Off = static_cast<unsigned>(B & 7);
      if (I.W != MemWidth::W8 && Off + widthBytes(I.W) > 8) {
        fail(RunResult::Status::MalformedIR,
             "extractf field exceeds the register: " + printInstruction(I));
        return false;
      }
      uint64_t Field = A >> (8 * Off);
      if (I.IsFloat && I.W == MemWidth::W4) {
        // Lane holds float bits; registers hold doubles.
        float FV = std::bit_cast<float>(
            static_cast<uint32_t>(zeroExtend64(Field, 32)));
        setRegF(I.Dst, static_cast<double>(FV));
        break;
      }
      setReg(I.Dst, I.SignExtend
                        ? static_cast<uint64_t>(
                              signExtend64(Field, widthBits(I.W)))
                        : zeroExtend64(Field, widthBits(I.W)));
      break;
    }
    case Opcode::InsertF: {
      unsigned Off = static_cast<unsigned>(B & 7);
      if (Off + widthBytes(I.W) > 8) {
        fail(RunResult::Status::MalformedIR,
             "insertf field exceeds the register: " + printInstruction(I));
        return false;
      }
      unsigned Bits = widthBits(I.W);
      uint64_t FieldMask =
          Bits >= 64 ? ~uint64_t(0) : ((uint64_t(1) << Bits) - 1);
      uint64_t C = eval(I.C);
      if (I.IsFloat && I.W == MemWidth::W4) {
        // Value register holds a double; the lane stores float bits.
        float FV = static_cast<float>(std::bit_cast<double>(C));
        C = std::bit_cast<uint32_t>(FV);
      }
      C &= FieldMask;
      uint64_t Cleared = A & ~(FieldMask << (8 * Off));
      setReg(I.Dst, Cleared | (C << (8 * Off)));
      break;
    }
    case Opcode::Br:
      ++R.Branches;
      BB = evalCond(I.CC, A, B) ? I.TrueTarget : I.FalseTarget;
      Idx = 0;
      return true;
    case Opcode::Jmp:
      ++R.Branches;
      BB = I.TrueTarget;
      Idx = 0;
      return true;
    case Opcode::Ret:
      R.ReturnValue = static_cast<int64_t>(A);
      Done = true;
      return true;
    }
    ++Idx;
    return true;
  }

  bool memOp(const Instruction &I) {
    uint64_t Addr = Regs[I.Addr.Base.Id] + static_cast<uint64_t>(I.Addr.Disp);
    unsigned NumBytes = widthBytes(I.W);

    if (I.Op == Opcode::LoadWideU) {
      // Loads the aligned block containing Addr; never traps on alignment.
      Addr &= ~static_cast<uint64_t>(NumBytes - 1);
    } else if (TM.requiresNaturalAlignment() &&
               !isAligned(Addr, NumBytes)) {
      fail(RunResult::Status::UnalignedTrap,
           strformat("address 0x%llx not %u-aligned in: ",
                     static_cast<unsigned long long>(Addr), NumBytes) +
               printInstruction(I));
      return false;
    }

    // Bounds violations are a trap in the run metrics, never an abort:
    // the non-aborting Memory accessors are the only ones the interpreter
    // uses, so a wild kernel address cannot take the process down.
    auto FailOOB = [&] {
      fail(RunResult::Status::OutOfBounds,
           strformat("address 0x%llx in: ",
                     static_cast<unsigned long long>(Addr)) +
               printInstruction(I));
      return false;
    };

    if (I.Op == Opcode::Store) {
      uint64_t V = eval(I.A);
      if (I.IsFloat && I.W == MemWidth::W4) {
        float FV = static_cast<float>(std::bit_cast<double>(V));
        V = std::bit_cast<uint32_t>(FV);
      }
      if (!Mem.tryWrite(Addr, NumBytes, V))
        return FailOOB();
      MemPenalty = Cache.access(Addr, NumBytes, /*IsStore=*/true);
      ++R.Stores;
      R.StoreBytes += NumBytes;
      return true;
    }

    uint64_t Raw = 0;
    if (!Mem.tryRead(Addr, NumBytes, Raw))
      return FailOOB();
    MemPenalty = Cache.access(Addr, NumBytes, /*IsStore=*/false);
    ++R.Loads;
    R.LoadBytes += NumBytes;
    if (I.Op == Opcode::Load && I.IsFloat) {
      double D = I.W == MemWidth::W4
                     ? static_cast<double>(
                           std::bit_cast<float>(static_cast<uint32_t>(Raw)))
                     : std::bit_cast<double>(Raw);
      setRegF(I.Dst, D);
      return true;
    }
    uint64_t V = Raw;
    if (I.Op == Opcode::Load && I.SignExtend)
      V = static_cast<uint64_t>(signExtend64(Raw, widthBits(I.W)));
    setReg(I.Dst, V);
    return true;
  }
};

/// The predecoded fast path: an index-driven dispatch over DecodedOp PODs.
/// Every observable effect — architectural state, every metric, every trap
/// message — must match class Machine exactly; tests/sim/predecode_test.cpp
/// enforces this differentially.
class FastMachine {
public:
  FastMachine(const TargetMachine &TM, Memory &Mem, const DecodedFunction &DF,
              const std::vector<int64_t> &Args, uint64_t MaxSteps,
              DataCache &Cache, DataCache &ICache,
              std::vector<uint64_t> &Vals, std::vector<uint64_t> &RegReady,
              bool ModelPressure)
      : TM(TM), Mem(Mem), DF(DF), MaxSteps(MaxSteps), Cache(Cache),
        ICache(ICache), Vals(Vals), RegReady(RegReady) {
    Cache.reset();
    ICache.reset();
    Vals.assign(DF.poolSize(), 0);
    std::copy(DF.ConstPool.begin(), DF.ConstPool.end(),
              Vals.begin() + DF.NumRegs);
    const Function &F = *DF.source();
    size_t N = std::min(Args.size(), F.params().size());
    for (size_t I = 0; I < N; ++I)
      Vals[F.params()[I].Id] = static_cast<uint64_t>(Args[I]);
    RegReady.assign(DF.poolSize(), 0);
    if (ModelPressure) {
      // Mirror of class Machine's per-block SpillCharge, indexed by the
      // block-head op every branch lands on (DF.BlockStart is in the same
      // layout order as the source blocks).
      EntryCharge.assign(DF.Ops.size(), 0);
      size_t BI = 0;
      for (const auto &BB : F.blocks())
        EntryCharge[DF.BlockStart[BI++]] = blockSpillCycles(*BB, TM);
    }
  }

  RunResult run() {
    if (DF.Ops.empty())
      return fail0(RunResult::Status::MalformedIR, "function has no blocks");

    const DecodedOp *Ops = DF.Ops.data();
    const unsigned EncBytes = TM.encodingBytes();
    uint64_t Clock = 0;
    uint32_t Idx = DF.EntryIdx;
    Clock += entryCharge(Idx);

    while (true) {
      const DecodedOp &D = Ops[Idx];
      if (R.Instructions >= MaxSteps)
        return fail(RunResult::Status::StepLimit, "step limit exceeded",
                    Clock);
      ++R.Instructions;

      unsigned FetchStall =
          ICache.access(D.CodeAddr, EncBytes, /*IsStore=*/false);

      // Scoreboard: constant-pool slots (and slot 0, the invalid register)
      // are never written, so their ready time stays 0 and the max can be
      // taken unconditionally over all four source slots.
      uint64_t Issue = Clock + 1 + FetchStall;
      Issue = std::max(Issue, RegReady[D.A]);
      Issue = std::max(Issue, RegReady[D.B]);
      Issue = std::max(Issue, RegReady[D.C]);
      Issue = std::max(Issue, RegReady[D.Base]);

      uint64_t MemPenalty = 0;
      const uint64_t A = Vals[D.A], B = Vals[D.B];

      switch (D.Op) {
      case Opcode::Mov:
        Vals[D.Dst] = A;
        break;
      case Opcode::Add:
        Vals[D.Dst] = A + B;
        break;
      case Opcode::Sub:
        Vals[D.Dst] = A - B;
        break;
      case Opcode::Mul:
        Vals[D.Dst] = A * B;
        break;
      case Opcode::DivS:
      case Opcode::RemS: {
        int64_t SB = static_cast<int64_t>(B);
        if (SB == 0)
          return fail(RunResult::Status::DivideByZero,
                      printInstruction(DF.sourceInst(Idx)), Clock);
        int64_t SA = static_cast<int64_t>(A);
        Vals[D.Dst] = static_cast<uint64_t>(D.Op == Opcode::DivS ? SA / SB
                                                                 : SA % SB);
        break;
      }
      case Opcode::DivU:
      case Opcode::RemU:
        if (B == 0)
          return fail(RunResult::Status::DivideByZero,
                      printInstruction(DF.sourceInst(Idx)), Clock);
        Vals[D.Dst] = D.Op == Opcode::DivU ? A / B : A % B;
        break;
      case Opcode::And:
        Vals[D.Dst] = A & B;
        break;
      case Opcode::Or:
        Vals[D.Dst] = A | B;
        break;
      case Opcode::Xor:
        Vals[D.Dst] = A ^ B;
        break;
      case Opcode::Shl:
        Vals[D.Dst] = A << (B & 63);
        break;
      case Opcode::ShrA:
        Vals[D.Dst] =
            static_cast<uint64_t>(static_cast<int64_t>(A) >> (B & 63));
        break;
      case Opcode::ShrL:
        Vals[D.Dst] = A >> (B & 63);
        break;
      case Opcode::CmpSet:
        Vals[D.Dst] = evalCond(D.CC, A, B) ? 1 : 0;
        break;
      case Opcode::Select:
        Vals[D.Dst] = A != 0 ? B : Vals[D.C];
        break;
      case Opcode::Ext:
        Vals[D.Dst] = D.SignExtend
                          ? static_cast<uint64_t>(signExtend64(A, D.WBits))
                          : zeroExtend64(A, D.WBits);
        break;
      case Opcode::FAdd:
        setF(D.Dst, valF(D.A) + valF(D.B));
        break;
      case Opcode::FSub:
        setF(D.Dst, valF(D.A) - valF(D.B));
        break;
      case Opcode::FMul:
        setF(D.Dst, valF(D.A) * valF(D.B));
        break;
      case Opcode::FDiv:
        setF(D.Dst, valF(D.A) / valF(D.B));
        break;
      case Opcode::CvtIF:
        setF(D.Dst, static_cast<double>(static_cast<int64_t>(A)));
        break;
      case Opcode::CvtFI:
        Vals[D.Dst] = static_cast<uint64_t>(
            static_cast<int64_t>(std::trunc(valF(D.A))));
        break;
      case Opcode::Load:
      case Opcode::LoadWideU:
      case Opcode::Store: {
        uint64_t Addr = Vals[D.Base] + static_cast<uint64_t>(D.Disp);
        const unsigned NumBytes = D.WBytes;
        if (D.Op == Opcode::LoadWideU) {
          // Loads the aligned block containing Addr; never traps.
          Addr &= ~static_cast<uint64_t>(NumBytes - 1);
        } else if (D.CheckAlign && !isAligned(Addr, NumBytes)) {
          return fail(RunResult::Status::UnalignedTrap,
                      strformat("address 0x%llx not %u-aligned in: ",
                                static_cast<unsigned long long>(Addr),
                                NumBytes) +
                          printInstruction(DF.sourceInst(Idx)),
                      Clock);
        }
        if (D.Op == Opcode::Store) {
          uint64_t V = A;
          if (D.IsFloat && D.W == MemWidth::W4) {
            float FV = static_cast<float>(std::bit_cast<double>(V));
            V = std::bit_cast<uint32_t>(FV);
          }
          if (!Mem.tryWrite(Addr, NumBytes, V))
            return failOOB(Addr, Idx, Clock);
          MemPenalty = Cache.access(Addr, NumBytes, /*IsStore=*/true);
          ++R.Stores;
          R.StoreBytes += NumBytes;
          break;
        }
        uint64_t Raw = 0;
        if (!Mem.tryRead(Addr, NumBytes, Raw))
          return failOOB(Addr, Idx, Clock);
        MemPenalty = Cache.access(Addr, NumBytes, /*IsStore=*/false);
        ++R.Loads;
        R.LoadBytes += NumBytes;
        if (D.Op == Opcode::Load && D.IsFloat) {
          double FD =
              D.W == MemWidth::W4
                  ? static_cast<double>(
                        std::bit_cast<float>(static_cast<uint32_t>(Raw)))
                  : std::bit_cast<double>(Raw);
          setF(D.Dst, FD);
          break;
        }
        uint64_t V = Raw;
        if (D.Op == Opcode::Load && D.SignExtend)
          V = static_cast<uint64_t>(signExtend64(Raw, D.WBits));
        Vals[D.Dst] = V;
        break;
      }
      case Opcode::ExtQHi: {
        unsigned Off = static_cast<unsigned>(B & 7);
        Vals[D.Dst] = Off == 0 ? 0 : A << (8 * (8 - Off));
        break;
      }
      case Opcode::ExtractF: {
        unsigned Off = static_cast<unsigned>(B & 7);
        if (D.W != MemWidth::W8 && Off + D.WBytes > 8)
          return fail(RunResult::Status::MalformedIR,
                      "extractf field exceeds the register: " +
                          printInstruction(DF.sourceInst(Idx)),
                      Clock);
        uint64_t Field = A >> (8 * Off);
        if (D.IsFloat && D.W == MemWidth::W4) {
          // Lane holds float bits; registers hold doubles.
          float FV = std::bit_cast<float>(
              static_cast<uint32_t>(zeroExtend64(Field, 32)));
          setF(D.Dst, static_cast<double>(FV));
          break;
        }
        Vals[D.Dst] =
            D.SignExtend
                ? static_cast<uint64_t>(signExtend64(Field, D.WBits))
                : zeroExtend64(Field, D.WBits);
        break;
      }
      case Opcode::InsertF: {
        unsigned Off = static_cast<unsigned>(B & 7);
        if (Off + D.WBytes > 8)
          return fail(RunResult::Status::MalformedIR,
                      "insertf field exceeds the register: " +
                          printInstruction(DF.sourceInst(Idx)),
                      Clock);
        unsigned Bits = D.WBits;
        uint64_t FieldMask =
            Bits >= 64 ? ~uint64_t(0) : ((uint64_t(1) << Bits) - 1);
        uint64_t C = Vals[D.C];
        if (D.IsFloat && D.W == MemWidth::W4) {
          // Value register holds a double; the lane stores float bits.
          float FV = static_cast<float>(std::bit_cast<double>(C));
          C = std::bit_cast<uint32_t>(FV);
        }
        C &= FieldMask;
        uint64_t Cleared = A & ~(FieldMask << (8 * Off));
        Vals[D.Dst] = Cleared | (C << (8 * Off));
        break;
      }
      case Opcode::Br:
        ++R.Branches;
        Clock = Issue + std::max<uint64_t>(D.Occ, D.Lat) - 1;
        Idx = evalCond(D.CC, A, B) ? D.TrueIdx : D.FalseIdx;
        Clock += entryCharge(Idx);
        continue;
      case Opcode::Jmp:
        ++R.Branches;
        Clock = Issue + std::max<uint64_t>(D.Occ, D.Lat) - 1;
        Idx = D.TrueIdx;
        Clock += entryCharge(Idx);
        continue;
      case Opcode::Ret:
        R.ReturnValue = static_cast<int64_t>(A);
        R.Cycles = Issue + std::max<uint64_t>(D.Occ, D.Lat) - 1;
        R.Cache = Cache.stats();
        R.ICache = ICache.stats();
        return R;
      }

      // Straight-line bookkeeping (control flow handled its own above).
      if (D.Dst != 0)
        RegReady[D.Dst] = Issue + D.Lat + MemPenalty;
      if (D.Op == Opcode::Store)
        Clock = Issue + D.Occ - 1 + MemPenalty; // write misses stall
      else
        Clock = Issue + D.Occ - 1;
      ++Idx;
    }
  }

private:
  const TargetMachine &TM;
  Memory &Mem;
  const DecodedFunction &DF;
  uint64_t MaxSteps;
  DataCache &Cache;
  DataCache &ICache;
  std::vector<uint64_t> &Vals;
  std::vector<uint64_t> &RegReady;
  /// Per-block-head spill charge under ModelRegPressure (empty when off).
  std::vector<uint64_t> EntryCharge;
  RunResult R;

  uint64_t entryCharge(uint32_t Idx) const {
    return EntryCharge.empty() ? 0 : EntryCharge[Idx];
  }

  double valF(uint32_t Slot) const {
    return std::bit_cast<double>(Vals[Slot]);
  }
  void setF(uint32_t Dst, double V) {
    Vals[Dst] = std::bit_cast<uint64_t>(V);
  }

  RunResult fail(RunResult::Status S, std::string Msg, uint64_t Clock) {
    R.Exit = S;
    R.Error = std::move(Msg);
    R.Cycles = Clock;
    R.Cache = Cache.stats();
    R.ICache = ICache.stats();
    return R;
  }

  /// fail() before any instruction ran (stats are all-zero by reset()).
  RunResult fail0(RunResult::Status S, std::string Msg) {
    return fail(S, std::move(Msg), 0);
  }

  RunResult failOOB(uint64_t Addr, uint32_t Idx, uint64_t Clock) {
    return fail(RunResult::Status::OutOfBounds,
                strformat("address 0x%llx in: ",
                          static_cast<unsigned long long>(Addr)) +
                    printInstruction(DF.sourceInst(Idx)),
                Clock);
  }
};

/// The functional tiered engine: exact architectural execution with no
/// cycle model. Blocks are interpreted until their entry counter crosses
/// the promotion threshold, then compiled (jit/JIT.h) and entered
/// natively; native code falls back here at side exits (cold branch
/// targets, budget guards) and terminal traps. The interpreted tier below
/// is FastMachine's execute loop with the clock, scoreboard and cache
/// models deleted — keep the two switch bodies in lockstep, the
/// differential suites compare all three engines op-for-op.
class FuncMachine {
public:
  FuncMachine(Memory &Mem, const DecodedFunction &DF,
              const std::vector<int64_t> &Args, uint64_t MaxSteps,
              std::vector<uint64_t> &Vals, jit::JITProgram *JP,
              uint64_t HotThreshold)
      : Mem(Mem), DF(DF), MaxSteps(MaxSteps), Vals(Vals), JP(JP),
        HotThreshold(HotThreshold) {
    Vals.assign(DF.poolSize(), 0);
    std::copy(DF.ConstPool.begin(), DF.ConstPool.end(),
              Vals.begin() + DF.NumRegs);
    const Function &F = *DF.source();
    size_t N = std::min(Args.size(), F.params().size());
    for (size_t I = 0; I < N; ++I)
      Vals[F.params()[I].Id] = static_cast<uint64_t>(Args[I]);
  }

  // Per-run tier telemetry, read by the driver after run().
  uint64_t Promotions = 0;
  uint64_t NativeEntries = 0;
  uint64_t DeoptBudget = 0;
  uint64_t DeoptCold = 0;
  /// Hardware faults contained during this run (quarantined blocks); the
  /// driver turns each into a structured jit-native-fault remark.
  std::vector<jit::NativeFaultRecord> Faults;

  RunResult run() {
    if (DF.Ops.empty())
      return fail(RunResult::Status::MalformedIR, "function has no blocks");

    const DecodedOp *Ops = DF.Ops.data();
    uint32_t Idx = DF.EntryIdx;
    bool AtBlockHead = true;
    // After a budget deopt the interpreter must replay the resumed block
    // per-op (to fault at the exact reference instruction) instead of
    // re-entering native code and deopting forever.
    uint32_t SkipNativeBlock = UINT32_MAX;

    while (true) {
      if (AtBlockHead && JP) {
        uint32_t B = Ops[Idx].BlockIdx;
        if (B == SkipNativeBlock) {
          SkipNativeBlock = UINT32_MAX; // replay interpreted, once
        } else {
          bool Enter = JP->compiled(B);
          if (!Enter && !JP->compileFailed(B) &&
              JP->bumpHot(B) >= HotThreshold) {
            ++Promotions;
            Enter = JP->compileBlock(B);
          }
          if (Enter) {
            jit::ExecState S;
            S.Vals = Vals.data();
            S.MemData = Mem.data();
            S.MemSize = Mem.size();
            S.StepsRemaining = MaxSteps - R.Instructions;
            S.Loads = R.Loads;
            S.Stores = R.Stores;
            S.LoadBytes = R.LoadBytes;
            S.StoreBytes = R.StoreBytes;
            S.Branches = R.Branches;
            jit::ExitKind EK = JP->run(B, S);
            ++NativeEntries;
            R.Instructions = MaxSteps - S.StepsRemaining;
            R.Loads = S.Loads;
            R.Stores = S.Stores;
            R.LoadBytes = S.LoadBytes;
            R.StoreBytes = S.StoreBytes;
            R.Branches = S.Branches;
            if (EK == jit::ExitKind::Ret) {
              R.ReturnValue = static_cast<int64_t>(S.ReturnValue);
              return R;
            }
            if (EK == jit::ExitKind::Trap)
              return trapResult(S);
            if (EK == jit::ExitKind::NativeFault) {
              // A hardware fault escaped the emitted code. run() already
              // quarantined the faulting block (permanent deopt) and — for
              // an attributed fault — compensated S so the counters above
              // read "everything before the faulting op committed". The
              // interpreter resumes at that exact op, so the run still
              // produces the reference result. Unattributed faults (stub
              // or wild pc) leave no recoverable state: hard error.
              const jit::NativeFaultRecord &FR = JP->lastFault();
              Faults.push_back(FR);
              if (JP->broken())
                JP = nullptr; // native execution denied; stay interpreted
              if (!FR.Attributed)
                return fail(
                    RunResult::Status::MalformedIR,
                    "native code fault could not be attributed to an "
                    "instruction; run aborted");
              Idx = FR.ResumeOp;
              SkipNativeBlock = UINT32_MAX;
              continue;
            }
            uint32_t RB = static_cast<uint32_t>(S.ResumeBlock);
            Idx = DF.BlockStart[RB];
            if (static_cast<jit::DeoptReason>(S.Deopt) ==
                jit::DeoptReason::Budget) {
              ++DeoptBudget;
              SkipNativeBlock = RB;
            } else {
              ++DeoptCold;
              SkipNativeBlock = UINT32_MAX;
            }
            if (JP->broken())
              JP = nullptr; // native execution denied; stay interpreted
            continue;
          }
        }
      }
      AtBlockHead = false;

      const DecodedOp &D = Ops[Idx];
      if (R.Instructions >= MaxSteps)
        return fail(RunResult::Status::StepLimit, "step limit exceeded");
      ++R.Instructions;

      const uint64_t A = Vals[D.A], B = Vals[D.B];

      switch (D.Op) {
      case Opcode::Mov:
        Vals[D.Dst] = A;
        break;
      case Opcode::Add:
        Vals[D.Dst] = A + B;
        break;
      case Opcode::Sub:
        Vals[D.Dst] = A - B;
        break;
      case Opcode::Mul:
        Vals[D.Dst] = A * B;
        break;
      case Opcode::DivS:
      case Opcode::RemS: {
        int64_t SB = static_cast<int64_t>(B);
        if (SB == 0)
          return fail(RunResult::Status::DivideByZero,
                      printInstruction(DF.sourceInst(Idx)));
        int64_t SA = static_cast<int64_t>(A);
        Vals[D.Dst] = static_cast<uint64_t>(D.Op == Opcode::DivS ? SA / SB
                                                                 : SA % SB);
        break;
      }
      case Opcode::DivU:
      case Opcode::RemU:
        if (B == 0)
          return fail(RunResult::Status::DivideByZero,
                      printInstruction(DF.sourceInst(Idx)));
        Vals[D.Dst] = D.Op == Opcode::DivU ? A / B : A % B;
        break;
      case Opcode::And:
        Vals[D.Dst] = A & B;
        break;
      case Opcode::Or:
        Vals[D.Dst] = A | B;
        break;
      case Opcode::Xor:
        Vals[D.Dst] = A ^ B;
        break;
      case Opcode::Shl:
        Vals[D.Dst] = A << (B & 63);
        break;
      case Opcode::ShrA:
        Vals[D.Dst] =
            static_cast<uint64_t>(static_cast<int64_t>(A) >> (B & 63));
        break;
      case Opcode::ShrL:
        Vals[D.Dst] = A >> (B & 63);
        break;
      case Opcode::CmpSet:
        Vals[D.Dst] = evalCond(D.CC, A, B) ? 1 : 0;
        break;
      case Opcode::Select:
        Vals[D.Dst] = A != 0 ? B : Vals[D.C];
        break;
      case Opcode::Ext:
        Vals[D.Dst] = D.SignExtend
                          ? static_cast<uint64_t>(signExtend64(A, D.WBits))
                          : zeroExtend64(A, D.WBits);
        break;
      case Opcode::FAdd:
        setF(D.Dst, valF(D.A) + valF(D.B));
        break;
      case Opcode::FSub:
        setF(D.Dst, valF(D.A) - valF(D.B));
        break;
      case Opcode::FMul:
        setF(D.Dst, valF(D.A) * valF(D.B));
        break;
      case Opcode::FDiv:
        setF(D.Dst, valF(D.A) / valF(D.B));
        break;
      case Opcode::CvtIF:
        setF(D.Dst, static_cast<double>(static_cast<int64_t>(A)));
        break;
      case Opcode::CvtFI:
        Vals[D.Dst] = static_cast<uint64_t>(
            static_cast<int64_t>(std::trunc(valF(D.A))));
        break;
      case Opcode::Load:
      case Opcode::LoadWideU:
      case Opcode::Store: {
        uint64_t Addr = Vals[D.Base] + static_cast<uint64_t>(D.Disp);
        const unsigned NumBytes = D.WBytes;
        if (D.Op == Opcode::LoadWideU) {
          Addr &= ~static_cast<uint64_t>(NumBytes - 1);
        } else if (D.CheckAlign && !isAligned(Addr, NumBytes)) {
          return fail(RunResult::Status::UnalignedTrap,
                      strformat("address 0x%llx not %u-aligned in: ",
                                static_cast<unsigned long long>(Addr),
                                NumBytes) +
                          printInstruction(DF.sourceInst(Idx)));
        }
        if (D.Op == Opcode::Store) {
          uint64_t V = A;
          if (D.IsFloat && D.W == MemWidth::W4) {
            float FV = static_cast<float>(std::bit_cast<double>(V));
            V = std::bit_cast<uint32_t>(FV);
          }
          if (!Mem.tryWrite(Addr, NumBytes, V))
            return failOOB(Addr, Idx);
          ++R.Stores;
          R.StoreBytes += NumBytes;
          break;
        }
        uint64_t Raw = 0;
        if (!Mem.tryRead(Addr, NumBytes, Raw))
          return failOOB(Addr, Idx);
        ++R.Loads;
        R.LoadBytes += NumBytes;
        if (D.Op == Opcode::Load && D.IsFloat) {
          double FD =
              D.W == MemWidth::W4
                  ? static_cast<double>(
                        std::bit_cast<float>(static_cast<uint32_t>(Raw)))
                  : std::bit_cast<double>(Raw);
          setF(D.Dst, FD);
          break;
        }
        uint64_t V = Raw;
        if (D.Op == Opcode::Load && D.SignExtend)
          V = static_cast<uint64_t>(signExtend64(Raw, D.WBits));
        Vals[D.Dst] = V;
        break;
      }
      case Opcode::ExtQHi: {
        unsigned Off = static_cast<unsigned>(B & 7);
        Vals[D.Dst] = Off == 0 ? 0 : A << (8 * (8 - Off));
        break;
      }
      case Opcode::ExtractF: {
        unsigned Off = static_cast<unsigned>(B & 7);
        if (D.W != MemWidth::W8 && Off + D.WBytes > 8)
          return fail(RunResult::Status::MalformedIR,
                      "extractf field exceeds the register: " +
                          printInstruction(DF.sourceInst(Idx)));
        uint64_t Field = A >> (8 * Off);
        if (D.IsFloat && D.W == MemWidth::W4) {
          float FV = std::bit_cast<float>(
              static_cast<uint32_t>(zeroExtend64(Field, 32)));
          setF(D.Dst, static_cast<double>(FV));
          break;
        }
        Vals[D.Dst] =
            D.SignExtend
                ? static_cast<uint64_t>(signExtend64(Field, D.WBits))
                : zeroExtend64(Field, D.WBits);
        break;
      }
      case Opcode::InsertF: {
        unsigned Off = static_cast<unsigned>(B & 7);
        if (Off + D.WBytes > 8)
          return fail(RunResult::Status::MalformedIR,
                      "insertf field exceeds the register: " +
                          printInstruction(DF.sourceInst(Idx)));
        unsigned Bits = D.WBits;
        uint64_t FieldMask =
            Bits >= 64 ? ~uint64_t(0) : ((uint64_t(1) << Bits) - 1);
        uint64_t C = Vals[D.C];
        if (D.IsFloat && D.W == MemWidth::W4) {
          float FV = static_cast<float>(std::bit_cast<double>(C));
          C = std::bit_cast<uint32_t>(FV);
        }
        C &= FieldMask;
        uint64_t Cleared = A & ~(FieldMask << (8 * Off));
        Vals[D.Dst] = Cleared | (C << (8 * Off));
        break;
      }
      case Opcode::Br:
        ++R.Branches;
        Idx = evalCond(D.CC, A, B) ? D.TrueIdx : D.FalseIdx;
        AtBlockHead = true;
        continue;
      case Opcode::Jmp:
        ++R.Branches;
        Idx = D.TrueIdx;
        AtBlockHead = true;
        continue;
      case Opcode::Ret:
        R.ReturnValue = static_cast<int64_t>(A);
        return R;
      }
      ++Idx;
    }
  }

private:
  Memory &Mem;
  const DecodedFunction &DF;
  uint64_t MaxSteps;
  std::vector<uint64_t> &Vals;
  jit::JITProgram *JP;
  uint64_t HotThreshold;
  RunResult R;

  double valF(uint32_t Slot) const {
    return std::bit_cast<double>(Vals[Slot]);
  }
  void setF(uint32_t Dst, double V) {
    Vals[Dst] = std::bit_cast<uint64_t>(V);
  }

  RunResult fail(RunResult::Status S, std::string Msg) {
    R.Exit = S;
    R.Error = std::move(Msg);
    return R;
  }

  RunResult failOOB(uint64_t Addr, uint32_t Idx) {
    return fail(RunResult::Status::OutOfBounds,
                strformat("address 0x%llx in: ",
                          static_cast<unsigned long long>(Addr)) +
                    printInstruction(DF.sourceInst(Idx)));
  }

  /// Rebuilds the reference engines' exact diagnostic from a native trap
  /// record (kind, faulting op, faulting address).
  RunResult trapResult(const jit::ExecState &S) {
    const size_t OpIdx = static_cast<size_t>(S.TrapOp);
    const DecodedOp &D = DF.Ops[OpIdx];
    const std::string Inst = printInstruction(DF.sourceInst(OpIdx));
    switch (static_cast<jit::TrapKind>(S.Trap)) {
    case jit::TrapKind::OutOfBounds:
      return fail(RunResult::Status::OutOfBounds,
                  strformat("address 0x%llx in: ",
                            static_cast<unsigned long long>(S.TrapAddr)) +
                      Inst);
    case jit::TrapKind::Unaligned:
      return fail(RunResult::Status::UnalignedTrap,
                  strformat("address 0x%llx not %u-aligned in: ",
                            static_cast<unsigned long long>(S.TrapAddr),
                            static_cast<unsigned>(D.WBytes)) +
                      Inst);
    case jit::TrapKind::DivideByZero:
      return fail(RunResult::Status::DivideByZero, Inst);
    case jit::TrapKind::ExtractField:
      return fail(RunResult::Status::MalformedIR,
                  "extractf field exceeds the register: " + Inst);
    case jit::TrapKind::InsertField:
      return fail(RunResult::Status::MalformedIR,
                  "insertf field exceeds the register: " + Inst);
    }
    return fail(RunResult::Status::MalformedIR, "unknown native trap");
  }
};

/// Resolves the native program for \p DF (creating it on first use) or
/// names the reason there is none. \p InitLock guards slot creation for
/// shared CachedProgram entries; the Interpreter-local memo passes null.
jit::JITProgram *resolveNative(const InterpreterOptions &Opts, Memory &Mem,
                               const DecodedFunction &DF,
                               std::shared_ptr<void> &Slot, bool &Tried,
                               std::mutex *InitLock, const char *&Reason) {
  if (!Opts.JITNative) {
    Reason = "native-off";
    return nullptr;
  }
  const jit::Availability &Av = jit::nativeAvailability();
  if (!Av.Ok) {
    Reason = Av.Reason;
    return nullptr;
  }
  // The compiled bounds check computes MemSize - WBytes unsigned; gate
  // arenas too small for that to be meaningful (allocations start at
  // 4096, so such arenas cannot hold a single addressable byte anyway).
  if (Mem.size() < 4096 + 8) {
    Reason = "arena-too-small";
    return nullptr;
  }
  {
    std::unique_lock<std::mutex> Lock;
    if (InitLock)
      Lock = std::unique_lock<std::mutex>(*InitLock);
    if (!Tried) {
      Slot = jit::JITProgram::create(DF, Opts.JITMaxCodeBytes,
                                     Opts.JITPlantWildStore);
      Tried = true;
    }
  }
  auto *JP = static_cast<jit::JITProgram *>(Slot.get());
  if (!JP)
    Reason = "create-failed";
  return JP;
}

} // namespace

Interpreter::Interpreter(const TargetMachine &TM, Memory &Mem,
                         InterpreterOptions Opts)
    : TM(TM), Mem(Mem), Opts(Opts), DCache(TM.dataCache()),
      IFetch(makeICacheParams(TM)) {}

RunResult Interpreter::run(const Function &F,
                           const std::vector<int64_t> &Args,
                           uint64_t MaxSteps) {
  if (MaxSteps == 0)
    MaxSteps = Opts.MaxSteps;
  // Verify before executing: the scoreboard and register file index by
  // register id, so running unverified IR (e.g. a register beyond the
  // allocator bound) would be undefined behaviour, not a clean trap.
  // Malformed input is a user error and gets a recoverable MalformedIR
  // result instead. Both the verification verdict and the predecoded form
  // come from the identity-keyed program cache, so repeated runs of an
  // unmodified function pay for neither.
  std::shared_ptr<CachedProgram> P = getOrBuildProgram(F, TM);
  if (!P->VerifyOk) {
    RunResult R;
    R.Exit = RunResult::Status::MalformedIR;
    R.Error = "function failed verification before execution:" +
              P->VerifyProblems;
    return R;
  }
  // The functional engine needs the decoded form; EnableJIT takes
  // precedence over the reference-path escape hatch.
  if (!Opts.Predecode && !Opts.EnableJIT)
    return runReference(F, Args, MaxSteps);

  if (!P->DecodeOk) {
    // Lowering refuses exactly what the reference engine would trap on
    // (no blocks / out of index space); report it the same way.
    RunResult R;
    R.Exit = RunResult::Status::MalformedIR;
    R.Error = P->DecodeError;
    return R;
  }
  if (Opts.EnableJIT) {
    const char *Reason = nullptr;
    jit::JITProgram *JP = resolveNative(Opts, Mem, P->DF, P->JIT,
                                        P->JITInitTried, &P->JITInit, Reason);
    return runFunctional(P->DF, Args, MaxSteps, JP, Reason);
  }
  return runDecoded(P->DF, Args, MaxSteps);
}

RunResult Interpreter::run(const DecodedFunction &DF,
                           const std::vector<int64_t> &Args,
                           uint64_t MaxSteps) {
  if (MaxSteps == 0)
    MaxSteps = Opts.MaxSteps;
  if (!Opts.EnableJIT)
    return runDecoded(DF, Args, MaxSteps);
  // Caller-predecoded functions bypass the program cache; memoize their
  // native program per Interpreter, revalidated against the DF's address
  // and source identity so a re-predecode or mutation can never reuse
  // stale code.
  if (MemoDF != &DF || MemoUid != DF.SourceUid ||
      MemoVersion != DF.SourceVersion) {
    MemoDF = &DF;
    MemoUid = DF.SourceUid;
    MemoVersion = DF.SourceVersion;
    MemoJIT.reset();
    MemoJITTried = false;
  }
  const char *Reason = nullptr;
  jit::JITProgram *JP = resolveNative(Opts, Mem, DF, MemoJIT, MemoJITTried,
                                      /*InitLock=*/nullptr, Reason);
  return runFunctional(DF, Args, MaxSteps, JP, Reason);
}

RunResult Interpreter::runFunctional(const DecodedFunction &DF,
                                     const std::vector<int64_t> &Args,
                                     uint64_t MaxSteps, jit::JITProgram *JP,
                                     const char *DisabledReason) {
  if (JP) {
    if (JP->broken()) {
      JP = nullptr;
      DisabledReason = "native-broken";
    } else if (!JP->tryAcquire()) {
      // Another thread is running this program; its hotness counters and
      // code buffer are single-driver, so this run stays interpreted.
      JP = nullptr;
      DisabledReason = "contended";
    }
  }
  RemarkEmitter RE(Opts.Remarks, "jit",
                   DF.source() ? DF.source()->name() : std::string());
  if (!JP && RE.enabled())
    RE.emit(RE.start("jit-disabled")
                .arg("reason", DisabledReason ? DisabledReason : "unknown"));

  FuncMachine M(Mem, DF, Args, MaxSteps, Vals, JP, Opts.JITHotThreshold);
  RunResult R = M.run();

  if (JP || !M.Faults.empty()) {
    if (RE.enabled()) {
      for (const jit::NativeFaultRecord &FR : M.Faults)
        RE.emit(RE.start("jit-native-fault")
                    .arg("kind", FR.Sig == SIGSEGV   ? "segv"
                                 : FR.Sig == SIGBUS ? "bus"
                                                    : "fpe")
                    .arg("block", static_cast<uint64_t>(FR.Block))
                    .arg("pc-off", FR.PcOff)
                    .arg("resume-op", static_cast<uint64_t>(FR.ResumeOp))
                    .arg("attributed", FR.Attributed));
    }
  }
  if (JP) {
    if (RE.enabled()) {
      const jit::ProgramStats &St = JP->stats();
      RE.emit(RE.start("jit-summary")
                  .arg("blocks-compiled", St.BlocksCompiled)
                  .arg("bytes-emitted", St.BytesEmitted)
                  .arg("compile-failures", St.CompileFailures)
                  .arg("promotions", M.Promotions)
                  .arg("native-entries", M.NativeEntries)
                  .arg("deopt-budget", M.DeoptBudget)
                  .arg("deopt-cold", M.DeoptCold)
                  .arg("native-faults", St.NativeFaults)
                  .arg("blocks-quarantined", St.BlocksQuarantined));
    }
    JP->release();
  }
  return R;
}

RunResult Interpreter::runReference(const Function &F,
                                    const std::vector<int64_t> &Args,
                                    uint64_t MaxSteps) {
  return Machine(TM, Mem, F, Args, MaxSteps, DCache, IFetch, Vals, RegReady,
                 Opts.ModelRegPressure)
      .run();
}

RunResult Interpreter::runDecoded(const DecodedFunction &DF,
                                  const std::vector<int64_t> &Args,
                                  uint64_t MaxSteps) {
  return FastMachine(TM, Mem, DF, Args, MaxSteps, DCache, IFetch, Vals,
                     RegReady, Opts.ModelRegPressure)
      .run();
}
