//===- sim/Memory.h - Byte-addressable simulated memory ---------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Little-endian byte-addressable memory for the RTL interpreter. The
/// allocator supports explicit alignment *and* deliberate misalignment
/// ("skew"), because the paper's run-time alignment checks are only
/// meaningful if arrays can legitimately arrive unaligned.
///
//===----------------------------------------------------------------------===//

#ifndef VPO_SIM_MEMORY_H
#define VPO_SIM_MEMORY_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace vpo {

class Memory {
public:
  /// Creates a memory of \p Size bytes, zero-initialized. Address 0 up to
  /// the first allocation is kept unmapped-in-spirit (allocations start at
  /// 4096) so stray null-based accesses are distinguishable.
  explicit Memory(size_t Size = size_t(1) << 24);

  size_t size() const { return Bytes.size(); }

  /// Allocates \p Size bytes. The returned address is \p Align-aligned and
  /// then advanced by \p Skew bytes; use a nonzero skew to produce arrays
  /// that are, e.g., 2-aligned but deliberately not 8-aligned.
  uint64_t allocate(size_t Size, size_t Align = 8, size_t Skew = 0);

  /// \returns true if [Addr, Addr+Bytes) is inside the memory.
  bool inBounds(uint64_t Addr, unsigned NumBytes) const {
    return Addr >= 4096 && Addr + NumBytes <= Bytes.size() &&
           Addr + NumBytes >= Addr;
  }

  /// Little-endian read of \p NumBytes (1..8), zero-extended.
  uint64_t read(uint64_t Addr, unsigned NumBytes) const;

  /// Little-endian write of the low \p NumBytes of \p V.
  void write(uint64_t Addr, unsigned NumBytes, uint64_t V);

  uint8_t *data() { return Bytes.data(); }
  const uint8_t *data() const { return Bytes.data(); }

private:
  std::vector<uint8_t> Bytes;
  uint64_t NextAlloc = 4096;
};

} // namespace vpo

#endif // VPO_SIM_MEMORY_H
