//===- sim/Memory.h - Byte-addressable simulated memory ---------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Little-endian byte-addressable memory for the RTL interpreter. The
/// allocator supports explicit alignment *and* deliberate misalignment
/// ("skew"), because the paper's run-time alignment checks are only
/// meaningful if arrays can legitimately arrive unaligned.
///
//===----------------------------------------------------------------------===//

#ifndef VPO_SIM_MEMORY_H
#define VPO_SIM_MEMORY_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace vpo {

class Memory {
public:
  /// Creates a memory of \p Size bytes, zero-initialized. Address 0 up to
  /// the first allocation is kept unmapped-in-spirit (allocations start at
  /// 4096) so stray null-based accesses are distinguishable.
  explicit Memory(size_t Size = size_t(1) << 24);

  size_t size() const { return Bytes.size(); }

  /// One past the highest address the allocator has handed out (the
  /// high-water mark). Setup code writes only below this; everything above
  /// is still in its initial all-zero state, so verification can compare
  /// the live prefix and merely check the tail for stray writes instead of
  /// copying and memcmp'ing the whole arena.
  size_t usedBytes() const {
    return static_cast<size_t>(NextAlloc) < Bytes.size()
               ? static_cast<size_t>(NextAlloc)
               : Bytes.size();
  }

  /// Allocates \p Size bytes. The returned address is \p Align-aligned and
  /// then advanced by \p Skew bytes; use a nonzero skew to produce arrays
  /// that are, e.g., 2-aligned but deliberately not 8-aligned.
  ///
  /// Checked wrapper around tryAllocate: aborts on a bad alignment or
  /// exhaustion. Test/workload setup code calls this (a failure there is a
  /// harness bug); anything driven by simulated execution must use
  /// tryAllocate and surface the failure recoverably.
  uint64_t allocate(size_t Size, size_t Align = 8, size_t Skew = 0);

  /// Non-aborting allocate: \returns false (leaving \p AddrOut untouched)
  /// if \p Align is not a power of two or the arena is exhausted.
  bool tryAllocate(size_t Size, size_t Align, size_t Skew,
                   uint64_t &AddrOut);

  /// \returns true if [Addr, Addr+Bytes) is inside the memory.
  bool inBounds(uint64_t Addr, unsigned NumBytes) const {
    return Addr >= 4096 && Addr + NumBytes <= Bytes.size() &&
           Addr + NumBytes >= Addr;
  }

  /// Little-endian read of \p NumBytes (1..8), zero-extended. Checked
  /// wrapper around tryRead: aborts when out of bounds, so only for
  /// callers that have already validated the address (tests, workload
  /// setup). The interpreter uses tryRead and turns failures into
  /// RunResult::Status::OutOfBounds traps.
  uint64_t read(uint64_t Addr, unsigned NumBytes) const;

  /// Little-endian write of the low \p NumBytes of \p V. Checked wrapper
  /// around tryWrite (see read()).
  void write(uint64_t Addr, unsigned NumBytes, uint64_t V);

  /// Non-aborting read: \returns false (leaving \p Out untouched) when
  /// [Addr, Addr+NumBytes) is out of bounds.
  bool tryRead(uint64_t Addr, unsigned NumBytes, uint64_t &Out) const;

  /// Non-aborting write: \returns false, writing nothing, when out of
  /// bounds.
  bool tryWrite(uint64_t Addr, unsigned NumBytes, uint64_t V);

  uint8_t *data() { return Bytes.data(); }
  const uint8_t *data() const { return Bytes.data(); }

private:
  std::vector<uint8_t> Bytes;
  uint64_t NextAlloc = 4096;
};

} // namespace vpo

#endif // VPO_SIM_MEMORY_H
