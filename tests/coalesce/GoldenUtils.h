//===- tests/coalesce/GoldenUtils.h - golden-file comparison -----*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Byte-for-byte golden-file comparison for the telemetry suites. Golden
/// data lives under tests/coalesce/golden/ (the VPO_GOLDEN_DIR compile
/// definition); setting the VPO_UPDATE_GOLDEN environment variable makes
/// every comparison rewrite its file instead of diffing, so one command
/// regenerates the whole set:
///
///   VPO_UPDATE_GOLDEN=1 ctest --test-dir build -L telemetry
///
//===----------------------------------------------------------------------===//

#ifndef VPO_TESTS_COALESCE_GOLDENUTILS_H
#define VPO_TESTS_COALESCE_GOLDENUTILS_H

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace vpo {
namespace test {

inline std::string goldenPath(const std::string &Name) {
  return std::string(VPO_GOLDEN_DIR) + "/" + Name;
}

inline bool updatingGolden() {
  return std::getenv("VPO_UPDATE_GOLDEN") != nullptr;
}

/// Diffs \p Text against the checked-in golden file \p Name byte-for-byte
/// (or rewrites the file under VPO_UPDATE_GOLDEN).
inline void checkGolden(const std::string &Name, const std::string &Text) {
  const std::string Path = goldenPath(Name);
  if (updatingGolden()) {
    std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(Out.good()) << "cannot write golden file " << Path;
    Out << Text;
    ASSERT_TRUE(Out.good()) << "short write to " << Path;
    return;
  }
  std::ifstream In(Path, std::ios::binary);
  ASSERT_TRUE(In.good())
      << "missing golden file " << Path
      << " — regenerate with: VPO_UPDATE_GOLDEN=1 ctest -L telemetry";
  std::ostringstream Buf;
  Buf << In.rdbuf();
  EXPECT_EQ(Buf.str(), Text)
      << "golden mismatch for " << Name << " — if the change is intended, "
      << "regenerate with: VPO_UPDATE_GOLDEN=1 ctest -L telemetry";
}

} // namespace test
} // namespace vpo

#endif // VPO_TESTS_COALESCE_GOLDENUTILS_H
