//===- tests/coalesce/runs_test.cpp - run detection + alignment -*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "analysis/CFG.h"
#include "analysis/Dominators.h"
#include "analysis/InductionVars.h"
#include "analysis/LoopInfo.h"
#include "analysis/MemoryPartitions.h"
#include "coalesce/Runs.h"
#include "ir/Function.h"
#include "ir/IRParser.h"
#include "target/TargetMachine.h"

#include <gtest/gtest.h>

using namespace vpo;

namespace {

/// Parses a single-loop function and computes the coalescing analyses.
struct RunsFixture {
  std::unique_ptr<Module> M;
  Function *F = nullptr;
  std::unique_ptr<CFG> G;
  std::unique_ptr<DominatorTree> DT;
  std::unique_ptr<LoopInfo> LI;
  Loop *L = nullptr;
  std::unique_ptr<LoopScalarInfo> LSI;
  std::unique_ptr<MemoryPartitions> MP;

  explicit RunsFixture(const std::string &Text) {
    std::string Err;
    M = parseModule(Text, &Err);
    EXPECT_NE(M, nullptr) << Err;
    F = M->functions().front().get();
    G = std::make_unique<CFG>(*F);
    DT = std::make_unique<DominatorTree>(*G);
    LI = std::make_unique<LoopInfo>(*G, *DT);
    EXPECT_FALSE(LI->loops().empty());
    L = LI->loops().front().get();
    LSI = std::make_unique<LoopScalarInfo>(*L, *F);
    MP = std::make_unique<MemoryPartitions>(*L, *LSI);
  }

  std::vector<CoalesceRun> find(const TargetMachine &TM, bool Loads = true,
                                bool Stores = true, unsigned MaxWide = 0) {
    return findCoalesceRuns(*MP, TM, Loads, Stores, MaxWide);
  }
};

/// A loop body with 4 consecutive shortword loads from r1 (an unrolled
/// dot-product-like stream) and 4 consecutive byte stores to r2.
const char *FourWide = "func @f(r1, r2, r3) {\n"
                       "entry:\n"
                       "  jmp body\n"
                       "body:\n"
                       "  r4 = load.i16.s [r1]\n"
                       "  r5 = load.i16.s [r1+2]\n"
                       "  r6 = load.i16.s [r1+4]\n"
                       "  r7 = load.i16.s [r1+6]\n"
                       "  store.i8 [r2], r4\n"
                       "  store.i8 [r2+1], r5\n"
                       "  store.i8 [r2+2], r6\n"
                       "  store.i8 [r2+3], r7\n"
                       "  r1 = add r1, 8\n"
                       "  r2 = add r2, 4\n"
                       "  br.ltu r1, r3, body, exit\n"
                       "exit:\n"
                       "  ret 0\n"
                       "}\n";

TEST(RunFinder, FindsLoadAndStoreRuns) {
  RunsFixture Fx(FourWide);
  TargetMachine TM = makeAlphaTarget();
  auto Runs = Fx.find(TM);
  ASSERT_EQ(Runs.size(), 2u);
  const CoalesceRun &LoadRun = Runs[0].IsLoad ? Runs[0] : Runs[1];
  const CoalesceRun &StoreRun = Runs[0].IsLoad ? Runs[1] : Runs[0];
  EXPECT_TRUE(LoadRun.IsLoad);
  EXPECT_EQ(LoadRun.NarrowW, MemWidth::W2);
  EXPECT_EQ(LoadRun.WideBytes, 8u);
  EXPECT_EQ(LoadRun.StartOff, 0);
  EXPECT_EQ(LoadRun.Members.size(), 4u);
  EXPECT_FALSE(StoreRun.IsLoad);
  EXPECT_EQ(StoreRun.WideBytes, 4u);
  EXPECT_EQ(StoreRun.Members.size(), 4u);
}

TEST(RunFinder, RespectsLoadsStoresFlags) {
  RunsFixture Fx(FourWide);
  TargetMachine TM = makeAlphaTarget();
  auto LoadsOnly = Fx.find(TM, true, false);
  ASSERT_EQ(LoadsOnly.size(), 1u);
  EXPECT_TRUE(LoadsOnly[0].IsLoad);
  auto StoresOnly = Fx.find(TM, false, true);
  ASSERT_EQ(StoresOnly.size(), 1u);
  EXPECT_FALSE(StoresOnly[0].IsLoad);
}

TEST(RunFinder, MaxWideCap) {
  RunsFixture Fx(FourWide);
  TargetMachine TM = makeAlphaTarget();
  auto Runs = Fx.find(TM, true, false, /*MaxWide=*/4);
  // 4 shorts split into two 2-short (4-byte) runs.
  ASSERT_EQ(Runs.size(), 2u);
  EXPECT_EQ(Runs[0].WideBytes, 4u);
  EXPECT_EQ(Runs[0].StartOff, 0);
  EXPECT_EQ(Runs[1].StartOff, 4);
}

TEST(RunFinder, TargetBusWidthCaps) {
  RunsFixture Fx(FourWide);
  TargetMachine TM = makeM68030Target(); // 4-byte bus
  auto Runs = Fx.find(TM, true, false);
  ASSERT_EQ(Runs.size(), 2u);
  EXPECT_EQ(Runs[0].WideBytes, 4u);
}

TEST(RunFinder, GapsBreakRuns) {
  RunsFixture Fx("func @f(r1, r2) {\n"
                 "entry:\n"
                 "  jmp body\n"
                 "body:\n"
                 "  r4 = load.i8.u [r1]\n"
                 "  r5 = load.i8.u [r1+1]\n"
                 "  r6 = load.i8.u [r1+3]\n" // gap at +2
                 "  r7 = load.i8.u [r1+4]\n"
                 "  r1 = add r1, 8\n"
                 "  br.ltu r1, r2, body, exit\n"
                 "exit:\n"
                 "  ret 0\n"
                 "}\n");
  TargetMachine TM = makeAlphaTarget();
  auto Runs = Fx.find(TM);
  ASSERT_EQ(Runs.size(), 2u);
  EXPECT_EQ(Runs[0].Members.size(), 2u);
  EXPECT_EQ(Runs[0].StartOff, 0);
  EXPECT_EQ(Runs[1].StartOff, 3);
}

TEST(RunFinder, MixedWidthsNeverMix) {
  RunsFixture Fx("func @f(r1, r2) {\n"
                 "entry:\n"
                 "  jmp body\n"
                 "body:\n"
                 "  r4 = load.i8.u [r1]\n"
                 "  r5 = load.i16.u [r1+2]\n"
                 "  r6 = load.i8.u [r1+1]\n"
                 "  r1 = add r1, 4\n"
                 "  br.ltu r1, r2, body, exit\n"
                 "exit:\n"
                 "  ret 0\n"
                 "}\n");
  TargetMachine TM = makeAlphaTarget();
  auto Runs = Fx.find(TM);
  // Bytes at 0,1 form a run; the lone short at 2 cannot join.
  ASSERT_EQ(Runs.size(), 1u);
  EXPECT_EQ(Runs[0].NarrowW, MemWidth::W1);
  EXPECT_EQ(Runs[0].Members.size(), 2u);
}

TEST(RunFinder, DuplicateOffsetsJoinOneRun) {
  RunsFixture Fx("func @f(r1, r2) {\n"
                 "entry:\n"
                 "  jmp body\n"
                 "body:\n"
                 "  r4 = load.i8.u [r1]\n"
                 "  r5 = load.i8.u [r1]\n" // same location again
                 "  r6 = load.i8.u [r1+1]\n"
                 "  r1 = add r1, 2\n"
                 "  br.ltu r1, r2, body, exit\n"
                 "exit:\n"
                 "  ret 0\n"
                 "}\n");
  TargetMachine TM = makeAlphaTarget();
  auto Runs = Fx.find(TM);
  ASSERT_EQ(Runs.size(), 1u);
  EXPECT_EQ(Runs[0].Members.size(), 3u);
  EXPECT_EQ(Runs[0].WideBytes, 2u);
}

TEST(RunFinder, SingleRefNoRun) {
  RunsFixture Fx("func @f(r1, r2) {\n"
                 "entry:\n"
                 "  jmp body\n"
                 "body:\n"
                 "  r4 = load.i8.u [r1]\n"
                 "  r1 = add r1, 1\n"
                 "  br.ltu r1, r2, body, exit\n"
                 "exit:\n"
                 "  ret 0\n"
                 "}\n");
  TargetMachine TM = makeAlphaTarget();
  EXPECT_TRUE(Fx.find(TM).empty());
}

TEST(RunFinder, F64NeverCoalesces) {
  RunsFixture Fx("func @f(r1, r2) {\n"
                 "entry:\n"
                 "  jmp body\n"
                 "body:\n"
                 "  r4 = load.f64 [r1]\n"
                 "  r5 = load.f64 [r1+8]\n"
                 "  r1 = add r1, 16\n"
                 "  br.ltu r1, r2, body, exit\n"
                 "exit:\n"
                 "  ret 0\n"
                 "}\n");
  TargetMachine TM = makeAlphaTarget();
  EXPECT_TRUE(Fx.find(TM).empty()) << "nothing wider than the bus exists";
}

TEST(RunFinder, F32PairsCoalesce) {
  RunsFixture Fx("func @f(r1, r2) {\n"
                 "entry:\n"
                 "  jmp body\n"
                 "body:\n"
                 "  r4 = load.f32 [r1]\n"
                 "  r5 = load.f32 [r1+4]\n"
                 "  r1 = add r1, 8\n"
                 "  br.ltu r1, r2, body, exit\n"
                 "exit:\n"
                 "  ret 0\n"
                 "}\n");
  TargetMachine TM = makeAlphaTarget();
  auto Runs = Fx.find(TM);
  ASSERT_EQ(Runs.size(), 1u);
  EXPECT_TRUE(Runs[0].IsFloat);
  EXPECT_EQ(Runs[0].WideBytes, 8u);
}

TEST(RunAlignment, ParamAlignmentProvesAligned) {
  RunsFixture Fx(FourWide);
  TargetMachine TM = makeAlphaTarget();
  auto Runs = Fx.find(TM);
  // Unknown parameter alignment: checks needed.
  analyzeRunAlignment(Runs, *Fx.MP, *Fx.F);
  for (const CoalesceRun &R : Runs)
    EXPECT_TRUE(R.NeedsAlignCheck);
  // Declare 8-byte alignment on both pointers: no checks needed.
  Fx.F->paramInfo(0).KnownAlign = 8;
  Fx.F->paramInfo(1).KnownAlign = 8;
  analyzeRunAlignment(Runs, *Fx.MP, *Fx.F);
  for (const CoalesceRun &R : Runs)
    EXPECT_FALSE(R.NeedsAlignCheck) << (R.IsLoad ? "load" : "store");
}

TEST(RunAlignment, OffsetMustBeMultipleOfWide) {
  RunsFixture Fx("func @f(r1, r2) {\n"
                 "entry:\n"
                 "  jmp body\n"
                 "body:\n"
                 "  r4 = load.i8.u [r1+1]\n"
                 "  r5 = load.i8.u [r1+2]\n"
                 "  r1 = add r1, 2\n"
                 "  br.ltu r1, r2, body, exit\n"
                 "exit:\n"
                 "  ret 0\n"
                 "}\n");
  TargetMachine TM = makeAlphaTarget();
  auto Runs = Fx.find(TM);
  ASSERT_EQ(Runs.size(), 1u);
  Fx.F->paramInfo(0).KnownAlign = 8;
  analyzeRunAlignment(Runs, *Fx.MP, *Fx.F);
  // Start offset 1 with wide 2: misaligned even with an aligned base.
  EXPECT_TRUE(Runs[0].NeedsAlignCheck);
}

TEST(RunAlignment, PhaseAlternatingStepNotCheckable) {
  // Step 2 with a 4-byte-wide run: alignment alternates per iteration.
  RunsFixture Fx("func @f(r1, r2) {\n"
                 "entry:\n"
                 "  jmp body\n"
                 "body:\n"
                 "  r4 = load.i16.u [r1]\n"
                 "  r5 = load.i16.u [r1+2]\n"
                 "  r1 = add r1, 2\n"
                 "  br.ltu r1, r2, body, exit\n"
                 "exit:\n"
                 "  ret 0\n"
                 "}\n");
  TargetMachine TM = makeAlphaTarget();
  auto Runs = Fx.find(TM);
  ASSERT_EQ(Runs.size(), 1u);
  Fx.F->paramInfo(0).KnownAlign = 8;
  analyzeRunAlignment(Runs, *Fx.MP, *Fx.F);
  EXPECT_TRUE(Runs[0].NeedsAlignCheck);
  EXPECT_FALSE(Runs[0].CheckableAlignment);
}

} // namespace
