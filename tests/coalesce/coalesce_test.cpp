//===- tests/coalesce/coalesce_test.cpp - end-to-end pass tests -*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "coalesce/Coalesce.h"
#include "ir/Function.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "sim/Interpreter.h"
#include "target/Legalize.h"
#include "target/TargetMachine.h"

#include <gtest/gtest.h>

using namespace vpo;

namespace {

/// A pre-unrolled byte-copy loop (dst = r2, src = r1, limit = r3).
/// Bases advance by 4 each iteration; the pass should coalesce without
/// further unrolling.
const char *CopyLoop4 = "func @copy(r1, r2, r3) {\n"
                        "entry:\n"
                        "  jmp body\n"
                        "body:\n"
                        "  r4 = load.i8.u [r1]\n"
                        "  r5 = load.i8.u [r1+1]\n"
                        "  r6 = load.i8.u [r1+2]\n"
                        "  r7 = load.i8.u [r1+3]\n"
                        "  store.i8 [r2], r4\n"
                        "  store.i8 [r2+1], r5\n"
                        "  store.i8 [r2+2], r6\n"
                        "  store.i8 [r2+3], r7\n"
                        "  r1 = add r1, 4\n"
                        "  r2 = add r2, 4\n"
                        "  br.ltu r1, r3, body, exit\n"
                        "exit:\n"
                        "  ret 0\n"
                        "}\n";

struct PassFixture {
  std::unique_ptr<Module> M;
  Function *F = nullptr;

  explicit PassFixture(const std::string &Text) {
    std::string Err;
    M = parseModule(Text, &Err);
    EXPECT_NE(M, nullptr) << Err;
    F = M->functions().front().get();
  }

  unsigned countOps(Opcode Op) const {
    unsigned N = 0;
    for (const auto &BB : F->blocks())
      for (const Instruction &I : BB->insts())
        N += I.Op == Op;
    return N;
  }

  BasicBlock *findBlockContaining(const std::string &Sub) const {
    for (const auto &BB : F->blocks())
      if (BB->name().find(Sub) != std::string::npos)
        return BB.get();
    return nullptr;
  }
};

TEST(Coalesce, StaticAlignedNoAliasRewritesInPlace) {
  PassFixture Fx(CopyLoop4);
  // Full static knowledge: restrict + aligned pointers.
  for (int P = 0; P < 2; ++P) {
    Fx.F->paramInfo(P).NoAlias = true;
    Fx.F->paramInfo(P).KnownAlign = 8;
  }
  CoalesceOptions Opts;
  Opts.Unroll = false;
  Opts.MaxWideBytes = 4;
  TargetMachine TM = makeAlphaTarget();
  CoalesceStats Stats = coalesceMemoryAccesses(*Fx.F, TM, Opts);
  EXPECT_EQ(Stats.LoopsTransformed, 1u);
  EXPECT_EQ(Stats.LoadRunsCoalesced, 1u);
  EXPECT_EQ(Stats.StoreRunsCoalesced, 1u);
  EXPECT_EQ(Stats.AlignmentChecks, 0u);
  EXPECT_EQ(Stats.OverlapChecks, 0u);
  EXPECT_EQ(Stats.NarrowLoadsRemoved, 4u);
  EXPECT_EQ(Stats.NarrowStoresRemoved, 4u);
  // No extra loop version: rewritten in place (3 blocks as before).
  EXPECT_EQ(Fx.F->blocks().size(), 3u);
  // The loop now has one wide load, 4 extracts, 4 inserts, one wide store.
  EXPECT_EQ(Fx.countOps(Opcode::ExtractF), 4u);
  EXPECT_EQ(Fx.countOps(Opcode::InsertF), 4u);
  EXPECT_EQ(Fx.countOps(Opcode::Load), 1u);
  EXPECT_EQ(Fx.countOps(Opcode::Store), 1u);
}

TEST(Coalesce, UnknownParamsEmitChecksAndTwoVersions) {
  PassFixture Fx(CopyLoop4);
  CoalesceOptions Opts;
  Opts.Unroll = false;
  Opts.MaxWideBytes = 4;
  TargetMachine TM = makeAlphaTarget();
  CoalesceStats Stats = coalesceMemoryAccesses(*Fx.F, TM, Opts);
  EXPECT_EQ(Stats.LoopsTransformed, 1u);
  EXPECT_GE(Stats.AlignmentChecks, 1u);
  // All loads precede all stores in this body, and the wide references
  // keep that order, so no overlap check is needed even for overlapping
  // arrays (the memmove-forward case stays correct).
  EXPECT_EQ(Stats.OverlapChecks, 0u);
  EXPECT_GT(Stats.CheckInstructions, 0u);
  EXPECT_LE(Stats.CheckInstructions, 30u);
  // The safe loop and the coalesced loop both exist.
  EXPECT_NE(Fx.findBlockContaining(".coalesced"), nullptr);
  EXPECT_NE(Fx.F->findBlock("body"), nullptr);
}

/// Interleaved element-by-element copy: stores sit between the load-run
/// members, so potential aliasing matters and the run-time overlap check
/// must appear (paper section 2.2's <a,b> pair checks).
const char *InterleavedCopy4 = "func @icopy(r1, r2, r3) {\n"
                               "entry:\n"
                               "  jmp body\n"
                               "body:\n"
                               "  r4 = load.i8.u [r1]\n"
                               "  store.i8 [r2], r4\n"
                               "  r5 = load.i8.u [r1+1]\n"
                               "  store.i8 [r2+1], r5\n"
                               "  r6 = load.i8.u [r1+2]\n"
                               "  store.i8 [r2+2], r6\n"
                               "  r7 = load.i8.u [r1+3]\n"
                               "  store.i8 [r2+3], r7\n"
                               "  r1 = add r1, 4\n"
                               "  r2 = add r2, 4\n"
                               "  br.ltu r1, r3, body, exit\n"
                               "exit:\n"
                               "  ret 0\n"
                               "}\n";

TEST(Coalesce, InterleavedCopyNeedsOverlapCheck) {
  PassFixture Fx(InterleavedCopy4);
  CoalesceOptions Opts;
  Opts.Unroll = false;
  Opts.MaxWideBytes = 4;
  TargetMachine TM = makeAlphaTarget();
  CoalesceStats Stats = coalesceMemoryAccesses(*Fx.F, TM, Opts);
  EXPECT_EQ(Stats.LoopsTransformed, 1u);
  EXPECT_EQ(Stats.OverlapChecks, 1u);
}

TEST(Coalesce, ChecksDisabledRejectsUncheckedStores) {
  PassFixture Fx(CopyLoop4);
  CoalesceOptions Opts;
  Opts.Unroll = false;
  Opts.MaxWideBytes = 4;
  Opts.UseRuntimeChecks = false;
  TargetMachine TM = makeAlphaTarget();
  CoalesceStats Stats = coalesceMemoryAccesses(*Fx.F, TM, Opts);
  // Stores cannot be proven aligned and have no unaligned fallback;
  // loads would still need an alias check against the stores.
  EXPECT_EQ(Stats.StoreRunsCoalesced, 0u);
  EXPECT_GE(Stats.RunsRejectedChecksDisabled, 1u);
}

TEST(Coalesce, ModeNoneOnlyUnrolls) {
  PassFixture Fx(CopyLoop4);
  CoalesceOptions Opts;
  Opts.Mode = CoalesceMode::None;
  Opts.Unroll = true;
  TargetMachine TM = makeAlphaTarget();
  CoalesceStats Stats = coalesceMemoryAccesses(*Fx.F, TM, Opts);
  EXPECT_EQ(Stats.LoopsUnrolled, 1u);
  EXPECT_EQ(Stats.LoopsTransformed, 0u);
  EXPECT_EQ(Fx.countOps(Opcode::ExtractF), 0u);
}

TEST(Coalesce, LoadsOnlyModeLeavesStores) {
  PassFixture Fx(CopyLoop4);
  for (int P = 0; P < 2; ++P) {
    Fx.F->paramInfo(P).NoAlias = true;
    Fx.F->paramInfo(P).KnownAlign = 8;
  }
  CoalesceOptions Opts;
  Opts.Mode = CoalesceMode::Loads;
  Opts.Unroll = false;
  Opts.MaxWideBytes = 4;
  TargetMachine TM = makeAlphaTarget();
  CoalesceStats Stats = coalesceMemoryAccesses(*Fx.F, TM, Opts);
  EXPECT_EQ(Stats.LoadRunsCoalesced, 1u);
  EXPECT_EQ(Stats.StoreRunsCoalesced, 0u);
  EXPECT_EQ(Fx.countOps(Opcode::Store), 4u);
}

TEST(Coalesce, ProfitabilityRejectsOn68030) {
  PassFixture Fx(CopyLoop4);
  for (int P = 0; P < 2; ++P) {
    Fx.F->paramInfo(P).NoAlias = true;
    Fx.F->paramInfo(P).KnownAlign = 8;
  }
  CoalesceOptions Opts;
  Opts.Unroll = false;
  Opts.MaxWideBytes = 4;
  TargetMachine TM = makeM68030Target();
  CoalesceStats Stats = coalesceMemoryAccesses(*Fx.F, TM, Opts);
  EXPECT_EQ(Stats.LoopsTransformed, 0u);
  EXPECT_EQ(Stats.LoopsRejectedProfitability, 1u);
  // Forcing it applies the transformation anyway.
  PassFixture Fx2(CopyLoop4);
  for (int P = 0; P < 2; ++P) {
    Fx2.F->paramInfo(P).NoAlias = true;
    Fx2.F->paramInfo(P).KnownAlign = 8;
  }
  Opts.RequireProfitability = false;
  CoalesceStats Forced = coalesceMemoryAccesses(*Fx2.F, TM, Opts);
  EXPECT_EQ(Forced.LoopsTransformed, 1u);
}

TEST(Coalesce, RuntimeDispatchTakesCorrectPath) {
  // Compile once with checks, then run with aligned-disjoint and
  // overlapping setups; the memory-reference counts reveal the path.
  TargetMachine TM = makeAlphaTarget();
  PassFixture Fx(InterleavedCopy4);
  CoalesceOptions Opts;
  Opts.Unroll = false;
  Opts.MaxWideBytes = 4;
  ASSERT_EQ(coalesceMemoryAccesses(*Fx.F, TM, Opts).LoopsTransformed, 1u);
  legalizeFunction(*Fx.F, TM);

  auto Run = [&](uint64_t SrcSkew, bool Overlap) {
    Memory Mem;
    uint64_t Src = Mem.allocate(256, 8, SrcSkew);
    uint64_t Dst = Overlap ? Src + 2 : Mem.allocate(256, 8, SrcSkew);
    for (unsigned I = 0; I < 64; ++I)
      Mem.write(Src + I, 1, I + 1);
    Interpreter Interp(TM, Mem);
    RunResult R = Interp.run(*Fx.F,
                             {static_cast<int64_t>(Src),
                              static_cast<int64_t>(Dst),
                              static_cast<int64_t>(Src + 64)});
    EXPECT_TRUE(R.ok()) << R.Error;
    return R;
  };

  RunResult Fast = Run(0, false);
  RunResult Misaligned = Run(1, false);
  RunResult Overlapping = Run(0, true);
  // Aligned + disjoint: wide refs. Misaligned: loads fall back to the
  // unaligned pair, stores stay narrow. Overlapping (dst = src + 2):
  // the overlap check routes to the fully safe loop.
  EXPECT_LT(Fast.MemRefs(), Misaligned.MemRefs());
  EXPECT_LT(Misaligned.MemRefs(), Overlapping.MemRefs());
}

TEST(Coalesce, StatsSummaryMentionsCounts) {
  CoalesceStats S;
  S.LoopsExamined = 3;
  S.LoadRunsCoalesced = 2;
  std::string Text = S.summary();
  EXPECT_NE(Text.find("examined=3"), std::string::npos);
  EXPECT_NE(Text.find("loads=2"), std::string::npos);
}

TEST(Coalesce, MultipleLoopsProcessedIndependently) {
  PassFixture Fx("func @two(r1, r2, r3) {\n"
                 "entry:\n"
                 "  jmp body1\n"
                 "body1:\n"
                 "  r4 = load.i8.u [r1]\n"
                 "  r5 = load.i8.u [r1+1]\n"
                 "  store.i8 [r2], r4\n"
                 "  store.i8 [r2+1], r5\n"
                 "  r1 = add r1, 2\n"
                 "  r2 = add r2, 2\n"
                 "  br.ltu r1, r3, body1, mid\n"
                 "mid:\n"
                 "  jmp body2\n"
                 "body2:\n"
                 "  r6 = load.i8.u [r2]\n"
                 "  r7 = load.i8.u [r2+1]\n"
                 "  r8 = load.i8.u [r2+2]\n"
                 "  r9 = load.i8.u [r2+3]\n"
                 "  r10 = add r6, r7\n"
                 "  r10 = add r10, r8\n"
                 "  r10 = add r10, r9\n"
                 "  r2 = add r2, 4\n"
                 "  br.ltu r2, r3, body2, exit\n"
                 "exit:\n"
                 "  ret r10\n"
                 "}\n");
  for (int P = 0; P < 2; ++P) {
    Fx.F->paramInfo(P).NoAlias = true;
    Fx.F->paramInfo(P).KnownAlign = 8;
  }
  CoalesceOptions Opts;
  Opts.Unroll = false;
  Opts.MaxWideBytes = 4;
  TargetMachine TM = makeAlphaTarget();
  CoalesceStats Stats = coalesceMemoryAccesses(*Fx.F, TM, Opts);
  EXPECT_EQ(Stats.LoopsExamined, 2u);
  EXPECT_EQ(Stats.LoopsTransformed, 2u);
}

} // namespace
