//===- tests/coalesce/stats_regression_test.cpp - stat baselines -*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The coalescer's behavior, frozen as numbers: CoalesceStats for every
/// table workload under every paper configuration on all three targets,
/// asserted exactly against a checked-in baseline. A heuristic tweak that
/// changes how many loops unroll, how many runs coalesce, or how many
/// check instructions get emitted anywhere in the matrix shows up as a
/// reviewable one-line diff in the baseline file instead of a silent
/// shift in the paper tables.
///
/// Regenerate after an intended change with:
///
///   VPO_UPDATE_GOLDEN=1 ctest --test-dir build -R StatsRegression
///
//===----------------------------------------------------------------------===//

#include "GoldenUtils.h"

#include "ir/Function.h"
#include "pipeline/Pipeline.h"
#include "target/TargetMachine.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

#include <string>

using namespace vpo;
using namespace vpo::test;

namespace {

struct NamedTarget {
  const char *Name;
  TargetMachine TM;
};

std::vector<NamedTarget> regressionTargets() {
  std::vector<NamedTarget> Targets;
  Targets.push_back({"alpha", makeAlphaTarget()});
  Targets.push_back({"m88100", makeM88100Target()});
  Targets.push_back({"m68030", makeM68030Target()});
  return Targets;
}

const char *const Workloads[] = {"convolution", "image_add",    "image_add16",
                                 "image_xor",   "translate",    "eqntott",
                                 "mirror",      "dotproduct",   "deinterleave",
                                 "tileblit"};

/// One baseline line per cell: workload|target|config|static-params|json.
std::string cellLine(const char *Workload, const char *Target,
                     const std::string &Config, unsigned StaticParams,
                     const CoalesceStats &S) {
  return std::string(Workload) + "|" + Target + "|" + Config + "|static" +
         std::to_string(StaticParams) + "|" + S.toJson() + "\n";
}

CoalesceStats compileCell(const char *Workload, const TargetMachine &TM,
                          const CompileOptions &CO, unsigned StaticParams) {
  auto W = makeWorkloadByName(Workload);
  Module M;
  Function *F = W->build(M);
  for (size_t P = 0; P < F->params().size() && P < StaticParams; ++P) {
    F->paramInfo(P).NoAlias = true;
    F->paramInfo(P).KnownAlign = 8;
  }
  return compileFunction(*F, TM, CO).Coalesce;
}

// The full matrix — 10 workloads x 3 targets x 4 paper configurations,
// unknown parameters (the tables' default), plus the static-params
// ablation row for the strongest configuration and a pair of rows with
// the offset-propagation analysis disabled (the deferral/check cost the
// analysis removes, visible as a per-cell diff against the rows above).
TEST(StatsRegression, BaselineMatrix) {
  std::string Text;
  auto Configs = paperConfigs();
  for (const NamedTarget &T : regressionTargets()) {
    for (const char *Workload : Workloads) {
      for (const PipelineConfig &PC : Configs)
        Text += cellLine(Workload, T.Name, PC.Name, 0,
                         compileCell(Workload, T.TM, PC.Options, 0));
      // Static-analysis-succeeds ablation: all parameters restrict-like.
      Text += cellLine(Workload, T.Name, Configs.back().Name, 8,
                       compileCell(Workload, T.TM, Configs.back().Options,
                                   8));
      // Offset-analysis-off ablation of the strongest configuration.
      CompileOptions NoProp = Configs.back().Options;
      NoProp.OffsetAnalysis = false;
      std::string NoPropName =
          std::string(Configs.back().Name) + " no-offsetprop";
      Text += cellLine(Workload, T.Name, NoPropName, 0,
                       compileCell(Workload, T.TM, NoProp, 0));
      Text += cellLine(Workload, T.Name, NoPropName, 8,
                       compileCell(Workload, T.TM, NoProp, 8));
    }
  }
  checkGolden("stats_baseline.txt", Text);
}

// toJson is the baseline format; pin its shape so a key rename is a
// deliberate (golden-regenerating) act, and keep it in sync with the
// equality operator and the human-readable summary.
TEST(StatsRegression, StatsJsonShape) {
  CoalesceStats S;
  S.LoopsExamined = 3;
  S.LoadRunsCoalesced = 2;
  S.CheckInstructions = 7;
  std::string J = S.toJson();
  EXPECT_NE(J.find("\"loops-examined\":3"), std::string::npos) << J;
  EXPECT_NE(J.find("\"load-runs\":2"), std::string::npos) << J;
  EXPECT_NE(J.find("\"check-instructions\":7"), std::string::npos) << J;
  EXPECT_EQ(J.front(), '{');
  EXPECT_EQ(J.back(), '}');

  CoalesceStats T = S;
  EXPECT_TRUE(S == T);
  T.OverlapChecks = 1;
  EXPECT_FALSE(S == T);

  // The summary line keeps the substrings the bench harnesses and older
  // logs grep for.
  std::string Sum = S.summary();
  EXPECT_NE(Sum.find("examined="), std::string::npos) << Sum;
  EXPECT_NE(Sum.find("loads="), std::string::npos) << Sum;
  EXPECT_NE(Sum.find("alias-deferred="), std::string::npos) << Sum;
}

} // namespace
