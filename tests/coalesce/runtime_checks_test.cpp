//===- tests/coalesce/runtime_checks_test.cpp ------------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the check-block builder: the emitted RTL is executed
/// directly with controlled register values, and the branch decision is
/// compared against the mathematical overlap/alignment predicates.
///
//===----------------------------------------------------------------------===//

#include "coalesce/RuntimeChecks.h"
#include "ir/Function.h"
#include "ir/IRBuilder.h"
#include "sim/Interpreter.h"
#include "target/TargetMachine.h"

#include <gtest/gtest.h>

using namespace vpo;

namespace {

/// Harness: wraps a check plan in a function returning 1 when the checks
/// pass (fast path) and 0 when any fails (safe path). Params feed the
/// registers referenced by the plan.
struct CheckHarness {
  Module M;
  Function *F;
  std::vector<Reg> Params;
  unsigned InstrCount = 0;

  explicit CheckHarness(size_t NumParams) {
    F = M.addFunction("checks");
    for (size_t I = 0; I < NumParams; ++I)
      Params.push_back(F->addParam());
  }

  void finish(const CheckPlan &Plan) {
    IRBuilder B(F);
    BasicBlock *Entry = B.createBlock("entry");
    BasicBlock *Safe = F->addBlock("safe");
    BasicBlock *Fast = F->addBlock("fast");
    B.setInsertBlock(Safe);
    B.ret(Operand::imm(0));
    B.setInsertBlock(Fast);
    B.ret(Operand::imm(1));
    BasicBlock *Checks = buildRuntimeChecks(*F, Plan, Safe, Fast,
                                            InstrCount);
    B.setInsertBlock(Entry);
    B.jmp(Checks);
  }

  int64_t run(std::vector<int64_t> Args) {
    TargetMachine TM = makeAlphaTarget();
    Memory Mem;
    Interpreter Interp(TM, Mem);
    RunResult R = Interp.run(*F, Args);
    EXPECT_TRUE(R.ok()) << R.Error;
    return R.ReturnValue;
  }
};

TEST(RuntimeChecks, AlignmentCheckSemantics) {
  CheckHarness H(1);
  CheckPlan Plan;
  Plan.AlignChecks.push_back({H.Params[0], /*StartOff=*/0,
                              /*WideBytes=*/8});
  H.finish(Plan);
  EXPECT_EQ(H.run({4096}), 1) << "aligned base passes";
  EXPECT_EQ(H.run({4097}), 0);
  EXPECT_EQ(H.run({4100}), 0);
  EXPECT_EQ(H.run({4104}), 1);
}

TEST(RuntimeChecks, AlignmentCheckWithOffset) {
  CheckHarness H(1);
  CheckPlan Plan;
  Plan.AlignChecks.push_back({H.Params[0], /*StartOff=*/-1,
                              /*WideBytes=*/8});
  H.finish(Plan);
  EXPECT_EQ(H.run({4097}), 1) << "base-1 is 8-aligned";
  EXPECT_EQ(H.run({4096}), 0);
}

TEST(RuntimeChecks, MultipleAlignmentChecksAllMustPass) {
  CheckHarness H(2);
  CheckPlan Plan;
  Plan.AlignChecks.push_back({H.Params[0], 0, 8});
  Plan.AlignChecks.push_back({H.Params[1], 0, 4});
  H.finish(Plan);
  EXPECT_EQ(H.run({4096, 4096}), 1);
  EXPECT_EQ(H.run({4096, 4098}), 0);
  EXPECT_EQ(H.run({4098, 4096}), 0);
}

TEST(RuntimeChecks, OverlapCheckAscending) {
  // Streams A and B, both ascending byte streams of one byte per
  // iteration; bound IV is A's pointer, limit = A + n.
  CheckHarness H(3); // baseA, baseB, limit
  CheckPlan Plan;
  Plan.BoundIV = H.Params[0];
  Plan.Limit = H.Params[2];
  Plan.BoundStep = 1;
  CheckPlan::Extent A{H.Params[0], 1, 0, 1};
  CheckPlan::Extent B{H.Params[1], 1, 0, 1};
  Plan.OverlapChecks.push_back({A, B});
  H.finish(Plan);
  // A covers [4096, 4196); B at 5000: disjoint.
  EXPECT_EQ(H.run({4096, 5000, 4196}), 1);
  // B inside A's range: overlap.
  EXPECT_EQ(H.run({4096, 4150, 4196}), 0);
  // B starting exactly at A's end: disjoint.
  EXPECT_EQ(H.run({4096, 4196, 4196}), 1);
  // B just below A, extending into it: overlap.
  EXPECT_EQ(H.run({4096, 4095, 4196}), 0);
  // B ending exactly at A's start: disjoint (B covers [4000+..,4096)).
  EXPECT_EQ(H.run({4196, 4096, 4296}), 1)
      << "B's 100 bytes [4096,4196) end exactly where A begins";
}

TEST(RuntimeChecks, OverlapCheckScalesSteps) {
  // A steps 2 bytes per iteration, B steps 8: B's extent is 4x A's span.
  CheckHarness H(3);
  CheckPlan Plan;
  Plan.BoundIV = H.Params[0];
  Plan.Limit = H.Params[2];
  Plan.BoundStep = 2;
  CheckPlan::Extent A{H.Params[0], 2, 0, 2};
  CheckPlan::Extent B{H.Params[1], 8, 0, 8};
  Plan.OverlapChecks.push_back({A, B});
  H.finish(Plan);
  // 50 iterations: A covers [4096,4196), B covers [b, b+400).
  EXPECT_EQ(H.run({4096, 4200, 4196}), 1) << "B above A";
  EXPECT_EQ(H.run({4096, 3696 + 8, 4196}), 0)
      << "B's 400-byte range reaches into A";
  EXPECT_EQ(H.run({4096, 3696, 4196}), 1)
      << "B [3696,4096) ends exactly at A's start";
}

TEST(RuntimeChecks, OverlapCheckDescendingStream) {
  // B descends: its extent lies *below* its starting pointer.
  CheckHarness H(3);
  CheckPlan Plan;
  Plan.BoundIV = H.Params[0];
  Plan.Limit = H.Params[2];
  Plan.BoundStep = 1;
  CheckPlan::Extent A{H.Params[0], 1, 0, 1};
  CheckPlan::Extent B{H.Params[1], -1, 0, 1};
  Plan.OverlapChecks.push_back({A, B});
  H.finish(Plan);
  // 100 iterations. A: [4096,4196). B starts at 5000 descending:
  // [4901, 5001) — disjoint.
  EXPECT_EQ(H.run({4096, 5000, 4196}), 1);
  // B starts at 4250 descending: [4151, 4251) — overlaps A.
  EXPECT_EQ(H.run({4096, 4250, 4196}), 0);
  // B starts at 4095 descending: [3996, 4096) — touches nothing of A.
  EXPECT_EQ(H.run({4096, 4095, 4196}), 1);
}

TEST(RuntimeChecks, InvariantBaseExtent) {
  // A scalar table of 16 bytes at a fixed base.
  CheckHarness H(3);
  CheckPlan Plan;
  Plan.BoundIV = H.Params[0];
  Plan.Limit = H.Params[2];
  Plan.BoundStep = 1;
  CheckPlan::Extent A{H.Params[0], 1, 0, 1};
  CheckPlan::Extent T{H.Params[1], 0, 0, 16};
  Plan.OverlapChecks.push_back({A, T});
  H.finish(Plan);
  EXPECT_EQ(H.run({4096, 4200, 4196}), 1);
  EXPECT_EQ(H.run({4096, 4190, 4196}), 0) << "table tail inside A";
  EXPECT_EQ(H.run({4096, 4080, 4196}), 1) << "[4080,4096) just below A";
}

TEST(RuntimeChecks, EmptyPlanAlwaysFast) {
  CheckHarness H(1);
  CheckPlan Plan;
  H.finish(Plan);
  EXPECT_EQ(H.run({12345}), 1);
  EXPECT_LE(H.InstrCount, 2u);
}

TEST(RuntimeChecks, NonPowerOfTwoStepTakesSafeLoop) {
  // Regression: a partition stepping 3 bytes per iteration used to abort
  // the compiler ("runtime overlap check requires a power-of-two step").
  // It must instead degrade into an unconditional safe-loop dispatch.
  CheckHarness H(3);
  CheckPlan Plan;
  Plan.BoundIV = H.Params[0];
  Plan.Limit = H.Params[2];
  Plan.BoundStep = 1;
  CheckPlan::Extent A{H.Params[0], 3, 0, 3};
  CheckPlan::Extent B{H.Params[1], 1, 0, 1};
  Plan.OverlapChecks.push_back({A, B});
  H.finish(Plan);
  // Even with wildly disjoint ranges, the uncheckable pair forces the
  // safe loop.
  EXPECT_EQ(H.run({4096, 100000, 4196}), 0);
  EXPECT_EQ(H.run({4096, 5000, 4196}), 0);
}

TEST(RuntimeChecks, NonPowerOfTwoBoundStepTakesSafeLoop) {
  // Same degradation when the *bound IV* steps by a non-power-of-two
  // (or unknown, i.e. zero) amount: extents cannot be scaled by shifts.
  for (int64_t BadStep : {3, 0, -6}) {
    CheckHarness H(3);
    CheckPlan Plan;
    Plan.BoundIV = H.Params[0];
    Plan.Limit = H.Params[2];
    Plan.BoundStep = BadStep;
    CheckPlan::Extent A{H.Params[0], 1, 0, 1};
    CheckPlan::Extent B{H.Params[1], 1, 0, 1};
    Plan.OverlapChecks.push_back({A, B});
    H.finish(Plan);
    EXPECT_EQ(H.run({4096, 100000, 4196}), 0)
        << "bound step " << BadStep << " must dispatch to the safe loop";
  }
}

TEST(RuntimeChecks, MixedCheckablePairsStillEvaluated) {
  // One uncheckable pair poisons the dispatch, but a checkable alignment
  // check in the same plan must still be emitted without crashing.
  CheckHarness H(3);
  CheckPlan Plan;
  Plan.BoundIV = H.Params[0];
  Plan.Limit = H.Params[2];
  Plan.BoundStep = 1;
  Plan.AlignChecks.push_back({H.Params[1], 0, 8});
  CheckPlan::Extent A{H.Params[0], 5, 0, 5};
  CheckPlan::Extent B{H.Params[1], 1, 0, 1};
  Plan.OverlapChecks.push_back({A, B});
  H.finish(Plan);
  EXPECT_EQ(H.run({4096, 4096, 4196}), 0);
}

TEST(RuntimeChecks, InstructionCountWithinPaperBudget) {
  // One alignment + one overlap pair: the paper's "10 to 15 instructions"
  // ballpark.
  CheckHarness H(3);
  CheckPlan Plan;
  Plan.BoundIV = H.Params[0];
  Plan.Limit = H.Params[2];
  Plan.BoundStep = 1;
  Plan.AlignChecks.push_back({H.Params[0], 0, 8});
  CheckPlan::Extent A{H.Params[0], 1, 0, 1};
  CheckPlan::Extent B{H.Params[1], 1, 0, 1};
  Plan.OverlapChecks.push_back({A, B});
  H.finish(Plan);
  EXPECT_GE(H.InstrCount, 8u);
  EXPECT_LE(H.InstrCount, 16u);
}

} // namespace
