//===- tests/coalesce/remark_golden_test.cpp - pinned remarks ---*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pins the coalescer's decision narrative on the paper's running example.
/// "Figure 1" is the dot product with known-aligned restrict parameters —
/// the pure accept path (unroll by 4, two load runs, no checks). "Figure
/// 6" is the same kernel with nothing known about the parameters — the
/// two-version path where alignment must be established at run time. The
/// complete remark stream for each is diffed byte-for-byte against a
/// checked-in golden file, so any change to a reason code, an argument
/// key, or the order of decisions is a reviewed diff, not a silent drift.
///
/// The consistency suite then proves the remarks are not decorative: for
/// every table workload under every paper configuration, the per-reason
/// remark counts must reconcile exactly with the CoalesceStats counters
/// the tables are built from.
///
//===----------------------------------------------------------------------===//

#include "GoldenUtils.h"

#include "ir/Function.h"
#include "pipeline/Pipeline.h"
#include "support/Remark.h"
#include "target/TargetMachine.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>

using namespace vpo;
using namespace vpo::test;

namespace {

struct RemarkGolden : testing::Test {
  TargetMachine TM = makeAlphaTarget();
  CollectingRemarkSink Sink;

  CompileOptions options() {
    CompileOptions CO;
    CO.Mode = CoalesceMode::LoadsAndStores;
    CO.Unroll = true;
    CO.Schedule = true;
    CO.Remarks = &Sink;
    return CO;
  }

  /// Builds and compiles \p Name with the sink attached; \p KnownParams
  /// declares every parameter NoAlias + 8-aligned first (the static-
  /// analysis-succeeds setup of figure1_test.cpp).
  CoalesceStats compile(const char *Name, bool KnownParams,
                        const CompileOptions &CO) {
    auto W = makeWorkloadByName(Name);
    Module M;
    Function *F = W->build(M);
    if (KnownParams) {
      for (size_t P = 0; P < F->params().size(); ++P) {
        F->paramInfo(P).NoAlias = true;
        F->paramInfo(P).KnownAlign = 8;
      }
    }
    return compileFunction(*F, TM, CO).Coalesce;
  }
};

// Figure 1: known-aligned restrict arrays. Every decision lands on the
// accept path and no preheader checks are emitted, so the stream is the
// shortest complete narrative the coalescer can produce.
TEST_F(RemarkGolden, Figure1KnownAligned) {
  CoalesceStats S = compile("dotproduct", /*KnownParams=*/true, options());
  EXPECT_EQ(S.LoopsTransformed, 1u);
  ASSERT_FALSE(Sink.remarks().empty());
  EXPECT_EQ(Sink.count("loop-unrolled"), 1u);
  EXPECT_EQ(Sink.count("run-accepted"), 2u) << "one run per vector";
  EXPECT_EQ(Sink.count("checks-emitted"), 0u);
  EXPECT_EQ(Sink.count("loop-coalesced"), 1u);
  checkGolden("figure1_remarks.txt", Sink.renderAll());
}

// Figure 6: nothing known about the parameters. The same kernel now goes
// through alias deferral and run-time alignment checks — the two-version
// loop of the paper's Figure 6 — and the stream records which checks were
// emitted and why static analysis could not discharge them.
TEST_F(RemarkGolden, Figure6RuntimeChecked) {
  CoalesceStats S = compile("dotproduct", /*KnownParams=*/false, options());
  EXPECT_EQ(S.LoopsTransformed, 1u);
  EXPECT_EQ(Sink.count("alias-check-deferred"), S.AliasPairsDeferred);
  EXPECT_EQ(Sink.count("alignment-check"), S.AlignmentChecks);
  EXPECT_EQ(Sink.count("checks-emitted"), 1u);
  checkGolden("figure6_remarks.txt", Sink.renderAll());
}

// The machine-readable stream (NDJSON) is pinned alongside the rendered
// one for the Figure 1 kernel: this is the format remark-query and the
// --remarks-dir files consume.
TEST_F(RemarkGolden, Figure1JsonStream) {
  compile("dotproduct", /*KnownParams=*/true, options());
  checkGolden("figure1_remarks.ndjson", Sink.toJsonLines());
}

// Reason codes and argument keys are a stable machine interface:
// non-empty kebab-case, nothing else.
TEST_F(RemarkGolden, ReasonCodesAreStableKebabCase) {
  auto IsKebab = [](const char *S) {
    if (!S || !*S)
      return false;
    for (const char *C = S; *C; ++C)
      if (!std::islower(static_cast<unsigned char>(*C)) &&
          !std::isdigit(static_cast<unsigned char>(*C)) && *C != '-')
        return false;
    return true;
  };
  compile("dotproduct", /*KnownParams=*/false, options());
  ASSERT_FALSE(Sink.remarks().empty());
  for (const Remark &R : Sink.remarks()) {
    EXPECT_TRUE(IsKebab(R.Pass)) << "pass: " << R.Pass;
    EXPECT_TRUE(IsKebab(R.Reason)) << "reason: " << R.Reason;
    EXPECT_FALSE(R.Fn.empty());
    for (const auto &[K, V] : R.Args) {
      EXPECT_TRUE(IsKebab(K)) << "arg key: " << K << " in " << R.Reason;
      EXPECT_FALSE(V.empty()) << "empty value for " << K << " in "
                              << R.Reason;
    }
  }
}

// Every accept/reject decision the stats count must have a remark behind
// it: reconcile the per-reason counts against the CoalesceStats counters
// for every table workload under every paper configuration. An unremarked
// counter bump (or a remark with no counter) fails here.
TEST_F(RemarkGolden, RemarkStatsConsistency) {
  const char *Workloads[] = {"convolution", "image_add",    "image_add16",
                             "image_xor",   "translate",    "eqntott",
                             "mirror",      "dotproduct",   "deinterleave",
                             "tileblit"};
  for (const PipelineConfig &PC : paperConfigs()) {
    for (const char *Name : Workloads) {
      SCOPED_TRACE(std::string(Name) + " / " + PC.Name);
      Sink.clear();
      CompileOptions CO = PC.Options;
      CO.Remarks = &Sink;
      CoalesceStats S = compile(Name, /*KnownParams=*/false, CO);

      EXPECT_EQ(Sink.count("loop-unrolled"), S.LoopsUnrolled);
      EXPECT_EQ(Sink.count("loop-coalesced"), S.LoopsTransformed);
      EXPECT_EQ(Sink.count("run-rejected-hazard") +
                    Sink.count("run-rejected-uncheckable"),
                S.RunsRejectedHazard);
      EXPECT_EQ(Sink.count("loop-rejected-unclassified"),
                S.LoopsRejectedUnclassified);
      EXPECT_EQ(Sink.count("loop-rejected-profitability"),
                S.LoopsRejectedProfitability);
      EXPECT_EQ(Sink.count("alias-check-deferred"), S.AliasPairsDeferred);
      EXPECT_EQ(Sink.count("alias-check-proven-disjoint"),
                S.AliasPairsProvenDisjoint);
      EXPECT_EQ(Sink.count("alignment-proven-static"),
                S.AlignmentProvenStatic);
      EXPECT_EQ(Sink.count("alignment-check"), S.AlignmentChecks);
      EXPECT_EQ(Sink.count("overlap-check") +
                    Sink.count("overlap-check-uncheckable"),
                S.OverlapChecks);

      // Checks-disabled rejections come from two sites: per-run remarks,
      // plus the bulk loop-rejected-overlap-infeasible remark whose
      // "runs" argument carries the count.
      unsigned Disabled = Sink.count("run-rejected-checks-disabled");
      for (const Remark &R : Sink.remarks()) {
        if (std::string(R.Reason) != "loop-rejected-overlap-infeasible")
          continue;
        for (const auto &[K, V] : R.Args)
          if (std::string(K) == "runs")
            Disabled += static_cast<unsigned>(std::strtoul(
                V.c_str(), nullptr, 10));
      }
      EXPECT_EQ(Disabled, S.RunsRejectedChecksDisabled);

      // Candidates partition completely: every run-candidate is resolved
      // by exactly one accept/reject remark.
      EXPECT_EQ(Sink.count("run-candidate"),
                Sink.count("run-accepted") +
                    Sink.count("run-rejected-hazard") +
                    Sink.count("run-rejected-uncheckable") +
                    Sink.count("run-rejected-checks-disabled"));
    }
  }
}

// Deinterleave: both cursors walk one parameter's object, so no-alias
// facts prove nothing and the pre-analysis coalescer deferred the pair to
// a run-time overlap check. The residue rule (loads in classes 0..7,
// stores in 8..15 mod 16) discharges it statically: the stream must show
// alias-check-proven-disjoint and no overlap check, with nothing deferred.
TEST_F(RemarkGolden, DeinterleaveProvenDisjoint) {
  CoalesceStats S = compile("deinterleave", /*KnownParams=*/false,
                            options());
  EXPECT_EQ(S.LoopsTransformed, 1u);
  EXPECT_GE(S.AliasPairsProvenDisjoint, 1u);
  EXPECT_EQ(S.AliasPairsDeferred, 0u);
  EXPECT_EQ(S.OverlapChecks, 0u);
  EXPECT_EQ(Sink.count("alias-check-proven-disjoint"),
            S.AliasPairsProvenDisjoint);
  checkGolden("deinterleave_remarks.txt", Sink.renderAll());
}

// Tileblit: the destination cursor is base + 64*k with k unknown, so the
// exact-offset chain cannot prove alignment and overlap remains a genuine
// run-time question. The congruence analysis pins the destination to
// residue 0 mod the unrolled step, which with an 8-aligned base proves the
// wide stores aligned — both new reason codes coexist with a deferral.
TEST_F(RemarkGolden, TileblitAlignmentProvenStatic) {
  CoalesceStats S = compile("tileblit", /*KnownParams=*/true, options());
  EXPECT_EQ(S.LoopsTransformed, 1u);
  EXPECT_GE(S.AlignmentProvenStatic, 1u);
  EXPECT_GE(S.AliasPairsDeferred, 1u);
  EXPECT_EQ(Sink.count("alignment-proven-static"), S.AlignmentProvenStatic);
  EXPECT_EQ(Sink.count("alias-check-deferred"), S.AliasPairsDeferred);
  checkGolden("tileblit_remarks.txt", Sink.renderAll());
}

// Two identical compiles must produce byte-identical streams — the
// property the fuzz oracle's telemetry dimension checks at scale.
TEST_F(RemarkGolden, StreamIsDeterministic) {
  compile("convolution", /*KnownParams=*/false, options());
  std::string First = Sink.toJsonLines();
  Sink.clear();
  compile("convolution", /*KnownParams=*/false, options());
  EXPECT_EQ(First, Sink.toJsonLines());
}

} // namespace
