//===- tests/coalesce/hazards_test.cpp - Fig. 4 safety analysis -*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "analysis/CFG.h"
#include "analysis/Dominators.h"
#include "analysis/InductionVars.h"
#include "analysis/LoopInfo.h"
#include "analysis/MemoryPartitions.h"
#include "coalesce/Hazards.h"
#include "coalesce/Runs.h"
#include "ir/Function.h"
#include "ir/IRParser.h"
#include "target/TargetMachine.h"

#include <gtest/gtest.h>

using namespace vpo;

namespace {

struct HazardFixture {
  std::unique_ptr<Module> M;
  Function *F = nullptr;
  std::unique_ptr<CFG> G;
  std::unique_ptr<DominatorTree> DT;
  std::unique_ptr<LoopInfo> LI;
  Loop *L = nullptr;
  std::unique_ptr<LoopScalarInfo> LSI;
  std::unique_ptr<MemoryPartitions> MP;
  std::vector<CoalesceRun> Runs;

  explicit HazardFixture(const std::string &Text) {
    std::string Err;
    M = parseModule(Text, &Err);
    EXPECT_NE(M, nullptr) << Err;
    F = M->functions().front().get();
    G = std::make_unique<CFG>(*F);
    DT = std::make_unique<DominatorTree>(*G);
    LI = std::make_unique<LoopInfo>(*G, *DT);
    L = LI->loops().front().get();
    LSI = std::make_unique<LoopScalarInfo>(*L, *F);
    MP = std::make_unique<MemoryPartitions>(*L, *LSI);
    Runs = findCoalesceRuns(*MP, makeAlphaTarget(), true, true, 0);
  }

  HazardResult analyze(const CoalesceRun &R) {
    return analyzeRunHazards(R, *MP, *L->singleBodyBlock(), *F);
  }

  const CoalesceRun *runFor(bool IsLoad, Reg Base) {
    for (const CoalesceRun &R : Runs)
      if (R.IsLoad == IsLoad &&
          MP->partitions()[R.PartitionIdx].Base == Base)
        return &R;
    return nullptr;
  }
};

TEST(Hazards, CleanLoadRunIsSafe) {
  HazardFixture Fx("func @f(r1, r2) {\n"
                   "entry:\n"
                   "  jmp body\n"
                   "body:\n"
                   "  r4 = load.i8.u [r1]\n"
                   "  r5 = load.i8.u [r1+1]\n"
                   "  r6 = add r4, r5\n"
                   "  r1 = add r1, 2\n"
                   "  br.ltu r1, r2, body, exit\n"
                   "exit:\n"
                   "  ret r6\n"
                   "}\n");
  const CoalesceRun *R = Fx.runFor(true, Reg(1));
  ASSERT_NE(R, nullptr);
  HazardResult H = Fx.analyze(*R);
  EXPECT_TRUE(H.Safe);
  EXPECT_TRUE(H.AliasPairs.empty());
}

TEST(Hazards, SamePartitionOverlappingStoreBetweenLoads) {
  // A store to the run's own span between the first and last member load.
  HazardFixture Fx("func @f(r1, r2) {\n"
                   "entry:\n"
                   "  jmp body\n"
                   "body:\n"
                   "  r4 = load.i8.u [r1]\n"
                   "  store.i8 [r1+1], r4\n"
                   "  r5 = load.i8.u [r1+1]\n"
                   "  r6 = add r4, r5\n"
                   "  r1 = add r1, 2\n"
                   "  br.ltu r1, r2, body, exit\n"
                   "exit:\n"
                   "  ret r6\n"
                   "}\n");
  const CoalesceRun *R = Fx.runFor(true, Reg(1));
  ASSERT_NE(R, nullptr);
  EXPECT_FALSE(Fx.analyze(*R).Safe)
      << "wide load would read before the store writes";
}

TEST(Hazards, SamePartitionDisjointStoreIsFine) {
  // The intervening store writes outside the run's span (offset +9).
  HazardFixture Fx("func @f(r1, r2) {\n"
                   "entry:\n"
                   "  jmp body\n"
                   "body:\n"
                   "  r4 = load.i8.u [r1]\n"
                   "  store.i8 [r1+9], r4\n"
                   "  r5 = load.i8.u [r1+1]\n"
                   "  r6 = add r4, r5\n"
                   "  r1 = add r1, 2\n"
                   "  br.ltu r1, r2, body, exit\n"
                   "exit:\n"
                   "  ret r6\n"
                   "}\n");
  const CoalesceRun *R = Fx.runFor(true, Reg(1));
  ASSERT_NE(R, nullptr);
  HazardResult H = Fx.analyze(*R);
  EXPECT_TRUE(H.Safe);
  EXPECT_TRUE(H.AliasPairs.empty()) << "same partition: offsets decide";
}

TEST(Hazards, CrossPartitionStoreRequestsAliasCheck) {
  HazardFixture Fx("func @f(r1, r2, r3) {\n"
                   "entry:\n"
                   "  jmp body\n"
                   "body:\n"
                   "  r4 = load.i8.u [r1]\n"
                   "  store.i8 [r2], r4\n"
                   "  r5 = load.i8.u [r1+1]\n"
                   "  r6 = add r4, r5\n"
                   "  r1 = add r1, 2\n"
                   "  r2 = add r2, 2\n"
                   "  br.ltu r1, r3, body, exit\n"
                   "exit:\n"
                   "  ret r6\n"
                   "}\n");
  const CoalesceRun *R = Fx.runFor(true, Reg(1));
  ASSERT_NE(R, nullptr);
  HazardResult H = Fx.analyze(*R);
  EXPECT_TRUE(H.Safe);
  EXPECT_EQ(H.AliasPairs.size(), 1u)
      << "the r1/r2 pair needs a run-time overlap check";
}

TEST(Hazards, NoAliasParamSuppressesCheck) {
  HazardFixture Fx("func @f(r1, r2, r3) {\n"
                   "entry:\n"
                   "  jmp body\n"
                   "body:\n"
                   "  r4 = load.i8.u [r1]\n"
                   "  store.i8 [r2], r4\n"
                   "  r5 = load.i8.u [r1+1]\n"
                   "  r6 = add r4, r5\n"
                   "  r1 = add r1, 2\n"
                   "  r2 = add r2, 2\n"
                   "  br.ltu r1, r3, body, exit\n"
                   "exit:\n"
                   "  ret r6\n"
                   "}\n");
  Fx.F->paramInfo(1).NoAlias = true; // r2 is restrict
  const CoalesceRun *R = Fx.runFor(true, Reg(1));
  ASSERT_NE(R, nullptr);
  HazardResult H = Fx.analyze(*R);
  EXPECT_TRUE(H.Safe);
  EXPECT_TRUE(H.AliasPairs.empty());
}

TEST(Hazards, StoreRunWithInterveningOverlappingLoad) {
  // The paper's recurrence case: a load of the store run's span sits
  // between the member stores (x[i-1] between stores of x[i], x[i+1]).
  HazardFixture Fx("func @f(r1, r2) {\n"
                   "entry:\n"
                   "  jmp body\n"
                   "body:\n"
                   "  store.i8 [r1], r2\n"
                   "  r4 = load.i8.u [r1]\n"
                   "  store.i8 [r1+1], r4\n"
                   "  r1 = add r1, 2\n"
                   "  br.ltu r1, r2, body, exit\n"
                   "exit:\n"
                   "  ret 0\n"
                   "}\n");
  const CoalesceRun *R = Fx.runFor(false, Reg(1));
  ASSERT_NE(R, nullptr);
  EXPECT_FALSE(Fx.analyze(*R).Safe)
      << "the deferred wide store would starve the load";
}

TEST(Hazards, StoreRunWithLoadBeforeFirstMemberIsSafe) {
  HazardFixture Fx("func @f(r1, r2) {\n"
                   "entry:\n"
                   "  jmp body\n"
                   "body:\n"
                   "  r4 = load.i8.u [r1]\n" // before both stores
                   "  store.i8 [r1], r4\n"
                   "  store.i8 [r1+1], r4\n"
                   "  r1 = add r1, 2\n"
                   "  br.ltu r1, r2, body, exit\n"
                   "exit:\n"
                   "  ret 0\n"
                   "}\n");
  const CoalesceRun *R = Fx.runFor(false, Reg(1));
  ASSERT_NE(R, nullptr);
  EXPECT_TRUE(Fx.analyze(*R).Safe)
      << "loads before the first member are unaffected by deferral";
}

TEST(Hazards, CrossPartitionLoadInStoreRunWindow) {
  HazardFixture Fx("func @f(r1, r2, r3) {\n"
                   "entry:\n"
                   "  jmp body\n"
                   "body:\n"
                   "  store.i8 [r1], r3\n"
                   "  r4 = load.i8.u [r2]\n" // other partition, in window
                   "  store.i8 [r1+1], r4\n"
                   "  r1 = add r1, 2\n"
                   "  r2 = add r2, 2\n"
                   "  br.ltu r1, r3, body, exit\n"
                   "exit:\n"
                   "  ret 0\n"
                   "}\n");
  const CoalesceRun *R = Fx.runFor(false, Reg(1));
  ASSERT_NE(R, nullptr);
  HazardResult H = Fx.analyze(*R);
  EXPECT_TRUE(H.Safe);
  EXPECT_EQ(H.AliasPairs.size(), 1u);
}

TEST(Hazards, LoadRunIgnoresOtherLoadsInWindow) {
  HazardFixture Fx("func @f(r1, r2, r3) {\n"
                   "entry:\n"
                   "  jmp body\n"
                   "body:\n"
                   "  r4 = load.i8.u [r1]\n"
                   "  r5 = load.i8.u [r2]\n" // load between members: fine
                   "  r6 = load.i8.u [r1+1]\n"
                   "  r7 = add r4, r6\n"
                   "  r1 = add r1, 2\n"
                   "  r2 = add r2, 1\n"
                   "  br.ltu r1, r3, body, exit\n"
                   "exit:\n"
                   "  ret r7\n"
                   "}\n");
  const CoalesceRun *R = Fx.runFor(true, Reg(1));
  ASSERT_NE(R, nullptr);
  HazardResult H = Fx.analyze(*R);
  EXPECT_TRUE(H.Safe);
  EXPECT_TRUE(H.AliasPairs.empty()) << "load-load never conflicts";
}

} // namespace
