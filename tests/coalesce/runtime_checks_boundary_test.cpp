//===- tests/coalesce/runtime_checks_boundary_test.cpp --------------------===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
//
// End-to-end regression tests for the run-time checks at their exact
// decision boundaries, driven through the fuzzing oracle with hand-built
// (not random) kernel specs: two arrays placed *exactly* adjacent (the
// last byte of one touching the first of the next — must classify as
// safe and take the fast path without corrupting either array),
// zero-trip loops (checks evaluated, body never entered), trip counts
// straddling the unroll factor (0, UnrollFactor-1, UnrollFactor,
// UnrollFactor+1), and full/partial overlap (checks must fail and the
// safe path must run). Every scenario is differenced against the O0
// baseline on both engines across all three targets.
//
//===----------------------------------------------------------------------===//

#include "fuzz/KernelGen.h"
#include "fuzz/Oracle.h"

#include "ir/Function.h"
#include "ir/IRParser.h"
#include "pipeline/Pipeline.h"
#include "target/TargetMachine.h"

#include <gtest/gtest.h>

using namespace vpo;
using namespace vpo::fuzz;

namespace {

StreamSpec loadStream(unsigned ElemBytes, unsigned Refs) {
  StreamSpec S;
  S.ElemBytes = ElemBytes;
  S.RefsPerIter = Refs;
  S.HasLoad = true;
  S.HasStore = false;
  return S;
}

StreamSpec storeStream(unsigned ElemBytes, unsigned Refs,
                       StreamSpec::Placement Place) {
  StreamSpec S;
  S.ElemBytes = ElemBytes;
  S.RefsPerIter = Refs;
  S.HasLoad = false;
  S.HasStore = true;
  S.Place = Place;
  return S;
}

KernelSpec boundarySpec(uint64_t Seed, std::vector<StreamSpec> Streams,
                        std::vector<int64_t> Trips) {
  KernelSpec Spec;
  Spec.Seed = Seed;
  Spec.Streams = std::move(Streams);
  Spec.AccInit = 5;
  Spec.TripCounts = std::move(Trips);
  return Spec;
}

void expectOraclePasses(const KernelSpec &Spec, const char *What) {
  OracleOptions O; // all three targets, both engines, every config
  OracleResult R = checkKernel(generateKernel(Spec), O);
  EXPECT_TRUE(R.passed()) << What << ": " << R.render();
}

TEST(RuntimeChecksBoundary, ExactlyAdjacentByteArrays) {
  // Load stream then store stream sharing a boundary byte-for-byte: the
  // overlap check must prove disjointness and still produce baseline
  // results on the coalesced fast path.
  expectOraclePasses(
      boundarySpec(101,
                   {loadStream(1, 2),
                    storeStream(1, 2, StreamSpec::Placement::Adjacent)},
                   {0, 3, 4, 5, 16}),
      "adjacent i8");
}

TEST(RuntimeChecksBoundary, ExactlyAdjacentMixedWidths) {
  expectOraclePasses(
      boundarySpec(102,
                   {loadStream(2, 2),
                    storeStream(4, 1, StreamSpec::Placement::Adjacent)},
                   {0, 3, 4, 5, 13}),
      "adjacent i16/i32");
}

TEST(RuntimeChecksBoundary, ZeroTripLoopOnlyChecksNoBody) {
  // N = 0 exclusively: the checks run (or are skipped) but the body must
  // never execute, on every config including unroll-by-4.
  expectOraclePasses(
      boundarySpec(103,
                   {loadStream(1, 4),
                    storeStream(1, 4, StreamSpec::Placement::Adjacent)},
                   {0}),
      "zero-trip");
}

TEST(RuntimeChecksBoundary, TripCountsStraddlingUnrollFactor) {
  // 3 = UnrollFactor - 1 for the u4 config: the rolled epilogue carries
  // the entire loop. 4 and 5 hit the exact-multiple and remainder-1
  // shapes.
  expectOraclePasses(
      boundarySpec(104,
                   {loadStream(2, 2),
                    storeStream(2, 2, StreamSpec::Placement::Adjacent)},
                   {0, 3, 4, 5}),
      "unroll straddle");
}

TEST(RuntimeChecksBoundary, FullyOverlappingStreamsTakeSafePath) {
  // Store stream aliases the load stream exactly (delta 0): the checks
  // must fail and the safe path must match the baseline's load/store
  // interleaving.
  StreamSpec St = storeStream(1, 2, StreamSpec::Placement::Overlapping);
  St.OverlapDelta = 0;
  expectOraclePasses(boundarySpec(105, {loadStream(1, 2), St}, {0, 3, 16}),
                     "full overlap");
}

TEST(RuntimeChecksBoundary, PartiallyOverlappingStreams) {
  StreamSpec St = storeStream(2, 2, StreamSpec::Placement::Overlapping);
  St.OverlapDelta = 2; // one element in
  expectOraclePasses(boundarySpec(106, {loadStream(2, 2), St}, {0, 3, 7}),
                     "partial overlap");
}

TEST(RuntimeChecksBoundary, SkewedBasesStayCheckedNotTrapped) {
  // Element-aligned base skew: static alignment is unknowable, so the
  // alignment checks must dispatch, and the layout-skew scenarios flip
  // which path wins. BaseSkew stays a multiple of ElemBytes so the spec
  // also renders as C.
  StreamSpec Ld = loadStream(4, 2);
  Ld.BaseSkew = 4;
  StreamSpec St = storeStream(4, 2, StreamSpec::Placement::Adjacent);
  St.BaseSkew = 8;
  expectOraclePasses(boundarySpec(107, {Ld, St}, {0, 3, 4, 5, 11}),
                     "skewed bases");
}

TEST(RuntimeChecksBoundary, AdjacentKernelActuallyCoalesces) {
  // Guard against vacuous passes above: the adjacent spec must actually
  // drive the coalescer down the transformed path on the widest target.
  KernelSpec Spec =
      boundarySpec(108,
                   {loadStream(1, 4),
                    storeStream(1, 4, StreamSpec::Placement::Adjacent)},
                   {16});
  GeneratedKernel K = generateKernel(Spec);
  std::vector<Diagnostic> Diags;
  std::unique_ptr<Module> M = parseModule(K.IRText, Diags);
  ASSERT_NE(M, nullptr);
  Function *F = M->findFunction("k");
  ASSERT_NE(F, nullptr);
  TargetMachine TM = makeTargetByName("alpha");
  CompileOptions Opts;
  Opts.Mode = CoalesceMode::LoadsAndStores;
  Opts.UnrollFactor = 4;
  CompileReport Rep = compileFunction(*F, TM, Opts);
  ASSERT_TRUE(Rep.Succeeded);
  EXPECT_TRUE(Rep.Incidents.empty());
  EXPECT_GT(Rep.Coalesce.LoadRunsCoalesced + Rep.Coalesce.StoreRunsCoalesced,
            0u);
}

} // namespace
